package cocco

// Golden-regression corpus: one small, fully seeded GA run per model in the
// zoo, with the best partition and its evaluation pinned under
// testdata/golden/. Any change to the search trajectory, the evaluation
// model, or the delta-evaluation layer that alters results shows up as a
// readable JSON diff here. Regenerate intentionally with
//
//	go test -run TestGoldenRegression -update .
//
// The runs ride on the PR-1 determinism contract: results are bit-identical
// for every Workers value, so the corpus is stable across machines.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/serialize"
	"cocco/internal/tiling"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden instead of diffing")

// goldenBudget mirrors experiments.Quick()'s final-pass budget: big enough
// that the search leaves the random-initialization regime, small enough that
// the whole corpus regenerates in seconds.
const (
	goldenSamples    = 1500
	goldenPopulation = 50
	goldenSeed       = 42
)

// goldenRun is the pinned outcome of one seeded run.
type goldenRun struct {
	Model         string          `json:"model"`
	Seed          int64           `json:"seed"`
	MaxSamples    int             `json:"max_samples"`
	Population    int             `json:"population"`
	Cost          float64         `json:"cost"`
	EMABytes      int64           `json:"ema_bytes"`
	EnergyPJ      float64         `json:"energy_pj"`
	LatencyCycles int64           `json:"latency_cycles"`
	Feasible      bool            `json:"feasible"`
	Subgraphs     int             `json:"subgraphs"`
	BestPartition json.RawMessage `json:"best_partition"`
}

func goldenFor(t *testing.T, model string) []byte {
	t.Helper()
	ev := eval.MustNew(models.MustBuild(model), hw.DefaultPlatform(), tiling.DefaultConfig())
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
	best, _, err := core.Run(ev, core.Options{
		Seed: goldenSeed, Workers: 4, Population: goldenPopulation, MaxSamples: goldenSamples,
		Objective: eval.Objective{Metric: eval.MetricEMA},
		Mem:       core.MemSearch{Fixed: mem},
	})
	if err != nil {
		t.Fatalf("%s: %v", model, err)
	}
	pj, err := serialize.EncodePartition(best.P)
	if err != nil {
		t.Fatalf("%s: encode partition: %v", model, err)
	}
	out, err := json.MarshalIndent(goldenRun{
		Model:         model,
		Seed:          goldenSeed,
		MaxSamples:    goldenSamples,
		Population:    goldenPopulation,
		Cost:          best.Cost,
		EMABytes:      best.Res.EMABytes,
		EnergyPJ:      best.Res.EnergyPJ,
		LatencyCycles: best.Res.LatencyCycles,
		Feasible:      best.Res.Feasible(),
		Subgraphs:     best.Res.NumSubgraphs,
		BestPartition: pj,
	}, "", "  ")
	if err != nil {
		t.Fatalf("%s: marshal: %v", model, err)
	}
	return append(out, '\n')
}

// TestGoldenRegression diffs every model's seeded run against its pinned
// dump, or rewrites the corpus under -update.
func TestGoldenRegression(t *testing.T) {
	for _, model := range models.Names() {
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			got := goldenFor(t, model)
			path := filepath.Join("testdata", "golden", model+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestGoldenRegression -update .`): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("golden mismatch for %s — if the change is intentional, regenerate with -update\n%s",
					model, goldenDiff(string(want), string(got)))
			}
		})
	}
}

// goldenDiff renders a compact first-divergence report (full JSON diffs are
// long; the first differing line plus context is what a reviewer needs).
func goldenDiff(want, got string) string {
	wl, gl := splitLines(want), splitLines(got)
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("first divergence at line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
	}
	return "contents equal?"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
