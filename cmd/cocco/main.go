// Command cocco runs a single Cocco search: graph partition for a fixed
// memory configuration, or full hardware-mapping co-exploration. With
// -islands > 1 the run becomes an island-model search — several GA
// populations exchanging genomes by ring migration — and -checkpoint /
// -resume make long runs interruptible.
//
// Examples:
//
//	cocco -model resnet50 -metric ema -samples 50000
//	cocco -model googlenet -metric energy -alpha 0.002 -search -kind shared
//	cocco -model nasnet -cores 4 -batch 8 -search -kind shared
//	cocco -model resnet152 -islands 4 -migrate-every 5 -checkpoint run.ckpt
//	cocco -model resnet152 -islands 4 -migrate-every 5 -checkpoint run.ckpt -resume run.ckpt
//	cocco -model resnet152 -cache-save run.cache
//	cocco -model resnet152 -cache-load run.cache -samples 100000   # warm start
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/partition"
	"cocco/internal/report"
	"cocco/internal/search"
	"cocco/internal/search/dist"
	"cocco/internal/serialize"
	"cocco/internal/tiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cocco: ")

	var (
		model    = flag.String("model", "resnet50", "model name: "+strings.Join(models.Names(), ", "))
		metric   = flag.String("metric", "energy", "optimization metric: ema | energy")
		alpha    = flag.Float64("alpha", 0.002, "Formula 2 preference α (0 = partition-only Formula 1)")
		samples  = flag.Int("samples", 50_000, "genome-evaluation budget per island (total = islands x samples)")
		popSize  = flag.Int("population", 100, "GA population size")
		seed     = flag.Int64("seed", 42, "random seed")
		doSearch = flag.Bool("search", false, "co-explore the memory configuration (DSE)")
		kind     = flag.String("kind", "separate", "buffer design: separate | shared")
		glbKB    = flag.Int64("glb", 1024, "global buffer KB (fixed-HW runs; shared capacity for -kind shared)")
		wgtKB    = flag.Int64("wgt", 1152, "weight buffer KB (fixed-HW separate runs)")
		cores    = flag.Int("cores", 1, "number of accelerator cores")
		batch    = flag.Int("batch", 1, "batch size")
		workers  = flag.Int("workers", 0, "evaluation goroutines (0 = all CPUs); results are identical for any value")
		tcfgFlag = flag.String("tiling", tiling.DefaultConfig().String(), "base tile as HxW (e.g. 2x2)")
		show     = flag.Int("show", 8, "number of subgraphs to print from the best partition")
		dump     = flag.String("dump", "", "write the best partition as JSON to this path")

		islands    = flag.Int("islands", 1, "GA islands; 1 reproduces the plain search bit-for-bit")
		migEvery   = flag.Int("migrate-every", 5, "generations between ring migrations")
		migrants   = flag.Int("migrants", 2, "genomes each island sends per migration")
		scouts     = flag.String("scouts", "", "comma-separated scout islands to add to the ring: sa, greedy")
		checkpoint = flag.String("checkpoint", "", "write a resumable snapshot to this path at every migration barrier")
		resume     = flag.String("resume", "", "resume from this snapshot if it exists (same flags required)")
		maxRounds  = flag.Int("max-rounds", 0, "pause after this many migration rounds (0 = run to completion)")
		cacheLoad  = flag.String("cache-load", "", "warm-start from this cost-cache snapshot if it exists (same model/core-geometry/tiling required — memory capacities, core count, and batch may differ; results are identical, only faster)")
		cacheSave  = flag.String("cache-save", "", "write the cost cache to this path after the search, for future -cache-load runs")

		distWorkers   = flag.String("dist-workers", "", "comma-separated coccow addresses; run the island ring across these worker processes (bit-identical to the same flags in-process)")
		distAsync     = flag.Bool("dist-async", false, "with -dist-workers: eventual migration without round barriers (faster coordination, non-deterministic, no checkpoints)")
		distIOTimeout = flag.Duration("dist-io-timeout", 3*time.Minute, "with -dist-workers: per-frame I/O deadline on worker connections; must exceed the slowest worker's MigrateEvery-round step (0 = no deadline)")
	)
	flag.Parse()

	g, err := models.Build(*model)
	if err != nil {
		log.Fatal(err)
	}
	tcfg, err := tiling.ParseConfig(*tcfgFlag)
	if err != nil {
		log.Fatal(err)
	}
	platform := hw.DefaultPlatform()
	platform.Cores = *cores
	platform.Batch = *batch
	ev, err := eval.New(g, platform, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	if *cacheLoad != "" {
		snap, err := serialize.ReadCostCacheFile(*cacheLoad)
		switch {
		case errors.Is(err, os.ErrNotExist):
			fmt.Printf("no cache snapshot at %s; starting cold\n", *cacheLoad)
		case err != nil:
			log.Fatal(err)
		default:
			n, err := ev.LoadCache(snap)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("warm start: loaded %d cached subgraph costs from %s\n", n, *cacheLoad)
		}
	}

	obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: *alpha}
	switch *metric {
	case "ema":
		obj.Metric = eval.MetricEMA
	case "energy":
	default:
		log.Fatalf("unknown metric %q", *metric)
	}

	bufKind := hw.SeparateBuffer
	if *kind == "shared" {
		bufKind = hw.SharedBuffer
	} else if *kind != "separate" {
		log.Fatalf("unknown buffer kind %q", *kind)
	}

	ms := core.MemSearch{Kind: bufKind}
	if *doSearch {
		ms.Search = true
		if bufKind == hw.SharedBuffer {
			ms.Global = hw.PaperSharedRange()
		} else {
			ms.Global = hw.PaperGlobalRange()
			ms.Weight = hw.PaperWeightRange()
		}
		if obj.Alpha == 0 {
			log.Fatal("-search requires -alpha > 0 (Formula 2)")
		}
	} else {
		ms.Fixed = hw.MemConfig{Kind: bufKind, GlobalBytes: *glbKB * hw.KiB}
		if bufKind == hw.SeparateBuffer {
			ms.Fixed.WeightBytes = *wgtKB * hw.KiB
		}
	}

	fmt.Printf("model %s: %d nodes, %d edges, %s weights, %.1f GMACs\n",
		g.Name, g.Len(), g.Edges(), report.Bytes(g.TotalWeightBytes()),
		float64(g.TotalMACs())/1e9)

	sopt := search.Options{
		Core: core.Options{
			Seed:       *seed,
			Workers:    *workers,
			Population: *popSize,
			MaxSamples: *samples,
			Objective:  obj,
			Mem:        ms,
		},
		Islands:      *islands,
		MigrateEvery: *migEvery,
		Migrants:     *migrants,
		Checkpoint:   *checkpoint,
		MaxRounds:    *maxRounds,
	}
	if *scouts != "" {
		for _, s := range strings.Split(*scouts, ",") {
			switch strings.TrimSpace(s) {
			case "sa":
				sopt.Scouts = append(sopt.Scouts, search.ScoutSA)
			case "greedy":
				sopt.Scouts = append(sopt.Scouts, search.ScoutGreedy)
			default:
				log.Fatalf("unknown scout kind %q (want sa or greedy)", s)
			}
		}
	}
	var (
		best  *core.Genome
		stats *search.Stats
	)
	if *distWorkers != "" {
		dopt := dist.Options{Search: sopt, Async: *distAsync, IOTimeout: *distIOTimeout}
		for _, a := range strings.Split(*distWorkers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				dopt.Workers = append(dopt.Workers, a)
			}
		}
		best, stats, err = dist.RunOrResume(ev, dopt, *resume)
	} else {
		if *distAsync {
			log.Fatal("-dist-async requires -dist-workers")
		}
		best, stats, err = search.RunOrResume(ev, sopt, *resume)
	}
	if err != nil {
		log.Fatal(err)
	}

	if stats.Paused {
		fmt.Printf("\npaused after %d rounds (budget remains; continue with -resume %s)\n",
			stats.Rounds, *checkpoint)
	}
	fmt.Printf("\nbest after %d samples (%d feasible, %d migrations over %d islands):\n",
		stats.Samples, stats.FeasibleSamples, stats.Migrations, len(stats.IslandStats))
	if len(stats.IslandStats) > 1 {
		fmt.Printf("  best found by island %d\n", stats.BestIsland)
		printIslands(os.Stdout, sopt, stats)
	}
	fmt.Printf("  memory    %v (total %s)\n", best.Mem, report.Bytes(best.Mem.TotalBytes()))
	fmt.Printf("  cost      %.6g\n", best.Cost)
	fmt.Printf("  EMA       %s\n", report.Bytes(best.Res.EMABytes))
	fmt.Printf("  energy    %s\n", report.MJ(best.Res.EnergyPJ))
	fmt.Printf("  latency   %s\n", report.MS(ev.LatencySeconds(best.Res.LatencyCycles)))
	fmt.Printf("  avg BW    %s\n", report.GBps(best.Res.AvgBWBytesPerSec))
	fmt.Printf("  subgraphs %d\n", best.P.NumSubgraphs())

	printPartition(os.Stdout, ev, best.P, *show)

	if *cacheSave != "" {
		snap, err := ev.ExportCache()
		if err != nil {
			log.Fatal(err)
		}
		if err := serialize.WriteCostCacheFile(*cacheSave, snap); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote cost-cache snapshot %s (%d subgraphs)\n", *cacheSave, len(snap.Entries))
	}

	if *dump != "" {
		data, err := serialize.EncodePartition(best.P)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*dump, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d bytes)\n", *dump, len(data))
	}
}

// printIslands summarizes each ring member's contribution: samples spent,
// feasible genomes seen, memo hits, and migrants exchanged (the migrant
// columns stay blank when the ring never migrated).
func printIslands(w *os.File, sopt search.Options, stats *search.Stats) {
	fmt.Fprintf(w, "  island  kind    samples  feasible  memo-hits  sent  recv\n")
	for i, is := range stats.IslandStats {
		kind := "ga"
		if i >= sopt.Islands {
			kind = sopt.Scouts[i-sopt.Islands].String()
		}
		sent, recv := "-", "-"
		if stats.MigrantsSent != nil {
			sent = fmt.Sprintf("%d", stats.MigrantsSent[i])
			recv = fmt.Sprintf("%d", stats.MigrantsReceived[i])
		}
		fmt.Fprintf(w, "  %-6d  %-6s  %7d  %8d  %9d  %4s  %4s\n",
			i, kind, is.Samples, is.FeasibleSamples, is.MemoHits, sent, recv)
	}
}

func printPartition(w *os.File, ev *eval.Evaluator, p *partition.Partition, show int) {
	g := ev.Graph()
	fmt.Fprintln(w, "\nfirst subgraphs of the best partition:")
	for s, members := range p.Subgraphs() {
		if s >= show {
			fmt.Fprintf(w, "  ... (%d more)\n", p.NumSubgraphs()-show)
			break
		}
		c := ev.Subgraph(members)
		names := make([]string, 0, len(members))
		for _, id := range members {
			names = append(names, g.Node(id).Name)
		}
		const maxNames = 6
		label := strings.Join(names, ",")
		if len(names) > maxNames {
			label = strings.Join(names[:maxNames], ",") + fmt.Sprintf(",+%d", len(names)-maxNames)
		}
		fmt.Fprintf(w, "  #%-3d %2d layers  wgt=%-9s act=%-9s io=%-9s  [%s]\n",
			s, len(members), report.Bytes(c.WeightBytes), report.Bytes(c.ActFootprint),
			report.Bytes(c.InBytes+c.OutBytes), label)
	}
}
