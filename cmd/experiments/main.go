// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                 # run everything with the default budgets
//	experiments -exp table1     # one experiment
//	experiments -budget paper   # the paper's full sample budgets
//	experiments -budget quick   # smoke-test budgets
//
// Experiments: fig2, fig3, fig11, table1, table2, fig12, fig13, fig14,
// table3, ablations, bounds.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"cocco/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		exp     = flag.String("exp", "all", "experiment to run (all, fig1, fig2, fig3, fig11, table1, table2, fig12, fig13, fig14, table3, ablations, bounds)")
		budget  = flag.String("budget", "default", "sample budgets: quick | default | paper")
		seed    = flag.Int64("seed", 42, "random seed")
		workers = flag.Int("workers", 0, "evaluation goroutines per search (0 = all CPUs); results are identical for any value")
	)
	flag.Parse()

	var cfg experiments.Config
	switch *budget {
	case "quick":
		cfg = experiments.Quick()
	case "default":
		cfg = experiments.Default()
	case "paper":
		cfg = experiments.Paper()
	default:
		log.Fatalf("unknown budget %q", *budget)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	runners := []struct {
		name string
		run  func() string
	}{
		{"fig1", func() string { _, s := experiments.Figure1Sweep(cfg, "resnet50"); return s }},
		{"fig2", experiments.Figure2},
		{"fig3", func() string { _, s := experiments.Figure3(); return s }},
		{"fig11", func() string { _, s := experiments.Figure11(cfg); return s }},
		{"table1", func() string { _, s := experiments.Table1(cfg); return s }},
		{"table2", func() string { _, s := experiments.Table2(cfg); return s }},
		{"fig12", func() string { _, s := experiments.Figure12(cfg); return s }},
		{"fig13", func() string { _, s := experiments.Figure13(cfg); return s }},
		{"fig14", func() string { _, s := experiments.Figure14(cfg); return s }},
		{"table3", func() string { _, s := experiments.Table3(cfg); return s }},
		{"ablations", func() string {
			_, a := experiments.AblationTiling()
			_, b := experiments.AblationGA(cfg)
			_, c := experiments.AblationCache(cfg)
			_, d := experiments.AblationPrefetch(cfg)
			_, e := experiments.AblationSeeding(cfg)
			_, f := experiments.AblationDeltaEval(cfg)
			_, g := experiments.AblationIslands(cfg)
			return a + b + c + d + e + f + g
		}},
		{"bounds", experiments.MinEMABounds},
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		t0 := time.Now()
		fmt.Println(r.run())
		fmt.Printf("[%s completed in %v]\n\n", r.name, time.Since(t0).Round(time.Millisecond))
	}
	if !ran {
		log.Fatalf("unknown experiment %q", *exp)
	}
}
