// Command coccow is the distributed-search worker. It builds one evaluator
// for a model/platform/tiling triple, listens on -listen, and serves
// coordinator sessions (cocco -dist-workers) until killed. The handshake
// compares evaluator fingerprints, so a worker started with different flags
// than its coordinator refuses the session instead of silently diverging.
//
// Example — a 2-process fleet on one machine:
//
//	coccow -model resnet152 -listen 127.0.0.1:7701 &
//	coccow -model resnet152 -listen 127.0.0.1:7702 &
//	cocco  -model resnet152 -islands 4 -scouts sa -dist-workers 127.0.0.1:7701,127.0.0.1:7702
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/search/dist"
	"cocco/internal/serialize"
	"cocco/internal/tiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coccow: ")

	var (
		listen    = flag.String("listen", "127.0.0.1:0", "address to accept coordinator connections on")
		model     = flag.String("model", "resnet50", "model name: "+strings.Join(models.Names(), ", "))
		cores     = flag.Int("cores", 1, "number of accelerator cores (must match the coordinator)")
		batch     = flag.Int("batch", 1, "batch size (must match the coordinator)")
		workers   = flag.Int("workers", 0, "evaluation goroutines for this process (0 = all CPUs)")
		tcfgFlag  = flag.String("tiling", tiling.DefaultConfig().String(), "base tile as HxW (must match the coordinator)")
		cacheLoad = flag.String("cache-load", "", "warm-start from this cost-cache snapshot if it exists")
	)
	flag.Parse()

	g, err := models.Build(*model)
	if err != nil {
		log.Fatal(err)
	}
	tcfg, err := tiling.ParseConfig(*tcfgFlag)
	if err != nil {
		log.Fatal(err)
	}
	platform := hw.DefaultPlatform()
	platform.Cores = *cores
	platform.Batch = *batch
	ev, err := eval.New(g, platform, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	if *cacheLoad != "" {
		snap, err := serialize.ReadCostCacheFile(*cacheLoad)
		switch {
		case errors.Is(err, os.ErrNotExist):
			fmt.Printf("no cache snapshot at %s; starting cold\n", *cacheLoad)
		case err != nil:
			log.Fatal(err)
		default:
			n, err := ev.LoadCache(snap)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("warm start: loaded %d cached subgraph costs from %s\n", n, *cacheLoad)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address matters with -listen :0; print it in a greppable
	// form so scripts (and the CI dist-smoke job) can pick it up.
	fmt.Printf("coccow listening on %s (model %s, %d nodes)\n", ln.Addr(), g.Name, g.Len())
	if err := dist.Serve(ln, ev, *workers); err != nil {
		log.Fatal(err)
	}
}
