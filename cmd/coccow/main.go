// Command coccow is the distributed-search worker. It builds one evaluator
// for a model/platform/tiling triple, listens on -listen, and serves
// coordinator sessions (cocco -dist-workers) until killed. The handshake
// compares evaluator fingerprints, so a worker started with different flags
// than its coordinator refuses the session instead of silently diverging.
//
// Example — a 2-process fleet on one machine:
//
//	coccow -model resnet152 -listen 127.0.0.1:7701 &
//	coccow -model resnet152 -listen 127.0.0.1:7702 &
//	cocco  -model resnet152 -islands 4 -scouts sa -dist-workers 127.0.0.1:7701,127.0.0.1:7702
//
// SIGINT/SIGTERM drain the worker: the listener closes (no new sessions), an
// in-flight session is aborted at its next frame boundary with an error frame
// to the coordinator, and the process exits with status 3 so supervisors can
// tell a clean drain from a crash.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/search/dist"
	"cocco/internal/serialize"
	"cocco/internal/tiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coccow: ")

	var (
		listen    = flag.String("listen", "127.0.0.1:0", "address to accept coordinator connections on")
		model     = flag.String("model", "resnet50", "model name: "+strings.Join(models.Names(), ", "))
		cores     = flag.Int("cores", 1, "number of accelerator cores (must match the coordinator)")
		batch     = flag.Int("batch", 1, "batch size (must match the coordinator)")
		workers   = flag.Int("workers", 0, "evaluation goroutines for this process (0 = all CPUs)")
		tcfgFlag  = flag.String("tiling", tiling.DefaultConfig().String(), "base tile as HxW (must match the coordinator)")
		cacheLoad = flag.String("cache-load", "", "warm-start from this cost-cache snapshot if it exists")
		ioTimeout = flag.Duration("io-timeout", 3*time.Minute, "per-frame I/O deadline on coordinator sessions; must exceed the fleet's slowest MigrateEvery-round step (0 = no deadline)")
	)
	flag.Parse()

	g, err := models.Build(*model)
	if err != nil {
		log.Fatal(err)
	}
	tcfg, err := tiling.ParseConfig(*tcfgFlag)
	if err != nil {
		log.Fatal(err)
	}
	platform := hw.DefaultPlatform()
	platform.Cores = *cores
	platform.Batch = *batch
	ev, err := eval.New(g, platform, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	if *cacheLoad != "" {
		snap, err := serialize.ReadCostCacheFile(*cacheLoad)
		switch {
		case errors.Is(err, os.ErrNotExist):
			fmt.Printf("no cache snapshot at %s; starting cold\n", *cacheLoad)
		case err != nil:
			log.Fatal(err)
		default:
			n, err := ev.LoadCache(snap)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("warm start: loaded %d cached subgraph costs from %s\n", n, *cacheLoad)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address matters with -listen :0; print it in a greppable
	// form so scripts (and the CI dist-smoke job) can pick it up.
	fmt.Printf("coccow listening on %s (model %s, %d nodes)\n", ln.Addr(), g.Name, g.Len())

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v: refusing new sessions, aborting in-flight session at next frame", s)
		close(stop)
	}()

	err = dist.ServeWith(ln, ev, dist.ServeConfig{Workers: *workers, IOTimeout: *ioTimeout, Stop: stop})
	switch {
	case errors.Is(err, dist.ErrDraining):
		log.Printf("drained cleanly")
		os.Exit(3)
	case err != nil:
		log.Fatal(err)
	}
}
