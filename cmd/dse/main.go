// Command dse runs a batched multi-config design-space exploration: a grid
// of hardware configurations (buffer kinds and capacities, core counts,
// batch sizes) × models, each point searched by the island-model
// orchestrator, consolidated into a per-model Pareto front of buffer
// capacity vs cost. Every model shares one evaluation GraphContext across
// its grid points, so the graph-derived cold path is paid once per model.
//
// Capacity axes accept either a comma list of KB values ("256,512,1024")
// or an inclusive KB range "min:max:step" ("128:2048:64", the paper's
// global-buffer range).
//
// With -checkpoint-dir the sweep is resumable: rerunning the same command
// skips completed configs and resumes interrupted ones, producing the same
// Pareto front an uninterrupted run would. -max-rounds time-boxes each
// config's search; paused configs continue on the next invocation.
//
// Examples:
//
//	dse -models googlenet,resnet50 -glb 256,512,1024 -wgt 288,576
//	dse -models all -kind both -glb 128:2048:256 -wgt 144:2304:288 -metric ema
//	dse -models nasnet -glb 512:3072:512 -kind shared -cores 1,2,4 -batch 1,8
//	dse -models gpt -glb 256:2048:128 -wgt 288,1152 -checkpoint-dir sweep/ -max-rounds 50
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"cocco/internal/core"
	"cocco/internal/dse"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/search"
	"cocco/internal/tiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dse: ")

	var (
		modelsFlag = flag.String("models", "googlenet", "comma-separated model names, or 'all': "+strings.Join(models.Names(), ", "))
		kind       = flag.String("kind", "separate", "buffer design axis: separate | shared | both")
		glb        = flag.String("glb", "256,512,1024,2048", "global/shared-buffer KB axis: comma list or min:max:step")
		wgt        = flag.String("wgt", "288,576,1152,2304", "weight-buffer KB axis (separate kind): comma list or min:max:step")
		coresFlag  = flag.String("cores", "1", "comma-separated core counts")
		batchFlag  = flag.String("batch", "1", "comma-separated batch sizes")
		tcfgFlag   = flag.String("tiling", tiling.DefaultConfig().String(), "base tile as HxW (e.g. 2x2)")

		metric  = flag.String("metric", "energy", "optimization metric: ema | energy")
		alpha   = flag.Float64("alpha", 0, "Formula 2 preference α (0 = partition-only Formula 1)")
		samples = flag.Int("samples", 10_000, "genome-evaluation budget per island per config")
		popSize = flag.Int("population", 100, "GA population size")
		seed    = flag.Int64("seed", 42, "base seed; config i uses seed+i")
		workers = flag.Int("workers", 1, "configs searched concurrently (never changes results)")

		islands   = flag.Int("islands", 1, "GA islands per config")
		migEvery  = flag.Int("migrate-every", 5, "generations between ring migrations")
		migrants  = flag.Int("migrants", 2, "genomes each island sends per migration")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for per-config checkpoints and outcomes plus per-geometry cost-cache snapshots (enables resume + warm starts)")
		maxRounds = flag.Int("max-rounds", 0, "pause each config after this many rounds (0 = run to completion; needs -checkpoint-dir)")
		noCache   = flag.Bool("no-cache-snapshots", false, "skip the per-geometry cost-cache warm-start files (results are identical either way)")

		csvPath = flag.String("csv", "", "also write the full sweep table as CSV to this path")
		full    = flag.Bool("full", false, "print the full sweep table, not just the Pareto fronts")
	)
	flag.Parse()

	grid, err := buildGrid(*modelsFlag, *kind, *glb, *wgt, *coresFlag, *batchFlag, *tcfgFlag)
	if err != nil {
		log.Fatal(err)
	}
	configs, err := grid.Configs()
	if err != nil {
		log.Fatal(err)
	}

	obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: *alpha}
	switch *metric {
	case "ema":
		obj.Metric = eval.MetricEMA
	case "energy":
	default:
		log.Fatalf("unknown metric %q", *metric)
	}

	opt := dse.Options{
		Grid: grid,
		Search: search.Options{
			Core: core.Options{
				Seed:       *seed,
				Population: *popSize,
				MaxSamples: *samples,
				Objective:  obj,
			},
			Islands:      *islands,
			MigrateEvery: *migEvery,
			Migrants:     *migrants,
			MaxRounds:    *maxRounds,
		},
		Workers:               *workers,
		CheckpointDir:         *ckptDir,
		DisableCacheSnapshots: *noCache,
		Warnf:                 log.Printf,
		OnConfigDone: func(o dse.Outcome) error {
			cost := "-"
			if o.Feasible {
				cost = fmt.Sprintf("%.6g", o.Cost)
			}
			fmt.Printf("[%3d/%d] %-10s %-28s cost=%-12s (%d samples)\n",
				o.Config.Index+1, len(configs), o.Status, o.Config.String(), cost, o.Samples)
			return nil
		},
	}

	fmt.Printf("sweeping %d configs over %d models (%d workers)\n",
		len(configs), len(grid.Models), *workers)
	rep, err := dse.Run(opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	if *full {
		fmt.Println(rep.Table())
	}
	fmt.Println(rep.FrontTable())
	if rep.Paused() {
		fmt.Printf("sweep paused (some configs hit -max-rounds); rerun the same command to continue\n")
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(rep.Table().CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

// buildGrid assembles the sweep grid from the flag values.
func buildGrid(modelsFlag, kind, glb, wgt, cores, batch, tcfg string) (dse.Grid, error) {
	var g dse.Grid
	if modelsFlag == "all" {
		g.Models = models.Names()
	} else {
		for _, m := range strings.Split(modelsFlag, ",") {
			g.Models = append(g.Models, strings.TrimSpace(m))
		}
	}
	switch kind {
	case "separate":
		g.Kinds = []hw.BufferKind{hw.SeparateBuffer}
	case "shared":
		g.Kinds = []hw.BufferKind{hw.SharedBuffer}
	case "both":
		g.Kinds = []hw.BufferKind{hw.SeparateBuffer, hw.SharedBuffer}
	default:
		return g, fmt.Errorf("unknown buffer kind %q (want separate, shared, or both)", kind)
	}
	var err error
	if g.GlobalBytes, err = parseKBAxis(glb); err != nil {
		return g, fmt.Errorf("-glb: %w", err)
	}
	if g.WeightBytes, err = parseKBAxis(wgt); err != nil {
		return g, fmt.Errorf("-wgt: %w", err)
	}
	if g.Cores, err = parseIntList(cores); err != nil {
		return g, fmt.Errorf("-cores: %w", err)
	}
	if g.Batch, err = parseIntList(batch); err != nil {
		return g, fmt.Errorf("-batch: %w", err)
	}
	if g.Tiling, err = tiling.ParseConfig(tcfg); err != nil {
		return g, err
	}
	return g, nil
}

// parseKBAxis parses a capacity axis in KB: "a,b,c" or inclusive "min:max:step".
func parseKBAxis(s string) ([]int64, error) {
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("range must be min:max:step, got %q", s)
		}
		var r [3]int64
		for i, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad range bound %q", p)
			}
			r[i] = v
		}
		vals := (hw.MemRange{Min: r[0] * hw.KiB, Max: r[1] * hw.KiB, Step: r[2] * hw.KiB}).Candidates()
		if len(vals) == 0 {
			return nil, fmt.Errorf("empty range %q", s)
		}
		return vals, nil
	}
	var out []int64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad KB value %q", p)
		}
		out = append(out, v*hw.KiB)
	}
	return out, nil
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
