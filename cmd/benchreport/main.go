// Command benchreport runs the repo's performance-tracking workloads through
// testing.Benchmark and records the results as JSON, so the perf trajectory
// of the evaluation engine lives in version control instead of scrollback.
//
//	go run ./cmd/benchreport -o BENCH_coldpath.json
//
// Three workloads are measured:
//
//   - cold: the cold-path workload of BenchmarkColdEval — a fresh evaluator
//     scoring a fixed seeded set of random partitions per model, so every
//     subgraph pays the full computeSubgraph + tiling derivation.
//   - delta: the warm mutation-dominated workload of BenchmarkDeltaEval —
//     full-recompute vs carried-handle evaluation of single-mutation
//     offspring.
//   - ga: the end-to-end seeded GA of BenchmarkGAParallel at increasing
//     worker counts (delta engine).
//
// Cold results are compared against the recorded pre-overhaul baseline (the
// PR-2 tree, commit e055771, measured on the reference dev box) so the
// speedup of the dense-indexing overhaul is part of the report.
//
// A fourth workload, search_orchestrator (-orch, BENCH_searchorch.json),
// measures the island-model orchestrator: aggregate samples/s as the same
// per-island budget runs on 1, 2, and 4 islands over a shared evaluator.
// The scaling column is hardware-dependent — island steps overlap across
// cores — so the report records the host CPU count alongside it.
//
// A fifth workload, dse (-dse, BENCH_dse.json), measures the
// GraphContext/Evaluator split that the batched multi-config DSE driver
// rests on: per-model evaluator-construction cost standalone (eval.New,
// full graph-derived cold path) vs from a warm shared context
// (GraphContext.NewEvaluator), and sweep throughput (configs/s) at widths
// 1, 8, and 64 with per-config rebuild vs one shared context. The workload
// asserts the split's contract — warm shared construction at least 5x
// faster than standalone on every zoo model, and the shared sweep beating
// rebuild at widths >= 8 — and exits non-zero if either fails.
//
// A seventh workload, distsearch (-distsearch, BENCH_distsearch.json),
// measures the distributed island search: aggregate samples/s for the same
// 4-island ring run in-process vs across 1/2/4 worker processes (the binary
// re-executes itself in a hidden -dist-worker mode), plus the async
// eventual-migration fleet at the widest process count. Every contender is
// pinned to one evaluation goroutine per process, so process count is the
// scaling axis; the >=1.8x floor for the 4-process fleet is asserted only on
// hosts with at least 4 CPUs (a 1-CPU host honestly reports parity or
// below).
//
// A sixth workload, cachewarm (-cachewarm, BENCH_cachewarm.json), measures
// the persistent cost cache: the first search over a fixed partition set,
// cold vs warm-started from a prior run's snapshot (decode + keep-first
// load included in the warm timing), per zoo model. It asserts the warm
// first search is at least 2x the cold one on the large dense/cell-wired
// models (where per-subgraph costing dominates) and exits non-zero
// otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/partition"
	"cocco/internal/search"
	"cocco/internal/serialize"
	"cocco/internal/tiling"
)

// coldBaseline is the pre-overhaul BenchmarkColdEval result per model
// (evals/s, allocs/op), recorded before the dense-indexing rework so every
// future report shows the trajectory against a fixed reference point.
var coldBaseline = map[string][2]float64{
	"densenet121": {1130, 49052},
	"googlenet":   {5560, 11463},
	"gpt":         {3731, 17627},
	"mobilenetv2": {8890, 8029},
	"nasnet":      {1534, 39368},
	"randwire-a":  {3394, 17405},
	"randwire-b":  {2207, 26716},
	"resnet152":   {2556, 27650},
	"resnet50":    {7445, 9546},
	"transformer": {8152, 8477},
	"unet":        {20303, 3841},
	"vgg16":       {33841, 2528},
}

// searchMutationBaseline is the pre-overhaul BenchmarkMutationOps result per
// model (ops/s, allocs/op), recorded on the PR-3 tree (commit 518d72f,
// reference dev box) before the dense partition-operator workspace landed.
var searchMutationBaseline = map[string][2]float64{
	"densenet121": {6578, 894},
	"googlenet":   {29448, 258},
	"gpt":         {17561, 433},
	"mobilenetv2": {36981, 225},
	"nasnet":      {6853, 887},
	"randwire-a":  {16508, 382},
	"randwire-b":  {9925, 569},
	"resnet152":   {10605, 694},
	"resnet50":    {32874, 256},
	"transformer": {36063, 233},
	"unet":        {70948, 116},
	"vgg16":       {130889, 76},
}

// searchGABaseline is the pre-overhaul end-to-end GA throughput
// (samples/s, 1000 samples, Workers=4, no genome memo) on the same tree.
var searchGABaseline = map[string]float64{
	"resnet50":  9278,
	"googlenet": 12256,
	"nasnet":    3370,
}

// searchGAModels is the subset of the zoo the end-to-end GA workload runs on
// (a full zoo sweep of whole searches would dominate the report's runtime).
var searchGAModels = []string{"resnet50", "googlenet", "nasnet"}

type coldRow struct {
	Model       string  `json:"model"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	// Trajectory vs the recorded pre-overhaul baseline (0 if unknown model).
	BaselineEvalsPerSec float64 `json:"baseline_evals_per_sec,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
	AllocReduction      float64 `json:"alloc_reduction,omitempty"`
}

type deltaRow struct {
	Engine      string  `json:"engine"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type gaRow struct {
	Workers     int     `json:"workers"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
}

type report struct {
	Bench    string     `json:"bench"`
	Go       string     `json:"go"`
	GOOS     string     `json:"goos"`
	GOARCH   string     `json:"goarch"`
	NumCPU   int        `json:"num_cpu"`
	Baseline string     `json:"baseline"`
	Cold     []coldRow  `json:"cold_eval"`
	Delta    []deltaRow `json:"delta_eval"`
	GA       []gaRow    `json:"ga_parallel"`
}

// mutationRow is one model of the search_path mutation workload
// (BenchmarkMutationOps: modify/split/merge/crossover cycle, no evaluation).
type mutationRow struct {
	Model       string  `json:"model"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	BaselineOpsPerSec   float64 `json:"baseline_ops_per_sec,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
	AllocReduction      float64 `json:"alloc_reduction,omitempty"`
}

// searchGARow is one (model, memo setting) of the search_path end-to-end GA
// workload.
type searchGARow struct {
	Model         string  `json:"model"`
	Memo          bool    `json:"memo"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	NsPerOp       float64 `json:"ns_per_op"`
	MemoHits      int     `json:"memo_hits,omitempty"`

	BaselineSamplesPerSec float64 `json:"baseline_samples_per_sec,omitempty"`
	Speedup               float64 `json:"speedup,omitempty"`
}

// searchReport is the search_path workload file (BENCH_searchpath.json):
// candidate-generation throughput plus end-to-end GA samples/sec with the
// genome memo on and off, against the embedded pre-overhaul baseline.
type searchReport struct {
	Bench    string        `json:"bench"`
	Go       string        `json:"go"`
	GOOS     string        `json:"goos"`
	GOARCH   string        `json:"goarch"`
	NumCPU   int           `json:"num_cpu"`
	Baseline string        `json:"baseline"`
	Mutation []mutationRow `json:"mutation_ops"`
	GA       []searchGARow `json:"ga_search"`
}

// orchRow is one (model, island count) of the search_orchestrator workload.
type orchRow struct {
	Model         string  `json:"model"`
	Islands       int     `json:"islands"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	NsPerOp       float64 `json:"ns_per_op"`
	// SpeedupVs1 is aggregate samples/s relative to the same model's
	// single-island row.
	SpeedupVs1 float64 `json:"speedup_vs_1,omitempty"`
	// Migrations is the number of ring barriers the run executed.
	Migrations int `json:"migrations"`
}

// orchReport is the search_orchestrator workload file (BENCH_searchorch.json).
type orchReport struct {
	Bench  string    `json:"bench"`
	Go     string    `json:"go"`
	GOOS   string    `json:"goos"`
	GOARCH string    `json:"goarch"`
	NumCPU int       `json:"num_cpu"`
	Note   string    `json:"note"`
	Rows   []orchRow `json:"search_orchestrator"`
}

// dseConstructRow is one zoo model of the dse construction workload.
type dseConstructRow struct {
	Model string `json:"model"`
	// StandaloneNsPerOp is one eval.New: per-node tables, tiling Deriver
	// validation, and the compute-cycle table, all from scratch.
	StandaloneNsPerOp float64 `json:"standalone_ns_per_op"`
	// SharedNsPerOp is one GraphContext.NewEvaluator against a warm context
	// (the cost every config after the first pays in a sweep).
	SharedNsPerOp float64 `json:"shared_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

// dseSweepRow is one (model, width) of the dse sweep-throughput workload.
type dseSweepRow struct {
	Model string `json:"model"`
	// Width is the number of platform configs built per sweep.
	Width int `json:"width"`
	// RebuildConfigsPerSec builds every config with standalone eval.New;
	// SharedConfigsPerSec builds one GraphContext per sweep and derives
	// every config's evaluator from it (context cost included).
	RebuildConfigsPerSec float64 `json:"rebuild_configs_per_sec"`
	SharedConfigsPerSec  float64 `json:"shared_configs_per_sec"`
	Speedup              float64 `json:"speedup"`
}

// dseCacheShareRow is one (model, width) of the cacheshare dimension:
// sweep throughput in configs/s where every config EVALUATES a fixed
// seeded partition set, with the subgraph-cost cache shared across the
// sweep's evaluators (one GraphContext) vs private per config (a fresh
// context per config, so each pays its own cold costing).
type dseCacheShareRow struct {
	Model                string  `json:"model"`
	Width                int     `json:"width"`
	PrivateConfigsPerSec float64 `json:"private_configs_per_sec"`
	SharedConfigsPerSec  float64 `json:"shared_configs_per_sec"`
	Speedup              float64 `json:"speedup"`
}

// dseReport is the dse workload file (BENCH_dse.json).
type dseReport struct {
	Bench      string             `json:"bench"`
	Go         string             `json:"go"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	Note       string             `json:"note"`
	Construct  []dseConstructRow  `json:"construct"`
	Sweep      []dseSweepRow      `json:"sweep"`
	CacheShare []dseCacheShareRow `json:"cacheshare"`
}

// cachewarmRow is one zoo model of the cachewarm workload: the first search
// over a fixed partition set, cold vs warm-started from a prior run's
// cost-cache snapshot (decode + LoadCache included in the warm timing).
type cachewarmRow struct {
	Model           string  `json:"model"`
	ColdEvalsPerSec float64 `json:"cold_evals_per_sec"`
	WarmEvalsPerSec float64 `json:"warm_evals_per_sec"`
	Speedup         float64 `json:"speedup"`
	// SnapshotEntries and SnapshotBytes size the warm-start asset.
	SnapshotEntries int `json:"snapshot_entries"`
	SnapshotBytes   int `json:"snapshot_bytes"`
}

// cachewarmReport is the cachewarm workload file (BENCH_cachewarm.json).
type cachewarmReport struct {
	Bench  string         `json:"bench"`
	Go     string         `json:"go"`
	GOOS   string         `json:"goos"`
	GOARCH string         `json:"goarch"`
	NumCPU int            `json:"num_cpu"`
	Note   string         `json:"note"`
	Rows   []cachewarmRow `json:"cachewarm"`
}

// cachewarmFloorModels are the large dense/cell-wired zoo models the >=2x
// warm-start floor is asserted on. Chain-style models (the resnets, vgg16)
// still report their ratio but are not floored: their random partitions cut
// into many small subgraphs whose cold costing is cheap relative to the
// per-lookup work a warm hit still pays (key build + hash + probe), so
// their structural gain sits around 1.4-2.1x. Dense adjacency makes the
// per-subgraph footprint derivation expensive, which is exactly what the
// snapshot elides.
var cachewarmFloorModels = map[string]bool{
	"densenet121": true,
	"nasnet":      true,
	"randwire-a":  true,
	"randwire-b":  true,
}

// cachewarmWorkload measures one model's cold vs warm-loaded first search:
// the same seeded partition set scored by a fresh evaluator, with the warm
// side decoding and loading a snapshot exported from an identical prior run
// before its first evaluation.
func cachewarmWorkload(model string, nparts int) (cachewarmRow, error) {
	g, err := models.Build(model)
	if err != nil {
		return cachewarmRow{}, err
	}
	rng := rand.New(rand.NewSource(3))
	parts := make([]*partition.Partition, nparts)
	for i := range parts {
		parts[i] = core.RandomPartition(g, rng, 0.3)
	}
	mem := defaultMem()

	// The "prior run": evaluate the same workload once and snapshot.
	prior := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	for _, p := range parts {
		prior.Partition(p, mem)
	}
	snap, err := prior.ExportCache()
	if err != nil {
		return cachewarmRow{}, err
	}
	data, err := serialize.EncodeCostCache(snap)
	if err != nil {
		return cachewarmRow{}, err
	}

	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
			for _, p := range parts {
				ev.Partition(p, mem)
			}
		}
	})
	warm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
			loaded, err := serialize.DecodeCostCache(data)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ev.LoadCache(loaded); err != nil {
				b.Fatal(err)
			}
			for _, p := range parts {
				ev.Partition(p, mem)
			}
		}
	})
	row := cachewarmRow{
		Model:           model,
		ColdEvalsPerSec: float64(nparts) * float64(cold.N) / cold.T.Seconds(),
		WarmEvalsPerSec: float64(nparts) * float64(warm.N) / warm.T.Seconds(),
		SnapshotEntries: len(snap.Entries),
		SnapshotBytes:   len(data),
	}
	if row.ColdEvalsPerSec > 0 {
		row.Speedup = row.WarmEvalsPerSec / row.ColdEvalsPerSec
	}
	return row, nil
}

// cachewarmParts is the fixed partition-set size of the cachewarm workload.
// Unlike the other workloads it does NOT shrink under -quick: the >=2x floor
// is a claim about this exact workload, and a smaller set amortizes the
// warm side's decode+load over too few evaluations to make that claim.
const cachewarmParts = 8

// runCachewarmWorkload runs the warm-start workload over the zoo and writes
// out, returning false when the floor assertion failed.
func runCachewarmWorkload(out string) bool {
	rep := cachewarmReport{
		Bench:  "cachewarm",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Note:   "first search over a fixed partition set, cold vs warm-started from a prior run's cost-cache snapshot (decode+load included in warm timing); >=2x floor asserted on the large dense/cell-wired models (chain-style models cost small subgraphs too cheaply for the floor)",
	}
	failed := false
	for _, model := range models.Names() {
		row, err := cachewarmWorkload(model, cachewarmParts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: cachewarm %s: %v\n", model, err)
			os.Exit(1)
		}
		fmt.Printf("warm  %-12s cold %9.0f evals/s  warm %9.0f evals/s  (%.1fx, %d entries, %s)\n",
			row.Model, row.ColdEvalsPerSec, row.WarmEvalsPerSec, row.Speedup, row.SnapshotEntries, fmtBytes(row.SnapshotBytes))
		if cachewarmFloorModels[model] && row.Speedup < 2 {
			fmt.Fprintf(os.Stderr, "benchreport: cachewarm: %s warm-loaded first search only %.2fx cold (want >= 2x)\n",
				model, row.Speedup)
			failed = true
		}
		rep.Rows = append(rep.Rows, row)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: marshal cachewarm: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: write cachewarm: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
	return !failed
}

// fmtBytes renders a byte count for the progress lines.
func fmtBytes(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
}

// dseConstructWorkload measures standalone vs warm-shared-context evaluator
// construction for one model.
func dseConstructWorkload(model string) (dseConstructRow, error) {
	g, err := models.Build(model)
	if err != nil {
		return dseConstructRow{}, err
	}
	platform := hw.DefaultPlatform()
	standalone := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eval.MustNew(g, platform, tiling.DefaultConfig())
		}
	})
	gc := eval.NewGraphContext(g, tiling.DefaultConfig())
	gc.MustNewEvaluator(platform) // warm the context's cycle-table memo
	shared := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gc.MustNewEvaluator(platform)
		}
	})
	row := dseConstructRow{
		Model:             model,
		StandaloneNsPerOp: float64(standalone.NsPerOp()),
		SharedNsPerOp:     float64(shared.NsPerOp()),
	}
	if row.SharedNsPerOp > 0 {
		row.Speedup = row.StandaloneNsPerOp / row.SharedNsPerOp
	}
	return row, nil
}

// dseSweepPlatforms returns width platform variants sweeping the cores and
// batch axes over a fixed core geometry, like a real DSE grid.
func dseSweepPlatforms(width int) []hw.Platform {
	out := make([]hw.Platform, width)
	for i := range out {
		p := hw.DefaultPlatform()
		p.Cores = i%4 + 1
		p.Batch = 1 << (i % 3)
		out[i] = p
	}
	return out
}

// dseSweepWorkload measures configs/s at the given sweep width, per-config
// rebuild vs shared context.
func dseSweepWorkload(model string, width int) (dseSweepRow, error) {
	g, err := models.Build(model)
	if err != nil {
		return dseSweepRow{}, err
	}
	platforms := dseSweepPlatforms(width)
	rebuild := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range platforms {
				eval.MustNew(g, p, tiling.DefaultConfig())
			}
		}
	})
	shared := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gc := eval.NewGraphContext(g, tiling.DefaultConfig())
			for _, p := range platforms {
				gc.MustNewEvaluator(p)
			}
		}
	})
	row := dseSweepRow{
		Model:                model,
		Width:                width,
		RebuildConfigsPerSec: float64(width) * float64(rebuild.N) / rebuild.T.Seconds(),
		SharedConfigsPerSec:  float64(width) * float64(shared.N) / shared.T.Seconds(),
	}
	if row.RebuildConfigsPerSec > 0 {
		row.Speedup = row.SharedConfigsPerSec / row.RebuildConfigsPerSec
	}
	return row, nil
}

// cacheShareWorkload measures sweep throughput where each config does real
// evaluation work — a fixed seeded partition set scored per config — with
// the cost cache shared across the sweep (one GraphContext: config #1 pays
// cold costing, every sibling hits warm) vs private per config (a fresh
// context each, so every config re-derives the identical costs). The
// private side re-pays context construction too, but partition costing
// dominates it by orders of magnitude at these widths.
func cacheShareWorkload(model string, width, nparts int) (dseCacheShareRow, error) {
	g, err := models.Build(model)
	if err != nil {
		return dseCacheShareRow{}, err
	}
	rng := rand.New(rand.NewSource(29))
	parts := make([]*partition.Partition, nparts)
	for i := range parts {
		parts[i] = core.RandomPartition(g, rng, 0.3)
	}
	mem := defaultMem()
	platforms := dseSweepPlatforms(width)

	private := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range platforms {
				ev := eval.NewGraphContext(g, tiling.DefaultConfig()).MustNewEvaluator(p)
				for _, pt := range parts {
					ev.Partition(pt, mem)
				}
			}
		}
	})
	shared := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gc := eval.NewGraphContext(g, tiling.DefaultConfig())
			for _, p := range platforms {
				ev := gc.MustNewEvaluator(p)
				for _, pt := range parts {
					ev.Partition(pt, mem)
				}
			}
		}
	})
	row := dseCacheShareRow{
		Model:                model,
		Width:                width,
		PrivateConfigsPerSec: float64(width) * float64(private.N) / private.T.Seconds(),
		SharedConfigsPerSec:  float64(width) * float64(shared.N) / shared.T.Seconds(),
	}
	if row.PrivateConfigsPerSec > 0 {
		row.Speedup = row.SharedConfigsPerSec / row.PrivateConfigsPerSec
	}
	return row, nil
}

// orchWorkload mirrors BenchmarkSearchOrchestrator: K islands, each with
// the full per-island sample budget, over one shared fresh evaluator per
// iteration.
func orchWorkload(model string, samples, islands int) (orchRow, error) {
	g, err := models.Build(model)
	if err != nil {
		return orchRow{}, err
	}
	mem := defaultMem()
	migrations := 0
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
			_, stats, err := search.Run(ev, search.Options{
				Core: core.Options{
					Seed: 7, Population: 50, MaxSamples: samples,
					Objective: eval.Objective{Metric: eval.MetricEMA},
					Mem:       core.MemSearch{Fixed: mem},
				},
				Islands:      islands,
				MigrateEvery: 5,
			})
			if err != nil {
				b.Fatal(err)
			}
			migrations = stats.Migrations
		}
	})
	return orchRow{
		Model:         model,
		Islands:       islands,
		SamplesPerSec: float64(islands*samples) * float64(res.N) / res.T.Seconds(),
		NsPerOp:       float64(res.NsPerOp()),
		Migrations:    migrations,
	}, nil
}

func defaultMem() hw.MemConfig {
	return hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
}

// coldWorkload mirrors BenchmarkColdEval: nparts seeded random partitions
// scored by a fresh evaluator per iteration.
func coldWorkload(model string, nparts int) (coldRow, error) {
	g, err := models.Build(model)
	if err != nil {
		return coldRow{}, err
	}
	rng := rand.New(rand.NewSource(3))
	parts := make([]*partition.Partition, nparts)
	for i := range parts {
		parts[i] = core.RandomPartition(g, rng, 0.3)
	}
	mem := defaultMem()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
			for _, p := range parts {
				ev.Partition(p, mem)
			}
		}
	})
	row := coldRow{
		Model:       model,
		EvalsPerSec: float64(nparts) * float64(res.N) / res.T.Seconds(),
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: float64(res.AllocsPerOp()),
		BytesPerOp:  float64(res.AllocedBytesPerOp()),
	}
	if base, ok := coldBaseline[model]; ok {
		row.BaselineEvalsPerSec, row.BaselineAllocsPerOp = base[0], base[1]
		row.Speedup = row.EvalsPerSec / base[0]
		if row.AllocsPerOp > 0 {
			row.AllocReduction = base[1] / row.AllocsPerOp
		}
	}
	return row, nil
}

// deltaWorkload mirrors BenchmarkDeltaEval: a pool of single-mutation
// children of an evaluated base partition, re-scored through the full and
// delta engines against a warm cost cache.
func deltaWorkload() ([]deltaRow, error) {
	g, err := models.Build("resnet50")
	if err != nil {
		return nil, err
	}
	mem := defaultMem()
	ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	rng := rand.New(rand.NewSource(11))
	base := core.RandomPartition(g, rng, 0.3)
	ev.PartitionDelta(base, mem)
	pool := make([]*partition.Partition, 64)
	for i := range pool {
		pool[i] = core.ApplyRandomMutation(g, rng, base)
		ev.Partition(pool[i], mem)
	}
	var out []deltaRow
	for _, mode := range []string{"full", "delta"} {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := pool[i%len(pool)].Clone()
				if mode == "full" {
					ev.Partition(q, mem)
				} else {
					ev.PartitionDelta(q, mem)
				}
			}
		})
		out = append(out, deltaRow{
			Engine:      mode,
			EvalsPerSec: float64(res.N) / res.T.Seconds(),
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
		})
	}
	return out, nil
}

// gaWorkload mirrors BenchmarkGAParallel's delta engine: a seeded
// fixed-sample GA run per worker count, fresh evaluator per iteration.
func gaWorkload(samples int) ([]gaRow, error) {
	g, err := models.Build("resnet50")
	if err != nil {
		return nil, err
	}
	mem := defaultMem()
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	var out []gaRow
	for _, workers := range counts {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
				if _, _, err := core.Run(ev, core.Options{
					Seed: 7, Workers: workers, Population: 50, MaxSamples: samples,
					Objective: eval.Objective{Metric: eval.MetricEMA},
					Mem:       core.MemSearch{Fixed: mem},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, gaRow{
			Workers:     workers,
			EvalsPerSec: float64(samples) * float64(res.N) / res.T.Seconds(),
			NsPerOp:     float64(res.NsPerOp()),
		})
	}
	return out, nil
}

// mutationWorkload mirrors BenchmarkMutationOps: a fixed cycle of
// modify/split/merge/crossover draws against a pool of seeded partitions.
func mutationWorkload(model string) (mutationRow, error) {
	g, err := models.Build(model)
	if err != nil {
		return mutationRow{}, err
	}
	rng := rand.New(rand.NewSource(5))
	pool := make([]*partition.Partition, 8)
	for i := range pool {
		pool[i] = core.RandomPartition(g, rng, 0.3)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pool[i%len(pool)]
			switch i % 4 {
			case 0:
				core.ApplyMutationOp(g, rng, p, core.OpModifyNode)
			case 1:
				core.ApplyMutationOp(g, rng, p, core.OpSplitSubgraph)
			case 2:
				core.ApplyMutationOp(g, rng, p, core.OpMergeSubgraphs)
			default:
				core.CrossoverPartition(g, rng, p, pool[(i+3)%len(pool)])
			}
		}
	})
	row := mutationRow{
		Model:       model,
		OpsPerSec:   float64(res.N) / res.T.Seconds(),
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: float64(res.AllocsPerOp()),
		BytesPerOp:  float64(res.AllocedBytesPerOp()),
	}
	if base, ok := searchMutationBaseline[model]; ok {
		row.BaselineOpsPerSec, row.BaselineAllocsPerOp = base[0], base[1]
		row.Speedup = row.OpsPerSec / base[0]
		if row.AllocsPerOp > 0 {
			row.AllocReduction = base[1] / row.AllocsPerOp
		}
	}
	return row, nil
}

// searchGAWorkload runs one seeded end-to-end search per (model, memo
// setting): Workers=4 like the recorded baseline, delta engine, fresh
// evaluator per iteration.
func searchGAWorkload(model string, samples int, memo bool) (searchGARow, error) {
	g, err := models.Build(model)
	if err != nil {
		return searchGARow{}, err
	}
	mem := defaultMem()
	hits := 0
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
			_, stats, err := core.Run(ev, core.Options{
				Seed: 7, Workers: 4, Population: 50, MaxSamples: samples,
				Objective:         eval.Objective{Metric: eval.MetricEMA},
				Mem:               core.MemSearch{Fixed: mem},
				DisableGenomeMemo: !memo,
			})
			if err != nil {
				b.Fatal(err)
			}
			hits = stats.MemoHits
		}
	})
	row := searchGARow{
		Model:         model,
		Memo:          memo,
		SamplesPerSec: float64(samples) * float64(res.N) / res.T.Seconds(),
		NsPerOp:       float64(res.NsPerOp()),
		MemoHits:      hits,
	}
	if base, ok := searchGABaseline[model]; ok && samples == 1000 {
		row.BaselineSamplesPerSec = base
		row.Speedup = row.SamplesPerSec / base
	}
	return row, nil
}

func main() {
	out := flag.String("o", "BENCH_coldpath.json", "output path")
	searchOut := flag.String("so", "BENCH_searchpath.json", "search_path output path (empty to skip)")
	orchOut := flag.String("orch", "BENCH_searchorch.json", "search_orchestrator output path (empty to skip)")
	dseOut := flag.String("dse", "BENCH_dse.json", "dse shared-context workload output path (empty to skip)")
	cachewarmOut := flag.String("cachewarm", "BENCH_cachewarm.json", "cache warm-start workload output path (empty to skip)")
	distOut := flag.String("distsearch", "BENCH_distsearch.json", "distributed-search workload output path (empty to skip)")
	quick := flag.Bool("quick", false, "reduced budgets for CI smoke runs")
	distWorker := flag.String("dist-worker", "", "internal: serve as a distsearch bench worker, publishing the listen address to this file")
	distWorkerModel := flag.String("dist-worker-model", distSearchModel, "internal: model for -dist-worker")
	flag.Parse()

	if *distWorker != "" {
		runDistWorker(*distWorker, *distWorkerModel)
		return
	}

	nparts, gaSamples := 8, 1000
	if *quick {
		nparts, gaSamples = 2, 200
	}

	rep := report{
		Bench:    "coldpath",
		Go:       runtime.Version(),
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		NumCPU:   runtime.NumCPU(),
		Baseline: "pre-dense-indexing tree (PR-2, commit e055771)",
	}
	for _, model := range models.Names() {
		row, err := coldWorkload(model, nparts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %s: %v\n", model, err)
			os.Exit(1)
		}
		fmt.Printf("cold  %-12s %10.0f evals/s  %8.0f allocs/op  (%.1fx evals/s, %.1fx fewer allocs)\n",
			row.Model, row.EvalsPerSec, row.AllocsPerOp, row.Speedup, row.AllocReduction)
		rep.Cold = append(rep.Cold, row)
	}
	var err error
	if rep.Delta, err = deltaWorkload(); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: delta: %v\n", err)
		os.Exit(1)
	}
	for _, d := range rep.Delta {
		fmt.Printf("delta %-12s %10.0f evals/s  %8.0f allocs/op\n", d.Engine, d.EvalsPerSec, d.AllocsPerOp)
	}
	if rep.GA, err = gaWorkload(gaSamples); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: ga: %v\n", err)
		os.Exit(1)
	}
	for _, g := range rep.GA {
		fmt.Printf("ga    workers=%-5d %10.0f evals/s\n", g.Workers, g.EvalsPerSec)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *dseOut != "" && !runDSEWorkload(*dseOut) {
		os.Exit(1)
	}

	if *cachewarmOut != "" && !runCachewarmWorkload(*cachewarmOut) {
		os.Exit(1)
	}

	if *distOut != "" && !runDistSearchWorkload(*distOut, gaSamples) {
		os.Exit(1)
	}

	if *searchOut == "" {
		return
	}
	srep := searchReport{
		Bench:    "searchpath",
		Go:       runtime.Version(),
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		NumCPU:   runtime.NumCPU(),
		Baseline: "pre-dense-operator tree (PR-3, commit 518d72f)",
	}
	for _, model := range models.Names() {
		row, err := mutationWorkload(model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: mutation %s: %v\n", model, err)
			os.Exit(1)
		}
		fmt.Printf("mut   %-12s %10.0f ops/s    %8.0f allocs/op  (%.1fx ops/s, %.0fx fewer allocs)\n",
			row.Model, row.OpsPerSec, row.AllocsPerOp, row.Speedup, row.AllocReduction)
		srep.Mutation = append(srep.Mutation, row)
	}
	for _, model := range searchGAModels {
		for _, memo := range []bool{false, true} {
			row, err := searchGAWorkload(model, gaSamples, memo)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: ga search %s: %v\n", model, err)
				os.Exit(1)
			}
			fmt.Printf("gasp  %-12s memo=%-5v %10.0f samples/s  (%d memo hits)\n",
				row.Model, row.Memo, row.SamplesPerSec, row.MemoHits)
			srep.GA = append(srep.GA, row)
		}
	}
	sbuf, err := json.MarshalIndent(srep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: marshal search: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*searchOut, append(sbuf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: write search: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *searchOut)

	if *orchOut == "" {
		return
	}
	orep := orchReport{
		Bench:  "search_orchestrator",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Note:   "aggregate samples/s, K islands x the same per-island budget over a shared evaluator; scaling is CPU-bound (island steps overlap across cores)",
	}
	for _, model := range searchGAModels {
		var base float64
		for _, islands := range []int{1, 2, 4} {
			row, err := orchWorkload(model, gaSamples, islands)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: orchestrator %s: %v\n", model, err)
				os.Exit(1)
			}
			if islands == 1 {
				base = row.SamplesPerSec
				fmt.Printf("orch  %-12s islands=%d %10.0f samples/s  (baseline, %d migrations)\n",
					row.Model, row.Islands, row.SamplesPerSec, row.Migrations)
			} else {
				if base > 0 {
					row.SpeedupVs1 = row.SamplesPerSec / base
				}
				fmt.Printf("orch  %-12s islands=%d %10.0f samples/s  (%.2fx vs 1 island, %d migrations)\n",
					row.Model, row.Islands, row.SamplesPerSec, row.SpeedupVs1, row.Migrations)
			}
			orep.Rows = append(orep.Rows, row)
		}
	}
	obuf, err := json.MarshalIndent(orep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: marshal orchestrator: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*orchOut, append(obuf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: write orchestrator: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *orchOut)
}

// runDSEWorkload runs the dse shared-context workload and writes dseOut,
// returning false when a contract assertion failed.
func runDSEWorkload(dseOut string) bool {
	drep := dseReport{
		Bench:  "dse",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Note:   "evaluator construction standalone (eval.New) vs from a warm shared GraphContext; sweep configs/s with per-config rebuild vs one shared context per sweep; cacheshare sweep configs/s (each config evaluates a seeded partition set) with the geometry-keyed cost cache shared across the sweep vs private per config (fresh context each, which re-pays context construction too — partition costing dominates it)",
	}
	failed := false
	for _, model := range models.Names() {
		row, err := dseConstructWorkload(model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: dse construct %s: %v\n", model, err)
			os.Exit(1)
		}
		fmt.Printf("dse   %-12s standalone %8.0f ns  shared %6.0f ns  (%.1fx)\n",
			row.Model, row.StandaloneNsPerOp, row.SharedNsPerOp, row.Speedup)
		if row.Speedup < 5 {
			fmt.Fprintf(os.Stderr, "benchreport: dse: %s shared-context construction only %.1fx faster than standalone (want >= 5x)\n",
				row.Model, row.Speedup)
			failed = true
		}
		drep.Construct = append(drep.Construct, row)
	}
	for _, model := range searchGAModels {
		for _, width := range []int{1, 8, 64} {
			row, err := dseSweepWorkload(model, width)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: dse sweep %s: %v\n", model, err)
				os.Exit(1)
			}
			fmt.Printf("dse   %-12s width=%-3d rebuild %8.0f cfg/s  shared %8.0f cfg/s  (%.1fx)\n",
				row.Model, row.Width, row.RebuildConfigsPerSec, row.SharedConfigsPerSec, row.Speedup)
			if width >= 8 && row.SharedConfigsPerSec <= row.RebuildConfigsPerSec {
				fmt.Fprintf(os.Stderr, "benchreport: dse: %s width %d shared sweep (%.0f cfg/s) does not beat rebuild (%.0f cfg/s)\n",
					row.Model, row.Width, row.SharedConfigsPerSec, row.RebuildConfigsPerSec)
				failed = true
			}
			drep.Sweep = append(drep.Sweep, row)
		}
	}
	for _, model := range models.Names() {
		for _, width := range []int{1, 8, 64} {
			row, err := cacheShareWorkload(model, width, 3)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: dse cacheshare %s: %v\n", model, err)
				os.Exit(1)
			}
			fmt.Printf("dse   %-12s width=%-3d private %8.1f cfg/s  cacheshared %8.1f cfg/s  (%.1fx)\n",
				row.Model, row.Width, row.PrivateConfigsPerSec, row.SharedConfigsPerSec, row.Speedup)
			if width >= 8 && row.SharedConfigsPerSec <= row.PrivateConfigsPerSec {
				fmt.Fprintf(os.Stderr, "benchreport: dse: %s width %d shared-cache sweep (%.1f cfg/s) does not beat private caches (%.1f cfg/s)\n",
					row.Model, row.Width, row.SharedConfigsPerSec, row.PrivateConfigsPerSec)
				failed = true
			}
			drep.CacheShare = append(drep.CacheShare, row)
		}
	}
	dbuf, err := json.MarshalIndent(drep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: marshal dse: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(dseOut, append(dbuf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: write dse: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", dseOut)
	return !failed
}
