package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/search"
	"cocco/internal/search/dist"
	"cocco/internal/tiling"
)

// The distsearch workload measures the distributed island search: the same
// 4-island ring run in-process and across 1, 2, and 4 worker processes
// (spawned by re-executing this binary in -dist-worker mode), plus the async
// eventual-migration mode at the widest fleet. Every contender is pinned to
// ONE CPU per process (GOMAXPROCS=1 — the in-process baseline would
// otherwise overlap its islands across cores and hide exactly the axis being
// measured), so process count is the scaling axis: the in-process row is
// what one process-slot does, and a K-process row shows what K slots buy. On
// a 1-CPU host all rows sit at parity or below (the protocol adds
// serialization without adding silicon); the >=1.8x floor for the 4-process
// fleet is asserted only on hosts with at least 4 CPUs.

// distSearchModel is the model the workload runs on; distSearchIslands the
// ring width (GA islands, no scouts — divisible across 1/2/4 processes).
const (
	distSearchModel   = "resnet50"
	distSearchIslands = 4
)

// distRow is one contender of the distsearch workload.
type distRow struct {
	// Mode is "inprocess", "deterministic", or "async".
	Mode string `json:"mode"`
	// WorkerProcs is the number of worker processes (0 for the in-process row).
	WorkerProcs   int     `json:"worker_procs"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	NsPerOp       float64 `json:"ns_per_op"`
	// SpeedupVsInProcess is samples/s relative to the in-process row.
	SpeedupVsInProcess float64 `json:"speedup_vs_inprocess,omitempty"`
}

// distReport is the distsearch workload file (BENCH_distsearch.json).
type distReport struct {
	Bench   string    `json:"bench"`
	Go      string    `json:"go"`
	GOOS    string    `json:"goos"`
	GOARCH  string    `json:"goarch"`
	NumCPU  int       `json:"num_cpu"`
	Model   string    `json:"model"`
	Islands int       `json:"islands"`
	Note    string    `json:"note"`
	Rows    []distRow `json:"distsearch"`
	// AsyncVsDeterministic is the async fleet's samples/s over the
	// deterministic fleet's at the same process count.
	AsyncVsDeterministic float64 `json:"async_vs_deterministic,omitempty"`
}

// runDistWorker is the hidden worker mode: benchreport re-executes itself
// with -dist-worker to host a slice of the ring in a real separate process.
// It publishes its listen address to addrFile and serves until killed.
func runDistWorker(addrFile, model string) {
	ev, err := buildDistEvaluator(model)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		log.Fatal(err)
	}
	if err := dist.Serve(ln, ev, 1); err != nil {
		log.Fatal(err)
	}
}

func buildDistEvaluator(model string) (*eval.Evaluator, error) {
	g, err := models.Build(model)
	if err != nil {
		return nil, err
	}
	return eval.New(g, hw.DefaultPlatform(), tiling.DefaultConfig())
}

// spawnBenchWorkers starts k real worker processes and returns their
// addresses plus a cleanup that kills them.
func spawnBenchWorkers(model string, k int) ([]string, func(), error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.MkdirTemp("", "distsearch")
	if err != nil {
		return nil, nil, err
	}
	var cmds []*exec.Cmd
	cleanup := func() {
		for _, c := range cmds {
			c.Process.Kill()
			c.Wait()
		}
		os.RemoveAll(dir)
	}
	addrFiles := make([]string, k)
	for i := 0; i < k; i++ {
		addrFiles[i] = filepath.Join(dir, fmt.Sprintf("worker%d.addr", i))
		cmd := exec.Command(exe, "-dist-worker", addrFiles[i], "-dist-worker-model", model)
		cmd.Env = append(os.Environ(), "GOMAXPROCS=1")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			cleanup()
			return nil, nil, err
		}
		cmds = append(cmds, cmd)
	}
	addrs := make([]string, k)
	deadline := time.Now().Add(120 * time.Second)
	for i, f := range addrFiles {
		for {
			if data, err := os.ReadFile(f); err == nil {
				addrs[i] = string(data)
				break
			}
			if time.Now().After(deadline) {
				cleanup()
				return nil, nil, fmt.Errorf("distsearch worker %d never published its address", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return addrs, cleanup, nil
}

// distSearchOptions is the shared search configuration: a 4-GA-island ring,
// one evaluation goroutine per process so process count is the scaling axis.
func distSearchOptions(samples int) search.Options {
	return search.Options{
		Core: core.Options{
			Seed: 7, Workers: 1, Population: 50, MaxSamples: samples,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       core.MemSearch{Fixed: defaultMem()},
		},
		Islands:      distSearchIslands,
		MigrateEvery: 5,
	}
}

// runDistSearchWorkload runs the distsearch workload and writes out,
// returning false when the scaling floor failed.
func runDistSearchWorkload(out string, samples int) bool {
	opt := distSearchOptions(samples)
	total := float64(distSearchIslands * samples)

	// Pin this process — the in-process baseline and the coordinator — to one
	// CPU for the duration of the workload; worker processes are pinned via
	// GOMAXPROCS=1 in their environment. Process count is the scaling axis.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	rep := distReport{
		Bench:   "distsearch",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
		Model:   distSearchModel,
		Islands: distSearchIslands,
		Note:    "aggregate samples/s for the same 4-island ring: in-process vs 1/2/4 worker processes (deterministic barrier schedule, bit-identical results) and async eventual migration at the widest fleet; every process is pinned to one CPU (GOMAXPROCS=1), so process count is the scaling axis; on a 1-CPU host all rows sit at parity or below (the protocol adds serialization without adding silicon) — the >=1.8x floor for 4 processes vs in-process is asserted only on >=4-CPU hosts",
	}

	// One long-lived evaluator per process slot, like the worker processes
	// keep across sessions: iterations after the first run against a warm
	// subgraph-cost cache on every contender alike.
	inprocEv, err := buildDistEvaluator(distSearchModel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: distsearch: %v\n", err)
		os.Exit(1)
	}
	inproc := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := search.Run(inprocEv, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	base := distRow{
		Mode:          "inprocess",
		SamplesPerSec: total * float64(inproc.N) / inproc.T.Seconds(),
		NsPerOp:       float64(inproc.NsPerOp()),
	}
	fmt.Printf("dists %-13s procs=0 %10.0f samples/s  (baseline)\n", base.Mode, base.SamplesPerSec)
	rep.Rows = append(rep.Rows, base)

	var det4, async4 float64
	for _, k := range []int{1, 2, 4} {
		addrs, cleanup, err := spawnBenchWorkers(distSearchModel, k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: distsearch: %v\n", err)
			os.Exit(1)
		}
		for _, async := range []bool{false, true} {
			if async && k != 4 {
				continue // the async delta is reported at the widest fleet only
			}
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := dist.Run(inprocEv, dist.Options{Search: opt, Workers: addrs, Async: async}); err != nil {
						b.Fatal(err)
					}
				}
			})
			row := distRow{
				Mode:          "deterministic",
				WorkerProcs:   k,
				SamplesPerSec: total * float64(res.N) / res.T.Seconds(),
				NsPerOp:       float64(res.NsPerOp()),
			}
			if async {
				row.Mode = "async"
			}
			if base.SamplesPerSec > 0 {
				row.SpeedupVsInProcess = row.SamplesPerSec / base.SamplesPerSec
			}
			fmt.Printf("dists %-13s procs=%d %10.0f samples/s  (%.2fx vs in-process)\n",
				row.Mode, row.WorkerProcs, row.SamplesPerSec, row.SpeedupVsInProcess)
			rep.Rows = append(rep.Rows, row)
			if k == 4 {
				if async {
					async4 = row.SamplesPerSec
				} else {
					det4 = row.SamplesPerSec
				}
			}
		}
		cleanup()
	}
	if det4 > 0 {
		rep.AsyncVsDeterministic = async4 / det4
		fmt.Printf("dists async-vs-deterministic at 4 procs: %.2fx\n", rep.AsyncVsDeterministic)
	}

	failed := false
	if runtime.NumCPU() >= 4 {
		if det4 < 1.8*base.SamplesPerSec {
			fmt.Fprintf(os.Stderr, "benchreport: distsearch: 4-process fleet only %.2fx in-process (want >= 1.8x on a %d-CPU host)\n",
				det4/base.SamplesPerSec, runtime.NumCPU())
			failed = true
		}
	} else {
		fmt.Printf("dists scaling floor skipped: %d-CPU host (floor asserted at >= 4 CPUs)\n", runtime.NumCPU())
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: marshal distsearch: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: write distsearch: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
	return !failed
}
