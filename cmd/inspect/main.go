// Command inspect examines models and subgraph execution schemes: it prints
// a model summary, derives the consumption-centric scheme for a chosen layer
// range, simulates its elementary operations (Figure 6 style), and can dump
// the graph as JSON.
//
// Examples:
//
//	inspect -model resnet50
//	inspect -model googlenet -from 5 -count 7 -ops 3
//	inspect -model vgg16 -json vgg16.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cocco/internal/exec"
	"cocco/internal/graph"
	"cocco/internal/hw"
	"cocco/internal/mapper"
	"cocco/internal/models"
	"cocco/internal/report"
	"cocco/internal/serialize"
	"cocco/internal/tiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("inspect: ")
	var (
		model    = flag.String("model", "resnet50", "model name")
		from     = flag.Int("from", -1, "first compute-node index of the subgraph to derive (-1 = summary only)")
		count    = flag.Int("count", 4, "number of consecutive compute nodes in the subgraph")
		ops      = flag.Int("ops", 2, "elementary operations to simulate")
		jsonPath = flag.String("json", "", "write the graph as JSON to this path")
	)
	flag.Parse()

	g, err := models.Build(*model)
	if err != nil {
		log.Fatal(err)
	}

	summary(g)

	if *jsonPath != "" {
		data, err := serialize.EncodeGraph(g)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d bytes)\n", *jsonPath, len(data))
	}

	if *from < 0 {
		return
	}
	nodes := g.ComputeNodes()
	if *from >= len(nodes) {
		log.Fatalf("-from %d out of range (%d compute nodes)", *from, len(nodes))
	}
	hi := *from + *count
	if hi > len(nodes) {
		hi = len(nodes)
	}
	members := nodes[*from:hi]
	scheme, err := tiling.Derive(g, members, tiling.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nscheme for compute nodes %d..%d:\n", *from, hi-1)
	t := report.NewTable("", "node", "role", "ΔH", "xH", "updH", "ΔW", "xW", "updW", "footprint")
	for id := 0; id < g.Len(); id++ {
		ns, ok := scheme.Nodes[id]
		if !ok {
			continue
		}
		role := "intermediate"
		if ns.External {
			role = "external"
		} else if ns.Output {
			role = "output"
		}
		t.AddRow(g.Node(id).Name, role, ns.DeltaH, ns.TileH, ns.UpdH,
			ns.DeltaW, ns.TileW, ns.UpdW, report.Bytes(scheme.FootprintBytes(g, id)))
	}
	fmt.Println(t.String())
	fmt.Printf("total activation footprint: %s\n", report.Bytes(scheme.TotalFootprintBytes(g)))

	tr, err := exec.Simulate(g, scheme, *ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmemory snapshots over %d elementary operations:\n", *ops)
	for i, snap := range tr.Snapshots {
		fmt.Printf("  op %d: %s\n", i, exec.FormatSnapshot(g, scheme, snap))
	}
}

func summary(g *graph.Graph) {
	core := hw.DefaultCore()
	fmt.Printf("model %s\n", g.Name)
	fmt.Printf("  nodes     %d (%d compute, %d inputs, %d outputs)\n",
		g.Len(), len(g.ComputeNodes()), len(g.Inputs()), len(g.Outputs()))
	fmt.Printf("  edges     %d\n", g.Edges())
	fmt.Printf("  weights   %s\n", report.Bytes(g.TotalWeightBytes()))
	fmt.Printf("  MACs      %.2fG\n", float64(g.TotalMACs())/1e9)
	fmt.Printf("  mapper    %.1f%% mean PE utilization\n", 100*mapper.GraphUtilization(core, g))

	kinds := map[graph.OpKind]int{}
	for _, n := range g.Nodes() {
		kinds[n.Kind]++
	}
	fmt.Printf("  kinds    ")
	for _, k := range []graph.OpKind{graph.OpConv, graph.OpDWConv, graph.OpPool,
		graph.OpEltwise, graph.OpConcat, graph.OpMatmul} {
		if kinds[k] > 0 {
			fmt.Printf(" %s=%d", k, kinds[k])
		}
	}
	fmt.Println()
}
