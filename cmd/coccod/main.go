// Command coccod is the search job server: a long-running daemon that
// accepts search jobs over HTTP/JSON, time-slices them fairly across a
// fixed worker pool, and persists every job durably — checkpoint plus
// manifest at every slice boundary — so killing and restarting the server
// resumes every in-flight job bit-identically.
//
// Example:
//
//	coccod -dir /var/lib/coccod -listen 127.0.0.1:7900 &
//	curl -s -X POST localhost:7900/jobs \
//	     -d '{"model":"mobilenetv2","seed":11,"samples":600,"population":20}'
//	curl -s localhost:7900/jobs/j000000            # poll progress
//	curl -sN localhost:7900/jobs/j000000/watch     # stream progress
//	curl -s localhost:7900/jobs/j000000/result     # final genome + cost
//	curl -s -X POST localhost:7900/jobs/j000000/cancel
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cocco/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coccod: ")

	var (
		listen      = flag.String("listen", "127.0.0.1:7900", "address to serve the HTTP job API on")
		dir         = flag.String("dir", "coccod-jobs", "job directory (manifests + checkpoints); rescanned on startup to resume in-flight jobs")
		pool        = flag.Int("pool", 1, "concurrent job slices (worker pool size)")
		sliceRounds = flag.Int("slice-rounds", 4, "migration rounds per scheduling slice (smaller = fairer preemption; never affects results)")
		evalWorkers = flag.Int("eval-workers", 1, "evaluation goroutines per running slice (never affects results)")
	)
	flag.Parse()

	srv, err := serve.NewServer(serve.Options{
		Dir:         *dir,
		PoolWorkers: *pool,
		SliceRounds: *sliceRounds,
		EvalWorkers: *evalWorkers,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	// Greppable by scripts and the CI serve-smoke job, like coccow's line.
	fmt.Printf("coccod listening on %s (dir %s, pool %d, slice %d rounds)\n",
		ln.Addr(), *dir, *pool, *sliceRounds)

	hsrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hsrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v: refusing new requests, finishing in-flight slices", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = hsrv.Shutdown(ctx)
		cancel()
		srv.Close()
		log.Printf("drained; queued jobs stay durable in %s", *dir)
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}
}
