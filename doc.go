// Package cocco reproduces "Cocco: Hardware-Mapping Co-Exploration towards
// Memory Capacity-Communication Optimization" (Tan, Zhu, Ma — ASPLOS 2024).
//
// The library lives under internal/: the computation-graph substrate
// (internal/graph), the network zoo (internal/models), the
// consumption-centric subgraph tiling flow (internal/tiling), the MAIN/SIDE
// buffer management model (internal/membuf), the accelerator platform and
// energy model (internal/hw), the partition formalism (internal/partition),
// the evaluation environment (internal/eval), the Cocco genetic optimizer
// (internal/core), the comparison optimizers (internal/baselines), and the
// table/figure harness (internal/experiments).
//
// The benchmarks in this package regenerate every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured record
// and DESIGN.md for the system inventory.
package cocco
