package cocco

// Benchmarks regenerating the paper's evaluation. Each table/figure has one
// benchmark that runs the corresponding harness (internal/experiments) with
// reduced budgets so `go test -bench=.` finishes in minutes; run
// `go run ./cmd/experiments -budget paper` for the full-budget versions.
// The tables are emitted with -v via b.Logf on the first iteration.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"cocco/internal/baselines"
	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/experiments"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/partition"
	"cocco/internal/tiling"
)

func benchCfg() experiments.Config { return experiments.Quick() }

// logOnce prints the regenerated table on the benchmark's first iteration.
var logged sync.Map

func logOnce(b *testing.B, key, table string) {
	if _, dup := logged.LoadOrStore(key, true); !dup {
		b.Logf("\n%s", table)
	}
}

// BenchmarkFigure1CapacitySweep regenerates the EMA-vs-capacity trade-off
// the paper's Figure 1 frames and Figure 2's survey observes.
func BenchmarkFigure1CapacitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.Figure1Sweep(benchCfg(), "resnet50")
		logOnce(b, "fig1", s)
	}
}

// BenchmarkFigure2Survey regenerates the industrial NPU survey (Figure 2).
func BenchmarkFigure2Survey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, "fig2", experiments.Figure2())
	}
}

// BenchmarkFigure3FusionDepth regenerates the L=1/3/5 fusion study
// (Figure 3): EMA and average bandwidth per model and fusion depth.
func BenchmarkFigure3FusionDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.Figure3()
		logOnce(b, "fig3", s)
	}
}

// BenchmarkFigure11Partition regenerates the graph-partition comparison
// (Figure 11): greedy vs DP vs Cocco vs enumeration over the eight models.
func BenchmarkFigure11Partition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.Figure11(benchCfg())
		logOnce(b, "fig11", s)
	}
}

// BenchmarkTable1SeparateBuffer regenerates the separate-buffer
// co-exploration (Table 1).
func BenchmarkTable1SeparateBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.Table1(benchCfg())
		logOnce(b, "table1", s)
	}
}

// BenchmarkTable2SharedBuffer regenerates the shared-buffer co-exploration
// (Table 2).
func BenchmarkTable2SharedBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.Table2(benchCfg())
		logOnce(b, "table2", s)
	}
}

// BenchmarkFigure12Convergence regenerates the sample-efficiency study
// (Figure 12): convergence curves and the samples-to-1.05× table.
func BenchmarkFigure12Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Figure12(benchCfg())
		if len(res.Curves) == 0 {
			b.Fatal("no curves")
		}
	}
}

// BenchmarkFigure13Distribution regenerates the sample-distribution study
// (Figure 13).
func BenchmarkFigure13Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.Figure13(benchCfg())
		logOnce(b, "fig13", s)
	}
}

// BenchmarkFigure14AlphaSweep regenerates the α sensitivity study
// (Figure 14).
func BenchmarkFigure14AlphaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.Figure14(benchCfg())
		logOnce(b, "fig14", s)
	}
}

// BenchmarkTable3MultiCoreBatch regenerates the multi-core/batch study
// (Table 3).
func BenchmarkTable3MultiCoreBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.Table3(benchCfg())
		logOnce(b, "table3", s)
	}
}

// --- ablation benches (DESIGN.md design choices) --------------------------

// BenchmarkAblationTilingScheme compares production- vs consumption-centric
// resident-tile footprints.
func BenchmarkAblationTilingScheme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.AblationTiling()
		logOnce(b, "abl-tiling", s)
	}
}

// BenchmarkAblationGA compares the full GA against no-crossover and
// no-in-situ-split variants.
func BenchmarkAblationGA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.AblationGA(benchCfg())
		logOnce(b, "abl-ga", s)
	}
}

// BenchmarkAblationCostCache reports subgraph-cost memoization hit rates.
func BenchmarkAblationCostCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.AblationCache(benchCfg())
		logOnce(b, "abl-cache", s)
	}
}

// BenchmarkAblationDeltaEval compares the incremental (delta) evaluation
// engine against the full-recompute path on the same co-exploration search.
func BenchmarkAblationDeltaEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, s := experiments.AblationDeltaEval(benchCfg())
		for _, r := range rows {
			if !r.CostsEqual {
				b.Fatalf("%s: delta and full engines disagree", r.Model)
			}
		}
		logOnce(b, "abl-delta", s)
	}
}

// BenchmarkAblationPrefetch compares single- vs double-buffered weight
// feasibility (the §5.1.2 prefetch).
func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.AblationPrefetch(benchCfg())
		logOnce(b, "abl-prefetch", s)
	}
}

// BenchmarkAblationSeeding compares random vs greedy-seeded GA
// initialization (the paper's "flexible initialization" benefit).
func BenchmarkAblationSeeding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, s := experiments.AblationSeeding(benchCfg())
		logOnce(b, "abl-seed", s)
	}
}

// --- micro-benchmarks of the core primitives -------------------------------

// BenchmarkTilingDerive measures the three-stage scheme derivation on a
// GoogleNet inception module.
func BenchmarkTilingDerive(b *testing.B) {
	g := models.MustBuild("googlenet")
	// inc3a: nodes named inc3a_* form one module.
	var members []int
	for _, n := range g.Nodes() {
		if len(n.Name) > 5 && n.Name[:5] == "inc3a" {
			members = append(members, n.ID)
		}
	}
	cfg := tiling.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tiling.Derive(g, members, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionEvaluation measures a full partition evaluation with a
// cold-ish cache (random partitions).
func BenchmarkPartitionEvaluation(b *testing.B) {
	ev := eval.MustNew(models.MustBuild("resnet50"), hw.DefaultPlatform(), tiling.DefaultConfig())
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
	p := partition.Singletons(ev.Graph())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Partition(p, mem)
	}
}

// BenchmarkGAGeneration measures Cocco throughput in genome evaluations.
func BenchmarkGAGeneration(b *testing.B) {
	ev := eval.MustNew(models.MustBuild("resnet50"), hw.DefaultPlatform(), tiling.DefaultConfig())
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := core.Run(ev, core.Options{
			Seed: int64(i + 1), Population: 50, MaxSamples: 500,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       core.MemSearch{Fixed: mem},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGAParallel measures the deterministic parallel evaluation engine
// at increasing worker counts on a cold cost cache (a fresh evaluator per
// iteration, like a real search), for both evaluation engines (incremental
// PartitionDelta vs full-recompute Partition). Every sub-benchmark reports
// evals/s (genome evaluations per second) and allocs/op; parallel variants
// additionally report a "speedup" metric relative to the workers=1 run of
// the same engine. Every (engine, workers) combination is checked to reach
// the same best cost — the engines are bit-identical by contract.
func BenchmarkGAParallel(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	const samples = 1000
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
	g := models.MustBuild("resnet50")
	var refBest float64
	for _, mode := range []string{"delta", "full"} {
		var serialNs float64
		for _, workers := range counts {
			b.Run(fmt.Sprintf("eval=%s/workers=%d", mode, workers), func(b *testing.B) {
				b.ReportAllocs()
				var last float64
				for i := 0; i < b.N; i++ {
					ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
					best, _, err := core.Run(ev, core.Options{
						Seed: 7, Workers: workers, Population: 50, MaxSamples: samples,
						Objective:        eval.Objective{Metric: eval.MetricEMA},
						Mem:              core.MemSearch{Fixed: mem},
						DisableDeltaEval: mode == "full",
					})
					if err != nil {
						b.Fatal(err)
					}
					last = best.Cost
				}
				ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				b.ReportMetric(float64(samples)*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
				if refBest == 0 {
					refBest = last
				} else if last != refBest {
					b.Fatalf("eval=%s workers=%d best cost %g != reference %g", mode, workers, last, refBest)
				}
				if workers == 1 {
					serialNs = ns
					return
				}
				if serialNs > 0 {
					b.ReportMetric(serialNs/ns, "speedup")
				}
			})
		}
	}
}

// BenchmarkDeltaEval measures the delta-evaluation layer on the GA's
// steady-state workload: every evaluated partition is one mutation away from
// an evaluated parent, so almost all subgraphs carry cost handles and only
// the operator-touched ones re-enter the cost cache. The full variant
// re-walks every subgraph through the memoized cache (copy, sort, key build,
// shard lock, map lookup per subgraph); both engines see the same partitions
// and a warm cost cache, so the gap is pure evaluation-path overhead. The
// delta variant reports a "speedup" metric vs the full variant of the same
// invocation; the acceptance floor is 2×.
func BenchmarkDeltaEval(b *testing.B) {
	g := models.MustBuild("resnet50")
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
	ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	rng := rand.New(rand.NewSource(11))

	// An evaluated base partition plus a pool of single-mutation children.
	// Deriving from the evaluated base carries handles for every untouched
	// subgraph, exactly like GA offspring.
	base := core.RandomPartition(g, rng, 0.3)
	ev.PartitionDelta(base, mem)
	pool := make([]*partition.Partition, 64)
	for i := range pool {
		pool[i] = core.ApplyRandomMutation(g, rng, base)
		ev.Partition(pool[i], mem) // warm the cost cache for the dirty halves
	}

	var fullNs float64
	for _, mode := range []string{"full", "delta"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := pool[i%len(pool)].Clone()
				if mode == "full" {
					ev.Partition(q, mem)
				} else {
					ev.PartitionDelta(q, mem)
				}
			}
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "evals/s")
			if mode == "full" {
				fullNs = ns
			} else if fullNs > 0 {
				b.ReportMetric(fullNs/ns, "speedup")
			}
		})
	}
}

// BenchmarkColdEval measures the cold path of the cost cache: a fresh
// evaluator per iteration scores a fixed seeded set of random partitions, so
// (almost) every subgraph lookup is a miss and pays the full computeSubgraph
// + tiling derivation. This is the workload that dominates real searches now
// that the warm path (handles + delta re-scoring) is cheap. Reports evals/s
// (partition evaluations per second) and allocs/op; cmd/benchreport runs the
// same workload and records the numbers in BENCH_coldpath.json.
func BenchmarkColdEval(b *testing.B) {
	const nparts = 8
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
	for _, model := range models.Names() {
		b.Run(model, func(b *testing.B) {
			g := models.MustBuild(model)
			rng := rand.New(rand.NewSource(3))
			parts := make([]*partition.Partition, nparts)
			for i := range parts {
				parts[i] = core.RandomPartition(g, rng, 0.3)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
				for _, p := range parts {
					ev.Partition(p, mem)
				}
			}
			b.ReportMetric(float64(nparts)*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
		})
	}
}

// BenchmarkMutationOps measures the GA's candidate-generation path over the
// model zoo: a fixed cycle of modify-node / split-subgraph / merge-subgraph /
// crossover draws against a pool of seeded random partitions, results
// discarded — pure operator cost (scratch workspace + in-place repair), no
// evaluation. cmd/benchreport runs the same workload and records it in
// BENCH_searchpath.json against the pre-overhaul baseline.
func BenchmarkMutationOps(b *testing.B) {
	for _, model := range models.Names() {
		b.Run(model, func(b *testing.B) {
			g := models.MustBuild(model)
			rng := rand.New(rand.NewSource(5))
			pool := make([]*partition.Partition, 8)
			for i := range pool {
				pool[i] = core.RandomPartition(g, rng, 0.3)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pool[i%len(pool)]
				switch i % 4 {
				case 0:
					core.ApplyMutationOp(g, rng, p, core.OpModifyNode)
				case 1:
					core.ApplyMutationOp(g, rng, p, core.OpSplitSubgraph)
				case 2:
					core.ApplyMutationOp(g, rng, p, core.OpMergeSubgraphs)
				default:
					core.CrossoverPartition(g, rng, p, pool[(i+3)%len(pool)])
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkEnumeration measures the exact downset DP on ResNet50.
func BenchmarkEnumeration(b *testing.B) {
	ev := eval.MustNew(models.MustBuild("resnet50"), hw.DefaultPlatform(), tiling.DefaultConfig())
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baselines.Enumerate(ev, mem, eval.MetricEMA, baselines.DefaultEnumOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelBuild measures graph construction for the largest model.
func BenchmarkModelBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if g := models.MustBuild("nasnet"); g.Len() == 0 {
			b.Fatal("empty graph")
		}
	}
}
