module cocco

go 1.24
