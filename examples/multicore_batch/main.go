// multicore_batch studies how core count and batch size shift the memory
// requirement and performance of RandWire (the Table 3 scenario): weights of
// each subgraph are sharded across cores and rotated over the crossbar,
// while batch samples reuse the resident weights. The 3×3 (cores × batch)
// study runs as one batched DSE grid — all nine configs share RandWire's
// evaluation GraphContext, and the per-core cycle tables are memoized across
// every point that shares the core geometry.
package main

import (
	"fmt"
	"log"

	"cocco/internal/core"
	"cocco/internal/dse"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/report"
	"cocco/internal/search"
)

func main() {
	grid := dse.Grid{
		Models:      []string{"randwire-a"},
		Kinds:       []hw.BufferKind{hw.SharedBuffer},
		GlobalBytes: []int64{1024 * hw.KiB},
		Cores:       []int{1, 2, 4},
		Batch:       []int{1, 2, 8},
	}
	rep, err := dse.Run(dse.Options{
		Grid: grid,
		Search: search.Options{
			Core: core.Options{
				Seed:       42,
				Population: 80,
				MaxSamples: 10_000,
				Objective:  eval.Objective{Metric: eval.MetricEnergy, Alpha: 0.002},
			},
		},
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	freq := float64(hw.DefaultPlatform().Core.FreqHz)
	fmt.Printf("%-6s %-6s %-10s %-10s %s\n", "cores", "batch", "energy", "latency", "shared-buf/core")
	for _, o := range rep.Outcomes {
		if !o.Feasible {
			fmt.Printf("%-6d %-6d infeasible\n", o.Config.Cores, o.Config.Batch)
			continue
		}
		fmt.Printf("%-6d %-6d %-10s %-10s %s\n",
			o.Config.Cores, o.Config.Batch,
			report.MJ(o.Res.EnergyPJ),
			report.MS(float64(o.Res.LatencyCycles)/freq),
			report.Bytes(o.Config.Mem.GlobalBytes))
	}
	fmt.Println("\nmore cores cut latency; energy moves with the crossbar overhead against the")
	fmt.Println("bigger subgraphs weight-sharding enables (the paper's Table 3 is mixed too);")
	fmt.Println("larger batches amortize weights with sub-linear EMA growth")
}
