// multicore_batch studies how core count and batch size shift the memory
// requirement and performance of RandWire (the Table 3 scenario): weights of
// each subgraph are sharded across cores and rotated over the crossbar,
// while batch samples reuse the resident weights.
package main

import (
	"fmt"
	"log"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/report"
	"cocco/internal/tiling"
)

func main() {
	fmt.Printf("%-6s %-6s %-10s %-10s %s\n", "cores", "batch", "energy", "latency", "shared-buf/core")
	for _, cores := range []int{1, 2, 4} {
		for _, batch := range []int{1, 2, 8} {
			platform := hw.DefaultPlatform()
			platform.Cores = cores
			platform.Batch = batch
			g := models.MustBuild("randwire-a")
			ev, err := eval.New(g, platform, tiling.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			best, _, err := core.Run(ev, core.Options{
				Seed:       42,
				Population: 80,
				MaxSamples: 10_000,
				Objective:  eval.Objective{Metric: eval.MetricEnergy, Alpha: 0.002},
				Mem: core.MemSearch{
					Search: true,
					Kind:   hw.SharedBuffer,
					Global: hw.PaperSharedRange(),
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-6d %-10s %-10s %s\n",
				cores, batch,
				report.MJ(best.Res.EnergyPJ),
				report.MS(ev.LatencySeconds(best.Res.LatencyCycles)),
				report.Bytes(best.Mem.GlobalBytes))
		}
	}
	fmt.Println("\nmore cores cut latency; energy moves with the crossbar overhead against the")
	fmt.Println("bigger subgraphs weight-sharding enables (the paper's Table 3 is mixed too);")
	fmt.Println("larger batches amortize weights with sub-linear EMA growth")
}
