// resnet_partition compares the graph-partition optimizers on ResNet50 with
// the paper's fixed platform (1 MB global buffer + 1.125 MB weight buffer),
// the Figure 11 scenario: Halide's greedy, Irregular-NN's DP, the exact
// enumeration, and Cocco, all minimizing external memory access.
package main

import (
	"fmt"
	"log"

	"cocco/internal/baselines"
	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/partition"
	"cocco/internal/report"
	"cocco/internal/tiling"
)

func main() {
	g := models.MustBuild("resnet50")
	ev, err := eval.New(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}

	show := func(method string, p *partition.Partition) {
		res := ev.Partition(p, mem)
		fmt.Printf("%-18s EMA=%-9s BW=%-10s subgraphs=%d\n",
			method, report.Bytes(res.EMABytes), report.GBps(res.AvgBWBytesPerSec), p.NumSubgraphs())
	}

	show("layer-by-layer", partition.Singletons(g))

	gp, _ := baselines.Greedy(ev, mem, eval.MetricEMA)
	show("Halide (greedy)", gp)

	dp, _ := baselines.DP(ev, mem, eval.MetricEMA)
	show("Irregular-NN (DP)", dp)

	ep, _, err := baselines.Enumerate(ev, mem, eval.MetricEMA, baselines.DefaultEnumOptions())
	if err != nil {
		fmt.Printf("%-18s %v\n", "enumeration", err)
	} else {
		show("enumeration", ep)
	}

	best, _, err := core.Run(ev, core.Options{
		Seed:       42,
		Population: 100,
		MaxSamples: 30_000,
		Objective:  eval.Objective{Metric: eval.MetricEMA},
		Mem:        core.MemSearch{Fixed: mem},
	})
	if err != nil {
		log.Fatal(err)
	}
	show("Cocco (GA)", best.P)

	fmt.Println("\nCocco's subgraphs:")
	for s, members := range best.P.Subgraphs() {
		c := ev.Subgraph(members)
		fmt.Printf("  #%-3d %-2d layers: %s..%s  (wgt %s, act %s)\n",
			s, len(members), g.Node(members[0]).Name, g.Node(members[len(members)-1]).Name,
			report.Bytes(c.WeightBytes), report.Bytes(c.ActFootprint))
	}
}
