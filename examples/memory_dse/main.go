// memory_dse explores the shared-buffer capacity axis for GoogleNet (the
// Table 2 scenario) with the batched DSE driver: every capacity candidate
// is one grid point, all points share a single evaluation GraphContext, and
// the consolidated report is the capacity–energy Pareto front (the trade-off
// Figure 14 reads off the α sweep).
package main

import (
	"fmt"
	"log"

	"cocco/internal/core"
	"cocco/internal/dse"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/search"
)

func main() {
	grid := dse.Grid{
		Models:      []string{"googlenet"},
		Kinds:       []hw.BufferKind{hw.SharedBuffer},
		GlobalBytes: []int64{256 * hw.KiB, 512 * hw.KiB, 1024 * hw.KiB, 2048 * hw.KiB, 3072 * hw.KiB},
	}
	rep, err := dse.Run(dse.Options{
		Grid: grid,
		Search: search.Options{
			Core: core.Options{
				Seed:       42,
				Population: 100,
				MaxSamples: 10_000,
				Objective:  eval.Objective{Metric: eval.MetricEnergy},
			},
		},
		Workers: 4, // worker count never changes results, only wall-clock
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shared-buffer capacity sweep for googlenet (energy objective):")
	fmt.Println(rep.Table())
	fmt.Println(rep.FrontTable())
	fmt.Println("larger capacities buy lower energy until the fusion opportunities saturate —")
	fmt.Println("the same capacity–energy trade-off the paper's Figure 14 exposes via α")
}
