// memory_dse co-explores the shared-buffer capacity and graph partition for
// GoogleNet (the Table 2 scenario) and sweeps the preference α to show the
// capacity–energy trade-off (the Figure 14 scenario).
package main

import (
	"fmt"
	"log"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/report"
	"cocco/internal/tiling"
)

func main() {
	g := models.MustBuild("googlenet")
	ev, err := eval.New(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("co-exploring shared buffer capacity for googlenet (cost = bytes + α·pJ):")
	fmt.Printf("%-8s %-10s %-10s %-10s %s\n", "alpha", "capacity", "energy", "EMA", "subgraphs")
	for _, alpha := range []float64{5e-4, 1e-3, 2e-3, 5e-3, 1e-2} {
		best, _, err := core.Run(ev, core.Options{
			Seed:       42,
			Population: 100,
			MaxSamples: 20_000,
			Objective:  eval.Objective{Metric: eval.MetricEnergy, Alpha: alpha},
			Mem: core.MemSearch{
				Search: true,
				Kind:   hw.SharedBuffer,
				Global: hw.PaperSharedRange(),
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8g %-10s %-10s %-10s %d\n",
			alpha,
			report.Bytes(best.Mem.GlobalBytes),
			report.MJ(best.Res.EnergyPJ),
			report.Bytes(best.Res.EMABytes),
			best.P.NumSubgraphs())
	}
	fmt.Println("\nlarger α buys lower energy with more on-chip capacity (Figure 14's trend)")
}
