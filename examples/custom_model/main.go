// custom_model walks a user-defined network through the whole pipeline:
// build an inception-style graph with the Builder, export it to JSON, find
// the provably optimal partition by enumeration, confirm Cocco matches it,
// and simulate the winning subgraph's elementary operations.
package main

import (
	"fmt"
	"log"

	"cocco/internal/baselines"
	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/exec"
	"cocco/internal/graph"
	"cocco/internal/hw"
	"cocco/internal/report"
	"cocco/internal/serialize"
	"cocco/internal/tiling"
)

func main() {
	// A small inception-flavored network.
	b := graph.NewBuilder("custom")
	in := b.Input("input", 3, 96, 96)
	stem := b.Conv("stem", in, 32, 3, 2)
	var blocks []int
	x := stem
	for i := 1; i <= 3; i++ {
		p := fmt.Sprintf("m%d", i)
		b1 := b.Conv(p+"_1x1", x, 32, 1, 1)
		b2 := b.Conv(p+"_3x3r", x, 16, 1, 1)
		b2 = b.Conv(p+"_3x3", b2, 32, 3, 1)
		b3 := b.Pool(p+"_pool", x, 3, 1)
		b3 = b.Conv(p+"_proj", b3, 16, 1, 1)
		x = b.Concat(p+"_cat", b1, b2, b3)
		blocks = append(blocks, x)
	}
	x = b.GlobalPool("gap", x)
	b.FC("head", x, 10)
	g, err := b.Finalize()
	if err != nil {
		log.Fatal(err)
	}

	data, err := serialize.EncodeGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d nodes, %d edges (%d JSON bytes)\n",
		g.Name, g.Len(), g.Edges(), len(data))

	ev, err := eval.New(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 256 * hw.KiB, WeightBytes: 256 * hw.KiB}

	// Exact optimum by downset-lattice enumeration.
	opt, samples, err := baselines.Enumerate(ev, mem, eval.MetricEMA, baselines.DefaultEnumOptions())
	if err != nil {
		log.Fatal(err)
	}
	optRes := ev.Partition(opt, mem)
	fmt.Printf("\nenumeration optimum: EMA=%s in %d subgraphs (%d candidates scored)\n",
		report.Bytes(optRes.EMABytes), opt.NumSubgraphs(), samples)

	// Cocco should find the same cost.
	best, _, err := core.Run(ev, core.Options{
		Seed: 7, Population: 60, MaxSamples: 10_000,
		Objective: eval.Objective{Metric: eval.MetricEMA},
		Mem:       core.MemSearch{Fixed: mem},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cocco:               EMA=%s in %d subgraphs\n",
		report.Bytes(best.Res.EMABytes), best.P.NumSubgraphs())
	if best.Res.EMABytes == optRes.EMABytes {
		fmt.Println("→ Cocco matched the provable optimum")
	}

	// Trace the largest optimal subgraph.
	var largest []int
	for _, members := range opt.Subgraphs() {
		if len(members) > len(largest) {
			largest = members
		}
	}
	scheme, err := tiling.Derive(g, largest, tiling.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	tr, err := exec.Simulate(g, scheme, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlargest optimal subgraph (%d layers) simulates cleanly; op-1 snapshot:\n  %s\n",
		len(largest), exec.FormatSnapshot(g, scheme, tr.Snapshots[1]))
	_ = blocks
}
