// Quickstart: build a small computation graph, derive the consumption-centric
// execution scheme for a subgraph, lay it out in the global buffer, and run a
// short Cocco search for a good partition.
package main

import (
	"fmt"
	"log"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/graph"
	"cocco/internal/hw"
	"cocco/internal/membuf"
	"cocco/internal/partition"
	"cocco/internal/report"
	"cocco/internal/tiling"
)

func main() {
	// 1. Build a toy residual network with the graph builder.
	b := graph.NewBuilder("toy-resnet")
	in := b.Input("input", 3, 64, 64)
	stem := b.Conv("stem", in, 32, 3, 2)
	l := b.Conv("branch_l", stem, 32, 3, 1)
	r := b.Conv("branch_r", stem, 32, 1, 1)
	add := b.Eltwise("add", l, r)
	down := b.Conv("down", add, 64, 3, 2)
	head := b.FC("head", down, 10)
	g, err := b.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph %s: %d nodes, %d edges, %s weights\n",
		g.Name, g.Len(), g.Edges(), report.Bytes(g.TotalWeightBytes()))

	// 2. Derive the subgraph execution scheme (§3.1's three-stage flow) for
	// the residual block and inspect Δ / x / upd_num per node.
	members := []int{l, r, add}
	scheme, err := tiling.Derive(g, members, tiling.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconsumption-centric scheme for the residual block:")
	for _, id := range append([]int{stem}, members...) {
		ns := scheme.Nodes[id]
		fmt.Printf("  %-9s Δ=%d x=%d upd=%d external=%v\n",
			g.Node(id).Name, ns.DeltaH, ns.TileH, ns.UpdH, ns.External)
	}
	fmt.Printf("  activation footprint: %s\n", report.Bytes(scheme.TotalFootprintBytes(g)))

	// 3. Allocate MAIN/SIDE regions in a 64 KB global buffer (§3.2).
	table, err := membuf.Allocate(g, scheme, 64*hw.KiB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbuffer regions (%s used of %s):\n",
		report.Bytes(table.Used), report.Bytes(table.Capacity))
	for _, rg := range table.Regions {
		fmt.Printf("  node %-9s %-4s [%6d, %6d)\n", g.Node(rg.Node).Name, rg.Kind, rg.Start, rg.End)
	}

	// 4. Search for a partition with Cocco on a fixed configuration.
	ev, err := eval.New(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 64 * hw.KiB, WeightBytes: 256 * hw.KiB}
	best, stats, err := core.Run(ev, core.Options{
		Seed:       1,
		Population: 30,
		MaxSamples: 2_000,
		Objective:  eval.Objective{Metric: eval.MetricEMA},
		Mem:        core.MemSearch{Fixed: mem},
	})
	if err != nil {
		log.Fatal(err)
	}
	baseline := ev.Partition(partition.Singletons(g), mem)
	fmt.Printf("\nCocco partition after %d samples: EMA %s (singletons: %s), %d subgraphs\n",
		stats.Samples, report.Bytes(best.Res.EMABytes), report.Bytes(baseline.EMABytes),
		best.P.NumSubgraphs())
	_ = head
}
