package partition

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cocco/internal/graph"
)

// chain builds in -> c1 -> c2 -> c3 -> c4.
func chain(t *testing.T) (*graph.Graph, []int) {
	t.Helper()
	b := graph.NewBuilder("chain")
	in := b.Input("in", 3, 32, 32)
	ids := []int{in}
	prev := in
	for _, name := range []string{"c1", "c2", "c3", "c4"} {
		prev = b.Conv(name, prev, 8, 3, 1)
		ids = append(ids, prev)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g, ids
}

// diamond builds in -> c1 -> {l, r} -> add -> c2.
func diamond(t *testing.T) (*graph.Graph, []int) {
	t.Helper()
	b := graph.NewBuilder("diamond")
	in := b.Input("in", 3, 32, 32)
	c1 := b.Conv("c1", in, 8, 3, 1)
	l := b.Conv("l", c1, 8, 3, 1)
	r := b.Conv("r", c1, 8, 1, 1)
	add := b.Eltwise("add", l, r)
	c2 := b.Conv("c2", add, 8, 3, 1)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g, []int{in, c1, l, r, add, c2}
}

func TestSingletonsAndWhole(t *testing.T) {
	g, _ := diamond(t)
	s := Singletons(g)
	if s.NumSubgraphs() != 5 {
		t.Errorf("singletons = %d subgraphs", s.NumSubgraphs())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("singletons invalid: %v", err)
	}
	w := Whole(g)
	if w.NumSubgraphs() != 1 {
		t.Errorf("whole = %d subgraphs", w.NumSubgraphs())
	}
	if err := w.Validate(); err != nil {
		t.Errorf("whole invalid: %v", err)
	}
}

func TestFromValidation(t *testing.T) {
	g, ids := diamond(t)
	in, c1, l, r, add, c2 := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]

	// Valid: {c1,l,r,add} together, c2 alone.
	assign := make([]int, g.Len())
	assign[in] = Unassigned
	assign[c1], assign[l], assign[r], assign[add] = 0, 0, 0, 0
	assign[c2] = 1
	p, err := From(g, assign)
	if err != nil {
		t.Fatalf("From: %v", err)
	}
	if p.NumSubgraphs() != 2 {
		t.Errorf("NumSubgraphs = %d", p.NumSubgraphs())
	}
	if got := p.Members(0); len(got) != 4 {
		t.Errorf("Members(0) = %v", got)
	}

	// Disconnected subgraph {l, r} must be rejected by From.
	assign2 := make([]int, g.Len())
	assign2[in] = Unassigned
	assign2[c1] = 0
	assign2[l], assign2[r] = 1, 1
	assign2[add], assign2[c2] = 2, 3
	if _, err := From(g, assign2); err == nil || !strings.Contains(err.Error(), "not connected") {
		t.Errorf("disconnected subgraph accepted: %v", err)
	}

	// Assigned input node must be rejected.
	assign3 := append([]int(nil), assign...)
	assign3[in] = 0
	if _, err := From(g, assign3); err == nil {
		t.Error("assigned input accepted")
	}

	// Wrong length.
	if _, err := From(g, []int{0}); err == nil {
		t.Error("short assignment accepted")
	}
}

func TestNormalizeRenumbersScheduleOrder(t *testing.T) {
	g, ids := chain(t)
	c1, c2, c3, c4 := ids[1], ids[2], ids[3], ids[4]
	// Labels out of order: {c3,c4}=0, {c1,c2}=7 — normalization must flip.
	assign := make([]int, g.Len())
	assign[ids[0]] = Unassigned
	assign[c3], assign[c4] = 0, 0
	assign[c1], assign[c2] = 7, 7
	p, err := From(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	if p.Of(c1) != 0 || p.Of(c3) != 1 {
		t.Errorf("normalization: P(c1)=%d P(c3)=%d", p.Of(c1), p.Of(c3))
	}
}

func TestTryMerge(t *testing.T) {
	g, ids := diamond(t)
	p := Singletons(g)

	// Merging adjacent subgraphs works.
	a, b := p.Of(ids[1]), p.Of(ids[2]) // c1, l
	q, err := p.TryMerge(a, b)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if q.NumSubgraphs() != 4 {
		t.Errorf("after merge: %d subgraphs", q.NumSubgraphs())
	}
	if err := q.Validate(); err != nil {
		t.Errorf("merged invalid: %v", err)
	}
	// The receiver must be untouched.
	if p.NumSubgraphs() != 5 {
		t.Error("TryMerge mutated receiver")
	}

	// A connected merge that wraps around a third subgraph must be rejected
	// as unschedulable: with {c1,l} and {add,c2} merged, subgraph {r} both
	// depends on and feeds the merged one.
	assign := make([]int, g.Len())
	assign[ids[0]] = Unassigned
	assign[ids[1]], assign[ids[2]] = 0, 0 // c1, l
	assign[ids[3]] = 1                    // r
	assign[ids[4]], assign[ids[5]] = 2, 2 // add, c2
	pw, err := From(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pw.TryMerge(0, 2); err == nil {
		t.Error("cyclic merge accepted")
	}
	// Self-merge and out-of-range.
	if _, err := p.TryMerge(1, 1); err == nil {
		t.Error("self-merge accepted")
	}
	if _, err := p.TryMerge(0, 99); err == nil {
		t.Error("out-of-range merge accepted")
	}
}

func TestTryMergeSiblingsRepairsConnectivity(t *testing.T) {
	g, ids := diamond(t)
	p := Singletons(g)
	// l and r are not adjacent; the merged subgraph is disconnected and the
	// repair must split it back apart, leaving a valid partition.
	q, err := p.TryMerge(p.Of(ids[2]), p.Of(ids[3]))
	if err != nil {
		t.Fatalf("sibling merge: %v", err)
	}
	if err := q.Validate(); err != nil {
		t.Errorf("repaired partition invalid: %v", err)
	}
	if q.Of(ids[2]) == q.Of(ids[3]) {
		t.Error("disconnected merge survived repair")
	}
}

func TestTryModifyNode(t *testing.T) {
	g, ids := chain(t)
	p := Singletons(g)
	c1, c2 := ids[1], ids[2]

	q, err := p.TryModifyNode(c2, p.Of(c1))
	if err != nil {
		t.Fatalf("modify: %v", err)
	}
	if q.Of(c1) != q.Of(c2) {
		t.Error("c2 not moved into c1's subgraph")
	}
	if err := q.Validate(); err != nil {
		t.Errorf("modified invalid: %v", err)
	}

	// Moving an input node fails.
	if _, err := p.TryModifyNode(ids[0], 0); err == nil {
		t.Error("moving input accepted")
	}
	// Fresh subgraph target works.
	q2, err := p.TryModifyNode(c2, p.NumSubgraphs())
	if err != nil {
		t.Fatalf("fresh target: %v", err)
	}
	if err := q2.Validate(); err != nil {
		t.Errorf("fresh-target result invalid: %v", err)
	}
}

func TestTrySplit(t *testing.T) {
	g, ids := chain(t)
	w := Whole(g)
	c1, c2, c3, c4 := ids[1], ids[2], ids[3], ids[4]

	q, err := w.TrySplit(0, [][]int{{c1, c2}, {c3, c4}})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if q.NumSubgraphs() != 2 {
		t.Errorf("after split: %d", q.NumSubgraphs())
	}
	if q.Of(c1) != q.Of(c2) || q.Of(c3) != q.Of(c4) || q.Of(c1) == q.Of(c3) {
		t.Error("split landed wrong")
	}

	// Parts must cover the subgraph exactly.
	if _, err := w.TrySplit(0, [][]int{{c1}, {c3, c4}}); err == nil {
		t.Error("partial cover accepted")
	}
	if _, err := w.TrySplit(0, [][]int{{c1, c1}, {c2, c3, c4}}); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := w.TrySplit(0, [][]int{{c1, 0}, {c2, c3, c4}}); err == nil {
		t.Error("foreign node accepted")
	}

	// Splitting a disconnected part is repaired into components.
	q2, err := w.TrySplit(0, [][]int{{c2}, {c1, c3, c4}})
	if err != nil {
		t.Fatalf("disconnected split: %v", err)
	}
	if err := q2.Validate(); err != nil {
		t.Errorf("repaired split invalid: %v", err)
	}
	if q2.NumSubgraphs() != 3 { // {c1}, {c2}, {c3,c4}
		t.Errorf("repaired split subgraphs = %d", q2.NumSubgraphs())
	}
}

func TestCrossEdges(t *testing.T) {
	g, ids := diamond(t)
	in, c1, l, r, add, c2 := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]
	_ = in
	assign := make([]int, g.Len())
	assign[0] = Unassigned
	assign[c1], assign[l], assign[r] = 0, 0, 0
	assign[add], assign[c2] = 1, 1
	p, err := From(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	ce := p.CrossEdges()
	// l and r cross into subgraph 1; c1 does not; c2 is a model output but
	// has no cross edge.
	if len(ce[l]) != 1 || len(ce[r]) != 1 {
		t.Errorf("cross edges = %v", ce)
	}
	if len(ce[c1]) != 0 {
		t.Errorf("c1 should not cross: %v", ce[c1])
	}
}

func TestKeyDistinguishesPartitions(t *testing.T) {
	g, _ := chain(t)
	a := Singletons(g)
	b := Whole(g)
	if a.Key() == b.Key() {
		t.Error("keys collide")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("clone key differs")
	}
}

// TestMutationsPreserveValidityProperty: random sequences of
// TryMerge/TrySplit/TryModifyNode keep the partition valid.
func TestMutationsPreserveValidityProperty(t *testing.T) {
	g, _ := diamond(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Singletons(g)
		for step := 0; step < 30; step++ {
			switch rng.Intn(3) {
			case 0:
				if p.NumSubgraphs() >= 2 {
					q, err := p.TryMerge(rng.Intn(p.NumSubgraphs()), rng.Intn(p.NumSubgraphs()))
					if err == nil {
						p = q
					}
				}
			case 1:
				nodes := g.ComputeNodes()
				u := nodes[rng.Intn(len(nodes))]
				q, err := p.TryModifyNode(u, rng.Intn(p.NumSubgraphs()+1))
				if err == nil {
					p = q
				}
			default:
				s := rng.Intn(p.NumSubgraphs())
				members := p.Members(s)
				if len(members) >= 2 {
					k := 1 + rng.Intn(len(members)-1)
					q, err := p.TrySplit(s, [][]int{members[:k], members[k:]})
					if err == nil {
						p = q
					}
				}
			}
			if err := p.Validate(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
