//go:build race

package partition

// raceEnabled skips allocation pins under the race detector, which disables
// sync.Pool reuse at random and inflates AllocsPerRun counts.
const raceEnabled = true
