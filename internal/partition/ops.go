package partition

// The dense mutation workspace. TryModifyNode/TrySplit/TryMerge used to pay a
// full Clone plus a map-heavy repair+normalize per candidate: O(V·S) Members
// scans to find each subgraph's members, a map[int]bool per multi-node
// subgraph for the connectivity split, per-label maps for the quotient
// adjacency, and an O(n²) ready-selection in Kahn's algorithm. Ops replaces
// all of it with flat counting-sorted buffers and epoch-stamped graph.Marks
// sets, reused across calls, and the *Into operator variants write into a
// pooled destination partition so a rejected candidate costs no allocation at
// all. Results are bit-identical to the historical implementation: the final
// labels of repair+normalize depend only on the resulting node grouping (the
// Kahn tie-break keys — each subgraph's smallest node id — are distinct, so
// the schedule order is unique), and the oracle equivalence suite in
// oracle_test.go pins this against the retired map-based code.

import (
	"errors"
	"fmt"
	"sync"

	"cocco/internal/graph"
)

// errCyclic is the unschedulable-quotient rejection. A sentinel (not a fresh
// fmt.Errorf) so the mutation operators' common failure path allocates
// nothing: the GA probes many cyclic merges per generation.
var errCyclic = errors.New("partition: quotient graph is cyclic (unschedulable)")

// Ops is a reusable dense scratch workspace for the partition mutation path:
// member-CSR buffers, connectivity/visited Marks, the flat quotient-adjacency
// builder, and the Kahn ready-heap. A zero-value-ish Ops from NewOps grows
// its buffers on demand, so one workspace serves graphs (and label spaces) of
// any size.
//
// An Ops is not safe for concurrent use; pool one per goroutine (the package
// keeps an internal pool behind the Try* wrappers). The single-writer rule of
// Partition extends to Ops: the destination partition an *Into call produces
// is owned by the caller and must not be mutated concurrently.
type Ops struct {
	// Member CSR over subgraph labels: memIDs[memOff[s]:memOff[s+1]] are the
	// node ids of label s in ascending order. cnt doubles as the counting-sort
	// count/cursor buffer.
	cnt    []int32
	memOff []int32
	memIDs []int32

	inSub   *graph.Marks // node membership of the label being processed
	visited *graph.Marks // DFS visited set / general node scratch
	labels  *graph.Marks // label-space scratch set (edge dedup, CrossEdges)
	stack   []int32      // DFS stack

	// normalize scratch.
	denseOf []int32 // old label → dense index (-1 = unseen)
	minNode []int32 // dense label → smallest member node id
	newID   []int32 // dense label → final schedule label
	indeg   []int32
	edgeSrc []int32 // quotient cross-edge multiset (pre-dedup)
	edgeDst []int32
	qOff    []int32 // deduped quotient CSR: qAdj[qOff[s]:qEnd[s]]
	qEnd    []int32
	qAdj    []int32
	heap    []int32 // ready min-heap of dense labels keyed by minNode

	members []int // member list scratch (error paths, Validate)

	spare *Partition // recycled destination for the Try* wrappers
}

// NewOps returns an empty workspace. Buffers are grown lazily to fit the
// graphs it is used on.
func NewOps() *Ops {
	return &Ops{
		inSub:   graph.NewMarks(0),
		visited: graph.NewMarks(0),
		labels:  graph.NewMarks(0),
	}
}

// opsPool backs the Try* wrappers (and Validate/From/CrossEdges) so the
// public API stays allocation-lean without threading a workspace through
// every caller.
var opsPool = sync.Pool{New: func() any { return NewOps() }}

func getOps() *Ops  { return opsPool.Get().(*Ops) }
func putOps(o *Ops) { opsPool.Put(o) }

// ensure sizes the workspace for a graph of n nodes and labels in [0, lab).
func (o *Ops) ensure(n, lab int) {
	o.inSub.Grow(n)
	o.visited.Grow(n)
	o.labels.Grow(lab)
	if cap(o.cnt) < lab {
		o.cnt = make([]int32, lab)
		o.denseOf = make([]int32, lab)
		o.minNode = make([]int32, lab)
		o.newID = make([]int32, lab)
		o.indeg = make([]int32, lab)
		o.qOff = make([]int32, lab+1)
		o.qEnd = make([]int32, lab)
	}
	if cap(o.memOff) < lab+1 {
		o.memOff = make([]int32, lab+1)
	}
	if cap(o.memIDs) < n {
		o.memIDs = make([]int32, n)
		o.stack = make([]int32, 0, n)
	}
}

// takeDst returns a destination partition primed with p's graph, assignment,
// and count — the caller's dst if non-nil, else the recycled spare, else a
// fresh allocation. owned reports whether the destination belongs to the
// workspace (spare/fresh): only owned destinations may be recycled into
// o.spare on failure — a caller-supplied dst is still referenced by the
// caller, and keeping it would let a later *Into(nil, ...) hand out an
// aliased partition.
func (o *Ops) takeDst(dst, p *Partition) (q *Partition, owned bool) {
	if dst == nil {
		owned = true
		dst = o.spare
		o.spare = nil
	}
	if dst == nil {
		dst = &Partition{}
	}
	dst.g = p.g
	dst.assign = append(dst.assign[:0], p.assign...)
	dst.count = p.count
	dst.hash = 0 // set by normalize on success
	return dst, owned
}

// keepDst recycles a workspace-owned destination whose operation failed, so
// the next Try* through this workspace reuses its buffers.
func (o *Ops) keepDst(dst *Partition, owned bool) {
	if owned && o.spare == nil {
		o.spare = dst
	}
}

// ModifyNodeInto is the in-place TryModifyNode: it writes the repaired result
// into dst (reusing its buffers; pass nil to allocate) and returns it. dst
// must not be p or otherwise alias it. On error dst's previous contents are
// lost but its buffers stay reusable.
func (o *Ops) ModifyNodeInto(dst, p *Partition, u, target int) (*Partition, error) {
	if p.assign[u] == Unassigned {
		return nil, fmt.Errorf("partition: cannot move input node %d", u)
	}
	if target < 0 || target > p.count {
		return nil, fmt.Errorf("partition: target subgraph %d out of range", target)
	}
	src := p.assign[u]
	q, owned := o.takeDst(dst, p)
	q.assign[u] = target
	if target == p.count {
		q.count++
	}
	if err := o.repair(q); err != nil {
		o.keepDst(q, owned)
		return nil, err
	}
	o.carry(q, p, src, target)
	return q, nil
}

// SplitInto is the in-place TrySplit; same destination contract as
// ModifyNodeInto.
func (o *Ops) SplitInto(dst, p *Partition, s int, parts [][]int) (*Partition, error) {
	members := 0
	for _, a := range p.assign {
		if a == s {
			members++
		}
	}
	o.ensure(len(p.assign), labelSpace(p))
	o.visited.Reset() // nodes already claimed by a part
	total := 0
	for _, part := range parts {
		for _, id := range part {
			if p.assign[id] != s {
				return nil, fmt.Errorf("partition: node %d not in subgraph %d", id, s)
			}
			if o.visited.Has(id) {
				return nil, fmt.Errorf("partition: node %d in multiple parts", id)
			}
			o.visited.Set(id)
			total++
		}
	}
	if total != members {
		return nil, fmt.Errorf("partition: parts cover %d of %d members", total, members)
	}
	q, owned := o.takeDst(dst, p)
	for i, part := range parts {
		label := s
		if i > 0 {
			label = q.count
			q.count++
		}
		for _, id := range part {
			q.assign[id] = label
		}
	}
	if err := o.repair(q); err != nil {
		o.keepDst(q, owned)
		return nil, err
	}
	o.carry(q, p, s, s)
	return q, nil
}

// MergeInto is the in-place TryMerge; same destination contract as
// ModifyNodeInto.
func (o *Ops) MergeInto(dst, p *Partition, a, b int) (*Partition, error) {
	if a == b {
		return nil, fmt.Errorf("partition: merging subgraph %d with itself", a)
	}
	if a >= p.count || b >= p.count || a < 0 || b < 0 {
		return nil, fmt.Errorf("partition: merge ids out of range")
	}
	q, owned := o.takeDst(dst, p)
	for id, s := range q.assign {
		if s == b {
			q.assign[id] = a
		}
	}
	if err := o.repair(q); err != nil {
		o.keepDst(q, owned)
		return nil, err
	}
	o.carry(q, p, a, b)
	return q, nil
}

// labelSpace bounds the label ids repair can produce for a partition derived
// from p: the starting labels (count, +1 for a fresh modify-node target, +V
// for split parts) plus at most one new label per node from the connectivity
// split.
func labelSpace(p *Partition) int { return p.count + 2*len(p.assign) + 2 }

// carry copies the key/cost caches from parent p into q for every subgraph
// whose member set is provably unchanged — the single-pass equivalent of the
// historical carryFrom: untouched parent labels keep exactly their members,
// so the new label is found through any member node. t1/t2 are the parent
// labels the operator touched (pass the same label twice for one).
func (o *Ops) carry(q, p *Partition, t1, t2 int) {
	if p.keys == nil && p.costs == nil {
		q.keys, q.costs = nil, nil
		return
	}
	q.keys = growStrings(q.keys, q.count)
	q.costs = growAnys(q.costs, q.count)
	for id, a := range p.assign {
		if a < 0 || a == t1 || a == t2 {
			continue
		}
		n := q.assign[id]
		if p.keys != nil {
			q.keys[n] = p.keys[a]
		}
		if p.costs != nil {
			q.costs[n] = p.costs[a]
		}
	}
}

func growStrings(s []string, n int) []string {
	if cap(s) < n {
		return make([]string, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = ""
	}
	return s
}

func growAnys(s []any, n int) []any {
	if cap(s) < n {
		return make([]any, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// buildMemberCSR counting-sorts the assignment into the workspace member CSR
// for labels [0, next). Members are ascending within each label because node
// ids are scanned in order.
func (o *Ops) buildMemberCSR(assign []int, next int) {
	cnt := o.cnt[:next]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, a := range assign {
		if a >= 0 {
			cnt[a]++
		}
	}
	off := o.memOff[:next+1]
	total := int32(0)
	for s := 0; s < next; s++ {
		off[s] = total
		total += cnt[s]
	}
	off[next] = total
	cur := cnt // reuse as cursor: cur[s] = next write slot for label s
	for s := 0; s < next; s++ {
		cur[s] = off[s]
	}
	ids := o.memIDs[:total]
	for id, a := range assign {
		if a >= 0 {
			ids[cur[a]] = int32(id)
			cur[a]++
		}
	}
}

// repair makes q valid if possible: split disconnected subgraphs into weakly
// connected components, then renumber via the quotient topological order.
// Returns an error only if the quotient graph is cyclic. Dense reimplementation
// of the historical repair: identical grouping, hence identical final labels.
func (o *Ops) repair(q *Partition) error {
	assign := q.assign
	next := 0
	for _, a := range assign {
		if a >= next {
			next = a + 1
		}
	}
	o.ensure(len(assign), next+len(assign)+1)
	o.buildMemberCSR(assign, next)

	// Labels split off below are weakly connected components by construction,
	// so only the original label range needs a connectivity pass (the retired
	// code rescanned the fresh labels too, as a no-op).
	g := q.g
	next0 := next
	for s := 0; s < next0; s++ {
		ms := o.memIDs[o.memOff[s]:o.memOff[s+1]]
		if len(ms) <= 1 {
			continue
		}
		o.inSub.Reset()
		for _, id := range ms {
			o.inSub.Set(int(id))
		}
		o.visited.Reset()
		first := true
		for _, id32 := range ms {
			if o.visited.Has(int(id32)) {
				continue
			}
			// DFS one weakly connected component. The first keeps label s;
			// later ones are split off under fresh labels.
			label := -1
			if !first {
				label = next
				next++
			}
			o.stack = append(o.stack[:0], id32)
			o.visited.Set(int(id32))
			if label >= 0 {
				assign[int(id32)] = label
			}
			for len(o.stack) > 0 {
				u := int(o.stack[len(o.stack)-1])
				o.stack = o.stack[:len(o.stack)-1]
				for _, v := range g.SuccIDs(u) {
					if o.inSub.Has(int(v)) && !o.visited.Has(int(v)) {
						o.visited.Set(int(v))
						if label >= 0 {
							assign[int(v)] = label
						}
						o.stack = append(o.stack, v)
					}
				}
				for _, v := range g.PredIDs(u) {
					if o.inSub.Has(int(v)) && !o.visited.Has(int(v)) {
						o.visited.Set(int(v))
						if label >= 0 {
							assign[int(v)] = label
						}
						o.stack = append(o.stack, v)
					}
				}
			}
			first = false
		}
	}
	q.count = next
	return o.normalize(q)
}

// normalize renumbers q's subgraphs into schedule order: dense-relabel, flat
// deduped quotient adjacency (counting sort), and Kahn's algorithm with the
// ready set as a min-heap keyed by each subgraph's smallest node id — the
// exact historical tie-break (keys are distinct, so the order is unique).
// Returns an error if the quotient graph is cyclic.
func (o *Ops) normalize(q *Partition) error {
	assign := q.assign
	lab := q.count
	o.ensure(len(assign), lab+1)

	// Old label → dense index, in node-scan order; minNode[d] is the smallest
	// node id of dense label d (the first one seen, since ids ascend).
	denseOf := o.denseOf[:lab]
	for i := range denseOf {
		denseOf[i] = -1
	}
	n := 0
	minNode := o.minNode[:lab]
	for id, a := range assign {
		if a >= 0 && denseOf[a] < 0 {
			denseOf[a] = int32(n)
			minNode[n] = int32(id)
			n++
		}
	}

	// Quotient cross edges, duplicates included.
	g := q.g
	es, ed := o.edgeSrc[:0], o.edgeDst[:0]
	for _, u := range g.ComputeIDs() {
		su := denseOf[assign[u]]
		for _, v := range g.SuccIDs(u) {
			av := assign[int(v)]
			if av < 0 {
				continue
			}
			if sv := denseOf[av]; sv != su {
				es = append(es, su)
				ed = append(ed, sv)
			}
		}
	}
	o.edgeSrc, o.edgeDst = es, ed

	// Counting-sort the edges by source, then dedup each bucket in place with
	// the label-space Marks while counting in-degrees.
	cnt := o.cnt[:n]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, s := range es {
		cnt[s]++
	}
	qOff := o.qOff[:n+1]
	total := int32(0)
	for s := 0; s < n; s++ {
		qOff[s] = total
		total += cnt[s]
	}
	qOff[n] = total
	if cap(o.qAdj) < int(total) {
		o.qAdj = make([]int32, total)
	}
	qAdj := o.qAdj[:total]
	for s := 0; s < n; s++ {
		cnt[s] = qOff[s]
	}
	for i, s := range es {
		qAdj[cnt[s]] = ed[i]
		cnt[s]++
	}
	indeg := o.indeg[:n]
	for i := range indeg {
		indeg[i] = 0
	}
	qEnd := o.qEnd[:n]
	for s := 0; s < n; s++ {
		o.labels.Reset()
		w := qOff[s]
		for i := qOff[s]; i < qOff[s+1]; i++ {
			t := qAdj[i]
			if !o.labels.Has(int(t)) {
				o.labels.Set(int(t))
				qAdj[w] = t
				w++
				indeg[t]++
			}
		}
		qEnd[s] = w
	}

	// Kahn with the min-heap ready set.
	o.heap = o.heap[:0]
	for s := 0; s < n; s++ {
		if indeg[s] == 0 {
			o.heapPush(int32(s))
		}
	}
	newID := o.newID[:n]
	done := 0
	for len(o.heap) > 0 {
		s := o.heapPop()
		newID[s] = int32(done)
		done++
		for i := qOff[s]; i < qEnd[s]; i++ {
			t := qAdj[i]
			indeg[t]--
			if indeg[t] == 0 {
				o.heapPush(t)
			}
		}
	}
	if done != n {
		return errCyclic
	}
	// Final relabel; the AssignHash cache is folded in here for free (the
	// loop already touches every entry).
	h := uint64(hashOffset)
	for id, a := range assign {
		if a < 0 {
			assign[id] = Unassigned
			h = (h ^ 0xFFFFFFFF) * hashPrime // uint32(Unassigned)
		} else {
			v := int(newID[denseOf[a]])
			assign[id] = v
			h = (h ^ uint64(uint32(v))) * hashPrime
		}
	}
	q.count = n
	q.hash = h
	return nil
}

// heapPush/heapPop maintain the ready min-heap over dense labels, ordered by
// minNode (distinct per label, so ordering is total).
func (o *Ops) heapPush(s int32) {
	h := append(o.heap, s)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if o.minNode[h[parent]] <= o.minNode[h[i]] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	o.heap = h
}

func (o *Ops) heapPop() int32 {
	h := o.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && o.minNode[h[l]] < o.minNode[h[small]] {
			small = l
		}
		if r < len(h) && o.minNode[h[r]] < o.minNode[h[small]] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	o.heap = h
	return top
}

// validate is the dense Validate: precedence over the CSR adjacency, then
// per-subgraph emptiness and weak connectivity via the member CSR and Marks.
// Error cases and ordering match the historical map-based implementation.
func (o *Ops) validate(p *Partition) error {
	g := p.g
	for _, u := range g.ComputeIDs() {
		for _, v := range g.SuccIDs(u) {
			if p.assign[int(v)] == Unassigned {
				continue
			}
			if p.assign[u] > p.assign[int(v)] {
				return fmt.Errorf("partition: edge %d->%d violates precedence (P=%d > %d)",
					u, int(v), p.assign[u], p.assign[int(v)])
			}
		}
	}
	o.ensure(len(p.assign), p.count+1)
	o.buildMemberCSR(p.assign, p.count)
	for s := 0; s < p.count; s++ {
		ms := o.memIDs[o.memOff[s]:o.memOff[s+1]]
		if len(ms) == 0 {
			return fmt.Errorf("partition: subgraph %d empty", s)
		}
		if len(ms) == 1 {
			continue
		}
		o.inSub.Reset()
		for _, id := range ms {
			o.inSub.Set(int(id))
		}
		o.visited.Reset()
		o.stack = append(o.stack[:0], ms[0])
		o.visited.Set(int(ms[0]))
		reached := 1
		for len(o.stack) > 0 {
			u := int(o.stack[len(o.stack)-1])
			o.stack = o.stack[:len(o.stack)-1]
			for _, v := range g.SuccIDs(u) {
				if o.inSub.Has(int(v)) && !o.visited.Has(int(v)) {
					o.visited.Set(int(v))
					reached++
					o.stack = append(o.stack, v)
				}
			}
			for _, v := range g.PredIDs(u) {
				if o.inSub.Has(int(v)) && !o.visited.Has(int(v)) {
					o.visited.Set(int(v))
					reached++
					o.stack = append(o.stack, v)
				}
			}
		}
		if reached != len(ms) {
			o.members = p.AppendMembers(o.members[:0], s)
			return fmt.Errorf("partition: subgraph %d not connected: %v", s, o.members)
		}
	}
	return nil
}
