package partition_test

// Native fuzz targets for the partition-operator invariants the delta
// evaluation layer leans on: every successful TryModifyNode/TrySplit/TryMerge
// must yield a valid schedulable partition (precedence + connectivity +
// acyclic quotient, all checked by Validate), keep the assignment vector a
// proper partition of the compute nodes, and carry per-subgraph cache entries
// (interned member keys, opaque cost handles) only when the member set is
// unchanged — a stale carry is exactly the bug that would silently corrupt
// incremental evaluation.

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"cocco/internal/graph"
	"cocco/internal/partition"
	"cocco/internal/testutil"
)

// checkInvariants asserts validity and cache integrity of p.
func checkInvariants(t *testing.T, g *graph.Graph, p *partition.Partition, op string) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: invalid partition: %v", op, err)
	}
	// The assignment vector must be a partition of the compute nodes with
	// dense subgraph ids [0, count).
	seen := make([]bool, p.NumSubgraphs())
	for _, n := range g.Nodes() {
		s := p.Of(n.ID)
		if n.Kind == graph.OpInput {
			if s != partition.Unassigned {
				t.Fatalf("%s: input node %d assigned to %d", op, n.ID, s)
			}
			continue
		}
		if s < 0 || s >= p.NumSubgraphs() {
			t.Fatalf("%s: node %d has out-of-range subgraph %d (count %d)", op, n.ID, s, p.NumSubgraphs())
		}
		seen[s] = true
	}
	for s, ok := range seen {
		if !ok {
			t.Fatalf("%s: subgraph id %d has no members", op, s)
		}
	}
	// Cache integrity: the interned key and any carried handle must match a
	// freshly computed canonical key of the subgraph's current member set.
	for s := 0; s < p.NumSubgraphs(); s++ {
		fresh := partition.MemberKey(p.Members(s))
		if got := p.SubgraphKey(s); got != fresh {
			t.Fatalf("%s: subgraph %d carries stale interned key", op, s)
		}
		if h := p.CostHandle(s); h != nil {
			if key, ok := h.(string); !ok || key != fresh {
				t.Fatalf("%s: subgraph %d carries a stale cost handle", op, s)
			}
		}
	}
}

// tagHandles stamps every subgraph's cost handle with its canonical member
// key, standing in for the evaluator's *SubgraphCost (which likewise depends
// only on the member set).
func tagHandles(p *partition.Partition) {
	for s := 0; s < p.NumSubgraphs(); s++ {
		p.SetCostHandle(s, p.SubgraphKey(s))
	}
}

// FuzzPartitionOps drives random operator sequences over seeded random DAGs.
func FuzzPartitionOps(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 0, 2, 1})
	f.Add(int64(7), []byte{2, 2, 2, 0, 0, 1, 1, 0, 2})
	f.Add(int64(42), []byte{1, 0, 2, 1, 0, 2, 1, 0})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		g := testutil.RandomGraph(seed%16, 16+int(uint64(seed)%16))
		rng := rand.New(rand.NewSource(seed))
		p := partition.Singletons(g)
		tagHandles(p)
		nodes := g.ComputeNodes()
		for _, b := range ops {
			var q *partition.Partition
			var err error
			var op string
			switch b % 3 {
			case 0:
				op = "TryModifyNode"
				u := nodes[rng.Intn(len(nodes))]
				q, err = p.TryModifyNode(u, rng.Intn(p.NumSubgraphs()+1))
			case 1:
				op = "TrySplit"
				s := rng.Intn(p.NumSubgraphs())
				members := p.Members(s)
				if len(members) < 2 {
					continue
				}
				// A random bipartition; disconnected halves are legal (the op
				// repairs them into components).
				var a, bp []int
				for _, id := range members {
					if rng.Intn(2) == 0 {
						a = append(a, id)
					} else {
						bp = append(bp, id)
					}
				}
				if len(a) == 0 || len(bp) == 0 {
					continue
				}
				q, err = p.TrySplit(s, [][]int{a, bp})
			default:
				op = "TryMerge"
				if p.NumSubgraphs() < 2 {
					continue
				}
				x := rng.Intn(p.NumSubgraphs())
				y := rng.Intn(p.NumSubgraphs())
				if x == y {
					continue
				}
				q, err = p.TryMerge(x, y)
			}
			if err != nil {
				continue // unschedulable move; the receiver must be unchanged
			}
			checkInvariants(t, g, q, op)
			p = q
			tagHandles(p) // dirty subgraphs get fresh handles, like the evaluator
		}
	})
}

// FuzzOpsWorkspace drives random op streams through ONE reused Ops workspace
// and destination chain — the GA's steady-state usage pattern. Beyond the
// per-op invariants of FuzzPartitionOps it specifically hunts scratch-reuse
// bugs: stale epoch marks, under-grown buffers when the graph or label space
// changes between calls, and destination recycling after rejected moves.
func FuzzOpsWorkspace(f *testing.F) {
	f.Add(int64(3), []byte{0, 1, 2, 2, 1, 0, 0, 1})
	f.Add(int64(11), []byte{2, 0, 2, 0, 2, 0, 1, 1, 1})
	f.Add(int64(29), []byte{1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		o := partition.NewOps()
		// Two graphs of different sizes, alternated mid-stream, so the
		// workspace must regrow correctly.
		graphs := []*graph.Graph{
			testutil.RandomGraph(seed%8, 10+int(uint64(seed)%10)),
			testutil.RandomGraph(seed%8+100, 24+int(uint64(seed)%12)),
		}
		for gi, g := range graphs {
			rng := rand.New(rand.NewSource(seed + int64(gi)))
			p := partition.Singletons(g)
			tagHandles(p)
			nodes := g.ComputeNodes()
			var spare *partition.Partition // retired states recycled as destinations
			for _, b := range ops {
				var q *partition.Partition
				var err error
				var op string
				switch b % 3 {
				case 0:
					op = "ModifyNodeInto"
					u := nodes[rng.Intn(len(nodes))]
					q, err = o.ModifyNodeInto(spare, p, u, rng.Intn(p.NumSubgraphs()+1))
				case 1:
					op = "SplitInto"
					s := rng.Intn(p.NumSubgraphs())
					members := p.Members(s)
					if len(members) < 2 {
						continue
					}
					var a, bp []int
					for _, id := range members {
						if rng.Intn(2) == 0 {
							a = append(a, id)
						} else {
							bp = append(bp, id)
						}
					}
					if len(a) == 0 || len(bp) == 0 {
						continue
					}
					q, err = o.SplitInto(spare, p, s, [][]int{a, bp})
				default:
					op = "MergeInto"
					if p.NumSubgraphs() < 2 {
						continue
					}
					x := rng.Intn(p.NumSubgraphs())
					y := rng.Intn(p.NumSubgraphs())
					if x == y {
						continue
					}
					q, err = o.MergeInto(spare, p, x, y)
				}
				if err != nil {
					// Rejected move: the receiver must be unchanged, and the
					// destination (if any) stays with the workspace.
					spare = nil
					checkInvariants(t, g, p, op+"(rejected receiver)")
					continue
				}
				checkInvariants(t, g, q, op)
				spare = nil
				if q != p {
					spare = p // recycle the retired state as the next destination
				}
				p = q
				tagHandles(p)
			}
		}
	})
}

// decodeMemberKey unpacks a canonical member key back into ids.
func decodeMemberKey(key string) []int {
	ids := make([]int, 0, len(key)/4)
	for i := 0; i+4 <= len(key); i += 4 {
		ids = append(ids, int(binary.BigEndian.Uint32([]byte(key[i:i+4]))))
	}
	return ids
}

// FuzzMemberKey checks round-trip and collision-freedom of the canonical
// member-key packing for arbitrary in-range id sets.
func FuzzMemberKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2})
	f.Add([]byte{255, 255, 255, 255, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ids := make([]int, 0, len(data)/4)
		for i := 0; i+4 <= len(data); i += 4 {
			ids = append(ids, int(binary.BigEndian.Uint32(data[i:i+4])))
		}
		sort.Ints(ids)
		// Dedup: member sets are sets.
		uniq := ids[:0]
		for i, id := range ids {
			if i == 0 || id != ids[i-1] {
				uniq = append(uniq, id)
			}
		}
		key := partition.MemberKey(uniq)
		if len(key) != 4*len(uniq) {
			t.Fatalf("key length %d for %d ids", len(key), len(uniq))
		}
		back := decodeMemberKey(key)
		if len(back) != len(uniq) {
			t.Fatalf("round-trip length %d != %d", len(back), len(uniq))
		}
		for i := range back {
			if back[i] != uniq[i] {
				t.Fatalf("round-trip mismatch at %d: %d != %d", i, back[i], uniq[i])
			}
		}
		// Injectivity: perturbing any id must change the key.
		if len(uniq) > 0 {
			mut := append([]int(nil), uniq...)
			if mut[0] < 1<<32-1 {
				mut[0]++
			} else {
				mut[0]--
			}
			sort.Ints(mut)
			if partition.MemberKey(mut) == key {
				t.Fatalf("distinct member sets share key: %v vs %v", uniq, mut)
			}
		}
	})
}

// TestMemberKeyGuard pins the 2^32 aliasing guard: out-of-range ids must
// panic rather than silently alias another subgraph's cache key.
func TestMemberKeyGuard(t *testing.T) {
	mustPanic := func(name string, ids []int) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: MemberKey did not panic", name)
			}
		}()
		partition.MemberKey(ids)
	}
	mustPanic("negative id", []int{-1})
	if strconv.IntSize == 64 {
		// Non-constant shift so the expression compiles on 32-bit platforms
		// where the guard skips this case.
		one := 1
		mustPanic("id over 2^32", []int{one << 32})
	}
}

// TestSubgraphKeyInterned verifies the interning contract of the delta
// layer: after the first build, repeated key lookups are allocation-free,
// and derived partitions inherit the interned keys of untouched subgraphs.
func TestSubgraphKeyInterned(t *testing.T) {
	g := testutil.RandomGraph(3, 24)
	p := partition.Singletons(g)
	for s := 0; s < p.NumSubgraphs(); s++ {
		p.SubgraphKey(s)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for s := 0; s < p.NumSubgraphs(); s++ {
			p.SubgraphKey(s)
		}
	}); allocs != 0 {
		t.Errorf("interned SubgraphKey allocates %.1f per run, want 0", allocs)
	}
	// Some singleton pairs are unschedulable to merge (a path through a
	// third subgraph); take the first pair that works.
	var q *partition.Partition
	for a := 0; a+1 < p.NumSubgraphs() && q == nil; a++ {
		if m, err := p.TryMerge(a, a+1); err == nil {
			q = m
		}
	}
	if q == nil {
		t.Fatal("no mergeable singleton pair")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for s := 0; s < q.NumSubgraphs(); s++ {
			q.SubgraphKey(s)
		}
	}); allocs != 0 {
		t.Errorf("carried SubgraphKey allocates %.1f per run, want 0", allocs)
	}
}
