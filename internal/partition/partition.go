// Package partition implements the paper's graph-level partition formalism
// (§4.1.1): a mapping P : V → ℕ assigning every compute layer to a subgraph,
// subject to two validity conditions — precedence (for every edge (u,v),
// P(u) ≤ P(v), so any layer is computed before use) and connectivity (every
// subgraph is weakly connected in G, "otherwise meaningless").
//
// Subgraph ids double as the schedule: subgraphs execute in ascending id
// order (§5.1.2 schedules subgraphs in topological order).
package partition

import (
	"fmt"
	"math"
	"sort"

	"cocco/internal/graph"
)

// Unassigned marks nodes that do not belong to any subgraph (OpInput nodes).
const Unassigned = -1

// Partition assigns each compute node of a graph to a subgraph.
// The zero value is unusable; construct with Singletons, Whole, or From.
type Partition struct {
	g      *graph.Graph
	assign []int // node id → subgraph id, Unassigned for inputs
	count  int   // number of subgraphs

	// keys and costs are per-subgraph evaluation caches: keys[s] is the
	// interned MemberKey of subgraph s ("" until built), costs[s] an opaque
	// cost handle owned by the evaluation layer (nil = dirty). Both are
	// carried across TryModifyNode/TrySplit/TryMerge for subgraphs whose
	// member set is unchanged, so the evaluator re-derives costs only for
	// the subgraphs an operator actually touched. nil slices mean no cache.
	//
	// The caches make a Partition single-writer: fills must come from the
	// goroutine that owns the partition (readers of a committed, shared
	// partition must not trigger fills concurrently with other writers).
	keys  []string
	costs []any
}

// MemberKey packs a sorted member-id slice into the canonical subgraph cache
// key, 4 bytes per id. Ids outside [0, 2^32) would alias another subgraph's
// key, so they panic instead of silently corrupting cost caches. Callers must
// pass ids in ascending order for the key to be canonical.
func MemberKey(members []int) string {
	return string(AppendMemberKey(make([]byte, 0, len(members)*4), members))
}

// AppendMemberKey appends the canonical key bytes of members to dst and
// returns it — MemberKey without the string conversion, for callers that
// build keys into a reusable scratch buffer (the evaluator's per-lookup
// path). Same ordering contract and 32-bit guard as MemberKey.
func AppendMemberKey(dst []byte, members []int) []byte {
	for _, id := range members {
		if id < 0 || uint64(id) > math.MaxUint32 {
			panic(fmt.Sprintf("partition: node id %d outside the 32-bit cache-key range", id))
		}
		dst = append(dst, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return dst
}

// AppendKeyMembers decodes a canonical MemberKey back into its sorted member
// ids, appending to dst (pass dst[:0] to reuse a scratch buffer — the decode
// is the evaluator's cold-miss path and must not allocate per subgraph when
// the caller provides capacity). The key is the member list, so decoding
// never needs the assignment vector. Inverse of MemberKey.
func AppendKeyMembers(dst []int, key string) []int {
	n := len(key) / 4
	for i := 0; i < n; i++ {
		dst = append(dst, int(uint32(key[4*i])<<24|uint32(key[4*i+1])<<16|
			uint32(key[4*i+2])<<8|uint32(key[4*i+3])))
	}
	return dst
}

// SubgraphKey returns the interned MemberKey of subgraph s. Missing keys are
// built for every key-less subgraph at once in a single assignment-vector
// pass (a fresh partition needs all of them, a mutated one the touched few),
// so key building is O(V) total rather than O(V) per subgraph. Repeated
// calls are allocation-free.
func (p *Partition) SubgraphKey(s int) string {
	if p.keys == nil {
		p.keys = make([]string, p.count)
	}
	if p.keys[s] == "" {
		members := make([][]int, p.count)
		for id, a := range p.assign {
			if a >= 0 && p.keys[a] == "" {
				members[a] = append(members[a], id)
			}
		}
		for t, m := range members {
			if m != nil {
				p.keys[t] = MemberKey(m)
			}
		}
	}
	return p.keys[s]
}

// CostHandle returns the opaque evaluation handle of subgraph s, or nil if
// the subgraph is dirty (membership changed since the handle was set, or it
// was never evaluated).
func (p *Partition) CostHandle(s int) any {
	if p.costs == nil {
		return nil
	}
	return p.costs[s]
}

// SetCostHandle attaches an evaluation handle to subgraph s. Ops carry the
// handle to derived partitions whenever the member set is preserved, so its
// value must be a pure function of the member set plus whatever context the
// setting layer encodes inside the handle itself (the evaluator tags handles
// with their owning evaluator for exactly this reason).
func (p *Partition) SetCostHandle(s int, h any) {
	if p.costs == nil {
		p.costs = make([]any, p.count)
	}
	p.costs[s] = h
}

// carryFrom copies the key/cost caches from the parent partition p for every
// subgraph whose member set is provably unchanged: ops pass the parent labels
// they touched, and every other parent subgraph kept exactly its members
// (repair only rewrites members of touched subgraphs, and normalize only
// renumbers), so its new label is found through any member node.
func (q *Partition) carryFrom(p *Partition, touched ...int) {
	if p.keys == nil && p.costs == nil {
		return
	}
	q.keys = make([]string, q.count)
	q.costs = make([]any, q.count)
	for id, a := range p.assign {
		if a < 0 {
			continue
		}
		skip := false
		for _, t := range touched {
			if a == t {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		n := q.assign[id]
		if p.keys != nil {
			q.keys[n] = p.keys[a]
		}
		if p.costs != nil {
			q.costs[n] = p.costs[a]
		}
	}
}

// Singletons returns the partition with every compute node in its own
// subgraph, numbered in topological order (the greedy baseline's starting
// point).
func Singletons(g *graph.Graph) *Partition {
	p := &Partition{g: g, assign: make([]int, g.Len())}
	for i := range p.assign {
		p.assign[i] = Unassigned
	}
	for _, id := range g.ComputeIDs() {
		p.assign[id] = p.count
		p.count++
	}
	return p
}

// Whole returns the partition with all compute nodes in one subgraph.
// It is valid only if the compute nodes are weakly connected.
func Whole(g *graph.Graph) *Partition {
	p := &Partition{g: g, assign: make([]int, g.Len()), count: 1}
	for i := range p.assign {
		p.assign[i] = Unassigned
	}
	for _, id := range g.ComputeIDs() {
		p.assign[id] = 0
	}
	return p
}

// From builds a partition from an explicit assignment (node id → subgraph
// id; input nodes must be Unassigned). The assignment is normalized (ids
// renumbered into schedule order) and validated.
func From(g *graph.Graph, assign []int) (*Partition, error) {
	if len(assign) != g.Len() {
		return nil, fmt.Errorf("partition: assignment length %d != %d nodes", len(assign), g.Len())
	}
	p := &Partition{g: g, assign: append([]int(nil), assign...)}
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput {
			if p.assign[n.ID] != Unassigned {
				return nil, fmt.Errorf("partition: input node %d assigned to subgraph %d", n.ID, p.assign[n.ID])
			}
		} else if p.assign[n.ID] < 0 {
			return nil, fmt.Errorf("partition: compute node %d unassigned", n.ID)
		}
	}
	if err := p.normalize(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// FromRepaired builds a partition from an explicit assignment like From, but
// repairs disconnected subgraphs by splitting them into weakly connected
// components instead of rejecting them. It still fails if the quotient graph
// is cyclic (unschedulable).
func FromRepaired(g *graph.Graph, assign []int) (*Partition, error) {
	if len(assign) != g.Len() {
		return nil, fmt.Errorf("partition: assignment length %d != %d nodes", len(assign), g.Len())
	}
	p := &Partition{g: g, assign: append([]int(nil), assign...)}
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput {
			p.assign[n.ID] = Unassigned
		} else if p.assign[n.ID] < 0 {
			return nil, fmt.Errorf("partition: compute node %d unassigned", n.ID)
		}
	}
	return p.repair()
}

// Graph returns the underlying graph.
func (p *Partition) Graph() *graph.Graph { return p.g }

// NumSubgraphs returns the number of subgraphs.
func (p *Partition) NumSubgraphs() int { return p.count }

// Of returns the subgraph id of node id (Unassigned for inputs).
func (p *Partition) Of(id int) int { return p.assign[id] }

// Assignment returns a copy of the raw assignment slice.
func (p *Partition) Assignment() []int { return append([]int(nil), p.assign...) }

// Clone returns a deep copy. The key/cost caches are copied into fresh
// backing arrays (the interned keys and handles themselves are shared; they
// are immutable), so the clone's owner can fill its caches independently.
func (p *Partition) Clone() *Partition {
	q := &Partition{g: p.g, assign: append([]int(nil), p.assign...), count: p.count}
	if p.keys != nil {
		q.keys = append([]string(nil), p.keys...)
	}
	if p.costs != nil {
		q.costs = append([]any(nil), p.costs...)
	}
	return q
}

// Members returns the node ids of subgraph s in ascending order.
func (p *Partition) Members(s int) []int {
	var m []int
	for id, a := range p.assign {
		if a == s {
			m = append(m, id)
		}
	}
	return m
}

// Subgraphs returns all subgraphs' members, indexed by subgraph id.
func (p *Partition) Subgraphs() [][]int {
	out := make([][]int, p.count)
	for id, a := range p.assign {
		if a >= 0 {
			out[a] = append(out[a], id)
		}
	}
	return out
}

// Key returns a canonical string identity of the partition, usable as a map
// key for memoization and dedup.
func (p *Partition) Key() string {
	b := make([]byte, 0, len(p.assign)*2)
	for _, a := range p.assign {
		b = append(b, byte(a>>8), byte(a))
	}
	return string(b)
}

// Validate checks both validity conditions: precedence on every edge between
// compute nodes and weak connectivity of every subgraph.
func (p *Partition) Validate() error {
	for _, u := range p.g.ComputeIDs() {
		for _, v := range p.g.Succ(u) {
			if p.assign[v] == Unassigned {
				continue
			}
			if p.assign[u] > p.assign[v] {
				return fmt.Errorf("partition: edge %d->%d violates precedence (P=%d > %d)",
					u, v, p.assign[u], p.assign[v])
			}
		}
	}
	for s, members := range p.Subgraphs() {
		if len(members) == 0 {
			return fmt.Errorf("partition: subgraph %d empty", s)
		}
		set := make(map[int]bool, len(members))
		for _, id := range members {
			set[id] = true
		}
		if !p.g.IsConnected(set) {
			return fmt.Errorf("partition: subgraph %d not connected: %v", s, members)
		}
	}
	return nil
}

// normalize renumbers subgraphs into a schedule order consistent with the
// quotient DAG (subgraph-level dependencies). Returns an error if the
// quotient graph is cyclic (the partition cannot be scheduled).
func (p *Partition) normalize() error {
	// Map old labels to dense indices.
	oldIDs := map[int]int{}
	for _, a := range p.assign {
		if a >= 0 {
			if _, ok := oldIDs[a]; !ok {
				oldIDs[a] = len(oldIDs)
			}
		}
	}
	n := len(oldIDs)
	dense := make([]int, len(p.assign))
	for id, a := range p.assign {
		if a < 0 {
			dense[id] = Unassigned
		} else {
			dense[id] = oldIDs[a]
		}
	}
	// Quotient edges.
	adj := make([]map[int]bool, n)
	indeg := make([]int, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	for _, u := range p.g.ComputeIDs() {
		su := dense[u]
		for _, v := range p.g.Succ(u) {
			sv := dense[v]
			if sv == Unassigned || sv == su {
				continue
			}
			if !adj[su][sv] {
				adj[su][sv] = true
				indeg[sv]++
			}
		}
	}
	// Kahn's algorithm; among ready subgraphs pick the one containing the
	// smallest node id for determinism.
	minNode := make([]int, n)
	for i := range minNode {
		minNode[i] = int(^uint(0) >> 1)
	}
	for id, s := range dense {
		if s >= 0 && id < minNode[s] {
			minNode[s] = id
		}
	}
	ready := []int{}
	for s := 0; s < n; s++ {
		if indeg[s] == 0 {
			ready = append(ready, s)
		}
	}
	order := make([]int, 0, n)
	newID := make([]int, n)
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			if minNode[ready[i]] < minNode[ready[best]] {
				best = i
			}
		}
		s := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		newID[s] = len(order)
		order = append(order, s)
		for t := range adj[s] {
			indeg[t]--
			if indeg[t] == 0 {
				ready = append(ready, t)
			}
		}
	}
	if len(order) != n {
		return fmt.Errorf("partition: quotient graph is cyclic (unschedulable)")
	}
	for id, s := range dense {
		if s == Unassigned {
			p.assign[id] = Unassigned
		} else {
			p.assign[id] = newID[s]
		}
	}
	p.count = n
	return nil
}

// --- mutation primitives (used by the GA, SA, and repair) -----------------

// TryModifyNode reassigns node u to subgraph target (an existing id or
// p.NumSubgraphs() for a fresh subgraph) and returns the repaired, validated
// result, or an error if the move is unschedulable. The receiver is not
// modified.
func (p *Partition) TryModifyNode(u, target int) (*Partition, error) {
	if p.assign[u] == Unassigned {
		return nil, fmt.Errorf("partition: cannot move input node %d", u)
	}
	if target < 0 || target > p.count {
		return nil, fmt.Errorf("partition: target subgraph %d out of range", target)
	}
	src := p.assign[u]
	q := p.Clone()
	q.assign[u] = target
	if target == p.count {
		q.count++
	}
	q, err := q.repair()
	if err != nil {
		return nil, err
	}
	q.carryFrom(p, src, target)
	return q, nil
}

// TrySplit splits subgraph s into the given parts (a disjoint cover of its
// members) and returns the repaired result. The receiver is not modified.
func (p *Partition) TrySplit(s int, parts [][]int) (*Partition, error) {
	members := p.Members(s)
	seen := map[int]bool{}
	total := 0
	for _, part := range parts {
		for _, id := range part {
			if p.assign[id] != s {
				return nil, fmt.Errorf("partition: node %d not in subgraph %d", id, s)
			}
			if seen[id] {
				return nil, fmt.Errorf("partition: node %d in multiple parts", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != len(members) {
		return nil, fmt.Errorf("partition: parts cover %d of %d members", total, len(members))
	}
	q := p.Clone()
	for i, part := range parts {
		label := s
		if i > 0 {
			label = q.count
			q.count++
		}
		for _, id := range part {
			q.assign[id] = label
		}
	}
	q, err := q.repair()
	if err != nil {
		return nil, err
	}
	q.carryFrom(p, s)
	return q, nil
}

// TryMerge merges subgraphs a and b and returns the repaired result, or an
// error if the merge is unschedulable (e.g. a path a→c→b through a third
// subgraph) — the paper's merge-subgraph mutation with validity guarantee.
// The receiver is not modified.
func (p *Partition) TryMerge(a, b int) (*Partition, error) {
	if a == b {
		return nil, fmt.Errorf("partition: merging subgraph %d with itself", a)
	}
	if a >= p.count || b >= p.count || a < 0 || b < 0 {
		return nil, fmt.Errorf("partition: merge ids out of range")
	}
	q := p.Clone()
	for id, s := range q.assign {
		if s == b {
			q.assign[id] = a
		}
	}
	q, err := q.repair()
	if err != nil {
		return nil, err
	}
	q.carryFrom(p, a, b)
	return q, nil
}

// repair makes the partition valid if possible: split disconnected
// subgraphs into weakly connected components, then renumber via the quotient
// topological order. Returns an error only if the quotient graph is cyclic.
func (p *Partition) repair() (*Partition, error) {
	next := 0
	for _, a := range p.assign {
		if a >= next {
			next = a + 1
		}
	}
	for s := 0; s < next; s++ {
		members := p.Members(s)
		if len(members) <= 1 {
			continue
		}
		set := make(map[int]bool, len(members))
		for _, id := range members {
			set[id] = true
		}
		comps := p.g.ConnectedComponents(set)
		for i := 1; i < len(comps); i++ {
			for _, id := range comps[i] {
				p.assign[id] = next
			}
			next++
		}
	}
	p.count = next
	if err := p.normalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// CrossEdges returns the tensors crossing subgraph boundaries: for each
// producer node whose output is consumed by a later subgraph (or is a model
// output), the set of consuming subgraphs. Used by cost models to decide
// which activations hit DRAM.
func (p *Partition) CrossEdges() map[int][]int {
	out := map[int][]int{}
	for _, u := range p.g.ComputeIDs() {
		su := p.assign[u]
		seen := map[int]bool{}
		for _, v := range p.g.Succ(u) {
			sv := p.assign[v]
			if sv != su && sv != Unassigned && !seen[sv] {
				seen[sv] = true
				out[u] = append(out[u], sv)
			}
		}
		if len(out[u]) > 1 {
			sort.Ints(out[u])
		}
	}
	return out
}
