// Package partition implements the paper's graph-level partition formalism
// (§4.1.1): a mapping P : V → ℕ assigning every compute layer to a subgraph,
// subject to two validity conditions — precedence (for every edge (u,v),
// P(u) ≤ P(v), so any layer is computed before use) and connectivity (every
// subgraph is weakly connected in G, "otherwise meaningless").
//
// Subgraph ids double as the schedule: subgraphs execute in ascending id
// order (§5.1.2 schedules subgraphs in topological order).
package partition

import (
	"fmt"
	"math"
	"sort"

	"cocco/internal/graph"
)

// Unassigned marks nodes that do not belong to any subgraph (OpInput nodes).
const Unassigned = -1

// Partition assigns each compute node of a graph to a subgraph.
// The zero value is unusable; construct with Singletons, Whole, or From.
type Partition struct {
	g      *graph.Graph
	assign []int // node id → subgraph id, Unassigned for inputs
	count  int   // number of subgraphs

	// keys and costs are per-subgraph evaluation caches: keys[s] is the
	// interned MemberKey of subgraph s ("" until built), costs[s] an opaque
	// cost handle owned by the evaluation layer (nil = dirty). Both are
	// carried across TryModifyNode/TrySplit/TryMerge for subgraphs whose
	// member set is unchanged, so the evaluator re-derives costs only for
	// the subgraphs an operator actually touched. nil slices mean no cache.
	//
	// The caches make a Partition single-writer: fills must come from the
	// goroutine that owns the partition (readers of a committed, shared
	// partition must not trigger fills concurrently with other writers).
	keys  []string
	costs []any

	// hash caches AssignHash (0 = not yet computed). The operator pipeline
	// fills it for free during normalize's final relabel pass; Clone copies
	// it, so un-mutated offspring — exactly the duplicates a memo catches —
	// hash in O(1).
	hash uint64
}

// hashPrime/hashOffset are the FNV-1a constants AssignHash folds labels with.
const (
	hashPrime  = 1099511628211
	hashOffset = 14695981039346656037
)

// AssignHash returns a 64-bit content hash of the assignment vector (labels
// folded FNV-1a style, Unassigned as 0xFFFFFFFF), for memo tables that
// verify matches exactly and only need a cheap discriminator. Computed
// lazily and cached; partitions produced by the operator pipeline carry it
// precomputed. Single-writer like the other caches.
func (p *Partition) AssignHash() uint64 {
	if p.hash == 0 {
		h := uint64(hashOffset)
		for _, a := range p.assign {
			h = (h ^ uint64(uint32(a))) * hashPrime
		}
		p.hash = h
	}
	return p.hash
}

// MemberKey packs a sorted member-id slice into the canonical subgraph cache
// key, 4 bytes per id. Ids outside [0, 2^32) would alias another subgraph's
// key, so they panic instead of silently corrupting cost caches. Callers must
// pass ids in ascending order for the key to be canonical.
func MemberKey(members []int) string {
	return string(AppendMemberKey(make([]byte, 0, len(members)*4), members))
}

// AppendMemberKey appends the canonical key bytes of members to dst and
// returns it — MemberKey without the string conversion, for callers that
// build keys into a reusable scratch buffer (the evaluator's per-lookup
// path). Same ordering contract and 32-bit guard as MemberKey.
func AppendMemberKey(dst []byte, members []int) []byte {
	for _, id := range members {
		if id < 0 || uint64(id) > math.MaxUint32 {
			panic(fmt.Sprintf("partition: node id %d outside the 32-bit cache-key range", id))
		}
		dst = append(dst, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return dst
}

// AppendKeyMembers decodes a canonical MemberKey back into its sorted member
// ids, appending to dst (pass dst[:0] to reuse a scratch buffer — the decode
// is the evaluator's cold-miss path and must not allocate per subgraph when
// the caller provides capacity). The key is the member list, so decoding
// never needs the assignment vector. Inverse of MemberKey.
func AppendKeyMembers(dst []int, key string) []int {
	n := len(key) / 4
	for i := 0; i < n; i++ {
		dst = append(dst, int(uint32(key[4*i])<<24|uint32(key[4*i+1])<<16|
			uint32(key[4*i+2])<<8|uint32(key[4*i+3])))
	}
	return dst
}

// SubgraphKey returns the interned MemberKey of subgraph s. Missing keys are
// built for every key-less subgraph at once in a single assignment-vector
// pass (a fresh partition needs all of them, a mutated one the touched few),
// so key building is O(V) total rather than O(V) per subgraph. Repeated
// calls are allocation-free.
func (p *Partition) SubgraphKey(s int) string {
	if p.keys == nil {
		p.keys = make([]string, p.count)
	}
	if p.keys[s] == "" {
		members := make([][]int, p.count)
		for id, a := range p.assign {
			if a >= 0 && p.keys[a] == "" {
				members[a] = append(members[a], id)
			}
		}
		for t, m := range members {
			if m != nil {
				p.keys[t] = MemberKey(m)
			}
		}
	}
	return p.keys[s]
}

// CostHandle returns the opaque evaluation handle of subgraph s, or nil if
// the subgraph is dirty (membership changed since the handle was set, or it
// was never evaluated).
func (p *Partition) CostHandle(s int) any {
	if p.costs == nil {
		return nil
	}
	return p.costs[s]
}

// SetCostHandle attaches an evaluation handle to subgraph s. Ops carry the
// handle to derived partitions whenever the member set is preserved, so its
// value must be a pure function of the member set plus whatever context the
// setting layer encodes inside the handle itself (the evaluator tags handles
// with their owning evaluator for exactly this reason).
func (p *Partition) SetCostHandle(s int, h any) {
	if p.costs == nil {
		p.costs = make([]any, p.count)
	}
	p.costs[s] = h
}

// Singletons returns the partition with every compute node in its own
// subgraph, numbered in topological order (the greedy baseline's starting
// point).
func Singletons(g *graph.Graph) *Partition {
	p := &Partition{g: g, assign: make([]int, g.Len())}
	for i := range p.assign {
		p.assign[i] = Unassigned
	}
	for _, id := range g.ComputeIDs() {
		p.assign[id] = p.count
		p.count++
	}
	return p
}

// Whole returns the partition with all compute nodes in one subgraph.
// It is valid only if the compute nodes are weakly connected.
func Whole(g *graph.Graph) *Partition {
	p := &Partition{g: g, assign: make([]int, g.Len()), count: 1}
	for i := range p.assign {
		p.assign[i] = Unassigned
	}
	for _, id := range g.ComputeIDs() {
		p.assign[id] = 0
	}
	return p
}

// From builds a partition from an explicit assignment (node id → subgraph
// id; input nodes must be Unassigned). The assignment is normalized (ids
// renumbered into schedule order) and validated.
func From(g *graph.Graph, assign []int) (*Partition, error) {
	if len(assign) != g.Len() {
		return nil, fmt.Errorf("partition: assignment length %d != %d nodes", len(assign), g.Len())
	}
	p := &Partition{g: g, assign: append([]int(nil), assign...)}
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput {
			if p.assign[n.ID] != Unassigned {
				return nil, fmt.Errorf("partition: input node %d assigned to subgraph %d", n.ID, p.assign[n.ID])
			}
		} else if p.assign[n.ID] < 0 {
			return nil, fmt.Errorf("partition: compute node %d unassigned", n.ID)
		}
	}
	p.densifyLabels()
	o := getOps()
	defer putOps(o)
	if err := o.normalize(p); err != nil {
		return nil, err
	}
	if err := o.validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// densifyLabels sets p.count from the raw assignment, remapping the labels
// into [0, #labels) first when the raw label space is out of proportion to
// the graph: the dense operator pipeline sizes its scratch by max label + 1,
// which is fine for every internal producer (labels stay below the node
// count) but must not let an arbitrary From/FromRepaired input — e.g. a
// hand-edited partition JSON with one label of 2^33 — demand gigabytes. The
// remap preserves first-appearance order; the final labels come from the
// quotient schedule order regardless.
func (p *Partition) densifyLabels() {
	maxL := -1
	for _, a := range p.assign {
		if a > maxL {
			maxL = a
		}
	}
	if maxL < 2*len(p.assign)+2 {
		p.count = maxL + 1
		return
	}
	remap := make(map[int]int)
	for id, a := range p.assign {
		if a < 0 {
			continue
		}
		d, ok := remap[a]
		if !ok {
			d = len(remap)
			remap[a] = d
		}
		p.assign[id] = d
	}
	p.count = len(remap)
}

// FromRepaired builds a partition from an explicit assignment like From, but
// repairs disconnected subgraphs by splitting them into weakly connected
// components instead of rejecting them. It still fails if the quotient graph
// is cyclic (unschedulable).
func FromRepaired(g *graph.Graph, assign []int) (*Partition, error) {
	if len(assign) != g.Len() {
		return nil, fmt.Errorf("partition: assignment length %d != %d nodes", len(assign), g.Len())
	}
	p := &Partition{g: g, assign: append([]int(nil), assign...)}
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput {
			p.assign[n.ID] = Unassigned
		} else if p.assign[n.ID] < 0 {
			return nil, fmt.Errorf("partition: compute node %d unassigned", n.ID)
		}
	}
	p.densifyLabels()
	o := getOps()
	defer putOps(o)
	if err := o.repair(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Graph returns the underlying graph.
func (p *Partition) Graph() *graph.Graph { return p.g }

// NumSubgraphs returns the number of subgraphs.
func (p *Partition) NumSubgraphs() int { return p.count }

// Of returns the subgraph id of node id (Unassigned for inputs).
func (p *Partition) Of(id int) int { return p.assign[id] }

// Assignment returns a copy of the raw assignment slice.
func (p *Partition) Assignment() []int { return append([]int(nil), p.assign...) }

// Clone returns a deep copy. The key/cost caches are copied into fresh
// backing arrays (the interned keys and handles themselves are shared; they
// are immutable), so the clone's owner can fill its caches independently.
func (p *Partition) Clone() *Partition {
	q := &Partition{g: p.g, assign: append([]int(nil), p.assign...), count: p.count, hash: p.hash}
	if p.keys != nil {
		q.keys = append([]string(nil), p.keys...)
	}
	if p.costs != nil {
		q.costs = append([]any(nil), p.costs...)
	}
	return q
}

// Members returns the node ids of subgraph s in ascending order.
func (p *Partition) Members(s int) []int {
	return p.AppendMembers(nil, s)
}

// AppendMembers appends the node ids of subgraph s to dst in ascending order
// and returns it — Members without the per-call allocation, for callers that
// scan subgraphs in a loop (operator helpers, the greedy baseline). Pass
// dst[:0] to reuse a scratch buffer.
func (p *Partition) AppendMembers(dst []int, s int) []int {
	for id, a := range p.assign {
		if a == s {
			dst = append(dst, id)
		}
	}
	return dst
}

// Subgraphs returns all subgraphs' members, indexed by subgraph id.
func (p *Partition) Subgraphs() [][]int {
	out := make([][]int, p.count)
	for id, a := range p.assign {
		if a >= 0 {
			out[a] = append(out[a], id)
		}
	}
	return out
}

// Key returns a canonical string identity of the partition, usable as a map
// key for memoization and dedup.
func (p *Partition) Key() string {
	return string(p.AppendKey(make([]byte, 0, len(p.assign)*4)))
}

// AppendKey appends the canonical identity bytes of the partition to dst and
// returns it — Key without the string conversion, for callers building memo
// keys into a reusable scratch buffer. Each label is packed into 4 bytes
// (Unassigned as 0xFFFFFFFF); labels outside [0, 2^32-1) would alias another
// partition's key, so they panic like AppendMemberKey instead of silently
// colliding (the historical 2-byte packing aliased partitions with ≥ 2^16
// subgraphs, and Unassigned with label 0xFFFF).
func (p *Partition) AppendKey(dst []byte) []byte {
	for _, a := range p.assign {
		if a != Unassigned && (a < 0 || uint64(a) >= math.MaxUint32) {
			panic(fmt.Sprintf("partition: subgraph label %d outside the 32-bit key range", a))
		}
		dst = append(dst, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return dst
}

// Validate checks both validity conditions: precedence on every edge between
// compute nodes and weak connectivity of every subgraph.
func (p *Partition) Validate() error {
	o := getOps()
	defer putOps(o)
	return o.validate(p)
}

// --- mutation primitives (used by the GA, SA, and repair) -----------------

// TryModifyNode reassigns node u to subgraph target (an existing id or
// p.NumSubgraphs() for a fresh subgraph) and returns the repaired, validated
// result, or an error if the move is unschedulable. The receiver is not
// modified. Wraps Ops.ModifyNodeInto on a pooled workspace.
func (p *Partition) TryModifyNode(u, target int) (*Partition, error) {
	o := getOps()
	q, err := o.ModifyNodeInto(nil, p, u, target)
	putOps(o)
	return q, err
}

// TrySplit splits subgraph s into the given parts (a disjoint cover of its
// members) and returns the repaired result. The receiver is not modified.
// Wraps Ops.SplitInto on a pooled workspace.
func (p *Partition) TrySplit(s int, parts [][]int) (*Partition, error) {
	o := getOps()
	q, err := o.SplitInto(nil, p, s, parts)
	putOps(o)
	return q, err
}

// TryMerge merges subgraphs a and b and returns the repaired result, or an
// error if the merge is unschedulable (e.g. a path a→c→b through a third
// subgraph) — the paper's merge-subgraph mutation with validity guarantee.
// The receiver is not modified. Wraps Ops.MergeInto on a pooled workspace.
func (p *Partition) TryMerge(a, b int) (*Partition, error) {
	o := getOps()
	q, err := o.MergeInto(nil, p, a, b)
	putOps(o)
	return q, err
}

// CrossEdges returns the tensors crossing subgraph boundaries: for each
// producer node whose output is consumed by a later subgraph (or is a model
// output), the set of consuming subgraphs. Used by cost models to decide
// which activations hit DRAM.
func (p *Partition) CrossEdges() map[int][]int {
	o := getOps()
	defer putOps(o)
	o.labels.Grow(p.count)
	out := map[int][]int{}
	for _, u := range p.g.ComputeIDs() {
		su := p.assign[u]
		o.labels.Reset()
		for _, v := range p.g.SuccIDs(u) {
			sv := p.assign[int(v)]
			if sv != su && sv != Unassigned && !o.labels.Has(sv) {
				o.labels.Set(sv)
				out[u] = append(out[u], sv)
			}
		}
		if len(out[u]) > 1 {
			sort.Ints(out[u])
		}
	}
	return out
}
