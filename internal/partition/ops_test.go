package partition

import (
	"strings"
	"testing"

	"cocco/internal/graph"
)

// bigChain builds a conv chain with n compute nodes (for the Key widening
// test, which needs ≥ 2^16 subgraphs).
func bigChain(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("bigchain")
	prev := b.Input("in", 1, 4, 4)
	for i := 0; i < n; i++ {
		prev = b.Conv("c"+itoa(i), prev, 1, 1, 1)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestKeyWideLabels pins the 4-byte Key packing: the retired 2-byte packing
// silently aliased label 2^16+k with label k (and Unassigned with label
// 0xFFFF) on partitions with ≥ 2^16 subgraphs, corrupting memo lookups.
func TestKeyWideLabels(t *testing.T) {
	const n = 1<<16 + 2
	g := bigChain(t, n)
	p := Singletons(g) // labels 0 .. 2^16+1
	key := p.Key()
	if len(key) != 4*g.Len() {
		t.Fatalf("key length %d, want 4 bytes per node (%d)", len(key), 4*g.Len())
	}
	// Node with label 2^16 must not encode like the node with label 0.
	codeOf := func(nodeID int) string {
		off := 4 * nodeID
		return key[off : off+4]
	}
	var node0, node64k int
	for _, id := range g.ComputeIDs() {
		switch p.Of(id) {
		case 0:
			node0 = id
		case 1 << 16:
			node64k = id
		}
	}
	if codeOf(node0) == codeOf(node64k) {
		t.Fatalf("labels 0 and 2^16 alias in the key: % x", codeOf(node0))
	}
	if got, want := codeOf(node64k), "\x00\x01\x00\x00"; got != want {
		t.Fatalf("label 2^16 encodes as % x, want % x", got, want)
	}
	// Unassigned (the input node, id 0) must not collide with label 0xFFFF.
	if codeOf(0) != "\xff\xff\xff\xff" {
		t.Fatalf("Unassigned encodes as % x", codeOf(0))
	}
	var nodeFFFF int
	for _, id := range g.ComputeIDs() {
		if p.Of(id) == 0xFFFF {
			nodeFFFF = id
		}
	}
	if codeOf(nodeFFFF) == codeOf(0) {
		t.Fatal("label 0xFFFF aliases Unassigned in the key")
	}
	// Distinct partitions of the big graph keep distinct keys.
	q, err := p.TryMerge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Key() == key {
		t.Fatal("distinct partitions share a key")
	}
}

// opsChain builds a small conv chain for the allocation pins.
func opsChain(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("opschain")
	prev := b.Input("in", 3, 16, 16)
	for i := 0; i < n; i++ {
		prev = b.Conv("c"+itoa(i), prev, 8, 3, 1)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// cachedPartition returns a singleton partition with its per-subgraph key and
// cost caches filled, so the pins cover the carry path too.
func cachedPartition(g *graph.Graph) *Partition {
	p := Singletons(g)
	for s := 0; s < p.count; s++ {
		p.SetCostHandle(s, p.SubgraphKey(s))
	}
	return p
}

// TestOpsIntoAllocFree pins the in-place operator contract: once the
// workspace and destination are warm, ModifyNodeInto / SplitInto / MergeInto
// perform zero allocations even when carrying key/cost caches.
func TestOpsIntoAllocFree(t *testing.T) {
	g := opsChain(t, 16)
	p := cachedPartition(g)
	o := NewOps()
	ids := g.ComputeIDs()

	var dst *Partition
	warm := func(run func() *Partition) *Partition {
		q := run()
		if q == nil {
			t.Fatal("warmup op failed")
		}
		return q
	}

	dst = warm(func() *Partition {
		q, _ := o.ModifyNodeInto(dst, p, ids[1], p.Of(ids[0]))
		return q
	})
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := o.ModifyNodeInto(dst, p, ids[1], p.Of(ids[0])); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("warm ModifyNodeInto allocates %.1f per op, want 0", allocs)
	}

	merged := warm(func() *Partition {
		q, _ := o.MergeInto(nil, p, 0, 1)
		return q
	})
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := o.MergeInto(merged, p, 0, 1); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("warm MergeInto allocates %.1f per op, want 0", allocs)
	}

	// Split the merged pair back apart.
	base := warm(func() *Partition {
		q, _ := o.MergeInto(nil, p, 0, 1)
		return q
	})
	parts := [][]int{{ids[0]}, {ids[1]}}
	split := warm(func() *Partition {
		q, _ := o.SplitInto(nil, base, 0, parts)
		return q
	})
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := o.SplitInto(split, base, 0, parts); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("warm SplitInto allocates %.1f per op, want 0", allocs)
	}
}

// TestTryWrappersAllocLean pins the pooled-wrapper budget: a warm Try* call
// on a cache-less partition allocates only the escaping destination (the
// Partition struct and its assignment vector — ≤ 2 allocations), and ≤ 4
// when the parent carries key/cost caches.
func TestTryWrappersAllocLean(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector disables sync.Pool reuse; alloc pins do not hold")
	}
	g := opsChain(t, 16)
	plain := Singletons(g)
	cached := cachedPartition(g)
	ids := g.ComputeIDs()

	// Warm the package pool (and its spare destination).
	if _, err := plain.TryModifyNode(ids[1], plain.Of(ids[0])); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		p      *Partition
		budget float64
	}{
		{"plain", plain, 2},
		{"cached", cached, 4},
	}
	for _, tc := range cases {
		ops := []struct {
			name string
			run  func() error
		}{
			{"TryModifyNode", func() error { _, err := tc.p.TryModifyNode(ids[1], tc.p.Of(ids[0])); return err }},
			{"TryMerge", func() error { _, err := tc.p.TryMerge(0, 1); return err }},
		}
		for _, op := range ops {
			if err := op.run(); err != nil {
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(200, func() {
				if err := op.run(); err != nil {
					t.Fatal(err)
				}
			}); allocs > tc.budget {
				t.Errorf("%s/%s allocates %.1f per op, want <= %.0f", tc.name, op.name, allocs, tc.budget)
			}
		}
	}
}

// TestOpsRejectedMoveReusesDestination checks the failure contract: a
// rejected move reports an error without allocating a fresh destination on
// the next call (the workspace recycles it), and the receiver is untouched.
func TestOpsRejectedMoveReusesDestination(t *testing.T) {
	// in -> c1 -> {l, r} -> add with subgraphs {c1,l}, {r}, {add}: merging
	// {c1,l} with {add} yields a connected subgraph that wraps around {r}
	// (r both depends on and feeds it), so the move is cyclic and rejected.
	b := graph.NewBuilder("reject")
	in := b.Input("in", 3, 8, 8)
	c1 := b.Conv("c1", in, 4, 1, 1)
	l := b.Conv("l", c1, 4, 1, 1)
	r := b.Conv("r", c1, 4, 1, 1)
	add := b.Eltwise("add", l, r)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.Len())
	assign[in] = Unassigned
	assign[c1], assign[l] = 0, 0
	assign[r] = 1
	assign[add] = 2
	p, err := From(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOps()
	a, c := p.Of(c1), p.Of(add)
	before := p.Key()
	if _, err := o.MergeInto(nil, p, a, c); err == nil {
		t.Fatal("cyclic merge accepted")
	}
	if p.Key() != before {
		t.Fatal("rejected merge mutated the receiver")
	}
	// The failed destination is recycled: repeated rejections settle at zero
	// allocations.
	if _, err := o.MergeInto(nil, p, a, c); err == nil {
		t.Fatal("cyclic merge accepted")
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := o.MergeInto(nil, p, a, c); err == nil {
			t.Fatal("cyclic merge accepted")
		}
	}); allocs > 0 {
		t.Errorf("rejected MergeInto allocates %.1f per op, want 0", allocs)
	}
	// And the workspace still produces correct successes afterwards.
	q, err := o.MergeInto(nil, p, p.Of(r), p.Of(add))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("post-rejection merge invalid: %v", err)
	}

	// A CALLER-supplied destination whose operation failed must NOT be
	// recycled into the workspace: the caller still holds it, and handing it
	// out from a later *Into(nil, ...) would alias a live partition.
	callerDst := p.Clone()
	if _, err := o.MergeInto(callerDst, p, a, c); err == nil {
		t.Fatal("cyclic merge accepted")
	}
	q2, err := o.MergeInto(nil, p, p.Of(r), p.Of(add))
	if err != nil {
		t.Fatal(err)
	}
	if q2 == callerDst {
		t.Fatal("workspace recycled a caller-supplied destination; result aliases the caller's partition")
	}
}

// TestFromSparseHugeLabels pins the label-densify guard: From/FromRepaired
// accept arbitrary label values (their documented contract — e.g. a
// hand-edited partition JSON), so the dense pipeline must not size scratch
// by the raw maximum label. A 2^30 label used to demand gigabytes of
// label-indexed buffers; now it densifies first and normalizes instantly.
func TestFromSparseHugeLabels(t *testing.T) {
	g := opsChain(t, 6)
	ids := g.ComputeIDs()
	assign := make([]int, g.Len())
	assign[0] = Unassigned
	for i, id := range ids {
		assign[id] = 1 << 30 // one giant shared label...
		if i >= 3 {
			assign[id] = 7 // ...and a second sparse one
		}
	}
	p, err := From(g, assign)
	if err != nil {
		t.Fatalf("From with sparse huge labels: %v", err)
	}
	if p.NumSubgraphs() != 2 {
		t.Fatalf("NumSubgraphs = %d, want 2", p.NumSubgraphs())
	}
	if p.Of(ids[0]) != 0 || p.Of(ids[5]) != 1 {
		t.Fatalf("schedule labels wrong: %d, %d", p.Of(ids[0]), p.Of(ids[5]))
	}
	q, err := FromRepaired(g, assign)
	if err != nil {
		t.Fatalf("FromRepaired with sparse huge labels: %v", err)
	}
	if q.NumSubgraphs() != 2 {
		t.Fatalf("FromRepaired NumSubgraphs = %d, want 2", q.NumSubgraphs())
	}
}

// TestOpsErrorMessages keeps the operator error text aligned with the
// historical API (callers and logs match on these strings).
func TestOpsErrorMessages(t *testing.T) {
	g := opsChain(t, 4)
	p := Singletons(g)
	if _, err := p.TryModifyNode(0, 0); err == nil || !strings.Contains(err.Error(), "input node") {
		t.Errorf("input-node move: %v", err)
	}
	if _, err := p.TryModifyNode(g.ComputeIDs()[0], 99); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("target range: %v", err)
	}
	if _, err := p.TrySplit(0, [][]int{{g.ComputeIDs()[1]}}); err == nil || !strings.Contains(err.Error(), "not in subgraph") {
		t.Errorf("foreign part: %v", err)
	}
	if _, err := p.TryMerge(1, 1); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Errorf("self merge: %v", err)
	}
}
