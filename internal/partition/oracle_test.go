package partition

// The reference oracle for the dense mutation workspace: a verbatim copy of
// the retired map-based repair/normalize/carryFrom pipeline and the
// Clone-then-repair Try* operators built on it. The equivalence tests drive
// randomized operator sequences through both implementations and require
// bit-identical outcomes — assignment vector, subgraph count, carried keys
// and cost handles, and error/no-error agreement — so any behavioral drift in
// the Ops rewrite shows up as a readable diff against known-good code rather
// than as a silent search-trajectory change.

import (
	"math/rand"
	"testing"

	"cocco/internal/graph"
	"cocco/internal/testutil"
)

// oracleCarryFrom is the retired carryFrom.
func oracleCarryFrom(q, p *Partition, touched ...int) {
	if p.keys == nil && p.costs == nil {
		return
	}
	q.keys = make([]string, q.count)
	q.costs = make([]any, q.count)
	for id, a := range p.assign {
		if a < 0 {
			continue
		}
		skip := false
		for _, t := range touched {
			if a == t {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		n := q.assign[id]
		if p.keys != nil {
			q.keys[n] = p.keys[a]
		}
		if p.costs != nil {
			q.costs[n] = p.costs[a]
		}
	}
}

// oracleNormalize is the retired map-based normalize.
func oracleNormalize(p *Partition) error {
	oldIDs := map[int]int{}
	for _, a := range p.assign {
		if a >= 0 {
			if _, ok := oldIDs[a]; !ok {
				oldIDs[a] = len(oldIDs)
			}
		}
	}
	n := len(oldIDs)
	dense := make([]int, len(p.assign))
	for id, a := range p.assign {
		if a < 0 {
			dense[id] = Unassigned
		} else {
			dense[id] = oldIDs[a]
		}
	}
	adj := make([]map[int]bool, n)
	indeg := make([]int, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	for _, u := range p.g.ComputeIDs() {
		su := dense[u]
		for _, v := range p.g.Succ(u) {
			sv := dense[v]
			if sv == Unassigned || sv == su {
				continue
			}
			if !adj[su][sv] {
				adj[su][sv] = true
				indeg[sv]++
			}
		}
	}
	minNode := make([]int, n)
	for i := range minNode {
		minNode[i] = int(^uint(0) >> 1)
	}
	for id, s := range dense {
		if s >= 0 && id < minNode[s] {
			minNode[s] = id
		}
	}
	ready := []int{}
	for s := 0; s < n; s++ {
		if indeg[s] == 0 {
			ready = append(ready, s)
		}
	}
	order := make([]int, 0, n)
	newID := make([]int, n)
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			if minNode[ready[i]] < minNode[ready[best]] {
				best = i
			}
		}
		s := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		newID[s] = len(order)
		order = append(order, s)
		for t := range adj[s] {
			indeg[t]--
			if indeg[t] == 0 {
				ready = append(ready, t)
			}
		}
	}
	if len(order) != n {
		return errOracleCyclic
	}
	for id, s := range dense {
		if s == Unassigned {
			p.assign[id] = Unassigned
		} else {
			p.assign[id] = newID[s]
		}
	}
	p.count = n
	return nil
}

type oracleErr string

func (e oracleErr) Error() string { return string(e) }

const errOracleCyclic = oracleErr("partition: quotient graph is cyclic (unschedulable)")

// oracleRepair is the retired Members-scan repair.
func oracleRepair(p *Partition) (*Partition, error) {
	next := 0
	for _, a := range p.assign {
		if a >= next {
			next = a + 1
		}
	}
	for s := 0; s < next; s++ {
		members := p.Members(s)
		if len(members) <= 1 {
			continue
		}
		set := make(map[int]bool, len(members))
		for _, id := range members {
			set[id] = true
		}
		comps := p.g.ConnectedComponents(set)
		for i := 1; i < len(comps); i++ {
			for _, id := range comps[i] {
				p.assign[id] = next
			}
			next++
		}
	}
	p.count = next
	if err := oracleNormalize(p); err != nil {
		return nil, err
	}
	return p, nil
}

// oracleTryModifyNode / oracleTrySplit / oracleTryMerge are the retired
// Clone-then-repair operators.
func oracleTryModifyNode(p *Partition, u, target int) (*Partition, error) {
	if p.assign[u] == Unassigned {
		return nil, oracleErr("cannot move input")
	}
	if target < 0 || target > p.count {
		return nil, oracleErr("target out of range")
	}
	src := p.assign[u]
	q := p.Clone()
	q.assign[u] = target
	if target == p.count {
		q.count++
	}
	q, err := oracleRepair(q)
	if err != nil {
		return nil, err
	}
	oracleCarryFrom(q, p, src, target)
	return q, nil
}

func oracleTrySplit(p *Partition, s int, parts [][]int) (*Partition, error) {
	members := p.Members(s)
	seen := map[int]bool{}
	total := 0
	for _, part := range parts {
		for _, id := range part {
			if p.assign[id] != s {
				return nil, oracleErr("node not in subgraph")
			}
			if seen[id] {
				return nil, oracleErr("node in multiple parts")
			}
			seen[id] = true
			total++
		}
	}
	if total != len(members) {
		return nil, oracleErr("parts do not cover")
	}
	q := p.Clone()
	for i, part := range parts {
		label := s
		if i > 0 {
			label = q.count
			q.count++
		}
		for _, id := range part {
			q.assign[id] = label
		}
	}
	q, err := oracleRepair(q)
	if err != nil {
		return nil, err
	}
	oracleCarryFrom(q, p, s)
	return q, nil
}

func oracleTryMerge(p *Partition, a, b int) (*Partition, error) {
	if a == b {
		return nil, oracleErr("self merge")
	}
	if a >= p.count || b >= p.count || a < 0 || b < 0 {
		return nil, oracleErr("out of range")
	}
	q := p.Clone()
	for id, s := range q.assign {
		if s == b {
			q.assign[id] = a
		}
	}
	q, err := oracleRepair(q)
	if err != nil {
		return nil, err
	}
	oracleCarryFrom(q, p, a, b)
	return q, nil
}

// requireSamePartition fails unless got and want agree on every observable:
// assignment, count, interned keys, and cost handles.
func requireSamePartition(t *testing.T, step int, op string, got, want *Partition) {
	t.Helper()
	if got.count != want.count {
		t.Fatalf("step %d %s: count %d != oracle %d", step, op, got.count, want.count)
	}
	for id := range want.assign {
		if got.assign[id] != want.assign[id] {
			t.Fatalf("step %d %s: assign[%d] = %d != oracle %d",
				step, op, id, got.assign[id], want.assign[id])
		}
	}
	if (got.keys == nil) != (want.keys == nil) || (got.costs == nil) != (want.costs == nil) {
		t.Fatalf("step %d %s: cache presence differs (keys %v/%v costs %v/%v)",
			step, op, got.keys != nil, want.keys != nil, got.costs != nil, want.costs != nil)
	}
	for s := 0; s < want.count; s++ {
		if want.keys != nil && got.keys[s] != want.keys[s] {
			t.Fatalf("step %d %s: carried key of subgraph %d differs", step, op, s)
		}
		if want.costs != nil && got.costs[s] != want.costs[s] {
			t.Fatalf("step %d %s: carried cost handle of subgraph %d differs", step, op, s)
		}
	}
}

// tagOracleHandles fills every subgraph's key and stamps its cost handle with
// the canonical member key, standing in for the evaluator's *SubgraphCost.
func tagOracleHandles(p *Partition) {
	for s := 0; s < p.count; s++ {
		p.SetCostHandle(s, p.SubgraphKey(s))
	}
}

// TestOpsMatchOracle drives randomized operator sequences over random DAGs
// through the dense workspace and the retired map-based oracle in lockstep.
func TestOpsMatchOracle(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(seed, 12+int(seed%3)*13)
		p := Singletons(g)
		tagOracleHandles(p)
		nodes := g.ComputeNodes()
		for step := 0; step < 120; step++ {
			var got, want *Partition
			var gotErr, wantErr error
			var op string
			switch rng.Intn(3) {
			case 0:
				op = "modify"
				u := nodes[rng.Intn(len(nodes))]
				target := rng.Intn(p.count + 1)
				got, gotErr = p.TryModifyNode(u, target)
				want, wantErr = oracleTryModifyNode(p, u, target)
			case 1:
				op = "split"
				s := rng.Intn(p.count)
				members := p.Members(s)
				if len(members) < 2 {
					continue
				}
				var a, b []int
				for _, id := range members {
					if rng.Intn(2) == 0 {
						a = append(a, id)
					} else {
						b = append(b, id)
					}
				}
				if len(a) == 0 || len(b) == 0 {
					continue
				}
				got, gotErr = p.TrySplit(s, [][]int{a, b})
				want, wantErr = oracleTrySplit(p, s, [][]int{a, b})
			default:
				op = "merge"
				if p.count < 2 {
					continue
				}
				a, b := rng.Intn(p.count), rng.Intn(p.count)
				if a == b {
					continue
				}
				got, gotErr = p.TryMerge(a, b)
				want, wantErr = oracleTryMerge(p, a, b)
			}
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("seed %d step %d %s: error disagreement: ops %v, oracle %v",
					seed, step, op, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			requireSamePartition(t, step, op, got, want)
			p = got
			tagOracleHandles(p)
		}
	}
}

// TestFromMatchesOracleNormalize pins the From pipeline (normalize from raw
// labels) against the oracle on random assignments, including rejected ones.
func TestFromMatchesOracleNormalize(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		g := testutil.RandomGraph(seed, 20)
		// Random (often invalid) labelings over a small label alphabet, with
		// arbitrary gaps and order.
		assign := make([]int, g.Len())
		for trial := 0; trial < 40; trial++ {
			labels := 1 + rng.Intn(6)
			for _, n := range g.Nodes() {
				if n.Kind == graph.OpInput {
					assign[n.ID] = Unassigned
				} else {
					assign[n.ID] = rng.Intn(labels) * (1 + rng.Intn(3)) // gappy labels
				}
			}
			got, gotErr := From(g, assign)

			want := &Partition{g: g, assign: append([]int(nil), assign...)}
			wantErr := oracleNormalize(want)
			if wantErr == nil {
				wantErr = want.Validate()
			}
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("seed %d trial %d: error disagreement: From %v, oracle %v",
					seed, trial, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			requireSamePartition(t, trial, "from", got, want)
		}
	}
}
