// Package graph provides the computation-graph substrate used throughout the
// Cocco reproduction: a directed acyclic graph whose vertices are DNN layers
// and whose edges are tensor dependencies (the output of layer u is an input
// of layer v).
//
// The package is deliberately free of any cost or hardware knowledge; it only
// knows shapes, operator kinds, and structure. Everything else (tiling,
// memory, cost, search) is layered on top.
package graph

import (
	"fmt"
	"sort"
)

// OpKind identifies the operator class of a layer. Following the paper
// (§5.1.1), fully-connected layers are lowered to 1×1 convolutions and
// pooling / element-wise layers are analyzed as depth-wise convolutions
// without weights, so a small operator vocabulary suffices.
type OpKind int

const (
	// OpInput is an external input tensor (the paper's negative-numbered
	// nodes). It carries no computation and no weights.
	OpInput OpKind = iota
	// OpConv is a standard 2D convolution with weights.
	OpConv
	// OpDWConv is a depth-wise convolution (per-channel), with weights.
	OpDWConv
	// OpPool is a pooling layer, modeled as a weight-less depth-wise conv.
	OpPool
	// OpEltwise is an element-wise layer (add, mul, concat-free residual
	// join), modeled as a weight-less 1×1/1 depth-wise op over its inputs.
	OpEltwise
	// OpConcat is a channel-dimension concatenation (GoogleNet, NasNet,
	// RandWire joins). Weight-less; output channels are the sum of inputs.
	OpConcat
	// OpMatmul is a dense matrix multiply (Transformer/GPT projections and
	// attention), lowered to a 1×1 convolution over the sequence dimension.
	OpMatmul
)

var opKindNames = map[OpKind]string{
	OpInput:   "input",
	OpConv:    "conv",
	OpDWConv:  "dwconv",
	OpPool:    "pool",
	OpEltwise: "eltwise",
	OpConcat:  "concat",
	OpMatmul:  "matmul",
}

func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// HasWeights reports whether layers of this kind carry weight tensors.
func (k OpKind) HasWeights() bool {
	return k == OpConv || k == OpDWConv || k == OpMatmul
}

// Node is a single layer of the model. All spatial sizes refer to the layer's
// OUTPUT tensor; the kernel/stride pair describes how the layer consumes its
// input(s). Bit-width is 8 bits (1 byte) per element, matching the Simba-like
// platform in the paper.
type Node struct {
	// ID is the node's index in Graph.Nodes. Assigned by the Builder.
	ID int
	// Name is a human-readable layer name (unique within a graph).
	Name string
	// Kind is the operator class.
	Kind OpKind

	// KernelH/KernelW and StrideH/StrideW describe the consumption pattern
	// (F and s in the paper's notation). For 1×1 lowerings both kernels and
	// strides are 1.
	KernelH, KernelW int
	StrideH, StrideW int

	// InC is the number of input channels consumed from each predecessor;
	// OutC the number of output channels produced.
	InC, OutC int

	// OutH and OutW are the output feature-map height and width.
	OutH, OutW int
}

// InH returns the input height this node requires, derived from the output
// height via f(x) = F + (x-1)*s (the paper's f_v).
func (n *Node) InH() int { return n.KernelH + (n.OutH-1)*n.StrideH }

// InW returns the input width this node requires.
func (n *Node) InW() int { return n.KernelW + (n.OutW-1)*n.StrideW }

// OutBytes returns the size of the node's output tensor in bytes
// (8-bit elements).
func (n *Node) OutBytes() int64 {
	return int64(n.OutH) * int64(n.OutW) * int64(n.OutC)
}

// WeightBytes returns the size of the node's weight tensor in bytes.
// Weight-less kinds return 0. Depth-wise convolutions carry K×K×C weights;
// dense convolutions and matmuls carry K×K×InC×OutC.
func (n *Node) WeightBytes() int64 {
	switch n.Kind {
	case OpConv, OpMatmul:
		return int64(n.KernelH) * int64(n.KernelW) * int64(n.InC) * int64(n.OutC)
	case OpDWConv:
		return int64(n.KernelH) * int64(n.KernelW) * int64(n.OutC)
	default:
		return 0
	}
}

// MACs returns the number of multiply-accumulate operations this node
// performs for one inference.
func (n *Node) MACs() int64 {
	spatial := int64(n.OutH) * int64(n.OutW)
	kk := int64(n.KernelH) * int64(n.KernelW)
	switch n.Kind {
	case OpConv, OpMatmul:
		return spatial * kk * int64(n.InC) * int64(n.OutC)
	case OpDWConv, OpPool, OpEltwise:
		return spatial * kk * int64(n.OutC)
	default:
		return 0
	}
}

// Graph is an immutable directed acyclic computation graph. Build one with a
// Builder; after Finalize the structure never changes, so the adjacency,
// topological order, and per-node metadata can be shared freely across
// goroutines.
type Graph struct {
	// Name identifies the model (e.g. "resnet50").
	Name string

	nodes []*Node
	succ  [][]int // succ[u] = ids of consumers of u, ascending
	pred  [][]int // pred[v] = ids of producers of v, ascending
	topo  []int   // a fixed topological order of node ids
	rank  []int   // rank[id] = position of id in topo

	// CSR adjacency view: the per-node pred/succ lists flattened into two
	// contiguous []int32 arrays with offset tables, so hot paths (tiling
	// derivation, subgraph costing) walk cache-dense memory instead of
	// chasing per-node slice headers. Contents mirror succ/pred exactly.
	succCSR, predCSR []int32
	succOff, predOff []int32

	// computeIDs caches ComputeNodes' result, and denseIdx maps a node id to
	// its position in computeIDs (-1 for inputs) — the dense compute-node
	// indexing used by per-node cost tables.
	computeIDs []int
	denseIdx   []int32
}

// Len returns the number of nodes, including OpInput nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given id. It panics if id is out of range,
// consistent with slice indexing.
func (g *Graph) Node(id int) *Node { return g.nodes[id] }

// Nodes returns the underlying node slice. Callers must not mutate it.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Succ returns the consumer ids of node u in ascending order.
// Callers must not mutate the returned slice.
func (g *Graph) Succ(u int) []int { return g.succ[u] }

// Pred returns the producer ids of node v in ascending order.
// Callers must not mutate the returned slice.
func (g *Graph) Pred(v int) []int { return g.pred[v] }

// SuccIDs returns the consumer ids of node u as a view into the graph's
// contiguous CSR array, ascending. Identical contents to Succ; preferred on
// hot paths. Callers must not mutate the returned slice.
func (g *Graph) SuccIDs(u int) []int32 { return g.succCSR[g.succOff[u]:g.succOff[u+1]] }

// PredIDs returns the producer ids of node v as a view into the graph's
// contiguous CSR array, ascending. Identical contents to Pred; preferred on
// hot paths. Callers must not mutate the returned slice.
func (g *Graph) PredIDs(v int) []int32 { return g.predCSR[g.predOff[v]:g.predOff[v+1]] }

// ComputeIDs returns the cached ids of all non-input nodes in topological
// order — the same contents as ComputeNodes without the per-call allocation.
// Callers must not mutate the returned slice.
func (g *Graph) ComputeIDs() []int { return g.computeIDs }

// DenseIndex returns node id's position among the compute nodes (its index
// in ComputeIDs), or -1 for OpInput nodes. Per-node tables indexed densely
// over compute nodes use this to translate ids.
func (g *Graph) DenseIndex(id int) int { return int(g.denseIdx[id]) }

// Topo returns a fixed topological order of node ids. Callers must not
// mutate the returned slice.
func (g *Graph) Topo() []int { return g.topo }

// Rank returns the position of node id in the fixed topological order.
func (g *Graph) Rank(id int) int { return g.rank[id] }

// Edges returns the number of edges.
func (g *Graph) Edges() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// ComputeNodes returns the ids of all non-input nodes in topological order.
// These are the nodes a partition assigns to subgraphs. The returned slice is
// a fresh copy the caller may mutate; hot paths should use ComputeIDs.
func (g *Graph) ComputeNodes() []int {
	return append([]int(nil), g.computeIDs...)
}

// Outputs returns the ids of nodes with no consumers (model outputs).
func (g *Graph) Outputs() []int {
	var out []int
	for id, s := range g.succ {
		if len(s) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Inputs returns the ids of OpInput nodes.
func (g *Graph) Inputs() []int {
	var in []int
	for _, n := range g.nodes {
		if n.Kind == OpInput {
			in = append(in, n.ID)
		}
	}
	return in
}

// TotalWeightBytes sums WeightBytes over all nodes.
func (g *Graph) TotalWeightBytes() int64 {
	var t int64
	for _, n := range g.nodes {
		t += n.WeightBytes()
	}
	return t
}

// TotalMACs sums MACs over all nodes.
func (g *Graph) TotalMACs() int64 {
	var t int64
	for _, n := range g.nodes {
		t += n.MACs()
	}
	return t
}

// IsConnected reports whether the given node set is weakly connected in g.
// The empty set is not connected; a singleton is. This is the validity
// condition the paper imposes on every subgraph ("any subgraph should be
// connected in G, otherwise meaningless").
func (g *Graph) IsConnected(set map[int]bool) bool {
	if len(set) == 0 {
		return false
	}
	var start int
	for id := range set {
		start = id
		break
	}
	seen := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.succ[u] {
			if set[v] && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
		for _, v := range g.pred[u] {
			if set[v] && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return len(seen) == len(set)
}

// ConnectedComponents splits the given node set into weakly connected
// components within g. Components are returned with ids ascending inside each
// component, ordered by their smallest id.
func (g *Graph) ConnectedComponents(set map[int]bool) [][]int {
	remaining := make(map[int]bool, len(set))
	for id := range set {
		remaining[id] = true
	}
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var comps [][]int
	for _, start := range ids {
		if !remaining[start] {
			continue
		}
		comp := []int{}
		stack := []int{start}
		delete(remaining, start)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.succ[u] {
				if remaining[v] {
					delete(remaining, v)
					stack = append(stack, v)
				}
			}
			for _, v := range g.pred[u] {
				if remaining[v] {
					delete(remaining, v)
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Builder constructs a Graph incrementally. It is not safe for concurrent
// use. Typical usage:
//
//	b := graph.NewBuilder("toy")
//	in := b.Input("in", 3, 224, 224)
//	c1 := b.Conv("c1", in, 64, 7, 2)
//	b.MustFinalize()
type Builder struct {
	name  string
	nodes []*Node
	succ  [][]int
	pred  [][]int
	names map[string]bool
	err   error
}

// NewBuilder returns an empty Builder for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, names: map[string]bool{}}
}

func (b *Builder) fail(format string, args ...any) int {
	if b.err == nil {
		b.err = fmt.Errorf("graph %q: %s", b.name, fmt.Sprintf(format, args...))
	}
	return -1
}

// addNode appends a node and wires edges from the given producer ids.
func (b *Builder) addNode(n *Node, from ...int) int {
	if b.err != nil {
		return -1
	}
	if n.Name == "" {
		return b.fail("node with empty name")
	}
	if b.names[n.Name] {
		return b.fail("duplicate node name %q", n.Name)
	}
	if n.OutH <= 0 || n.OutW <= 0 || n.OutC <= 0 {
		return b.fail("node %q: non-positive output shape %dx%dx%d", n.Name, n.OutH, n.OutW, n.OutC)
	}
	if n.Kind != OpInput {
		if n.KernelH <= 0 || n.KernelW <= 0 || n.StrideH <= 0 || n.StrideW <= 0 {
			return b.fail("node %q: non-positive kernel/stride", n.Name)
		}
		if len(from) == 0 {
			return b.fail("node %q: compute node without producers", n.Name)
		}
	}
	n.ID = len(b.nodes)
	b.names[n.Name] = true
	b.nodes = append(b.nodes, n)
	b.succ = append(b.succ, nil)
	b.pred = append(b.pred, nil)
	for _, u := range from {
		if u < 0 || u >= n.ID {
			return b.fail("node %q: producer id %d out of range (must precede %d)", n.Name, u, n.ID)
		}
		b.succ[u] = append(b.succ[u], n.ID)
		b.pred[n.ID] = append(b.pred[n.ID], u)
	}
	return n.ID
}

// Input adds an external input tensor of shape c×h×w and returns its id.
func (b *Builder) Input(name string, c, h, w int) int {
	return b.addNode(&Node{Name: name, Kind: OpInput, OutC: c, OutH: h, OutW: w,
		KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1, InC: c})
}

// Conv adds a k×k/stride convolution producing outC channels. The output
// spatial size is derived from the producer assuming "same"-style padding:
// out = ceil(in/stride). Returns the new node id.
func (b *Builder) Conv(name string, from int, outC, k, stride int) int {
	if b.err != nil {
		return -1
	}
	p := b.producer(from, name)
	if p == nil {
		return -1
	}
	return b.addNode(&Node{Name: name, Kind: OpConv,
		KernelH: k, KernelW: k, StrideH: stride, StrideW: stride,
		InC: p.OutC, OutC: outC,
		OutH: ceilDiv(p.OutH, stride), OutW: ceilDiv(p.OutW, stride)}, from)
}

// DWConv adds a depth-wise k×k/stride convolution (channels preserved).
func (b *Builder) DWConv(name string, from int, k, stride int) int {
	if b.err != nil {
		return -1
	}
	p := b.producer(from, name)
	if p == nil {
		return -1
	}
	return b.addNode(&Node{Name: name, Kind: OpDWConv,
		KernelH: k, KernelW: k, StrideH: stride, StrideW: stride,
		InC: p.OutC, OutC: p.OutC,
		OutH: ceilDiv(p.OutH, stride), OutW: ceilDiv(p.OutW, stride)}, from)
}

// Pool adds a k×k/stride pooling layer (weight-less depth-wise).
func (b *Builder) Pool(name string, from int, k, stride int) int {
	if b.err != nil {
		return -1
	}
	p := b.producer(from, name)
	if p == nil {
		return -1
	}
	return b.addNode(&Node{Name: name, Kind: OpPool,
		KernelH: k, KernelW: k, StrideH: stride, StrideW: stride,
		InC: p.OutC, OutC: p.OutC,
		OutH: ceilDiv(p.OutH, stride), OutW: ceilDiv(p.OutW, stride)}, from)
}

// GlobalPool adds a pooling layer that collapses the spatial dims to 1×1.
func (b *Builder) GlobalPool(name string, from int) int {
	if b.err != nil {
		return -1
	}
	p := b.producer(from, name)
	if p == nil {
		return -1
	}
	return b.addNode(&Node{Name: name, Kind: OpPool,
		KernelH: p.OutH, KernelW: p.OutW, StrideH: p.OutH, StrideW: p.OutW,
		InC: p.OutC, OutC: p.OutC, OutH: 1, OutW: 1}, from)
}

// Eltwise adds an element-wise join (e.g. residual add) of the producers.
// All producers must agree on output shape; the result preserves it.
func (b *Builder) Eltwise(name string, from ...int) int {
	if b.err != nil {
		return -1
	}
	if len(from) == 0 {
		return b.fail("eltwise %q: no producers", name)
	}
	p0 := b.producer(from[0], name)
	if p0 == nil {
		return -1
	}
	for _, f := range from[1:] {
		p := b.producer(f, name)
		if p == nil {
			return -1
		}
		if p.OutH != p0.OutH || p.OutW != p0.OutW || p.OutC != p0.OutC {
			return b.fail("eltwise %q: shape mismatch %dx%dx%d vs %dx%dx%d from %q and %q",
				name, p0.OutH, p0.OutW, p0.OutC, p.OutH, p.OutW, p.OutC, p0.Name, p.Name)
		}
	}
	return b.addNode(&Node{Name: name, Kind: OpEltwise,
		KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
		InC: p0.OutC, OutC: p0.OutC, OutH: p0.OutH, OutW: p0.OutW}, from...)
}

// Concat adds a channel-dimension concatenation of the producers, which must
// agree on spatial shape.
func (b *Builder) Concat(name string, from ...int) int {
	if b.err != nil {
		return -1
	}
	if len(from) == 0 {
		return b.fail("concat %q: no producers", name)
	}
	p0 := b.producer(from[0], name)
	if p0 == nil {
		return -1
	}
	c := 0
	for _, f := range from {
		p := b.producer(f, name)
		if p == nil {
			return -1
		}
		if p.OutH != p0.OutH || p.OutW != p0.OutW {
			return b.fail("concat %q: spatial mismatch from %q and %q", name, p0.Name, p.Name)
		}
		c += p.OutC
	}
	return b.addNode(&Node{Name: name, Kind: OpConcat,
		KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
		InC: c, OutC: c, OutH: p0.OutH, OutW: p0.OutW}, from...)
}

// FC adds a fully-connected layer lowered to a 1×1 convolution over a 1×1
// spatial map (paper §5.1.1).
func (b *Builder) FC(name string, from int, outC int) int {
	if b.err != nil {
		return -1
	}
	p := b.producer(from, name)
	if p == nil {
		return -1
	}
	inC := p.OutC * p.OutH * p.OutW // flatten
	return b.addNode(&Node{Name: name, Kind: OpConv,
		KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
		InC: inC, OutC: outC, OutH: 1, OutW: 1}, from)
}

// Matmul adds a dense projection over a sequence: the producer's output is
// treated as a seqLen×1 map with inC channels and the result has outC
// channels (1×1 conv lowering of Transformer/GPT projections).
func (b *Builder) Matmul(name string, from int, outC int) int {
	if b.err != nil {
		return -1
	}
	p := b.producer(from, name)
	if p == nil {
		return -1
	}
	return b.addNode(&Node{Name: name, Kind: OpMatmul,
		KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
		InC: p.OutC, OutC: outC, OutH: p.OutH, OutW: p.OutW}, from)
}

// MatmulJoin adds a dense op that reads two producers (e.g. attention
// score = Q·Kᵀ or context = scores·V) producing outC channels over the first
// producer's spatial map. Modeled as a 1×1 op whose MAC count uses the sum of
// producer channels as the reduction depth.
func (b *Builder) MatmulJoin(name string, a, c int, outC int) int {
	if b.err != nil {
		return -1
	}
	pa := b.producer(a, name)
	pc := b.producer(c, name)
	if pa == nil || pc == nil {
		return -1
	}
	return b.addNode(&Node{Name: name, Kind: OpMatmul,
		KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
		InC: pa.OutC + pc.OutC, OutC: outC, OutH: pa.OutH, OutW: pa.OutW}, a, c)
}

// Custom adds a node with fully explicit parameters, for tests and
// generators that need consumption patterns the shape-deriving helpers do
// not cover (e.g. a convolution reading several producers).
func (b *Builder) Custom(name string, kind OpKind, k, stride, inC, outC, outH, outW int, from ...int) int {
	return b.addNode(&Node{Name: name, Kind: kind,
		KernelH: k, KernelW: k, StrideH: stride, StrideW: stride,
		InC: inC, OutC: outC, OutH: outH, OutW: outW}, from...)
}

// OutShape returns the output channels/height/width of node id as built so
// far, for builders (e.g. cell-based generators) that need to align shapes.
// ok is false if id is out of range.
func (b *Builder) OutShape(id int) (c, h, w int, ok bool) {
	if id < 0 || id >= len(b.nodes) {
		return 0, 0, 0, false
	}
	n := b.nodes[id]
	return n.OutC, n.OutH, n.OutW, true
}

func (b *Builder) producer(id int, consumer string) *Node {
	if id < 0 || id >= len(b.nodes) {
		b.fail("node %q: producer id %d out of range", consumer, id)
		return nil
	}
	return b.nodes[id]
}

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Finalize validates the graph (acyclicity is by construction since edges
// only point forward; we additionally require at least one compute node and
// that every compute node is reachable from an input) and returns the
// immutable Graph.
func (b *Builder) Finalize() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("graph %q: empty", b.name)
	}
	compute := 0
	for _, n := range b.nodes {
		if n.Kind != OpInput {
			compute++
			if len(b.pred[n.ID]) == 0 {
				return nil, fmt.Errorf("graph %q: compute node %q has no producers", b.name, n.Name)
			}
		}
	}
	if compute == 0 {
		return nil, fmt.Errorf("graph %q: no compute nodes", b.name)
	}
	g := &Graph{
		Name:  b.name,
		nodes: b.nodes,
		succ:  b.succ,
		pred:  b.pred,
	}
	// Edges always point from lower to higher id, so the identity order is
	// topological. Keep it: deterministic and cheap.
	g.topo = make([]int, len(b.nodes))
	g.rank = make([]int, len(b.nodes))
	for i := range g.topo {
		g.topo[i] = i
		g.rank[i] = i
	}
	for u, ss := range g.succ {
		sort.Ints(ss)
		_ = u
	}
	for v, pp := range g.pred {
		sort.Ints(pp)
		_ = v
	}
	g.buildIndexes()
	return g, nil
}

// buildIndexes derives the CSR adjacency arrays and the dense compute-node
// index from the finalized per-node slices.
func (g *Graph) buildIndexes() {
	n := len(g.nodes)
	edges := g.Edges()
	g.succCSR = make([]int32, 0, edges)
	g.predCSR = make([]int32, 0, edges)
	g.succOff = make([]int32, n+1)
	g.predOff = make([]int32, n+1)
	for id := 0; id < n; id++ {
		g.succOff[id] = int32(len(g.succCSR))
		for _, s := range g.succ[id] {
			g.succCSR = append(g.succCSR, int32(s))
		}
		g.predOff[id] = int32(len(g.predCSR))
		for _, p := range g.pred[id] {
			g.predCSR = append(g.predCSR, int32(p))
		}
	}
	g.succOff[n] = int32(len(g.succCSR))
	g.predOff[n] = int32(len(g.predCSR))

	g.denseIdx = make([]int32, n)
	for _, id := range g.topo {
		if g.nodes[id].Kind != OpInput {
			g.denseIdx[id] = int32(len(g.computeIDs))
			g.computeIDs = append(g.computeIDs, id)
		} else {
			g.denseIdx[id] = -1
		}
	}
}

// MustFinalize is Finalize that panics on error; for use in model builders
// whose structure is fixed at compile time and covered by tests.
func (b *Builder) MustFinalize() *Graph {
	g, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return g
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
