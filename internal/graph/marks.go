package graph

// Marks is an epoch-stamped node-set scratch buffer: a reusable replacement
// for the transient map[int]bool membership sets the hot paths (tiling
// derivation, subgraph costing) used to allocate per call. Reset is O(1) —
// it bumps the epoch instead of clearing the array — so a pooled Marks makes
// repeated membership tests allocation-free.
//
// A Marks is not safe for concurrent use; pool one per goroutine.
type Marks struct {
	stamp []uint32
	epoch uint32
}

// NewMarks returns a Marks able to hold node ids in [0, n).
func NewMarks(n int) *Marks {
	return &Marks{stamp: make([]uint32, n), epoch: 1}
}

// Reset empties the set in O(1).
func (m *Marks) Reset() {
	m.epoch++
	if m.epoch == 0 {
		// Epoch wrapped: old stamps could alias the new epoch, so pay the
		// one-in-2^32 full clear.
		for i := range m.stamp {
			m.stamp[i] = 0
		}
		m.epoch = 1
	}
}

// Grow extends the Marks to hold ids in [0, n) if it cannot already.
// Existing membership is preserved (new slots start empty: the zero stamp
// never equals a live epoch). Scratch workspaces reuse one Marks across
// graphs and label spaces of different sizes via Grow instead of
// re-allocating a fitted set per use.
func (m *Marks) Grow(n int) {
	if n <= len(m.stamp) {
		return
	}
	grown := make([]uint32, n)
	copy(grown, m.stamp)
	m.stamp = grown
}

// Set adds id to the set.
func (m *Marks) Set(id int) { m.stamp[id] = m.epoch }

// Has reports whether id is in the set.
func (m *Marks) Has(id int) bool { return m.stamp[id] == m.epoch }

// Len returns the capacity (the n passed to NewMarks).
func (m *Marks) Len() int { return len(m.stamp) }
