package graph_test

import (
	"fmt"

	"cocco/internal/graph"
)

// ExampleBuilder constructs a small residual block and inspects its
// structure.
func ExampleBuilder() {
	b := graph.NewBuilder("block")
	in := b.Input("in", 3, 32, 32)
	c1 := b.Conv("c1", in, 16, 3, 1)
	l := b.Conv("left", c1, 16, 3, 1)
	r := b.Conv("right", c1, 16, 1, 1)
	add := b.Eltwise("add", l, r)
	g, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	fmt.Printf("nodes=%d edges=%d weights=%dB\n", g.Len(), g.Edges(), g.TotalWeightBytes())
	fmt.Printf("add consumes %d producers; c1 feeds %d consumers\n",
		len(g.Pred(add)), len(g.Succ(c1)))
	// Output:
	// nodes=5 edges=5 weights=2992B
	// add consumes 2 producers; c1 feeds 2 consumers
}
