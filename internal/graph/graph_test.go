package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func diamond(t *testing.T) (*Graph, []int) {
	t.Helper()
	b := NewBuilder("diamond")
	in := b.Input("in", 3, 32, 32)
	c1 := b.Conv("c1", in, 16, 3, 1)
	l := b.Conv("l", c1, 16, 3, 1)
	r := b.Conv("r", c1, 16, 1, 1)
	add := b.Eltwise("add", l, r)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g, []int{in, c1, l, r, add}
}

func TestBuilderShapes(t *testing.T) {
	b := NewBuilder("shapes")
	in := b.Input("in", 3, 224, 224)
	c1 := b.Conv("c1", in, 64, 7, 2)
	p1 := b.Pool("p1", c1, 3, 2)
	d1 := b.DWConv("d1", p1, 3, 1)
	g := b.MustFinalize()

	n := g.Node(c1)
	if n.OutH != 112 || n.OutW != 112 || n.OutC != 64 {
		t.Errorf("conv shape = %dx%dx%d", n.OutH, n.OutW, n.OutC)
	}
	if got := g.Node(p1); got.OutH != 56 || got.OutC != 64 {
		t.Errorf("pool shape = %dx%d c=%d", got.OutH, got.OutW, got.OutC)
	}
	if got := g.Node(d1); got.OutC != 64 || got.Kind != OpDWConv {
		t.Errorf("dwconv = %+v", got)
	}
}

func TestNodeDerivedQuantities(t *testing.T) {
	n := &Node{Kind: OpConv, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2,
		InC: 16, OutC: 32, OutH: 10, OutW: 10}
	if got := n.WeightBytes(); got != 3*3*16*32 {
		t.Errorf("WeightBytes = %d", got)
	}
	if got := n.MACs(); got != 10*10*3*3*16*32 {
		t.Errorf("MACs = %d", got)
	}
	if got := n.OutBytes(); got != 10*10*32 {
		t.Errorf("OutBytes = %d", got)
	}
	if got := n.InH(); got != 3+9*2 {
		t.Errorf("InH = %d", got)
	}
	dw := &Node{Kind: OpDWConv, KernelH: 3, KernelW: 3, OutC: 32, OutH: 4, OutW: 4, StrideH: 1, StrideW: 1}
	if got := dw.WeightBytes(); got != 3*3*32 {
		t.Errorf("dw WeightBytes = %d", got)
	}
	pool := &Node{Kind: OpPool, KernelH: 2, KernelW: 2, OutC: 8, OutH: 4, OutW: 4, StrideH: 2, StrideW: 2}
	if pool.WeightBytes() != 0 {
		t.Error("pool should have no weights")
	}
	if pool.Kind.HasWeights() {
		t.Error("pool kind should not have weights")
	}
}

func TestGraphStructure(t *testing.T) {
	g, ids := diamond(t)
	in, c1, l, r, add := ids[0], ids[1], ids[2], ids[3], ids[4]

	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Edges() != 5 {
		t.Errorf("Edges = %d", g.Edges())
	}
	if got := g.Succ(c1); len(got) != 2 || got[0] != l || got[1] != r {
		t.Errorf("Succ(c1) = %v", got)
	}
	if got := g.Pred(add); len(got) != 2 {
		t.Errorf("Pred(add) = %v", got)
	}
	if got := g.Outputs(); len(got) != 1 || got[0] != add {
		t.Errorf("Outputs = %v", got)
	}
	if got := g.Inputs(); len(got) != 1 || got[0] != in {
		t.Errorf("Inputs = %v", got)
	}
	if got := g.ComputeNodes(); len(got) != 4 {
		t.Errorf("ComputeNodes = %v", got)
	}
	for i, id := range g.Topo() {
		if g.Rank(id) != i {
			t.Errorf("Rank(%d) = %d, want %d", id, g.Rank(id), i)
		}
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g, _ := diamond(t)
	for _, u := range g.Topo() {
		for _, v := range g.Succ(u) {
			if g.Rank(u) >= g.Rank(v) {
				t.Errorf("edge %d->%d violates topological order", u, v)
			}
		}
	}
}

func TestIsConnected(t *testing.T) {
	g, ids := diamond(t)
	_, c1, l, r, add := ids[0], ids[1], ids[2], ids[3], ids[4]

	cases := []struct {
		set  []int
		want bool
	}{
		{nil, false},
		{[]int{c1}, true},
		{[]int{c1, l}, true},
		{[]int{l, r}, false}, // siblings: connected only through c1 or add
		{[]int{l, r, add}, true},
		{[]int{c1, l, r, add}, true},
	}
	for _, c := range cases {
		set := map[int]bool{}
		for _, id := range c.set {
			set[id] = true
		}
		if got := g.IsConnected(set); got != c.want {
			t.Errorf("IsConnected(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g, ids := diamond(t)
	l, r := ids[2], ids[3]
	comps := g.ConnectedComponents(map[int]bool{l: true, r: true})
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if comps[0][0] != l || comps[1][0] != r {
		t.Errorf("components order = %v", comps)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{"dup-name", func(b *Builder) {
			in := b.Input("x", 3, 8, 8)
			b.Conv("x", in, 4, 3, 1)
		}, "duplicate"},
		{"empty-name", func(b *Builder) { b.Input("", 3, 8, 8) }, "empty name"},
		{"bad-shape", func(b *Builder) { b.Input("in", 0, 8, 8) }, "non-positive output"},
		{"no-producer", func(b *Builder) {
			b.Custom("c", OpConv, 3, 1, 3, 4, 8, 8)
		}, "without producers"},
		{"bad-producer", func(b *Builder) {
			in := b.Input("in", 3, 8, 8)
			_ = in
			b.Custom("c", OpConv, 3, 1, 3, 4, 8, 8, 99)
		}, "out of range"},
		{"eltwise-mismatch", func(b *Builder) {
			in := b.Input("in", 3, 8, 8)
			a := b.Conv("a", in, 4, 3, 1)
			c := b.Conv("c", in, 4, 3, 2)
			b.Eltwise("e", a, c)
		}, "shape mismatch"},
		{"concat-mismatch", func(b *Builder) {
			in := b.Input("in", 3, 8, 8)
			a := b.Conv("a", in, 4, 3, 1)
			c := b.Conv("c", in, 4, 3, 2)
			b.Concat("e", a, c)
		}, "spatial mismatch"},
	}
	for _, c := range cases {
		b := NewBuilder(c.name)
		c.build(b)
		_, err := b.Finalize()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	if _, err := NewBuilder("empty").Finalize(); err == nil {
		t.Error("empty graph should fail")
	}
	b := NewBuilder("inputs-only")
	b.Input("in", 3, 8, 8)
	if _, err := b.Finalize(); err == nil {
		t.Error("inputs-only graph should fail")
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{OpInput: "input", OpConv: "conv", OpMatmul: "matmul"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if OpKind(99).String() != "OpKind(99)" {
		t.Errorf("unknown kind: %s", OpKind(99))
	}
}

// TestConnectedComponentsPartitionProperty checks (via testing/quick) that
// splitting any random node subset into components yields disjoint connected
// parts that cover the subset.
func TestConnectedComponentsPartitionProperty(t *testing.T) {
	g, ids := diamond(t)
	f := func(mask uint8) bool {
		set := map[int]bool{}
		for i, id := range ids {
			if mask&(1<<uint(i)) != 0 {
				set[id] = true
			}
		}
		comps := g.ConnectedComponents(set)
		total := 0
		seen := map[int]bool{}
		for _, comp := range comps {
			cs := map[int]bool{}
			for _, id := range comp {
				if !set[id] || seen[id] {
					return false
				}
				seen[id] = true
				cs[id] = true
				total++
			}
			if !g.IsConnected(cs) {
				return false
			}
		}
		return total == len(set)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustFinalizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFinalize should panic on invalid graph")
		}
	}()
	NewBuilder("bad").MustFinalize()
}

func TestCSRViewsMatchSlices(t *testing.T) {
	g, _ := diamond(t)
	for id := 0; id < g.Len(); id++ {
		succ, pred := g.Succ(id), g.Pred(id)
		succV, predV := g.SuccIDs(id), g.PredIDs(id)
		if len(succ) != len(succV) || len(pred) != len(predV) {
			t.Fatalf("node %d: CSR lengths differ", id)
		}
		for i := range succ {
			if succ[i] != int(succV[i]) {
				t.Errorf("node %d: succ[%d] = %d vs CSR %d", id, i, succ[i], succV[i])
			}
		}
		for i := range pred {
			if pred[i] != int(predV[i]) {
				t.Errorf("node %d: pred[%d] = %d vs CSR %d", id, i, pred[i], predV[i])
			}
		}
	}
}

func TestDenseIndex(t *testing.T) {
	g, ids := diamond(t)
	if g.DenseIndex(ids[0]) != -1 {
		t.Errorf("input dense index = %d, want -1", g.DenseIndex(ids[0]))
	}
	cached := g.ComputeIDs()
	copied := g.ComputeNodes()
	if len(cached) != len(copied) || len(cached) != 4 {
		t.Fatalf("compute ids = %v / %v", cached, copied)
	}
	for i, id := range cached {
		if copied[i] != id {
			t.Errorf("ComputeNodes[%d] = %d, want %d", i, copied[i], id)
		}
		if g.DenseIndex(id) != i {
			t.Errorf("DenseIndex(%d) = %d, want %d", id, g.DenseIndex(id), i)
		}
	}
	// ComputeNodes must hand out a private copy.
	copied[0] = -99
	if g.ComputeIDs()[0] == -99 {
		t.Error("ComputeNodes aliases the cached slice")
	}
}

func TestMarks(t *testing.T) {
	m := NewMarks(8)
	if m.Len() != 8 {
		t.Errorf("Len = %d", m.Len())
	}
	m.Set(3)
	if !m.Has(3) || m.Has(4) {
		t.Error("Set/Has broken")
	}
	m.Reset()
	if m.Has(3) {
		t.Error("Reset did not clear")
	}
	// Epoch wraparound must not resurrect stale stamps.
	m.Set(1)
	m.epoch = ^uint32(0)
	m.stamp[2] = ^uint32(0) // stale entry stamped with the pre-wrap epoch
	m.Reset()
	if m.Has(1) || m.Has(2) {
		t.Error("wraparound resurrected stale marks")
	}
	m.Set(5)
	if !m.Has(5) {
		t.Error("Set after wraparound")
	}
}
