// Package exec simulates the subgraph elementary operations of the paper's
// execution scheme step by step (Figure 6) and validates the derived scheme
// against three runtime invariants:
//
//  1. Alignment (stage-3): in steady state every node advances exactly
//     upd_num·Δ rows per elementary operation.
//  2. Allocation (stage-2): every consumer's atomic Δ-row update finds its
//     full convolution window resident in the producer's x-row allocation
//     (x(p) ≥ F_v + (Δ_v−1)·s_v on every internal edge — production within
//     an operation is row-granular and just-in-time, so this static bound
//     is exactly what full reuse requires; stage-2's LCM derivation meets
//     it with equality on critical edges).
//  3. Progress: production never regresses — nothing is recomputed.
//
// The first elementary operation is the pipeline-fill prologue: it
// materializes the nested backward windows (larger than the steady-state x
// for deep subgraphs), after which the sweep is uniform. The simulator works
// on the height dimension (the paper's 1D exposition); width obeys the same
// algebra by symmetry.
package exec

import (
	"fmt"
	"sort"

	"cocco/internal/graph"
	"cocco/internal/tiling"
)

// Update is one memory update of a node: rows [From, To) of the node's
// output become materialized (the paper's [m:n] ranges; To is exclusive).
type Update struct {
	Node     int
	From, To int64
}

// Rows is the number of rows the update materializes.
func (u Update) Rows() int64 { return u.To - u.From }

func (u Update) String() string { return fmt.Sprintf("n%d[%d:%d]", u.Node, u.From, u.To-1) }

// Op is one subgraph-level elementary operation.
type Op struct {
	Index int
	// Updates are the per-node advances, in topological node order.
	Updates []Update
}

// Snapshot is the resident range of every node after an operation: rows
// [From, To) are in the buffer.
type Snapshot map[int]Update

// Trace is a full simulation of a subgraph sweep.
type Trace struct {
	// Ops are the elementary operations in execution order; Ops[0] is the
	// pipeline-fill prologue.
	Ops []Op
	// Snapshots[i] is the buffer state after Ops[i]: each node's retained
	// window (at most its x allocation).
	Snapshots []Snapshot
	// PrologueRows maps node → rows materialized by the first operation
	// (the nested backward window).
	PrologueRows map[int]int64
}

// Simulate runs numOps elementary operations of the scheme and checks the
// package-level invariants, returning an error naming the first violation
// (which would indicate an incorrectly derived scheme).
func Simulate(g *graph.Graph, s *tiling.Scheme, numOps int) (*Trace, error) {
	if numOps < 1 {
		return nil, fmt.Errorf("exec: numOps must be >= 1")
	}
	ids := make([]int, 0, len(s.Nodes))
	for id := range s.Nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids) // ascending = topological

	internalConsumers := func(u int) []int {
		var out []int
		for _, c := range g.Succ(u) {
			if cs, ok := s.Nodes[c]; ok && !cs.External {
				out = append(out, c)
			}
		}
		return out
	}

	// Invariant 2 (static): every internal edge's consumer batch fits its
	// producer's allocation.
	for _, id := range ids {
		ns := s.Nodes[id]
		for _, c := range internalConsumers(id) {
			nc := g.Node(c)
			cs := s.Nodes[c]
			window := int64(nc.KernelH) + (cs.DeltaH-1)*int64(nc.StrideH)
			if ns.TileH < window {
				return nil, fmt.Errorf(
					"exec: edge %d->%d: consumer batch window %d exceeds producer allocation x=%d",
					id, c, window, ns.TileH)
			}
		}
	}

	produced := make(map[int]int64, len(ids))
	tr := &Trace{PrologueRows: map[int]int64{}}

	for op := 0; op < numOps; op++ {
		// Just-in-time targets, backward: outputs advance upd·Δ per op;
		// producers must cover their consumers' windows.
		target := make(map[int]int64, len(ids))
		for i := len(ids) - 1; i >= 0; i-- {
			id := ids[i]
			ns := s.Nodes[id]
			// A node's own schedule: (op+1)·upd·Δ rows.
			t := int64(op+1) * ns.UpdH * ns.DeltaH
			for _, c := range internalConsumers(id) {
				nc := g.Node(c)
				need := int64(nc.KernelH) + (target[c]-1)*int64(nc.StrideH)
				if need > t {
					t = need
				}
			}
			target[id] = t
		}

		cur := Op{Index: op}
		for _, id := range ids {
			ns := s.Nodes[id]
			prev := produced[id]
			t := target[id]
			if t < prev {
				return nil, fmt.Errorf("exec: op %d: node %d target %d below produced %d (recomputation)",
					op, id, t, prev)
			}
			if op > 0 {
				// Invariant 1: uniform steady-state advance.
				if adv := t - prev; adv != ns.UpdH*ns.DeltaH {
					return nil, fmt.Errorf("exec: op %d: node %d advanced %d rows, want upd·Δ = %d",
						op, id, adv, ns.UpdH*ns.DeltaH)
				}
			}
			produced[id] = t
			cur.Updates = append(cur.Updates, Update{Node: id, From: prev, To: t})
			if op == 0 {
				tr.PrologueRows[id] = t
			}
		}
		tr.Ops = append(tr.Ops, cur)

		snap := Snapshot{}
		for _, id := range ids {
			ns := s.Nodes[id]
			to := produced[id]
			from := to - ns.TileH
			if from < 0 {
				from = 0
			}
			snap[id] = Update{Node: id, From: from, To: to}
		}
		tr.Snapshots = append(tr.Snapshots, snap)
	}
	return tr, nil
}

// OpsToCover returns the number of elementary operations needed for node id
// to materialize its full output height under the scheme.
func OpsToCover(g *graph.Graph, s *tiling.Scheme, id int) int64 {
	ns := s.Nodes[id]
	per := ns.UpdH * ns.DeltaH
	if per <= 0 {
		return 0
	}
	h := int64(g.Node(id).OutH)
	return (h + per - 1) / per
}

// FormatSnapshot renders a snapshot in the paper's Figure 6 notation.
func FormatSnapshot(g *graph.Graph, s *tiling.Scheme, snap Snapshot) string {
	ids := make([]int, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := ""
	for _, id := range ids {
		u := snap[id]
		out += fmt.Sprintf("%s size=%d [%d:%d]  ", g.Node(id).Name, s.Nodes[id].TileH, u.From, u.To-1)
	}
	return out
}
