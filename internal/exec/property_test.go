package exec

import (
	"math/rand"
	"testing"

	"cocco/internal/testutil"
	"cocco/internal/tiling"
)

// TestSimulateRandomSubgraphs validates the execution scheme end-to-end on
// random DAGs: every derivable subgraph must simulate cleanly (alignment,
// residency, progress) for several elementary operations.
func TestSimulateRandomSubgraphs(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := testutil.RandomGraph(seed, 25)
		rng := rand.New(rand.NewSource(seed + 77))
		for trial := 0; trial < 10; trial++ {
			members := testutil.RandomConnectedSubgraph(rng, g, 10)
			s, err := tiling.Derive(g, members, tiling.DefaultConfig())
			if err != nil {
				t.Fatalf("seed %d trial %d: derive: %v", seed, trial, err)
			}
			tr, err := Simulate(g, s, 4)
			if err != nil {
				t.Fatalf("seed %d trial %d (members %v): %v", seed, trial, members, err)
			}
			// Updates never regress and ops are contiguous.
			last := map[int]int64{}
			for _, op := range tr.Ops {
				for _, u := range op.Updates {
					if u.From != last[u.Node] {
						t.Fatalf("seed %d: node %d op %d starts at %d, expected %d",
							seed, u.Node, op.Index, u.From, last[u.Node])
					}
					last[u.Node] = u.To
				}
			}
			// Prologue covers at least one steady advance per node.
			for id, rows := range tr.PrologueRows {
				ns := s.Nodes[id]
				if rows < ns.UpdH*ns.DeltaH {
					t.Fatalf("seed %d: node %d prologue %d below upd·Δ %d",
						seed, id, rows, ns.UpdH*ns.DeltaH)
				}
			}
		}
	}
}
