package exec

import (
	"strings"
	"testing"

	"cocco/internal/graph"
	"cocco/internal/models"
	"cocco/internal/tiling"
)

// fig5Graph builds the paper's Figure 5 example: inputs A(-2), B(-1);
// n0 = 3×3/2 conv of A; n1 = 3×3/1 conv of A and B; n2 = 1×1/1 conv of B.
func fig5Graph(t *testing.T) (*graph.Graph, *tiling.Scheme, []int) {
	t.Helper()
	b := graph.NewBuilder("fig5")
	a := b.Input("A", 8, 64, 64)
	bb := b.Input("B", 8, 64, 64)
	n0 := b.Custom("n0", graph.OpConv, 3, 2, 8, 8, 31, 31, a)
	n1 := b.Custom("n1", graph.OpConv, 3, 1, 16, 8, 62, 62, a, bb)
	n2 := b.Custom("n2", graph.OpConv, 1, 1, 8, 8, 64, 64, bb)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	s, err := tiling.Derive(g, []int{n0, n1, n2}, tiling.Config{BaseTileH: 2, BaseTileW: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g, s, []int{a, bb, n0, n1, n2}
}

func TestSimulateFigure6Snapshots(t *testing.T) {
	g, s, ids := fig5Graph(t)
	a, bb, n0, n1, n2 := ids[0], ids[1], ids[2], ids[3], ids[4]

	tr, err := Simulate(g, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6, first elementary operation: A covers [0:5] (6 rows),
	// B [0:5] (prologue covers both updates), n0 [0:1], n1 [0:3], n2 [0:3].
	first := tr.Snapshots[0]
	wantFirst := map[int][2]int64{
		a:  {0, 6},
		bb: {2, 6}, // produced 6, retains x=4
		n0: {0, 2},
		n1: {2, 4}, // produced 4 (2 updates of Δ=2), retains x=2
		n2: {2, 4},
	}
	for id, w := range wantFirst {
		got := first[id]
		if got.From != w[0] || got.To != w[1] {
			t.Errorf("op0 node %d: window [%d:%d), want [%d:%d)", id, got.From, got.To, w[0], w[1])
		}
	}
	// Figure 6, second elementary operation: A advances Δ=4 to [4:9]
	// (rows 4..9), B two updates of Δ=2 to [6:9].
	second := tr.Snapshots[1]
	if got := second[a]; got.From != 4 || got.To != 10 {
		t.Errorf("op1 A window [%d:%d), want [4:10) (the paper's [4:9])", got.From, got.To)
	}
	if got := second[bb]; got.From != 6 || got.To != 10 {
		t.Errorf("op1 B window [%d:%d), want [6:10) (the paper's [6:9])", got.From, got.To)
	}
	// Steady advances: A +4, B +4 (2×2), n0 +2, n1 +4, n2 +4.
	adv := map[int]int64{a: 4, bb: 4, n0: 2, n1: 4, n2: 4}
	for _, u := range tr.Ops[2].Updates {
		if u.Rows() != adv[u.Node] {
			t.Errorf("op2 node %d advanced %d, want %d", u.Node, u.Rows(), adv[u.Node])
		}
	}
}

func TestSimulateDeepChainPrologue(t *testing.T) {
	// in -> c1(3/1) -> c2(3/2) -> c3(3/1): the prologue must materialize the
	// nested windows (in: 9 rows for c1's 7, etc.), then go uniform.
	b := graph.NewBuilder("chain")
	in := b.Input("in", 8, 64, 64)
	c1 := b.Conv("c1", in, 8, 3, 1)
	c2 := b.Conv("c2", c1, 8, 3, 2)
	c3 := b.Conv("c3", c2, 8, 3, 1)
	g := b.MustFinalize()
	s, err := tiling.Derive(g, []int{c1, c2, c3}, tiling.Config{BaseTileH: 2, BaseTileW: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Simulate(g, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Nested windows: c3 needs 2; c2 needs 3+(2-1)·1 = 4; c1 needs
	// 3+(4-1)·2 = 9; in needs 3+(9-1)·1 = 11.
	want := map[int]int64{in: 11, c1: 9, c2: 4, c3: 2}
	for id, w := range want {
		if tr.PrologueRows[id] != w {
			t.Errorf("prologue node %d = %d rows, want %d", id, tr.PrologueRows[id], w)
		}
	}
	// Steady state: everyone advances upd·Δ.
	for _, u := range tr.Ops[3].Updates {
		ns := s.Nodes[u.Node]
		if u.Rows() != ns.UpdH*ns.DeltaH {
			t.Errorf("steady node %d advanced %d, want %d", u.Node, u.Rows(), ns.UpdH*ns.DeltaH)
		}
	}
}

func TestSimulateInvariantsOnRealModels(t *testing.T) {
	// Validate the derived schemes of real fused subgraphs end-to-end.
	for _, model := range []string{"resnet50", "googlenet", "randwire-a"} {
		g := models.MustBuild(model)
		// Fuse consecutive runs of 4 compute nodes.
		nodes := g.ComputeNodes()
		for start := 0; start+4 <= len(nodes) && start < 40; start += 4 {
			members := nodes[start : start+4]
			set := map[int]bool{}
			for _, id := range members {
				set[id] = true
			}
			if !g.IsConnected(set) {
				continue
			}
			s, err := tiling.Derive(g, members, tiling.DefaultConfig())
			if err != nil {
				t.Fatalf("%s[%d]: derive: %v", model, start, err)
			}
			if _, err := Simulate(g, s, 5); err != nil {
				t.Errorf("%s[%d]: %v", model, start, err)
			}
		}
	}
}

func TestOpsToCover(t *testing.T) {
	g, s, ids := fig5Graph(t)
	// n0: OutH=31, per-op rows = upd·Δ = 2 → 16 ops.
	if got := OpsToCover(g, s, ids[2]); got != 16 {
		t.Errorf("OpsToCover(n0) = %d, want 16", got)
	}
	// All nodes of one subgraph should finish within ±1 op of each other
	// (they sweep the same tensor extent at aligned rates).
	first := OpsToCover(g, s, ids[0])
	for _, id := range ids[1:] {
		got := OpsToCover(g, s, id)
		if got < first-1 || got > first+1 {
			t.Errorf("node %d needs %d ops, node %d needs %d: misaligned sweep", id, got, ids[0], first)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	g, s, _ := fig5Graph(t)
	if _, err := Simulate(g, s, 0); err == nil {
		t.Error("numOps=0 accepted")
	}
}

func TestFormatSnapshot(t *testing.T) {
	g, s, _ := fig5Graph(t)
	tr, err := Simulate(g, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSnapshot(g, s, tr.Snapshots[0])
	if !strings.Contains(out, "A size=6 [0:5]") {
		t.Errorf("snapshot format: %s", out)
	}
}
