package search

import (
	"fmt"
	"runtime"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/serialize"
)

// splitWorkers divides a scoring-goroutine budget across ring slots: every
// slot gets total/ring workers, the remainder goes to the first slots one
// worker each, and no slot drops below one. Worker counts never change
// results anywhere in the stack, so the split is purely a throughput
// decision — but dropping the remainder (the old behavior) left up to
// ring-1 goroutines idle on every round.
func splitWorkers(total, ring int) []int {
	if total <= 0 {
		total = runtime.NumCPU()
	}
	out := make([]int, ring)
	per, rem := total/ring, total%ring
	for i := range out {
		out[i] = per
		if i < rem {
			out[i]++
		}
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// RingHost builds and drives a contiguous slice [lo,hi) of the migration
// ring. The single-process orchestrator is a RingHost over the whole ring;
// a distributed worker process (internal/search/dist) is a RingHost over
// its assigned slice. Both construct islands from the same Options with the
// same ChildSeedStream-derived seeds per global ring index, which is what
// makes any worker partitioning replay the single-process trajectory.
//
// The host's methods index local islands 0..hi-lo-1 except Immigrate, which
// takes a global ring index — migration wiring is the caller's job and is
// expressed in ring coordinates.
type RingHost struct {
	ev      *eval.Evaluator
	opt     Options // normalized by WithDefaults
	lo, hi  int
	islands []island
}

// NewRingHost constructs the islands for global ring indices [lo,hi).
// opt.Core.Workers is this process's scoring-goroutine budget; it is split
// across the hosted islands only (a remote slice of the ring spends its own
// machine's CPUs, not a share of the coordinator's).
func NewRingHost(ev *eval.Evaluator, opt Options, lo, hi int) (*RingHost, error) {
	opt = opt.WithDefaults()
	ring := opt.Islands + len(opt.Scouts)
	if lo < 0 || hi > ring || lo >= hi {
		return nil, fmt.Errorf("search: ring slice [%d,%d) invalid for a %d-island ring", lo, hi, ring)
	}
	h := &RingHost{ev: ev, opt: opt, lo: lo, hi: hi}
	seed := opt.Core.Seed
	workers := splitWorkers(opt.Core.Workers, hi-lo)
	for idx := lo; idx < hi; idx++ {
		var isl island
		var err error
		if idx < opt.Islands {
			iopt := opt.Core
			iopt.Workers = workers[idx-lo]
			if idx > 0 {
				iopt.Seed = core.ChildSeedStream(seed, core.StreamIslands, idx)
				// Only island 0 honors Init seeding and Trace, so multi-island
				// runs neither replay seeds K times nor interleave trace streams.
				iopt.Init = nil
				iopt.Trace = nil
			}
			isl, err = newGAIsland(ev, iopt, seed, idx)
		} else {
			isl, err = newScout(ev, opt, opt.Scouts[idx-opt.Islands], seed, idx)
		}
		if err != nil {
			return nil, err
		}
		h.islands = append(h.islands, isl)
	}
	return h, nil
}

// RingSize is the global ring length (GA islands plus scouts).
func (h *RingHost) RingSize() int { return h.opt.Islands + len(h.opt.Scouts) }

// Lo and Hi bound the hosted global ring indices.
func (h *RingHost) Lo() int { return h.lo }
func (h *RingHost) Hi() int { return h.hi }

// Options returns the normalized options the host was built with.
func (h *RingHost) Options() Options { return h.opt }

// Step advances every hosted island by up to gens optimizer steps in
// parallel and reports, per local island, whether any work was done.
func (h *RingHost) Step(gens int) []bool {
	n := len(h.islands)
	progressed := make([]bool, n)
	core.ParallelFor(n, n, func(i int) {
		progressed[i] = h.islands[i].step(gens)
	})
	return progressed
}

// Done reports, per local island, whether its budget is exhausted.
func (h *RingHost) Done() []bool {
	out := make([]bool, len(h.islands))
	for i, isl := range h.islands {
		out[i] = isl.done()
	}
	return out
}

// Emigrants selects every hosted island's migrants, in ascending ring
// order, without committing anything — the caller holds the barrier and
// must collect ALL islands' emigrants (across every host) before the first
// Immigrate, so selection sees only pre-barrier populations.
func (h *RingHost) Emigrants() [][]*core.Genome {
	out := make([][]*core.Genome, len(h.islands))
	for i, isl := range h.islands {
		out[i] = isl.emigrants(h.opt.Migrants)
	}
	return out
}

// Immigrate commits migrants into the island at the given global ring
// index, which must be hosted here.
func (h *RingHost) Immigrate(globalIdx int, gs []*core.Genome) error {
	if globalIdx < h.lo || globalIdx >= h.hi {
		return fmt.Errorf("search: immigrate to island %d outside hosted slice [%d,%d)", globalIdx, h.lo, h.hi)
	}
	h.islands[globalIdx-h.lo].immigrate(gs)
	return nil
}

// Bests returns every hosted island's best feasible genome (nil entries for
// islands with none yet), in ring order.
func (h *RingHost) Bests() []*core.Genome {
	out := make([]*core.Genome, len(h.islands))
	for i, isl := range h.islands {
		out[i] = isl.best()
	}
	return out
}

// Stats returns every hosted island's statistics contribution, in ring order.
func (h *RingHost) Stats() []core.Stats {
	out := make([]core.Stats, len(h.islands))
	for i, isl := range h.islands {
		out[i] = isl.stats()
	}
	return out
}

// Snapshots serializes every hosted island, in ring order. Only meaningful
// at a migration barrier, when the islands are quiescent.
func (h *RingHost) Snapshots() []serialize.IslandJSON {
	out := make([]serialize.IslandJSON, len(h.islands))
	for i, isl := range h.islands {
		out[i] = isl.snapshot()
	}
	return out
}

// Restore loads one snapshot per hosted island, in ring order.
func (h *RingHost) Restore(js []serialize.IslandJSON) error {
	if len(js) != len(h.islands) {
		return fmt.Errorf("search: restore got %d island snapshots for %d hosted islands", len(js), len(h.islands))
	}
	for i, isl := range h.islands {
		if err := isl.restore(js[i]); err != nil {
			return err
		}
	}
	return nil
}
