package search

import (
	"fmt"
	"math/rand"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/serialize"
)

// gaIsland wraps one core.Optimizer plus its migration RNG stream. All
// search randomness stays on the optimizer's own master/child streams; the
// migration stream only ever selects emigrants, so an island's trajectory
// between barriers is exactly a core.Run prefix.
type gaIsland struct {
	ev      *eval.Evaluator
	iopt    core.Options
	ringIdx int
	o       *core.Optimizer

	migSeed int64
	migSrc  *core.CountingSource
	migRNG  *rand.Rand
}

func newGAIsland(ev *eval.Evaluator, iopt core.Options, runSeed int64, ringIdx int) (*gaIsland, error) {
	o, err := core.NewOptimizer(ev, iopt)
	if err != nil {
		return nil, err
	}
	g := &gaIsland{
		ev:      ev,
		iopt:    iopt,
		ringIdx: ringIdx,
		o:       o,
		migSeed: core.ChildSeedStream(runSeed, core.StreamMigration, ringIdx),
	}
	g.migSrc = core.NewCountingSource(g.migSeed)
	g.migRNG = rand.New(g.migSrc)
	return g, nil
}

func (g *gaIsland) step(gens int) bool {
	if g.o.Done() {
		return false
	}
	for k := 0; k < gens; k++ {
		if !g.o.Step() {
			break
		}
	}
	return true
}

// emigrants sends the island's current elite plus n-1 uniform draws from the
// rest of the population, as clones — committed genomes are immutable, so
// clones only decouple the assignment arrays.
func (g *gaIsland) emigrants(n int) []*core.Genome {
	pop := g.o.Population()
	if len(pop) == 0 {
		return nil
	}
	if n > len(pop) {
		n = len(pop)
	}
	out := make([]*core.Genome, 0, n)
	out = append(out, pop[0].Clone())
	for j := 1; j < n; j++ {
		out = append(out, pop[1+g.migRNG.Intn(len(pop)-1)].Clone())
	}
	return out
}

// immigrate replaces the island's worst population entries (the tail of the
// cost-sorted population), never the elite slot. Immigrants enter the
// parent pool immediately; they only become the island's best once one of
// their descendants is scored.
func (g *gaIsland) immigrate(gs []*core.Genome) {
	pop := g.o.Population()
	for j, m := range gs {
		idx := len(pop) - 1 - j
		if idx <= 0 {
			break
		}
		pop[idx] = m
	}
}

func (g *gaIsland) done() bool { return g.o.Done() }

func (g *gaIsland) best() *core.Genome { return g.o.Best() }

func (g *gaIsland) stats() core.Stats { return g.o.StatsSnapshot() }

func (g *gaIsland) snapshot() serialize.IslandJSON {
	st := g.o.ExportState()
	j := serialize.IslandJSON{
		Kind:            "ga",
		RNG:             serialize.RNGStateJSON{Seed: st.Seed, Draws: st.Draws},
		Migration:       serialize.RNGStateJSON{Seed: g.migSrc.SeedValue(), Draws: g.migSrc.Draws()},
		Started:         st.Started,
		Samples:         st.Samples,
		Generations:     st.Generations,
		FeasibleSamples: st.Stats.FeasibleSamples,
		MemoHits:        st.Stats.MemoHits,
		BestHistory:     st.Stats.BestHistory,
		Best:            EncodeGenome(st.Best, true),
	}
	for _, m := range st.Population {
		j.Population = append(j.Population, *EncodeGenome(m, false))
	}
	for _, m := range st.Memo {
		j.Memo = append(j.Memo, *EncodeGenome(m, true))
	}
	return j
}

func (g *gaIsland) restore(j serialize.IslandJSON) error {
	if j.Kind != "ga" {
		return fmt.Errorf("search: island %d: checkpoint kind %q, want ga", g.ringIdx, j.Kind)
	}
	if j.Migration.Seed != g.migSeed {
		return fmt.Errorf("search: island %d: migration seed mismatch", g.ringIdx)
	}
	gr := g.ev.Graph()
	st := &core.OptimizerState{
		Seed:        j.RNG.Seed,
		Draws:       j.RNG.Draws,
		Started:     j.Started,
		Samples:     j.Samples,
		Generations: j.Generations,
		Stats: core.Stats{
			Generations:     j.Generations,
			FeasibleSamples: j.FeasibleSamples,
			MemoHits:        j.MemoHits,
			BestHistory:     j.BestHistory,
		},
	}
	var err error
	if st.Best, err = DecodeGenome(gr, j.Best, true); err != nil {
		return fmt.Errorf("search: island %d best: %w", g.ringIdx, err)
	}
	for i := range j.Population {
		m, err := DecodeGenome(gr, &j.Population[i], false)
		if err != nil {
			return fmt.Errorf("search: island %d population[%d]: %w", g.ringIdx, i, err)
		}
		st.Population = append(st.Population, m)
	}
	for i := range j.Memo {
		m, err := DecodeGenome(gr, &j.Memo[i], true)
		if err != nil {
			return fmt.Errorf("search: island %d memo[%d]: %w", g.ringIdx, i, err)
		}
		if m.Res == nil {
			return fmt.Errorf("search: island %d memo[%d]: missing result", g.ringIdx, i)
		}
		st.Memo = append(st.Memo, m)
	}
	if g.o, err = core.NewOptimizerFromState(g.ev, g.iopt, st); err != nil {
		return fmt.Errorf("search: island %d: %w", g.ringIdx, err)
	}
	g.migSrc = core.RestoreSource(j.Migration.Seed, j.Migration.Draws)
	g.migRNG = rand.New(g.migSrc)
	return nil
}
