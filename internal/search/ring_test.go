package search

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
)

// TestSplitWorkers pins the remainder distribution: the old total/ring split
// left up to ring-1 workers idle (7 workers over 5 slots ran as [1,1,1,1,1]).
func TestSplitWorkers(t *testing.T) {
	cases := []struct {
		total, ring int
		want        []int
	}{
		{7, 5, []int{2, 2, 1, 1, 1}}, // the motivating case: remainder 2 goes to the first islands
		{8, 4, []int{2, 2, 2, 2}},
		{10, 1, []int{10}},
		{3, 5, []int{1, 1, 1, 1, 1}}, // fewer workers than slots: everyone keeps one
		{5, 5, []int{1, 1, 1, 1, 1}},
		{11, 3, []int{4, 4, 3}},
	}
	for _, c := range cases {
		if got := splitWorkers(c.total, c.ring); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitWorkers(%d,%d) = %v, want %v", c.total, c.ring, got, c.want)
		}
	}
	// total<=0 means "all CPUs"; only the shape is stable across machines.
	if got := splitWorkers(0, 3); len(got) != 3 || got[0] < got[2] || got[2] < 1 {
		t.Errorf("splitWorkers(0,3) = %v, want 3 near-equal positive slots", got)
	}
}

// TestRunOrResumeCorruptCheckpoint pins the error message for a truncated
// checkpoint file: it must name the file and tell the user that deleting it
// restarts the search fresh, instead of surfacing a bare JSON decode error.
func TestRunOrResumeCorruptCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "trunc.ckpt")
	opt := Options{
		Core: core.Options{
			Seed: 5, Workers: 1, Population: 10, MaxSamples: 100,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       core.MemSearch{Fixed: fixedMem()},
		},
		Islands: 2, MigrateEvery: 1, Checkpoint: ckpt,
	}
	if _, _, err := Run(evaluatorFor(t, "mobilenetv2"), opt); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats, err := RunOrResume(evaluatorFor(t, "mobilenetv2"), opt, ckpt)
	if err == nil {
		t.Fatal("resume from a truncated checkpoint succeeded")
	}
	if stats != nil {
		t.Errorf("corrupt checkpoint returned stats: %+v", stats)
	}
	for _, want := range []string{ckpt, "delete the file"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestMigrationCounters pins the per-island exchange accounting: in a ring
// every island sends to its successor, so received counts are the sent
// counts rotated by one, totals match Migrations×Migrants bounds, and the
// counters survive a checkpoint round-trip (covered by DeepEqual in
// TestCheckpointResume since Stats now carries them).
func TestMigrationCounters(t *testing.T) {
	opt := Options{
		Core: core.Options{
			Seed: 9, Workers: 2, Population: 16, MaxSamples: 400,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       core.MemSearch{Fixed: fixedMem()},
		},
		Islands: 3, MigrateEvery: 2, Migrants: 2,
	}
	_, stats, err := Run(evaluatorFor(t, "mobilenetv2"), opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Migrations == 0 {
		t.Fatal("expected at least one migration barrier")
	}
	ring := 3
	if len(stats.MigrantsSent) != ring || len(stats.MigrantsReceived) != ring {
		t.Fatalf("counter lengths %d/%d, want %d", len(stats.MigrantsSent), len(stats.MigrantsReceived), ring)
	}
	for i := 0; i < ring; i++ {
		if got, want := stats.MigrantsReceived[(i+1)%ring], stats.MigrantsSent[i]; got != want {
			t.Errorf("island %d sent %d but successor received %d", i, want, got)
		}
		if stats.MigrantsSent[i] == 0 {
			t.Errorf("island %d sent no migrants over %d barriers", i, stats.Migrations)
		}
		if max := stats.Migrations * opt.Migrants; stats.MigrantsSent[i] > max {
			t.Errorf("island %d sent %d > %d possible", i, stats.MigrantsSent[i], max)
		}
	}
	// A solo ring never migrates and reports no counters.
	solo := opt
	solo.Islands = 1
	_, soloStats, err := Run(evaluatorFor(t, "mobilenetv2"), solo)
	if err != nil {
		t.Fatal(err)
	}
	if soloStats.MigrantsSent != nil || soloStats.MigrantsReceived != nil {
		t.Errorf("solo ring reported migration counters: %+v", soloStats)
	}
}
