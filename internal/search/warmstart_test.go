package search

import (
	"reflect"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/models"
)

// TestWarmStartBitIdentical pins the cache-snapshot contract across the
// model zoo: a search started from a loaded cost-cache snapshot returns the
// bit-identical best genome and Stats a cold search returns. The snapshot
// only changes which subgraph costs are computed vs looked up — never a
// cost value, never the search trajectory. Each model is checked against
// two snapshots: one primed by the identical run (every lookup warm) and
// one primed by a different-seed run (partial overlap, the realistic case).
func TestWarmStartBitIdentical(t *testing.T) {
	for _, model := range models.Names() {
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			opt := Options{Core: core.Options{
				Seed: 42, Workers: 2, Population: 30, MaxSamples: 600,
				Objective: eval.Objective{Metric: eval.MetricEMA},
				Mem:       core.MemSearch{Fixed: fixedMem()},
			}, Islands: 1}

			coldBest, coldStats, err := Run(evaluatorFor(t, model), opt)
			if err != nil {
				t.Fatal(err)
			}

			// Snapshot A: primed by the identical run — full coverage.
			primer := evaluatorFor(t, model)
			if _, _, err := Run(primer, opt); err != nil {
				t.Fatal(err)
			}
			full, err := primer.ExportCache()
			if err != nil {
				t.Fatal(err)
			}

			// Snapshot B: primed by a different seed — partial coverage.
			other := evaluatorFor(t, model)
			otherOpt := opt
			otherOpt.Core.Seed = 7
			if _, _, err := Run(other, otherOpt); err != nil {
				t.Fatal(err)
			}
			partial, err := other.ExportCache()
			if err != nil {
				t.Fatal(err)
			}

			for _, tc := range []struct {
				name string
				snap *eval.CacheSnapshot
			}{{"full-overlap", full}, {"partial-overlap", partial}} {
				warm := evaluatorFor(t, model)
				if _, err := warm.LoadCache(tc.snap); err != nil {
					t.Fatal(err)
				}
				warmBest, warmStats, err := Run(warm, opt)
				if err != nil {
					t.Fatal(err)
				}
				sameGenome(t, tc.name, coldBest, warmBest)
				if !reflect.DeepEqual(coldStats, warmStats) {
					t.Errorf("%s: stats differ: cold %+v warm %+v", tc.name, coldStats, warmStats)
				}
			}
		})
	}
}
