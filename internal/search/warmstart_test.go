package search

import (
	"reflect"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/tiling"
)

// TestWarmStartBitIdentical pins the cache-snapshot contract across the
// model zoo: a search started from a loaded cost-cache snapshot returns the
// bit-identical best genome and Stats a cold search returns. The snapshot
// only changes which subgraph costs are computed vs looked up — never a
// cost value, never the search trajectory. Each model is checked against
// three snapshots: one primed by the identical run (every lookup warm), one
// primed by a different-seed run (partial overlap, the realistic case), and
// one primed by a sibling hardware config sharing the core geometry (the
// cross-config warm start the geometry-keyed fingerprint exists for).
func TestWarmStartBitIdentical(t *testing.T) {
	for _, model := range models.Names() {
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			opt := Options{Core: core.Options{
				Seed: 42, Workers: 2, Population: 30, MaxSamples: 600,
				Objective: eval.Objective{Metric: eval.MetricEMA},
				Mem:       core.MemSearch{Fixed: fixedMem()},
			}, Islands: 1}

			coldBest, coldStats, err := Run(evaluatorFor(t, model), opt)
			if err != nil {
				t.Fatal(err)
			}

			// Snapshot A: primed by the identical run — full coverage.
			primer := evaluatorFor(t, model)
			if _, _, err := Run(primer, opt); err != nil {
				t.Fatal(err)
			}
			full, err := primer.ExportCache()
			if err != nil {
				t.Fatal(err)
			}

			// Snapshot B: primed by a different seed — partial coverage.
			other := evaluatorFor(t, model)
			otherOpt := opt
			otherOpt.Core.Seed = 7
			if _, _, err := Run(other, otherOpt); err != nil {
				t.Fatal(err)
			}
			partial, err := other.ExportCache()
			if err != nil {
				t.Fatal(err)
			}

			// Snapshot C: primed by a SIBLING config — same core geometry,
			// different core count, batch, and memory capacities. The
			// geometry-keyed fingerprint accepts it, and because raw subgraph
			// costs depend only on the geometry, warm-starting from a
			// different config's snapshot must still be bit-identical.
			sibPlatform := hw.DefaultPlatform()
			sibPlatform.Cores = 4
			sibPlatform.Batch = 2
			sibling := eval.MustNew(models.MustBuild(model), sibPlatform, tiling.DefaultConfig())
			sibOpt := opt
			sibOpt.Core.Seed = 11
			sibOpt.Core.Mem = core.MemSearch{Fixed: hw.MemConfig{
				Kind: hw.SeparateBuffer, GlobalBytes: 512 * hw.KiB, WeightBytes: 576 * hw.KiB}}
			if _, _, err := Run(sibling, sibOpt); err != nil {
				t.Fatal(err)
			}
			crossConfig, err := sibling.ExportCache()
			if err != nil {
				t.Fatal(err)
			}

			for _, tc := range []struct {
				name string
				snap *eval.CacheSnapshot
			}{{"full-overlap", full}, {"partial-overlap", partial}, {"cross-config", crossConfig}} {
				warm := evaluatorFor(t, model)
				if _, err := warm.LoadCache(tc.snap); err != nil {
					t.Fatal(err)
				}
				warmBest, warmStats, err := Run(warm, opt)
				if err != nil {
					t.Fatal(err)
				}
				sameGenome(t, tc.name, coldBest, warmBest)
				if !reflect.DeepEqual(coldStats, warmStats) {
					t.Errorf("%s: stats differ: cold %+v warm %+v", tc.name, coldStats, warmStats)
				}
			}

			// A geometry-mismatched snapshot must be refused, not loaded.
			otherGeom := hw.DefaultPlatform()
			otherGeom.Core.PERows = 2
			mismatched := eval.MustNew(models.MustBuild(model), otherGeom, tiling.DefaultConfig())
			if _, err := mismatched.LoadCache(full); err == nil {
				t.Error("geometry-mismatched snapshot load succeeded, want fingerprint error")
			}
		})
	}
}
