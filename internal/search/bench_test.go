package search

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
)

// BenchmarkSearchOrchestrator measures aggregate search throughput as the
// island count grows: K islands each run the same per-island sample budget
// over one shared evaluator, so the aggregate work scales with K while the
// wall clock is paid once per round of concurrent island steps. Two real
// effects drive the scaling:
//
//   - islands step concurrently, so on a multi-core host the GA's serial
//     phases (candidate generation, ordered commit) overlap across islands
//     — the single-population Amdahl ceiling the PR-1 worker pool could
//     never pass;
//   - the shared cost cache amortizes cold subgraph derivations across
//     islands, so even a single-core host gains whenever islands visit
//     overlapping subgraphs.
//
// The ≥2× floor at 4 islands is asserted only when the host actually has
// ≥4 CPUs (like the race-gated alloc pins, hardware-dependent floors are
// not asserted where the hardware cannot express them); the measured
// ratios are always reported, and cmd/benchreport records them in
// BENCH_searchorch.json.
func BenchmarkSearchOrchestrator(b *testing.B) {
	const perIslandSamples = 1000
	type key struct {
		model   string
		islands int
	}
	var mu sync.Mutex
	rates := map[key]float64{}

	for _, model := range []string{"resnet50", "googlenet", "nasnet"} {
		for _, islands := range []int{1, 2, 4} {
			name := fmt.Sprintf("model=%s/islands=%d", model, islands)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ev := evaluatorFor(b, model)
					opt := Options{
						Core: core.Options{
							Seed: 7, Population: 50, MaxSamples: perIslandSamples,
							Objective: eval.Objective{Metric: eval.MetricEMA},
							Mem:       core.MemSearch{Fixed: fixedMem()},
						},
						Islands:      islands,
						MigrateEvery: 5,
					}
					if _, _, err := Run(ev, opt); err != nil {
						b.Fatal(err)
					}
				}
				rate := float64(islands*perIslandSamples) * float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(rate, "samples/s")
				mu.Lock()
				rates[key{model, islands}] = rate
				mu.Unlock()

				if islands == 4 {
					base := rates[key{model, 1}]
					if base > 0 {
						ratio := rate / base
						b.ReportMetric(ratio, "x-vs-1-island")
						// The floor only means something where islands can
						// actually overlap (≥4 CPUs) and with more than one
						// measured iteration — CI's -benchtime=1x smoke run
						// is a single cold-start sample, far too noisy to
						// gate on.
						if runtime.GOMAXPROCS(0) >= 4 && b.N > 1 && ratio < 2 {
							b.Errorf("%s: aggregate throughput only %.2fx the single island (floor 2x on >=4 CPUs)",
								name, ratio)
						}
					}
				}
			})
		}
	}
}
