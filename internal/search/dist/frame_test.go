package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("{}"), []byte(`{"proto":1,"fingerprint":"x"}`), bytes.Repeat([]byte{0xAB}, 4096)}
	for ty := MsgError; ty <= msgTypeMax; ty++ {
		for _, p := range payloads {
			frame := EncodeFrame(ty, p)
			gotT, gotP, n, err := DecodeFrame(frame)
			if err != nil {
				t.Fatalf("type %d: decode: %v", ty, err)
			}
			if gotT != ty || n != len(frame) || !bytes.Equal(gotP, p) {
				t.Fatalf("type %d: round trip mismatch (type %d, n %d/%d)", ty, gotT, n, len(frame))
			}
			// Stream form agrees with the slice form.
			st, sp, err := ReadFrame(bytes.NewReader(frame))
			if err != nil || st != ty || !bytes.Equal(sp, p) {
				t.Fatalf("type %d: ReadFrame disagrees: %v", ty, err)
			}
		}
	}
}

func TestFrameDecodeConsumesPrefix(t *testing.T) {
	a := EncodeFrame(MsgStep, []byte(`{}`))
	b := EncodeFrame(MsgStepped, []byte(`{"progressed":[true]}`))
	stream := append(append([]byte{}, a...), b...)
	t1, _, n1, err := DecodeFrame(stream)
	if err != nil || t1 != MsgStep || n1 != len(a) {
		t.Fatalf("first frame: type %d n %d err %v", t1, n1, err)
	}
	t2, _, n2, err := DecodeFrame(stream[n1:])
	if err != nil || t2 != MsgStepped || n2 != len(b) {
		t.Fatalf("second frame: type %d n %d err %v", t2, n2, err)
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	good := EncodeFrame(MsgHello, []byte(`{"proto":1}`))

	corrupt := func(mutate func(f []byte)) []byte {
		f := append([]byte{}, good...)
		mutate(f)
		return f
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", good[:headerSize-1], ErrTruncated},
		{"missing payload", good[:len(good)-trailerSize-1], ErrTruncated},
		{"missing trailer", good[:len(good)-1], ErrTruncated},
		{"bad magic", corrupt(func(f []byte) { f[0] = 'X' }), ErrBadMagic},
		{"bad version", corrupt(func(f []byte) {
			binary.LittleEndian.PutUint32(f[len(frameMagic):], ProtocolVersion+1)
		}), ErrVersion},
		{"zero type", corrupt(func(f []byte) {
			binary.LittleEndian.PutUint32(f[len(frameMagic)+4:], 0)
		}), ErrBadType},
		{"unknown type", corrupt(func(f []byte) {
			binary.LittleEndian.PutUint32(f[len(frameMagic)+4:], uint32(msgTypeMax)+1)
		}), ErrBadType},
		{"oversized length", corrupt(func(f []byte) {
			binary.LittleEndian.PutUint32(f[len(frameMagic)+8:], MaxPayload+1)
		}), ErrFrameTooBig},
		{"flipped payload bit", corrupt(func(f []byte) { f[headerSize] ^= 0x01 }), ErrBadChecksum},
		{"flipped checksum bit", corrupt(func(f []byte) { f[len(f)-1] ^= 0x01 }), ErrBadChecksum},
	}
	for _, tc := range cases {
		if _, _, _, err := DecodeFrame(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		// The stream form classifies the same corruption the same way, except
		// that a clean zero-byte stream is io.EOF (session over, not an error).
		_, _, serr := ReadFrame(bytes.NewReader(tc.data))
		wantStream := tc.want
		if len(tc.data) == 0 {
			wantStream = io.EOF
		}
		if !errors.Is(serr, wantStream) {
			t.Errorf("%s: ReadFrame got %v, want %v", tc.name, serr, wantStream)
		}
	}
}

// FuzzDistFrameDecode drives the pure-slice decoder with arbitrary bytes: it
// must never panic, and any frame it accepts must re-encode to exactly the
// bytes it consumed (the codec is canonical — one valid encoding per
// message).
func FuzzDistFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame(MsgHello, []byte(`{"proto":1,"fingerprint":"abc"}`)))
	f.Add(EncodeFrame(MsgCommit, nil))
	f.Add(EncodeFrame(MsgResult, bytes.Repeat([]byte("x"), 300)))
	f.Add([]byte(frameMagic))
	f.Add(append([]byte(frameMagic), bytes.Repeat([]byte{0xFF}, 24)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		ty, payload, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < headerSize+trailerSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if !bytes.Equal(EncodeFrame(ty, payload), data[:n]) {
			t.Fatalf("accepted frame is not canonical")
		}
		// The stream form must agree byte for byte.
		st, sp, serr := ReadFrame(bytes.NewReader(data[:n]))
		if serr != nil || st != ty || !bytes.Equal(sp, payload) {
			t.Fatalf("ReadFrame disagrees with DecodeFrame: %v", serr)
		}
	})
}
