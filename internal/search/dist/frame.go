// Package dist runs the island-model search across processes: a coordinator
// drives round barriers over a fleet of worker processes, each hosting a
// contiguous slice of the migration ring (search.RingHost), connected over
// length-prefixed binary frames on localhost TCP.
//
// Determinism contract. The coordinator replays the single-process ring
// schedule exactly: every worker steps its islands MigrateEvery generations,
// then the coordinator collects EVERY worker's emigrant payloads before
// committing any of them, and delivers each payload to the ring successor —
// the same select-all-then-commit-all barrier as the in-process
// orchestrator. Because emigrant selection and commit are both island-local
// (each island draws only from its own StreamMigration RNG), the barrier
// ordering is the only cross-process invariant needed, and Run with any
// worker partitioning is bit-identical to search.Run with the same Options:
// same best genome, same Stats, byte-identical checkpoints. The async mode
// (Options.Async) gives the barrier up for lower coordination latency and is
// correspondingly non-deterministic.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
)

// Frame layout, all integers little-endian, mirroring the serialize cost-
// cache codec conventions (magic, version, trailing FNV-1a checksum):
//
//	magic   [8]byte  "COCCDIST"
//	version uint32   protocol version
//	type    uint32   message type
//	length  uint32   payload byte count
//	payload [length]byte (JSON message body)
//	sum     uint64   FNV-1a over everything before it
const (
	// ProtocolVersion gates the wire format and the message semantics.
	// Coordinator and worker refuse to talk across versions.
	ProtocolVersion = 1

	frameMagic  = "COCCDIST"
	headerSize  = len(frameMagic) + 4 + 4 + 4
	trailerSize = 8

	// MaxPayload bounds a single frame. Island snapshots of the largest zoo
	// models are single-digit MiB of JSON; 256 MiB rejects nonsense lengths
	// from corrupt or adversarial streams without constraining real use.
	MaxPayload = 256 << 20
)

// MsgType identifies a frame's message body.
type MsgType uint32

const (
	// MsgError carries errorMsg in either direction; the session is dead
	// after it.
	MsgError MsgType = iota + 1
	// MsgHello (coordinator→worker) opens a session with helloMsg;
	// MsgHelloAck answers with the worker's own helloMsg.
	MsgHello
	MsgHelloAck
	// MsgAssign hands the worker its ring slice, options, and optional
	// resume snapshots; MsgAssignAck confirms the RingHost is built.
	MsgAssign
	MsgAssignAck
	// MsgStep advances every hosted island one round; MsgStepped reports
	// per-island progress and exhaustion.
	MsgStep
	MsgStepped
	// MsgEmigrantsReq asks for the round's emigrant selection (only sent on
	// rounds that migrate, so migration-RNG draws match the single-process
	// schedule); MsgEmigrants answers with per-island payloads.
	MsgEmigrantsReq
	MsgEmigrants
	// MsgCommit delivers immigrants to hosted islands. One-way: TCP ordering
	// plus the worker's sequential frame loop guarantee commits land before
	// any later step or snapshot request on the same connection.
	MsgCommit
	// MsgSnapshotReq/MsgSnapshot fetch barrier-quiescent island snapshots
	// for the coordinator's aggregated checkpoint.
	MsgSnapshotReq
	MsgSnapshot
	// MsgResultReq/MsgResult fetch final per-island stats and best genomes.
	MsgResultReq
	MsgResult

	msgTypeMax = MsgResult
)

// Distinct decode errors, ordered by how early the frame breaks.
var (
	ErrBadMagic    = errors.New("dist: bad frame magic")
	ErrVersion     = errors.New("dist: unsupported protocol version")
	ErrBadType     = errors.New("dist: unknown message type")
	ErrFrameTooBig = errors.New("dist: frame payload exceeds limit")
	ErrTruncated   = errors.New("dist: truncated frame")
	ErrBadChecksum = errors.New("dist: frame checksum mismatch")
)

// EncodeFrame serializes one frame.
func EncodeFrame(t MsgType, payload []byte) []byte {
	buf := make([]byte, 0, headerSize+len(payload)+trailerSize)
	buf = append(buf, frameMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, ProtocolVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

// parseHeader validates a frame header and returns (type, payload length).
func parseHeader(hdr []byte) (MsgType, int, error) {
	if string(hdr[:len(frameMagic)]) != frameMagic {
		return 0, 0, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[len(frameMagic):]); v != ProtocolVersion {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, ProtocolVersion)
	}
	t := MsgType(binary.LittleEndian.Uint32(hdr[len(frameMagic)+4:]))
	if t == 0 || t > msgTypeMax {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadType, uint32(t))
	}
	n := binary.LittleEndian.Uint32(hdr[len(frameMagic)+8:])
	if n > MaxPayload {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	return t, int(n), nil
}

// checkSum verifies the trailing checksum of a complete frame buffer
// (header+payload followed by the 8-byte sum).
func checkSum(frame []byte) error {
	body, tail := frame[:len(frame)-trailerSize], frame[len(frame)-trailerSize:]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.LittleEndian.Uint64(tail) {
		return ErrBadChecksum
	}
	return nil
}

// DecodeFrame parses one frame from the front of data, returning the message
// type, its payload (aliasing data), and the total bytes consumed. This is
// the pure-slice form the fuzz target drives; ReadFrame is the stream form.
func DecodeFrame(data []byte) (MsgType, []byte, int, error) {
	if len(data) < headerSize {
		return 0, nil, 0, ErrTruncated
	}
	t, n, err := parseHeader(data[:headerSize])
	if err != nil {
		return 0, nil, 0, err
	}
	total := headerSize + n + trailerSize
	if len(data) < total {
		return 0, nil, 0, ErrTruncated
	}
	if err := checkSum(data[:total]); err != nil {
		return 0, nil, 0, err
	}
	return t, data[headerSize : headerSize+n], total, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	_, err := w.Write(EncodeFrame(t, payload))
	return err
}

// ReadFrame reads one frame from r. A clean EOF before the first header byte
// is returned as io.EOF (session over); anything shorter than a full frame
// is an error.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		// %w-chain the transport error so callers can still detect net.Error
		// timeouts (the dist wire's I/O deadlines) through the wrapper.
		return 0, nil, fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	t, n, err := parseHeader(hdr)
	if err != nil {
		return 0, nil, err
	}
	frame := make([]byte, headerSize+n+trailerSize)
	copy(frame, hdr)
	if _, err := io.ReadFull(r, frame[headerSize:]); err != nil {
		return 0, nil, fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	if err := checkSum(frame); err != nil {
		return 0, nil, err
	}
	return t, frame[headerSize : headerSize+n], nil
}
