package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync/atomic"
	"time"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/search"
	"cocco/internal/serialize"
)

// ErrDraining reports that the worker loop stopped because its ServeConfig
// Stop channel closed (e.g. coccow caught SIGINT/SIGTERM) rather than
// because the listener died. The in-flight session, if any, was aborted at
// its next frame boundary with a best-effort MsgError to the coordinator.
var ErrDraining = errors.New("dist: worker draining (shutdown signal)")

// ServeConfig tunes a worker's Serve loop.
type ServeConfig struct {
	// Workers is the scoring-goroutine budget (0 = all CPUs).
	Workers int
	// IOTimeout, when positive, deadlines every frame read and write on a
	// coordinator session; see Options.IOTimeout for how to size it. Zero
	// disables deadlines. Note a worker legitimately sits in a blocking
	// read for as long as the SLOWEST worker in the fleet takes a
	// MigrateEvery-round step, so this must comfortably exceed that.
	IOTimeout time.Duration
	// Stop, when non-nil, drains the worker once closed: the accept loop
	// refuses new sessions and an in-flight session is aborted at its next
	// frame boundary (the current frame handler — possibly a multi-
	// generation Step — finishes first). Serve then returns ErrDraining.
	Stop <-chan struct{}
}

// Serve accepts coordinator sessions on ln, one at a time, each driving a
// fresh search.RingHost over this process's evaluator. workers is the
// scoring-goroutine budget for this process (0 = all CPUs). Serve returns
// when the listener closes; a failed session is logged and the worker goes
// back to accepting, so a crashed-and-restarted coordinator can reconnect
// and resume from its checkpoint.
func Serve(ln net.Listener, ev *eval.Evaluator, workers int) error {
	return ServeWith(ln, ev, ServeConfig{Workers: workers})
}

// ServeWith is Serve with drain and I/O-deadline control.
func ServeWith(ln net.Listener, ev *eval.Evaluator, cfg ServeConfig) error {
	var draining atomic.Bool
	if cfg.Stop != nil {
		stopped := make(chan struct{})
		defer close(stopped)
		go func() {
			select {
			case <-cfg.Stop:
				draining.Store(true)
				// Unblock Accept; serveConn notices draining on its own.
				ln.Close()
			case <-stopped:
			}
		}()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if draining.Load() {
				return ErrDraining
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if err := serveConn(conn, ev, cfg, &draining); err != nil && err != io.EOF {
			log.Printf("dist worker: session from %s ended: %v", conn.RemoteAddr(), err)
		}
		if draining.Load() {
			return ErrDraining
		}
	}
}

// session is one coordinator connection's state.
type session struct {
	w       *wire
	ev      *eval.Evaluator
	workers int
	host    *search.RingHost
}

func serveConn(conn net.Conn, ev *eval.Evaluator, cfg ServeConfig, draining *atomic.Bool) error {
	defer conn.Close()
	s := &session{w: newWire(conn, cfg.IOTimeout), ev: ev, workers: cfg.Workers}
	if cfg.Stop != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-cfg.Stop:
				if draining != nil {
					// Store-before-kick so the read loop can't observe the
					// deadline error while draining still reads false.
					draining.Store(true)
				}
				// Kick the session out of its blocking read. Re-arm the
				// immediate deadline in a loop because the read path re-sets
				// a future deadline per frame when IOTimeout > 0.
				for {
					_ = conn.SetReadDeadline(time.Now())
					select {
					case <-done:
						return
					case <-time.After(50 * time.Millisecond):
					}
				}
			case <-done:
			}
		}()
	}
	for {
		t, payload, err := s.w.read()
		if err != nil {
			if draining != nil && draining.Load() {
				// Tell the coordinator why the session died before it sees a
				// bare connection reset; best-effort, the socket may be gone.
				_ = writeMsg(s.w, MsgError, errorMsg{Err: ErrDraining.Error()})
				return ErrDraining
			}
			if err == io.EOF {
				return io.EOF
			}
			return err
		}
		if err := s.handle(t, payload); err != nil {
			// Best-effort error frame, then drop the session: after a refused
			// hello/assign or a failed handler the shared state is suspect.
			_ = writeMsg(s.w, MsgError, errorMsg{Err: err.Error()})
			return err
		}
	}
}

func (s *session) handle(t MsgType, payload []byte) error {
	switch t {
	case MsgHello:
		var h helloMsg
		if err := json.Unmarshal(payload, &h); err != nil {
			return fmt.Errorf("dist: decode hello: %w", err)
		}
		if local := evFingerprint(s.ev); h.Fingerprint != local {
			return fmt.Errorf("dist: evaluator fingerprint mismatch:\n  coordinator %s\n  worker      %s", h.Fingerprint, local)
		}
		return writeMsg(s.w, MsgHelloAck, helloMsg{Proto: ProtocolVersion, Fingerprint: evFingerprint(s.ev)})

	case MsgAssign:
		var a assignMsg
		if err := json.Unmarshal(payload, &a); err != nil {
			return fmt.Errorf("dist: decode assign: %w", err)
		}
		opt, err := decodeOptions(a.Options, s.workers)
		if err != nil {
			return err
		}
		// The self-check that keeps optionsWire honest: a trajectory-shaping
		// field missing from the wire form changes the fingerprint.
		if local := search.Fingerprint(opt); local != a.Config {
			return fmt.Errorf("dist: options fingerprint mismatch after decode:\n  coordinator %s\n  worker      %s", a.Config, local)
		}
		host, err := search.NewRingHost(s.ev, opt, a.Lo, a.Hi)
		if err != nil {
			return err
		}
		if a.Islands != nil {
			if err := host.Restore(a.Islands); err != nil {
				return err
			}
		}
		s.host = host
		return writeMsg(s.w, MsgAssignAck, struct{}{})

	case MsgStep:
		if s.host == nil {
			return errors.New("dist: step before assign")
		}
		progressed := s.host.Step(s.host.Options().MigrateEvery)
		return writeMsg(s.w, MsgStepped, steppedMsg{Progressed: progressed, Done: s.host.Done()})

	case MsgEmigrantsReq:
		if s.host == nil {
			return errors.New("dist: emigrants before assign")
		}
		out := s.host.Emigrants()
		msg := emigrantsMsg{Out: make([][]serialize.GenomeJSON, len(out))}
		for i, gs := range out {
			for _, g := range gs {
				msg.Out[i] = append(msg.Out[i], *search.EncodeGenome(g, true))
			}
		}
		return writeMsg(s.w, MsgEmigrants, msg)

	case MsgCommit:
		if s.host == nil {
			return errors.New("dist: commit before assign")
		}
		var c commitMsg
		if err := json.Unmarshal(payload, &c); err != nil {
			return fmt.Errorf("dist: decode commit: %w", err)
		}
		gr := s.ev.Graph()
		for _, ci := range c.Islands {
			gs := make([]*core.Genome, 0, len(ci.Genomes))
			for k := range ci.Genomes {
				g, err := search.DecodeGenome(gr, &ci.Genomes[k], false)
				if err != nil {
					return fmt.Errorf("dist: commit island %d genome %d: %w", ci.Island, k, err)
				}
				gs = append(gs, g)
			}
			if err := s.host.Immigrate(ci.Island, gs); err != nil {
				return err
			}
		}
		return nil // one-way

	case MsgSnapshotReq:
		if s.host == nil {
			return errors.New("dist: snapshot before assign")
		}
		return writeMsg(s.w, MsgSnapshot, snapshotMsg{Islands: s.host.Snapshots()})

	case MsgResultReq:
		if s.host == nil {
			return errors.New("dist: result before assign")
		}
		msg := resultMsg{Stats: s.host.Stats()}
		for _, b := range s.host.Bests() {
			msg.Bests = append(msg.Bests, search.EncodeGenome(b, true))
		}
		return writeMsg(s.w, MsgResult, msg)

	case MsgError:
		var e errorMsg
		_ = json.Unmarshal(payload, &e)
		return fmt.Errorf("dist: coordinator error: %s", e.Err)

	default:
		return fmt.Errorf("dist: unexpected message type %d", t)
	}
}
