package dist

import (
	"errors"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"cocco/internal/search"
)

// silentListener accepts connections and never writes a byte — the shape of
// a hung or half-open peer.
func silentListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	return ln.Addr().String()
}

// TestWireReadTimeout pins the satellite bugfix at the wire layer: a read
// from a silent peer fails within the deadline instead of blocking forever,
// the error names the operation and duration, and the underlying net.Error
// stays detectable through every wrapper (including ErrTruncated).
func TestWireReadTimeout(t *testing.T) {
	addr := silentListener(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := newWire(conn, 50*time.Millisecond)
	start := time.Now()
	_, _, err = w.read()
	if err == nil {
		t.Fatal("read from silent peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("read took %v; the deadline did not fire", elapsed)
	}
	if !strings.Contains(err.Error(), "timed out after 50ms") {
		t.Errorf("timeout error does not name the deadline: %v", err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("net deadline not detectable through the wrapper chain: %v", err)
	}
}

// TestWireZeroTimeoutSetsNoDeadline: timeout 0 must leave the connection
// deadline-free (the mode every determinism test runs in).
func TestWireZeroTimeoutSetsNoDeadline(t *testing.T) {
	addr := silentListener(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := newWire(conn, 0)
	done := make(chan error, 1)
	go func() {
		_, _, err := w.read()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("read returned (%v) with no deadline and no data", err)
	case <-time.After(300 * time.Millisecond):
		// Still blocked: exactly right.
	}
}

// TestCoordinatorTimeoutNamesWorker: a fleet where one worker never answers
// the handshake fails the run within the I/O timeout, and the error carries
// that worker's address so an operator knows which machine to look at.
func TestCoordinatorTimeoutNamesWorker(t *testing.T) {
	model := "mobilenetv2"
	good := startWorker(t, model)
	silent := silentListener(t)
	start := time.Now()
	_, _, err := Run(evaluatorFor(t, model), Options{
		Search:    testOptions(),
		Workers:   []string{good, silent},
		IOTimeout: 200 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("run with a silent worker succeeded")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("run took %v to fail; deadline did not bound the hang", elapsed)
	}
	if !strings.Contains(err.Error(), silent) {
		t.Errorf("error does not name the silent worker %s: %v", silent, err)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error does not mention the timeout: %v", err)
	}
}

// TestCoordinatorReleasesWorkersOnHandshakeFailure pins the close-once
// satellite behaviorally: when one worker of a mixed fleet refuses the
// handshake (fingerprint mismatch), the coordinator must close every peer
// connection — workers serve one session at a time, so a leaked connection
// would leave the good workers stuck in a dead session and the follow-up run
// would hang at hello instead of succeeding.
func TestCoordinatorReleasesWorkersOnHandshakeFailure(t *testing.T) {
	good := startWorkers(t, "mobilenetv2", 2)
	bad := startWorker(t, "resnet50") // different model → fingerprint mismatch

	_, _, err := Run(evaluatorFor(t, "mobilenetv2"), Options{
		Search:  testOptions(),
		Workers: []string{good[0], good[1], bad},
	})
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("mixed fleet: got %v, want fingerprint mismatch", err)
	}

	// The IOTimeout turns a leak regression into a fast failure here rather
	// than a suite hang.
	best, _, err := Run(evaluatorFor(t, "mobilenetv2"), Options{
		Search:    testOptions(),
		Workers:   good,
		IOTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("good fleet after failed handshake: %v (leaked worker sessions?)", err)
	}
	if best == nil {
		t.Fatal("good fleet found no feasible genome")
	}
}

// TestProgressRejectedInDist: Options.Progress is observation-only and not
// forwarded across the wire; like Core.Init and Core.Trace it must be
// refused loudly rather than silently dropped.
func TestProgressRejectedInDist(t *testing.T) {
	opt := testOptions()
	opt.Progress = func(search.Progress) {}
	_, _, err := Run(evaluatorFor(t, "mobilenetv2"), Options{
		Search:  opt,
		Workers: []string{"127.0.0.1:1"},
	})
	if err == nil || !strings.Contains(err.Error(), "Progress") {
		t.Errorf("got %v, want Progress rejection", err)
	}
}

// TestWorkerDrain pins the coccow-signal satellite at the library layer:
// closing ServeConfig.Stop makes the worker refuse new sessions, abort the
// in-flight session at its next frame boundary with an error frame to the
// coordinator, and return ErrDraining.
func TestWorkerDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	served := make(chan error, 1)
	go func() {
		served <- ServeWith(ln, evaluatorFor(t, "mobilenetv2"), ServeConfig{Workers: 1, Stop: stop})
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := newWire(conn, 0)
	hello := helloMsg{Proto: ProtocolVersion, Fingerprint: evFingerprint(evaluatorFor(t, "mobilenetv2"))}
	var ack helloMsg
	if err := w.request(MsgHello, hello, MsgHelloAck, &ack); err != nil {
		t.Fatalf("handshake: %v", err)
	}

	// Worker is now blocked reading our next frame; drain it.
	close(stop)
	t2, payload, err := ReadFrame(w.r)
	if err != nil {
		t.Fatalf("expected an error frame before the close, got %v", err)
	}
	if t2 != MsgError || !strings.Contains(string(payload), "draining") {
		t.Errorf("got frame type %d payload %q, want MsgError mentioning draining", t2, payload)
	}

	select {
	case err := <-served:
		if !errors.Is(err, ErrDraining) {
			t.Errorf("ServeWith returned %v, want ErrDraining", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeWith did not return after Stop closed")
	}

	// And no new sessions: the listener is closed.
	if _, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		t.Error("worker accepted a new connection while draining")
	}
}

// TestDistWithIOTimeoutStillDeterministic: turning deadlines on (a healthy
// fleet never hits them) must not perturb the bit-exact equivalence with the
// single-process run.
func TestDistWithIOTimeoutStillDeterministic(t *testing.T) {
	model := "mobilenetv2"
	opt := testOptions()
	wantBest, wantStats, err := search.Run(evaluatorFor(t, model), opt)
	if err != nil {
		t.Fatal(err)
	}
	gotBest, gotStats, err := Run(evaluatorFor(t, model), Options{
		Search:    opt,
		Workers:   startWorkers(t, model, 2),
		IOTimeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameGenome(t, "deadlined", wantBest, gotBest)
	sameStats(t, "deadlined", wantStats, gotStats)
}
