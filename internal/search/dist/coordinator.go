package dist

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/search"
	"cocco/internal/serialize"
)

// Options configures a distributed run.
type Options struct {
	// Search is the full search configuration — identical to what a
	// single-process search.Run would take. Core.Workers is NOT sent to
	// workers; each worker process spends its own -workers budget.
	Search search.Options
	// Workers lists worker addresses (host:port). The ring is split into
	// contiguous slices across them in order: the first ring%K workers host
	// one extra island.
	Workers []string
	// Async drops the migration barrier: each worker's emigrants are
	// forwarded to their ring successors as soon as that worker reports
	// them, while other workers may still be stepping. Lower coordination
	// latency, non-deterministic results; checkpoints are unsupported.
	Async bool
	// DialTimeout bounds each worker connection attempt (default 10s).
	DialTimeout time.Duration
	// IOTimeout, when positive, sets a deadline on every frame read and
	// write to a worker, so a hung or half-open socket fails the round
	// with an actionable per-worker error instead of stalling the
	// migration barrier forever. It must exceed the longest legitimate
	// silence — the slowest worker's MigrateEvery-round step. Zero
	// disables deadlines (tests, trusted local fleets); cmd/cocco
	// defaults it to a few minutes.
	IOTimeout time.Duration
}

// peer is one connected worker and its ring slice.
type peer struct {
	addr   string
	w      *wire
	lo, hi int
}

// splitRing partitions ring islands into contiguous slices over k workers,
// first slices one larger when ring%k != 0. Mirrors splitWorkers' remainder
// policy so "7 islands over 5 workers" wastes nobody.
func splitRing(ring, k int) [][2]int {
	out := make([][2]int, k)
	per, rem := ring/k, ring%k
	lo := 0
	for i := range out {
		n := per
		if i < rem {
			n++
		}
		out[i] = [2]int{lo, lo + n}
		lo += n
	}
	return out
}

type coordinator struct {
	ev    *eval.Evaluator
	opt   Options
	sopt  search.Options // normalized
	ring  int
	peers []*peer

	rounds     int
	migrations int
	paused     bool
	sent, recv []int

	// closeOnce guarantees every peer connection is closed exactly once,
	// whichever of the (handshake-failure, run-failure, normal-finish)
	// paths gets there first.
	closeOnce sync.Once
}

// Run executes a distributed search from scratch. With the same
// search.Options, any worker partitioning is bit-identical to the
// single-process search.Run (async mode excepted).
func Run(ev *eval.Evaluator, opt Options) (*core.Genome, *search.Stats, error) {
	return run(ev, opt, nil)
}

// Resume continues a distributed search from a checkpoint snapshot written
// by a previous Run — or by a single-process search.Run with the same
// options: the checkpoint format is shared, so a fleet can pick up a
// single-process run and vice versa.
func Resume(ev *eval.Evaluator, opt Options, snapshot []byte) (*core.Genome, *search.Stats, error) {
	cp, err := serialize.DecodeCheckpoint(snapshot)
	if err != nil {
		return nil, nil, err
	}
	if err := search.CheckCheckpoint(cp, ev.Graph().Name, opt.Search); err != nil {
		return nil, nil, err
	}
	return run(ev, opt, cp)
}

// RunOrResume resumes from resumePath when the file exists, otherwise starts
// fresh — the same crash-restart contract as search.RunOrResume, including
// the corrupt-checkpoint error wrapping.
func RunOrResume(ev *eval.Evaluator, opt Options, resumePath string) (*core.Genome, *search.Stats, error) {
	if resumePath != "" {
		data, err := os.ReadFile(resumePath)
		if err == nil {
			best, stats, rerr := Resume(ev, opt, data)
			if rerr != nil && stats == nil {
				rerr = fmt.Errorf("dist: resume from checkpoint %s: %w (delete the file to restart the search from scratch)", resumePath, rerr)
			}
			return best, stats, rerr
		}
		if !os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("dist: read checkpoint: %w", err)
		}
	}
	return Run(ev, opt)
}

func run(ev *eval.Evaluator, opt Options, cp *serialize.CheckpointJSON) (*core.Genome, *search.Stats, error) {
	c, err := newCoordinator(ev, opt, cp)
	if c != nil {
		defer c.close()
	}
	if err != nil {
		return nil, nil, err
	}
	if opt.Async {
		if err := c.roundsAsync(); err != nil {
			return nil, nil, err
		}
	} else {
		if err := c.roundsSync(); err != nil {
			return nil, nil, err
		}
	}
	return c.finish()
}

func newCoordinator(ev *eval.Evaluator, opt Options, cp *serialize.CheckpointJSON) (*coordinator, error) {
	sopt := opt.Search.WithDefaults()
	if sopt.Core.Init != nil || sopt.Core.Trace != nil {
		return nil, errors.New("dist: Core.Init and Core.Trace are not supported in distributed runs")
	}
	if sopt.Progress != nil {
		// Silently dropping the callback would look like a stalled run to a
		// caller that relies on it; refuse loudly like Init/Trace.
		return nil, errors.New("dist: Options.Progress is not supported in distributed runs")
	}
	if len(opt.Workers) == 0 {
		return nil, errors.New("dist: no worker addresses")
	}
	ring := sopt.Islands + len(sopt.Scouts)
	if len(opt.Workers) > ring {
		return nil, fmt.Errorf("dist: %d workers for a %d-island ring; grow -islands/-scouts or drop workers", len(opt.Workers), ring)
	}
	if sopt.MaxRounds > 0 && sopt.Checkpoint == "" {
		return nil, errors.New("dist: MaxRounds requires a Checkpoint path to resume from")
	}
	if opt.Async && (sopt.Checkpoint != "" || cp != nil) {
		return nil, errors.New("dist: async mode is non-deterministic and does not support checkpoints; drop -dist-async or the checkpoint")
	}
	c := &coordinator{ev: ev, opt: opt, sopt: sopt, ring: ring}
	if cp != nil {
		c.rounds = cp.Round
		c.migrations = cp.Migrations
		c.sent = cp.MigrantsSent
		c.recv = cp.MigrantsReceived
	}

	dialTimeout := opt.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	slices := splitRing(ring, len(opt.Workers))
	for i, addr := range opt.Workers {
		conn, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err != nil {
			return c, fmt.Errorf("dist: worker %s: %w", addr, err)
		}
		c.peers = append(c.peers, &peer{addr: addr, w: newWire(conn, opt.IOTimeout), lo: slices[i][0], hi: slices[i][1]})
	}

	hello := helloMsg{Proto: ProtocolVersion, Fingerprint: evFingerprint(ev)}
	wireOpt := encodeOptions(sopt)
	config := search.Fingerprint(sopt)
	err := c.each(func(p *peer) error {
		var ack helloMsg
		if err := p.w.request(MsgHello, hello, MsgHelloAck, &ack); err != nil {
			return err
		}
		if ack.Fingerprint != hello.Fingerprint {
			return fmt.Errorf("evaluator fingerprint mismatch:\n  coordinator %s\n  worker      %s", hello.Fingerprint, ack.Fingerprint)
		}
		assign := assignMsg{Options: wireOpt, Config: config, Lo: p.lo, Hi: p.hi}
		if cp != nil {
			assign.Round = cp.Round
			assign.Migrations = cp.Migrations
			assign.Islands = cp.Islands[p.lo:p.hi]
		}
		return p.w.request(MsgAssign, assign, MsgAssignAck, nil)
	})
	if err != nil {
		return c, err
	}
	return c, nil
}

// close tears down every worker connection exactly once. It is reached from
// run's deferred cleanup on every path — handshake/assign failure (including
// the partial-fleet case where some workers connected and one failed),
// mid-run errors, and normal completion — and the Once keeps a second
// arrival from double-closing peers. Closing the connection is also what
// releases the surviving workers: their sequential frame loops see EOF and
// go back to accepting.
func (c *coordinator) close() {
	c.closeOnce.Do(func() {
		for _, p := range c.peers {
			if p.w != nil {
				p.w.c.Close()
			}
		}
	})
}

// each runs fn once per connected peer, concurrently, and joins errors
// annotated with the worker address.
func (c *coordinator) each(fn func(p *peer) error) error {
	errs := make([]error, len(c.peers))
	var wg sync.WaitGroup
	for i, p := range c.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			if err := fn(p); err != nil {
				errs[i] = fmt.Errorf("dist: worker %s: %w", p.addr, err)
			}
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ownerOf returns the peer hosting a global ring index.
func (c *coordinator) ownerOf(idx int) *peer {
	for _, p := range c.peers {
		if idx >= p.lo && idx < p.hi {
			return p
		}
	}
	return nil // unreachable: slices cover [0,ring)
}

// roundsSync is the deterministic schedule: step everyone, then hold the
// migration barrier — collect every worker's emigrants before committing
// any — then checkpoint, exactly like orchestrator.run.
func (c *coordinator) roundsSync() error {
	stepped := make([]steppedMsg, len(c.peers))
	startRound := c.rounds
	for {
		if err := c.eachIndexed(func(i int, p *peer) error {
			return p.w.request(MsgStep, struct{}{}, MsgStepped, &stepped[i])
		}); err != nil {
			return err
		}
		any := false
		for i, st := range stepped {
			if want := c.peers[i].hi - c.peers[i].lo; len(st.Progressed) != want || len(st.Done) != want {
				return fmt.Errorf("dist: worker %s reported %d islands, hosts %d", c.peers[i].addr, len(st.Progressed), want)
			}
			for _, b := range st.Progressed {
				any = any || b
			}
		}
		if !any {
			return nil
		}
		c.rounds++
		if c.ring > 1 {
			if err := c.migrate(); err != nil {
				return err
			}
		}
		if c.sopt.Checkpoint != "" && c.rounds%c.sopt.CheckpointEvery == 0 {
			if err := c.save(c.sopt.Checkpoint); err != nil {
				return err
			}
		}
		if c.sopt.MaxRounds > 0 && c.rounds-startRound >= c.sopt.MaxRounds {
			c.paused = !allDone(stepped)
			if c.paused && c.rounds%c.sopt.CheckpointEvery != 0 {
				if err := c.save(c.sopt.Checkpoint); err != nil {
					return err
				}
			}
			return nil
		}
	}
}

// eachIndexed is each with the peer's index exposed.
func (c *coordinator) eachIndexed(fn func(i int, p *peer) error) error {
	errs := make([]error, len(c.peers))
	var wg sync.WaitGroup
	for i, p := range c.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			if err := fn(i, p); err != nil {
				errs[i] = fmt.Errorf("dist: worker %s: %w", p.addr, err)
			}
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// allDone reports whether every island across every worker is exhausted.
// Exhaustion is unaffected by migration (immigrants consume no samples), so
// the pre-barrier flags are valid post-barrier too.
func allDone(stepped []steppedMsg) bool {
	for _, st := range stepped {
		for _, d := range st.Done {
			if !d {
				return false
			}
		}
	}
	return true
}

// migrate holds the barrier: every worker's emigrant payloads are collected
// before any commit is sent, then each payload goes to its ring successor.
// Selection and commit are island-local, so once the barrier ordering holds,
// the exchange is the single-process one.
func (c *coordinator) migrate() error {
	ems := make([]emigrantsMsg, len(c.peers))
	if err := c.eachIndexed(func(i int, p *peer) error {
		return p.w.request(MsgEmigrantsReq, struct{}{}, MsgEmigrants, &ems[i])
	}); err != nil {
		return err
	}
	// Barrier held: every selection is in hand. Route payloads.
	out := make([][]serialize.GenomeJSON, c.ring)
	for i, p := range c.peers {
		if len(ems[i].Out) != p.hi-p.lo {
			return fmt.Errorf("dist: worker %s sent %d emigrant sets, hosts %d islands", p.addr, len(ems[i].Out), p.hi-p.lo)
		}
		for j, gs := range ems[i].Out {
			out[p.lo+j] = gs
		}
	}
	if c.sent == nil {
		c.sent = make([]int, c.ring)
		c.recv = make([]int, c.ring)
	}
	commits := make(map[*peer]*commitMsg, len(c.peers))
	for i := 0; i < c.ring; i++ {
		dest := (i + 1) % c.ring
		p := c.ownerOf(dest)
		m := commits[p]
		if m == nil {
			m = &commitMsg{}
			commits[p] = m
		}
		m.Islands = append(m.Islands, commitIsland{Island: dest, Genomes: out[i]})
		c.sent[i] += len(out[i])
		c.recv[dest] += len(out[i])
	}
	if err := c.each(func(p *peer) error {
		m := commits[p]
		if m == nil {
			return nil
		}
		return writeMsg(p.w, MsgCommit, *m)
	}); err != nil {
		return err
	}
	c.migrations++
	return nil
}

// save aggregates per-worker island snapshots into one standard checkpoint,
// byte-identical to what a single-process run would write at this barrier.
// Commits were written to each worker before the snapshot request on the
// same ordered connection, so every snapshot is post-migration.
func (c *coordinator) save(path string) error {
	snaps := make([]snapshotMsg, len(c.peers))
	if err := c.eachIndexed(func(i int, p *peer) error {
		return p.w.request(MsgSnapshotReq, struct{}{}, MsgSnapshot, &snaps[i])
	}); err != nil {
		return err
	}
	cp := &serialize.CheckpointJSON{
		Graph:            c.ev.Graph().Name,
		Config:           search.Fingerprint(c.sopt),
		Round:            c.rounds,
		Migrations:       c.migrations,
		MigrantsSent:     c.sent,
		MigrantsReceived: c.recv,
	}
	for i, p := range c.peers {
		if len(snaps[i].Islands) != p.hi-p.lo {
			return fmt.Errorf("dist: worker %s sent %d snapshots, hosts %d islands", p.addr, len(snaps[i].Islands), p.hi-p.lo)
		}
		cp.Islands = append(cp.Islands, snaps[i].Islands...)
	}
	data, err := serialize.EncodeCheckpoint(cp)
	if err != nil {
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	if err := serialize.AtomicWriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	return nil
}

// roundsAsync drops the barrier: one driver goroutine per worker steps it
// and forwards its emigrants to ring successors the moment they arrive,
// while other workers are mid-step. Immigrants land whenever the
// destination worker next drains its connection — "eventual migration".
// Arrival order depends on scheduling, so results are not reproducible;
// this is the throughput mode, benchmarked against the deterministic one.
func (c *coordinator) roundsAsync() error {
	var mu sync.Mutex // rounds/migrations/sent/recv
	if c.ring > 1 {
		c.sent = make([]int, c.ring)
		c.recv = make([]int, c.ring)
	}
	err := c.each(func(p *peer) error {
		localRounds := 0
		for {
			var st steppedMsg
			if err := p.w.request(MsgStep, struct{}{}, MsgStepped, &st); err != nil {
				return err
			}
			any := false
			for _, b := range st.Progressed {
				any = any || b
			}
			if !any {
				mu.Lock()
				if localRounds > c.rounds {
					c.rounds = localRounds
				}
				mu.Unlock()
				return nil
			}
			localRounds++
			if c.ring == 1 {
				continue
			}
			var em emigrantsMsg
			if err := p.w.request(MsgEmigrantsReq, struct{}{}, MsgEmigrants, &em); err != nil {
				return err
			}
			for j, gs := range em.Out {
				src := p.lo + j
				dest := (src + 1) % c.ring
				dp := c.ownerOf(dest)
				if err := writeMsg(dp.w, MsgCommit, commitMsg{Islands: []commitIsland{{Island: dest, Genomes: gs}}}); err != nil {
					return err
				}
				mu.Lock()
				c.sent[src] += len(gs)
				c.recv[dest] += len(gs)
				mu.Unlock()
			}
			mu.Lock()
			c.migrations++
			mu.Unlock()
		}
	})
	return err
}

// finish aggregates per-worker results with the orchestrator's exact rules:
// strict-< best over ring order, summed sample counters.
func (c *coordinator) finish() (*core.Genome, *search.Stats, error) {
	results := make([]resultMsg, len(c.peers))
	if err := c.eachIndexed(func(i int, p *peer) error {
		return p.w.request(MsgResultReq, struct{}{}, MsgResult, &results[i])
	}); err != nil {
		return nil, nil, err
	}
	st := &search.Stats{
		Rounds: c.rounds, Migrations: c.migrations, BestIsland: -1, Paused: c.paused,
		MigrantsSent: c.sent, MigrantsReceived: c.recv,
	}
	gr := c.ev.Graph()
	bests := make([]*core.Genome, 0, c.ring)
	for i, p := range c.peers {
		if len(results[i].Stats) != p.hi-p.lo || len(results[i].Bests) != p.hi-p.lo {
			return nil, nil, fmt.Errorf("dist: worker %s sent %d results, hosts %d islands", p.addr, len(results[i].Stats), p.hi-p.lo)
		}
		for j, is := range results[i].Stats {
			st.IslandStats = append(st.IslandStats, is)
			st.Samples += is.Samples
			st.FeasibleSamples += is.FeasibleSamples
			st.MemoHits += is.MemoHits
			b, err := search.DecodeGenome(gr, results[i].Bests[j], true)
			if err != nil {
				return nil, nil, fmt.Errorf("dist: worker %s island %d best: %w", p.addr, p.lo+j, err)
			}
			bests = append(bests, b)
		}
	}
	best, bestIdx := search.AggregateBest(bests)
	st.BestIsland = bestIdx
	if best == nil {
		if c.paused {
			return nil, st, fmt.Errorf("dist: paused after %d rounds with no feasible genome yet (%d samples); resume to continue",
				st.Rounds, st.Samples)
		}
		return nil, st, fmt.Errorf("dist: no feasible genome found in %d samples across %d islands",
			st.Samples, c.ring)
	}
	return best, st, nil
}
