package dist

import (
	"encoding/json"
	"fmt"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/search"
	"cocco/internal/serialize"
)

// Message bodies are JSON — the same choice as the checkpoint codec, and for
// the same reason: encoding/json round-trips float64 bit-exactly, and every
// payload here is made of the checkpoint wire types (GenomeJSON,
// IslandJSON), so a genome that crosses the wire is the genome that would
// have crossed a checkpoint.

// helloMsg opens a session. Both sides exchange their evaluator fingerprint
// and refuse to proceed on mismatch: a worker evaluating a different graph,
// tiling, platform, or core geometry would silently diverge, never error.
type helloMsg struct {
	Proto       int    `json:"proto"`
	Fingerprint string `json:"fingerprint"`
}

// evFingerprint identifies everything the worker's evaluator must share with
// the coordinator's for results to be interchangeable: graph identity (name
// and size), tiling and core geometry (via the cost-cache fingerprint), and
// the full platform — cores, batch, energy, and area shape evaluation
// results even though they don't shape subgraph costing.
func evFingerprint(ev *eval.Evaluator) string {
	g := ev.Graph()
	return fmt.Sprintf("proto=%d %s nodes=%d edges=%d platform=%+v",
		ProtocolVersion, ev.CacheFingerprint(), g.Len(), g.Edges(), ev.Platform())
}

// optionsWire is the serializable subset of search.Options a worker needs to
// rebuild its ring slice. Workers, Checkpoint, CheckpointEvery, and
// MaxRounds stay coordinator-side (none shape the trajectory); Init and
// Trace are rejected by the coordinator (a func and seed partitions don't
// cross the wire). The encoding is self-verifying: the worker recomputes
// search.Fingerprint from the decoded options and compares it with the
// coordinator's, so a field added to Options but forgotten here fails the
// assignment loudly instead of diverging silently.
type optionsWire struct {
	Seed          int64   `json:"seed"`
	Population    int     `json:"population"`
	MaxSamples    int     `json:"max_samples"`
	Tournament    int     `json:"tournament"`
	CrossoverProb float64 `json:"crossover_prob"`
	PNewInit      float64 `json:"p_new_init"`
	MutModify     float64 `json:"mut_modify"`
	MutSplit      float64 `json:"mut_split"`
	MutMerge      float64 `json:"mut_merge"`
	MutDSE        float64 `json:"mut_dse"`
	DSESigmaSteps float64 `json:"dse_sigma_steps"`

	Metric int     `json:"metric"`
	Alpha  float64 `json:"alpha"`

	MemSearch bool                    `json:"mem_search,omitempty"`
	MemKind   string                  `json:"mem_kind"`
	MemGlobal hw.MemRange             `json:"mem_global,omitempty"`
	MemWeight hw.MemRange             `json:"mem_weight,omitempty"`
	MemFixed  serialize.MemConfigJSON `json:"mem_fixed"`

	DisableCrossover   bool `json:"disable_crossover,omitempty"`
	DisableInSituSplit bool `json:"disable_in_situ_split,omitempty"`
	DisableDeltaEval   bool `json:"disable_delta_eval,omitempty"`
	DisableGenomeMemo  bool `json:"disable_genome_memo,omitempty"`

	Islands      int      `json:"islands"`
	MigrateEvery int      `json:"migrate_every"`
	Migrants     int      `json:"migrants"`
	Scouts       []string `json:"scouts,omitempty"`
}

func encodeOptions(opt search.Options) optionsWire {
	c := opt.Core
	w := optionsWire{
		Seed: c.Seed, Population: c.Population, MaxSamples: c.MaxSamples,
		Tournament: c.Tournament, CrossoverProb: c.CrossoverProb, PNewInit: c.PNewInit,
		MutModify: c.MutModify, MutSplit: c.MutSplit, MutMerge: c.MutMerge, MutDSE: c.MutDSE,
		DSESigmaSteps: c.DSESigmaSteps,
		Metric:        int(c.Objective.Metric), Alpha: c.Objective.Alpha,
		MemSearch: c.Mem.Search, MemKind: c.Mem.Kind.String(),
		MemGlobal: c.Mem.Global, MemWeight: c.Mem.Weight,
		MemFixed:           serialize.EncodeMemConfig(c.Mem.Fixed),
		DisableCrossover:   c.DisableCrossover,
		DisableInSituSplit: c.DisableInSituSplit,
		DisableDeltaEval:   c.DisableDeltaEval,
		DisableGenomeMemo:  c.DisableGenomeMemo,
		Islands:            opt.Islands, MigrateEvery: opt.MigrateEvery, Migrants: opt.Migrants,
	}
	for _, s := range opt.Scouts {
		w.Scouts = append(w.Scouts, s.String())
	}
	return w
}

// decodeOptions rebuilds search.Options for a worker process; workers is the
// process-local scoring-goroutine budget.
func decodeOptions(w optionsWire, workers int) (search.Options, error) {
	kind, err := serialize.DecodeMemConfig(serialize.MemConfigJSON{Kind: w.MemKind, GlobalBytes: 1, WeightBytes: 1})
	if err != nil {
		return search.Options{}, err
	}
	fixed, err := serialize.DecodeMemConfig(w.MemFixed)
	if err != nil {
		return search.Options{}, err
	}
	opt := search.Options{
		Core: core.Options{
			Seed: w.Seed, Workers: workers, Population: w.Population, MaxSamples: w.MaxSamples,
			Tournament: w.Tournament, CrossoverProb: w.CrossoverProb, PNewInit: w.PNewInit,
			MutModify: w.MutModify, MutSplit: w.MutSplit, MutMerge: w.MutMerge, MutDSE: w.MutDSE,
			DSESigmaSteps: w.DSESigmaSteps,
			Objective:     eval.Objective{Metric: eval.Metric(w.Metric), Alpha: w.Alpha},
			Mem: core.MemSearch{
				Search: w.MemSearch, Kind: kind.Kind,
				Global: w.MemGlobal, Weight: w.MemWeight, Fixed: fixed,
			},
			DisableCrossover:   w.DisableCrossover,
			DisableInSituSplit: w.DisableInSituSplit,
			DisableDeltaEval:   w.DisableDeltaEval,
			DisableGenomeMemo:  w.DisableGenomeMemo,
		},
		Islands:      w.Islands,
		MigrateEvery: w.MigrateEvery,
		Migrants:     w.Migrants,
	}
	for _, s := range w.Scouts {
		switch s {
		case "sa":
			opt.Scouts = append(opt.Scouts, search.ScoutSA)
		case "greedy":
			opt.Scouts = append(opt.Scouts, search.ScoutGreedy)
		default:
			return search.Options{}, fmt.Errorf("dist: unknown scout kind %q", s)
		}
	}
	return opt, nil
}

// assignMsg hands a worker its slice of the ring. On resume, Round and
// Migrations carry the checkpoint position and Islands the slice's restored
// snapshots; on a fresh run, all three are zero.
type assignMsg struct {
	Options optionsWire `json:"options"`
	// Config is the coordinator's search.Fingerprint for the full Options;
	// the worker recomputes it from the decoded subset and must agree.
	Config     string                 `json:"config"`
	Lo         int                    `json:"lo"`
	Hi         int                    `json:"hi"`
	Round      int                    `json:"round,omitempty"`
	Migrations int                    `json:"migrations,omitempty"`
	Islands    []serialize.IslandJSON `json:"islands,omitempty"`
}

// steppedMsg reports one round of local stepping.
type steppedMsg struct {
	Progressed []bool `json:"progressed"`
	Done       []bool `json:"done"`
}

// emigrantsMsg carries each hosted island's migrant selection, in ring
// order. Genomes travel with their evaluation results: that is exactly what
// an in-process clone carries, so a scout adopting a migrant sees identical
// state either way.
type emigrantsMsg struct {
	Out [][]serialize.GenomeJSON `json:"out"`
}

// commitIsland delivers immigrants to one hosted island (global ring index).
type commitIsland struct {
	Island  int                    `json:"island"`
	Genomes []serialize.GenomeJSON `json:"genomes"`
}

// commitMsg commits one or more islands' immigrants. No reply: the worker's
// sequential frame loop applies it before any later request on the session.
type commitMsg struct {
	Islands []commitIsland `json:"islands"`
}

// snapshotMsg returns barrier-quiescent snapshots for the hosted slice.
type snapshotMsg struct {
	Islands []serialize.IslandJSON `json:"islands"`
}

// resultMsg returns the hosted islands' final statistics and best genomes
// (nil entries for islands with no feasible best), in ring order.
type resultMsg struct {
	Stats []core.Stats            `json:"stats"`
	Bests []*serialize.GenomeJSON `json:"bests"`
}

// errorMsg terminates a session with a reason.
type errorMsg struct {
	Err string `json:"err"`
}

// writeMsg marshals body and writes it as one frame.
func writeMsg(w frameWriter, t MsgType, body any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("dist: encode %d: %w", t, err)
	}
	return w.writeFrame(t, payload)
}
