package dist

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/search"
	"cocco/internal/tiling"
)

func fixedMem() hw.MemConfig {
	return hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
}

func evaluatorFor(t testing.TB, model string) *eval.Evaluator {
	t.Helper()
	return eval.MustNew(models.MustBuild(model), hw.DefaultPlatform(), tiling.DefaultConfig())
}

// startWorker runs an in-process worker — its own evaluator, real TCP on a
// loopback port — and returns its address. The coordinator talks to it
// through the exact byte protocol a separate process would see.
func startWorker(t testing.TB, model string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, evaluatorFor(t, model), 1)
	return ln.Addr().String()
}

func startWorkers(t testing.TB, model string, n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = startWorker(t, model)
	}
	return addrs
}

// testOptions is the shared budget for the equivalence tests: a 3-island
// ring (2 GA + 1 SA scout) so both migration and scout adoption cross the
// wire.
func testOptions() search.Options {
	return search.Options{
		Core: core.Options{
			Seed: 11, Workers: 1, Population: 20, MaxSamples: 600,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       core.MemSearch{Fixed: fixedMem()},
		},
		Islands:      2,
		MigrateEvery: 2,
		Scouts:       []search.ScoutKind{search.ScoutSA},
	}
}

// sameGenome asserts bit-exact equality: assignment, memory config, cost,
// and every evaluation-result field (floats compared by bits).
func sameGenome(t *testing.T, label string, a, b *core.Genome) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: one genome is nil (a=%v b=%v)", label, a != nil, b != nil)
	}
	if a == nil {
		return
	}
	if !reflect.DeepEqual(a.P.Assignment(), b.P.Assignment()) {
		t.Errorf("%s: assignments differ", label)
	}
	if a.Mem != b.Mem {
		t.Errorf("%s: mem %v != %v", label, a.Mem, b.Mem)
	}
	if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) {
		t.Errorf("%s: cost %v != %v", label, a.Cost, b.Cost)
	}
	ra, rb := a.Res, b.Res
	if (ra == nil) != (rb == nil) {
		t.Fatalf("%s: one result is nil", label)
	}
	if ra == nil {
		return
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("%s: results differ: %+v vs %+v", label, ra, rb)
	}
}

func sameStats(t *testing.T, label string, want, got *search.Stats) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: stats differ:\nwant %+v\ngot  %+v", label, want, got)
	}
}

// TestDistMatchesSingleProcess is the tentpole contract: dist.Run over 2 and
// 3 worker partitionings of the ring is bit-identical — best genome and full
// Stats — to single-process search.Run with the same Options, on three zoo
// models.
func TestDistMatchesSingleProcess(t *testing.T) {
	for _, model := range []string{"resnet50", "googlenet", "mobilenetv2"} {
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			opt := testOptions()
			wantBest, wantStats, err := search.Run(evaluatorFor(t, model), opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 3} {
				label := fmt.Sprintf("%s/%d-workers", model, k)
				gotBest, gotStats, err := Run(evaluatorFor(t, model), Options{
					Search:  opt,
					Workers: startWorkers(t, model, k),
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				sameGenome(t, label, wantBest, gotBest)
				sameStats(t, label, wantStats, gotStats)
			}
		})
	}
}

// TestDistCheckpointBytesMatch pins that the coordinator's aggregated
// checkpoint is byte-identical to the one a single-process run writes at the
// same barrier — so either side can resume the other's file.
func TestDistCheckpointBytesMatch(t *testing.T) {
	model := "mobilenetv2"
	dir := t.TempDir()

	sopt := testOptions()
	sopt.Checkpoint = filepath.Join(dir, "single.ckpt")
	if _, _, err := search.Run(evaluatorFor(t, model), sopt); err != nil {
		t.Fatal(err)
	}
	single, err := os.ReadFile(sopt.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{2, 3} {
		dopt := testOptions()
		dopt.Checkpoint = filepath.Join(dir, fmt.Sprintf("dist%d.ckpt", k))
		if _, _, err := Run(evaluatorFor(t, model), Options{
			Search:  dopt,
			Workers: startWorkers(t, model, k),
		}); err != nil {
			t.Fatal(err)
		}
		distBytes, err := os.ReadFile(dopt.Checkpoint)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single, distBytes) {
			t.Errorf("%d workers: checkpoint bytes differ from single-process (%d vs %d bytes)", k, len(distBytes), len(single))
		}
	}
}

// TestDistResumeAcrossPartitionings pauses a 2-worker fleet at MaxRounds,
// then resumes the checkpoint on a 3-worker fleet: the repartitioned,
// paused-and-resumed run must be bit-identical to an uninterrupted
// single-process run.
func TestDistResumeAcrossPartitionings(t *testing.T) {
	model := "googlenet"
	opt := testOptions()
	wantBest, wantStats, err := search.Run(evaluatorFor(t, model), opt)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "dist.ckpt")
	popt := testOptions()
	popt.Checkpoint = ckpt
	popt.MaxRounds = 2
	_, pst, perr := Run(evaluatorFor(t, model), Options{
		Search:  popt,
		Workers: startWorkers(t, model, 2),
	})
	if pst == nil || !pst.Paused {
		t.Fatalf("first leg did not pause (stats %+v, err %v)", pst, perr)
	}

	ropt := testOptions()
	ropt.Checkpoint = ckpt
	gotBest, gotStats, err := RunOrResume(evaluatorFor(t, model), Options{
		Search:  ropt,
		Workers: startWorkers(t, model, 3),
	}, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	sameGenome(t, "resumed", wantBest, gotBest)
	sameStats(t, "resumed", wantStats, gotStats)
}

// TestDistResumesSingleProcessCheckpoint pins the shared-format claim in the
// other direction: a checkpoint written by a paused single-process run is
// picked up by a worker fleet and finishes bit-identical to the
// uninterrupted single-process run.
func TestDistResumesSingleProcessCheckpoint(t *testing.T) {
	model := "resnet50"
	opt := testOptions()
	wantBest, wantStats, err := search.Run(evaluatorFor(t, model), opt)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "single.ckpt")
	popt := testOptions()
	popt.Checkpoint = ckpt
	popt.MaxRounds = 2
	if _, pst, perr := search.Run(evaluatorFor(t, model), popt); pst == nil || !pst.Paused {
		t.Fatalf("single-process leg did not pause (stats %+v, err %v)", pst, perr)
	}

	ropt := testOptions()
	ropt.Checkpoint = ckpt
	gotBest, gotStats, err := RunOrResume(evaluatorFor(t, model), Options{
		Search:  ropt,
		Workers: startWorkers(t, model, 2),
	}, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	sameGenome(t, "fleet-resumed", wantBest, gotBest)
	sameStats(t, "fleet-resumed", wantStats, gotStats)
}

// TestDistAsyncSmoke: async mode finds a feasible genome; no determinism
// claim — that is exactly what async gives up.
func TestDistAsyncSmoke(t *testing.T) {
	model := "mobilenetv2"
	best, st, err := Run(evaluatorFor(t, model), Options{
		Search:  testOptions(),
		Workers: startWorkers(t, model, 2),
		Async:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || st.Samples == 0 || st.Rounds == 0 {
		t.Fatalf("async run produced no work: best=%v stats=%+v", best != nil, st)
	}
}

func TestDistOptionValidation(t *testing.T) {
	ev := evaluatorFor(t, "mobilenetv2")
	base := testOptions() // ring = 3
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{"no workers", Options{Search: base}, "no worker addresses"},
		{"too many workers", Options{Search: base, Workers: []string{"a", "b", "c", "d"}}, "4 workers for a 3-island ring"},
		{"max rounds without checkpoint", Options{
			Search:  func() search.Options { o := base; o.MaxRounds = 1; return o }(),
			Workers: []string{"a"},
		}, "MaxRounds requires a Checkpoint"},
		{"async checkpoint", Options{
			Search:  func() search.Options { o := base; o.Checkpoint = "x.ckpt"; return o }(),
			Workers: []string{"a"},
			Async:   true,
		}, "async mode is non-deterministic"},
	}
	for _, tc := range cases {
		if _, _, err := Run(ev, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestSplitRing(t *testing.T) {
	cases := []struct {
		ring, k int
		want    [][2]int
	}{
		{3, 2, [][2]int{{0, 2}, {2, 3}}},
		{3, 3, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{7, 3, [][2]int{{0, 3}, {3, 5}, {5, 7}}},
		{4, 1, [][2]int{{0, 4}}},
	}
	for _, tc := range cases {
		if got := splitRing(tc.ring, tc.k); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitRing(%d,%d) = %v, want %v", tc.ring, tc.k, got, tc.want)
		}
	}
}

// TestDistWorkerProcess is not a test: it is the worker main for the
// kill-and-resume fault-injection test, entered when the test binary is
// re-executed with COCCO_DIST_TEST_WORKER set. It serves until killed.
func TestDistWorkerProcess(t *testing.T) {
	if os.Getenv("COCCO_DIST_TEST_WORKER") == "" {
		t.Skip("worker-process helper; set COCCO_DIST_TEST_WORKER to run")
	}
	model := os.Getenv("COCCO_DIST_TEST_MODEL")
	addrFile := os.Getenv("COCCO_DIST_TEST_ADDRFILE")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	if err := Serve(ln, evaluatorFor(t, model), 1); err != nil {
		t.Fatal(err)
	}
}

// spawnWorkerProc re-executes this test binary as a real worker process and
// returns its published address.
func spawnWorkerProc(t *testing.T, model, dir string, i int) (string, *exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(dir, fmt.Sprintf("worker%d.addr", i))
	cmd := exec.Command(exe, "-test.run", "^TestDistWorkerProcess$")
	cmd.Env = append(os.Environ(),
		"COCCO_DIST_TEST_WORKER=1",
		"COCCO_DIST_TEST_MODEL="+model,
		"COCCO_DIST_TEST_ADDRFILE="+addrFile,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			return string(data), cmd
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %d never published its address", i)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDistKillAndResume is the fault-injection leg: a 2-process fleet is
// killed mid-run (one worker SIGKILLed once the first checkpoint lands), and
// a fresh fleet resuming the checkpoint must finish bit-identical to an
// uninterrupted single-process run.
func TestDistKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	model := "mobilenetv2"
	opt := testOptions()
	wantBest, wantStats, err := search.Run(evaluatorFor(t, model), opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "dist.ckpt")
	addr0, _ := spawnWorkerProc(t, model, dir, 0)
	addr1, victim := spawnWorkerProc(t, model, dir, 1)

	copt := testOptions()
	copt.Checkpoint = ckpt
	type result struct {
		best  *core.Genome
		stats *search.Stats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		best, st, err := RunOrResume(evaluatorFor(t, model), Options{
			Search:      copt,
			Workers:     []string{addr0, addr1},
			DialTimeout: 30 * time.Second,
		}, ckpt)
		done <- result{best, st, err}
	}()

	// Kill one worker as soon as the first checkpoint barrier has been
	// written, i.e. mid-run with state on disk.
	deadline := time.Now().Add(120 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared before the kill window closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.Process.Kill()
	first := <-done
	if first.err == nil {
		// The fleet beat the kill to the finish line; the run is then simply
		// a full distributed run and must already match.
		t.Log("fleet finished before the kill landed; checking equivalence directly")
		sameGenome(t, "unkilled", wantBest, first.best)
		sameStats(t, "unkilled", wantStats, first.stats)
		return
	}
	t.Logf("fleet died as intended: %v", first.err)

	gotBest, gotStats, err := RunOrResume(evaluatorFor(t, model), Options{
		Search:  copt,
		Workers: startWorkers(t, model, 2),
	}, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	sameGenome(t, "resumed", wantBest, gotBest)
	sameStats(t, "resumed", wantStats, gotStats)
}
