package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// frameWriter is the minimal sink writeMsg needs.
type frameWriter interface {
	writeFrame(t MsgType, payload []byte) error
}

// wire wraps one connection with buffered reads and mutex-serialized writes.
// The mutex matters in async mode, where commit frames for a worker are
// forwarded by other workers' driver goroutines and must not interleave
// bytes with that worker's own request stream.
type wire struct {
	c   net.Conn
	r   *bufio.Reader
	wmu sync.Mutex
}

func newWire(c net.Conn) *wire {
	return &wire{c: c, r: bufio.NewReaderSize(c, 1<<16)}
}

func (w *wire) writeFrame(t MsgType, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return WriteFrame(w.c, t, payload)
}

func (w *wire) read() (MsgType, []byte, error) {
	return ReadFrame(w.r)
}

// readMsg reads one frame, surfaces MsgError bodies as Go errors, enforces
// the expected type, and unmarshals into reply (which may be nil for
// bodyless acks).
func (w *wire) readMsg(want MsgType, reply any) error {
	t, payload, err := w.read()
	if err != nil {
		return err
	}
	if t == MsgError {
		var e errorMsg
		if json.Unmarshal(payload, &e) == nil && e.Err != "" {
			return fmt.Errorf("dist: peer error: %s", e.Err)
		}
		return fmt.Errorf("dist: peer error")
	}
	if t != want {
		return fmt.Errorf("dist: got message type %d, want %d", t, want)
	}
	if reply == nil {
		return nil
	}
	if err := json.Unmarshal(payload, reply); err != nil {
		return fmt.Errorf("dist: decode message %d: %w", t, err)
	}
	return nil
}

// request sends one message and reads its typed reply.
func (w *wire) request(t MsgType, body any, wantReply MsgType, reply any) error {
	if err := writeMsg(w, t, body); err != nil {
		return err
	}
	return w.readMsg(wantReply, reply)
}
