package dist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// frameWriter is the minimal sink writeMsg needs.
type frameWriter interface {
	writeFrame(t MsgType, payload []byte) error
}

// wire wraps one connection with buffered reads, mutex-serialized writes,
// and optional per-frame I/O deadlines. The mutex matters in async mode,
// where commit frames for a worker are forwarded by other workers' driver
// goroutines and must not interleave bytes with that worker's own request
// stream.
//
// The deadline matters for liveness: without one, a hung or half-open peer
// socket blocks a frame read (or a write into a full kernel buffer)
// forever — on the coordinator that stalls the migration barrier for the
// whole fleet. timeout <= 0 disables deadlines (tests, trusted local
// fleets); when set, it must exceed the longest interval a peer can
// legitimately go silent, i.e. the slowest worker's MigrateEvery-round
// step.
type wire struct {
	c       net.Conn
	r       *bufio.Reader
	wmu     sync.Mutex
	timeout time.Duration
}

func newWire(c net.Conn, timeout time.Duration) *wire {
	return &wire{c: c, r: bufio.NewReaderSize(c, 1<<16), timeout: timeout}
}

// wrapTimeout makes deadline expiry actionable: the raw error is a bare
// "i/o timeout" with no hint of which side gave up or after how long. The
// caller (coordinator each/eachIndexed, worker session log) prefixes the
// peer address.
func (w *wire) wrapTimeout(op string, err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("dist: frame %s timed out after %v (hung or half-open peer): %w", op, w.timeout, err)
	}
	return err
}

func (w *wire) writeFrame(t MsgType, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if w.timeout > 0 {
		_ = w.c.SetWriteDeadline(time.Now().Add(w.timeout))
	}
	return w.wrapTimeout("write", WriteFrame(w.c, t, payload))
}

func (w *wire) read() (MsgType, []byte, error) {
	if w.timeout > 0 {
		_ = w.c.SetReadDeadline(time.Now().Add(w.timeout))
	}
	t, payload, err := ReadFrame(w.r)
	return t, payload, w.wrapTimeout("read", err)
}

// readMsg reads one frame, surfaces MsgError bodies as Go errors, enforces
// the expected type, and unmarshals into reply (which may be nil for
// bodyless acks).
func (w *wire) readMsg(want MsgType, reply any) error {
	t, payload, err := w.read()
	if err != nil {
		return err
	}
	if t == MsgError {
		var e errorMsg
		if json.Unmarshal(payload, &e) == nil && e.Err != "" {
			return fmt.Errorf("dist: peer error: %s", e.Err)
		}
		return fmt.Errorf("dist: peer error")
	}
	if t != want {
		return fmt.Errorf("dist: got message type %d, want %d", t, want)
	}
	if reply == nil {
		return nil
	}
	if err := json.Unmarshal(payload, reply); err != nil {
		return fmt.Errorf("dist: decode message %d: %w", t, err)
	}
	return nil
}

// request sends one message and reads its typed reply.
func (w *wire) request(t MsgType, body any, wantReply MsgType, reply any) error {
	if err := writeMsg(w, t, body); err != nil {
		return err
	}
	return w.readMsg(wantReply, reply)
}
