package search

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/testutil"
	"cocco/internal/tiling"
)

// TestDifferentialRandomDAGs is the property-based cross-engine suite: on
// ~50 generated random DAGs it asserts that every engine configuration the
// stack claims equivalent actually produces identical results —
//
//   - Evaluator.Partition vs Evaluator.PartitionDelta on mutated partitions,
//   - the GA with delta eval vs full recompute (DisableDeltaEval),
//   - the GA with the genome memo on vs off (DisableGenomeMemo),
//   - Workers=1 vs Workers=7,
//   - Islands=1 under the orchestrator vs plain core.Run,
//
// varying graph shape (depth, join density, skip probability, channel
// ranges) and memory pressure so the repair path, infeasibility handling,
// and join-heavy partitions are all exercised.
func TestDifferentialRandomDAGs(t *testing.T) {
	const cases = 50
	for i := 0; i < cases; i++ {
		i := i
		t.Run(fmt.Sprintf("dag%02d", i), func(t *testing.T) {
			t.Parallel()
			n := 6 + (i*7)%30
			g := testutil.RandomDAG(int64(1000+i), n, testutil.DAGOpts{
				Layers:      2 + i%7,
				PJoin:       float64(i%4) * 0.15,
				PSkip:       float64(i%3) * 0.2,
				MaxFanIn:    1 + i%3,
				MinChannels: 8 + 4*(i%4),
				MaxChannels: 32 + 16*(i%5),
			})
			mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
			if i%3 == 1 {
				// Tight buffers: forces the in-situ split repair to fire.
				mem = hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 64 * hw.KiB, WeightBytes: 96 * hw.KiB}
			}
			ev := func() *eval.Evaluator {
				return eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
			}

			// Delta vs full evaluation over a mutated-partition stream.
			e := ev()
			rng := rand.New(rand.NewSource(int64(i)))
			p := core.RandomPartition(g, rng, 0.3)
			for k := 0; k < 8; k++ {
				full := e.Partition(p.Clone(), mem)
				delta := e.PartitionDelta(p, mem)
				if !reflect.DeepEqual(full, delta) {
					t.Fatalf("delta vs full eval differ on mutation %d:\nfull:  %+v\ndelta: %+v", k, full, delta)
				}
				p = core.ApplyRandomMutation(g, rng, p)
			}

			base := core.Options{
				Seed: int64(100 + i), Workers: 2, Population: 12, MaxSamples: 150,
				Objective: eval.Objective{Metric: eval.MetricEMA},
				Mem:       core.MemSearch{Fixed: mem},
			}
			type run struct {
				name  string
				best  *core.Genome
				stats *core.Stats
			}
			do := func(name string, mod func(*core.Options)) run {
				opt := base
				if mod != nil {
					mod(&opt)
				}
				best, stats, err := core.Run(ev(), opt)
				if err != nil {
					// Tight-memory DAGs may legitimately have no feasible
					// genome; every engine must then agree on that too.
					return run{name: name, stats: stats}
				}
				return run{name, best, stats}
			}
			ref := do("ref", nil)
			variants := []run{
				do("full-eval", func(o *core.Options) { o.DisableDeltaEval = true }),
				do("no-memo", func(o *core.Options) { o.DisableGenomeMemo = true }),
				do("workers-1", func(o *core.Options) { o.Workers = 1 }),
				do("workers-7", func(o *core.Options) { o.Workers = 7 }),
			}
			islBest, islStats, islErr := Run(ev(), Options{Core: base, Islands: 1})
			if (ref.best == nil) != (islErr != nil) {
				t.Fatalf("islands=1 feasibility differs from core.Run: %v", islErr)
			}
			if ref.best != nil {
				variants = append(variants, run{"islands-1", islBest, &islStats.IslandStats[0]})
			}

			for _, v := range variants {
				if (ref.best == nil) != (v.best == nil) {
					t.Fatalf("%s: feasibility differs from ref", v.name)
				}
				if ref.best != nil {
					sameGenome(t, v.name, ref.best, v.best)
				}
				sameStats := *ref.stats
				other := *v.stats
				if v.name == "no-memo" {
					// The memo never changes the trajectory, only how many
					// samples were served from it.
					if other.MemoHits != 0 {
						t.Errorf("no-memo run reported %d memo hits", other.MemoHits)
					}
					sameStats.MemoHits, other.MemoHits = 0, 0
				}
				if !reflect.DeepEqual(sameStats, other) {
					t.Errorf("%s: stats differ:\nref: %+v\ngot: %+v", v.name, sameStats, other)
				}
			}
		})
	}
}
