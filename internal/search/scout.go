package search

import (
	"fmt"
	"math"
	"math/rand"

	"cocco/internal/baselines"
	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/serialize"
)

// Scout islands run non-GA searches inside the migration ring: they inject
// structurally different solutions into the GA populations (the paper's
// §4.3 benefit 4, continuously instead of only at initialization) and pick
// up GA discoveries as restart material. Scouts follow the GA cost
// convention (core.InfeasibleCost sentinel, Formula 1/2 objective) so their
// genomes are directly comparable in tournaments.

func newScout(ev *eval.Evaluator, opt Options, kind ScoutKind, runSeed int64, ringIdx int) (island, error) {
	switch kind {
	case ScoutSA:
		return newSAScout(ev, opt, runSeed, ringIdx), nil
	case ScoutGreedy:
		return newGreedyScout(ev, opt, runSeed, ringIdx), nil
	}
	return nil, fmt.Errorf("search: unknown scout kind %v", kind)
}

// scoutCost scores a scout genome with the GA's cost function (finite
// infeasible sentinel included, so costs serialize and compare cleanly).
func scoutCost(obj eval.Objective, g *core.Genome) float64 {
	if !g.Res.Feasible() {
		return core.InfeasibleCost + float64(len(g.Res.Infeasible))
	}
	c := g.Res.MetricValue(obj.Metric)
	if obj.Alpha > 0 {
		return float64(g.Mem.TotalBytes()) + obj.Alpha*c
	}
	return c
}

// saScout anneals one simulated-annealing chain over the shared evaluator,
// paced so one orchestrator round consumes as many samples as a GA island's
// round (MigrateEvery × population). Each sample is baselines.AnnealStep —
// the exact move set and acceptance rule of the SA baseline, with its
// default geometric relative-temperature cooling — on the scout's own
// counted RNG stream.
type saScout struct {
	ev      *eval.Evaluator
	obj     eval.Objective
	ms      core.MemSearch
	ringIdx int

	budget  int // total sample budget (the per-island Core.MaxSamples)
	perStep int // samples per optimizer-step equivalent (population size)

	seed int64
	src  *core.CountingSource
	rng  *rand.Rand

	cur, bst *core.Genome
	temp     float64
	cooling  float64
	samples  int
}

func newSAScout(ev *eval.Evaluator, opt Options, runSeed int64, ringIdx int) *saScout {
	s := &saScout{
		ev:      ev,
		obj:     opt.Core.Objective,
		ms:      opt.Core.Mem,
		ringIdx: ringIdx,
		budget:  opt.Core.MaxSamples,
		perStep: opt.Core.Population,
		seed:    core.ChildSeedStream(runSeed, core.StreamScouts, ringIdx),
		temp:    baselines.DefaultSAInitialTemp,
	}
	s.src = core.NewCountingSource(s.seed)
	s.rng = rand.New(s.src)
	s.cooling = math.Pow(baselines.DefaultSAFinalTemp/baselines.DefaultSAInitialTemp,
		1/math.Max(float64(s.budget-1), 1))
	return s
}

// evaluate repairs and scores a genome in place on the scout's RNG.
func (s *saScout) evaluate(g *core.Genome) {
	g.P, g.Res = core.RepairInSitu(s.ev, s.rng, g.P, g.Mem)
	g.Cost = scoutCost(s.obj, g)
	s.samples++
}

func (s *saScout) done() bool { return s.samples >= s.budget }

func (s *saScout) step(gens int) bool {
	if s.done() {
		return false
	}
	n := gens * s.perStep
	for i := 0; i < n && s.samples < s.budget; i++ {
		s.anneal1()
	}
	return true
}

// anneal1 advances the chain by one sample.
func (s *saScout) anneal1() {
	if s.cur == nil {
		s.cur = &core.Genome{
			P:   core.RandomPartition(s.ev.Graph(), s.rng, 0.35),
			Mem: core.RandomMemConfig(s.rng, s.ms),
		}
		s.evaluate(s.cur)
		s.bst = s.cur.Clone()
		return
	}
	s.cur = baselines.AnnealStep(s.ev.Graph(), s.rng, s.ms, s.cur, s.temp, s.evaluate)
	if s.cur.Cost < s.bst.Cost {
		s.bst = s.cur.Clone()
	}
	s.temp *= s.cooling
}

// emigrants ships the chain's best, then its current state. No RNG draws:
// a chain has no population to sample from.
func (s *saScout) emigrants(n int) []*core.Genome {
	if s.bst == nil {
		return nil
	}
	out := []*core.Genome{s.bst.Clone()}
	if n > 1 && s.cur != nil {
		out = append(out, s.cur.Clone())
	}
	return out
}

// immigrate adopts the best incoming genome as the chain's current state
// when it improves on it — a deterministic restart. Migrants cloned from a
// checkpoint-restored population arrive without their evaluation result
// (population entries are serialized cost-only); an adopted one is
// re-evaluated so the chain's best always carries a result — evaluation is
// a pure function of (partition, mem), so the recompute is bit-identical
// to the result the migrant originally had and no RNG is consumed.
func (s *saScout) immigrate(gs []*core.Genome) {
	for _, m := range gs {
		if s.cur == nil || m.Cost < s.cur.Cost {
			s.cur = m.Clone()
			if s.cur.Res == nil {
				s.cur.Res = s.ev.Partition(s.cur.P, s.cur.Mem)
			}
			if s.bst == nil || s.cur.Cost < s.bst.Cost {
				s.bst = s.cur.Clone()
			}
		}
	}
}

// best only reports feasible solutions, mirroring the GA contract.
func (s *saScout) best() *core.Genome {
	if s.bst == nil || s.bst.Cost >= core.InfeasibleCost {
		return nil
	}
	return s.bst
}

func (s *saScout) stats() core.Stats { return core.Stats{Samples: s.samples} }

func (s *saScout) snapshot() serialize.IslandJSON {
	return serialize.IslandJSON{
		Kind:    "sa",
		RNG:     serialize.RNGStateJSON{Seed: s.src.SeedValue(), Draws: s.src.Draws()},
		Samples: s.samples,
		Temp:    s.temp,
		Cur:     EncodeGenome(s.cur, false),
		Best:    EncodeGenome(s.bst, true),
	}
}

func (s *saScout) restore(j serialize.IslandJSON) error {
	if j.Kind != "sa" {
		return fmt.Errorf("search: island %d: checkpoint kind %q, want sa", s.ringIdx, j.Kind)
	}
	if j.RNG.Seed != s.seed {
		return fmt.Errorf("search: island %d: scout seed mismatch", s.ringIdx)
	}
	var err error
	if s.cur, err = DecodeGenome(s.ev.Graph(), j.Cur, false); err != nil {
		return fmt.Errorf("search: island %d cur: %w", s.ringIdx, err)
	}
	if s.bst, err = DecodeGenome(s.ev.Graph(), j.Best, true); err != nil {
		return fmt.Errorf("search: island %d best: %w", s.ringIdx, err)
	}
	s.samples = j.Samples
	s.temp = j.Temp
	s.src = core.RestoreSource(j.RNG.Seed, j.RNG.Draws)
	s.rng = rand.New(s.src)
	return nil
}

// greedyScout runs the Halide-style greedy merger once, then spends the
// rest of the run exporting its solution into the ring every barrier.
type greedyScout struct {
	ev      *eval.Evaluator
	obj     eval.Objective
	mem     hw.MemConfig
	ringIdx int

	started bool
	samples int
	bst     *core.Genome
}

func newGreedyScout(ev *eval.Evaluator, opt Options, runSeed int64, ringIdx int) *greedyScout {
	_ = runSeed // the greedy merger is deterministic; no stream is consumed
	return &greedyScout{
		ev:      ev,
		obj:     opt.Core.Objective,
		mem:     greedyMem(opt.Core.Mem),
		ringIdx: ringIdx,
	}
}

// greedyMem picks the fixed memory configuration the merger optimizes for:
// the configured one, or the middle capacity candidates of a searchable
// range (a deterministic, central anchor).
func greedyMem(ms core.MemSearch) hw.MemConfig {
	if !ms.Search {
		return ms.Fixed
	}
	mid := func(r hw.MemRange) int64 {
		c := r.Candidates()
		return c[len(c)/2]
	}
	m := hw.MemConfig{Kind: ms.Kind, GlobalBytes: mid(ms.Global)}
	if ms.Kind == hw.SeparateBuffer {
		m.WeightBytes = mid(ms.Weight)
	}
	return m
}

func (g *greedyScout) done() bool { return g.started }

func (g *greedyScout) step(int) bool {
	if g.started {
		return false
	}
	g.started = true
	p, samples := baselines.Greedy(g.ev, g.mem, g.obj.Metric)
	g.samples = samples
	res := g.ev.Partition(p, g.mem)
	g.bst = &core.Genome{P: p, Mem: g.mem, Res: res}
	g.bst.Cost = scoutCost(g.obj, g.bst)
	return true
}

func (g *greedyScout) emigrants(int) []*core.Genome {
	if g.bst == nil {
		return nil
	}
	return []*core.Genome{g.bst.Clone()}
}

func (g *greedyScout) immigrate([]*core.Genome) {}

func (g *greedyScout) best() *core.Genome {
	if g.bst == nil || g.bst.Cost >= core.InfeasibleCost {
		return nil
	}
	return g.bst
}

func (g *greedyScout) stats() core.Stats { return core.Stats{Samples: g.samples} }

func (g *greedyScout) snapshot() serialize.IslandJSON {
	return serialize.IslandJSON{
		Kind:    "greedy",
		Started: g.started,
		Samples: g.samples,
		Best:    EncodeGenome(g.bst, true),
	}
}

func (g *greedyScout) restore(j serialize.IslandJSON) error {
	if j.Kind != "greedy" {
		return fmt.Errorf("search: island %d: checkpoint kind %q, want greedy", g.ringIdx, j.Kind)
	}
	var err error
	if g.bst, err = DecodeGenome(g.ev.Graph(), j.Best, true); err != nil {
		return fmt.Errorf("search: island %d best: %w", g.ringIdx, err)
	}
	g.started = j.Started
	g.samples = j.Samples
	return nil
}
