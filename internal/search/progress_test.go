package search

import (
	"reflect"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
)

// TestProgressCallback pins the observation contract behind the serve
// scheduler: Progress fires once per completed round with monotone counters,
// its final snapshot agrees with the returned Stats, and registering it
// neither shapes the trajectory nor changes the checkpoint fingerprint.
func TestProgressCallback(t *testing.T) {
	opt := Options{
		Core: core.Options{
			Seed: 11, Workers: 1, Population: 20, MaxSamples: 600,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       core.MemSearch{Fixed: fixedMem()},
		},
		Islands:      2,
		MigrateEvery: 2,
		Scouts:       []ScoutKind{ScoutSA},
	}

	wantBest, wantStats, err := Run(evaluatorFor(t, "mobilenetv2"), opt)
	if err != nil {
		t.Fatal(err)
	}

	var snaps []Progress
	watched := opt
	watched.Progress = func(p Progress) { snaps = append(snaps, p) }
	if a, b := Fingerprint(opt), Fingerprint(watched); a != b {
		t.Errorf("Progress changed the fingerprint:\n  %s\n  %s", a, b)
	}
	gotBest, gotStats, err := Run(evaluatorFor(t, "mobilenetv2"), watched)
	if err != nil {
		t.Fatal(err)
	}
	sameGenome(t, "watched", wantBest, gotBest)
	if !reflect.DeepEqual(wantStats, gotStats) {
		t.Errorf("watching changed the stats:\nwant %+v\ngot  %+v", wantStats, gotStats)
	}
	if len(snaps) == 0 {
		t.Fatal("Progress never fired")
	}
	for i, p := range snaps {
		if p.Rounds != i+1 {
			t.Fatalf("snapshot %d reports round %d; want one callback per round", i, p.Rounds)
		}
		if i > 0 {
			prev := snaps[i-1]
			if p.Samples < prev.Samples || p.Migrations < prev.Migrations || p.FeasibleSamples < prev.FeasibleSamples {
				t.Fatalf("snapshot %d went backwards: %+v after %+v", i, p, prev)
			}
		}
		if len(p.IslandStats) != 3 {
			t.Fatalf("snapshot %d has %d island stats, want 3", i, len(p.IslandStats))
		}
	}

	last := snaps[len(snaps)-1]
	if last.Rounds != gotStats.Rounds || last.Migrations != gotStats.Migrations ||
		last.Samples != gotStats.Samples || last.FeasibleSamples != gotStats.FeasibleSamples ||
		last.MemoHits != gotStats.MemoHits || last.BestIsland != gotStats.BestIsland {
		t.Errorf("final snapshot disagrees with Stats:\nsnap  %+v\nstats %+v", last, gotStats)
	}
	if !last.HasBest {
		t.Error("final snapshot has no best despite a feasible run")
	}
	if last.BestCost != gotBest.Cost {
		t.Errorf("final snapshot best cost %v, want %v", last.BestCost, gotBest.Cost)
	}
}
