// Package search runs the island-model orchestrator on top of the Cocco GA:
// K independent GA populations (plus optional SA/greedy "scout" islands)
// explore concurrently over one shared evaluator, exchanging genomes by
// deterministic ring migration every few generations, with versioned
// checkpoint/resume snapshots.
//
// Determinism contract. Every island's randomness comes from its own
// ChildSeedStream-derived stream (StreamIslands for GA masters beyond
// island 0, StreamScouts for scouts, StreamMigration for migrant
// selection); islands only touch island-local state between migration
// barriers, and the shared evaluator's cost cache is value-deterministic
// (a subgraph's cost is a pure function of its members, whichever island
// computes it first). Migration selects every island's emigrants before
// committing any of them, in island order, so the exchange is a pure
// function of the pre-barrier populations. Consequences, pinned by the
// equivalence suite:
//
//   - Islands=1 with no scouts is bit-identical to core.Run — same best
//     genome, same Stats, same trajectory;
//   - any Workers count replays the same trajectory;
//   - a run checkpointed at a barrier and resumed is bit-identical to an
//     uninterrupted run (TestCheckpointResume).
package search

import (
	"fmt"
	"os"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/serialize"
)

// ScoutKind selects a non-GA island type.
type ScoutKind int

const (
	// ScoutSA anneals one simulated-annealing chain, paced to consume
	// samples at the same per-round rate as the GA islands.
	ScoutSA ScoutKind = iota
	// ScoutGreedy runs the Halide-style greedy merger once and then only
	// participates in migration, exporting its solution every round.
	ScoutGreedy
)

func (k ScoutKind) String() string {
	switch k {
	case ScoutSA:
		return "sa"
	case ScoutGreedy:
		return "greedy"
	}
	return fmt.Sprintf("ScoutKind(%d)", int(k))
}

// Options configures an orchestrated search.
type Options struct {
	// Core configures each GA island. Seed is the run seed: island 0 uses it
	// directly (that is what makes Islands=1 reproduce core.Run), later
	// islands and scouts derive their own streams from it. MaxSamples is the
	// per-island budget; Workers is the total scoring-goroutine budget,
	// divided across islands.
	Core core.Options
	// Islands is the number of GA islands (default 1).
	Islands int
	// MigrateEvery is the number of optimizer steps between migration
	// barriers (default 5).
	MigrateEvery int
	// Migrants is the number of genomes each island sends around the ring at
	// every barrier (default 2; capped at population-1).
	Migrants int
	// Scouts appends non-GA islands to the migration ring.
	Scouts []ScoutKind
	// Checkpoint, if non-empty, is the path the orchestrator writes its
	// snapshot to at every CheckpointEvery-th migration barrier.
	Checkpoint string
	// CheckpointEvery is the barrier period of checkpoint writes (default 1).
	CheckpointEvery int
	// MaxRounds, when positive, pauses the run after that many rounds even
	// if sample budget remains, writing a final checkpoint when Checkpoint
	// is set. Like Workers it never shapes the trajectory — a paused-and-
	// resumed run is bit-identical to an uninterrupted one — so it is not
	// part of the checkpoint fingerprint. Time-boxed jobs run with MaxRounds
	// and resume later.
	MaxRounds int
	// Progress, when non-nil, is called after every completed round (post-
	// migration, post-checkpoint) with a snapshot of the run so far. Purely
	// observational: like Workers and Trace it never shapes the trajectory
	// and is excluded from the checkpoint fingerprint. The job server
	// (internal/serve) streams these to polling clients.
	Progress func(Progress)
}

func (o Options) WithDefaults() Options {
	o.Core = o.Core.WithDefaults()
	if o.Islands <= 0 {
		o.Islands = 1
	}
	if o.MigrateEvery <= 0 {
		o.MigrateEvery = 5
	}
	if o.Migrants <= 0 {
		o.Migrants = 2
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	return o
}

// Stats aggregates a completed orchestrated run.
type Stats struct {
	// Samples, FeasibleSamples, and MemoHits sum over every island.
	Samples         int
	FeasibleSamples int
	MemoHits        int
	// Rounds is the number of completed step rounds; Migrations counts
	// migration barriers executed.
	Rounds     int
	Migrations int
	// Paused reports the run stopped at MaxRounds with sample budget left;
	// resuming from the checkpoint continues it.
	Paused bool
	// BestIsland is the ring index the returned best genome came from.
	BestIsland int
	// IslandStats holds each GA island's optimizer statistics, in ring
	// order. Scout islands contribute a Stats with only Samples filled.
	IslandStats []core.Stats
	// MigrantsSent and MigrantsReceived count the genomes each ring island
	// exported and imported across all migration barriers, in ring order
	// (nil when the ring never migrated).
	MigrantsSent     []int
	MigrantsReceived []int
}

// Progress is a mid-run snapshot handed to Options.Progress after each
// round. It carries the same aggregates a finished run's Stats would,
// plus the best-so-far cost — everything a job server needs to report
// "how far along is this search" without stopping it.
type Progress struct {
	// Rounds and Migrations completed so far (cumulative across resumes).
	Rounds     int
	Migrations int
	// Samples, FeasibleSamples, and MemoHits sum over every island.
	Samples         int
	FeasibleSamples int
	MemoHits        int
	// HasBest reports whether any island holds a feasible genome yet;
	// BestCost and BestIsland are meaningful only when it is true.
	HasBest    bool
	BestCost   float64
	BestIsland int
	// IslandStats holds each island's statistics, in ring order.
	IslandStats []core.Stats
}

// island is one ring member: a GA population or a scout.
type island interface {
	// step advances by up to gens optimizer steps (or the scout's equivalent
	// sample budget) and reports whether any work was done.
	step(gens int) bool
	// done reports whether the island's budget is exhausted.
	done() bool
	// emigrants clones out n migrants using the island's migration RNG,
	// without touching island search state.
	emigrants(n int) []*core.Genome
	// immigrate commits migrants from the ring predecessor.
	immigrate(gs []*core.Genome)
	// best returns the island's best feasible genome (nil if none).
	best() *core.Genome
	// stats reports the island's contribution to the aggregate statistics.
	stats() core.Stats
	// snapshot and restore convert the island state to and from the
	// checkpoint wire form.
	snapshot() serialize.IslandJSON
	restore(j serialize.IslandJSON) error
}

// orchestrator drives the ring.
type orchestrator struct {
	ev   *eval.Evaluator
	opt  Options
	host *RingHost

	rounds     int
	migrations int
	paused     bool
	sent, recv []int // per ring island, allocated at the first barrier
}

// Run executes an orchestrated search from scratch.
func Run(ev *eval.Evaluator, opt Options) (*core.Genome, *Stats, error) {
	h, err := newOrchestrator(ev, opt)
	if err != nil {
		return nil, nil, err
	}
	return h.run()
}

// Resume continues a search from a checkpoint snapshot previously written
// by Run (or Resume) with the same options and evaluator.
func Resume(ev *eval.Evaluator, opt Options, snapshot []byte) (*core.Genome, *Stats, error) {
	h, err := newOrchestrator(ev, opt)
	if err != nil {
		return nil, nil, err
	}
	if err := h.restore(snapshot); err != nil {
		return nil, nil, err
	}
	return h.run()
}

// RunOrResume resumes from resumePath when the file exists, otherwise starts
// fresh. This is the cmd-level entry point: crash-interrupted jobs restart
// with the same command line and pick up where the last checkpoint left off.
func RunOrResume(ev *eval.Evaluator, opt Options, resumePath string) (*core.Genome, *Stats, error) {
	if resumePath != "" {
		data, err := os.ReadFile(resumePath)
		if err == nil {
			best, stats, rerr := Resume(ev, opt, data)
			if rerr != nil && stats == nil {
				// The snapshot never loaded (corrupt, truncated, or for a
				// different configuration) — as opposed to a search that
				// resumed fine but ended without a feasible genome, which
				// reports Stats. Name the file and the way out.
				rerr = fmt.Errorf("search: resume from checkpoint %s: %w (delete the file to restart the search from scratch)", resumePath, rerr)
			}
			return best, stats, rerr
		}
		if !os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("search: read checkpoint: %w", err)
		}
	}
	return Run(ev, opt)
}

func newOrchestrator(ev *eval.Evaluator, opt Options) (*orchestrator, error) {
	opt = opt.WithDefaults()
	if opt.MaxRounds > 0 && opt.Checkpoint == "" {
		// A pause without a snapshot discards the whole trajectory — the
		// remaining budget could never be resumed. Always a mistake.
		return nil, fmt.Errorf("search: MaxRounds requires a Checkpoint path to resume from")
	}
	host, err := NewRingHost(ev, opt, 0, opt.Islands+len(opt.Scouts))
	if err != nil {
		return nil, err
	}
	return &orchestrator{ev: ev, opt: opt, host: host}, nil
}

func (h *orchestrator) run() (*core.Genome, *Stats, error) {
	ring := h.host.RingSize()
	startRound := h.rounds
	for {
		progressed := h.host.Step(h.opt.MigrateEvery)
		any := false
		for _, p := range progressed {
			any = any || p
		}
		if !any {
			break
		}
		h.rounds++
		if ring > 1 {
			h.migrate()
		}
		if h.opt.Checkpoint != "" && h.rounds%h.opt.CheckpointEvery == 0 {
			if err := h.save(h.opt.Checkpoint); err != nil {
				return nil, nil, err
			}
		}
		if h.opt.Progress != nil {
			// After the checkpoint write, so a reported round is also a
			// durable one whenever checkpointing is on.
			h.opt.Progress(h.progressNow())
		}
		if h.opt.MaxRounds > 0 && h.rounds-startRound >= h.opt.MaxRounds {
			// Pause: snapshot the barrier state so the job can resume later.
			// If the final allowed round happened to exhaust every island,
			// the run is simply complete — not paused.
			h.paused = !h.allDone()
			if h.paused && h.rounds%h.opt.CheckpointEvery != 0 {
				if err := h.save(h.opt.Checkpoint); err != nil {
					return nil, nil, err
				}
			}
			break
		}
	}
	return h.finish()
}

// allDone reports whether every island has exhausted its budget.
func (h *orchestrator) allDone() bool {
	for _, d := range h.host.Done() {
		if !d {
			return false
		}
	}
	return true
}

// migrate runs one ring-migration barrier: every island's emigrants are
// selected first (so selection sees only pre-barrier populations), then
// committed to each ring successor, both passes in ascending island order.
func (h *orchestrator) migrate() {
	ring := h.host.RingSize()
	if h.sent == nil {
		h.sent = make([]int, ring)
		h.recv = make([]int, ring)
	}
	out := h.host.Emigrants()
	for i, gs := range out {
		h.host.Immigrate((i+1)%ring, gs)
		h.sent[i] += len(gs)
		h.recv[(i+1)%ring] += len(gs)
	}
	h.migrations++
}

// progressNow aggregates the ring's current state into a Progress snapshot,
// using the exact rules finish applies to a completed run (AggregateBest for
// the winner, per-island sums for the counters).
func (h *orchestrator) progressNow() Progress {
	p := Progress{Rounds: h.rounds, Migrations: h.migrations, BestIsland: -1}
	best, bestIdx := AggregateBest(h.host.Bests())
	if best != nil {
		p.HasBest = true
		p.BestCost = best.Cost
		p.BestIsland = bestIdx
	}
	for _, is := range h.host.Stats() {
		p.IslandStats = append(p.IslandStats, is)
		p.Samples += is.Samples
		p.FeasibleSamples += is.FeasibleSamples
		p.MemoHits += is.MemoHits
	}
	return p
}

func (h *orchestrator) finish() (*core.Genome, *Stats, error) {
	st := &Stats{
		Rounds: h.rounds, Migrations: h.migrations, BestIsland: -1, Paused: h.paused,
		MigrantsSent: h.sent, MigrantsReceived: h.recv,
	}
	best, bestIdx := AggregateBest(h.host.Bests())
	st.BestIsland = bestIdx
	for _, is := range h.host.Stats() {
		st.IslandStats = append(st.IslandStats, is)
		st.Samples += is.Samples
		st.FeasibleSamples += is.FeasibleSamples
		st.MemoHits += is.MemoHits
	}
	if best == nil {
		if h.paused {
			// A pause is not a failed search: the checkpoint is resumable and
			// budget remains. The distinct error (plus Stats.Paused) keeps
			// callers from reading it as exhaustion.
			return nil, st, fmt.Errorf("search: paused after %d rounds with no feasible genome yet (%d samples); resume to continue",
				st.Rounds, st.Samples)
		}
		return nil, st, fmt.Errorf("search: no feasible genome found in %d samples across %d islands",
			st.Samples, h.host.RingSize())
	}
	return best, st, nil
}

// AggregateBest picks the run's winner from per-island bests in ring order:
// strict cost comparison, first island wins ties. Returns (nil, -1) when no
// island has a feasible best. The distributed coordinator applies the same
// rule to bests collected over the wire, so both paths crown one winner.
func AggregateBest(bests []*core.Genome) (*core.Genome, int) {
	var best *core.Genome
	idx := -1
	for i, b := range bests {
		if b != nil && (best == nil || b.Cost < best.Cost) {
			best, idx = b, i
		}
	}
	return best, idx
}
