package search

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/tiling"
)

func fixedMem() hw.MemConfig {
	return hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
}

func evaluatorFor(t testing.TB, model string) *eval.Evaluator {
	t.Helper()
	return eval.MustNew(models.MustBuild(model), hw.DefaultPlatform(), tiling.DefaultConfig())
}

// sameGenome asserts bit-exact equality of two genomes: assignment, memory
// config, cost, and every evaluation-result field (floats compared by bits).
func sameGenome(t *testing.T, label string, a, b *core.Genome) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: one genome is nil (a=%v b=%v)", label, a != nil, b != nil)
	}
	if a == nil {
		return
	}
	if !reflect.DeepEqual(a.P.Assignment(), b.P.Assignment()) {
		t.Errorf("%s: assignments differ", label)
	}
	if a.Mem != b.Mem {
		t.Errorf("%s: mem %v != %v", label, a.Mem, b.Mem)
	}
	if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) {
		t.Errorf("%s: cost %v != %v", label, a.Cost, b.Cost)
	}
	ra, rb := a.Res, b.Res
	if (ra == nil) != (rb == nil) {
		t.Fatalf("%s: one result is nil", label)
	}
	if ra == nil {
		return
	}
	if ra.EMABytes != rb.EMABytes || ra.LatencyCycles != rb.LatencyCycles ||
		ra.MaxActFootprint != rb.MaxActFootprint || ra.MaxWgtFootprint != rb.MaxWgtFootprint ||
		ra.NumSubgraphs != rb.NumSubgraphs || !reflect.DeepEqual(ra.Infeasible, rb.Infeasible) {
		t.Errorf("%s: integer result fields differ: %+v vs %+v", label, ra, rb)
	}
	if math.Float64bits(ra.EnergyPJ) != math.Float64bits(rb.EnergyPJ) ||
		math.Float64bits(ra.AvgBWBytesPerSec) != math.Float64bits(rb.AvgBWBytesPerSec) {
		t.Errorf("%s: float result fields differ: %+v vs %+v", label, ra, rb)
	}
}

// TestIslandsOneMatchesCoreRun pins the headline determinism contract on
// the full model zoo at the golden-corpus budget: Islands=1 with no scouts
// is bit-identical to core.Run — best genome, result, and Stats — so the
// orchestrator inherits the golden corpus transitively.
func TestIslandsOneMatchesCoreRun(t *testing.T) {
	for _, model := range models.Names() {
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			opt := core.Options{
				Seed: 42, Workers: 2, Population: 50, MaxSamples: 1500,
				Objective: eval.Objective{Metric: eval.MetricEMA},
				Mem:       core.MemSearch{Fixed: fixedMem()},
			}
			wantBest, wantStats, err := core.Run(evaluatorFor(t, model), opt)
			if err != nil {
				t.Fatal(err)
			}
			gotBest, gotStats, err := Run(evaluatorFor(t, model), Options{Core: opt, Islands: 1})
			if err != nil {
				t.Fatal(err)
			}
			sameGenome(t, model, wantBest, gotBest)
			if len(gotStats.IslandStats) != 1 {
				t.Fatalf("want 1 island stats, got %d", len(gotStats.IslandStats))
			}
			if !reflect.DeepEqual(*wantStats, gotStats.IslandStats[0]) {
				t.Errorf("island stats differ:\ncore:   %+v\nisland: %+v", *wantStats, gotStats.IslandStats[0])
			}
			if gotStats.Samples != wantStats.Samples || gotStats.FeasibleSamples != wantStats.FeasibleSamples ||
				gotStats.MemoHits != wantStats.MemoHits || gotStats.BestIsland != 0 {
				t.Errorf("aggregate stats differ: %+v vs core %+v", gotStats, wantStats)
			}
			if gotStats.Migrations != 0 {
				t.Errorf("solo island migrated %d times", gotStats.Migrations)
			}
		})
	}
}

// TestIslandWorkersDeterminism pins that the full ring — GA islands plus SA
// and greedy scouts, migration on — replays the same trajectory for every
// worker count.
func TestIslandWorkersDeterminism(t *testing.T) {
	for _, model := range []string{"resnet50", "googlenet"} {
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			base := Options{
				Core: core.Options{
					Seed: 7, Population: 24, MaxSamples: 700,
					Objective: eval.Objective{Metric: eval.MetricEMA},
					Mem:       core.MemSearch{Fixed: fixedMem()},
				},
				Islands:      3,
				MigrateEvery: 2,
				Migrants:     2,
				Scouts:       []ScoutKind{ScoutSA, ScoutGreedy},
			}
			type outcome struct {
				best  *core.Genome
				stats *Stats
			}
			var runs []outcome
			for _, workers := range []int{1, 8} {
				opt := base
				opt.Core.Workers = workers
				best, stats, err := Run(evaluatorFor(t, model), opt)
				if err != nil {
					t.Fatal(err)
				}
				runs = append(runs, outcome{best, stats})
			}
			sameGenome(t, "workers 1 vs 8", runs[0].best, runs[1].best)
			if !reflect.DeepEqual(runs[0].stats, runs[1].stats) {
				t.Errorf("stats differ across worker counts:\n1: %+v\n8: %+v", runs[0].stats, runs[1].stats)
			}
			if runs[0].stats.Migrations == 0 {
				t.Error("expected at least one migration barrier")
			}
			// The ring is 5 islands: 3 GA + 2 scouts, all contributing samples.
			if n := len(runs[0].stats.IslandStats); n != 5 {
				t.Fatalf("want 5 islands, got %d", n)
			}
			for i, is := range runs[0].stats.IslandStats {
				if is.Samples == 0 {
					t.Errorf("island %d did no work", i)
				}
			}
		})
	}
}

// TestCheckpointResume is the round-trip contract on three zoo models: pause
// a full ring mid-run at a checkpoint barrier, resume it on a fresh
// evaluator (proving the snapshot, not evaluator cache state, carries the
// run), and compare final best genome and all statistics bit-for-bit
// against the uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	for _, model := range []string{"resnet50", "googlenet", "mobilenetv2"} {
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			opt := Options{
				Core: core.Options{
					Seed: 11, Workers: 2, Population: 20, MaxSamples: 600,
					Objective: eval.Objective{Metric: eval.MetricEMA},
					Mem:       core.MemSearch{Fixed: fixedMem()},
				},
				Islands:      2,
				MigrateEvery: 2,
				Migrants:     2,
				Scouts:       []ScoutKind{ScoutSA},
			}
			wantBest, wantStats, err := Run(evaluatorFor(t, model), opt)
			if err != nil {
				t.Fatal(err)
			}

			ckpt := filepath.Join(t.TempDir(), "run.ckpt")
			paused := opt
			paused.Checkpoint = ckpt
			paused.MaxRounds = 2
			if _, _, err := Run(evaluatorFor(t, model), paused); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(ckpt)
			if err != nil {
				t.Fatalf("no checkpoint written: %v", err)
			}

			gotBest, gotStats, err := Resume(evaluatorFor(t, model), opt, data)
			if err != nil {
				t.Fatal(err)
			}
			sameGenome(t, "resume vs uninterrupted", wantBest, gotBest)
			if !reflect.DeepEqual(wantStats, gotStats) {
				t.Errorf("stats differ:\nuninterrupted: %+v\nresumed:       %+v", wantStats, gotStats)
			}
		})
	}
}

// TestCheckpointChainWithScouts replays a whole run as a chain of
// one-round segments, each resumed from the previous segment's checkpoint.
// This is the time-boxed -max-rounds/-resume workflow, and it regression-
// pins a once-real failure mode: migrants cloned from a restored
// population carry no evaluation result, and a scout adopting one as its
// best used to poison the next checkpoint (best entries must carry
// results), killing the chain after a few segments.
func TestCheckpointChainWithScouts(t *testing.T) {
	opt := Options{
		Core: core.Options{
			Seed: 1, Workers: 2, Population: 16, MaxSamples: 800,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       core.MemSearch{Fixed: fixedMem()},
		},
		Islands:      2,
		MigrateEvery: 1,
		Scouts:       []ScoutKind{ScoutSA, ScoutSA},
	}
	wantBest, wantStats, err := Run(evaluatorFor(t, "googlenet"), opt)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "chain.ckpt")
	seg := opt
	seg.Checkpoint = ckpt
	seg.MaxRounds = 1
	var gotBest *core.Genome
	var gotStats *Stats
	for segment := 0; ; segment++ {
		if segment > 200 {
			t.Fatal("checkpoint chain did not converge in 200 segments")
		}
		best, stats, err := RunOrResume(evaluatorFor(t, "googlenet"), seg, ckpt)
		if err != nil && (stats == nil || !stats.Paused) {
			t.Fatalf("segment %d: %v", segment, err)
		}
		if !stats.Paused {
			gotBest, gotStats = best, stats
			break
		}
	}
	sameGenome(t, "chained vs uninterrupted", wantBest, gotBest)
	if !reflect.DeepEqual(wantStats, gotStats) {
		t.Errorf("stats differ:\nuninterrupted: %+v\nchained:       %+v", wantStats, gotStats)
	}
}

// TestResumeRejectsMismatch pins the checkpoint safety rails: wrong graph
// and wrong configuration both fail loudly.
func TestResumeRejectsMismatch(t *testing.T) {
	opt := Options{
		Core: core.Options{
			Seed: 3, Workers: 1, Population: 10, MaxSamples: 60,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       core.MemSearch{Fixed: fixedMem()},
		},
		Islands: 2, MigrateEvery: 1,
		Checkpoint: filepath.Join(t.TempDir(), "m.ckpt"),
	}
	if _, _, err := Run(evaluatorFor(t, "mobilenetv2"), opt); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(opt.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(evaluatorFor(t, "resnet50"), opt, data); err == nil {
		t.Error("resume against the wrong graph succeeded")
	}
	wrong := opt
	wrong.Core.Seed = 4
	if _, _, err := Resume(evaluatorFor(t, "mobilenetv2"), wrong, data); err == nil {
		t.Error("resume with a different seed succeeded")
	}
	wrong = opt
	wrong.Islands = 3
	if _, _, err := Resume(evaluatorFor(t, "mobilenetv2"), wrong, data); err == nil {
		t.Error("resume with a different island count succeeded")
	}
}

// TestRunOrResume covers the cmd-level entry point: first call starts
// fresh and checkpoints, second call picks the file up and finishes with
// the uninterrupted result.
func TestRunOrResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "auto.ckpt")
	opt := Options{
		Core: core.Options{
			Seed: 5, Workers: 2, Population: 16, MaxSamples: 400,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       core.MemSearch{Fixed: fixedMem()},
		},
		Islands: 2, MigrateEvery: 2,
	}
	wantBest, wantStats, err := Run(evaluatorFor(t, "googlenet"), opt)
	if err != nil {
		t.Fatal(err)
	}

	paused := opt
	paused.Checkpoint = ckpt
	paused.MaxRounds = 1
	if _, _, err := RunOrResume(evaluatorFor(t, "googlenet"), paused, ckpt); err != nil {
		t.Fatal(err)
	}
	gotBest, gotStats, err := RunOrResume(evaluatorFor(t, "googlenet"), opt, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	sameGenome(t, "run-or-resume", wantBest, gotBest)
	if !reflect.DeepEqual(wantStats, gotStats) {
		t.Errorf("stats differ:\nwant %+v\ngot  %+v", wantStats, gotStats)
	}
}
