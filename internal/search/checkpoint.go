package search

import (
	"fmt"

	"cocco/internal/core"
	"cocco/internal/graph"
	"cocco/internal/partition"
	"cocco/internal/serialize"
)

// Checkpoint plumbing: snapshots are taken at migration barriers, where
// every island is quiescent, and written atomically (temp file + rename) so
// a crash mid-write leaves the previous checkpoint intact. The snapshot
// pins the graph name and an options fingerprint; Resume rejects anything
// that doesn't match, because a resumed trajectory is only meaningful under
// the exact configuration that produced it.

// Fingerprint folds every option that shapes the search trajectory into a
// stable string, applying defaults first so raw and normalized Options
// agree. The distributed coordinator (internal/search/dist) embeds it in
// its handshake and checkpoints; Resume checks it before restoring.
func Fingerprint(opt Options) string { return fingerprint(opt.WithDefaults()) }

// fingerprint folds every option that shapes the search trajectory into a
// stable string. Workers and Trace are deliberately excluded — neither
// changes results — so a checkpoint taken on one machine resumes on another
// with a different worker count.
func fingerprint(opt Options) string {
	c := opt.Core
	var initHashes []uint64
	for _, p := range c.Init {
		initHashes = append(initHashes, p.AssignHash())
	}
	return fmt.Sprintf(
		"v%d seed=%d islands=%d migrate=%d migrants=%d scouts=%v pop=%d samples=%d tourn=%d cross=%g pnew=%g mut=%g/%g/%g/%g sigma=%g obj=%d/%g mem=%+v flags=%v/%v/%v/%v init=%x",
		serialize.CheckpointVersion,
		c.Seed, opt.Islands, opt.MigrateEvery, opt.Migrants, opt.Scouts,
		c.Population, c.MaxSamples, c.Tournament, c.CrossoverProb, c.PNewInit,
		c.MutModify, c.MutSplit, c.MutMerge, c.MutDSE, c.DSESigmaSteps,
		c.Objective.Metric, c.Objective.Alpha, c.Mem,
		c.DisableCrossover, c.DisableInSituSplit, c.DisableDeltaEval, c.DisableGenomeMemo,
		initHashes,
	)
}

// EncodeGenome converts a genome to the wire form (nil-safe). withRes keeps
// the evaluation result — needed for best genomes and memo entries, dead
// weight for population members, whose results the search never reads.
func EncodeGenome(g *core.Genome, withRes bool) *serialize.GenomeJSON {
	if g == nil {
		return nil
	}
	j := &serialize.GenomeJSON{
		Assign: g.P.Assignment(),
		Mem:    serialize.EncodeMemConfig(g.Mem),
		Cost:   g.Cost,
	}
	if withRes {
		j.Res = serialize.EncodeResult(g.Res)
	}
	return j
}

// DecodeGenome rebuilds a genome, revalidating the partition against the
// graph. needRes rejects entries that must carry a result but don't.
func DecodeGenome(gr *graph.Graph, j *serialize.GenomeJSON, needRes bool) (*core.Genome, error) {
	if j == nil {
		return nil, nil
	}
	p, err := partition.From(gr, j.Assign)
	if err != nil {
		return nil, err
	}
	mem, err := serialize.DecodeMemConfig(j.Mem)
	if err != nil {
		return nil, err
	}
	if needRes && j.Res == nil {
		return nil, fmt.Errorf("missing evaluation result")
	}
	return &core.Genome{P: p, Mem: mem, Cost: j.Cost, Res: serialize.DecodeResult(j.Res)}, nil
}

// CheckCheckpoint verifies that a decoded snapshot belongs to the given
// graph and configuration: graph name, options fingerprint, and ring
// geometry must all match, because a resumed trajectory is only meaningful
// under the exact configuration that produced it. Shared by the
// single-process restore and the distributed coordinator.
func CheckCheckpoint(cp *serialize.CheckpointJSON, graphName string, opt Options) error {
	opt = opt.WithDefaults()
	if cp.Graph != graphName {
		return fmt.Errorf("search: checkpoint is for graph %q, not %q", cp.Graph, graphName)
	}
	if fp := fingerprint(opt); cp.Config != fp {
		return fmt.Errorf("search: checkpoint config mismatch:\n  have %s\n  want %s", cp.Config, fp)
	}
	ring := opt.Islands + len(opt.Scouts)
	if len(cp.Islands) != ring {
		return fmt.Errorf("search: checkpoint has %d islands, want %d", len(cp.Islands), ring)
	}
	if cp.MigrantsSent != nil && len(cp.MigrantsSent) != ring {
		return fmt.Errorf("search: checkpoint has %d migrant-sent counters, want %d", len(cp.MigrantsSent), ring)
	}
	if cp.MigrantsReceived != nil && len(cp.MigrantsReceived) != ring {
		return fmt.Errorf("search: checkpoint has %d migrant-received counters, want %d", len(cp.MigrantsReceived), ring)
	}
	return nil
}

// save writes the orchestrator snapshot atomically.
func (h *orchestrator) save(path string) error {
	cp := &serialize.CheckpointJSON{
		Graph:            h.ev.Graph().Name,
		Config:           fingerprint(h.opt),
		Round:            h.rounds,
		Migrations:       h.migrations,
		MigrantsSent:     h.sent,
		MigrantsReceived: h.recv,
		Islands:          h.host.Snapshots(),
	}
	data, err := serialize.EncodeCheckpoint(cp)
	if err != nil {
		return fmt.Errorf("search: checkpoint: %w", err)
	}
	if err := serialize.AtomicWriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("search: checkpoint: %w", err)
	}
	return nil
}

// restore loads a snapshot into a freshly constructed orchestrator.
func (h *orchestrator) restore(snapshot []byte) error {
	cp, err := serialize.DecodeCheckpoint(snapshot)
	if err != nil {
		return err
	}
	if err := CheckCheckpoint(cp, h.ev.Graph().Name, h.opt); err != nil {
		return err
	}
	if err := h.host.Restore(cp.Islands); err != nil {
		return err
	}
	h.rounds = cp.Round
	h.migrations = cp.Migrations
	h.sent = cp.MigrantsSent
	h.recv = cp.MigrantsReceived
	return nil
}
