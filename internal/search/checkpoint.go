package search

import (
	"fmt"

	"cocco/internal/core"
	"cocco/internal/graph"
	"cocco/internal/partition"
	"cocco/internal/serialize"
)

// Checkpoint plumbing: snapshots are taken at migration barriers, where
// every island is quiescent, and written atomically (temp file + rename) so
// a crash mid-write leaves the previous checkpoint intact. The snapshot
// pins the graph name and an options fingerprint; Resume rejects anything
// that doesn't match, because a resumed trajectory is only meaningful under
// the exact configuration that produced it.

// fingerprint folds every option that shapes the search trajectory into a
// stable string. Workers and Trace are deliberately excluded — neither
// changes results — so a checkpoint taken on one machine resumes on another
// with a different worker count.
func fingerprint(opt Options) string {
	c := opt.Core
	var initHashes []uint64
	for _, p := range c.Init {
		initHashes = append(initHashes, p.AssignHash())
	}
	return fmt.Sprintf(
		"v%d seed=%d islands=%d migrate=%d migrants=%d scouts=%v pop=%d samples=%d tourn=%d cross=%g pnew=%g mut=%g/%g/%g/%g sigma=%g obj=%d/%g mem=%+v flags=%v/%v/%v/%v init=%x",
		serialize.CheckpointVersion,
		c.Seed, opt.Islands, opt.MigrateEvery, opt.Migrants, opt.Scouts,
		c.Population, c.MaxSamples, c.Tournament, c.CrossoverProb, c.PNewInit,
		c.MutModify, c.MutSplit, c.MutMerge, c.MutDSE, c.DSESigmaSteps,
		c.Objective.Metric, c.Objective.Alpha, c.Mem,
		c.DisableCrossover, c.DisableInSituSplit, c.DisableDeltaEval, c.DisableGenomeMemo,
		initHashes,
	)
}

// encodeGenome converts a genome to the wire form (nil-safe). withRes keeps
// the evaluation result — needed for best genomes and memo entries, dead
// weight for population members, whose results the search never reads.
func encodeGenome(g *core.Genome, withRes bool) *serialize.GenomeJSON {
	if g == nil {
		return nil
	}
	j := &serialize.GenomeJSON{
		Assign: g.P.Assignment(),
		Mem:    serialize.EncodeMemConfig(g.Mem),
		Cost:   g.Cost,
	}
	if withRes {
		j.Res = serialize.EncodeResult(g.Res)
	}
	return j
}

// decodeGenome rebuilds a genome, revalidating the partition against the
// graph. needRes rejects entries that must carry a result but don't.
func decodeGenome(gr *graph.Graph, j *serialize.GenomeJSON, needRes bool) (*core.Genome, error) {
	if j == nil {
		return nil, nil
	}
	p, err := partition.From(gr, j.Assign)
	if err != nil {
		return nil, err
	}
	mem, err := serialize.DecodeMemConfig(j.Mem)
	if err != nil {
		return nil, err
	}
	if needRes && j.Res == nil {
		return nil, fmt.Errorf("missing evaluation result")
	}
	return &core.Genome{P: p, Mem: mem, Cost: j.Cost, Res: serialize.DecodeResult(j.Res)}, nil
}

// save writes the orchestrator snapshot atomically.
func (h *orchestrator) save(path string) error {
	cp := &serialize.CheckpointJSON{
		Graph:      h.ev.Graph().Name,
		Config:     fingerprint(h.opt),
		Round:      h.rounds,
		Migrations: h.migrations,
	}
	for _, isl := range h.islands {
		cp.Islands = append(cp.Islands, isl.snapshot())
	}
	data, err := serialize.EncodeCheckpoint(cp)
	if err != nil {
		return fmt.Errorf("search: checkpoint: %w", err)
	}
	if err := serialize.AtomicWriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("search: checkpoint: %w", err)
	}
	return nil
}

// restore loads a snapshot into a freshly constructed orchestrator.
func (h *orchestrator) restore(snapshot []byte) error {
	cp, err := serialize.DecodeCheckpoint(snapshot)
	if err != nil {
		return err
	}
	if cp.Graph != h.ev.Graph().Name {
		return fmt.Errorf("search: checkpoint is for graph %q, not %q", cp.Graph, h.ev.Graph().Name)
	}
	if fp := fingerprint(h.opt); cp.Config != fp {
		return fmt.Errorf("search: checkpoint config mismatch:\n  have %s\n  want %s", cp.Config, fp)
	}
	if len(cp.Islands) != len(h.islands) {
		return fmt.Errorf("search: checkpoint has %d islands, want %d", len(cp.Islands), len(h.islands))
	}
	for i, isl := range h.islands {
		if err := isl.restore(cp.Islands[i]); err != nil {
			return err
		}
	}
	h.rounds = cp.Round
	h.migrations = cp.Migrations
	return nil
}
