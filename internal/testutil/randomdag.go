package testutil

import (
	"fmt"
	"math/rand"

	"cocco/internal/graph"
)

// DAGOpts shapes RandomDAG's layered generator. The zero value is a useful
// default: moderate depth, mixed joins, a small channel range.
type DAGOpts struct {
	// Layers is the number of topological layers the nodes are spread over
	// (default: n/3, at least 2). More layers mean deeper, narrower graphs;
	// fewer mean wide, join-heavy ones.
	Layers int
	// MaxFanIn bounds how many extra producers a join node may take beyond
	// its primary one (default 2).
	MaxFanIn int
	// PJoin is the probability a node becomes an eltwise/concat join when a
	// compatible partner exists. Zero selects the default (0.25); pass a
	// negative value for a join-free graph.
	PJoin float64
	// PSkip is the probability a node wires to a random earlier layer
	// instead of the immediately preceding one — long skip connections.
	// Zero selects the default (0.2); pass a negative value to disable
	// skips entirely.
	PSkip float64
	// MinChannels and MaxChannels bound convolution output channels — the
	// weight-size distribution of the graph (defaults 8 and 64; rounded to
	// multiples of 4).
	MinChannels, MaxChannels int
	// InputChannels and InputHW fix the input feature map (defaults 8 and
	// 32) — the activation-size distribution.
	InputChannels, InputHW int
}

func (o DAGOpts) withDefaults(n int) DAGOpts {
	if o.Layers <= 0 {
		o.Layers = n / 3
	}
	if o.Layers < 2 {
		o.Layers = 2
	}
	if o.Layers > n {
		o.Layers = n
	}
	if o.MaxFanIn <= 0 {
		o.MaxFanIn = 2
	}
	if o.PJoin == 0 {
		o.PJoin = 0.25
	} else if o.PJoin < 0 {
		o.PJoin = 0
	}
	if o.PSkip == 0 {
		o.PSkip = 0.2
	} else if o.PSkip < 0 {
		o.PSkip = 0
	}
	if o.MinChannels <= 0 {
		o.MinChannels = 8
	}
	if o.MaxChannels < o.MinChannels {
		o.MaxChannels = o.MinChannels + 56
	}
	if o.InputChannels <= 0 {
		o.InputChannels = 8
	}
	if o.InputHW <= 0 {
		o.InputHW = 32
	}
	return o
}

// RandomDAG generates a deterministic layered random DAG with n compute
// nodes: convolutions, depth-wise convolutions, and poolings wired layer to
// layer (with PSkip long skips), plus eltwise/concat joins with up to
// MaxFanIn extra shape-compatible producers. The same (seed, n, opts)
// triple always yields the same graph, so generated cases are replayable
// from their parameters alone — the property the differential suite and the
// FuzzRandomDAG seeds rely on. Every graph is valid by construction: joins
// are only emitted between shape-compatible producers, strides shrink
// spatial extents only while they stay comfortably above 1.
func RandomDAG(seed int64, n int, opts DAGOpts) *graph.Graph {
	opts = opts.withDefaults(n)
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(fmt.Sprintf("dag-%d-%d", seed, n))
	in := b.Input("in", opts.InputChannels, opts.InputHW, opts.InputHW)

	// layerOf[i] holds the node ids of layer i; layer 0 is the input.
	layers := make([][]int, 1, opts.Layers+1)
	layers[0] = []int{in}

	// Spread the n nodes over the layers: every layer gets at least one
	// node, the remainder lands uniformly at random.
	width := make([]int, opts.Layers)
	for i := range width {
		width[i] = 1
	}
	for extra := n - opts.Layers; extra > 0; extra-- {
		width[rng.Intn(opts.Layers)]++
	}

	channels := func() int {
		c := opts.MinChannels + rng.Intn(opts.MaxChannels-opts.MinChannels+1)
		return (c + 3) / 4 * 4
	}

	id := 0
	for l := 0; l < opts.Layers; l++ {
		var cur []int
		prev := layers[len(layers)-1]
		for k := 0; k < width[l]; k++ {
			name := fmt.Sprintf("n%d", id)
			id++
			// Primary producer: previous layer, or a long skip.
			pool := prev
			if rng.Float64() < opts.PSkip && len(layers) > 1 {
				pool = layers[rng.Intn(len(layers))]
			}
			src := pool[rng.Intn(len(pool))]
			_, h, w, _ := b.OutShape(src)

			var nid int
			if partners := joinPartners(b, rng, layers, src, opts.MaxFanIn); rng.Float64() < opts.PJoin && len(partners) > 0 {
				from := append([]int{src}, partners...)
				if sameChannels(b, from) && rng.Intn(2) == 0 {
					nid = b.Eltwise(name, from...)
				} else {
					nid = b.Concat(name, from...)
				}
			} else {
				stride := 1
				if h > 8 && w > 8 && rng.Intn(4) == 0 {
					stride = 2
				}
				switch rng.Intn(4) {
				case 0:
					nid = b.DWConv(name, src, []int{3, 5}[rng.Intn(2)], stride)
				case 1:
					nid = b.Pool(name, src, 3, stride)
				default:
					nid = b.Conv(name, src, channels(), []int{1, 3, 5}[rng.Intn(3)], stride)
				}
			}
			cur = append(cur, nid)
		}
		layers = append(layers, cur)
	}
	return b.MustFinalize()
}

// joinPartners picks up to maxExtra additional producers for a join rooted
// at src: nodes from any existing layer with src's spatial shape (the
// concat requirement). Partners are drawn without replacement in a
// deterministic order.
func joinPartners(b *graph.Builder, rng *rand.Rand, layers [][]int, src, maxExtra int) []int {
	_, h, w, _ := b.OutShape(src)
	var cands []int
	for _, layer := range layers {
		for _, id := range layer {
			if id == src {
				continue
			}
			_, hh, ww, ok := b.OutShape(id)
			if ok && hh == h && ww == w {
				cands = append(cands, id)
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	extra := 1 + rng.Intn(maxExtra)
	var out []int
	for e := 0; e < extra && len(cands) > 0; e++ {
		i := rng.Intn(len(cands))
		out = append(out, cands[i])
		cands = append(cands[:i], cands[i+1:]...)
	}
	return out
}

// sameChannels reports whether every producer has the same channel count
// (the extra eltwise requirement beyond concat's spatial match).
func sameChannels(b *graph.Builder, from []int) bool {
	c0, _, _, _ := b.OutShape(from[0])
	for _, f := range from[1:] {
		c, _, _, _ := b.OutShape(f)
		if c != c0 {
			return false
		}
	}
	return true
}
