package testutil

import (
	"math/rand"
	"testing"

	"cocco/internal/graph"
	"cocco/internal/partition"
)

// TestRandomDAGDeterministic pins that the generator is a pure function of
// (seed, n, opts): regenerating yields an identical graph, and different
// seeds yield different graphs (over this size the chance of a collision is
// negligible — a collision would signal the seed being ignored).
func TestRandomDAGDeterministic(t *testing.T) {
	opts := DAGOpts{PJoin: 0.4, PSkip: 0.3}
	a := RandomDAG(17, 24, opts)
	b := RandomDAG(17, 24, opts)
	if a.Len() != b.Len() || a.Edges() != b.Edges() {
		t.Fatalf("same seed, different shape: %d/%d nodes, %d/%d edges", a.Len(), b.Len(), a.Edges(), b.Edges())
	}
	for _, n := range a.Nodes() {
		m := b.Node(n.ID)
		if n.Kind != m.Kind || n.OutC != m.OutC || n.OutH != m.OutH || n.OutW != m.OutW {
			t.Fatalf("same seed, node %d differs: %+v vs %+v", n.ID, n, m)
		}
	}
	c := RandomDAG(18, 24, opts)
	same := c.Len() == a.Len() && c.Edges() == a.Edges()
	if same {
		for _, n := range a.Nodes() {
			m := c.Node(n.ID)
			if n.Kind != m.Kind || n.OutC != m.OutC {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 17 and 18 generated identical graphs")
	}
}

// TestRandomDAGShapes sweeps the option space and checks structural
// soundness: requested node count, layered reachability (finalize would
// reject dangling producers), and join fan-in staying within bounds.
func TestRandomDAGShapes(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		n := 4 + int(seed)%28
		opts := DAGOpts{
			Layers:   int(seed) % 9,
			PJoin:    float64(seed%5) / 5,
			PSkip:    float64(seed%3) / 3,
			MaxFanIn: 1 + int(seed)%3,
		}
		g := RandomDAG(seed, n, opts)
		if got := len(g.ComputeNodes()); got != n {
			t.Fatalf("seed %d: %d compute nodes, want %d", seed, got, n)
		}
		for _, id := range g.ComputeNodes() {
			nd := g.Node(id)
			if nd.Kind == graph.OpEltwise || nd.Kind == graph.OpConcat {
				if len(g.Pred(id)) > 1+opts.MaxFanIn {
					t.Fatalf("seed %d: join %d has fan-in %d > %d", seed, id, len(g.Pred(id)), 1+opts.MaxFanIn)
				}
			}
		}
	}
}

// TestRandomDAGDisabledFeatures pins the negative-probability escape
// hatch: PJoin<0 yields a join-free graph, PSkip<0 only previous-layer
// wiring (every non-join node's producer sits one layer up is not directly
// observable, but the graph must still build and validate).
func TestRandomDAGDisabledFeatures(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomDAG(seed, 20, DAGOpts{PJoin: -1, PSkip: -1})
		for _, id := range g.ComputeNodes() {
			if k := g.Node(id).Kind; k == graph.OpEltwise || k == graph.OpConcat {
				t.Fatalf("seed %d: PJoin=-1 still produced a join (node %d)", seed, id)
			}
		}
		if err := partition.Singletons(g).Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// FuzzRandomDAG is the CI fuzz target: whatever the generator parameters,
// the graph builds, and partitions of it repair into validity —
// FromRepaired either rejects the assignment as unschedulable or returns a
// partition that passes Validate.
func FuzzRandomDAG(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(0), uint8(40), uint8(20), int64(2))
	f.Add(int64(7), uint8(40), uint8(3), uint8(80), uint8(60), int64(9))
	f.Add(int64(-5), uint8(1), uint8(9), uint8(0), uint8(0), int64(0))
	f.Fuzz(func(t *testing.T, seed int64, n, layers, pjoin, pskip uint8, assignSeed int64) {
		nodes := 1 + int(n)%64
		opts := DAGOpts{
			Layers: int(layers) % 12,
			PJoin:  float64(pjoin%100) / 100,
			PSkip:  float64(pskip%100) / 100,
		}
		g := RandomDAG(seed, nodes, opts)
		if got := len(g.ComputeNodes()); got != nodes {
			t.Fatalf("%d compute nodes, want %d", got, nodes)
		}

		// Singleton partitions of a valid layered DAG always validate.
		if err := partition.Singletons(g).Validate(); err != nil {
			t.Fatalf("singletons invalid: %v", err)
		}

		// An arbitrary assignment either repairs into validity or is
		// rejected as unschedulable — never a panic, never an invalid
		// partition slipping through.
		rng := rand.New(rand.NewSource(assignSeed))
		assign := make([]int, g.Len())
		groups := 1 + rng.Intn(nodes)
		for _, id := range g.ComputeNodes() {
			assign[id] = rng.Intn(groups)
		}
		p, err := partition.FromRepaired(g, assign)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("repaired partition invalid: %v\nassign: %v", err, assign)
		}
	})
}
