// Package testutil provides deterministic random computation-graph
// generation for property-based tests: random layered DAGs with mixed
// operator kinds, kernel sizes, and strides, plus random connected-subgraph
// selection.
package testutil

import (
	"fmt"
	"math/rand"

	"cocco/internal/graph"
)

// RandomGraph generates a random layered DAG with the given number of
// compute nodes. Nodes are convolutions, depth-wise convolutions, poolings,
// and element-wise joins with kernel sizes in {1,3,5} and strides in {1,2},
// wired to random earlier nodes. The same seed always yields the same graph.
func RandomGraph(seed int64, nodes int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(fmt.Sprintf("rand-%d-%d", seed, nodes))
	in := b.Input("in", 8, 64, 64)
	prev := []int{in}

	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("n%d", i)
		src := prev[rng.Intn(len(prev))]
		_, h, w, _ := b.OutShape(src)
		var id int
		switch k := rng.Intn(10); {
		case k < 4: // conv
			kernel := []int{1, 3, 5}[rng.Intn(3)]
			stride := 1
			// Keep spatial extents sane: stride 2 only while big enough.
			if h > 8 && w > 8 && rng.Intn(4) == 0 {
				stride = 2
			}
			id = b.Conv(name, src, 8*(1+rng.Intn(4)), kernel, stride)
		case k < 6: // depth-wise
			id = b.DWConv(name, src, []int{3, 5}[rng.Intn(2)], 1)
		case k < 8: // pool
			id = b.Pool(name, src, 3, 1)
		default: // eltwise join with a shape-compatible sibling, if any
			sib := -1
			c, _, _, _ := b.OutShape(src)
			for _, cand := range prev {
				cc, hh, ww, _ := b.OutShape(cand)
				if cand != src && cc == c && hh == h && ww == w {
					sib = cand
					break
				}
			}
			if sib < 0 {
				id = b.Pool(name, src, 3, 1)
			} else {
				id = b.Eltwise(name, src, sib)
			}
		}
		prev = append(prev, id)
	}
	return b.MustFinalize()
}

// RandomConnectedSubgraph picks a random weakly connected set of compute
// nodes of size in [1, maxSize], grown from a random seed node. The same
// rng state always yields the same set.
func RandomConnectedSubgraph(rng *rand.Rand, g *graph.Graph, maxSize int) []int {
	nodes := g.ComputeNodes()
	if maxSize < 1 {
		maxSize = 1
	}
	target := 1 + rng.Intn(maxSize)
	start := nodes[rng.Intn(len(nodes))]
	set := map[int]bool{start: true}
	frontier := []int{start}
	for len(set) < target && len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		u := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, v := range append(append([]int(nil), g.Pred(u)...), g.Succ(u)...) {
			if g.Node(v).Kind == graph.OpInput || set[v] {
				continue
			}
			set[v] = true
			frontier = append(frontier, v)
			if len(set) >= target {
				break
			}
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
