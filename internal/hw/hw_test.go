package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMemRangeCandidates(t *testing.T) {
	r := MemRange{Min: 128 * KiB, Max: 512 * KiB, Step: 128 * KiB}
	c := r.Candidates()
	if len(c) != 4 || c[0] != 128*KiB || c[3] != 512*KiB {
		t.Errorf("candidates = %v", c)
	}
	if r.Count() != 4 {
		t.Errorf("count = %d", r.Count())
	}
	if (MemRange{Min: 10, Max: 5, Step: 1}).Candidates() != nil {
		t.Error("inverted range should be empty")
	}
	if (MemRange{Min: 1, Max: 5, Step: 0}).Count() != 0 {
		t.Error("zero step should be empty")
	}
}

func TestMemRangeClamp(t *testing.T) {
	r := PaperGlobalRange()
	cases := []struct{ in, want int64 }{
		{0, 128 * KiB},
		{128 * KiB, 128 * KiB},
		{129 * KiB, 128 * KiB},
		{190 * KiB, 192 * KiB},
		{5 * MiB, 2048 * KiB},
	}
	for _, c := range cases {
		if got := r.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestClampAlwaysContained: Clamp lands on a valid candidate for any input.
func TestClampAlwaysContained(t *testing.T) {
	ranges := []MemRange{PaperGlobalRange(), PaperWeightRange(), PaperSharedRange()}
	f := func(v int64) bool {
		for _, r := range ranges {
			if !r.Contains(r.Clamp(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaperRanges(t *testing.T) {
	if g := PaperGlobalRange(); g.Count() != 31 {
		t.Errorf("global candidates = %d, want 31", g.Count())
	}
	if w := PaperWeightRange(); w.Count() != 31 {
		t.Errorf("weight candidates = %d, want 31", w.Count())
	}
	if s := PaperSharedRange(); s.Count() != 47 {
		t.Errorf("shared candidates = %d, want 47", s.Count())
	}
}

func TestMemConfigValidate(t *testing.T) {
	ok := MemConfig{Kind: SeparateBuffer, GlobalBytes: MiB, WeightBytes: MiB}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []MemConfig{
		{Kind: SeparateBuffer, GlobalBytes: 0, WeightBytes: MiB},
		{Kind: SeparateBuffer, GlobalBytes: MiB, WeightBytes: 0},
		{Kind: SharedBuffer, GlobalBytes: MiB, WeightBytes: MiB},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %v", i, m)
		}
	}
	if (MemConfig{Kind: SharedBuffer, GlobalBytes: MiB}).Validate() != nil {
		t.Error("valid shared config rejected")
	}
}

func TestCoreThroughput(t *testing.T) {
	c := DefaultCore()
	if got := c.MACsPerCycle(); got != 1024 {
		t.Errorf("MACsPerCycle = %d", got)
	}
	// 2 TOPS check: 1024 MACs × 2 ops × 1 GHz.
	tops := float64(c.MACsPerCycle()) * 2 * float64(c.FreqHz) / 1e12
	if tops != 2.048 {
		t.Errorf("peak = %.3f TOPS", tops)
	}
	if got := c.ComputeCycles(0); got != 0 {
		t.Errorf("ComputeCycles(0) = %d", got)
	}
	if got := c.ComputeCycles(1024); got < 1 {
		t.Errorf("ComputeCycles(1024) = %d", got)
	}
	// 16 bytes/cycle at 16 GB/s and 1 GHz.
	if got := c.DRAMCycles(160); got != 10 {
		t.Errorf("DRAMCycles(160) = %d", got)
	}
}

func TestEnergyModel(t *testing.T) {
	e := DefaultEnergy()
	// Paper constant: 12.5 pJ/bit → 100 pJ/byte.
	if got := e.DRAMBytes(1); got != 100 {
		t.Errorf("DRAM pJ/byte = %g", got)
	}
	// SRAM energy per byte must grow monotonically with capacity.
	prev := 0.0
	for _, kb := range []int64{64, 128, 512, 1024, 2048} {
		cur := e.SRAMPerByte(kb * KiB)
		if cur <= prev {
			t.Errorf("SRAMPerByte not increasing at %dKB: %g <= %g", kb, cur, prev)
		}
		prev = cur
	}
	// On-chip access must be far cheaper than DRAM at any studied size.
	if e.SRAMPerByte(3072*KiB) >= e.DRAMBytes(1) {
		t.Error("SRAM pricier than DRAM")
	}
	if e.MACs(100) != 100*e.MACPerOp {
		t.Error("MAC energy")
	}
	if e.Crossbar(10) != 10*e.CrossbarPerByte {
		t.Error("crossbar energy")
	}
}

func TestAreaModel(t *testing.T) {
	a := DefaultArea()
	got := a.BufferMM2(2 * MiB)
	if math.Abs(got-3.0) > 1e-9 {
		t.Errorf("2MB area = %g mm², want 3", got)
	}
}

func TestPlatformValidate(t *testing.T) {
	p := DefaultPlatform()
	if err := p.Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	bad := p
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores accepted")
	}
	bad = p
	bad.Batch = 0
	if bad.Validate() == nil {
		t.Error("zero batch accepted")
	}
	bad = p
	bad.Core.Utilization = 1.5
	if bad.Validate() == nil {
		t.Error("utilization > 1 accepted")
	}
	bad = p
	bad.Core.FreqHz = 0
	if bad.Validate() == nil {
		t.Error("zero frequency accepted")
	}
}

func TestStringers(t *testing.T) {
	if SeparateBuffer.String() != "separate" || SharedBuffer.String() != "shared" {
		t.Error("BufferKind strings")
	}
	m := MemConfig{Kind: SeparateBuffer, GlobalBytes: 1024 * KiB, WeightBytes: 1152 * KiB}
	if m.String() != "A=1024KB W=1152KB" {
		t.Errorf("MemConfig string = %q", m.String())
	}
	s := MemConfig{Kind: SharedBuffer, GlobalBytes: 1344 * KiB}
	if s.String() != "shared 1344KB" {
		t.Errorf("shared string = %q", s.String())
	}
	if m.TotalBytes() != (1024+1152)*KiB {
		t.Error("TotalBytes")
	}
}
