// Package hw models the accelerator platform of the paper's evaluation
// (§5.1.2): a Simba-like core with a 4×4 PE array (each PE an 8×8 MAC
// array), a global (activation) buffer, a weight buffer, 16 GB/s of DRAM
// bandwidth per core at 1 GHz, and analytic 12nm energy/area numbers.
//
// Paper artifacts we cannot run (synthesized RTL, the ARM memory compiler)
// are replaced by an analytic model documented in DESIGN.md: DRAM energy is
// the paper's 12.5 pJ/bit; SRAM energy per byte grows with capacity
// (e0 + e1·sqrt(KB)), reproducing the monotone capacity↔energy trade-off the
// experiments depend on; SRAM area is 1.5 mm²/MB (the paper quotes
// 1–2 mm²/MB in 12nm).
package hw

import (
	"fmt"
	"math"
	"strconv"
)

// Byte-size helpers.
const (
	KiB int64 = 1024
	MiB int64 = 1024 * 1024
)

// BufferKind selects between the paper's two memory designs (§5.3.1).
type BufferKind int

const (
	// SeparateBuffer stores activations in the global buffer and weights in
	// the weight buffer.
	SeparateBuffer BufferKind = iota
	// SharedBuffer stores both in one shared space.
	SharedBuffer
)

func (k BufferKind) String() string {
	if k == SharedBuffer {
		return "shared"
	}
	return "separate"
}

// MemConfig is a candidate memory configuration — the hardware half of a
// Cocco genome.
type MemConfig struct {
	Kind BufferKind
	// GlobalBytes is the activation (global) buffer capacity; for
	// SharedBuffer it is the single shared capacity and WeightBytes is 0.
	GlobalBytes int64
	// WeightBytes is the weight buffer capacity (SeparateBuffer only).
	WeightBytes int64
}

// TotalBytes is the silicon the configuration spends on buffers.
func (m MemConfig) TotalBytes() int64 { return m.GlobalBytes + m.WeightBytes }

func (m MemConfig) String() string {
	if m.Kind == SharedBuffer {
		return fmt.Sprintf("shared %dKB", m.GlobalBytes/KiB)
	}
	return fmt.Sprintf("A=%dKB W=%dKB", m.GlobalBytes/KiB, m.WeightBytes/KiB)
}

// Validate checks structural sanity.
func (m MemConfig) Validate() error {
	if m.GlobalBytes <= 0 {
		return fmt.Errorf("hw: non-positive global buffer %d", m.GlobalBytes)
	}
	if m.Kind == SharedBuffer && m.WeightBytes != 0 {
		return fmt.Errorf("hw: shared buffer with non-zero weight buffer %d", m.WeightBytes)
	}
	if m.Kind == SeparateBuffer && m.WeightBytes <= 0 {
		return fmt.Errorf("hw: separate design needs a weight buffer, got %d", m.WeightBytes)
	}
	return nil
}

// MemRange describes the discrete capacity candidates the DSE may pick from
// (§5.3: GLB 128 KB–2048 KB step 64 KB; WGT 144 KB–2304 KB step 72 KB;
// shared 128 KB–3072 KB step 64 KB).
type MemRange struct {
	Min, Max, Step int64
}

// Candidates enumerates the range inclusively.
func (r MemRange) Candidates() []int64 {
	if r.Step <= 0 || r.Max < r.Min {
		return nil
	}
	var out []int64
	for v := r.Min; v <= r.Max; v += r.Step {
		out = append(out, v)
	}
	return out
}

// Clamp rounds v to the nearest candidate in the range.
func (r MemRange) Clamp(v int64) int64 {
	if v <= r.Min {
		return r.Min
	}
	if v >= r.Max {
		return r.Max
	}
	k := (v - r.Min + r.Step/2) / r.Step
	return r.Min + k*r.Step
}

// Contains reports whether v is a valid candidate.
func (r MemRange) Contains(v int64) bool {
	if v < r.Min || v > r.Max {
		return false
	}
	return (v-r.Min)%r.Step == 0
}

// Count returns the number of candidates.
func (r MemRange) Count() int {
	if r.Step <= 0 || r.Max < r.Min {
		return 0
	}
	return int((r.Max-r.Min)/r.Step) + 1
}

// PaperGlobalRange is the paper's global-buffer search range.
func PaperGlobalRange() MemRange { return MemRange{Min: 128 * KiB, Max: 2048 * KiB, Step: 64 * KiB} }

// PaperWeightRange is the paper's weight-buffer search range.
func PaperWeightRange() MemRange { return MemRange{Min: 144 * KiB, Max: 2304 * KiB, Step: 72 * KiB} }

// PaperSharedRange is the paper's shared-buffer search range.
func PaperSharedRange() MemRange { return MemRange{Min: 128 * KiB, Max: 3072 * KiB, Step: 64 * KiB} }

// Core describes one NPU core.
type Core struct {
	// PERows×PECols PEs, each with MACRows×MACCols multipliers
	// (Simba-like: 4×4 PEs of 8×8 MACs = 1024 MACs/cycle).
	PERows, PECols   int
	MACRows, MACCols int
	// FreqHz is the clock (1 GHz in the paper).
	FreqHz int64
	// DRAMBytesPerSec is the external bandwidth per core (16 GB/s).
	DRAMBytesPerSec int64
	// Utilization derates the peak MAC throughput for residual losses the
	// spatial mapping model cannot see (pipeline bubbles, drain/fill);
	// per-layer packing efficiency comes from internal/mapper on top of
	// this. The paper's mapper "dynamically configures" the PE parallelism
	// for high utilization, so the default residual derate is small.
	Utilization float64
}

// DefaultCore returns the paper's evaluation platform (2 TOPS at 1 GHz:
// 1024 MACs × 2 ops × 1 GHz ≈ 2 TOPS).
func DefaultCore() Core {
	return Core{
		PERows: 4, PECols: 4,
		MACRows: 8, MACCols: 8,
		FreqHz:          1_000_000_000,
		DRAMBytesPerSec: 16_000_000_000,
		Utilization:     0.95,
	}
}

// GeometryID returns a compact, filesystem-safe identifier of the core
// geometry, distinct for distinct Core values. It names the per-geometry
// warm-start cache files a DSE sweep writes: every config sharing one core
// geometry (whatever its memory capacities, core count, or batch) maps to
// the same ID and therefore the same snapshot file.
func (c Core) GeometryID() string {
	return fmt.Sprintf("pe%dx%d_mac%dx%d_f%d_bw%d_u%s",
		c.PERows, c.PECols, c.MACRows, c.MACCols, c.FreqHz, c.DRAMBytesPerSec,
		strconv.FormatFloat(c.Utilization, 'g', -1, 64))
}

// MACsPerCycle is the peak multiply-accumulates per cycle.
func (c Core) MACsPerCycle() int64 {
	return int64(c.PERows) * int64(c.PECols) * int64(c.MACRows) * int64(c.MACCols)
}

// ComputeCycles returns the cycles needed for the given MAC count under the
// derated throughput.
func (c Core) ComputeCycles(macs int64) int64 {
	eff := float64(c.MACsPerCycle()) * c.Utilization
	if eff <= 0 {
		return macs
	}
	return int64(math.Ceil(float64(macs) / eff))
}

// DRAMCycles returns the cycles needed to move the given bytes over the
// core's DRAM interface.
func (c Core) DRAMCycles(bytes int64) int64 {
	bytesPerCycle := float64(c.DRAMBytesPerSec) / float64(c.FreqHz)
	if bytesPerCycle <= 0 {
		return bytes
	}
	return int64(math.Ceil(float64(bytes) / bytesPerCycle))
}

// Energy holds the analytic 12nm energy model. All values in picojoules.
type Energy struct {
	// DRAMPerBit is the external access energy (12.5 pJ/bit, paper §5.1.2).
	DRAMPerBit float64
	// SRAMBase and SRAMSlope give the on-chip buffer energy per byte:
	// pJ/B = SRAMBase + SRAMSlope·sqrt(capacityKB). Larger SRAMs burn more
	// per access (longer lines, more banks) — the monotone relation the
	// paper's trade-off needs.
	SRAMBase, SRAMSlope float64
	// MACPerOp is the energy of one multiply-accumulate.
	MACPerOp float64
	// CrossbarPerByte is the core-to-core transfer energy over the crossbar
	// (multi-core weight rotation, §5.4.2; Arteris-IP-like NoC).
	CrossbarPerByte float64
}

// DefaultEnergy returns the model constants. DRAM matches the paper; the
// SRAM/MAC/crossbar constants are representative 12nm figures (see
// DESIGN.md substitutions).
func DefaultEnergy() Energy {
	return Energy{
		DRAMPerBit:      12.5,
		SRAMBase:        0.08,
		SRAMSlope:       0.012,
		MACPerOp:        0.05,
		CrossbarPerByte: 1.6,
	}
}

// DRAMBytes returns the energy (pJ) of moving n bytes to/from DRAM.
func (e Energy) DRAMBytes(n int64) float64 { return float64(n) * 8 * e.DRAMPerBit }

// SRAMPerByte returns the pJ/byte of a buffer with the given capacity.
func (e Energy) SRAMPerByte(capacityBytes int64) float64 {
	kb := float64(capacityBytes) / 1024
	if kb < 1 {
		kb = 1
	}
	return e.SRAMBase + e.SRAMSlope*math.Sqrt(kb)
}

// SRAMBytes returns the energy (pJ) of n byte-accesses to a buffer of the
// given capacity.
func (e Energy) SRAMBytes(n, capacityBytes int64) float64 {
	return float64(n) * e.SRAMPerByte(capacityBytes)
}

// MACs returns the energy (pJ) of n multiply-accumulates.
func (e Energy) MACs(n int64) float64 { return float64(n) * e.MACPerOp }

// Crossbar returns the energy (pJ) of moving n bytes between cores.
func (e Energy) Crossbar(n int64) float64 { return float64(n) * e.CrossbarPerByte }

// Area holds the analytic area model.
type Area struct {
	// SRAMMM2PerMB is the buffer area (paper: 1–2 mm²/MB in 12nm).
	SRAMMM2PerMB float64
}

// DefaultArea returns the model constants.
func DefaultArea() Area { return Area{SRAMMM2PerMB: 1.5} }

// BufferMM2 returns the silicon area of the given buffer capacity.
func (a Area) BufferMM2(bytes int64) float64 {
	return a.SRAMMM2PerMB * float64(bytes) / float64(MiB)
}

// Platform bundles the full hardware description used by the evaluator.
type Platform struct {
	Core   Core
	Energy Energy
	Area   Area
	// Cores is the number of interconnected cores (≥1). Multi-core runs
	// share subgraph weights across cores and rotate them over the crossbar
	// (Tangram-BSD / NN-Baton style, §5.4.2).
	Cores int
	// Batch is the number of samples processed together (§5.4.3). Weights
	// are reused across the batch within a subgraph.
	Batch int
}

// DefaultPlatform is a single-core, batch-1 instance of the paper platform.
func DefaultPlatform() Platform {
	return Platform{Core: DefaultCore(), Energy: DefaultEnergy(), Area: DefaultArea(), Cores: 1, Batch: 1}
}

// Validate checks structural sanity.
func (p Platform) Validate() error {
	if p.Cores < 1 {
		return fmt.Errorf("hw: cores must be >= 1, got %d", p.Cores)
	}
	if p.Batch < 1 {
		return fmt.Errorf("hw: batch must be >= 1, got %d", p.Batch)
	}
	if p.Core.FreqHz <= 0 || p.Core.DRAMBytesPerSec <= 0 {
		return fmt.Errorf("hw: non-positive core rates")
	}
	if p.Core.Utilization <= 0 || p.Core.Utilization > 1 {
		return fmt.Errorf("hw: utilization must be in (0,1], got %g", p.Core.Utilization)
	}
	return nil
}
