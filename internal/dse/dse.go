// Package dse is the batched multi-config design-space-exploration driver:
// it expands a declarative Grid of hardware configurations into per-config
// searches, fans them over a worker pool, and consolidates the results into
// a per-model Pareto front (buffer capacity vs cost).
//
// The driver is built directly on the GraphContext/Evaluator split: every
// model in the grid gets ONE shared eval.GraphContext, and each grid point
// derives its thin per-platform Evaluator from it, so the graph-derived
// cold path (per-node tables, tiling Deriver validation, compute-cycle
// tables per core geometry) is paid once per model instead of once per
// config. Each config then runs the island-model search orchestrator
// (internal/search) with its memory configuration fixed.
//
// Sweeps are resumable. With a CheckpointDir set, every completed config
// persists a SweepOutcome file (<ID>.done.json) and every in-flight search
// writes its orchestrator checkpoint to <ID>.ckpt. A restarted sweep skips
// configs with outcome files and resumes in-flight ones from their
// checkpoints; because the per-config searches and the search orchestrator
// are both deterministic, an interrupted-and-resumed sweep produces a
// Pareto front bit-identical to an uninterrupted run (pinned by
// TestSweepResumeParetoIdentical).
//
// Checkpointed sweeps are also warm-startable: every geometry group — the
// configs of one model sharing one core geometry, which under the shared
// GraphContext cost cache all read and write the same entries — persists
// ONE cost-cache snapshot, <model>_t<tiling>_<geometry>.cache, written
// after each member config completes or pauses and loaded once per group
// before its first search. Keep-first load semantics make warm starts
// bit-identical to cold runs. Stale per-config <ID>.cache files from the
// older one-file-per-config layout are ignored with a warning (Warnf), not
// a failure, so pre-existing checkpoint dirs remain resumable.
package dse

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/report"
	"cocco/internal/search"
	"cocco/internal/serialize"
)

// Status classifies how a grid point finished this sweep invocation.
type Status int

const (
	// StatusDone: the search completed and found a feasible genome.
	StatusDone Status = iota
	// StatusInfeasible: the search exhausted its budget without any feasible
	// genome; the point is a recorded dead end, not an error.
	StatusInfeasible
	// StatusSkipped: a prior sweep already completed this point; its outcome
	// was restored from the persisted outcome file without searching.
	StatusSkipped
	// StatusPaused: the search hit Search.MaxRounds with budget remaining and
	// checkpointed; re-running the sweep resumes it.
	StatusPaused
)

func (s Status) String() string {
	switch s {
	case StatusDone:
		return "done"
	case StatusInfeasible:
		return "infeasible"
	case StatusSkipped:
		return "skipped"
	case StatusPaused:
		return "paused"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Outcome is the result of one grid point.
type Outcome struct {
	Config Config
	Status Status
	// Feasible reports whether a feasible genome is known for this point
	// (true for StatusDone and feasible restored outcomes; possibly true for
	// StatusPaused when the partial search already found one).
	Feasible bool
	// Cost is the best feasible objective cost (meaningless when !Feasible).
	Cost float64
	// Assign is the best genome's subgraph assignment per node.
	Assign []int
	// Res is the best genome's full evaluation result.
	Res *eval.Result
	// Samples is the number of genome evaluations spent (0 when skipped).
	Samples int
	// Resumed reports the search continued from an orchestrator checkpoint.
	Resumed bool
}

// Options configures a sweep.
type Options struct {
	// Grid declares the configurations to explore.
	Grid Grid
	// Platform is the base platform; each grid point overrides Cores and
	// Batch. The zero value means hw.DefaultPlatform().
	Platform hw.Platform
	// Search is the per-config search template. Core.Seed seeds config 0;
	// config i runs with Seed+i so points explore independently but
	// reproducibly. Core.Mem and Checkpoint are overwritten per config.
	Search search.Options
	// Workers is the number of configs searched concurrently (default 1).
	// Worker count never changes any config's result — each config's search
	// is self-contained — only the completion order of OnConfigDone.
	Workers int
	// CheckpointDir, when non-empty, makes the sweep resumable: per-config
	// search checkpoints, completed-outcome files, and cost-cache snapshots
	// live there. Required when Search.MaxRounds is set.
	CheckpointDir string
	// DisableCacheSnapshots turns off the per-geometry cost-cache warm-start
	// files (<model>_t<tiling>_<geometry>.cache) a checkpointed sweep
	// otherwise writes on completion or pause and loads once per geometry
	// group before searching. Loads are keep-first and never change results —
	// the snapshot only changes how fast the first evaluations go — so the
	// flag exists for ablation and disk frugality, not correctness.
	DisableCacheSnapshots bool
	// Warnf, when non-nil, receives non-fatal sweep diagnostics (stale cache
	// files being skipped, old-format snapshots ignored). Nil logs them to
	// stderr with a "dse: " prefix. It may be called from worker goroutines
	// and must be safe for concurrent use.
	Warnf func(format string, args ...any)
	// OnConfigDone, when non-nil, observes every outcome as it lands
	// (serialized under a lock). Returning an error aborts the sweep after
	// in-flight configs finish; already-completed outcomes keep their
	// persisted files, so a later Run resumes cleanly.
	OnConfigDone func(Outcome) error
}

// Report is the consolidated sweep result.
type Report struct {
	Outcomes []Outcome
}

// Run executes the sweep and returns the outcomes in grid order. The
// returned error is nil even when individual points are infeasible or
// paused — those are recorded outcomes; only environmental failures
// (invalid grid, checkpoint I/O, corrupted resume files, OnConfigDone
// aborts) are errors. On error the partial Report holds every outcome that
// completed before the abort.
func Run(opt Options) (*Report, error) {
	configs, err := opt.Grid.Configs()
	if err != nil {
		return nil, err
	}
	if opt.Platform == (hw.Platform{}) {
		opt.Platform = hw.DefaultPlatform()
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.CheckpointDir != "" {
		if err := os.MkdirAll(opt.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("dse: checkpoint dir: %w", err)
		}
	}
	st := &sweepState{warnf: opt.Warnf, loaded: make(map[string]bool)}
	if st.warnf == nil {
		st.warnf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dse: "+format+"\n", args...)
		}
	}
	if opt.CheckpointDir != "" && !opt.DisableCacheSnapshots {
		expected := make(map[string]bool, len(configs))
		for _, cfg := range configs {
			expected[filepath.Base(groupCachePath(opt.CheckpointDir, cfg, opt.Platform.Core))] = true
		}
		warnStaleCaches(opt.CheckpointDir, expected, st.warnf)
	}

	// One shared GraphContext per model: this is the whole point of the
	// context/evaluator split. Configs() already validated the model names.
	ctxs := make(map[string]*eval.GraphContext, len(opt.Grid.Models))
	for _, cfg := range configs {
		if _, ok := ctxs[cfg.Model]; !ok {
			ctxs[cfg.Model] = eval.NewGraphContext(models.MustBuild(cfg.Model), cfg.Tiling)
		}
	}

	outcomes := make([]*Outcome, len(configs))
	errs := make([]error, len(configs))
	var aborted atomic.Bool
	var doneMu sync.Mutex // serializes OnConfigDone

	work := make(chan Config)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cfg := range work {
				if aborted.Load() {
					continue
				}
				out, err := runConfig(opt, st, ctxs[cfg.Model], cfg)
				if err != nil {
					errs[cfg.Index] = err
					aborted.Store(true)
					continue
				}
				outcomes[cfg.Index] = out
				if opt.OnConfigDone != nil {
					doneMu.Lock()
					cbErr := opt.OnConfigDone(*out)
					doneMu.Unlock()
					if cbErr != nil {
						errs[cfg.Index] = fmt.Errorf("dse: aborted by callback: %w", cbErr)
						aborted.Store(true)
					}
				}
			}
		}()
	}
	for _, cfg := range configs {
		work <- cfg
	}
	close(work)
	wg.Wait()

	rep := &Report{}
	for _, o := range outcomes {
		if o != nil {
			rep.Outcomes = append(rep.Outcomes, *o)
		}
	}
	for _, err := range errs {
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// sweepState is the per-Run shared bookkeeping: the warning sink and the
// set of geometry-group cache files already loaded, so each group's
// snapshot is read once per sweep rather than once per member config
// (loading again would be harmless — keep-first adds 0 — just wasted I/O).
type sweepState struct {
	warnf  func(format string, args ...any)
	mu     sync.Mutex
	loaded map[string]bool
}

// firstLoad reports whether the caller is the first to claim path this run.
func (st *sweepState) firstLoad(path string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.loaded[path] {
		return false
	}
	st.loaded[path] = true
	return true
}

// groupCachePath names the warm-start snapshot shared by every config of
// one (model, tiling, core geometry) group. All grid points of a model
// share the sweep platform's core geometry — the grid varies capacities,
// kind, cores, and batch only — so this is one file per model in practice.
func groupCachePath(dir string, cfg Config, core hw.Core) string {
	return filepath.Join(dir, fmt.Sprintf("%s_t%s_%s.cache", cfg.Model, cfg.Tiling, core.GeometryID()))
}

// warnStaleCaches reports (without failing) any .cache file in the
// checkpoint dir that no geometry group of this sweep will read — most
// commonly per-config <ID>.cache files written by the older layout, which
// the per-geometry naming superseded. They are left on disk untouched.
func warnStaleCaches(dir string, expected map[string]bool, warnf func(string, ...any)) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return // the sweep will surface real I/O problems itself
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || filepath.Ext(name) != ".cache" || expected[name] {
			continue
		}
		warnf("ignoring stale cache snapshot %s: not a per-geometry warm-start file of this sweep (older per-config snapshots are obsolete and can be deleted)",
			filepath.Join(dir, name))
	}
}

// runConfig searches one grid point, honoring persisted outcomes and
// checkpoints when the sweep has a checkpoint directory.
func runConfig(opt Options, st *sweepState, gc *eval.GraphContext, cfg Config) (*Outcome, error) {
	var donePath, ckptPath, cachePath string
	if opt.CheckpointDir != "" {
		donePath = filepath.Join(opt.CheckpointDir, cfg.ID()+".done.json")
		ckptPath = filepath.Join(opt.CheckpointDir, cfg.ID()+".ckpt")
		if !opt.DisableCacheSnapshots {
			cachePath = groupCachePath(opt.CheckpointDir, cfg, opt.Platform.Core)
		}
		if out, err := loadOutcome(gc, cfg, donePath); err != nil {
			return nil, err
		} else if out != nil {
			return out, nil
		}
	}

	platform := opt.Platform
	platform.Cores = cfg.Cores
	platform.Batch = cfg.Batch
	ev, err := gc.NewEvaluator(platform)
	if err != nil {
		return nil, fmt.Errorf("dse: config %s: %w", cfg.ID(), err)
	}
	// Warm-start: the geometry group's snapshot from a prior run (or a prior
	// pause) pre-fills the shared cost cache, once per group per sweep.
	// Keep-first load semantics make this invisible to results — the search
	// trajectory is bit-identical either way — so a damaged or foreign file
	// is an error, not a cold start. The one exception is an old-format
	// snapshot (pre-geometry fingerprint): those can never match and are
	// skipped loudly so existing checkpoint dirs stay resumable.
	if cachePath != "" && st.firstLoad(cachePath) {
		snap, err := serialize.ReadCostCacheFile(cachePath)
		switch {
		case err == nil:
			if _, lerr := ev.LoadCache(snap); lerr != nil {
				return nil, fmt.Errorf("dse: config %s: %s: %w", cfg.ID(), cachePath, lerr)
			}
		case errors.Is(err, os.ErrNotExist):
			// Cold start; the group's snapshot is written below.
		case errors.Is(err, serialize.ErrCostCacheTooOld):
			st.warnf("ignoring stale cache snapshot %s: %v (starting this geometry group cold)", cachePath, err)
		default:
			return nil, fmt.Errorf("dse: config %s: %w", cfg.ID(), err)
		}
	}

	sopt := opt.Search
	sopt.Core.Seed += int64(cfg.Index)
	sopt.Core.Mem = core.MemSearch{Kind: cfg.Mem.Kind, Fixed: cfg.Mem}
	sopt.Checkpoint = ckptPath
	resumed := false
	if ckptPath != "" {
		if _, err := os.Stat(ckptPath); err == nil {
			resumed = true
		}
	}

	best, stats, serr := search.RunOrResume(ev, sopt, ckptPath)
	if stats == nil {
		return nil, fmt.Errorf("dse: config %s: %w", cfg.ID(), serr)
	}
	// Persist the warm half regardless of how the search ended: the export
	// walks the SHARED cache, so each completing config refreshes the
	// geometry group's single snapshot with everything any sibling has
	// computed so far. Writes are atomic and the cache only grows, so
	// concurrent completions are safe — last writer wins with a superset
	// semantics good enough for a warm start (loads are keep-first anyway).
	if cachePath != "" {
		snap, err := ev.ExportCache()
		if err != nil {
			return nil, fmt.Errorf("dse: config %s: %w", cfg.ID(), err)
		}
		if err := serialize.WriteCostCacheFile(cachePath, snap); err != nil {
			return nil, fmt.Errorf("dse: config %s: %w", cfg.ID(), err)
		}
	}
	out := &Outcome{Config: cfg, Samples: stats.Samples, Resumed: resumed}
	if best != nil {
		out.Feasible = true
		out.Cost = best.Cost
		out.Assign = best.P.Assignment()
		out.Res = best.Res
	}
	if stats.Paused {
		// Budget remains; the checkpoint stands and the next Run resumes it.
		out.Status = StatusPaused
		return out, nil
	}
	if !out.Feasible {
		out.Status = StatusInfeasible
	} else {
		out.Status = StatusDone
	}
	if donePath != "" {
		if err := saveOutcome(gc, cfg, out, donePath); err != nil {
			return nil, err
		}
		os.Remove(ckptPath) // the outcome file supersedes the search checkpoint
	}
	return out, nil
}

// loadOutcome restores a persisted outcome, returning (nil, nil) when the
// file does not exist.
func loadOutcome(gc *eval.GraphContext, cfg Config, path string) (*Outcome, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dse: read outcome: %w", err)
	}
	j, err := serialize.DecodeSweepOutcome(data)
	if err != nil {
		return nil, fmt.Errorf("dse: %s: %w", path, err)
	}
	if j.ConfigID != cfg.ID() {
		return nil, fmt.Errorf("dse: outcome file %s is for config %q, want %q", path, j.ConfigID, cfg.ID())
	}
	out := &Outcome{
		Config:   cfg,
		Status:   StatusSkipped,
		Feasible: j.Feasible,
		Cost:     j.Cost,
		Assign:   j.Assign,
		Res:      serialize.DecodeResult(j.Res),
		Samples:  j.Samples,
	}
	return out, nil
}

// saveOutcome persists a completed outcome atomically (tmp + rename), the
// same durability discipline the search checkpoints use.
func saveOutcome(gc *eval.GraphContext, cfg Config, out *Outcome, path string) error {
	j := &serialize.SweepOutcomeJSON{
		ConfigID: cfg.ID(),
		Graph:    gc.Graph().Name,
		Mem:      serialize.EncodeMemConfig(cfg.Mem),
		Cores:    cfg.Cores,
		Batch:    cfg.Batch,
		Tiling:   cfg.Tiling.String(),
		Feasible: out.Feasible,
		Cost:     out.Cost,
		Samples:  out.Samples,
		Assign:   out.Assign,
		Res:      serialize.EncodeResult(out.Res),
	}
	data, err := serialize.EncodeSweepOutcome(j)
	if err != nil {
		return err
	}
	if err := serialize.AtomicWriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("dse: write outcome: %w", err)
	}
	return nil
}

// Paused reports whether any outcome is paused (the sweep is incomplete and
// should be re-run to continue).
func (r *Report) Paused() bool {
	for _, o := range r.Outcomes {
		if o.Status == StatusPaused {
			return true
		}
	}
	return false
}

// ParetoFront returns the model's non-dominated completed outcomes on
// (total buffer bytes, cost), sorted by capacity: no other feasible point
// has both no-more silicon and no-worse cost (with one strictly better).
// Paused points are excluded — their costs are not final.
func (r *Report) ParetoFront(model string) []Outcome {
	var pts []Outcome
	for _, o := range r.Outcomes {
		if o.Config.Model != model || !o.Feasible || o.Status == StatusPaused {
			continue
		}
		pts = append(pts, o)
	}
	sort.Slice(pts, func(i, j int) bool {
		bi, bj := pts[i].Config.Mem.TotalBytes(), pts[j].Config.Mem.TotalBytes()
		if bi != bj {
			return bi < bj
		}
		if pts[i].Cost != pts[j].Cost {
			return pts[i].Cost < pts[j].Cost
		}
		return pts[i].Config.Index < pts[j].Config.Index
	})
	var front []Outcome
	for _, p := range pts {
		if len(front) > 0 && p.Cost >= front[len(front)-1].Cost {
			continue // dominated by a smaller-or-equal configuration
		}
		front = append(front, p)
	}
	return front
}

// Models returns the distinct models with outcomes, in grid order.
func (r *Report) Models() []string {
	var out []string
	seen := map[string]bool{}
	for _, o := range r.Outcomes {
		if !seen[o.Config.Model] {
			seen[o.Config.Model] = true
			out = append(out, o.Config.Model)
		}
	}
	return out
}

// Table renders the full sweep as a report table, marking Pareto-front
// points per model.
func (r *Report) Table() *report.Table {
	onFront := map[int]bool{}
	for _, m := range r.Models() {
		for _, o := range r.ParetoFront(m) {
			onFront[o.Config.Index] = true
		}
	}
	t := report.NewTable("DSE sweep",
		"model", "mem", "cores", "batch", "status", "cost", "EMA", "energy", "samples", "pareto")
	for _, o := range r.Outcomes {
		cost, ema, energy := "-", "-", "-"
		if o.Feasible {
			cost = fmt.Sprintf("%.4g", o.Cost)
			if o.Res != nil {
				ema = report.Bytes(o.Res.EMABytes)
				energy = report.MJ(o.Res.EnergyPJ)
			}
		}
		mark := ""
		if onFront[o.Config.Index] {
			mark = "*"
		}
		t.AddRow(o.Config.Model, o.Config.Mem.String(), o.Config.Cores, o.Config.Batch,
			o.Status.String(), cost, ema, energy, o.Samples, mark)
	}
	return t
}

// FrontTable renders just the per-model Pareto fronts (capacity vs cost),
// the sweep's headline artifact.
func (r *Report) FrontTable() *report.Table {
	t := report.NewTable("Pareto front (buffer capacity vs cost)",
		"model", "mem", "total", "cores", "batch", "cost", "EMA", "energy", "latency")
	for _, m := range r.Models() {
		for _, o := range r.ParetoFront(m) {
			ema, energy, lat := "-", "-", "-"
			if o.Res != nil {
				ema = report.Bytes(o.Res.EMABytes)
				energy = report.MJ(o.Res.EnergyPJ)
				lat = fmt.Sprintf("%d", o.Res.LatencyCycles)
			}
			t.AddRow(m, o.Config.Mem.String(), report.Bytes(o.Config.Mem.TotalBytes()),
				o.Config.Cores, o.Config.Batch, fmt.Sprintf("%.4g", o.Cost), ema, energy, lat)
		}
	}
	return t
}
