package dse

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cocco/internal/core"
	"cocco/internal/hw"
	"cocco/internal/search"
	"cocco/internal/serialize"
	"cocco/internal/tiling"
)

// testGrid is a small two-model sweep: 3 global × 2 weight separate-buffer
// points plus 2 shared points per model = 16 configs total.
func testGrid() Grid {
	return Grid{
		Models:      []string{"googlenet", "mobilenetv2"},
		Kinds:       []hw.BufferKind{hw.SeparateBuffer, hw.SharedBuffer},
		GlobalBytes: []int64{256 * hw.KiB, 512 * hw.KiB, 1024 * hw.KiB},
		WeightBytes: []int64{288 * hw.KiB, 576 * hw.KiB},
	}
}

// testSearch keeps per-config searches tiny; sweeps here exist to exercise
// the driver, not the optimizer.
func testSearch() search.Options {
	return search.Options{
		Core: core.Options{Seed: 17, Workers: 2, Population: 12, MaxSamples: 120},
	}
}

func TestGridConfigs(t *testing.T) {
	configs, err := testGrid().Configs()
	if err != nil {
		t.Fatal(err)
	}
	// Per model: separate 3×2=6 + shared 3×1=3 (weight axis collapses).
	if want := 2 * (6 + 3); len(configs) != want {
		t.Fatalf("got %d configs, want %d", len(configs), want)
	}
	ids := map[string]bool{}
	for i, c := range configs {
		if c.Index != i {
			t.Fatalf("config %d has Index %d", i, c.Index)
		}
		if c.Cores != 1 || c.Batch != 1 {
			t.Fatalf("default cores/batch not applied: %+v", c)
		}
		if c.Tiling != tiling.DefaultConfig() {
			t.Fatalf("default tiling not applied: %+v", c)
		}
		if ids[c.ID()] {
			t.Fatalf("duplicate config ID %q", c.ID())
		}
		ids[c.ID()] = true
		if c.Mem.Kind == hw.SharedBuffer && c.Mem.WeightBytes != 0 {
			t.Fatalf("shared point kept a weight capacity: %+v", c)
		}
	}
	// Expansion is deterministic: a second call gives the identical slice.
	again, err := testGrid().Configs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(configs, again) {
		t.Fatal("grid expansion is not deterministic")
	}
}

func TestGridConfigsRejectsBadPoints(t *testing.T) {
	cases := []Grid{
		{},
		{Models: []string{"googlenet"}},
		{Models: []string{"no-such-model"}, GlobalBytes: []int64{1 << 20}, WeightBytes: []int64{1 << 20}},
		{Models: []string{"googlenet"}, GlobalBytes: []int64{1 << 20}}, // separate kind, no weights
		{Models: []string{"googlenet"}, GlobalBytes: []int64{-5}, WeightBytes: []int64{1 << 20}},
	}
	for i, g := range cases {
		if _, err := g.Configs(); err == nil {
			t.Errorf("case %d: bad grid accepted", i)
		}
	}
}

// sweepCosts maps config ID -> (feasible, cost) for comparing runs.
func sweepCosts(r *Report) map[string][2]float64 {
	out := map[string][2]float64{}
	for _, o := range r.Outcomes {
		f := 0.0
		if o.Feasible {
			f = 1
		}
		out[o.Config.ID()] = [2]float64{f, o.Cost}
	}
	return out
}

func frontIDs(r *Report) map[string][]string {
	out := map[string][]string{}
	for _, m := range r.Models() {
		for _, o := range r.ParetoFront(m) {
			out[m] = append(out[m], o.Config.ID())
		}
	}
	return out
}

func TestSweepRunsGrid(t *testing.T) {
	grid := testGrid()
	rep, err := Run(Options{Grid: grid, Search: testSearch(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	configs, _ := grid.Configs()
	if len(rep.Outcomes) != len(configs) {
		t.Fatalf("got %d outcomes, want %d", len(rep.Outcomes), len(configs))
	}
	for i, o := range rep.Outcomes {
		if o.Config.Index != i {
			t.Fatalf("outcome %d out of grid order: %+v", i, o.Config)
		}
		if o.Status == StatusPaused || o.Status == StatusSkipped {
			t.Fatalf("config %s: unexpected status %v without checkpoints", o.Config.ID(), o.Status)
		}
		if o.Status == StatusDone {
			if !o.Feasible || o.Res == nil || len(o.Assign) == 0 || o.Samples == 0 {
				t.Fatalf("done outcome missing payload: %+v", o)
			}
		}
	}
	// Every model must have a non-empty front with strictly decreasing cost
	// over strictly increasing capacity.
	for _, m := range rep.Models() {
		front := rep.ParetoFront(m)
		if len(front) == 0 {
			t.Fatalf("model %s: empty Pareto front", m)
		}
		for i := 1; i < len(front); i++ {
			if front[i].Config.Mem.TotalBytes() <= front[i-1].Config.Mem.TotalBytes() {
				t.Fatalf("model %s: front not capacity-sorted", m)
			}
			if front[i].Cost >= front[i-1].Cost {
				t.Fatalf("model %s: front point %d not cost-improving", m, i)
			}
		}
	}
	// Table renderers must cover every outcome / front point without panics.
	if got := len(rep.Table().Rows()); got != len(rep.Outcomes) {
		t.Fatalf("Table has %d rows, want %d", got, len(rep.Outcomes))
	}
	if rep.FrontTable().CSV() == "" {
		t.Fatal("empty front CSV")
	}
}

// TestSweepWorkersIrrelevant pins that the worker count does not change any
// outcome (each config's search is self-contained and seeded by index).
func TestSweepWorkersIrrelevant(t *testing.T) {
	grid := Grid{
		Models:      []string{"googlenet"},
		GlobalBytes: []int64{256 * hw.KiB, 1024 * hw.KiB},
		WeightBytes: []int64{288 * hw.KiB},
	}
	serial, err := Run(Options{Grid: grid, Search: testSearch(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallelRep, err := Run(Options{Grid: grid, Search: testSearch(), Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sweepCosts(serial), sweepCosts(parallelRep)) {
		t.Fatal("worker count changed sweep results")
	}
}

func TestSweepSkipsCompleted(t *testing.T) {
	dir := t.TempDir()
	grid := Grid{
		Models:      []string{"googlenet"},
		GlobalBytes: []int64{256 * hw.KiB, 512 * hw.KiB},
		WeightBytes: []int64{288 * hw.KiB},
	}
	first, err := Run(Options{Grid: grid, Search: testSearch(), CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(Options{Grid: grid, Search: testSearch(), CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range second.Outcomes {
		if o.Status != StatusSkipped {
			t.Fatalf("config %s not skipped on rerun: %v", o.Config.ID(), o.Status)
		}
		w := first.Outcomes[i]
		if o.Feasible != w.Feasible || o.Cost != w.Cost || o.Samples != w.Samples ||
			!reflect.DeepEqual(o.Assign, w.Assign) {
			t.Fatalf("config %s: restored outcome diverges\n first: %+v\nsecond: %+v", o.Config.ID(), w, o)
		}
		if w.Res != nil {
			if o.Res == nil || o.Res.EMABytes != w.Res.EMABytes || o.Res.EnergyPJ != w.Res.EnergyPJ ||
				o.Res.LatencyCycles != w.Res.LatencyCycles || o.Res.NumSubgraphs != w.Res.NumSubgraphs {
				t.Fatalf("config %s: restored result diverges", o.Config.ID())
			}
		}
	}
	// Completed configs leave no search checkpoints behind.
	if m, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(m) != 0 {
		t.Fatalf("stale checkpoints after completed sweep: %v", m)
	}
}

// TestSweepWritesCacheSnapshots: a checkpointed sweep leaves ONE decodable
// cost-cache snapshot per (model, tiling, core geometry) group — not one
// per config — and a rerun warm-starts from it without changing any
// outcome.
func TestSweepWritesCacheSnapshots(t *testing.T) {
	dir := t.TempDir()
	grid := Grid{
		Models:      []string{"googlenet"},
		GlobalBytes: []int64{256 * hw.KiB, 512 * hw.KiB},
		WeightBytes: []int64{288 * hw.KiB},
	}
	first, err := Run(Options{Grid: grid, Search: testSearch(), CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	configs, _ := grid.Configs()
	groupPath := groupCachePath(dir, configs[0], hw.DefaultPlatform().Core)
	snap, err := serialize.ReadCostCacheFile(groupPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) == 0 {
		t.Error("empty geometry-group cache snapshot")
	}
	// One file per geometry group: this single-model single-geometry sweep
	// must leave exactly one .cache file, whatever its config count.
	if m, _ := filepath.Glob(filepath.Join(dir, "*.cache")); len(m) != 1 {
		t.Fatalf("want exactly 1 geometry-group cache file, got %v", m)
	}
	// Fresh checkpoint dir seeded with only the group snapshot: the whole
	// grid re-searches from the warm cache and must reproduce every outcome.
	warmDir := t.TempDir()
	data, err := os.ReadFile(groupPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(groupCachePath(warmDir, configs[0], hw.DefaultPlatform().Core), data, 0o644); err != nil {
		t.Fatal(err)
	}
	warm, err := Run(Options{Grid: grid, Search: testSearch(), CheckpointDir: warmDir})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sweepCosts(warm), sweepCosts(first)) {
		t.Fatalf("warm-started sweep diverges\n want %v\n got %v", sweepCosts(first), sweepCosts(warm))
	}

	// Opting out really opts out.
	offDir := t.TempDir()
	if _, err := Run(Options{Grid: grid, Search: testSearch(), CheckpointDir: offDir,
		DisableCacheSnapshots: true}); err != nil {
		t.Fatal(err)
	}
	if m, _ := filepath.Glob(filepath.Join(offDir, "*.cache")); len(m) != 0 {
		t.Fatalf("cache snapshots written despite DisableCacheSnapshots: %v", m)
	}
}

// TestSweepRejectsCorruptCacheSnapshot: a damaged geometry-group cache file
// fails the sweep loudly instead of silently starting cold or loading junk.
func TestSweepRejectsCorruptCacheSnapshot(t *testing.T) {
	grid := Grid{
		Models:      []string{"googlenet"},
		GlobalBytes: []int64{256 * hw.KiB},
		WeightBytes: []int64{288 * hw.KiB},
	}
	configs, _ := grid.Configs()
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("not a cache snapshot at all")},
		{"truncated magic", []byte("COCCACHE")},
	} {
		dir := t.TempDir()
		path := groupCachePath(dir, configs[0], hw.DefaultPlatform().Core)
		if err := os.WriteFile(path, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(Options{Grid: grid, Search: testSearch(), CheckpointDir: dir}); err == nil {
			t.Errorf("%s: corrupt cache snapshot accepted", tc.name)
		}
	}
}

// TestSweepSkipsStaleCacheFiles: pre-geometry cache files — per-config
// names from the old layout, and old-format frames under the new name —
// are reported through Warnf and skipped, never a hard failure, so
// checkpoint dirs written before the shared cache remain resumable.
func TestSweepSkipsStaleCacheFiles(t *testing.T) {
	dir := t.TempDir()
	grid := Grid{
		Models:      []string{"googlenet"},
		GlobalBytes: []int64{256 * hw.KiB},
		WeightBytes: []int64{288 * hw.KiB},
	}
	configs, _ := grid.Configs()
	// A per-config cache file as the PR-7 layout named them.
	stalePerConfig := filepath.Join(dir, configs[0].ID()+".cache")
	if err := os.WriteFile(stalePerConfig, []byte("old per-config snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A version-1 frame under the new geometry-group name: magic + version 1,
	// then padding so only the version check can reject it.
	old := append([]byte("COCCACHE"), 1, 0, 0, 0)
	old = append(old, make([]byte, 40)...)
	groupPath := groupCachePath(dir, configs[0], hw.DefaultPlatform().Core)
	if err := os.WriteFile(groupPath, old, 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var warnings []string
	rep, err := Run(Options{Grid: grid, Search: testSearch(), CheckpointDir: dir,
		Warnf: func(format string, args ...any) {
			mu.Lock()
			warnings = append(warnings, fmt.Sprintf(format, args...))
			mu.Unlock()
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != len(configs) {
		t.Fatalf("sweep incomplete: %d outcomes, want %d", len(rep.Outcomes), len(configs))
	}
	wantSubstrings := []string{stalePerConfig, "version too old"}
	for _, want := range wantSubstrings {
		found := false
		for _, w := range warnings {
			if strings.Contains(w, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no warning mentioning %q in %q", want, warnings)
		}
	}
	// The sweep ran cold past the stale files and replaced the group
	// snapshot with a current-format one.
	if _, err := serialize.ReadCostCacheFile(groupPath); err != nil {
		t.Fatalf("group snapshot not rewritten in current format: %v", err)
	}
	// The stale per-config file is left untouched for the user to delete.
	if _, err := os.Stat(stalePerConfig); err != nil {
		t.Fatalf("stale per-config file was removed: %v", err)
	}
}

func TestSweepRejectsForeignOutcomeFile(t *testing.T) {
	dir := t.TempDir()
	grid := Grid{
		Models:      []string{"googlenet"},
		GlobalBytes: []int64{256 * hw.KiB},
		WeightBytes: []int64{288 * hw.KiB},
	}
	configs, _ := grid.Configs()
	// An outcome file whose recorded config ID disagrees with its filename
	// (e.g. hand-renamed) must fail the sweep, not silently misattribute.
	path := filepath.Join(dir, configs[0].ID()+".done.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"config_id":"other","feasible":false,"samples":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Options{Grid: grid, Search: testSearch(), CheckpointDir: dir}); err == nil {
		t.Fatal("mismatched outcome file accepted")
	}
}

// TestSweepResumeParetoIdentical is the resumability contract: a sweep
// interrupted mid-grid — both by an abort between configs and by MaxRounds
// pauses inside configs — and then resumed produces outcome costs and a
// Pareto front bit-identical to an uninterrupted run.
func TestSweepResumeParetoIdentical(t *testing.T) {
	grid := Grid{
		Models:      []string{"googlenet", "mobilenetv2"},
		GlobalBytes: []int64{256 * hw.KiB, 512 * hw.KiB, 1024 * hw.KiB},
		WeightBytes: []int64{288 * hw.KiB},
	}

	// Reference: one uninterrupted sweep.
	want, err := Run(Options{Grid: grid, Search: testSearch(), CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: phase 1 aborts after 2 completed configs; phase 2 runs
	// every remaining config but pauses each search after 2 rounds; phase 3
	// finishes everything. Workers=1 keeps the abort point deterministic.
	dir := t.TempDir()
	seen := 0
	_, err = Run(Options{Grid: grid, Search: testSearch(), CheckpointDir: dir, Workers: 1,
		OnConfigDone: func(Outcome) error {
			seen++
			if seen == 2 {
				return fmt.Errorf("simulated crash")
			}
			return nil
		}})
	if err == nil {
		t.Fatal("expected abort error")
	}

	paused := testSearch()
	paused.MaxRounds = 1
	mid, err := Run(Options{Grid: grid, Search: paused, CheckpointDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sawPause, sawSkip := false, false
	for _, o := range mid.Outcomes {
		sawPause = sawPause || o.Status == StatusPaused
		sawSkip = sawSkip || o.Status == StatusSkipped
	}
	if !sawPause || !sawSkip {
		t.Fatalf("interrupted pass exercised too little: paused=%v skipped=%v", sawPause, sawSkip)
	}
	if !mid.Paused() {
		t.Fatal("Report.Paused() must reflect paused configs")
	}

	got, err := Run(Options{Grid: grid, Search: testSearch(), CheckpointDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	resumedAny := false
	for _, o := range got.Outcomes {
		resumedAny = resumedAny || o.Resumed
	}
	if !resumedAny {
		t.Fatal("final pass resumed no search checkpoints")
	}

	if !reflect.DeepEqual(sweepCosts(got), sweepCosts(want)) {
		t.Fatalf("resumed sweep costs diverge\n want %v\n got %v", sweepCosts(want), sweepCosts(got))
	}
	if !reflect.DeepEqual(frontIDs(got), frontIDs(want)) {
		t.Fatalf("resumed Pareto front diverges\n want %v\n got %v", frontIDs(want), frontIDs(got))
	}
}
