package dse

import (
	"fmt"

	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/tiling"
)

// Grid declares the hardware-design sweep: the cartesian product of its
// axes, per model. Empty axes default to a single neutral value (Cores and
// Batch default to 1; Kinds defaults to the separate design), so a minimal
// grid is just Models × GlobalBytes (× WeightBytes for the separate kind).
type Grid struct {
	// Models are zoo model names (models.Build).
	Models []string
	// Kinds are the buffer designs to sweep.
	Kinds []hw.BufferKind
	// GlobalBytes are the global-buffer (or shared, for SharedBuffer)
	// capacity candidates in bytes.
	GlobalBytes []int64
	// WeightBytes are the weight-buffer capacity candidates (separate
	// design only; ignored for SharedBuffer points).
	WeightBytes []int64
	// Cores and Batch are the platform axes.
	Cores []int
	Batch []int
	// Tiling is the tiling config shared by every grid point; the zero
	// value means tiling.DefaultConfig().
	Tiling tiling.Config
}

// Config is one grid point: a model and the full hardware configuration its
// search runs under. Index is the point's position in grid order.
type Config struct {
	Index  int
	Model  string
	Mem    hw.MemConfig
	Cores  int
	Batch  int
	Tiling tiling.Config
}

// ID is the config's stable, filesystem-safe identifier; per-config
// checkpoint and outcome files are named by it, and resumes verify it.
func (c Config) ID() string {
	return fmt.Sprintf("%s_%s_g%d_w%d_c%d_b%d_t%s",
		c.Model, c.Mem.Kind, c.Mem.GlobalBytes, c.Mem.WeightBytes, c.Cores, c.Batch, c.Tiling)
}

func (c Config) String() string {
	return fmt.Sprintf("%s %v cores=%d batch=%d", c.Model, c.Mem, c.Cores, c.Batch)
}

// withDefaults fills the neutral axis values.
func (g Grid) withDefaults() Grid {
	if len(g.Kinds) == 0 {
		g.Kinds = []hw.BufferKind{hw.SeparateBuffer}
	}
	if len(g.Cores) == 0 {
		g.Cores = []int{1}
	}
	if len(g.Batch) == 0 {
		g.Batch = []int{1}
	}
	if g.Tiling == (tiling.Config{}) {
		g.Tiling = tiling.DefaultConfig()
	}
	return g
}

// Configs expands the grid into its points, in a fixed deterministic order
// (model-major, then kind, capacities, cores, batch), validating every
// memory configuration and model name up front so a sweep never fails
// halfway through on a malformed point.
func (g Grid) Configs() ([]Config, error) {
	g = g.withDefaults()
	if len(g.Models) == 0 {
		return nil, fmt.Errorf("dse: grid has no models")
	}
	if len(g.GlobalBytes) == 0 {
		return nil, fmt.Errorf("dse: grid has no global-buffer capacities")
	}
	for _, m := range g.Models {
		if _, err := models.Build(m); err != nil {
			return nil, fmt.Errorf("dse: grid model: %w", err)
		}
	}
	var out []Config
	for _, model := range g.Models {
		for _, kind := range g.Kinds {
			wgts := g.WeightBytes
			if kind == hw.SharedBuffer {
				wgts = []int64{0}
			} else if len(wgts) == 0 {
				return nil, fmt.Errorf("dse: separate-buffer grid needs weight capacities")
			}
			for _, glb := range g.GlobalBytes {
				for _, wgt := range wgts {
					mem := hw.MemConfig{Kind: kind, GlobalBytes: glb, WeightBytes: wgt}
					if err := mem.Validate(); err != nil {
						return nil, fmt.Errorf("dse: grid point: %w", err)
					}
					for _, cores := range g.Cores {
						for _, batch := range g.Batch {
							out = append(out, Config{
								Index:  len(out),
								Model:  model,
								Mem:    mem,
								Cores:  cores,
								Batch:  batch,
								Tiling: g.Tiling,
							})
						}
					}
				}
			}
		}
	}
	return out, nil
}
