// Package serve is the search job server behind cmd/coccod: an HTTP/JSON
// API where a client submits a (model, tiling, platform, search options,
// sample budget) job, polls or streams progress, cancels, and fetches the
// final genome and cost.
//
// Scheduling. A fixed pool of PoolWorkers goroutines time-slices jobs
// fairly: the run queue is FIFO, a worker pops the head, advances it by one
// slice — SliceRounds migration rounds through search.RunOrResume with
// MaxRounds — and requeues it at the tail, so K concurrent jobs on a
// 1-worker pool round-robin at slice granularity. Slicing never shapes a
// trajectory (the PR-5 pause contract), so a served job's result is
// bit-identical to a direct search.Run with the same spec and seed,
// whatever the pool width or slice length.
//
// Durability. Every slice boundary persists two files per job, both written
// atomically: the orchestrator checkpoint (written by the search itself at
// every round barrier) and a versioned job manifest
// (serialize.JobManifestJSON) cataloguing the spec, state, and progress. A
// killed or restarted server rescans its directory, re-admits every
// non-terminal job, and resumes each from its checkpoint bit-identically —
// pinned by the kill-and-restart test against a direct run.
//
// Job state machine:
//
//	queued ──▶ running ──▶ paused ──▶ running ─▶ … ─▶ done
//	   │           │           │
//	   ▼           ▼           ▼
//	cancelled  (flag; lands at the next slice boundary)  failed
//
// queued: admitted, waiting for a pool worker (also every non-terminal
// state after a restart). running: a slice is in flight. paused: between
// slices, requeued. done: budget exhausted — Result holds the best genome,
// or is absent with Error set when no feasible genome exists. cancelled:
// by client request, applied immediately when waiting and at the next slice
// boundary when running (the in-flight slice is never aborted mid-round;
// its checkpoint stays on disk). failed: evaluator construction or
// checkpoint I/O errors.
package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/search"
	"cocco/internal/serialize"
)

// Options configures a Server.
type Options struct {
	// Dir is the job directory: one <id>.job manifest and one <id>.ckpt
	// checkpoint per job. Created if missing; rescanned at startup.
	Dir string
	// PoolWorkers is the number of concurrent job slices (default 1).
	PoolWorkers int
	// SliceRounds is the number of migration rounds per scheduling slice
	// (default 4). Smaller slices preempt fairer; larger slices amortize
	// resume overhead. Never affects results.
	SliceRounds int
	// EvalWorkers is the scoring-goroutine budget inside each slice
	// (default 1, so a full pool oversubscribes the CPU by at most
	// PoolWorkers). Never affects results.
	EvalWorkers int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.PoolWorkers <= 0 {
		o.PoolWorkers = 1
	}
	if o.SliceRounds <= 0 {
		o.SliceRounds = 4
	}
	if o.EvalWorkers <= 0 {
		o.EvalWorkers = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// job is one tracked search job. All mutable fields are guarded by
// Server.mu; spec and id are immutable after admission.
type job struct {
	id   string
	spec serialize.JobSpecJSON

	state    string
	slices   int
	progress *serialize.JobProgressJSON
	result   *serialize.GenomeJSON
	errMsg   string

	cancelRequested bool
	submitted       time.Time
	updated         time.Time
	runDur          time.Duration   // wall time inside completed slices
	sliceStart      time.Time       // valid while state == running
	ev              *eval.Evaluator // lazily built, dropped on terminal states
	watch           chan struct{}   // closed and replaced on every visible change
}

// Server multiplexes many concurrent search jobs over a fixed worker pool.
type Server struct {
	opt Options

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   map[string]*job
	order  []string // admission order, for stable listings
	queue  []*job   // FIFO of runnable (queued/paused) jobs
	nextID int
	closed bool

	wg sync.WaitGroup
}

// NewServer opens (or creates) the job directory, re-admits every
// non-terminal job found there, and starts the worker pool. Jobs that were
// queued, running, or paused when the previous server died are requeued in
// ID order and resume from their checkpoints.
func NewServer(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, errors.New("serve: Options.Dir is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: job dir: %w", err)
	}
	s := &Server{opt: opt, jobs: make(map[string]*job)}
	s.cond = sync.NewCond(&s.mu)
	if err := s.rescan(); err != nil {
		return nil, err
	}
	for i := 0; i < opt.PoolWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// rescan loads every manifest in the job directory. Terminal jobs are kept
// as records; everything else is requeued — a manifest frozen in "running"
// means the previous server died mid-slice, and the job's checkpoint (from
// the last completed round barrier) is the resume point.
func (s *Server) rescan() error {
	entries, err := os.ReadDir(s.opt.Dir)
	if err != nil {
		return fmt.Errorf("serve: scan job dir: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".job") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.opt.Dir, name))
		if err != nil {
			return fmt.Errorf("serve: scan job dir: %w", err)
		}
		m, err := serialize.DecodeJobManifest(data)
		if err != nil {
			return fmt.Errorf("serve: job manifest %s: %w (delete the file to drop the job)", name, err)
		}
		if m.ID != strings.TrimSuffix(name, ".job") {
			return fmt.Errorf("serve: job manifest %s claims ID %q", name, m.ID)
		}
		j := &job{
			id:        m.ID,
			spec:      m.Spec,
			state:     m.State,
			slices:    m.Slices,
			progress:  m.Progress,
			result:    m.Result,
			errMsg:    m.Error,
			submitted: time.Unix(m.SubmittedUnix, 0),
			updated:   time.Unix(m.UpdatedUnix, 0),
			watch:     make(chan struct{}),
		}
		s.jobs[j.id] = j
		ids = append(ids, j.id)
		var n int
		if _, err := fmt.Sscanf(j.id, "j%d", &n); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
	}
	sort.Strings(ids)
	s.order = ids
	for _, id := range ids {
		j := s.jobs[id]
		if !terminal(j.state) {
			j.state = serialize.JobStateQueued
			s.queue = append(s.queue, j)
			s.opt.Logf("serve: re-admitted job %s (%s, %d slices done)", j.id, j.spec.Model, j.slices)
		}
	}
	return nil
}

func terminal(state string) bool {
	switch state {
	case serialize.JobStateDone, serialize.JobStateCancelled, serialize.JobStateFailed:
		return true
	}
	return false
}

// Close stops the worker pool and waits for in-flight slices to finish.
// Queued jobs stay durable in the directory; a new Server over the same
// directory picks them up.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// Submit admits a job: the spec is normalized and validated, the queued
// manifest is persisted durably before the ID is returned, and the job
// enters the FIFO run queue.
func (s *Server) Submit(spec serialize.JobSpecJSON) (string, error) {
	spec, err := NormalizeSpec(spec)
	if err != nil {
		return "", err
	}
	if _, err := buildOptions(spec); err != nil {
		return "", err
	}
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errors.New("serve: server is shutting down")
	}
	id := fmt.Sprintf("j%06d", s.nextID)
	s.nextID++
	j := &job{
		id: id, spec: spec,
		state:     serialize.JobStateQueued,
		submitted: now, updated: now,
		watch: make(chan struct{}),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, j)
	data, merr := serialize.EncodeJobManifest(s.manifestLocked(j))
	s.mu.Unlock()
	if merr == nil {
		merr = serialize.AtomicWriteFile(s.jobPath(id), data, 0o644)
	}
	if merr != nil {
		// Withdraw the admission: a job the directory doesn't know about
		// would silently vanish on restart.
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return "", fmt.Errorf("serve: persist job %s: %w", id, merr)
	}
	s.cond.Signal()
	return id, nil
}

// Cancel requests cancellation. A waiting job is cancelled immediately; a
// running one finishes its in-flight slice first (checkpoint and progress
// are persisted) and lands cancelled at the boundary. Cancelling a terminal
// job is an error.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	if terminal(j.state) {
		return fmt.Errorf("%w: job %s is already %s", ErrJobTerminal, id, j.state)
	}
	j.cancelRequested = true
	if j.state != serialize.JobStateRunning {
		s.transitionLocked(j, serialize.JobStateCancelled)
		s.persistLocked(j)
	}
	return nil
}

// Errors the HTTP layer maps to status codes.
var (
	ErrUnknownJob  = errors.New("serve: unknown job")
	ErrJobTerminal = errors.New("serve: job already terminal")
)

// Manifest returns a point-in-time copy of the job's manifest.
func (s *Server) Manifest(id string) (*serialize.JobManifestJSON, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return s.manifestLocked(j), nil
}

// Manifests lists every job in admission order.
func (s *Server) Manifests() []*serialize.JobManifestJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*serialize.JobManifestJSON, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.manifestLocked(s.jobs[id]))
	}
	return out
}

// Watch returns the job's current manifest and a channel that closes on its
// next visible change (progress, state, or result).
func (s *Server) Watch(id string) (*serialize.JobManifestJSON, <-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, ErrUnknownJob
	}
	return s.manifestLocked(j), j.watch, nil
}

// manifestLocked snapshots a job into its wire form. Caller holds mu.
func (s *Server) manifestLocked(j *job) *serialize.JobManifestJSON {
	m := &serialize.JobManifestJSON{
		Version:       serialize.JobManifestVersion,
		ID:            j.id,
		State:         j.state,
		Spec:          j.spec,
		Slices:        j.slices,
		Error:         j.errMsg,
		SubmittedUnix: j.submitted.Unix(),
		UpdatedUnix:   j.updated.Unix(),
	}
	if j.progress != nil {
		p := *j.progress
		p.Islands = append([]serialize.JobIslandJSON(nil), j.progress.Islands...)
		m.Progress = &p
	}
	if j.result != nil {
		r := *j.result
		m.Result = &r
	}
	return m
}

func (s *Server) jobPath(id string) string        { return filepath.Join(s.opt.Dir, id+".job") }
func (s *Server) checkpointPath(id string) string { return filepath.Join(s.opt.Dir, id+".ckpt") }

// transitionLocked moves a job to a new state and wakes watchers. Caller
// holds mu.
func (s *Server) transitionLocked(j *job, state string) {
	j.state = state
	j.updated = time.Now()
	if terminal(state) {
		j.ev = nil
	}
	close(j.watch)
	j.watch = make(chan struct{})
}

// persistLocked rewrites the job's manifest. Caller holds mu; the write
// itself is atomic, so a crash mid-rewrite leaves the previous manifest. A
// failed write is logged, not fatal: the checkpoint is the recovery state,
// the manifest only catalogs it.
func (s *Server) persistLocked(j *job) {
	data, err := serialize.EncodeJobManifest(s.manifestLocked(j))
	if err == nil {
		err = serialize.AtomicWriteFile(s.jobPath(j.id), data, 0o644)
	}
	if err != nil {
		s.opt.Logf("serve: persist job %s: %v", j.id, err)
	}
}

// worker is one pool goroutine: pop the FIFO head, run one slice, repeat.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && len(s.queue) == 0 {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		if j.state != serialize.JobStateQueued && j.state != serialize.JobStatePaused {
			// Cancelled while waiting in the queue.
			s.mu.Unlock()
			continue
		}
		j.sliceStart = time.Now()
		s.transitionLocked(j, serialize.JobStateRunning)
		s.persistLocked(j)
		s.mu.Unlock()
		s.runSlice(j)
	}
}

// runSlice advances one job by one MaxRounds-bounded slice and applies the
// outcome: requeue (paused), finish (done, with or without a feasible
// genome), cancel, or fail.
func (s *Server) runSlice(j *job) {
	opt, err := buildOptions(j.spec)
	if err != nil {
		s.finishSlice(j, nil, nil, err, 0)
		return
	}
	ckpt := s.checkpointPath(j.id)
	opt.Checkpoint = ckpt
	opt.MaxRounds = s.opt.SliceRounds
	opt.Core.Workers = s.opt.EvalWorkers
	opt.Progress = func(p search.Progress) { s.noteProgress(j, p) }

	s.mu.Lock()
	ev := j.ev
	s.mu.Unlock()
	if ev == nil {
		ev, err = newEvaluator(j.spec)
		if err != nil {
			s.finishSlice(j, nil, nil, fmt.Errorf("serve: job %s evaluator: %w", j.id, err), 0)
			return
		}
		s.mu.Lock()
		j.ev = ev
		s.mu.Unlock()
	}
	start := time.Now()
	best, stats, err := search.RunOrResume(ev, opt, ckpt)
	s.finishSlice(j, best, stats, err, time.Since(start))
}

// finishSlice is the single slice-boundary commit point: progress, state
// transition, manifest persist, and requeue all happen here.
func (s *Server) finishSlice(j *job, best *core.Genome, stats *search.Stats, err error, dur time.Duration) {
	s.mu.Lock()
	j.runDur += dur
	j.slices++
	if stats != nil {
		j.progress = progressFromStats(j.spec, stats, best, j.runDur)
	}
	requeue := false
	switch {
	case stats != nil && stats.Paused:
		if j.cancelRequested {
			s.transitionLocked(j, serialize.JobStateCancelled)
		} else {
			s.transitionLocked(j, serialize.JobStatePaused)
			s.queue = append(s.queue, j)
			requeue = true
		}
	case err == nil:
		j.result = search.EncodeGenome(best, true)
		s.transitionLocked(j, serialize.JobStateDone)
	case stats != nil:
		// The search completed its budget without a feasible genome: a
		// finished (if empty-handed) job, not a server failure.
		j.errMsg = err.Error()
		s.transitionLocked(j, serialize.JobStateDone)
	default:
		j.errMsg = err.Error()
		s.transitionLocked(j, serialize.JobStateFailed)
		s.opt.Logf("serve: job %s failed: %v", j.id, err)
	}
	s.persistLocked(j)
	s.mu.Unlock()
	if requeue {
		s.cond.Signal()
	}
}

// noteProgress is the per-round callback inside a slice: progress updates
// in memory (and to watchers) every round, while the manifest on disk
// advances at slice boundaries.
func (s *Server) noteProgress(j *job, p search.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	elapsed := j.runDur
	if !j.sliceStart.IsZero() {
		elapsed += time.Since(j.sliceStart)
	}
	j.progress = progressFromSearch(j.spec, p, elapsed)
	j.updated = time.Now()
	close(j.watch)
	j.watch = make(chan struct{})
}

// progressFromSearch converts a mid-run search.Progress snapshot.
func progressFromSearch(spec serialize.JobSpecJSON, p search.Progress, elapsed time.Duration) *serialize.JobProgressJSON {
	out := &serialize.JobProgressJSON{
		Rounds:          p.Rounds,
		Migrations:      p.Migrations,
		Samples:         p.Samples,
		FeasibleSamples: p.FeasibleSamples,
		MemoHits:        p.MemoHits,
		BestIsland:      p.BestIsland,
	}
	if p.HasBest {
		c := p.BestCost
		out.BestCost = &c
	}
	if secs := elapsed.Seconds(); secs > 0 {
		out.SamplesPerSec = float64(p.Samples) / secs
	}
	for i, is := range p.IslandStats {
		out.Islands = append(out.Islands, serialize.JobIslandJSON{
			Kind:            islandKind(spec, i),
			Samples:         is.Samples,
			FeasibleSamples: is.FeasibleSamples,
			MemoHits:        is.MemoHits,
		})
	}
	return out
}

// progressFromStats converts a slice-end search.Stats (plus the slice's
// best genome, which may be nil).
func progressFromStats(spec serialize.JobSpecJSON, st *search.Stats, best *core.Genome, elapsed time.Duration) *serialize.JobProgressJSON {
	out := &serialize.JobProgressJSON{
		Rounds:          st.Rounds,
		Migrations:      st.Migrations,
		Samples:         st.Samples,
		FeasibleSamples: st.FeasibleSamples,
		MemoHits:        st.MemoHits,
		BestIsland:      st.BestIsland,
	}
	if best != nil {
		c := best.Cost
		out.BestCost = &c
	}
	if secs := elapsed.Seconds(); secs > 0 {
		out.SamplesPerSec = float64(st.Samples) / secs
	}
	for i, is := range st.IslandStats {
		out.Islands = append(out.Islands, serialize.JobIslandJSON{
			Kind:            islandKind(spec, i),
			Samples:         is.Samples,
			FeasibleSamples: is.FeasibleSamples,
			MemoHits:        is.MemoHits,
		})
	}
	return out
}
