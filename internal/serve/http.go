package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"cocco/internal/serialize"
)

// HTTP/JSON API:
//
//	POST /jobs               submit a JobSpecJSON        → 201 {"id","state"}
//	GET  /jobs               list manifests              → 200 [manifest...]
//	GET  /jobs/{id}          one manifest                → 200 manifest
//	GET  /jobs/{id}/result   final genome and cost       → 200 result | 409 while non-terminal
//	POST /jobs/{id}/cancel   request cancellation        → 200 manifest | 409 if terminal
//	GET  /jobs/{id}/watch    ndjson manifest stream, one line per progress
//	                         update, ending with the terminal manifest
//
// Every error body is {"error": "..."}; unknown job IDs are 404, malformed
// specs 400, wrong-state requests 409.

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/watch", s.handleWatch)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusFor maps the store's sentinel errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrJobTerminal):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec serialize.JobSpecJSON
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id, "state": serialize.JobStateQueued})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Manifests())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	m, err := s.Manifest(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	m, err := s.Manifest(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if !terminal(m.State) {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s; result not ready", m.ID, m.State))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":       m.ID,
		"state":    m.State,
		"feasible": m.Result != nil,
		"result":   m.Result,
		"error":    m.Error,
		"progress": m.Progress,
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	m, err := s.Manifest(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// handleWatch streams the manifest as newline-delimited JSON: the current
// state immediately, then one line per visible change, ending after the
// terminal manifest is sent (or the client goes away).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	flusher, _ := w.(http.Flusher)
	first := true
	for {
		m, ch, err := s.Watch(id)
		if err != nil {
			if first {
				writeError(w, statusFor(err), err)
			}
			return
		}
		if first {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			first = false
		}
		line, err := json.Marshal(m)
		if err != nil {
			return
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal(m.State) {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}
