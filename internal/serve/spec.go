package serve

import (
	"fmt"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/search"
	"cocco/internal/serialize"
	"cocco/internal/tiling"
)

// Spec handling: a submitted JobSpecJSON is normalized once — defaults
// filled, every field validated — and the normalized form is what the
// manifest persists. Rebuilding search.Options from a persisted spec is
// therefore a pure function, which is what lets a restarted server resume a
// job under the exact fingerprint that produced its checkpoint.

// NormalizeSpec fills defaults and validates every field of a submitted job
// spec, mirroring cmd/cocco's flag defaults. The returned spec is what the
// manifest stores; normalizing before persisting keeps spec→options a pure
// function across server restarts.
func NormalizeSpec(spec serialize.JobSpecJSON) (serialize.JobSpecJSON, error) {
	if spec.Model == "" {
		return spec, fmt.Errorf("serve: job spec: model is required")
	}
	if _, err := models.Build(spec.Model); err != nil {
		return spec, fmt.Errorf("serve: job spec: %w", err)
	}
	if spec.Tiling == "" {
		spec.Tiling = tiling.DefaultConfig().String()
	}
	if _, err := tiling.ParseConfig(spec.Tiling); err != nil {
		return spec, fmt.Errorf("serve: job spec: %w", err)
	}
	if spec.Cores == 0 {
		spec.Cores = 1
	}
	if spec.Batch == 0 {
		spec.Batch = 1
	}
	if spec.Cores < 1 || spec.Batch < 1 {
		return spec, fmt.Errorf("serve: job spec: cores and batch must be >= 1")
	}
	switch spec.Metric {
	case "":
		spec.Metric = "energy"
	case "ema", "energy":
	default:
		return spec, fmt.Errorf("serve: job spec: unknown metric %q (want ema or energy)", spec.Metric)
	}
	switch spec.Kind {
	case "":
		spec.Kind = "separate"
	case "separate", "shared":
	default:
		return spec, fmt.Errorf("serve: job spec: unknown buffer kind %q (want separate or shared)", spec.Kind)
	}
	if spec.MemSearch && spec.Alpha == 0 {
		return spec, fmt.Errorf("serve: job spec: mem_search requires alpha > 0 (Formula 2)")
	}
	if !spec.MemSearch {
		if spec.GLBKiB == 0 {
			spec.GLBKiB = 1024
		}
		if spec.Kind == "separate" && spec.WGTKiB == 0 {
			spec.WGTKiB = 1152
		}
		if spec.GLBKiB < 0 || spec.WGTKiB < 0 {
			return spec, fmt.Errorf("serve: job spec: buffer capacities must be positive")
		}
	}
	if spec.Population == 0 {
		spec.Population = 100
	}
	if spec.Population < 2 {
		return spec, fmt.Errorf("serve: job spec: population must be >= 2")
	}
	if spec.Samples <= 0 {
		return spec, fmt.Errorf("serve: job spec: samples must be > 0")
	}
	if spec.Islands == 0 {
		spec.Islands = 1
	}
	if spec.Islands < 1 {
		return spec, fmt.Errorf("serve: job spec: islands must be >= 1")
	}
	if spec.MigrateEvery == 0 {
		spec.MigrateEvery = 5
	}
	if spec.Migrants == 0 {
		spec.Migrants = 2
	}
	if spec.MigrateEvery < 1 || spec.Migrants < 1 {
		return spec, fmt.Errorf("serve: job spec: migrate_every and migrants must be >= 1")
	}
	for _, s := range spec.Scouts {
		if s != "sa" && s != "greedy" {
			return spec, fmt.Errorf("serve: job spec: unknown scout kind %q (want sa or greedy)", s)
		}
	}
	return spec, nil
}

// buildOptions converts a normalized spec into search.Options. Scheduling
// concerns — Checkpoint, MaxRounds, Workers, Progress — are left zero for
// the scheduler to fill per slice; none of them shape the trajectory, so
// the options fingerprint is a pure function of the spec.
func buildOptions(spec serialize.JobSpecJSON) (search.Options, error) {
	obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: spec.Alpha}
	if spec.Metric == "ema" {
		obj.Metric = eval.MetricEMA
	}
	bufKind := hw.SeparateBuffer
	if spec.Kind == "shared" {
		bufKind = hw.SharedBuffer
	}
	ms := core.MemSearch{Kind: bufKind}
	if spec.MemSearch {
		ms.Search = true
		if bufKind == hw.SharedBuffer {
			ms.Global = hw.PaperSharedRange()
		} else {
			ms.Global = hw.PaperGlobalRange()
			ms.Weight = hw.PaperWeightRange()
		}
	} else {
		ms.Fixed = hw.MemConfig{Kind: bufKind, GlobalBytes: spec.GLBKiB * hw.KiB}
		if bufKind == hw.SeparateBuffer {
			ms.Fixed.WeightBytes = spec.WGTKiB * hw.KiB
		}
	}
	opt := search.Options{
		Core: core.Options{
			Seed:       spec.Seed,
			Population: spec.Population,
			MaxSamples: spec.Samples,
			Objective:  obj,
			Mem:        ms,
		},
		Islands:      spec.Islands,
		MigrateEvery: spec.MigrateEvery,
		Migrants:     spec.Migrants,
	}
	for _, s := range spec.Scouts {
		switch s {
		case "sa":
			opt.Scouts = append(opt.Scouts, search.ScoutSA)
		case "greedy":
			opt.Scouts = append(opt.Scouts, search.ScoutGreedy)
		default:
			return opt, fmt.Errorf("serve: unknown scout kind %q", s)
		}
	}
	return opt, nil
}

// newEvaluator builds the job's evaluator from its normalized spec.
func newEvaluator(spec serialize.JobSpecJSON) (*eval.Evaluator, error) {
	g, err := models.Build(spec.Model)
	if err != nil {
		return nil, err
	}
	tcfg, err := tiling.ParseConfig(spec.Tiling)
	if err != nil {
		return nil, err
	}
	platform := hw.DefaultPlatform()
	platform.Cores = spec.Cores
	platform.Batch = spec.Batch
	return eval.New(g, platform, tcfg)
}

// islandKind names ring index i under a normalized spec: GA islands first,
// then scouts — the same ring order search.Stats reports.
func islandKind(spec serialize.JobSpecJSON, i int) string {
	if i < spec.Islands {
		return "ga"
	}
	if j := i - spec.Islands; j < len(spec.Scouts) {
		return spec.Scouts[j]
	}
	return "?"
}
