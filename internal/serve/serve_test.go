package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cocco/internal/search"
	"cocco/internal/serialize"
)

// testSpec mirrors the dist package's testOptions budget: 2 GA islands + an
// SA scout, 600 samples per island, so migration, scout adoption, and many
// slice boundaries all happen.
func testSpec(seed int64) serialize.JobSpecJSON {
	return serialize.JobSpecJSON{
		Model: "mobilenetv2", Metric: "ema",
		Seed: seed, Population: 20, Samples: 600,
		Islands: 2, MigrateEvery: 2, Scouts: []string{"sa"},
	}
}

// directRun is the reference: the same normalized spec pushed straight
// through search.Run, uninterrupted, with a checkpoint. Returns the encoded
// best genome and the final checkpoint bytes.
func directRun(t *testing.T, spec serialize.JobSpecJSON) (*serialize.GenomeJSON, []byte) {
	t.Helper()
	spec, err := NormalizeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := buildOptions(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt.Core.Workers = 1
	opt.Checkpoint = filepath.Join(t.TempDir(), "direct.ckpt")
	ev, err := newEvaluator(spec)
	if err != nil {
		t.Fatal(err)
	}
	best, _, err := search.Run(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := os.ReadFile(opt.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	return search.EncodeGenome(best, true), ckpt
}

// monotone asserts that successive manifest snapshots from one server
// incarnation never move backwards. (Across a SIGKILL the in-memory per-round
// progress can be ahead of the last durable slice boundary, so callers reset
// the watcher after a restart.)
type monotone struct {
	slices, rounds, samples int
}

func (w *monotone) check(t *testing.T, m *serialize.JobManifestJSON) {
	t.Helper()
	if m.Slices < w.slices {
		t.Fatalf("slices went backwards: %d -> %d", w.slices, m.Slices)
	}
	w.slices = m.Slices
	if m.Progress == nil {
		return
	}
	if m.Progress.Rounds < w.rounds {
		t.Fatalf("rounds went backwards: %d -> %d", w.rounds, m.Progress.Rounds)
	}
	if m.Progress.Samples < w.samples {
		t.Fatalf("samples went backwards: %d -> %d", w.samples, m.Progress.Samples)
	}
	w.rounds, w.samples = m.Progress.Rounds, m.Progress.Samples
}

// waitTerminal follows the job through Watch until a terminal state,
// asserting progress monotonicity along the way.
func waitTerminal(t *testing.T, s *Server, id string, w *monotone) *serialize.JobManifestJSON {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		m, ch, err := s.Watch(id)
		if err != nil {
			t.Fatal(err)
		}
		w.check(t, m)
		if terminal(m.State) {
			return m
		}
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
			t.Fatalf("job %s never reached a terminal state (last %s, %d slices)", id, m.State, m.Slices)
		}
	}
}

// TestConcurrentJobsMatchDirect is the ISSUE's fairness/correctness pin: N
// concurrent jobs time-sliced over a 1-worker pool each produce results
// bit-identical to running the same spec serially through search.Run —
// result genome and on-disk checkpoint bytes both.
func TestConcurrentJobsMatchDirect(t *testing.T) {
	dir := t.TempDir()
	s, err := NewServer(Options{Dir: dir, PoolWorkers: 1, SliceRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	seeds := []int64{11, 12, 13}
	ids := make([]string, len(seeds))
	for i, seed := range seeds {
		id, err := s.Submit(testSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		m := waitTerminal(t, s, id, &monotone{})
		if m.State != serialize.JobStateDone {
			t.Fatalf("job %s: state %s, error %q", id, m.State, m.Error)
		}
		if m.Result == nil {
			t.Fatalf("job %s finished without a result", id)
		}
		if m.Slices < 2 {
			t.Errorf("job %s ran in %d slices; want >= 2 so the round-robin is actually exercised", id, m.Slices)
		}
		wantResult, wantCkpt := directRun(t, testSpec(seeds[i]))
		if !reflect.DeepEqual(wantResult, m.Result) {
			t.Errorf("job %s: served result differs from direct search.Run", id)
		}
		gotCkpt, err := os.ReadFile(filepath.Join(dir, id+".ckpt"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantCkpt, gotCkpt) {
			t.Errorf("job %s: checkpoint bytes differ from direct run (%d vs %d bytes)", id, len(gotCkpt), len(wantCkpt))
		}
		// The progress islands must name the ring in order: GA islands first,
		// then scouts.
		if m.Progress == nil || len(m.Progress.Islands) != 3 {
			t.Fatalf("job %s: progress islands %+v, want 3", id, m.Progress)
		}
		for i, want := range []string{"ga", "ga", "sa"} {
			if got := m.Progress.Islands[i].Kind; got != want {
				t.Errorf("job %s island %d kind %q, want %q", id, i, got, want)
			}
		}
	}
}

// TestRestartResumesJobs closes a server mid-job and reopens the directory:
// the rescanned job must resume from its checkpoint and finish bit-identical
// to an uninterrupted direct run, and the ID counter must not collide.
func TestRestartResumesJobs(t *testing.T) {
	dir := t.TempDir()
	s, err := NewServer(Options{Dir: dir, PoolWorkers: 1, SliceRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(testSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one slice land durably, then stop the world.
	deadline := time.Now().Add(120 * time.Second)
	for {
		m, err := s.Manifest(id)
		if err != nil {
			t.Fatal(err)
		}
		if m.Slices >= 1 || terminal(m.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no slice completed before the restart window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()

	s2, err := NewServer(Options{Dir: dir, PoolWorkers: 1, SliceRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m := waitTerminal(t, s2, id, &monotone{})
	if m.State != serialize.JobStateDone || m.Result == nil {
		t.Fatalf("resumed job: state %s, result %v, error %q", m.State, m.Result != nil, m.Error)
	}
	wantResult, wantCkpt := directRun(t, testSpec(11))
	if !reflect.DeepEqual(wantResult, m.Result) {
		t.Error("resumed result differs from direct search.Run")
	}
	gotCkpt, err := os.ReadFile(filepath.Join(dir, id+".ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantCkpt, gotCkpt) {
		t.Error("resumed checkpoint bytes differ from direct run")
	}
	// A fresh submit after the restart must not reuse the recovered ID.
	id2, err := s2.Submit(testSpec(12))
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("restarted server reissued job ID %s", id)
	}
}

// TestCancelSemantics: a queued job cancels immediately; a running job lands
// cancelled at its next slice boundary with its checkpoint still on disk.
func TestCancelSemantics(t *testing.T) {
	dir := t.TempDir()
	s, err := NewServer(Options{Dir: dir, PoolWorkers: 1, SliceRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Two jobs on a 1-worker pool: the first occupies the worker, the second
	// waits in the queue and must cancel without ever running.
	running, err := s.Submit(testSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(testSpec(12))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	m, err := s.Manifest(queued)
	if err != nil {
		t.Fatal(err)
	}
	if m.State != serialize.JobStateCancelled {
		t.Fatalf("queued job after cancel: state %s, want cancelled", m.State)
	}
	if m.Slices != 0 {
		t.Errorf("cancelled-while-queued job ran %d slices", m.Slices)
	}
	if err := s.Cancel(queued); err == nil {
		t.Error("cancelling a terminal job succeeded; want ErrJobTerminal")
	}

	if err := s.Cancel(running); err != nil {
		t.Fatal(err)
	}
	m = waitTerminal(t, s, running, &monotone{})
	// The cancel may race the job's natural completion; either terminal state
	// is legitimate, but nothing else is.
	if m.State != serialize.JobStateCancelled && m.State != serialize.JobStateDone {
		t.Fatalf("running job after cancel: state %s", m.State)
	}
	if err := s.Cancel("j999999"); err != ErrUnknownJob {
		t.Errorf("cancel of unknown job: %v, want ErrUnknownJob", err)
	}
}

// TestSubmitValidation: malformed specs are refused before admission.
func TestSubmitValidation(t *testing.T) {
	s, err := NewServer(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cases := []struct {
		name string
		mut  func(*serialize.JobSpecJSON)
		want string
	}{
		{"no model", func(sp *serialize.JobSpecJSON) { sp.Model = "" }, "model is required"},
		{"bad model", func(sp *serialize.JobSpecJSON) { sp.Model = "notanet" }, "notanet"},
		{"bad tiling", func(sp *serialize.JobSpecJSON) { sp.Tiling = "bogus" }, "tiling"},
		{"no samples", func(sp *serialize.JobSpecJSON) { sp.Samples = 0 }, "samples"},
		{"bad metric", func(sp *serialize.JobSpecJSON) { sp.Metric = "joules" }, "metric"},
		{"bad scout", func(sp *serialize.JobSpecJSON) { sp.Scouts = []string{"psychic"} }, "scout"},
		{"mem search without alpha", func(sp *serialize.JobSpecJSON) { sp.MemSearch = true }, "alpha"},
		{"tiny population", func(sp *serialize.JobSpecJSON) { sp.Population = 1 }, "population"},
	}
	for _, tc := range cases {
		spec := testSpec(11)
		tc.mut(&spec)
		if _, err := s.Submit(spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// httpDo drives the handler suite.
func httpDo(t *testing.T, method, url string, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPHandlers exercises the API surface end to end over httptest: bad
// job JSON, unknown IDs, result-before-done, cancel semantics, watch
// streaming, and concurrent submits.
func TestHTTPHandlers(t *testing.T) {
	s, err := NewServer(Options{Dir: t.TempDir(), PoolWorkers: 1, SliceRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Malformed and unknown-field bodies are 400 with an error message.
	var errBody struct {
		Error string `json:"error"`
	}
	if code := httpDo(t, "POST", ts.URL+"/jobs", "{not json", &errBody); code != 400 || errBody.Error == "" {
		t.Errorf("malformed JSON: %d %q, want 400 with error", code, errBody.Error)
	}
	if code := httpDo(t, "POST", ts.URL+"/jobs", `{"model":"mobilenetv2","samples":600,"turbo":true}`, &errBody); code != 400 || !strings.Contains(errBody.Error, "turbo") {
		t.Errorf("unknown field: %d %q, want 400 naming the field", code, errBody.Error)
	}
	if code := httpDo(t, "POST", ts.URL+"/jobs", `{"model":"mobilenetv2"}`, &errBody); code != 400 || !strings.Contains(errBody.Error, "samples") {
		t.Errorf("invalid spec: %d %q, want 400 naming samples", code, errBody.Error)
	}

	// Unknown job IDs are 404 on every per-job route.
	for _, r := range []struct{ method, path string }{
		{"GET", "/jobs/j999999"},
		{"GET", "/jobs/j999999/result"},
		{"POST", "/jobs/j999999/cancel"},
		{"GET", "/jobs/j999999/watch"},
	} {
		if code := httpDo(t, r.method, ts.URL+r.path, "", nil); code != 404 {
			t.Errorf("%s %s: %d, want 404", r.method, r.path, code)
		}
	}

	// A long job: submitted 201, result 409 while non-terminal, 200 after
	// cancel.
	long := testSpec(11)
	long.Samples = 1 << 20
	longBody, _ := json.Marshal(long)
	var created struct{ ID, State string }
	if code := httpDo(t, "POST", ts.URL+"/jobs", string(longBody), &created); code != 201 || created.ID == "" || created.State != "queued" {
		t.Fatalf("submit: %d %+v, want 201 queued", code, created)
	}
	if code := httpDo(t, "GET", ts.URL+"/jobs/"+created.ID+"/result", "", &errBody); code != 409 {
		t.Errorf("result before done: %d, want 409", code)
	}
	if code := httpDo(t, "POST", ts.URL+"/jobs/"+created.ID+"/cancel", "", nil); code != 200 {
		t.Errorf("cancel: %d, want 200", code)
	}
	waitTerminal(t, s, created.ID, &monotone{})
	var resBody struct {
		State    string `json:"state"`
		Feasible bool   `json:"feasible"`
	}
	if code := httpDo(t, "GET", ts.URL+"/jobs/"+created.ID+"/result", "", &resBody); code != 200 {
		t.Errorf("result after terminal: %d, want 200", code)
	}
	if code := httpDo(t, "POST", ts.URL+"/jobs/"+created.ID+"/cancel", "", &errBody); code != 409 {
		t.Errorf("double cancel: %d, want 409", code)
	}

	// Watch on a terminal job: exactly one ndjson line, already terminal.
	resp, err := http.Get(ts.URL + "/jobs/" + created.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	watchBody, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(watchBody), "\n")
	if len(lines) != 1 {
		t.Fatalf("watch on terminal job: %d lines, want 1", len(lines))
	}
	var watched serialize.JobManifestJSON
	if err := json.Unmarshal([]byte(lines[0]), &watched); err != nil {
		t.Fatal(err)
	}
	if !terminal(watched.State) {
		t.Errorf("watch stream ended on non-terminal state %s", watched.State)
	}

	// Concurrent submits: unique IDs, all admitted, all listed.
	const n = 8
	idCh := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			spec := testSpec(seed)
			spec.Samples = 1 << 20 // keep them queued; we only test admission
			body, _ := json.Marshal(spec)
			var out struct{ ID string }
			if code := httpDo(t, "POST", ts.URL+"/jobs", string(body), &out); code == 201 {
				idCh <- out.ID
			}
		}(int64(100 + i))
	}
	wg.Wait()
	close(idCh)
	seen := map[string]bool{}
	for id := range idCh {
		if seen[id] {
			t.Fatalf("duplicate job ID %s issued concurrently", id)
		}
		seen[id] = true
	}
	if len(seen) != n {
		t.Fatalf("%d of %d concurrent submits admitted", len(seen), n)
	}
	var listed []serialize.JobManifestJSON
	if code := httpDo(t, "GET", ts.URL+"/jobs", "", &listed); code != 200 || len(listed) < n {
		t.Errorf("list: %d entries (code %d), want >= %d", len(listed), code, n)
	}
	for id := range seen {
		if err := s.Cancel(id); err != nil && err != ErrJobTerminal {
			_ = err // racing a pool pickup is fine; terminal-or-cancelled either way
		}
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			if err.Error() == "EOF" {
				return sb.String(), nil
			}
			return sb.String(), err
		}
	}
}

// TestServeDaemonProcess is not a test: it is the daemon main for the
// SIGKILL fault-injection test, entered when the test binary is re-executed
// with COCCO_SERVE_TEST_DAEMON set. It serves the HTTP API until killed.
func TestServeDaemonProcess(t *testing.T) {
	if os.Getenv("COCCO_SERVE_TEST_DAEMON") == "" {
		t.Skip("daemon-process helper; set COCCO_SERVE_TEST_DAEMON to run")
	}
	s, err := NewServer(Options{
		Dir:         os.Getenv("COCCO_SERVE_TEST_DIR"),
		PoolWorkers: 1,
		SliceRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrFile := os.Getenv("COCCO_SERVE_TEST_ADDRFILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte("http://"+ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	t.Fatal(http.Serve(ln, s.Handler()))
}

// spawnDaemon re-executes this test binary as a real coccod-shaped daemon
// process over dir and returns its base URL.
func spawnDaemon(t *testing.T, dir string, i int) (string, *exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(dir, fmt.Sprintf("daemon%d.addr", i))
	cmd := exec.Command(exe, "-test.run", "^TestServeDaemonProcess$")
	cmd.Env = append(os.Environ(),
		"COCCO_SERVE_TEST_DAEMON=1",
		"COCCO_SERVE_TEST_DIR="+dir,
		"COCCO_SERVE_TEST_ADDRFILE="+addrFile,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			return string(data), cmd
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon %d never published its address", i)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func httpManifest(t *testing.T, base, id string) *serialize.JobManifestJSON {
	t.Helper()
	var m serialize.JobManifestJSON
	if code := httpDo(t, "GET", base+"/jobs/"+id, "", &m); code != 200 {
		t.Fatalf("GET %s/jobs/%s: %d", base, id, code)
	}
	return &m
}

// TestKillAndRestartDaemon is the ISSUE's kill-and-restart pin, with a real
// SIGKILL: submit over HTTP, poll progress (monotone within an incarnation),
// SIGKILL the daemon mid-job, restart it over the same directory, and the
// resumed job's result and checkpoint bytes must be identical to an
// uninterrupted direct search.Run with the same seed.
func TestKillAndRestartDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	dir := t.TempDir()
	base, victim := spawnDaemon(t, dir, 0)

	body, _ := json.Marshal(testSpec(11))
	var created struct{ ID string }
	if code := httpDo(t, "POST", base+"/jobs", string(body), &created); code != 201 {
		t.Fatalf("submit: %d", code)
	}
	id := created.ID

	// Poll until at least two slices are durable, then SIGKILL mid-job.
	w := &monotone{}
	deadline := time.Now().Add(120 * time.Second)
	finishedEarly := false
	for {
		m := httpManifest(t, base, id)
		w.check(t, m)
		if terminal(m.State) {
			finishedEarly = true
			break
		}
		if m.Slices >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no durable slices before the kill window closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !finishedEarly {
		victim.Process.Kill()
		victim.Wait()
		base, _ = spawnDaemon(t, dir, 1)
		// A SIGKILL loses the in-memory per-round progress past the last
		// durable slice; durable progress itself never regresses, but the
		// polled view may, so the watcher restarts with the recovered state.
		w = &monotone{}
	}

	deadline = time.Now().Add(120 * time.Second)
	var final *serialize.JobManifestJSON
	for {
		final = httpManifest(t, base, id)
		w.check(t, final)
		if terminal(final.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished (state %s)", final.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != serialize.JobStateDone || final.Result == nil {
		t.Fatalf("resumed job: state %s, result %v, error %q", final.State, final.Result != nil, final.Error)
	}

	var res struct {
		Result *serialize.GenomeJSON `json:"result"`
	}
	if code := httpDo(t, "GET", base+"/jobs/"+id+"/result", "", &res); code != 200 || res.Result == nil {
		t.Fatalf("result fetch: %d, result %v", code, res.Result != nil)
	}

	wantResult, wantCkpt := directRun(t, testSpec(11))
	if !reflect.DeepEqual(wantResult, res.Result) {
		t.Error("killed-and-restarted result differs from uninterrupted direct run")
	}
	gotCkpt, err := os.ReadFile(filepath.Join(dir, id+".ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantCkpt, gotCkpt) {
		t.Errorf("killed-and-restarted checkpoint differs from direct run (%d vs %d bytes)", len(gotCkpt), len(wantCkpt))
	}
}
