package mapper

import (
	"testing"
	"testing/quick"

	"cocco/internal/graph"
	"cocco/internal/hw"
	"cocco/internal/models"
)

func conv(outC, inC, h, w, k, s int) *graph.Node {
	return &graph.Node{Kind: graph.OpConv, KernelH: k, KernelW: k,
		StrideH: s, StrideW: s, InC: inC, OutC: outC, OutH: h, OutW: w}
}

func TestAxisUtil(t *testing.T) {
	cases := []struct {
		e, lanes int
		want     float64
	}{
		{8, 8, 1.0},
		{16, 8, 1.0},
		{4, 8, 0.5},
		{12, 8, 0.75},
		{0, 8, 0},
		{8, 0, 0},
	}
	for _, c := range cases {
		if got := axisUtil(c.e, c.lanes); got != c.want {
			t.Errorf("axisUtil(%d,%d) = %g, want %g", c.e, c.lanes, got, c.want)
		}
	}
}

func TestBestUtilizationBounds(t *testing.T) {
	core := hw.DefaultCore()
	f := func(outC, inC, h, w uint8) bool {
		n := conv(int(outC%64)+1, int(inC%64)+1, int(h%64)+1, int(w%64)+1, 3, 1)
		m := Best(core, n)
		return m.Utilization > 0 && m.Utilization <= 1 &&
			m.TileH >= 1 && m.TileW >= 1 &&
			m.TileH <= n.OutH && m.TileW <= n.OutW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWellShapedLayersReachFullUtilization(t *testing.T) {
	core := hw.DefaultCore()
	// 64 in/out channels fill the 8×8 MAC array; 56×56 spatial fills the
	// 4×4 PE array exactly.
	n := conv(64, 64, 56, 56, 3, 1)
	m := Best(core, n)
	if m.Utilization != 1.0 {
		t.Errorf("well-shaped conv utilization = %g, want 1", m.Utilization)
	}
}

func TestAwkwardShapesLoseUtilization(t *testing.T) {
	core := hw.DefaultCore()
	// 3 input channels (first layer) cannot fill an 8-lane reduction.
	first := conv(64, 3, 112, 112, 7, 2)
	if u := Best(core, first).Utilization; u >= 0.9 {
		t.Errorf("3-channel conv utilization = %g, expected a packing loss", u)
	}
	// A 1×1 spatial FC cannot fill the PE array: the best it can do is run
	// the wide channel dims on the MAC array (full) while the 4×4 PE array
	// idles — utilization 1/16.
	fc := conv(1000, 2048, 1, 1, 1, 1)
	m := Best(core, fc)
	if m.Utilization != 1.0/16 {
		t.Errorf("fc utilization = %g, want 1/16", m.Utilization)
	}
}

func TestDepthwiseExcludesInputChannelDim(t *testing.T) {
	core := hw.DefaultCore()
	dw := &graph.Node{Kind: graph.OpDWConv, KernelH: 3, KernelW: 3,
		StrideH: 1, StrideW: 1, InC: 64, OutC: 64, OutH: 28, OutW: 28}
	m := Best(core, dw)
	if m.RowDim == DimK || m.ColDim == DimK {
		t.Errorf("depthwise mapped the reduction dim spatially: %v/%v", m.RowDim, m.ColDim)
	}
}

func TestNodeCyclesConsistency(t *testing.T) {
	core := hw.DefaultCore()
	n := conv(64, 64, 56, 56, 3, 1)
	cycles := NodeCycles(core, n)
	// At utilization 1, cycles = MACs / peak.
	want := n.MACs() / core.MACsPerCycle()
	if cycles != want {
		t.Errorf("cycles = %d, want %d", cycles, want)
	}
	// Lower utilization → more cycles than the peak bound.
	first := conv(64, 3, 112, 112, 7, 2)
	if NodeCycles(core, first) <= first.MACs()/core.MACsPerCycle() {
		t.Error("packing losses not reflected in cycles")
	}
}

func TestGraphUtilizationRange(t *testing.T) {
	core := hw.DefaultCore()
	for _, m := range []string{"vgg16", "resnet50", "googlenet", "gpt"} {
		g := models.MustBuild(m)
		u := GraphUtilization(core, g)
		if u <= 0.2 || u > 1 {
			t.Errorf("%s: graph utilization %g out of plausible range", m, u)
		}
	}
}

func TestDimString(t *testing.T) {
	if DimH.String() != "H" || DimK.String() != "K" {
		t.Error("dim strings")
	}
	if Dim(9).String() != "Dim(9)" {
		t.Error("unknown dim string")
	}
}

func TestDegenerateShapeFallback(t *testing.T) {
	core := hw.DefaultCore()
	n := &graph.Node{Kind: graph.OpPool, KernelH: 1, KernelW: 1,
		StrideH: 1, StrideW: 1, InC: 1, OutC: 1, OutH: 1, OutW: 1}
	m := Best(core, n)
	if m.Utilization <= 0 {
		t.Error("degenerate shape must still get a positive mapping")
	}
}
