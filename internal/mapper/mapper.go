// Package mapper is the single-layer mapper the paper's stage-1 relies on
// ("the tile size is optimized for higher computation utilization",
// Figure 5) and the evaluation platform's dynamic PE configuration ("the
// parallelism of two dimensions of the PE array can be dynamically
// configured by the mapper results to ensure high utilization", §5.1.2).
//
// For a Simba-like core — a PERows×PECols PE array where each PE holds a
// MACRows×MACCols multiplier array — the mapper assigns two tensor
// dimensions to the PE array's rows and columns and the channel dimensions
// to the MAC array, then scores the assignment by multiplier utilization.
// The derived per-layer utilization feeds the evaluator's compute-cycle
// model, and the preferred spatial tile feeds stage-1 of the tiling flow.
package mapper

import (
	"fmt"

	"cocco/internal/graph"
	"cocco/internal/hw"
)

// Dim names a tensor dimension assignable to a spatial axis of the PE array.
type Dim int

const (
	// DimH is the output height.
	DimH Dim = iota
	// DimW is the output width.
	DimW
	// DimC is the output-channel dimension.
	DimC
	// DimK is the input-channel dimension.
	DimK
)

var dimNames = map[Dim]string{DimH: "H", DimW: "W", DimC: "C", DimK: "K"}

func (d Dim) String() string {
	if s, ok := dimNames[d]; ok {
		return s
	}
	return fmt.Sprintf("Dim(%d)", int(d))
}

// Mapping is one layer's spatial assignment and its predicted efficiency.
type Mapping struct {
	// RowDim/ColDim are the tensor dimensions mapped onto the PE array's
	// rows and columns.
	RowDim, ColDim Dim
	// Utilization is the fraction of multipliers doing useful work under
	// this assignment (0, 1].
	Utilization float64
	// TileH and TileW are the output tile the assignment prefers: the
	// spatial extents covered by one PE-array pass (each ≥ 1).
	TileH, TileW int
}

// dimExtent returns the size of dimension d for node n.
func dimExtent(n *graph.Node, d Dim) int {
	switch d {
	case DimH:
		return n.OutH
	case DimW:
		return n.OutW
	case DimC:
		return n.OutC
	default:
		return n.InC
	}
}

// axisUtil is the utilization of packing extent e onto `lanes` parallel
// lanes: the last pass is partially filled.
func axisUtil(e, lanes int) float64 {
	if e <= 0 || lanes <= 0 {
		return 0
	}
	passes := (e + lanes - 1) / lanes
	return float64(e) / float64(passes*lanes)
}

// Best searches the spatial-assignment space for node n on the core and
// returns the highest-utilization mapping. Depth-wise and weight-less layers
// have no independent input-channel dimension, so DimK is excluded for them.
func Best(core hw.Core, n *graph.Node) Mapping {
	// Fixed-size candidate array: Best is called in evaluator warm-up and
	// per-layer loops, and the slice literal + append escaped on every call.
	cands := [4]Dim{DimH, DimW, DimC, DimK}
	ncands := 3
	if n.Kind == graph.OpConv || n.Kind == graph.OpMatmul {
		ncands = 4
	}
	best := Mapping{Utilization: -1}
	for _, rd := range cands[:ncands] {
		for _, cd := range cands[:ncands] {
			if rd == cd {
				continue
			}
			// The MAC array works the channel dims not already spatialized;
			// its utilization depends on the channel extents.
			macU := macUtilization(core, n, rd, cd)
			u := axisUtil(dimExtent(n, rd), core.PERows) *
				axisUtil(dimExtent(n, cd), core.PECols) * macU
			if u > best.Utilization {
				best = Mapping{RowDim: rd, ColDim: cd, Utilization: u}
				best.TileH, best.TileW = preferredTile(core, n, rd, cd)
			}
		}
	}
	if best.Utilization <= 0 {
		// Degenerate shapes (1×1×1): fall back to a serial mapping.
		best = Mapping{RowDim: DimH, ColDim: DimW, Utilization: 1 / float64(core.MACsPerCycle()), TileH: 1, TileW: 1}
	}
	return best
}

// macUtilization scores how well the per-PE MAC array is fed: the input and
// output channel extents not used spatially are blocked over the MAC rows
// and columns.
func macUtilization(core hw.Core, n *graph.Node, rd, cd Dim) float64 {
	inC, outC := n.InC, n.OutC
	if rd == DimK || cd == DimK {
		inC = 1 // consumed by the PE array
	}
	if rd == DimC || cd == DimC {
		outC = 1
	}
	switch n.Kind {
	case graph.OpConv, graph.OpMatmul:
		return axisUtil(inC, core.MACRows) * axisUtil(outC, core.MACCols)
	default:
		// Depth-wise kinds stream one channel per lane pair.
		return axisUtil(outC, core.MACRows*core.MACCols)
	}
}

// preferredTile is the output tile one PE pass covers: the PE lanes along
// each spatialized dimension, clamped to the tensor.
func preferredTile(core hw.Core, n *graph.Node, rd, cd Dim) (h, w int) {
	h, w = 1, 1
	if rd == DimH {
		h = minInt(core.PERows, n.OutH)
	}
	if cd == DimH {
		h = minInt(core.PECols, n.OutH)
	}
	if rd == DimW {
		w = minInt(core.PERows, n.OutW)
	}
	if cd == DimW {
		w = minInt(core.PECols, n.OutW)
	}
	return h, w
}

// GraphUtilization returns the MAC-weighted mean utilization over all
// compute nodes — the effective derate the evaluator applies to the core's
// peak throughput.
func GraphUtilization(core hw.Core, g *graph.Graph) float64 {
	var num, den float64
	for _, id := range g.ComputeNodes() {
		n := g.Node(id)
		macs := float64(n.MACs())
		if macs <= 0 {
			continue
		}
		num += macs * Best(core, n).Utilization
		den += macs
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// NodeCycles returns the compute cycles of node n on the core under its best
// mapping.
func NodeCycles(core hw.Core, n *graph.Node) int64 {
	u := Best(core, n).Utilization
	eff := float64(core.MACsPerCycle()) * u
	if eff <= 0 {
		return n.MACs()
	}
	c := float64(n.MACs()) / eff
	if c != float64(int64(c)) {
		return int64(c) + 1
	}
	return int64(c)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
