package serialize

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/tiling"
)

// snapshotFixture builds a real populated cache snapshot: a small model
// evaluated over a handful of subgraphs.
func snapshotFixture(t testing.TB) *eval.CacheSnapshot {
	t.Helper()
	g := models.MustBuild("vgg16")
	ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	for _, sub := range [][]int{{1}, {2}, {1, 2}, {2, 3, 4}, {5, 6, 7, 8}} {
		ev.Subgraph(sub)
	}
	snap, err := ev.ExportCache()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) == 0 {
		t.Fatal("fixture snapshot is empty")
	}
	return snap
}

func TestCostCacheCodecRoundTrip(t *testing.T) {
	snap := snapshotFixture(t)
	data, err := EncodeCostCache(snap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCostCache(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint != snap.Fingerprint {
		t.Errorf("fingerprint %q != %q", back.Fingerprint, snap.Fingerprint)
	}
	if len(back.Entries) != len(snap.Entries) || string(back.Arena) != string(snap.Arena) {
		t.Fatalf("structure changed: %d/%d entries, %d/%d arena bytes",
			len(back.Entries), len(snap.Entries), len(back.Arena), len(snap.Arena))
	}
	for i := range snap.Entries {
		if back.Entries[i] != snap.Entries[i] {
			t.Errorf("entry %d: %+v != %+v", i, back.Entries[i], snap.Entries[i])
		}
	}
}

// rechecksum recomputes the trailing FNV-1a so a test can patch bytes and
// still present a frame whose corruption is the patch, not the checksum.
func rechecksum(data []byte) []byte {
	binary.LittleEndian.PutUint64(data[len(data)-8:], fnv1a(data[:len(data)-8]))
	return data
}

// TestCostCacheDecodeRejects is the damage table: every class of bad input
// must come back as a distinct error — and never a panic.
func TestCostCacheDecodeRejects(t *testing.T) {
	valid, err := EncodeCostCache(snapshotFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	fpLen := int(binary.LittleEndian.Uint32(valid[12:]))
	recordsOff := 16 + fpLen + 16

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{"empty file", func(d []byte) []byte { return nil }, "bad magic"},
		{"tiny file", func(d []byte) []byte { return d[:6] }, "bad magic"},
		{"foreign magic", func(d []byte) []byte {
			copy(d, "NOTCACHE")
			return d
		}, "bad magic"},
		{"version too new", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], CostCacheVersion+1)
			return rechecksum(d)
		}, "version too new"},
		{"version too old", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], CostCacheVersion-1)
			return rechecksum(d)
		}, "version too old"},
		{"truncated mid-records", func(d []byte) []byte { return d[:recordsOff+13] }, "truncated"},
		{"truncated checksum", func(d []byte) []byte { return d[:len(d)-3] }, "truncated"},
		{"trailing garbage", func(d []byte) []byte { return append(d, 0xEE) }, "trailing"},
		{"flipped arena byte", func(d []byte) []byte {
			d[len(d)-9] ^= 0x40
			return d
		}, "checksum"},
		{"flipped record byte", func(d []byte) []byte {
			d[recordsOff+20] ^= 0x01
			return d
		}, "checksum"},
		{"record window past arena", func(d []byte) []byte {
			// First record's off: point it past the arena end.
			binary.LittleEndian.PutUint32(d[recordsOff:], 1<<30)
			return rechecksum(d)
		}, "arena"},
		{"record key unaligned", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[recordsOff+4:], 3)
			return rechecksum(d)
		}, "arena"},
		{"implausible count", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[16+fpLen:], 1<<60)
			return rechecksum(d)
		}, "implausible"},
	}
	for _, tc := range cases {
		data := tc.mutate(append([]byte(nil), valid...))
		snap, err := DecodeCostCache(data)
		if err == nil {
			t.Errorf("%s: decode accepted damaged input (%d entries)", tc.name, len(snap.Entries))
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestCostCacheVersionErrorsOrdered pins the errors.Is contract the dse
// driver's stale-file skip rests on: an older frame matches only TooOld, a
// newer frame only TooNew, and a current frame with other damage neither.
func TestCostCacheVersionErrorsOrdered(t *testing.T) {
	valid, err := EncodeCostCache(snapshotFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	stamp := func(v uint32) []byte {
		d := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint32(d[8:], v)
		return rechecksum(d)
	}
	if _, err := DecodeCostCache(stamp(CostCacheVersion - 1)); !errors.Is(err, ErrCostCacheTooOld) || errors.Is(err, ErrCostCacheTooNew) {
		t.Errorf("old frame: err = %v, want ErrCostCacheTooOld only", err)
	}
	if _, err := DecodeCostCache(stamp(CostCacheVersion + 1)); !errors.Is(err, ErrCostCacheTooNew) || errors.Is(err, ErrCostCacheTooOld) {
		t.Errorf("new frame: err = %v, want ErrCostCacheTooNew only", err)
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-9] ^= 0x40
	if _, err := DecodeCostCache(corrupt); err == nil || errors.Is(err, ErrCostCacheTooOld) || errors.Is(err, ErrCostCacheTooNew) {
		t.Errorf("corrupt current-version frame: err = %v, want neither version sentinel", err)
	}
}

// TestEncodeCostCacheRefusesCorrupt: the encoder must not produce a frame
// that would decode into out-of-bounds key windows.
func TestEncodeCostCacheRefusesCorrupt(t *testing.T) {
	bad := []*eval.CacheSnapshot{
		{Fingerprint: "f", Arena: make([]byte, 8), Entries: []eval.CacheRecord{{Off: 8, KeyLen: 4}}},
		{Fingerprint: "f", Arena: make([]byte, 8), Entries: []eval.CacheRecord{{Off: 0, KeyLen: 0}}},
		{Fingerprint: "f", Arena: make([]byte, 8), Entries: []eval.CacheRecord{{Off: 0, KeyLen: 6}}},
	}
	for i, snap := range bad {
		if _, err := EncodeCostCache(snap); err == nil {
			t.Errorf("case %d: encoder wrote a snapshot that cannot decode cleanly", i)
		}
	}
}

// TestEncodersSideEffectFree is the regression for the encoder-mutation
// bug: stamping the wire version must not write through to the caller's
// struct (callers reuse outcome/checkpoint structs across encodes and
// compare them against decoded files).
func TestEncodersSideEffectFree(t *testing.T) {
	o := &SweepOutcomeJSON{ConfigID: "cfg", Graph: "g", Samples: 3}
	data, err := EncodeSweepOutcome(o)
	if err != nil {
		t.Fatal(err)
	}
	if o.Version != 0 {
		t.Errorf("EncodeSweepOutcome stamped the caller's struct (Version=%d)", o.Version)
	}
	back, err := DecodeSweepOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != SweepOutcomeVersion {
		t.Errorf("wire version %d, want %d", back.Version, SweepOutcomeVersion)
	}

	c := &CheckpointJSON{Graph: "g", Config: "cfg"}
	cdata, err := EncodeCheckpoint(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != 0 {
		t.Errorf("EncodeCheckpoint stamped the caller's struct (Version=%d)", c.Version)
	}
	cback, err := DecodeCheckpoint(cdata)
	if err != nil {
		t.Fatal(err)
	}
	if cback.Version != CheckpointVersion {
		t.Errorf("wire version %d, want %d", cback.Version, CheckpointVersion)
	}
}

// FuzzCostCacheDecode: arbitrary bytes must never panic the decoder, and
// anything it accepts must re-encode AND survive the load path — including
// the fingerprint rejection in eval.LoadCache, which fuzzed frames hit
// almost always (a fuzzer-mutated fingerprint can't match the evaluator's),
// and the member-key validation behind it when the fingerprint does match.
func FuzzCostCacheDecode(f *testing.F) {
	valid, err := EncodeCostCache(snapshotFixture(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("COCCACHE"))
	f.Add([]byte{})
	// An old-version frame: seeds the version-ordering branch.
	oldFrame := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(oldFrame[8:], CostCacheVersion-1)
	f.Add(rechecksum(oldFrame))
	g := models.MustBuild("vgg16")
	ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeCostCache(data)
		if err != nil {
			if errors.Is(err, ErrCostCacheTooOld) && errors.Is(err, ErrCostCacheTooNew) {
				t.Fatal("version error matches both ordering sentinels")
			}
			return
		}
		if _, err := EncodeCostCache(snap); err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
		// Loading a decoded frame must never panic: either the fingerprint
		// is foreign (the common fuzz case) or the records pass the same
		// validation a legitimate load applies.
		_, _ = ev.LoadCache(snap)
	})
}
