package serialize

import (
	"strings"
	"testing"

	"cocco/internal/graph"
	"cocco/internal/models"
	"cocco/internal/partition"
)

func TestGraphRoundTrip(t *testing.T) {
	for _, name := range []string{"vgg16", "googlenet", "randwire-a", "unet"} {
		g := models.MustBuild(name)
		data, err := EncodeGraph(g)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		back, err := DecodeGraph(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if back.Len() != g.Len() || back.Edges() != g.Edges() || back.Name != g.Name {
			t.Fatalf("%s: structure changed: %d/%d nodes, %d/%d edges",
				name, back.Len(), g.Len(), back.Edges(), g.Edges())
		}
		for i := 0; i < g.Len(); i++ {
			a, b := g.Node(i), back.Node(i)
			if *a != *b {
				t.Fatalf("%s: node %d differs: %+v vs %+v", name, i, a, b)
			}
			pa, pb := g.Pred(i), back.Pred(i)
			if len(pa) != len(pb) {
				t.Fatalf("%s: node %d preds differ", name, i)
			}
			for j := range pa {
				if pa[j] != pb[j] {
					t.Fatalf("%s: node %d pred %d differs", name, i, j)
				}
			}
		}
		// Derived quantities survive.
		if back.TotalWeightBytes() != g.TotalWeightBytes() || back.TotalMACs() != g.TotalMACs() {
			t.Errorf("%s: derived totals changed", name)
		}
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	g := models.MustBuild("resnet50")
	p := partition.Singletons(g)
	q, err := p.TryMerge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePartition(q)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePartition(g, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != q.Key() {
		t.Error("partition changed across round trip")
	}
}

func TestDecodePartitionWrongGraph(t *testing.T) {
	g := models.MustBuild("resnet50")
	data, err := EncodePartition(partition.Singletons(g))
	if err != nil {
		t.Fatal(err)
	}
	other := models.MustBuild("vgg16")
	if _, err := DecodePartition(other, data); err == nil || !strings.Contains(err.Error(), "resnet50") {
		t.Errorf("wrong-graph decode accepted: %v", err)
	}
}

func TestDecodeGraphErrors(t *testing.T) {
	if _, err := DecodeGraph([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := DecodeGraph([]byte(`{"name":"x","nodes":[{"id":5,"name":"a","kind":"input","out_c":1,"out_h":1,"out_w":1}]}`)); err == nil {
		t.Error("sparse ids accepted")
	}
	if _, err := DecodeGraph([]byte(`{"name":"x","nodes":[{"id":0,"name":"a","kind":"warp","out_c":1,"out_h":1,"out_w":1}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	aniso := `{"name":"x","nodes":[
	  {"id":0,"name":"a","kind":"input","out_c":1,"out_h":8,"out_w":8,"kernel_h":1,"kernel_w":1,"stride_h":1,"stride_w":1},
	  {"id":1,"name":"b","kind":"conv","kernel_h":3,"kernel_w":5,"stride_h":1,"stride_w":1,"in_c":1,"out_c":1,"out_h":8,"out_w":8,"preds":[0]}]}`
	if _, err := DecodeGraph([]byte(aniso)); err == nil {
		t.Error("anisotropic kernel accepted")
	}
}

func TestEncodeCustomGraph(t *testing.T) {
	b := graph.NewBuilder("tiny")
	in := b.Input("in", 3, 8, 8)
	b.Conv("c", in, 4, 3, 1)
	g := b.MustFinalize()
	data, err := EncodeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind": "conv"`) {
		t.Errorf("unexpected encoding: %s", data)
	}
}
