// Package serialize provides a stable JSON interchange format for
// computation graphs and partitions, so searches can be exported, compared
// across runs, and fed to external tooling (the cmd tools' -dump flags).
package serialize

import (
	"encoding/json"
	"fmt"

	"cocco/internal/graph"
	"cocco/internal/partition"
)

// NodeJSON is the wire form of one layer.
type NodeJSON struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	KernelH int    `json:"kernel_h"`
	KernelW int    `json:"kernel_w"`
	StrideH int    `json:"stride_h"`
	StrideW int    `json:"stride_w"`
	InC     int    `json:"in_c"`
	OutC    int    `json:"out_c"`
	OutH    int    `json:"out_h"`
	OutW    int    `json:"out_w"`
	Preds   []int  `json:"preds,omitempty"`
}

// GraphJSON is the wire form of a computation graph.
type GraphJSON struct {
	Name  string     `json:"name"`
	Nodes []NodeJSON `json:"nodes"`
}

var kindNames = map[graph.OpKind]string{
	graph.OpInput:   "input",
	graph.OpConv:    "conv",
	graph.OpDWConv:  "dwconv",
	graph.OpPool:    "pool",
	graph.OpEltwise: "eltwise",
	graph.OpConcat:  "concat",
	graph.OpMatmul:  "matmul",
}

var kindValues = func() map[string]graph.OpKind {
	m := map[string]graph.OpKind{}
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// EncodeGraph marshals g.
func EncodeGraph(g *graph.Graph) ([]byte, error) {
	out := GraphJSON{Name: g.Name}
	for _, n := range g.Nodes() {
		kn, ok := kindNames[n.Kind]
		if !ok {
			return nil, fmt.Errorf("serialize: unknown kind %v on node %d", n.Kind, n.ID)
		}
		out.Nodes = append(out.Nodes, NodeJSON{
			ID: n.ID, Name: n.Name, Kind: kn,
			KernelH: n.KernelH, KernelW: n.KernelW,
			StrideH: n.StrideH, StrideW: n.StrideW,
			InC: n.InC, OutC: n.OutC, OutH: n.OutH, OutW: n.OutW,
			Preds: append([]int(nil), g.Pred(n.ID)...),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// DecodeGraph rebuilds a graph from its wire form. Node ids must be dense
// and topologically ordered (the format EncodeGraph produces).
func DecodeGraph(data []byte) (*graph.Graph, error) {
	var in GraphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	b := graph.NewBuilder(in.Name)
	for i, n := range in.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("serialize: node %d has id %d (ids must be dense, in order)", i, n.ID)
		}
		kind, ok := kindValues[n.Kind]
		if !ok {
			return nil, fmt.Errorf("serialize: node %q: unknown kind %q", n.Name, n.Kind)
		}
		var id int
		if kind == graph.OpInput {
			id = b.Input(n.Name, n.OutC, n.OutH, n.OutW)
		} else {
			k := n.KernelH
			s := n.StrideH
			if n.KernelW != n.KernelH || n.StrideW != n.StrideH {
				// Custom keeps square kernels; reject anisotropic forms the
				// encoder never produces rather than silently altering them.
				return nil, fmt.Errorf("serialize: node %q: anisotropic kernel/stride unsupported", n.Name)
			}
			id = b.Custom(n.Name, kind, k, s, n.InC, n.OutC, n.OutH, n.OutW, n.Preds...)
		}
		if id != n.ID {
			return nil, fmt.Errorf("serialize: node %q: rebuilt id %d != %d", n.Name, id, n.ID)
		}
	}
	return b.Finalize()
}

// PartitionJSON is the wire form of a partition: the subgraph id per node
// (-1 for inputs), plus the graph name for a sanity check at decode time.
type PartitionJSON struct {
	Graph     string  `json:"graph"`
	Subgraphs int     `json:"subgraphs"`
	Assign    []int   `json:"assign"`
	Members   [][]int `json:"members"`
}

// EncodePartition marshals p.
func EncodePartition(p *partition.Partition) ([]byte, error) {
	out := PartitionJSON{
		Graph:     p.Graph().Name,
		Subgraphs: p.NumSubgraphs(),
		Assign:    p.Assignment(),
		Members:   p.Subgraphs(),
	}
	return json.MarshalIndent(out, "", "  ")
}

// DecodePartition rebuilds (and re-validates) a partition of g.
func DecodePartition(g *graph.Graph, data []byte) (*partition.Partition, error) {
	var in PartitionJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	if in.Graph != g.Name {
		return nil, fmt.Errorf("serialize: partition is for graph %q, not %q", in.Graph, g.Name)
	}
	return partition.From(g, in.Assign)
}
