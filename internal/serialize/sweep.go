package serialize

import (
	"encoding/json"
	"fmt"
)

// Sweep wire format for the batched multi-config DSE driver (internal/dse).
// Every completed grid point persists one SweepOutcomeJSON next to its
// search checkpoint; a restarted sweep loads these to skip finished configs
// and resumes in-flight ones from their orchestrator checkpoints. Like the
// checkpoint codec, every float is a float64 round-tripped through
// encoding/json's shortest representation, so a resumed sweep's consolidated
// report is bit-identical to an uninterrupted one.

// SweepOutcomeVersion is the current outcome-file format version; decode
// rejects any other value.
const SweepOutcomeVersion = 1

// SweepOutcomeJSON is the persisted result of one fully searched DSE config.
type SweepOutcomeJSON struct {
	Version int `json:"version"`
	// ConfigID is the grid point's stable identifier (model × memory ×
	// cores × batch × tiling); a resume rejects an outcome file whose ID
	// does not match the config it is loaded for.
	ConfigID string        `json:"config_id"`
	Graph    string        `json:"graph"`
	Mem      MemConfigJSON `json:"mem"`
	Cores    int           `json:"cores"`
	Batch    int           `json:"batch"`
	Tiling   string        `json:"tiling"`
	// Feasible reports whether the search found any feasible genome; when
	// false Cost/Assign/Res are absent and the config is recorded as an
	// infeasible design point rather than re-searched on resume.
	Feasible bool        `json:"feasible"`
	Cost     float64     `json:"cost,omitempty"`
	Samples  int         `json:"samples"`
	Assign   []int       `json:"assign,omitempty"`
	Res      *ResultJSON `json:"res,omitempty"`
}

// EncodeSweepOutcome marshals an outcome, stamping the current version on
// the wire form only — the caller's struct is never mutated.
func EncodeSweepOutcome(o *SweepOutcomeJSON) ([]byte, error) {
	stamped := *o
	stamped.Version = SweepOutcomeVersion
	out, err := json.MarshalIndent(&stamped, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serialize: sweep outcome: %w", err)
	}
	return append(out, '\n'), nil
}

// DecodeSweepOutcome unmarshals an outcome, rejecting unknown versions.
func DecodeSweepOutcome(data []byte) (*SweepOutcomeJSON, error) {
	var o SweepOutcomeJSON
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("serialize: sweep outcome: %w", err)
	}
	if o.Version != SweepOutcomeVersion {
		return nil, fmt.Errorf("serialize: sweep outcome version %d, want %d", o.Version, SweepOutcomeVersion)
	}
	return &o, nil
}
