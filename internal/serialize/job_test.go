package serialize

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testManifest() *JobManifestJSON {
	cost := 123.456
	return &JobManifestJSON{
		ID:    "j000007",
		State: JobStatePaused,
		Spec: JobSpecJSON{
			Model: "mobilenetv2", Tiling: "4x4", Cores: 1, Batch: 1,
			Metric: "ema", Kind: "separate", GLBKiB: 1024, WGTKiB: 1152,
			Seed: 11, Population: 20, Samples: 600,
			Islands: 2, MigrateEvery: 2, Migrants: 2, Scouts: []string{"sa"},
		},
		Slices: 3,
		Progress: &JobProgressJSON{
			Rounds: 12, Migrations: 6, Samples: 480, FeasibleSamples: 100,
			MemoHits: 40, BestCost: &cost, BestIsland: 1, SamplesPerSec: 250.5,
			Islands: []JobIslandJSON{
				{Kind: "ga", Samples: 200, FeasibleSamples: 50, MemoHits: 10},
				{Kind: "sa", Samples: 80, FeasibleSamples: 20, MemoHits: 5},
			},
		},
		SubmittedUnix: 1700000000,
		UpdatedUnix:   1700000100,
	}
}

func TestJobManifestRoundTrip(t *testing.T) {
	m := testManifest()
	data, err := EncodeJobManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJobManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	got.Version = 0 // the stamp is the encoder's business, not the caller's
	if !bytes.Equal(mustJSON(t, m), mustJSON(t, got)) {
		t.Errorf("round-trip changed the manifest:\nin  %s\nout %s", mustJSON(t, m), mustJSON(t, got))
	}
	// Re-encoding the decoded form must be byte-stable: the serve scheduler
	// rewrites manifests across restarts and any drift would churn the file.
	again, err := EncodeJobManifest(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("encode(decode(x)) is not byte-stable")
	}
}

func TestJobManifestEncoderIsPure(t *testing.T) {
	m := testManifest()
	if _, err := EncodeJobManifest(m); err != nil {
		t.Fatal(err)
	}
	if m.Version != 0 {
		t.Errorf("EncodeJobManifest mutated the caller's Version to %d", m.Version)
	}
}

func TestJobManifestRejectsWrongVersion(t *testing.T) {
	data, err := EncodeJobManifest(testManifest())
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	if _, err := DecodeJobManifest(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version accepted (err %v)", err)
	}
}

func TestJobManifestRejectsUnknownState(t *testing.T) {
	m := testManifest()
	m.State = "exploded"
	data, err := EncodeJobManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeJobManifest(data); err == nil || !strings.Contains(err.Error(), "unknown state") {
		t.Errorf("unknown state accepted (err %v)", err)
	}
}
