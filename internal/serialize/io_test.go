package serialize

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// noTmpFiles asserts the directory holds exactly the named files — no
// leaked *.tmp* from failed or successful atomic writes.
func noTmpFiles(t *testing.T, dir string, want ...string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leaked temp file %s", e.Name())
		}
		names = append(names, e.Name())
	}
	if len(names) != len(want) {
		t.Errorf("dir holds %v, want %v", names, want)
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")

	if err := AtomicWriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Errorf("content %q, want %q", got, "first")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("perm %v, want 0644", fi.Mode().Perm())
	}

	// Overwrite replaces content atomically.
	if err := AtomicWriteFile(path, []byte("second"), 0o600); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Errorf("after overwrite: %q, want %q", got, "second")
	}
	noTmpFiles(t, dir, "out.bin")
}

func TestAtomicWriteFileErrorsLeaveNoDebris(t *testing.T) {
	dir := t.TempDir()

	// Target directory does not exist: CreateTemp fails up front.
	missing := filepath.Join(dir, "nope", "out.bin")
	if err := AtomicWriteFile(missing, []byte("x"), 0o644); err == nil {
		t.Error("write into a missing directory succeeded")
	}

	// Rename onto an existing non-empty directory fails after the temp file
	// is written; the temp file must be cleaned up and the directory kept.
	clash := filepath.Join(dir, "clash")
	if err := os.MkdirAll(filepath.Join(clash, "occupant"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(clash, []byte("x"), 0o644); err == nil {
		t.Error("rename onto a non-empty directory succeeded")
	}
	if fi, err := os.Stat(clash); err != nil || !fi.IsDir() {
		t.Errorf("existing directory was damaged: fi=%v err=%v", fi, err)
	}
	noTmpFiles(t, dir, "clash")
}
