package serialize

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"cocco/internal/eval"
)

// Cost-cache snapshot wire format: the persistent, shareable half of the
// evaluator's subgraph-cost cache (eval.CacheSnapshot). The layout is the
// cache's own flat layout — fixed-size records over one key arena — framed
// with a magic string, a format version, the validity fingerprint, and a
// trailing FNV-1a checksum, so a load can distinguish "not a cache file",
// "wrong format version", "truncated", and "corrupted" with distinct
// errors and never decodes garbage into costs. Everything is little-endian.
//
//	magic    [8]byte "COCCACHE"
//	version  uint32
//	fpLen    uint32, fingerprint bytes
//	count    uint64 (records)
//	arenaLen uint64 (key-arena bytes)
//	records  count × 64 bytes: off u32, klen u32, then int64
//	         {weight, in, out, actFootprint, MACs, computeCycles, glbAccess}
//	arena    arenaLen bytes
//	checksum uint64 FNV-1a over every preceding byte
//
// Wrong-model/-config loads are rejected one layer up: the fingerprint is
// carried verbatim and eval.LoadCache compares it against the target
// evaluator's own CacheFingerprint.

// CostCacheVersion is the current snapshot format version; decode rejects
// any other value. Version 2 relaxed the fingerprint from the full platform
// to the core geometry (graph + tiling + hw.Core) when the cost cache moved
// onto the shared GraphContext: version-1 snapshots are valid only for the
// exact platform that wrote them, which the geometry fingerprint can no
// longer express, so they are rejected as too old rather than reinterpreted.
const CostCacheVersion = 2

// ErrCostCacheTooOld and ErrCostCacheTooNew order a version mismatch so
// callers can distinguish "stale file from an earlier release — safe to
// ignore or regenerate" (errors.Is ErrCostCacheTooOld) from "file written
// by a newer release than this binary" (ErrCostCacheTooNew). Neither means
// corruption; the checksum guards that separately.
var (
	ErrCostCacheTooOld = fmt.Errorf("serialize: cost cache version too old")
	ErrCostCacheTooNew = fmt.Errorf("serialize: cost cache version too new")
)

var costCacheMagic = [8]byte{'C', 'O', 'C', 'C', 'A', 'C', 'H', 'E'}

const cacheRecordSize = 64

// fnv1a is the checksum over the snapshot frame (same function as the
// cache's key hash, on different data).
func fnv1a(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// EncodeCostCache serializes a snapshot. It refuses to write anything that
// would not decode back cleanly — an oversized arena or a record whose key
// window falls outside it — so a snapshot file on disk is either loadable
// or detectably damaged, never silently wrong.
func EncodeCostCache(snap *eval.CacheSnapshot) ([]byte, error) {
	if int64(len(snap.Arena)) > math.MaxUint32 {
		return nil, fmt.Errorf("serialize: cost cache: arena %d bytes exceeds the uint32 offset range", len(snap.Arena))
	}
	for i := range snap.Entries {
		r := &snap.Entries[i]
		if r.KeyLen == 0 || r.KeyLen%4 != 0 || int64(r.Off)+int64(r.KeyLen) > int64(len(snap.Arena)) {
			return nil, fmt.Errorf("serialize: cost cache: entry %d key window [%d:%d) invalid for %d-byte arena",
				i, r.Off, int64(r.Off)+int64(r.KeyLen), len(snap.Arena))
		}
	}
	size := 8 + 4 + 4 + len(snap.Fingerprint) + 8 + 8 + len(snap.Entries)*cacheRecordSize + len(snap.Arena) + 8
	buf := make([]byte, 0, size)
	buf = append(buf, costCacheMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, CostCacheVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(snap.Fingerprint)))
	buf = append(buf, snap.Fingerprint...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(snap.Entries)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(snap.Arena)))
	for i := range snap.Entries {
		r := &snap.Entries[i]
		buf = binary.LittleEndian.AppendUint32(buf, r.Off)
		buf = binary.LittleEndian.AppendUint32(buf, r.KeyLen)
		for _, v := range [...]int64{r.WeightBytes, r.InBytes, r.OutBytes, r.ActFootprint, r.MACs, r.ComputeCycles, r.GLBAccessBytes} {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	buf = append(buf, snap.Arena...)
	buf = binary.LittleEndian.AppendUint64(buf, fnv1a(buf))
	return buf, nil
}

// DecodeCostCache deserializes a snapshot, rejecting non-cache data, other
// format versions, truncated or oversized frames, checksum failures, and
// out-of-bounds records — each with a distinct error, none with a panic.
// The fingerprint is NOT validated here (the codec has no evaluator to ask);
// eval.LoadCache performs that check.
func DecodeCostCache(data []byte) (*eval.CacheSnapshot, error) {
	if len(data) < 8+4 || [8]byte(data[:8]) != costCacheMagic {
		return nil, fmt.Errorf("serialize: cost cache: not a cache snapshot (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != CostCacheVersion {
		if v < CostCacheVersion {
			return nil, fmt.Errorf("%w: version %d, want %d (snapshot predates the shared geometry-keyed cache; regenerate it)",
				ErrCostCacheTooOld, v, CostCacheVersion)
		}
		return nil, fmt.Errorf("%w: version %d, want %d (written by a newer release)",
			ErrCostCacheTooNew, v, CostCacheVersion)
	}
	if len(data) < 16 {
		return nil, fmt.Errorf("serialize: cost cache: truncated header")
	}
	fpLen := int64(binary.LittleEndian.Uint32(data[12:]))
	if int64(len(data)) < 16+fpLen+16 {
		return nil, fmt.Errorf("serialize: cost cache: truncated header")
	}
	fp := string(data[16 : 16+fpLen])
	count := binary.LittleEndian.Uint64(data[16+fpLen:])
	arenaLen := binary.LittleEndian.Uint64(data[16+fpLen+8:])
	bodyOff := 16 + fpLen + 16
	if count > uint64(math.MaxInt64/cacheRecordSize) || arenaLen > math.MaxUint32 {
		return nil, fmt.Errorf("serialize: cost cache: implausible entry count %d / arena %d", count, arenaLen)
	}
	want := bodyOff + int64(count)*cacheRecordSize + int64(arenaLen) + 8
	if int64(len(data)) < want {
		return nil, fmt.Errorf("serialize: cost cache: truncated (%d bytes, want %d)", len(data), want)
	}
	if int64(len(data)) > want {
		return nil, fmt.Errorf("serialize: cost cache: %d trailing bytes after the frame", int64(len(data))-want)
	}
	sumOff := want - 8
	if got, stored := fnv1a(data[:sumOff]), binary.LittleEndian.Uint64(data[sumOff:]); got != stored {
		return nil, fmt.Errorf("serialize: cost cache: checksum mismatch (stored %x, computed %x) — file corrupted", stored, got)
	}
	snap := &eval.CacheSnapshot{
		Fingerprint: fp,
		Entries:     make([]eval.CacheRecord, count),
		Arena:       append([]byte(nil), data[bodyOff+int64(count)*cacheRecordSize:sumOff]...),
	}
	for i := range snap.Entries {
		rec := data[bodyOff+int64(i)*cacheRecordSize:]
		r := &snap.Entries[i]
		r.Off = binary.LittleEndian.Uint32(rec)
		r.KeyLen = binary.LittleEndian.Uint32(rec[4:])
		if r.KeyLen == 0 || r.KeyLen%4 != 0 || int64(r.Off)+int64(r.KeyLen) > int64(arenaLen) {
			return nil, fmt.Errorf("serialize: cost cache: entry %d key window [%d:%d) outside the %d-byte arena",
				i, r.Off, int64(r.Off)+int64(r.KeyLen), arenaLen)
		}
		r.WeightBytes = int64(binary.LittleEndian.Uint64(rec[8:]))
		r.InBytes = int64(binary.LittleEndian.Uint64(rec[16:]))
		r.OutBytes = int64(binary.LittleEndian.Uint64(rec[24:]))
		r.ActFootprint = int64(binary.LittleEndian.Uint64(rec[32:]))
		r.MACs = int64(binary.LittleEndian.Uint64(rec[40:]))
		r.ComputeCycles = int64(binary.LittleEndian.Uint64(rec[48:]))
		r.GLBAccessBytes = int64(binary.LittleEndian.Uint64(rec[56:]))
	}
	return snap, nil
}

// WriteCostCacheFile encodes and atomically writes a snapshot.
func WriteCostCacheFile(path string, snap *eval.CacheSnapshot) error {
	data, err := EncodeCostCache(snap)
	if err != nil {
		return err
	}
	return AtomicWriteFile(path, data, 0o644)
}

// ReadCostCacheFile reads and decodes a snapshot file.
func ReadCostCacheFile(path string) (*eval.CacheSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serialize: cost cache: %w", err)
	}
	return DecodeCostCache(data)
}
