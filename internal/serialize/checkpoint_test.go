package serialize

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"cocco/internal/eval"
	"cocco/internal/hw"
)

// TestCheckpointRoundTrip pins the bit-exactness the resume-determinism
// contract needs: float64 fields (costs, energies, temperatures) survive an
// encode/decode cycle with their exact bit patterns, and every other field
// deep-equals.
func TestCheckpointRoundTrip(t *testing.T) {
	awkward := []float64{
		0.1 + 0.2,               // classic non-representable sum
		math.Pi * 1e12,          // large magnitude
		math.Nextafter(1, 2),    // smallest increment above 1
		1e30 + 3,                // the infeasible-cost sentinel family
		4.9406564584124654e-324, // smallest subnormal
	}
	cp := &CheckpointJSON{
		Graph:      "resnet50",
		Config:     "v1 seed=42 …",
		Round:      7,
		Migrations: 3,
	}
	for i, f := range awkward {
		cp.Islands = append(cp.Islands, IslandJSON{
			Kind:        "ga",
			RNG:         RNGStateJSON{Seed: int64(i), Draws: uint64(i) * 1234567},
			Migration:   RNGStateJSON{Seed: -int64(i), Draws: 42},
			Started:     true,
			Samples:     100 * i,
			Generations: i,
			BestHistory: []float64{f, f / 3},
			Temp:        f,
			Best: &GenomeJSON{
				Assign: []int{-1, 0, 0, 1},
				Mem:    MemConfigJSON{Kind: "separate", GlobalBytes: 1 << 20, WeightBytes: 1 << 21},
				Cost:   f,
				Res: &ResultJSON{
					EMABytes: 123, EnergyPJ: f, LatencyCycles: 456,
					AvgBWBytesPerSec: f * 7, NumSubgraphs: 2,
				},
			},
		})
	}
	data, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	// The encoder stamps the current version on the wire form only; the
	// caller's struct keeps its zero Version.
	if cp.Version != 0 {
		t.Fatalf("encode mutated the input (Version=%d)", cp.Version)
	}
	want := *cp
	want.Version = CheckpointVersion
	if !reflect.DeepEqual(&want, back) {
		t.Fatalf("round trip changed the checkpoint:\nin:  %+v\nout: %+v", &want, back)
	}
	for i, f := range awkward {
		if got := back.Islands[i].Best.Cost; math.Float64bits(got) != math.Float64bits(f) {
			t.Errorf("island %d: cost bits changed: %x -> %x", i, math.Float64bits(f), math.Float64bits(got))
		}
	}
}

// TestCheckpointVersionGate pins that unknown versions are rejected.
func TestCheckpointVersionGate(t *testing.T) {
	data, err := EncodeCheckpoint(&CheckpointJSON{Graph: "g"})
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if bad == string(data) {
		t.Fatal("test assumes the version field serializes as \"version\": 1")
	}
	if _, err := DecodeCheckpoint([]byte(bad)); err == nil {
		t.Error("decoded a version-99 checkpoint")
	}
}

// TestMemConfigRoundTrip covers both buffer kinds and the unknown-kind
// error path.
func TestMemConfigRoundTrip(t *testing.T) {
	for _, m := range []hw.MemConfig{
		{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB},
		{Kind: hw.SharedBuffer, GlobalBytes: 2048 * hw.KiB},
	} {
		back, err := DecodeMemConfig(EncodeMemConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		if back != m {
			t.Errorf("round trip changed %+v to %+v", m, back)
		}
	}
	if _, err := DecodeMemConfig(MemConfigJSON{Kind: "quantum"}); err == nil {
		t.Error("decoded an unknown buffer kind")
	}
}

// TestResultRoundTrip pins result field fidelity including the infeasible
// list.
func TestResultRoundTrip(t *testing.T) {
	r := &eval.Result{
		EMABytes: 1 << 40, EnergyPJ: 0.1 + 0.2, LatencyCycles: 99,
		AvgBWBytesPerSec: math.Pi, MaxActFootprint: 7, MaxWgtFootprint: 8,
		Infeasible: []int{3, 5}, NumSubgraphs: 11,
	}
	back := DecodeResult(EncodeResult(r))
	if !reflect.DeepEqual(r, back) {
		t.Errorf("round trip changed %+v to %+v", r, back)
	}
	if DecodeResult(nil) != nil || EncodeResult(nil) != nil {
		t.Error("nil results should stay nil")
	}
}
