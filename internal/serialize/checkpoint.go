package serialize

import (
	"encoding/json"
	"fmt"

	"cocco/internal/eval"
	"cocco/internal/hw"
)

// Checkpoint wire format for the island-model search orchestrator
// (internal/search). The snapshot is versioned and self-describing: besides
// the per-island state it pins the graph name and an options fingerprint, so
// a resume against the wrong model or configuration fails loudly instead of
// silently diverging. Every field is either an integer, a string, or a
// float64 — Go's encoding/json emits shortest round-trip representations
// for float64, so costs and energies survive a save/load cycle bit-exactly,
// which the resume-determinism contract depends on.

// CheckpointVersion is the current snapshot format version. Decode rejects
// any other value; bumping it is how incompatible layout changes are kept
// from being misread as state.
const CheckpointVersion = 1

// RNGStateJSON pins a CountingSource-backed generator: the state is a pure
// function of (seed, draws).
type RNGStateJSON struct {
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// MemConfigJSON is the wire form of a memory configuration.
type MemConfigJSON struct {
	Kind        string `json:"kind"`
	GlobalBytes int64  `json:"global_bytes"`
	WeightBytes int64  `json:"weight_bytes,omitempty"`
}

// EncodeMemConfig converts to the wire form.
func EncodeMemConfig(m hw.MemConfig) MemConfigJSON {
	return MemConfigJSON{Kind: m.Kind.String(), GlobalBytes: m.GlobalBytes, WeightBytes: m.WeightBytes}
}

// DecodeMemConfig rebuilds a memory configuration.
func DecodeMemConfig(j MemConfigJSON) (hw.MemConfig, error) {
	m := hw.MemConfig{GlobalBytes: j.GlobalBytes, WeightBytes: j.WeightBytes}
	switch j.Kind {
	case hw.SeparateBuffer.String():
		m.Kind = hw.SeparateBuffer
	case hw.SharedBuffer.String():
		m.Kind = hw.SharedBuffer
	default:
		return m, fmt.Errorf("serialize: unknown buffer kind %q", j.Kind)
	}
	return m, nil
}

// ResultJSON is the wire form of an evaluation result.
type ResultJSON struct {
	EMABytes         int64   `json:"ema_bytes"`
	EnergyPJ         float64 `json:"energy_pj"`
	LatencyCycles    int64   `json:"latency_cycles"`
	AvgBWBytesPerSec float64 `json:"avg_bw_bytes_per_sec"`
	MaxActFootprint  int64   `json:"max_act_footprint"`
	MaxWgtFootprint  int64   `json:"max_wgt_footprint"`
	Infeasible       []int   `json:"infeasible,omitempty"`
	NumSubgraphs     int     `json:"num_subgraphs"`
}

// EncodeResult converts to the wire form (nil-safe).
func EncodeResult(r *eval.Result) *ResultJSON {
	if r == nil {
		return nil
	}
	return &ResultJSON{
		EMABytes:         r.EMABytes,
		EnergyPJ:         r.EnergyPJ,
		LatencyCycles:    r.LatencyCycles,
		AvgBWBytesPerSec: r.AvgBWBytesPerSec,
		MaxActFootprint:  r.MaxActFootprint,
		MaxWgtFootprint:  r.MaxWgtFootprint,
		Infeasible:       append([]int(nil), r.Infeasible...),
		NumSubgraphs:     r.NumSubgraphs,
	}
}

// DecodeResult rebuilds an evaluation result (nil-safe).
func DecodeResult(j *ResultJSON) *eval.Result {
	if j == nil {
		return nil
	}
	return &eval.Result{
		EMABytes:         j.EMABytes,
		EnergyPJ:         j.EnergyPJ,
		LatencyCycles:    j.LatencyCycles,
		AvgBWBytesPerSec: j.AvgBWBytesPerSec,
		MaxActFootprint:  j.MaxActFootprint,
		MaxWgtFootprint:  j.MaxWgtFootprint,
		Infeasible:       append([]int(nil), j.Infeasible...),
		NumSubgraphs:     j.NumSubgraphs,
	}
}

// GenomeJSON is the wire form of one genome: the partition as its raw
// assignment (rebuilt via partition.From at load), the memory config, the
// committed cost, and — where the orchestrator needs it (best genomes, memo
// entries) — the evaluation result. Population entries omit the result; the
// search only reads their costs.
type GenomeJSON struct {
	Assign []int         `json:"assign"`
	Mem    MemConfigJSON `json:"mem"`
	Cost   float64       `json:"cost"`
	Res    *ResultJSON   `json:"res,omitempty"`
}

// IslandJSON is the paused state of one island. GA islands fill the
// optimizer fields (population, memo, history); scout islands fill the
// scout fields (current state, temperature, chain progress) instead.
type IslandJSON struct {
	Kind      string       `json:"kind"`
	RNG       RNGStateJSON `json:"rng"`
	Migration RNGStateJSON `json:"migration_rng"`

	// GA optimizer state.
	Started         bool         `json:"started,omitempty"`
	Samples         int          `json:"samples"`
	Generations     int          `json:"generations,omitempty"`
	FeasibleSamples int          `json:"feasible_samples,omitempty"`
	MemoHits        int          `json:"memo_hits,omitempty"`
	BestHistory     []float64    `json:"best_history,omitempty"`
	Population      []GenomeJSON `json:"population,omitempty"`
	Best            *GenomeJSON  `json:"best,omitempty"`
	Memo            []GenomeJSON `json:"memo,omitempty"`

	// Scout state.
	Cur  *GenomeJSON `json:"cur,omitempty"`
	Temp float64     `json:"temp,omitempty"`
}

// CheckpointJSON is the wire form of a paused orchestrator run.
type CheckpointJSON struct {
	Version    int    `json:"version"`
	Graph      string `json:"graph"`
	Config     string `json:"config"`
	Round      int    `json:"round"`
	Migrations int    `json:"migrations"`
	// MigrantsSent and MigrantsReceived count genomes exchanged per ring
	// island since the start of the run (omitted when the ring never
	// migrated). Additive since the counters were introduced: a snapshot
	// without them restores with nil counters.
	MigrantsSent     []int        `json:"migrants_sent,omitempty"`
	MigrantsReceived []int        `json:"migrants_recv,omitempty"`
	Islands          []IslandJSON `json:"islands"`
}

// EncodeCheckpoint marshals a snapshot, stamping the current version on the
// wire form only — the caller's struct is never mutated.
func EncodeCheckpoint(c *CheckpointJSON) ([]byte, error) {
	stamped := *c
	stamped.Version = CheckpointVersion
	out, err := json.MarshalIndent(&stamped, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serialize: checkpoint: %w", err)
	}
	return append(out, '\n'), nil
}

// DecodeCheckpoint unmarshals a snapshot, rejecting unknown versions.
func DecodeCheckpoint(data []byte) (*CheckpointJSON, error) {
	var c CheckpointJSON
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("serialize: checkpoint: %w", err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("serialize: checkpoint version %d, want %d", c.Version, CheckpointVersion)
	}
	return &c, nil
}
