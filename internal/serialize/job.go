package serialize

import (
	"encoding/json"
	"fmt"
)

// Job wire format for the search job server (internal/serve, cmd/coccod).
// Every job persists one manifest file next to its orchestrator checkpoint;
// the manifest is rewritten atomically at every slice boundary, so a killed
// or restarted server rescans its job directory and knows each job's spec,
// state, and last durable progress. Like the checkpoint codec the manifest
// is versioned and self-describing, and every float is a float64 that
// round-trips bit-exactly through encoding/json.

// JobManifestVersion is the current manifest format version; decode rejects
// any other value.
const JobManifestVersion = 1

// Job states as persisted in the manifest. The in-memory scheduler uses the
// same strings; see internal/serve for the state machine.
const (
	JobStateQueued    = "queued"
	JobStateRunning   = "running"
	JobStatePaused    = "paused"
	JobStateDone      = "done"
	JobStateCancelled = "cancelled"
	JobStateFailed    = "failed"
)

// JobSpecJSON is the client-submitted description of one search job: the
// model, platform, and search options, mirroring cmd/cocco's flags. It is
// the only input the server needs to rebuild the job's evaluator and
// search.Options after a restart, so everything trajectory-shaping lives
// here and nothing server-side (pool width, slice length) does.
type JobSpecJSON struct {
	Model  string `json:"model"`
	Tiling string `json:"tiling,omitempty"` // base tile HxW; empty = default
	Cores  int    `json:"cores,omitempty"`  // accelerator cores (default 1)
	Batch  int    `json:"batch,omitempty"`  // batch size (default 1)

	Metric string  `json:"metric,omitempty"` // ema | energy (default energy)
	Alpha  float64 `json:"alpha,omitempty"`  // Formula 2 preference α

	Kind      string `json:"kind,omitempty"` // separate | shared (default separate)
	GLBKiB    int64  `json:"glb_kib,omitempty"`
	WGTKiB    int64  `json:"wgt_kib,omitempty"`
	MemSearch bool   `json:"mem_search,omitempty"` // co-explore memory (DSE)

	Seed       int64 `json:"seed"`
	Population int   `json:"population,omitempty"`
	Samples    int   `json:"samples"` // per-island evaluation budget

	Islands      int      `json:"islands,omitempty"`
	MigrateEvery int      `json:"migrate_every,omitempty"`
	Migrants     int      `json:"migrants,omitempty"`
	Scouts       []string `json:"scouts,omitempty"` // sa | greedy
}

// JobIslandJSON is one ring member's contribution to a progress report.
type JobIslandJSON struct {
	Kind            string `json:"kind"`
	Samples         int    `json:"samples"`
	FeasibleSamples int    `json:"feasible_samples"`
	MemoHits        int    `json:"memo_hits"`
}

// JobProgressJSON is the durable progress snapshot written at every slice
// boundary (and reported per-round to watchers in between). BestCost is nil
// until any island holds a feasible genome. SamplesPerSec is measured wall
// time spent inside search slices — informational only, never compared.
type JobProgressJSON struct {
	Rounds          int             `json:"rounds"`
	Migrations      int             `json:"migrations"`
	Samples         int             `json:"samples"`
	FeasibleSamples int             `json:"feasible_samples"`
	MemoHits        int             `json:"memo_hits"`
	BestCost        *float64        `json:"best_cost,omitempty"`
	BestIsland      int             `json:"best_island"`
	SamplesPerSec   float64         `json:"samples_per_sec,omitempty"`
	Islands         []JobIslandJSON `json:"islands,omitempty"`
}

// JobManifestJSON is the persisted state of one job. Result is set only in
// the done state when the search found a feasible genome; Error records
// failure reasons, and in the done state with a nil Result it records why
// the search ended with nothing (budget exhausted with no feasible genome).
type JobManifestJSON struct {
	Version int         `json:"version"`
	ID      string      `json:"id"`
	State   string      `json:"state"`
	Spec    JobSpecJSON `json:"spec"`
	// Slices counts completed scheduler slices; progress advances at least
	// one round per slice, so a manifest rewrite always moves forward.
	Slices        int              `json:"slices"`
	Progress      *JobProgressJSON `json:"progress,omitempty"`
	Result        *GenomeJSON      `json:"result,omitempty"`
	Error         string           `json:"error,omitempty"`
	SubmittedUnix int64            `json:"submitted_unix,omitempty"`
	UpdatedUnix   int64            `json:"updated_unix,omitempty"`
}

// EncodeJobManifest marshals a manifest, stamping the current version on the
// wire form only — the caller's struct is never mutated.
func EncodeJobManifest(m *JobManifestJSON) ([]byte, error) {
	stamped := *m
	stamped.Version = JobManifestVersion
	out, err := json.MarshalIndent(&stamped, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serialize: job manifest: %w", err)
	}
	return append(out, '\n'), nil
}

// DecodeJobManifest unmarshals a manifest, rejecting unknown versions and
// unknown states — a manifest from a future server generation must fail
// loudly rather than be scheduled under wrong assumptions.
func DecodeJobManifest(data []byte) (*JobManifestJSON, error) {
	var m JobManifestJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("serialize: job manifest: %w", err)
	}
	if m.Version != JobManifestVersion {
		return nil, fmt.Errorf("serialize: job manifest version %d, want %d", m.Version, JobManifestVersion)
	}
	switch m.State {
	case JobStateQueued, JobStateRunning, JobStatePaused, JobStateDone, JobStateCancelled, JobStateFailed:
	default:
		return nil, fmt.Errorf("serialize: job manifest: unknown state %q", m.State)
	}
	return &m, nil
}
