package serialize

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWriteFile durably replaces path with data: write to a unique temp
// file in the same directory, fsync it, rename over path, and best-effort
// fsync the directory so the rename itself survives a crash. On any error
// the temp file is removed and path is untouched — a reader never observes
// a partial or empty file where a complete one is expected. This is the one
// write path for checkpoints, sweep outcome files, and cache snapshots; the
// bare os.WriteFile+os.Rename it replaces could surface a zero-length
// "done" file after a crash between the write and the data reaching disk.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("serialize: atomic write %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("serialize: atomic write %s: %w", path, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("serialize: atomic write %s: %w", path, err)
	}
	if err = f.Chmod(perm); err != nil {
		return fmt.Errorf("serialize: atomic write %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("serialize: atomic write %s: %w", path, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("serialize: atomic write %s: %w", path, err)
	}
	// Sync the directory so the rename is durable. Failure here is not
	// fatal — the file content is already safe and correctly named — and
	// some filesystems refuse directory fsync entirely.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
