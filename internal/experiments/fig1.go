package experiments

import (
	"fmt"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/report"
)

// Fig1Point is one capacity sample of the Figure 1 trade-off.
type Fig1Point struct {
	CapacityKB int64
	EMAMB      float64
	Subgraphs  int
}

// Figure1Sweep regenerates the paper's framing figure: external memory
// access versus on-chip capacity. For each shared-buffer capacity on a
// coarse grid, a partition-only search finds the best EMA; the curve starts
// near the "max EMA" extreme (every layer reloaded) and saturates at the
// "min EMA" bound (weights + model input + output) — the diminishing
// marginal benefit Figure 2's survey observes in silicon.
func Figure1Sweep(cfg Config, model string) ([]Fig1Point, string) {
	ev := evaluatorFor(model, platform1())
	g := ev.Graph()

	var inB, outB int64
	for _, id := range g.Inputs() {
		inB += g.Node(id).OutBytes()
	}
	for _, id := range g.Outputs() {
		outB += g.Node(id).OutBytes()
	}
	minEMA := g.TotalWeightBytes() + inB + outB

	var pts []Fig1Point
	t := report.NewTable(fmt.Sprintf("Figure 1: EMA vs on-chip capacity (%s; min EMA = %s)",
		model, report.Bytes(minEMA)),
		"capacity(KB)", "EMA(MB)", "subgraphs")
	for _, kb := range []int64{128, 256, 512, 1024, 2048, 4096, 8192} {
		mem := hw.MemConfig{Kind: hw.SharedBuffer, GlobalBytes: kb * hw.KiB}
		best, _, err := core.Run(ev, core.Options{
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
			Population: cfg.Population,
			MaxSamples: cfg.FinalSamples,
			Objective:  eval.Objective{Metric: eval.MetricEMA},
			Mem:        core.MemSearch{Fixed: mem},
		})
		if err != nil {
			panic(fmt.Sprintf("figure1: %s @%dKB: %v", model, kb, err))
		}
		p := Fig1Point{
			CapacityKB: kb,
			EMAMB:      float64(best.Res.EMABytes) / 1e6,
			Subgraphs:  best.P.NumSubgraphs(),
		}
		pts = append(pts, p)
		t.AddRow(kb, fmt.Sprintf("%.2f", p.EMAMB), p.Subgraphs)
	}
	s := report.Series{Name: "fig1-" + model, XLabel: "capacity KB", YLabel: "EMA MB"}
	for _, p := range pts {
		s.Add(float64(p.CapacityKB), p.EMAMB)
	}
	return pts, t.String() + s.CSV()
}

// AblationPrefetchRow compares feasibility modeling with and without the
// double-buffered weight-prefetch constraint.
type AblationPrefetchRow struct {
	Model        string
	Prefetch     bool
	CostFormula2 float64
	MaxWgtKB     int64
	NumSubgraphs int
}

// AblationPrefetch quantifies the §5.1.2 weight-prefetch modeling choice:
// requiring consecutive subgraphs' weights to co-reside shrinks the feasible
// fusion space and can only raise the optimized cost.
func AblationPrefetch(cfg Config) ([]AblationPrefetchRow, string) {
	obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: PaperAlpha}
	mem := paperFixedMem()
	var rows []AblationPrefetchRow
	t := report.NewTable("Ablation: single- vs double-buffered (prefetch) weight feasibility",
		"model", "prefetch", "cost", "max wgt/subgraph", "subgraphs")
	for _, m := range []string{"resnet50", "googlenet"} {
		for _, prefetch := range []bool{false, true} {
			ev := evaluatorFor(m, platform1())
			if prefetch {
				ev.EnablePrefetchCheck()
			}
			best, _, err := core.Run(ev, core.Options{
				Seed: cfg.Seed, Workers: cfg.Workers, Population: cfg.Population, MaxSamples: cfg.CoOptSamples,
				Objective: obj,
				Mem:       core.MemSearch{Fixed: mem},
			})
			if err != nil {
				t.AddRow(m, prefetch, "n/a", "n/a", "n/a")
				continue
			}
			cost := float64(mem.TotalBytes()) + obj.Alpha*best.Res.EnergyPJ
			row := AblationPrefetchRow{Model: m, Prefetch: prefetch, CostFormula2: cost,
				MaxWgtKB: best.Res.MaxWgtFootprint / hw.KiB, NumSubgraphs: best.P.NumSubgraphs()}
			rows = append(rows, row)
			t.AddRow(m, prefetch, fmt.Sprintf("%.4g", cost), row.MaxWgtKB, row.NumSubgraphs)
		}
	}
	return rows, t.String()
}
