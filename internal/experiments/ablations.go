package experiments

import (
	"fmt"
	"math"
	"time"

	"cocco/internal/baselines"
	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/partition"
	"cocco/internal/report"
	"cocco/internal/search"
	"cocco/internal/tiling"
)

// AblationTilingRow compares the consumption-centric scheme's resident-tile
// buffer requirement against the production-centric baseline of Figure 4 on
// fixed-depth subgraphs.
type AblationTilingRow struct {
	Model string
	L     int
	// ProdOverConsRatio is production-centric bytes / consumption-centric
	// bytes, averaged over the model's subgraphs (≥ 1; higher = more saved).
	ProdOverConsRatio float64
}

// AblationTiling quantifies design choice 1 of DESIGN.md: how much resident
// buffer the consumption-centric flow saves over the production-centric one.
func AblationTiling() ([]AblationTilingRow, string) {
	modelsUnderTest := []string{"resnet50", "googlenet", "randwire-a", "nasnet"}
	var rows []AblationTilingRow
	t := report.NewTable("Ablation: production-centric vs consumption-centric resident tiles",
		"model", "L", "prod/cons footprint ratio")
	for _, m := range modelsUnderTest {
		ev := evaluatorFor(m, platform1())
		g := ev.Graph()
		for _, l := range []int{3, 5} {
			p := FixedDepthPartition(g, l)
			var sumRatio float64
			var n int
			for _, members := range p.Subgraphs() {
				if len(members) < 2 {
					continue
				}
				s, err := tiling.Derive(g, members, tiling.DefaultConfig())
				if err != nil {
					continue
				}
				cons := s.TotalMainBytes(g)
				prod := tiling.ProductionFootprintBytes(g, members, s)
				if cons > 0 {
					sumRatio += float64(prod) / float64(cons)
					n++
				}
			}
			if n == 0 {
				continue
			}
			row := AblationTilingRow{Model: m, L: l, ProdOverConsRatio: sumRatio / float64(n)}
			rows = append(rows, row)
			t.AddRow(m, l, fmt.Sprintf("%.3f", row.ProdOverConsRatio))
		}
	}
	return rows, t.String()
}

// AblationGARow compares a GA variant against the full Cocco configuration.
type AblationGARow struct {
	Model, Variant string
	Cost           float64
	FeasibleRate   float64
}

// AblationGA quantifies design choices 2 and 3 of DESIGN.md: disabling the
// in-situ split repair (fewer valid samples) and disabling crossover
// (mutation-only GA) against the full configuration.
func AblationGA(cfg Config) ([]AblationGARow, string) {
	modelsUnderTest := []string{"resnet50", "googlenet"}
	obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: PaperAlpha}
	variants := []struct {
		name             string
		noCross, noSplit bool
	}{
		{"full", false, false},
		{"no-crossover", true, false},
		{"no-insitu-split", false, true},
	}

	var rows []AblationGARow
	t := report.NewTable("Ablation: GA variants (co-exploration cost; feasible-sample rate)",
		"model", "variant", "cost", "feasible rate")
	for _, m := range modelsUnderTest {
		for _, v := range variants {
			ev := evaluatorFor(m, platform1())
			best, stats, err := core.Run(ev, core.Options{
				Seed:               cfg.Seed,
				Workers:            cfg.Workers,
				Population:         cfg.Population,
				MaxSamples:         cfg.CoOptSamples,
				Objective:          obj,
				DisableCrossover:   v.noCross,
				DisableInSituSplit: v.noSplit,
				Mem: core.MemSearch{Search: true, Kind: hw.SeparateBuffer,
					Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()},
			})
			row := AblationGARow{Model: m, Variant: v.name}
			if stats != nil && stats.Samples > 0 {
				row.FeasibleRate = float64(stats.FeasibleSamples) / float64(stats.Samples)
			}
			costCol := "no feasible genome"
			if err == nil {
				row.Cost = best.Cost
				costCol = fmt.Sprintf("%.4g", row.Cost)
			} else {
				row.Cost = math.Inf(1)
			}
			rows = append(rows, row)
			t.AddRow(m, v.name, costCol, fmt.Sprintf("%.3f", row.FeasibleRate))
		}
	}
	return rows, t.String()
}

// AblationSeedRow compares GA initialization strategies.
type AblationSeedRow struct {
	Model, Init   string
	Cost          float64
	SamplesTo1_02 int
}

// AblationSeeding quantifies the paper's "flexible initialization" benefit
// (§4.3, benefit 4): seeding the GA population with the greedy baseline's
// partition against pure random initialization, measured by the samples
// needed to reach within 2% of the better final cost.
func AblationSeeding(cfg Config) ([]AblationSeedRow, string) {
	obj := eval.Objective{Metric: eval.MetricEMA}
	mem := paperFixedMem()
	var rows []AblationSeedRow
	t := report.NewTable("Ablation: GA initialization (random vs greedy-seeded)",
		"model", "init", "final EMA cost", "samples to 1.02×best")
	for _, m := range []string{"resnet50", "googlenet"} {
		// The target threshold comes from whichever variant ends better.
		type runOut struct {
			cost  float64
			curve []float64
		}
		run := func(seeded bool) runOut {
			ev := evaluatorFor(m, platform1())
			opt := core.Options{
				Seed: cfg.Seed, Workers: cfg.Workers, Population: cfg.Population, MaxSamples: cfg.CoOptSamples,
				Objective: obj,
				Mem:       core.MemSearch{Fixed: mem},
			}
			var curve []float64
			opt.Trace = func(tp core.TracePoint) { curve = append(curve, tp.BestCost) }
			if seeded {
				gp, _ := baselines.Greedy(ev, mem, obj.Metric)
				opt.Init = []*partition.Partition{gp}
			}
			best, _, err := core.Run(ev, opt)
			if err != nil {
				return runOut{cost: math.Inf(1)}
			}
			return runOut{cost: best.Cost, curve: curve}
		}
		random := run(false)
		seeded := run(true)
		target := 1.02 * math.Min(random.cost, seeded.cost)
		for _, v := range []struct {
			name string
			out  runOut
		}{{"random", random}, {"greedy-seeded", seeded}} {
			hit := 0
			for i, c := range v.out.curve {
				if c <= target {
					hit = i + 1
					break
				}
			}
			row := AblationSeedRow{Model: m, Init: v.name, Cost: v.out.cost, SamplesTo1_02: hit}
			rows = append(rows, row)
			t.AddRow(m, v.name, fmt.Sprintf("%.4g", v.out.cost), hit)
		}
	}
	return rows, t.String()
}

// AblationCacheRow reports memoization effectiveness.
type AblationCacheRow struct {
	Model    string
	Distinct int64
	Lookups  int64
	HitRate  float64
}

// AblationCache quantifies design choice 4 of DESIGN.md: the subgraph-cost
// cache hit rate over a co-exploration run (the cache is what makes
// 10^5-sample searches cheap). The rate is computed from distinct cached
// subgraphs rather than the raw hit counter, so the table is deterministic
// even when concurrent workers race on cold misses.
func AblationCache(cfg Config) ([]AblationCacheRow, string) {
	modelsUnderTest := []string{"resnet50", "googlenet"}
	obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: PaperAlpha}
	var rows []AblationCacheRow
	t := report.NewTable("Ablation: subgraph-cost memoization", "model", "distinct", "lookups", "hit rate")
	for _, m := range modelsUnderTest {
		ev := evaluatorFor(m, platform1())
		_, _, err := core.Run(ev, core.Options{
			Seed: cfg.Seed, Workers: cfg.Workers, Population: cfg.Population, MaxSamples: cfg.CoOptSamples,
			Objective: obj,
			Mem: core.MemSearch{Search: true, Kind: hw.SeparateBuffer,
				Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()},
		})
		if err != nil {
			continue
		}
		_, calls := ev.CacheStats()
		distinct := ev.CacheEntries()
		row := AblationCacheRow{Model: m, Distinct: distinct, Lookups: calls,
			HitRate: float64(calls-distinct) / float64(max(calls, 1))}
		rows = append(rows, row)
		t.AddRow(m, distinct, calls, fmt.Sprintf("%.4f", row.HitRate))
	}
	return rows, t.String()
}

// AblationDeltaRow compares the incremental (delta) evaluation engine
// against the full-recompute path on the same search.
type AblationDeltaRow struct {
	Model string
	// FullEvalsPerSec and DeltaEvalsPerSec are genome evaluations per
	// wall-clock second for each engine.
	FullEvalsPerSec, DeltaEvalsPerSec float64
	// Speedup is DeltaEvalsPerSec / FullEvalsPerSec.
	Speedup float64
	// HandleReuse is the fraction of subgraph-cost lookups the delta engine
	// served straight from carried handles (never touching the cost cache).
	HandleReuse float64
	// CostsEqual records the bit-identity cross-check of the two engines'
	// best costs; anything but true is a correctness bug.
	CostsEqual bool
}

// AblationDeltaEval quantifies the delta-evaluation tentpole: the same
// seeded co-exploration search run through Evaluator.PartitionDelta and
// through the full-recompute Evaluator.Partition, reporting throughput,
// handle-reuse rate, and the equality cross-check. Wall-clock numbers vary
// by machine; the equality column must not.
func AblationDeltaEval(cfg Config) ([]AblationDeltaRow, string) {
	modelsUnderTest := []string{"resnet50", "googlenet"}
	obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: PaperAlpha}
	var rows []AblationDeltaRow
	t := report.NewTable("Ablation: incremental (delta) vs full partition evaluation",
		"model", "full evals/s", "delta evals/s", "speedup", "handle reuse", "costs equal")
	for _, m := range modelsUnderTest {
		run := func(disableDelta bool) (cost, evalsPerSec, reuse float64, ok bool) {
			ev := evaluatorFor(m, platform1())
			t0 := time.Now()
			best, stats, err := core.Run(ev, core.Options{
				Seed: cfg.Seed, Workers: cfg.Workers, Population: cfg.Population, MaxSamples: cfg.CoOptSamples,
				Objective:        obj,
				DisableDeltaEval: disableDelta,
				Mem: core.MemSearch{Search: true, Kind: hw.SeparateBuffer,
					Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()},
			})
			el := time.Since(t0).Seconds()
			if err != nil || stats == nil {
				return math.Inf(1), 0, 0, false
			}
			_, calls := ev.CacheStats()
			if tot := calls + ev.DeltaStats(); tot > 0 {
				reuse = float64(ev.DeltaStats()) / float64(tot)
			}
			return best.Cost, float64(stats.Samples) / el, reuse, true
		}
		fullCost, fullRate, _, fullOK := run(true)
		deltaCost, deltaRate, reuse, deltaOK := run(false)
		row := AblationDeltaRow{Model: m,
			FullEvalsPerSec: fullRate, DeltaEvalsPerSec: deltaRate,
			HandleReuse: reuse,
			CostsEqual:  fullOK && deltaOK && fullCost == deltaCost,
		}
		if fullRate > 0 {
			row.Speedup = deltaRate / fullRate
		}
		rows = append(rows, row)
		t.AddRow(m, fmt.Sprintf("%.0f", fullRate), fmt.Sprintf("%.0f", deltaRate),
			fmt.Sprintf("%.2f", row.Speedup), fmt.Sprintf("%.3f", reuse), row.CostsEqual)
	}
	return rows, t.String()
}

// AblationIslandRow is one (model, island count) point of the island-model
// ablation.
type AblationIslandRow struct {
	Model   string
	Islands int
	// Cost is the best cost found with the total sample budget split evenly
	// across the islands.
	Cost float64
	// SamplesPerSec is aggregate search throughput (all islands' samples
	// over wall clock).
	SamplesPerSec float64
	// Migrations counts executed ring barriers.
	Migrations int
	// MatchesPlainGA records the islands=1 bit-identity cross-check against
	// core.Run; anything but true on the islands=1 row is a correctness bug
	// (the column is trivially true elsewhere).
	MatchesPlainGA bool
	// Err records a failed search (e.g. no feasible genome at this split
	// budget); the row's measurements are zero then.
	Err string
}

// AblationIslands quantifies the island-model orchestrator: the same total
// sample budget spent by 1, 2, and 4 migrating GA islands. Splitting a
// fixed budget shows what migration buys (or costs) in solution quality;
// the throughput column shows the scaling the orchestrator adds on
// multi-core hosts (cmd/benchreport records the per-island-budget scaling
// separately). The islands=1 row doubles as the determinism cross-check
// against the plain GA.
func AblationIslands(cfg Config) ([]AblationIslandRow, string) {
	modelsUnderTest := []string{"resnet50", "googlenet"}
	obj := eval.Objective{Metric: eval.MetricEMA}
	var rows []AblationIslandRow
	t := report.NewTable("Ablation: island-model search (fixed total budget, split across islands)",
		"model", "islands", "best cost", "samples/s", "migrations", "matches plain GA")
	for _, m := range modelsUnderTest {
		plain, _, plainErr := core.Run(evaluatorFor(m, platform1()), core.Options{
			Seed: cfg.Seed, Workers: cfg.Workers, Population: cfg.Population, MaxSamples: cfg.CoOptSamples,
			Objective: obj, Mem: core.MemSearch{Fixed: paperFixedMem()},
		})
		for _, islands := range []int{1, 2, 4} {
			ev := evaluatorFor(m, platform1())
			t0 := time.Now()
			best, stats, err := search.Run(ev, search.Options{
				Core: core.Options{
					Seed: cfg.Seed, Workers: cfg.Workers, Population: cfg.Population,
					MaxSamples: cfg.CoOptSamples / islands,
					Objective:  obj, Mem: core.MemSearch{Fixed: paperFixedMem()},
				},
				Islands: islands,
			})
			el := time.Since(t0).Seconds()
			if err != nil {
				// Keep the failed point visible instead of silently
				// truncating the table.
				row := AblationIslandRow{Model: m, Islands: islands, Err: err.Error()}
				rows = append(rows, row)
				t.AddRow(m, islands, "error: "+row.Err, "-", "-", "-")
				continue
			}
			row := AblationIslandRow{
				Model: m, Islands: islands,
				Cost:          best.Cost,
				SamplesPerSec: float64(stats.Samples) / el,
				Migrations:    stats.Migrations,
				MatchesPlainGA: islands != 1 ||
					(plainErr == nil && plain.Cost == best.Cost),
			}
			rows = append(rows, row)
			t.AddRow(m, islands, fmt.Sprintf("%.4g", row.Cost),
				fmt.Sprintf("%.0f", row.SamplesPerSec), row.Migrations, row.MatchesPlainGA)
		}
	}
	return rows, t.String()
}

// MinEMABounds prints, per model, the Figure 1 bounds: the maximum EMA
// (no on-chip reuse at all) and the minimum EMA (weights + model input +
// model output), bracketing every partition result.
func MinEMABounds() string {
	t := report.NewTable("Figure 1 bounds: EMA extremes per model",
		"model", "min EMA (wgt+in+out)", "singleton EMA", "whole-graph EMA")
	for _, m := range []string{"vgg16", "resnet50", "googlenet", "randwire-a"} {
		ev := evaluatorFor(m, platform1())
		g := ev.Graph()
		mem := paperFixedMem()
		var inB, outB int64
		for _, id := range g.Inputs() {
			inB += g.Node(id).OutBytes()
		}
		for _, id := range g.Outputs() {
			outB += g.Node(id).OutBytes()
		}
		minEMA := g.TotalWeightBytes() + inB + outB
		sing := ev.Partition(partition.Singletons(g), mem)
		whole := ev.Partition(partition.Whole(g), mem)
		t.AddRow(m, report.Bytes(minEMA), report.Bytes(sing.EMABytes), report.Bytes(whole.EMABytes))
	}
	return t.String()
}
