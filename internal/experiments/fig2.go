package experiments

import (
	"fmt"

	"cocco/internal/report"
)

// NPUSurveyEntry is one industrial accelerator from the paper's Figure 2
// survey: performance, on-chip memory capacity, and the SRAM share of die
// area.
type NPUSurveyEntry struct {
	Name          string
	Domain        string // "inference" or "training"
	TFLOPS        float64
	OnChipMB      float64
	SRAMAreaRatio float64 // percent
}

// NPUSurvey returns the sixteen accelerators of Figure 2 with the SRAM area
// ratios the paper tabulates.
func NPUSurvey() []NPUSurveyEntry {
	return []NPUSurveyEntry{
		{"T4", "inference", 65, 10, 3.96},
		{"NVDLA", "inference", 1, 2.5, 13.79},
		{"TPUv4i", "inference", 138, 144, 14.70},
		{"FSD", "inference", 73.7, 64, 20.10},
		{"NNP-I", "inference", 92, 75, 27.46},
		{"Groq", "inference", 250, 220, 32.39},
		{"Hanguang", "inference", 825, 394, 36.86},
		{"Ascend910", "training", 320, 32, 8.60},
		{"TPUv2", "training", 46, 32, 10.92},
		{"Qualcomm-100", "training", 100, 144, 11.76},
		{"NNP-T", "training", 119, 60, 18.60},
		{"Wormhole", "training", 86, 120, 18.68},
		{"Grayskull", "training", 92, 120, 23.22},
		{"Dojo", "training", 362, 440, 28.01},
		{"IPUv2", "training", 250, 896, 40.65},
		{"IPUv1", "training", 125, 304, 78.80},
	}
}

// Figure2 renders the survey: performance vs on-chip capacity plus the SRAM
// area-ratio table, and the two survey observations the paper draws.
func Figure2() string {
	t := report.NewTable("Figure 2: industrial NPU survey (perf vs memory, SRAM area ratio)",
		"chip", "domain", "TFLOPS", "on-chip(MB)", "SRAM-area(%)")
	minRatio, maxRatio := 100.0, 0.0
	minCap, maxCap := 1e12, 0.0
	for _, e := range NPUSurvey() {
		t.AddRow(e.Name, e.Domain, e.TFLOPS, e.OnChipMB, e.SRAMAreaRatio)
		minRatio = minF(minRatio, e.SRAMAreaRatio)
		maxRatio = maxF(maxRatio, e.SRAMAreaRatio)
		minCap = minF(minCap, e.OnChipMB)
		maxCap = maxF(maxCap, e.OnChipMB)
	}
	out := t.String()
	out += fmt.Sprintf("observation 1: SRAM occupies %.1f%%–%.1f%% of die area, capacities %.1fMB–%.0fMB\n",
		minRatio, maxRatio, minCap, maxCap)
	out += "observation 2: performance shows diminishing marginal benefit of capacity (see CSV series)\n"

	s := report.Series{Name: "fig2-perf-vs-capacity", XLabel: "on-chip MB", YLabel: "TFLOPS"}
	for _, e := range NPUSurvey() {
		s.Add(e.OnChipMB, e.TFLOPS)
	}
	return out + s.CSV()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
