package experiments

import (
	"strings"
	"testing"

	"cocco/internal/models"
)

// tinyCfg keeps the unit tests fast; the benchmarks and CLI exercise the
// larger budgets.
func tinyCfg() Config {
	return Config{
		Seed:              1,
		PartitionSamples:  1_200,
		CoOptSamples:      1_000,
		FinalSamples:      600,
		TwoStepCandidates: 3,
		Population:        30,
	}
}

func TestFigure2Survey(t *testing.T) {
	entries := NPUSurvey()
	if len(entries) != 16 {
		t.Fatalf("survey entries = %d, want 16", len(entries))
	}
	out := Figure2()
	for _, chip := range []string{"Hanguang", "IPUv1", "Dojo", "TPUv4i"} {
		if !strings.Contains(out, chip) {
			t.Errorf("survey missing %s", chip)
		}
	}
	// The paper's headline range: 4%–79% area, 2.5–896 MB.
	if !strings.Contains(out, "4.0%–78.8%") {
		t.Errorf("area-ratio summary missing:\n%s", out)
	}
}

func TestFigure3Shapes(t *testing.T) {
	rows, text := Figure3()
	if len(rows) != 12 { // 4 models × 3 depths
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(text, "resnet50") {
		t.Error("table missing models")
	}
	// EMA and BW must fall monotonically with fusion depth for every model.
	byModel := map[string][]Fig3Row{}
	for _, r := range rows {
		byModel[r.Model] = append(byModel[r.Model], r)
	}
	for m, rs := range byModel {
		for i := 1; i < len(rs); i++ {
			if rs[i].EMAMB >= rs[i-1].EMAMB {
				t.Errorf("%s: EMA not decreasing at L=%d (%.2f -> %.2f)",
					m, rs[i].L, rs[i-1].EMAMB, rs[i].EMAMB)
			}
			if rs[i].AvgBWGB > rs[i-1].AvgBWGB {
				t.Errorf("%s: BW increased at L=%d", m, rs[i].L)
			}
		}
		// The paper's headline: fusion cuts EMA substantially.
		last := rs[len(rs)-1]
		if last.EMAReductionPct > -15 {
			t.Errorf("%s: L=5 EMA reduction only %.1f%%", m, last.EMAReductionPct)
		}
	}
}

func TestFixedDepthPartitionValid(t *testing.T) {
	for _, m := range []string{"vgg16", "googlenet", "nasnet"} {
		g := models.MustBuild(m)
		for _, l := range []int{1, 2, 3, 5, 7} {
			p := FixedDepthPartition(g, l)
			if err := p.Validate(); err != nil {
				t.Errorf("%s L=%d: %v", m, l, err)
			}
		}
		if FixedDepthPartition(g, 0).NumSubgraphs() != len(g.ComputeNodes()) {
			t.Errorf("%s: L=0 should clamp to singletons", m)
		}
	}
}

func TestFigure11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	rows, text := Figure11(tinyCfg())
	if len(rows) != 8*4 {
		t.Fatalf("rows = %d, want 32", len(rows))
	}
	if !strings.Contains(text, "Cocco") || !strings.Contains(text, "Halide") {
		t.Error("table missing methods")
	}
	// Enumeration must be n/a exactly for the RandWire models.
	for _, r := range rows {
		if r.Method != "Enumeration" {
			continue
		}
		isRW := strings.HasPrefix(r.Model, "randwire")
		if isRW == r.Completed {
			t.Errorf("%s enumeration completed=%v", r.Model, r.Completed)
		}
		// Where it completes, nothing may be better than the optimum.
		if r.Completed && r.EMANorm > 1.0001 {
			// enumeration worse than greedy would be a bug
			t.Errorf("%s: enumeration norm %.3f > 1", r.Model, r.EMANorm)
		}
	}
}

func TestTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	rows, text := Table1(tinyCfg())
	if len(rows) != 4*len(CoOptMethods()) {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(text, "Cocco") {
		t.Error("missing method rows")
	}
	for _, r := range rows {
		if r.Cost <= 0 || r.EnergyPJ <= 0 {
			t.Errorf("%s/%s: non-positive results", r.Model, r.Method)
		}
		if r.Mem.GlobalBytes <= 0 {
			t.Errorf("%s/%s: missing mem config", r.Model, r.Method)
		}
	}
}

func TestTable2SharedKind(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	rows, _ := Table2(tinyCfg())
	for _, r := range rows {
		if r.Mem.WeightBytes != 0 {
			t.Errorf("%s/%s: shared design with weight buffer", r.Model, r.Method)
		}
	}
}

func TestFigure12Curves(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	res, text := Figure12(tinyCfg())
	if len(res.Curves) != 3*7 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		for i := 1; i < len(c.BestCost); i++ {
			if c.BestCost[i] > c.BestCost[i-1] {
				t.Errorf("%s/%s: best-so-far increased", c.Model, c.Method)
			}
		}
	}
	if !strings.Contains(text, "Cocco") {
		t.Error("missing table")
	}
	// Cocco reaches its own 1.05 threshold by definition.
	for m, methods := range res.SamplesTo105 {
		if methods["Cocco"] == 0 {
			t.Errorf("%s: Cocco never reached its own threshold", m)
		}
	}
}

func TestFigure13Groups(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	groups, text := Figure13(tinyCfg())
	if len(groups) != 4 {
		t.Fatalf("models = %d", len(groups))
	}
	for m, gs := range groups {
		if len(gs) == 0 {
			t.Errorf("%s: no groups", m)
			continue
		}
		// The distribution must move to a lower cost over the run
		// (Figure 13's message).
		if gs[len(gs)-1].MeanCost >= gs[0].MeanCost {
			t.Errorf("%s: mean cost did not improve (%.4g -> %.4g)",
				m, gs[0].MeanCost, gs[len(gs)-1].MeanCost)
		}
	}
	if !strings.Contains(text, "group") {
		t.Error("missing table")
	}
}

func TestFigure14Tradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	rows, _ := Figure14(tinyCfg())
	if len(rows) != 4*5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Across the α sweep, the largest α's energy must not exceed the
	// smallest α's (paper: higher α trades capacity for energy).
	byModel := map[string][]Fig14Row{}
	for _, r := range rows {
		byModel[r.Model] = append(byModel[r.Model], r)
	}
	for m, rs := range byModel {
		if rs[len(rs)-1].EnergyMJ > rs[0].EnergyMJ*1.05 {
			t.Errorf("%s: α=%g energy %.3f above α=%g energy %.3f",
				m, rs[len(rs)-1].Alpha, rs[len(rs)-1].EnergyMJ, rs[0].Alpha, rs[0].EnergyMJ)
		}
	}
}

func TestTable3Trends(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	rows, _ := Table3(tinyCfg())
	if len(rows) != 4*9 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(model string, cores, batch int) Table3Row {
		for _, r := range rows {
			if r.Model == model && r.Cores == cores && r.Batch == batch {
				return r
			}
		}
		t.Fatalf("row %s/%d/%d missing", model, cores, batch)
		return Table3Row{}
	}
	for _, m := range []string{"resnet50", "googlenet", "randwire-a", "nasnet"} {
		// More cores at fixed batch: lower latency.
		if get(m, 4, 1).LatencyMS >= get(m, 1, 1).LatencyMS {
			t.Errorf("%s: 4-core latency not below 1-core", m)
		}
		// Bigger batch at fixed cores: latency grows at most ~linearly
		// (compute-bound models sit at the linear edge; EMA-bound ones are
		// strictly sub-linear thanks to weight reuse). A small tolerance
		// absorbs the different partitions the per-run DSE picks.
		l1, l8 := get(m, 1, 1).LatencyMS, get(m, 1, 8).LatencyMS
		if l8 <= l1 || l8 > 8.5*l1 {
			t.Errorf("%s: batch-8 latency %.2f vs batch-1 %.2f out of (1, 8.5]× range", m, l8, l1)
		}
	}
}

func TestAblationTilingRatios(t *testing.T) {
	rows, _ := AblationTiling()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	var sum float64
	for _, r := range rows {
		// Δ/LCM alignment can locally exceed the one-shot nested window for
		// mixed-stride subgraphs, so individual rows may dip to ~parity;
		// the consumption-centric scheme must never lose meaningfully.
		if r.ProdOverConsRatio < 0.95 {
			t.Errorf("%s L=%d: production-centric ratio %.3f < 0.95", r.Model, r.L, r.ProdOverConsRatio)
		}
		sum += r.ProdOverConsRatio
	}
	if avg := sum / float64(len(rows)); avg <= 1.05 {
		t.Errorf("average ratio %.3f shows no saving", avg)
	}
}

func TestAblationGAVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	rows, _ := AblationGA(tinyCfg())
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	rate := map[string]map[string]float64{}
	for _, r := range rows {
		if rate[r.Model] == nil {
			rate[r.Model] = map[string]float64{}
		}
		rate[r.Model][r.Variant] = r.FeasibleRate
	}
	for m, v := range rate {
		if v["no-insitu-split"] >= v["full"] {
			t.Errorf("%s: repair did not raise the feasible-sample rate (%.3f vs %.3f)",
				m, v["full"], v["no-insitu-split"])
		}
		if v["full"] < 0.5 {
			t.Errorf("%s: full GA feasible rate only %.3f", m, v["full"])
		}
	}
}

func TestAblationIslandsRows(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	rows, _ := AblationIslands(tinyCfg())
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s islands=%d: search failed: %s", r.Model, r.Islands, r.Err)
			continue
		}
		if !r.MatchesPlainGA {
			t.Errorf("%s islands=%d: islands=1 determinism cross-check failed", r.Model, r.Islands)
		}
		if r.Islands > 1 && r.Migrations == 0 {
			t.Errorf("%s islands=%d: no migrations executed", r.Model, r.Islands)
		}
		if r.Cost <= 0 {
			t.Errorf("%s islands=%d: nonpositive cost %v", r.Model, r.Islands, r.Cost)
		}
	}
}

func TestAblationSeeding(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	rows, text := AblationSeeding(tinyCfg())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(text, "greedy-seeded") {
		t.Error("missing variant")
	}
	for _, r := range rows {
		if r.Cost <= 0 {
			t.Errorf("%s/%s: bad cost %g", r.Model, r.Init, r.Cost)
		}
	}
}

func TestAblationCacheEffective(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	rows, _ := AblationCache(tinyCfg())
	for _, r := range rows {
		if r.HitRate < 0.5 {
			t.Errorf("%s: cache hit rate only %.3f", r.Model, r.HitRate)
		}
	}
}

func TestMinEMABounds(t *testing.T) {
	out := MinEMABounds()
	if !strings.Contains(out, "resnet50") || !strings.Contains(out, "min EMA") {
		t.Errorf("bounds table malformed:\n%s", out)
	}
}
