package experiments

import (
	"fmt"
	"math"

	"cocco/internal/baselines"
	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/report"
)

// ConvergenceCurve is one method's best-so-far cost sampled along the
// search (Figure 12 a–c).
type ConvergenceCurve struct {
	Model, Method string
	Samples       []int
	BestCost      []float64
}

// Fig12Result bundles the curves and the samples-to-threshold table
// (Figure 12 d).
type Fig12Result struct {
	Curves []ConvergenceCurve
	// SamplesTo105 maps model → method → samples needed to reach 1.05× of
	// Cocco's final cost (0 if never reached within the budget).
	SamplesTo105 map[string]map[string]int
}

// Figure12 runs the sample-efficiency study: the two-step schemes
// (Buf(S/M/L)+GA, RS+GA, GS+GA) and the co-optimizers (SA, Cocco) on
// ResNet50, GoogleNet, and RandWire, recording cost-vs-samples curves and
// the samples needed to attain 1.05× of Cocco's final result.
func Figure12(cfg Config) (*Fig12Result, string) {
	modelsUnderTest := []string{"resnet50", "googlenet", "randwire-a"}
	obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: PaperAlpha}
	grange, wrange := hw.PaperGlobalRange(), hw.PaperWeightRange()
	stride := maxInt(cfg.CoOptSamples/100, 1)

	res := &Fig12Result{SamplesTo105: map[string]map[string]int{}}
	methods := []string{"Buf(S)+GA", "Buf(M)+GA", "Buf(L)+GA", "RS+GA", "GS+GA", "SA", "Cocco"}

	for _, m := range modelsUnderTest {
		ev := evaluatorFor(m, platform1())
		res.SamplesTo105[m] = map[string]int{}
		var coccoFinal float64

		for _, method := range methods {
			curve := ConvergenceCurve{Model: m, Method: method}
			best := math.Inf(1)
			trace := func(tp core.TracePoint) {
				// For fixed-HW and two-step runs the cost has been re-based
				// to Formula 2 with the run's capacity; infeasible samples
				// keep their sentinel and never improve `best`.
				if tp.Feasible && tp.Cost < best {
					best = tp.Cost
				}
				if tp.Sample%stride == 0 {
					curve.Samples = append(curve.Samples, tp.Sample)
					curve.BestCost = append(curve.BestCost, best)
				}
			}
			runConvergenceMethod(ev, cfg, obj, method, grange, wrange, trace)
			res.Curves = append(res.Curves, curve)
			if method == "Cocco" {
				coccoFinal = best
			}
		}

		// Samples to 1.05× of Cocco's final cost (Figure 12d).
		threshold := coccoFinal * 1.05
		for _, c := range res.Curves {
			if c.Model != m {
				continue
			}
			hit := 0
			for i, v := range c.BestCost {
				if v <= threshold {
					hit = c.Samples[i]
					break
				}
			}
			res.SamplesTo105[m][c.Method] = hit
		}
	}

	t := report.NewTable("Figure 12(d): samples to reach 1.05× of Cocco's final cost (0 = not reached)",
		append([]string{"model"}, methods...)...)
	for _, m := range modelsUnderTest {
		row := []any{m}
		for _, method := range methods {
			row = append(row, res.SamplesTo105[m][method])
		}
		t.AddRow(row...)
	}
	out := t.String()
	out += "convergence curves (CSV):\n"
	for _, c := range res.Curves {
		s := report.Series{Name: fmt.Sprintf("%s/%s", c.Model, c.Method),
			XLabel: "samples", YLabel: "best cost"}
		for i := range c.Samples {
			s.Add(float64(c.Samples[i]), c.BestCost[i])
		}
		out += s.CSV()
	}
	return res, out
}

// runConvergenceMethod executes one method with the trace hook attached.
// Fixed-HW variants run a partition-only GA under the named capacity; the
// trace cost for those is re-based to Formula 2 with that capacity.
func runConvergenceMethod(ev *eval.Evaluator, cfg Config, obj eval.Objective, method string,
	grange, wrange hw.MemRange, trace func(core.TracePoint)) {

	fixedTrace := func(mem hw.MemConfig) func(core.TracePoint) {
		return func(tp core.TracePoint) {
			if tp.Feasible {
				tp.Cost = float64(mem.TotalBytes()) + obj.Alpha*tp.Metric
			}
			trace(tp)
		}
	}
	fixedRun := func(gKB, wKB int64) {
		mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: gKB * hw.KiB, WeightBytes: wKB * hw.KiB}
		_, _, _ = core.Run(ev, core.Options{
			Seed: cfg.Seed, Workers: cfg.Workers, Population: cfg.Population, MaxSamples: cfg.CoOptSamples,
			Objective: eval.Objective{Metric: obj.Metric},
			Mem:       core.MemSearch{Fixed: mem},
			Trace:     fixedTrace(mem),
		})
	}

	switch method {
	case "Buf(S)+GA":
		fixedRun(512, 576)
	case "Buf(M)+GA":
		fixedRun(1024, 1152)
	case "Buf(L)+GA":
		fixedRun(2048, 2304)
	case "RS+GA", "GS+GA":
		sm := baselines.RandomSearch
		if method == "GS+GA" {
			sm = baselines.GridSearch
		}
		_, _ = baselines.TwoStep(ev, baselines.TwoStepOptions{
			Seed: cfg.Seed, Workers: cfg.Workers, Method: sm,
			Candidates:          cfg.TwoStepCandidates,
			SamplesPerCandidate: cfg.CoOptSamples / maxInt(cfg.TwoStepCandidates, 1),
			Kind:                hw.SeparateBuffer, Global: grange, Weight: wrange,
			Objective: obj, Trace: trace,
		})
	case "SA":
		_, _ = baselines.SA(ev, baselines.SAOptions{
			Seed: cfg.Seed, Workers: cfg.Workers, MaxSamples: cfg.CoOptSamples, Objective: obj,
			Mem:   core.MemSearch{Search: true, Kind: hw.SeparateBuffer, Global: grange, Weight: wrange},
			Trace: trace,
		})
	case "Cocco":
		_, _, _ = core.Run(ev, core.Options{
			Seed: cfg.Seed, Workers: cfg.Workers, Population: cfg.Population, MaxSamples: cfg.CoOptSamples,
			Objective: obj,
			Mem:       core.MemSearch{Search: true, Kind: hw.SeparateBuffer, Global: grange, Weight: wrange},
			Trace:     trace,
		})
	}
}
