package experiments

import (
	"fmt"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/report"
)

// Table3Row is one (model, cores, batch) outcome of the multi-core / batch
// study.
type Table3Row struct {
	Model        string
	Cores, Batch int
	EnergyMJ     float64
	LatencyMS    float64
	// SharedKB is the chosen shared buffer size per core.
	SharedKB int64
}

// Table3 reproduces the multi-core and batch-size evaluation (Table 3):
// energy, latency, and the co-explored shared buffer size per core for
// cores ∈ {1,2,4} × batch ∈ {1,2,8} on the four models, using the
// energy-capacity co-optimization. Weights of a subgraph are shared across
// cores over the crossbar (§5.4.2); batch samples reuse resident weights
// (§5.4.3).
func Table3(cfg Config) ([]Table3Row, string) {
	modelsUnderTest := []string{"resnet50", "googlenet", "randwire-a", "nasnet"}
	obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: PaperAlpha}

	var rows []Table3Row
	t := report.NewTable("Table 3: multi-core and batch study (shared buffer, energy-capacity co-opt)",
		"model", "cores", "batch", "energy(mJ)", "latency(ms)", "size(KB)")
	for _, m := range modelsUnderTest {
		for _, cores := range []int{1, 2, 4} {
			for _, batch := range []int{1, 2, 8} {
				pl := platform1()
				pl.Cores = cores
				pl.Batch = batch
				ev := evaluatorFor(m, pl)
				best, _, err := core.Run(ev, core.Options{
					Seed:       cfg.Seed,
					Workers:    cfg.Workers,
					Population: cfg.Population,
					MaxSamples: cfg.CoOptSamples,
					Objective:  obj,
					Mem: core.MemSearch{Search: true, Kind: hw.SharedBuffer,
						Global: hw.PaperSharedRange()},
				})
				if err != nil {
					panic(fmt.Sprintf("table3: %s c=%d b=%d: %v", m, cores, batch, err))
				}
				row := Table3Row{
					Model: m, Cores: cores, Batch: batch,
					EnergyMJ:  best.Res.EnergyPJ / 1e9,
					LatencyMS: ev.LatencySeconds(best.Res.LatencyCycles) * 1e3,
					SharedKB:  best.Mem.GlobalBytes / hw.KiB,
				}
				rows = append(rows, row)
				t.AddRow(m, cores, batch, fmt.Sprintf("%.2f", row.EnergyMJ),
					fmt.Sprintf("%.2f", row.LatencyMS), row.SharedKB)
			}
		}
	}
	return rows, t.String()
}
