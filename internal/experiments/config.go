// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Figure 2 (NPU survey), Figure 3 (fusion-depth study),
// Figure 11 (graph-partition comparison), Tables 1–2 (hardware-mapping
// co-exploration with separate and shared buffers), Figure 12 (sample
// efficiency), Figure 13 (sample-point distribution), Figure 14 (α sweep),
// Table 3 (multi-core and batch study), plus the ablations DESIGN.md calls
// out. Each experiment prints the same rows or series the paper reports.
package experiments

import (
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/tiling"
)

// Config scales the search budgets. The paper's full budgets (400k samples
// for partition-only, 50k for co-exploration) are available via Paper(); the
// default trims them so the whole suite runs in minutes with the same
// qualitative outcome, and Quick() shrinks them further for benchmarks.
type Config struct {
	// Seed drives every stochastic component.
	Seed int64
	// Workers is the number of goroutines each search uses to score genomes
	// (0 = runtime.NumCPU()). Results are identical for every worker count;
	// only wall-clock time changes. The SA baseline is the exception: its
	// parallelism is at restart granularity and the paper's method is one
	// chain, so SA experiment rows stay serial regardless of Workers.
	Workers int
	// PartitionSamples is the Cocco budget for partition-only searches
	// (Figure 11; paper: 400,000).
	PartitionSamples int
	// CoOptSamples is the per-method budget for co-exploration
	// (Tables 1–3, Figures 12–14; paper: 50,000).
	CoOptSamples int
	// FinalSamples is the budget of the final partition-only pass run at
	// the chosen memory configuration (§5.3.1).
	FinalSamples int
	// TwoStepCandidates is the number of capacity candidates RS/GS sample;
	// each candidate gets CoOptSamples/TwoStepCandidates GA samples
	// (paper: 5,000 per candidate).
	TwoStepCandidates int
	// Population is the GA population size.
	Population int
}

// Default returns budgets that finish the full suite in minutes.
func Default() Config {
	return Config{
		Seed:              42,
		PartitionSamples:  60_000,
		CoOptSamples:      30_000,
		FinalSamples:      15_000,
		TwoStepCandidates: 10,
		Population:        100,
	}
}

// Paper returns the paper's full budgets.
func Paper() Config {
	c := Default()
	c.PartitionSamples = 400_000
	c.CoOptSamples = 50_000
	c.FinalSamples = 50_000
	return c
}

// Quick returns heavily reduced budgets for unit tests and benchmarks.
func Quick() Config {
	return Config{
		Seed:              42,
		PartitionSamples:  4_000,
		CoOptSamples:      3_000,
		FinalSamples:      1_500,
		TwoStepCandidates: 5,
		Population:        50,
	}
}

// evaluatorFor builds the standard single-core evaluator for a model.
func evaluatorFor(model string, platform hw.Platform) *eval.Evaluator {
	g := models.MustBuild(model)
	return eval.MustNew(g, platform, tiling.DefaultConfig())
}

// platform1 is the single-core, batch-1 paper platform.
func platform1() hw.Platform { return hw.DefaultPlatform() }

// paperFixedMem returns the paper's fixed platform for the partition
// studies: 1 MB global buffer and 1.125 MB weight buffer (§5.2, Figure 3).
func paperFixedMem() hw.MemConfig {
	return hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
}
