package experiments

import (
	"strings"
	"testing"
)

func TestFigure1SweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	pts, text := Figure1Sweep(tinyCfg(), "resnet50")
	if len(pts) != 7 {
		t.Fatalf("points = %d", len(pts))
	}
	// EMA must be non-increasing in capacity (more buffer never hurts; the
	// search is stochastic, so allow 2% noise) and the largest capacity must
	// be substantially below the smallest (the Figure 1 trade-off).
	for i := 1; i < len(pts); i++ {
		if pts[i].EMAMB > pts[i-1].EMAMB*1.02 {
			t.Errorf("EMA rose with capacity: %.2f @%dKB -> %.2f @%dKB",
				pts[i-1].EMAMB, pts[i-1].CapacityKB, pts[i].EMAMB, pts[i].CapacityKB)
		}
	}
	if pts[len(pts)-1].EMAMB > 0.8*pts[0].EMAMB {
		t.Errorf("no meaningful EMA reduction across the sweep: %.2f -> %.2f",
			pts[0].EMAMB, pts[len(pts)-1].EMAMB)
	}
	if !strings.Contains(text, "fig1-resnet50") {
		t.Error("missing CSV series")
	}
}

func TestAblationPrefetchTightens(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	rows, _ := AblationPrefetch(tinyCfg())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byModel := map[string]map[bool]AblationPrefetchRow{}
	for _, r := range rows {
		if byModel[r.Model] == nil {
			byModel[r.Model] = map[bool]AblationPrefetchRow{}
		}
		byModel[r.Model][r.Prefetch] = r
	}
	for m, v := range byModel {
		// The prefetch constraint only shrinks the feasible space, so the
		// optimized cost cannot improve (small tolerance for search noise).
		if v[true].CostFormula2 < v[false].CostFormula2*0.98 {
			t.Errorf("%s: prefetch constraint improved cost %.4g -> %.4g",
				m, v[false].CostFormula2, v[true].CostFormula2)
		}
	}
}
