package experiments

import (
	"fmt"

	"cocco/internal/graph"
	"cocco/internal/hw"
	"cocco/internal/partition"
	"cocco/internal/report"
)

// Fig3Row is one (model, L) measurement of the fusion-depth study.
type Fig3Row struct {
	Model   string
	L       int
	EMAMB   float64
	AvgBWGB float64
	// ReductionPct vs L=1 (negative numbers, as the paper annotates).
	EMAReductionPct float64
	BWReductionPct  float64
}

// Figure3 reproduces the motivation study (Figure 3): external memory access
// and average bandwidth requirement when fusing subgraphs of L=1, 3, 5
// consecutive layers on the 2 TOPS platform with 1 MB global and 1.125 MB
// weight buffers.
func Figure3() ([]Fig3Row, string) {
	memCfg := paperFixedMem()
	modelsUnderTest := []string{"resnet50", "googlenet", "randwire-a", "nasnet"}

	var rows []Fig3Row
	t := report.NewTable("Figure 3: subgraph fusion depth study (L = layers per subgraph)",
		"model", "L", "EMA(MB)", "avgBW(GB/s)", "ΔEMA vs L=1", "ΔBW vs L=1")
	for _, m := range modelsUnderTest {
		ev := evaluatorFor(m, hw.DefaultPlatform())
		var base Fig3Row
		for _, l := range []int{1, 3, 5} {
			p := FixedDepthPartition(ev.Graph(), l)
			res := ev.Partition(p, memCfg)
			row := Fig3Row{
				Model:   m,
				L:       l,
				EMAMB:   float64(res.EMABytes) / 1e6,
				AvgBWGB: res.AvgBWBytesPerSec / 1e9,
			}
			if l == 1 {
				base = row
			} else {
				row.EMAReductionPct = 100 * (row.EMAMB - base.EMAMB) / base.EMAMB
				row.BWReductionPct = 100 * (row.AvgBWGB - base.AvgBWGB) / base.AvgBWGB
			}
			rows = append(rows, row)
			t.AddRow(m, l, fmt.Sprintf("%.2f", row.EMAMB), fmt.Sprintf("%.2f", row.AvgBWGB),
				fmt.Sprintf("%+.1f%%", row.EMAReductionPct), fmt.Sprintf("%+.1f%%", row.BWReductionPct))
		}
	}
	return rows, t.String()
}

// FixedDepthPartition chunks the compute nodes, in topological order, into
// runs of L consecutive layers (the paper's L=1,3,5 fusion configurations),
// splitting any disconnected chunk into its components.
func FixedDepthPartition(g *graph.Graph, l int) *partition.Partition {
	if l < 1 {
		l = 1
	}
	assign := make([]int, g.Len())
	for i := range assign {
		assign[i] = partition.Unassigned
	}
	for i, id := range g.ComputeNodes() {
		assign[id] = i / l
	}
	p, err := partition.FromRepaired(g, assign)
	if err != nil {
		// Consecutive topological runs always schedule; safety net only.
		return partition.Singletons(g)
	}
	return p
}
