package experiments

import (
	"fmt"
	"math"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/report"
)

// Fig13Group summarizes one group of consecutive samples during a Cocco
// co-exploration: where the population's (total buffer size, energy) points
// sit (Figure 13 plots the raw scatter; we report per-group centroids, which
// carry the figure's message — the distribution moves to a lower intercept
// and centralizes).
type Fig13Group struct {
	Group          int
	Samples        int
	MeanBufferMB   float64
	MeanEnergyMJ   float64
	MeanCost       float64
	StdDevBufferMB float64
}

// Figure13 runs Cocco with the paper's 20-generation × 500-genome setting
// (scaled by cfg) on the four co-exploration models and reports the
// sample-distribution trajectory in ten groups.
func Figure13(cfg Config) (map[string][]Fig13Group, string) {
	modelsUnderTest := []string{"resnet50", "googlenet", "randwire-a", "nasnet"}
	obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: PaperAlpha}
	const groups = 10

	out := map[string][]Fig13Group{}
	var text string
	for _, m := range modelsUnderTest {
		ev := evaluatorFor(m, platform1())
		type pt struct {
			buf    float64
			energy float64
			cost   float64
		}
		var pts []pt
		_, _, err := core.Run(ev, core.Options{
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
			Population: cfg.Population,
			MaxSamples: cfg.CoOptSamples,
			Objective:  obj,
			Mem: core.MemSearch{Search: true, Kind: hw.SeparateBuffer,
				Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()},
			Trace: func(tp core.TracePoint) {
				if !tp.Feasible {
					return
				}
				pts = append(pts, pt{
					buf:    float64(tp.Mem.TotalBytes()) / (1 << 20),
					energy: tp.Metric / 1e9,
					cost:   tp.Cost,
				})
			},
		})
		if err != nil {
			panic(fmt.Sprintf("figure13: %s: %v", m, err))
		}

		per := maxInt(len(pts)/groups, 1)
		t := report.NewTable(fmt.Sprintf("Figure 13 (%s): sample distribution per group (α=%g)", m, PaperAlpha),
			"group", "samples", "mean buf(MB)", "σ buf(MB)", "mean energy(mJ)", "mean cost")
		var gs []Fig13Group
		for gi := 0; gi < groups; gi++ {
			lo, hi := gi*per, (gi+1)*per
			if gi == groups-1 {
				hi = len(pts)
			}
			if lo >= hi {
				break
			}
			var sumB, sumB2, sumE, sumC float64
			for _, p := range pts[lo:hi] {
				sumB += p.buf
				sumB2 += p.buf * p.buf
				sumE += p.energy
				sumC += p.cost
			}
			n := float64(hi - lo)
			gr := Fig13Group{
				Group:        gi,
				Samples:      hi - lo,
				MeanBufferMB: sumB / n,
				MeanEnergyMJ: sumE / n,
				MeanCost:     sumC / n,
			}
			varB := sumB2/n - gr.MeanBufferMB*gr.MeanBufferMB
			if varB > 0 {
				gr.StdDevBufferMB = math.Sqrt(varB)
			}
			gs = append(gs, gr)
			t.AddRow(gi, gr.Samples, fmt.Sprintf("%.3f", gr.MeanBufferMB),
				fmt.Sprintf("%.3f", gr.StdDevBufferMB),
				fmt.Sprintf("%.3f", gr.MeanEnergyMJ), fmt.Sprintf("%.4g", gr.MeanCost))
		}
		out[m] = gs
		text += t.String()
	}
	return out, text
}
