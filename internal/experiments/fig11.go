package experiments

import (
	"errors"
	"fmt"

	"cocco/internal/baselines"
	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/report"
)

// Fig11Row is one (model, method) partition result.
type Fig11Row struct {
	Model, Method string
	EMAMB         float64
	BWGB          float64
	// Normalized to the Halide (greedy) baseline, as the paper plots.
	EMANorm, BWNorm float64
	Subgraphs       int
	Completed       bool
}

// Figure11 reproduces the graph-partition comparison (Figure 11, EMA-opt
// configuration): Halide's greedy, Irregular-NN's DP, Cocco, and the
// enumeration-based reference across the eight models, reporting EMA and
// bandwidth normalized to Halide. The enumeration reports "n/a" where its
// budget is exceeded (the paper's large irregular models).
func Figure11(cfg Config) ([]Fig11Row, string) {
	mem := paperFixedMem()
	obj := eval.Objective{Metric: eval.MetricEMA}
	modelList := []string{"vgg16", "resnet50", "resnet152", "googlenet",
		"transformer", "gpt", "randwire-a", "randwire-b"}

	var rows []Fig11Row
	t := report.NewTable("Figure 11: graph partition, EMA-opt (normalized to Halide greedy)",
		"model", "method", "EMA(MB)", "BW(GB/s)", "EMA-norm", "BW-norm", "subgraphs")

	for _, m := range modelList {
		ev := evaluatorFor(m, platform1())

		gp, _ := baselines.Greedy(ev, mem, obj.Metric)
		gres := ev.Partition(gp, mem)
		base := Fig11Row{Model: m, Method: "Halide(Greedy)",
			EMAMB: float64(gres.EMABytes) / 1e6, BWGB: gres.AvgBWBytesPerSec / 1e9,
			EMANorm: 1, BWNorm: 1, Subgraphs: gp.NumSubgraphs(), Completed: true}

		dp, _ := baselines.DP(ev, mem, obj.Metric)
		dres := ev.Partition(dp, mem)

		best, _, err := core.Run(ev, core.Options{
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
			Population: cfg.Population,
			MaxSamples: cfg.PartitionSamples,
			Objective:  obj,
			Mem:        core.MemSearch{Fixed: mem},
		})
		if err != nil {
			panic(fmt.Sprintf("figure11: cocco failed on %s: %v", m, err))
		}

		ep, _, eerr := baselines.Enumerate(ev, mem, obj.Metric, baselines.DefaultEnumOptions())

		add := func(method string, emaMB, bwGB float64, subs int, ok bool) {
			r := Fig11Row{Model: m, Method: method, EMAMB: emaMB, BWGB: bwGB,
				Subgraphs: subs, Completed: ok}
			if ok {
				r.EMANorm = emaMB / base.EMAMB
				r.BWNorm = bwGB / base.BWGB
			}
			rows = append(rows, r)
			if ok {
				t.AddRow(m, method, fmt.Sprintf("%.2f", emaMB), fmt.Sprintf("%.2f", bwGB),
					fmt.Sprintf("%.3f", r.EMANorm), fmt.Sprintf("%.3f", r.BWNorm), subs)
			} else {
				t.AddRow(m, method, "n/a", "n/a", "n/a", "n/a", "-")
			}
		}
		rows = append(rows, base)
		t.AddRow(m, base.Method, fmt.Sprintf("%.2f", base.EMAMB), fmt.Sprintf("%.2f", base.BWGB),
			"1.000", "1.000", base.Subgraphs)
		add("Irregular-NN(DP)", float64(dres.EMABytes)/1e6, dres.AvgBWBytesPerSec/1e9, dp.NumSubgraphs(), true)
		add("Cocco", float64(best.Res.EMABytes)/1e6, best.Res.AvgBWBytesPerSec/1e9, best.P.NumSubgraphs(), true)
		if eerr != nil {
			if !errors.Is(eerr, baselines.ErrBudget) {
				panic(fmt.Sprintf("figure11: enumeration failed on %s: %v", m, eerr))
			}
			add("Enumeration", 0, 0, 0, false)
		} else {
			eres := ev.Partition(ep, mem)
			add("Enumeration", float64(eres.EMABytes)/1e6, eres.AvgBWBytesPerSec/1e9, ep.NumSubgraphs(), true)
		}
	}
	return rows, t.String()
}
