package experiments

import (
	"fmt"

	"cocco/internal/baselines"
	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/partition"
	"cocco/internal/report"
)

// PaperAlpha is the preference hyper-parameter of the co-exploration studies
// (§5.3: α = 0.002, energy in pJ, capacity in bytes).
const PaperAlpha = 0.002

// CoOptRow is one (model, method) co-exploration outcome.
type CoOptRow struct {
	Model, Method  string
	Mem            hw.MemConfig
	Cost           float64 // Formula 2: bytes + α·pJ
	EnergyPJ       float64
	FinalPartition *partition.Partition
}

// CoOptMethods lists the method names in the tables' order.
func CoOptMethods() []string {
	return []string{"Buf(S)", "Buf(M)", "Buf(L)", "RS+GA", "GS+GA", "SA", "Cocco"}
}

// Table1 reproduces the separate-buffer co-exploration (Table 1): fixed
// Small/Medium/Large buffers, the two-step RS+GA and GS+GA schemes, SA, and
// Cocco on ResNet50, GoogleNet, RandWire, and NasNet with the
// energy-capacity objective.
func Table1(cfg Config) ([]CoOptRow, string) {
	return coOptStudy(cfg, hw.SeparateBuffer,
		"Table 1: hardware-mapping co-exploration, separate buffers (cost = bytes + α·pJ, α=0.002)")
}

// Table2 reproduces the shared-buffer co-exploration (Table 2).
func Table2(cfg Config) ([]CoOptRow, string) {
	return coOptStudy(cfg, hw.SharedBuffer,
		"Table 2: hardware-mapping co-exploration, shared buffer (cost = bytes + α·pJ, α=0.002)")
}

func coOptStudy(cfg Config, kind hw.BufferKind, title string) ([]CoOptRow, string) {
	modelsUnderTest := []string{"resnet50", "googlenet", "randwire-a", "nasnet"}
	obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: PaperAlpha}

	var rows []CoOptRow
	t := report.NewTable(title, "model", "method", "size(A)", "size(W)", "cost", "energy")
	for _, m := range modelsUnderTest {
		ev := evaluatorFor(m, platform1())
		for _, method := range CoOptMethods() {
			mem, ok := exploreMem(ev, cfg, kind, obj, method)
			if !ok {
				t.AddRow(m, method, "n/a", "n/a", "n/a", "n/a")
				continue
			}
			cost, res, p := finalPartitionCost(ev, mem, obj, cfg)
			row := CoOptRow{Model: m, Method: method, Mem: mem, Cost: cost,
				EnergyPJ: res.EnergyPJ, FinalPartition: p}
			rows = append(rows, row)
			wcol := report.Bytes(mem.WeightBytes)
			if kind == hw.SharedBuffer {
				wcol = "-"
			}
			t.AddRow(m, method, report.Bytes(mem.GlobalBytes), wcol,
				fmt.Sprintf("%.3E", cost), report.MJ(res.EnergyPJ))
		}
	}
	return rows, t.String()
}

// exploreMem runs the method's hardware-exploration phase and returns the
// chosen memory configuration.
func exploreMem(ev *eval.Evaluator, cfg Config, kind hw.BufferKind, obj eval.Objective, method string) (hw.MemConfig, bool) {
	grange, wrange := hw.PaperGlobalRange(), hw.PaperWeightRange()
	if kind == hw.SharedBuffer {
		grange = hw.PaperSharedRange()
		wrange = hw.MemRange{}
	}
	fixed := func(gKB, wKB int64) hw.MemConfig {
		m := hw.MemConfig{Kind: kind, GlobalBytes: gKB * hw.KiB}
		if kind == hw.SeparateBuffer {
			m.WeightBytes = wKB * hw.KiB
		}
		return m
	}
	switch method {
	case "Buf(S)":
		if kind == hw.SharedBuffer {
			return fixed(576, 0), true
		}
		return fixed(512, 576), true
	case "Buf(M)":
		if kind == hw.SharedBuffer {
			return fixed(1152, 0), true
		}
		return fixed(1024, 1152), true
	case "Buf(L)":
		if kind == hw.SharedBuffer {
			return fixed(2304, 0), true
		}
		return fixed(2048, 2304), true
	case "RS+GA", "GS+GA":
		sm := baselines.RandomSearch
		if method == "GS+GA" {
			sm = baselines.GridSearch
		}
		best, err := baselines.TwoStep(ev, baselines.TwoStepOptions{
			Seed:                cfg.Seed,
			Workers:             cfg.Workers,
			Method:              sm,
			Candidates:          cfg.TwoStepCandidates,
			SamplesPerCandidate: cfg.CoOptSamples / maxInt(cfg.TwoStepCandidates, 1),
			Kind:                kind,
			Global:              grange,
			Weight:              wrange,
			Objective:           obj,
		})
		if err != nil {
			return hw.MemConfig{}, false
		}
		return best.Mem, true
	case "SA":
		best, err := baselines.SA(ev, baselines.SAOptions{
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
			MaxSamples: cfg.CoOptSamples,
			Objective:  obj,
			Mem:        core.MemSearch{Search: true, Kind: kind, Global: grange, Weight: wrange},
		})
		if err != nil {
			return hw.MemConfig{}, false
		}
		return best.Mem, true
	case "Cocco":
		best, _, err := core.Run(ev, core.Options{
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
			Population: cfg.Population,
			MaxSamples: cfg.CoOptSamples,
			Objective:  obj,
			Mem:        core.MemSearch{Search: true, Kind: kind, Global: grange, Weight: wrange},
		})
		if err != nil {
			return hw.MemConfig{}, false
		}
		return best.Mem, true
	default:
		return hw.MemConfig{}, false
	}
}

// finalPartitionCost runs the final partition-only Cocco pass at the chosen
// configuration (§5.3.1) and evaluates Formula 2.
func finalPartitionCost(ev *eval.Evaluator, mem hw.MemConfig, obj eval.Objective, cfg Config) (float64, *eval.Result, *partition.Partition) {
	best, _, err := core.Run(ev, core.Options{
		Seed:       cfg.Seed + 7,
		Workers:    cfg.Workers,
		Population: cfg.Population,
		MaxSamples: cfg.FinalSamples,
		Objective:  obj,
		Mem:        core.MemSearch{Fixed: mem},
	})
	if err != nil {
		// Every configuration admits the all-singleton partition, so this
		// is unreachable in practice.
		p := partition.Singletons(ev.Graph())
		cost, res := ev.Cost(p, mem, obj)
		return cost, res, p
	}
	cost, res := ev.Cost(best.P, mem, obj)
	return cost, res, best.P
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
