package experiments

import (
	"fmt"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/report"
)

// Fig14Row is one (model, α) co-exploration outcome.
type Fig14Row struct {
	Model            string
	Alpha            float64
	CapacityMB       float64
	EnergyMJ         float64
	NormalizedEnergy float64 // vs the smallest α for the same model
}

// Figure14 sweeps the preference hyper-parameter α over
// {5e-4, 1e-3, 2e-3, 5e-3, 1e-2} on the four co-exploration models: larger
// α trades memory capacity for lower energy (§5.4.1).
func Figure14(cfg Config) ([]Fig14Row, string) {
	modelsUnderTest := []string{"resnet50", "googlenet", "randwire-a", "nasnet"}
	alphas := []float64{5e-4, 1e-3, 2e-3, 5e-3, 1e-2}

	var rows []Fig14Row
	t := report.NewTable("Figure 14: α sweep (energy normalized to α=5e-4 per model)",
		"model", "alpha", "capacity(MB)", "energy(mJ)", "norm energy")
	for _, m := range modelsUnderTest {
		ev := evaluatorFor(m, platform1())
		var baseEnergy float64
		for i, a := range alphas {
			obj := eval.Objective{Metric: eval.MetricEnergy, Alpha: a}
			best, _, err := core.Run(ev, core.Options{
				Seed:       cfg.Seed,
				Workers:    cfg.Workers,
				Population: cfg.Population,
				MaxSamples: cfg.CoOptSamples,
				Objective:  obj,
				Mem: core.MemSearch{Search: true, Kind: hw.SeparateBuffer,
					Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()},
			})
			if err != nil {
				panic(fmt.Sprintf("figure14: %s α=%g: %v", m, a, err))
			}
			row := Fig14Row{
				Model:      m,
				Alpha:      a,
				CapacityMB: float64(best.Mem.TotalBytes()) / (1 << 20),
				EnergyMJ:   best.Res.EnergyPJ / 1e9,
			}
			if i == 0 {
				baseEnergy = row.EnergyMJ
			}
			row.NormalizedEnergy = row.EnergyMJ / baseEnergy
			rows = append(rows, row)
			t.AddRow(m, fmt.Sprintf("%g", a), fmt.Sprintf("%.3f", row.CapacityMB),
				fmt.Sprintf("%.3f", row.EnergyMJ), fmt.Sprintf("%.3f", row.NormalizedEnergy))
		}
	}
	return rows, t.String()
}
