package membuf

import (
	"testing"

	"cocco/internal/graph"
	"cocco/internal/tiling"
)

func scheme(t *testing.T) (*graph.Graph, *tiling.Scheme, []int) {
	t.Helper()
	b := graph.NewBuilder("m")
	in := b.Input("in", 8, 64, 64)
	c1 := b.Conv("c1", in, 8, 3, 1)
	c2 := b.Conv("c2", c1, 8, 3, 2)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	s, err := tiling.Derive(g, []int{c1, c2}, tiling.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g, s, []int{in, c1, c2}
}

func TestAllocateLayout(t *testing.T) {
	g, s, _ := scheme(t)
	tab, err := Allocate(g, s, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Used != s.TotalFootprintBytes(g) {
		t.Errorf("Used = %d, want %d", tab.Used, s.TotalFootprintBytes(g))
	}
	// Regions are contiguous, non-overlapping, and in order.
	var off int64
	for _, r := range tab.Regions {
		if r.Start != off {
			t.Errorf("region %v starts at %d, expected %d", r, r.Start, off)
		}
		if r.Size() <= 0 {
			t.Errorf("empty region %v", r)
		}
		off = r.End
	}
	if off != tab.Used {
		t.Errorf("final offset %d != used %d", off, tab.Used)
	}
	if tab.NumEntries() != 2*len(tab.Regions) {
		t.Error("register-file entries")
	}
}

func TestAllocateOverflow(t *testing.T) {
	g, s, _ := scheme(t)
	if _, err := Allocate(g, s, 16); err == nil {
		t.Error("allocation into 16 bytes should fail")
	}
}

func TestSplitFootprintMatchesScheme(t *testing.T) {
	g, s, ids := scheme(t)
	for _, id := range ids {
		main, side := SplitFootprint(g, s, id)
		if main+side != s.FootprintBytes(g, id) {
			t.Errorf("node %d: main %d + side %d != footprint %d",
				id, main, side, s.FootprintBytes(g, id))
		}
		if main < 0 || side < 0 {
			t.Errorf("node %d: negative region", id)
		}
	}
}

func TestRegisterFileBytes(t *testing.T) {
	// Paper test chip: N=64 regions, 17-bit addresses → 272 bytes.
	if got := RegisterFileBytes(64, 17); got != 272 {
		t.Errorf("register file = %d bytes, want 272", got)
	}
}

func TestSweepTraffic(t *testing.T) {
	g, s, ids := scheme(t)
	in, c1 := ids[0], ids[1]

	trIn := SweepTraffic(g, s, in)
	n := g.Node(in)
	full := int64(n.OutH) * int64(n.OutW) * int64(n.OutC)
	// Full reuse: each external byte loaded exactly once.
	if trIn.DRAMLoad != full {
		t.Errorf("DRAM load = %d, want %d", trIn.DRAMLoad, full)
	}
	if trIn.Updated != full {
		t.Errorf("updated = %d, want %d", trIn.Updated, full)
	}
	// Kernel 3 > stride: both reuse paths must be exercised.
	if trIn.LocalReuse <= 0 {
		t.Error("no local (MAIN) reuse for overlapping windows")
	}
	if trIn.SideWrite <= 0 || trIn.SideWrite != trIn.SideRead {
		t.Errorf("side traffic: write %d read %d", trIn.SideWrite, trIn.SideRead)
	}

	// Intermediate node: no DRAM loads.
	trC1 := SweepTraffic(g, s, c1)
	if trC1.DRAMLoad != 0 {
		t.Errorf("intermediate loaded %d from DRAM", trC1.DRAMLoad)
	}
}

func TestRegionKindString(t *testing.T) {
	if Main.String() != "MAIN" || Side.String() != "SIDE" {
		t.Error("kind strings")
	}
}
