// Package membuf models the paper's memory management scheme for subgraph
// execution (§3.2): the global buffer is logically partitioned into MAIN and
// SIDE regions per node by a buffer region manager (a 2N-depth register file
// holding [head, end) addresses), and sliding convolution tiles achieve full
// data reuse — vertical overlap is retained locally in the MAIN region while
// horizontal overlap is written to and later re-read from the SIDE region
// (paths ② and ① of Figure 7).
package membuf

import (
	"fmt"
	"sort"

	"cocco/internal/graph"
	"cocco/internal/tiling"
)

// RegionKind distinguishes the two region types.
type RegionKind int

const (
	// Main regions hold the PE source/result tiles (P0×Q0×C).
	Main RegionKind = iota
	// Side regions reserve horizontally overlapping rows for the next row
	// loop (kernel size > stride).
	Side
)

func (k RegionKind) String() string {
	if k == Side {
		return "SIDE"
	}
	return "MAIN"
}

// Region is one logical block inside the global buffer.
type Region struct {
	Node  int
	Kind  RegionKind
	Start int64 // inclusive byte offset
	End   int64 // exclusive byte offset
}

// Size returns the region length in bytes.
func (r Region) Size() int64 { return r.End - r.Start }

// Table is a concrete allocation of a subgraph's regions in a buffer of the
// given capacity, produced by Allocate.
type Table struct {
	Capacity int64
	Regions  []Region
	Used     int64
}

// Allocate lays out MAIN and SIDE regions for every node of the scheme
// sequentially (the region manager stores contiguous [head, end) pairs).
// Returns an error if the subgraph does not fit in capacityBytes.
func Allocate(g *graph.Graph, s *tiling.Scheme, capacityBytes int64) (*Table, error) {
	ids := make([]int, 0, len(s.Nodes))
	for id := range s.Nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	t := &Table{Capacity: capacityBytes}
	var off int64
	for _, id := range ids {
		main, side := SplitFootprint(g, s, id)
		if main > 0 {
			t.Regions = append(t.Regions, Region{Node: id, Kind: Main, Start: off, End: off + main})
			off += main
		}
		if side > 0 {
			t.Regions = append(t.Regions, Region{Node: id, Kind: Side, Start: off, End: off + side})
			off += side
		}
	}
	t.Used = off
	if off > capacityBytes {
		return nil, fmt.Errorf("membuf: subgraph needs %d bytes, capacity %d", off, capacityBytes)
	}
	return t, nil
}

// SplitFootprint returns the MAIN and SIDE byte requirements of node id
// under the scheme, consistent with tiling.Scheme.FootprintBytes
// (main + side equals that total).
func SplitFootprint(g *graph.Graph, s *tiling.Scheme, id int) (main, side int64) {
	total := s.FootprintBytes(g, id)
	n := g.Node(id)
	ns := s.Nodes[id]
	h := minI64(ns.TileH, int64(n.OutH))
	w := minI64(ns.TileW, int64(n.OutW))
	main = h * w * int64(n.OutC)
	if main > total {
		main = total
	}
	side = total - main
	return main, side
}

// NumEntries returns the number of register-file entries the region manager
// needs for this table (one head + one end per region).
func (t *Table) NumEntries() int { return 2 * len(t.Regions) }

// RegisterFileBytes returns the size of the region-manager register file for
// a design supporting maxRegions regions with the given address width. The
// paper's test chip uses N=64 and 17-bit addresses (1 MB, 64-bit words) for
// a 272-byte register file.
func RegisterFileBytes(maxRegions, addrBits int) int {
	bits := 2 * maxRegions * addrBits
	return (bits + 7) / 8
}

// Traffic is the byte movement of one node across a full feature-map sweep
// under the sliding-tile update scheme.
type Traffic struct {
	// DRAMLoad: bytes loaded from DRAM (external producers only; each
	// tensor byte exactly once — full reuse).
	DRAMLoad int64
	// LocalReuse: bytes retained in the MAIN region across column steps
	// (vertical overlap, "retain and locally reuse").
	LocalReuse int64
	// SideWrite: bytes written back to the SIDE region at the bottom of
	// each tile for the next row loop (path ②).
	SideWrite int64
	// SideRead: bytes re-loaded from the SIDE region at the top of each new
	// row loop (path ①).
	SideRead int64
	// Updated: bytes freshly materialized (computed or loaded) across the
	// sweep; equals the tensor size.
	Updated int64
}

// SweepTraffic simulates the full row/column sweep of node id and accounts
// its data movement. The column (width) dimension is the inner loop, rows
// the outer loop, matching Figure 7's NWHC layout.
func SweepTraffic(g *graph.Graph, s *tiling.Scheme, id int) Traffic {
	n := g.Node(id)
	ns := s.Nodes[id]
	H, W, C := int64(n.OutH), int64(n.OutW), int64(n.OutC)
	xh := minI64(ns.TileH, H)
	xw := minI64(ns.TileW, W)
	dh := minI64(ns.DeltaH, xh)
	dw := minI64(ns.DeltaW, xw)

	rowSteps := steps(H, xh, dh)
	colSteps := steps(W, xw, dw)

	var tr Traffic
	tr.Updated = H * W * C
	if ns.External {
		tr.DRAMLoad = H * W * C
	}
	// Vertical overlap kept in MAIN per column step (all but the first
	// column step of each row loop).
	if colSteps > 1 && xw > dw {
		tr.LocalReuse = rowSteps * (colSteps - 1) * (xw - dw) * xh * C
	}
	// Horizontal overlap through SIDE per row step (all but the last row
	// loop writes; all but the first reads).
	if rowSteps > 1 && xh > dh && W > xw {
		overlap := (xh - dh) * (W - xw) * C
		tr.SideWrite = (rowSteps - 1) * overlap
		tr.SideRead = (rowSteps - 1) * overlap
	}
	return tr
}

// steps returns how many tile positions a sweep of extent `total` takes with
// tile size x and step d.
func steps(total, x, d int64) int64 {
	if x >= total {
		return 1
	}
	if d <= 0 {
		d = 1
	}
	return (total-x+d-1)/d + 1
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
