package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/partition"
)

// Stats summarizes a completed run.
type Stats struct {
	// Samples is the number of genome evaluations performed.
	Samples int
	// Generations is the number of completed generations.
	Generations int
	// FeasibleSamples counts genomes feasible after in-situ repair.
	FeasibleSamples int
	// MemoHits counts samples served from the genome memo (duplicate
	// candidates that skipped repair and evaluation entirely).
	MemoHits int
	// BestHistory records the best-so-far cost at the end of each
	// generation.
	BestHistory []float64
}

// Optimizer runs the Cocco genetic search over one evaluator.
type Optimizer struct {
	ev  *eval.Evaluator
	opt Options
	src *CountingSource
	rng *rand.Rand

	started bool
	pop     []*Genome
	best    *Genome
	samples int
	gen     int
	stats   Stats
	memo    *genomeMemo // nil when Options.DisableGenomeMemo

	// evaluateBatch scratch, reused across generations.
	batchHash []uint64
	batchDup  []int
}

// NewOptimizer validates options and prepares a run.
func NewOptimizer(ev *eval.Evaluator, opt Options) (*Optimizer, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	// The master RNG runs on a counting source so the optimizer state is
	// checkpointable as (seed, draws); the wrapped source draws the identical
	// stream rand.NewSource would.
	src := NewCountingSource(opt.Seed)
	o := &Optimizer{ev: ev, opt: opt, src: src, rng: rand.New(src)}
	if !opt.DisableGenomeMemo {
		o.memo = newGenomeMemo()
	}
	return o, nil
}

// Run executes the full search and returns the best feasible genome found.
func Run(ev *eval.Evaluator, opt Options) (*Genome, *Stats, error) {
	o, err := NewOptimizer(ev, opt)
	if err != nil {
		return nil, nil, err
	}
	return o.Run()
}

// Run executes the search.
func (o *Optimizer) Run() (*Genome, *Stats, error) {
	for o.Step() {
	}
	return o.Finish()
}

// Step advances the search by one unit — the first call builds and scores
// the initial population, every later call runs one full generation — and
// reports whether sample budget remains. Driving Step in a loop is exactly
// Run; the island orchestrator interleaves Steps with migration instead.
func (o *Optimizer) Step() bool {
	if !o.started {
		o.started = true
		o.pop = o.initialPopulation()
		return o.samples < o.opt.MaxSamples
	}
	if o.samples >= o.opt.MaxSamples {
		return false
	}
	o.gen++
	offspring := o.makeOffspring(o.pop)
	o.pop = o.selectNext(append(o.pop, offspring...))
	o.stats.BestHistory = append(o.stats.BestHistory, o.bestCost())
	o.stats.Generations = o.gen
	return o.samples < o.opt.MaxSamples
}

// Done reports whether the sample budget is exhausted.
func (o *Optimizer) Done() bool { return o.started && o.samples >= o.opt.MaxSamples }

// Finish closes out the run and returns the best feasible genome found.
func (o *Optimizer) Finish() (*Genome, *Stats, error) {
	o.stats.Samples = o.samples
	if o.best == nil {
		return nil, &o.stats, fmt.Errorf("core: no feasible genome found in %d samples", o.samples)
	}
	return o.best, &o.stats, nil
}

// Population exposes the current population, sorted ascending by cost as
// selectNext left it (nil before the first Step). The island orchestrator
// may replace entries between Steps — migration — but must never mutate a
// genome in place: committed genomes share partitions with the memo and the
// best snapshot.
func (o *Optimizer) Population() []*Genome { return o.pop }

// Best returns the best feasible genome committed so far (nil if none).
func (o *Optimizer) Best() *Genome { return o.best }

// SamplesUsed reports how many genome evaluations have been committed.
func (o *Optimizer) SamplesUsed() int { return o.samples }

// StatsSnapshot returns the statistics as Finish would report them at this
// point, without ending the run (BestHistory is copied).
func (o *Optimizer) StatsSnapshot() Stats {
	st := o.stats
	st.Samples = o.samples
	st.BestHistory = append([]float64(nil), o.stats.BestHistory...)
	return st
}

func (o *Optimizer) bestCost() float64 {
	if o.best == nil {
		return infeasibleCost
	}
	return o.best.Cost
}

// initialPopulation seeds from Options.Init (if any) and fills with random
// genomes (§4.4.1). Candidates are drawn serially from the master RNG and
// scored by the parallel evaluation engine.
func (o *Optimizer) initialPopulation() []*Genome {
	cands := make([]candidate, 0, o.opt.Population)
	for _, p := range o.opt.Init {
		if len(cands) >= o.opt.Population || o.samples+len(cands) >= o.opt.MaxSamples {
			break
		}
		cands = append(cands, candidate{p: p.Clone(), mem: randomMem(o.rng, o.opt.Mem)})
	}
	for len(cands) < o.opt.Population && o.samples+len(cands) < o.opt.MaxSamples {
		p := RandomPartition(o.ev.Graph(), o.rng, o.opt.PNewInit)
		cands = append(cands, candidate{p: p, mem: randomMem(o.rng, o.opt.Mem)})
	}
	return o.evaluateBatch(cands)
}

// makeOffspring produces one generation of offspring via crossover and the
// customized mutations. All RNG draws that shape the candidates happen
// serially here, on the master RNG; scoring is farmed out afterwards.
func (o *Optimizer) makeOffspring(pop []*Genome) []*Genome {
	cands := make([]candidate, 0, o.opt.Population)
	for len(cands) < o.opt.Population && o.samples+len(cands) < o.opt.MaxSamples {
		var child *Genome
		dad := pop[o.rng.Intn(len(pop))]
		if !o.opt.DisableCrossover && o.rng.Float64() < o.opt.CrossoverProb {
			mom := pop[o.rng.Intn(len(pop))]
			p := crossoverPartition(o.ev.Graph(), o.rng, dad.P, mom.P)
			child = &Genome{P: p, Mem: crossoverMem(o.opt.Mem, dad.Mem, mom.Mem)}
		} else {
			child = dad.Clone()
		}
		o.mutate(child)
		cands = append(cands, candidate{p: child.P, mem: child.Mem})
	}
	return o.evaluateBatch(cands)
}

// candidate is one genome awaiting evaluation.
type candidate struct {
	p   *partition.Partition
	mem hw.MemConfig
}

// ChildSeed derives an independent RNG seed from a run seed and a 1-based
// index (a sample for the GA, a restart chain for SA), via a
// splitmix64-style mix so nearby indices yield uncorrelated streams.
// Making per-unit randomness a pure function of (seed, index) is what keeps
// parallel runs bit-identical: the draws no longer depend on execution
// order.
func ChildSeed(seed int64, index int) int64 {
	return ChildSeedStream(seed, StreamSamples, index)
}

// Stream tags name the independent consumers of ChildSeedStream. Every
// consumer folds its tag into the derivation, so two consumers using the
// same (run seed, index) pair still draw from uncorrelated streams — GA
// sample repair and SA restart chains keep the historical untagged stream
// (StreamSamples is zero, so ChildSeedStream reduces to the original
// ChildSeed there), while island seeding and migration get their own.
const (
	// StreamSamples is the historical per-sample/per-chain stream (tag 0).
	StreamSamples uint64 = 0
	// StreamIslands seeds the per-island master RNGs of the orchestrator.
	StreamIslands uint64 = 1
	// StreamMigration drives migrant selection between islands.
	StreamMigration uint64 = 2
	// StreamScouts seeds the SA/greedy scout islands.
	StreamScouts uint64 = 3
)

// ChildSeedStream derives an independent RNG seed for one (stream, index)
// consumer of a run seed. The stream tag is folded in with its own odd
// multiplier before the splitmix64-style finalizer, so overlapping indices
// across streams cannot collide in practice
// (TestChildSeedStreamIndependence pins this over the working index range).
func ChildSeedStream(seed int64, stream uint64, index int) int64 {
	z := uint64(seed) ^ stream*0xD1B54A32D192ED03 ^ uint64(index)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// ParallelFor runs fn(i) for every i in [0, n) on up to workers goroutines
// and returns when all calls have finished. fn must be safe to call
// concurrently; iteration order is unspecified, so determinism must come
// from fn writing only to its own index's state.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// evaluateBatch is the deterministic parallel evaluation engine: the batch
// is scored on Options.Workers goroutines (each sample repairing with its
// own child RNG) and the results are committed to the optimizer state in
// submission order, so Stats, Trace, elitism, and the best-genome update
// are identical for every worker count.
//
// With the genome memo on, duplicate candidates skip scoring: committed
// duplicates replay the stored genome, and in-batch duplicates of a
// memoizable first occurrence replay its fresh result. Every memo decision
// happens in the serial phases (cheap: partition hashes are cached by the
// operator pipeline, and the memo tables are only mutated in the commit
// loop), so worker count cannot change which samples hit; and only provably
// deterministic results are replayed, so the memo never alters the search
// trajectory either (see memo.go).
func (o *Optimizer) evaluateBatch(cands []candidate) []*Genome {
	scored := make([]*Genome, len(cands))
	if o.memo == nil {
		ParallelFor(len(cands), o.opt.Workers, func(i int) {
			scored[i] = o.score(cands[i], o.samples+i+1)
		})
		for _, g := range scored {
			o.commit(g)
		}
		return scored
	}

	hashes := o.batchHash[:0]
	dupOf := o.batchDup[:0]
	hits := 0

	// Phase 1 (serial): hash candidates (O(1) — the operator pipeline caches
	// the partition hash), probe the memo, and link in-batch duplicates.
	firstIdx := make(map[uint64][]int, len(cands))
	for i, c := range cands {
		hashes = append(hashes, memoHash(c))
		dupOf = append(dupOf, -1)
		if g := o.memo.get(hashes[i], c); g != nil {
			scored[i] = memoHit(g)
			hits++
			continue
		}
		for _, j := range firstIdx[hashes[i]] {
			if c.mem == cands[j].mem && samePartition(c.p, cands[j].p) {
				dupOf[i] = j
				break
			}
		}
		if dupOf[i] < 0 {
			firstIdx[hashes[i]] = append(firstIdx[hashes[i]], i)
		}
	}
	o.batchHash, o.batchDup = hashes, dupOf
	// Phase 2 (parallel): score first occurrences.
	ParallelFor(len(cands), o.opt.Workers, func(i int) {
		if scored[i] == nil && dupOf[i] < 0 {
			scored[i] = o.score(cands[i], o.samples+i+1)
		}
	})
	// Phase 3 (serial): resolve in-batch duplicates of memoizable first
	// occurrences; the rest (repair-RNG-dependent results) must score with
	// their own sample seeds, exactly as they would without the memo — on the
	// worker pool again, since a tight memory config can make them common.
	rescore := false
	for i := range cands {
		if dupOf[i] < 0 {
			continue
		}
		if first := scored[dupOf[i]]; o.memoizable(first, cands[dupOf[i]]) {
			scored[i] = memoHit(first)
			hits++
		} else {
			rescore = true
		}
	}
	if rescore {
		ParallelFor(len(cands), o.opt.Workers, func(i int) {
			if scored[i] == nil {
				scored[i] = o.score(cands[i], o.samples+i+1)
			}
		})
	}
	o.stats.MemoHits += hits
	for i, g := range scored {
		o.commit(g)
		// Memo-hit replays fail the pointer check in memoizable, so only
		// freshly scored, deterministic results are (re)stored.
		if o.memoizable(g, cands[i]) {
			o.memo.put(hashes[i], cands[i], g)
		}
	}
	return scored
}

// score evaluates one candidate, applying the in-situ split repair of
// §4.4.4: subgraphs exceeding the buffer capacity are split until everything
// fits (singletons always fit via the layer-level tiling fallback). It is
// safe to call concurrently: it touches no optimizer state beyond the
// read-only options and the internally synchronized evaluator.
func (o *Optimizer) score(c candidate, sample int) *Genome {
	g := &Genome{P: c.p, Mem: c.mem}
	var res *eval.Result
	if o.opt.DisableInSituSplit {
		if o.opt.DisableDeltaEval {
			res = o.ev.Partition(g.P, g.Mem)
		} else {
			res = o.ev.PartitionDelta(g.P, g.Mem)
		}
	} else {
		rng := rand.New(rand.NewSource(ChildSeed(o.opt.Seed, sample)))
		g.P, res = repairInSitu(o.ev, rng, g.P, g.Mem, o.opt.DisableDeltaEval)
	}
	g.Res = res
	if res.Feasible() {
		g.Cost = o.cost(g, res)
	} else {
		g.Cost = infeasibleCost + float64(len(res.Infeasible))
	}
	return g
}

// commit folds one scored genome into the optimizer state. Called serially,
// in submission order.
func (o *Optimizer) commit(g *Genome) {
	o.samples++
	if g.Res.Feasible() {
		o.stats.FeasibleSamples++
		if o.best == nil || g.Cost < o.best.Cost {
			o.best = g.Clone()
		}
	}
	if o.opt.Trace != nil {
		o.opt.Trace(TracePoint{
			Sample:     o.samples,
			Cost:       g.Cost,
			Metric:     g.Res.MetricValue(o.opt.Objective.Metric),
			Mem:        g.Mem,
			Feasible:   g.Res.Feasible(),
			BestCost:   o.bestCost(),
			Generation: o.gen,
		})
	}
}

func (o *Optimizer) mutate(g *Genome) {
	if o.rng.Float64() < o.opt.MutModify {
		g.P = mutateModifyNode(o.ev.Graph(), o.rng, g.P)
	}
	if o.rng.Float64() < o.opt.MutSplit {
		g.P = mutateSplit(o.ev.Graph(), o.rng, g.P)
	}
	if o.rng.Float64() < o.opt.MutMerge {
		g.P = mutateMerge(o.ev.Graph(), o.rng, g.P)
	}
	if o.opt.Mem.Search && o.rng.Float64() < o.opt.MutDSE {
		g.Mem = mutateDSE(o.rng, o.opt.Mem, o.opt.DSESigmaSteps, g.Mem)
	}
}

func (o *Optimizer) cost(g *Genome, res *eval.Result) float64 {
	c := res.MetricValue(o.opt.Objective.Metric)
	if o.opt.Objective.Alpha > 0 {
		return float64(g.Mem.TotalBytes()) + o.opt.Objective.Alpha*c
	}
	return c
}

// selectNext forms the next generation by tournament selection over the
// combined parent+offspring pool, with elitism for the best genome (§4.4.5).
func (o *Optimizer) selectNext(pool []*Genome) []*Genome {
	next := make([]*Genome, 0, o.opt.Population)
	if o.best != nil {
		next = append(next, o.best.Clone())
	}
	for len(next) < o.opt.Population {
		winner := pool[o.rng.Intn(len(pool))]
		for i := 1; i < o.opt.Tournament; i++ {
			c := pool[o.rng.Intn(len(pool))]
			if c.Cost < winner.Cost {
				winner = c
			}
		}
		next = append(next, winner)
	}
	// Deterministic ordering aids reproducibility of subsequent draws.
	sort.SliceStable(next, func(i, j int) bool { return next[i].Cost < next[j].Cost })
	return next
}
