package core

import (
	"fmt"
	"math/rand"
	"sort"

	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/partition"
)

// Stats summarizes a completed run.
type Stats struct {
	// Samples is the number of genome evaluations performed.
	Samples int
	// Generations is the number of completed generations.
	Generations int
	// FeasibleSamples counts genomes feasible after in-situ repair.
	FeasibleSamples int
	// BestHistory records the best-so-far cost at the end of each
	// generation.
	BestHistory []float64
}

// Optimizer runs the Cocco genetic search over one evaluator.
type Optimizer struct {
	ev  *eval.Evaluator
	opt Options
	rng *rand.Rand

	best    *Genome
	samples int
	gen     int
	stats   Stats
}

// NewOptimizer validates options and prepares a run.
func NewOptimizer(ev *eval.Evaluator, opt Options) (*Optimizer, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return &Optimizer{ev: ev, opt: opt, rng: rand.New(rand.NewSource(opt.Seed))}, nil
}

// Run executes the full search and returns the best feasible genome found.
func Run(ev *eval.Evaluator, opt Options) (*Genome, *Stats, error) {
	o, err := NewOptimizer(ev, opt)
	if err != nil {
		return nil, nil, err
	}
	return o.Run()
}

// Run executes the search.
func (o *Optimizer) Run() (*Genome, *Stats, error) {
	pop := o.initialPopulation()
	for o.samples < o.opt.MaxSamples {
		o.gen++
		offspring := o.makeOffspring(pop)
		pop = o.selectNext(append(pop, offspring...))
		o.stats.BestHistory = append(o.stats.BestHistory, o.bestCost())
		o.stats.Generations = o.gen
	}
	o.stats.Samples = o.samples
	if o.best == nil {
		return nil, &o.stats, fmt.Errorf("core: no feasible genome found in %d samples", o.samples)
	}
	return o.best, &o.stats, nil
}

func (o *Optimizer) bestCost() float64 {
	if o.best == nil {
		return infeasibleCost
	}
	return o.best.Cost
}

// initialPopulation seeds from Options.Init (if any) and fills with random
// genomes (§4.4.1).
func (o *Optimizer) initialPopulation() []*Genome {
	pop := make([]*Genome, 0, o.opt.Population)
	for _, p := range o.opt.Init {
		if len(pop) >= o.opt.Population {
			break
		}
		pop = append(pop, o.evaluate(p.Clone(), randomMem(o.rng, o.opt.Mem)))
	}
	for len(pop) < o.opt.Population && o.samples < o.opt.MaxSamples {
		p := RandomPartition(o.ev.Graph(), o.rng, o.opt.PNewInit)
		pop = append(pop, o.evaluate(p, randomMem(o.rng, o.opt.Mem)))
	}
	return pop
}

// makeOffspring produces one generation of offspring via crossover and the
// customized mutations.
func (o *Optimizer) makeOffspring(pop []*Genome) []*Genome {
	var out []*Genome
	for len(out) < o.opt.Population && o.samples < o.opt.MaxSamples {
		var child *Genome
		dad := pop[o.rng.Intn(len(pop))]
		if !o.opt.DisableCrossover && o.rng.Float64() < o.opt.CrossoverProb {
			mom := pop[o.rng.Intn(len(pop))]
			p := crossoverPartition(o.ev.Graph(), o.rng, dad.P, mom.P)
			child = &Genome{P: p, Mem: crossoverMem(o.opt.Mem, dad.Mem, mom.Mem)}
		} else {
			child = dad.Clone()
		}
		o.mutate(child)
		out = append(out, o.evaluate(child.P, child.Mem))
	}
	return out
}

func (o *Optimizer) mutate(g *Genome) {
	if o.rng.Float64() < o.opt.MutModify {
		g.P = mutateModifyNode(o.ev.Graph(), o.rng, g.P)
	}
	if o.rng.Float64() < o.opt.MutSplit {
		g.P = mutateSplit(o.ev.Graph(), o.rng, g.P)
	}
	if o.rng.Float64() < o.opt.MutMerge {
		g.P = mutateMerge(o.ev.Graph(), o.rng, g.P)
	}
	if o.opt.Mem.Search && o.rng.Float64() < o.opt.MutDSE {
		g.Mem = mutateDSE(o.rng, o.opt.Mem, o.opt.DSESigmaSteps, g.Mem)
	}
}

// evaluate scores a genome, applying the in-situ split repair of §4.4.4:
// subgraphs exceeding the buffer capacity are split until everything fits
// (singletons always fit via the layer-level tiling fallback).
func (o *Optimizer) evaluate(p *partition.Partition, mem hw.MemConfig) *Genome {
	g := &Genome{P: p, Mem: mem}
	var res *eval.Result
	if o.opt.DisableInSituSplit {
		res = o.ev.Partition(g.P, g.Mem)
	} else {
		g.P, res = RepairInSitu(o.ev, o.rng, g.P, g.Mem)
	}
	g.Res = res
	if res.Feasible() {
		g.Cost = o.cost(g, res)
		o.stats.FeasibleSamples++
		if o.best == nil || g.Cost < o.best.Cost {
			o.best = g.Clone()
		}
	} else {
		g.Cost = infeasibleCost + float64(len(res.Infeasible))
	}
	o.samples++
	if o.opt.Trace != nil {
		o.opt.Trace(TracePoint{
			Sample:     o.samples,
			Cost:       g.Cost,
			Metric:     res.MetricValue(o.opt.Objective.Metric),
			Mem:        g.Mem,
			Feasible:   res.Feasible(),
			BestCost:   o.bestCost(),
			Generation: o.gen,
		})
	}
	return g
}

func (o *Optimizer) cost(g *Genome, res *eval.Result) float64 {
	c := res.MetricValue(o.opt.Objective.Metric)
	if o.opt.Objective.Alpha > 0 {
		return float64(g.Mem.TotalBytes()) + o.opt.Objective.Alpha*c
	}
	return c
}

// selectNext forms the next generation by tournament selection over the
// combined parent+offspring pool, with elitism for the best genome (§4.4.5).
func (o *Optimizer) selectNext(pool []*Genome) []*Genome {
	next := make([]*Genome, 0, o.opt.Population)
	if o.best != nil {
		next = append(next, o.best.Clone())
	}
	for len(next) < o.opt.Population {
		winner := pool[o.rng.Intn(len(pool))]
		for i := 1; i < o.opt.Tournament; i++ {
			c := pool[o.rng.Intn(len(pool))]
			if c.Cost < winner.Cost {
				winner = c
			}
		}
		next = append(next, winner)
	}
	// Deterministic ordering aids reproducibility of subsequent draws.
	sort.SliceStable(next, func(i, j int) bool { return next[i].Cost < next[j].Cost })
	return next
}
