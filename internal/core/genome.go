// Package core implements the Cocco optimization framework (§4.3–§4.4): a
// genetic algorithm whose genomes pair a graph-partition scheme with a
// memory configuration, with customized crossover and mutation operators
// (modify-node, split-subgraph, merge-subgraph, mutation-DSE), tournament
// selection, and in-situ split repair of over-capacity subgraphs during
// evaluation.
package core

import (
	"fmt"
	"math/rand"
	"runtime"

	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/partition"
)

// infeasibleCost is the fitness sentinel for genomes that remain infeasible
// after in-situ repair. Large enough to lose every tournament against any
// real cost, small enough to stay well-ordered in float64 arithmetic.
const infeasibleCost = 1e30

// InfeasibleCost exports the sentinel so other optimizers sharing genomes
// with the GA (the orchestrator's scout islands) can keep their costs
// comparable — and, unlike math.Inf, serializable — under the same
// convention.
const InfeasibleCost = infeasibleCost

// Genome is one candidate solution: a partition scheme and the memory
// configuration it runs on.
type Genome struct {
	P    *partition.Partition
	Mem  hw.MemConfig
	Cost float64
	Res  *eval.Result
}

// Clone deep-copies the genome (evaluation results are shared; they are
// immutable).
func (g *Genome) Clone() *Genome {
	return &Genome{P: g.P.Clone(), Mem: g.Mem, Cost: g.Cost, Res: g.Res}
}

// MemSearch configures the hardware half of the search space.
type MemSearch struct {
	// Search enables memory DSE. When false, every genome uses Fixed.
	Search bool
	// Kind selects separate or shared buffers.
	Kind hw.BufferKind
	// Global and Weight are the capacity candidate ranges (Weight unused
	// for the shared design).
	Global, Weight hw.MemRange
	// Fixed is the configuration used when Search is false.
	Fixed hw.MemConfig
}

// TracePoint is reported to Options.Trace after every genome evaluation;
// the convergence (Fig. 12) and distribution (Fig. 13) experiments are
// built from this stream.
type TracePoint struct {
	// Sample is the 1-based evaluation counter.
	Sample int
	// Cost is the genome's objective cost (infeasibleCost if unrepaired).
	Cost float64
	// Metric is the raw metric value (EMA bytes or energy pJ).
	Metric float64
	// Mem is the genome's memory configuration.
	Mem hw.MemConfig
	// Feasible reports whether every subgraph fit after repair.
	Feasible bool
	// BestCost is the best feasible cost seen so far, including this point.
	BestCost float64
	// Generation is the GA generation the sample belongs to (0 = initial
	// population).
	Generation int
}

// Options configures a Cocco run.
type Options struct {
	// Seed drives all randomness; runs are reproducible.
	Seed int64
	// Workers is the number of goroutines scoring genomes concurrently
	// (default runtime.NumCPU()). Candidate generation stays serial on the
	// master RNG and each sample's repair uses a child RNG derived from
	// (Seed, sample index), so results are bit-identical for every worker
	// count; Workers only changes wall-clock time.
	Workers int
	// Population size (paper Fig. 13 uses 500).
	Population int
	// MaxSamples is the total genome-evaluation budget (paper: up to
	// 400,000 for partition-only, 50,000 for co-exploration).
	MaxSamples int
	// Tournament is the tournament size of the selection stage.
	Tournament int
	// CrossoverProb is the probability an offspring comes from crossover
	// rather than cloning one parent.
	CrossoverProb float64
	// PNewInit is the probability, during random initialization, that a
	// layer starts a new subgraph rather than joining its latest parent's.
	PNewInit float64
	// MutModify/MutSplit/MutMerge/MutDSE are per-offspring probabilities of
	// each customized mutation.
	MutModify, MutSplit, MutMerge, MutDSE float64
	// DSESigmaSteps is the standard deviation of mutation-DSE in units of
	// capacity-grid steps.
	DSESigmaSteps float64
	// Objective is the cost function.
	Objective eval.Objective
	// Mem configures hardware search.
	Mem MemSearch
	// Init optionally seeds the initial population with partitions from
	// other optimizers (§4.3 benefit 4).
	Init []*partition.Partition
	// Trace, if non-nil, receives every evaluated sample.
	Trace func(TracePoint)
	// DisableCrossover and DisableInSituSplit support the ablation
	// benchmarks; both default to enabled behavior.
	DisableCrossover   bool
	DisableInSituSplit bool
	// DisableDeltaEval scores genomes with the full from-scratch
	// Evaluator.Partition instead of the incremental PartitionDelta. The two
	// paths are bit-identical (the equivalence suite pins this), so the flag
	// only exists for the delta-vs-full ablation and benchmarks.
	DisableDeltaEval bool
	// DisableGenomeMemo scores every candidate from scratch instead of
	// replaying the committed result of an identical earlier candidate
	// (same partition labels and memory configuration). The memo only replays
	// provably deterministic results, so the two modes are bit-identical
	// (TestGenomeMemoEquivalence); the flag exists for ablation and
	// benchmarks.
	DisableGenomeMemo bool
}

// WithDefaults returns the options with every unset field resolved exactly
// as NewOptimizer would resolve it. The island orchestrator uses it to pace
// scout islands off the effective population size.
func (o Options) WithDefaults() Options { return o.withDefaults() }

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Population <= 0 {
		o.Population = 100
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = 50_000
	}
	if o.Tournament <= 0 {
		o.Tournament = 4
	}
	if o.CrossoverProb == 0 {
		o.CrossoverProb = 0.7
	}
	if o.PNewInit == 0 {
		o.PNewInit = 0.35
	}
	if o.MutModify == 0 {
		o.MutModify = 0.3
	}
	if o.MutSplit == 0 {
		o.MutSplit = 0.2
	}
	if o.MutMerge == 0 {
		o.MutMerge = 0.3
	}
	if o.MutDSE == 0 {
		o.MutDSE = 0.3
	}
	if o.DSESigmaSteps == 0 {
		o.DSESigmaSteps = 2
	}
	return o
}

func (o Options) validate() error {
	if o.Mem.Search {
		if o.Mem.Global.Count() == 0 {
			return fmt.Errorf("core: empty global-buffer range")
		}
		if o.Mem.Kind == hw.SeparateBuffer && o.Mem.Weight.Count() == 0 {
			return fmt.Errorf("core: empty weight-buffer range")
		}
	} else if err := o.Mem.Fixed.Validate(); err != nil {
		return fmt.Errorf("core: fixed memory config: %w", err)
	}
	return nil
}

// randomMem draws a uniform memory configuration from the search ranges
// (§4.4.1: "every genome selects a capacity value in a given range following
// a uniform distribution").
func randomMem(rng *rand.Rand, ms MemSearch) hw.MemConfig {
	if !ms.Search {
		return ms.Fixed
	}
	pick := func(r hw.MemRange) int64 {
		c := r.Candidates()
		return c[rng.Intn(len(c))]
	}
	if ms.Kind == hw.SharedBuffer {
		return hw.MemConfig{Kind: hw.SharedBuffer, GlobalBytes: pick(ms.Global)}
	}
	return hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: pick(ms.Global), WeightBytes: pick(ms.Weight)}
}
