package core

import (
	"testing"

	"cocco/internal/eval"
	"cocco/internal/hw"
)

// TestDeltaFullGAEquivalence pins the cross-engine contract at the search
// level: a full GA run scored through Evaluator.PartitionDelta must be
// bit-identical — best cost, per-generation history, and the entire trace
// stream — to the same run scored through the from-scratch
// Evaluator.Partition, for both the partition-only and the co-exploration
// objective. Combined with TestWorkersDeterminism this keeps the PR-1
// determinism contract independent of the evaluation engine.
func TestDeltaFullGAEquivalence(t *testing.T) {
	cases := []struct {
		name string
		ms   MemSearch
		obj  eval.Objective
	}{
		{"fixed-mem", MemSearch{Fixed: fixedMem()}, eval.Objective{Metric: eval.MetricEMA}},
		{"mem-dse", MemSearch{Search: true, Kind: hw.SeparateBuffer,
			Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()},
			eval.Objective{Metric: eval.MetricEnergy, Alpha: 0.002}},
	}
	run := func(t *testing.T, disableDelta bool, ms MemSearch, obj eval.Objective) (float64, []float64, []TracePoint) {
		t.Helper()
		ev := testEval(t, "googlenet")
		var trace []TracePoint
		best, stats, err := Run(ev, Options{
			Seed: 23, Workers: 4, Population: 30, MaxSamples: 900,
			Objective:        obj,
			Mem:              ms,
			DisableDeltaEval: disableDelta,
			Trace:            func(tp TracePoint) { trace = append(trace, tp) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return best.Cost, stats.BestHistory, trace
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cd, hd, td := run(t, false, tc.ms, tc.obj)
			cf, hf, tf := run(t, true, tc.ms, tc.obj)
			if cd != cf {
				t.Errorf("best cost differs: delta %g vs full %g", cd, cf)
			}
			if len(hd) != len(hf) {
				t.Fatalf("BestHistory length differs: %d vs %d", len(hd), len(hf))
			}
			for i := range hd {
				if hd[i] != hf[i] {
					t.Fatalf("BestHistory[%d] differs: %g vs %g", i, hd[i], hf[i])
				}
			}
			if len(td) != len(tf) {
				t.Fatalf("trace length differs: %d vs %d", len(td), len(tf))
			}
			for i := range td {
				if td[i] != tf[i] {
					t.Fatalf("trace[%d] differs: %+v vs %+v", i, td[i], tf[i])
				}
			}
		})
	}
}
