package core

import (
	"testing"

	"cocco/internal/eval"
	"cocco/internal/hw"
)

// runTraced executes one search and captures everything an observer can see:
// the best cost, the per-generation best history, and the full trace stream.
func runTraced(t *testing.T, workers int, ms MemSearch, obj eval.Objective) (float64, []float64, []TracePoint) {
	t.Helper()
	ev := testEval(t, "googlenet")
	var trace []TracePoint
	best, stats, err := Run(ev, Options{
		Seed: 17, Workers: workers, Population: 30, MaxSamples: 1500,
		Objective: obj,
		Mem:       ms,
		Trace:     func(tp TracePoint) { trace = append(trace, tp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return best.Cost, stats.BestHistory, trace
}

// TestWorkersDeterminism is the tentpole acceptance test: a fixed seed must
// produce bit-identical results whether genomes are scored on 1 goroutine or
// 8, for both the partition-only and the co-exploration objective.
func TestWorkersDeterminism(t *testing.T) {
	cases := []struct {
		name string
		ms   MemSearch
		obj  eval.Objective
	}{
		{"fixed-mem", MemSearch{Fixed: fixedMem()}, eval.Objective{Metric: eval.MetricEMA}},
		{"mem-dse", MemSearch{Search: true, Kind: hw.SeparateBuffer,
			Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()},
			eval.Objective{Metric: eval.MetricEnergy, Alpha: 0.002}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c1, h1, tr1 := runTraced(t, 1, tc.ms, tc.obj)
			c8, h8, tr8 := runTraced(t, 8, tc.ms, tc.obj)
			if c1 != c8 {
				t.Errorf("best cost differs: Workers=1 %g vs Workers=8 %g", c1, c8)
			}
			if len(h1) != len(h8) {
				t.Fatalf("BestHistory length differs: %d vs %d", len(h1), len(h8))
			}
			for i := range h1 {
				if h1[i] != h8[i] {
					t.Fatalf("BestHistory[%d] differs: %g vs %g", i, h1[i], h8[i])
				}
			}
			if len(tr1) != len(tr8) {
				t.Fatalf("trace length differs: %d vs %d", len(tr1), len(tr8))
			}
			for i := range tr1 {
				if tr1[i] != tr8[i] {
					t.Fatalf("trace[%d] differs: %+v vs %+v", i, tr1[i], tr8[i])
				}
			}
		})
	}
}

// TestWorkersDefaulted checks that an unset Workers falls back to a positive
// CPU count and that oversubscription (more workers than candidates) works.
func TestWorkersDefaulted(t *testing.T) {
	if w := (Options{}).withDefaults().Workers; w < 1 {
		t.Errorf("defaulted Workers = %d, want >= 1", w)
	}
	ev := testEval(t, "vgg16")
	_, stats, err := Run(ev, Options{
		Seed: 3, Workers: 64, Population: 8, MaxSamples: 100,
		Objective: eval.Objective{Metric: eval.MetricEMA},
		Mem:       MemSearch{Fixed: fixedMem()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples != 100 {
		t.Errorf("samples = %d, want 100", stats.Samples)
	}
}

// TestChildSeedSpread guards against a degenerate child-seed mix: nearby
// sample indices must yield distinct seeds.
func TestChildSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for s := 1; s <= 10_000; s++ {
		seen[ChildSeed(42, s)] = true
	}
	if len(seen) != 10_000 {
		t.Errorf("childSeed collisions: %d distinct seeds for 10000 samples", len(seen))
	}
	if ChildSeed(1, 5) == ChildSeed(2, 5) {
		t.Error("ChildSeed ignores the run seed")
	}
}
