package core

import (
	"fmt"
	"math/rand"

	"cocco/internal/eval"
)

// OptimizerState is the complete checkpointable state of a paused Optimizer:
// everything Step reads besides the immutable options and the evaluator.
// Restoring it into a fresh Optimizer (NewOptimizerFromState) and continuing
// is bit-identical to never having paused, because
//
//   - the master RNG is a pure function of (Seed, Draws) — see CountingSource;
//   - per-sample repair RNGs are pure functions of (Seed, sample index);
//   - population and best genomes only feed the search through their
//     partition assignments, memory configs, and costs, all captured here;
//   - the genome memo only replays provably deterministic results, so its
//     entries are position-independent values, captured as a flat list.
//
// Cost handles and evaluator-cache contents are deliberately absent: both
// are pure caches whose presence changes wall-clock time, never results.
type OptimizerState struct {
	// Seed and Draws pin the master RNG state (Seed always equals the
	// option's run seed; it is stored so restores can cross-check).
	Seed  int64
	Draws uint64
	// Started records whether the initial population has been built.
	Started bool
	// Samples and Generations are the committed progress counters.
	Samples     int
	Generations int
	// Stats is the statistics snapshot (Samples inside it is only filled by
	// Finish; the live counter is the Samples field above).
	Stats Stats
	// Population is the current population in selectNext order (nil before
	// the first Step). Result pointers are not needed to continue a run and
	// may be nil on restored genomes.
	Population []*Genome
	// Best is the best feasible genome so far, with its Result attached.
	Best *Genome
	// Memo lists the genome-memo entries in a canonical order (empty when
	// the memo is disabled).
	Memo []*Genome
}

// ExportState snapshots the optimizer. The snapshot shares genomes with the
// live optimizer — both sides treat committed genomes as immutable, so the
// caller must serialize (or deep-copy) the snapshot before stepping again
// only if it needs isolation.
func (o *Optimizer) ExportState() *OptimizerState {
	st := &OptimizerState{
		Seed:        o.src.SeedValue(),
		Draws:       o.src.Draws(),
		Started:     o.started,
		Samples:     o.samples,
		Generations: o.gen,
		Stats:       o.stats,
		Population:  append([]*Genome(nil), o.pop...),
		Best:        o.best,
	}
	st.Stats.BestHistory = append([]float64(nil), o.stats.BestHistory...)
	if o.memo != nil {
		st.Memo = o.memo.export()
	}
	return st
}

// NewOptimizerFromState rebuilds a paused optimizer. opt must be the exact
// options of the run that produced the state (the checkpoint layer pins a
// config fingerprint for this); ev must evaluate the same graph on the same
// platform.
func NewOptimizerFromState(ev *eval.Evaluator, opt Options, st *OptimizerState) (*Optimizer, error) {
	o, err := NewOptimizer(ev, opt)
	if err != nil {
		return nil, err
	}
	if st.Seed != o.opt.Seed {
		return nil, fmt.Errorf("core: state seed %d does not match options seed %d", st.Seed, o.opt.Seed)
	}
	o.src = RestoreSource(st.Seed, st.Draws)
	o.rng = rand.New(o.src)
	o.started = st.Started
	o.samples = st.Samples
	o.gen = st.Generations
	o.stats = st.Stats
	o.stats.BestHistory = append([]float64(nil), st.Stats.BestHistory...)
	o.pop = append([]*Genome(nil), st.Population...)
	o.best = st.Best
	if o.memo != nil {
		o.memo.restore(st.Memo)
	}
	return o, nil
}
