package core

import "math/rand"

// CountingSource wraps the standard math/rand source and counts how many
// times it has advanced. Go's rngSource steps its feedback register exactly
// once per Int63/Uint64 call, so (seed, draws) is a complete description of
// the generator state: RestoreSource replays draws steps from a fresh seed
// and lands on the identical state, whatever mix of Rand methods produced
// it. This is what makes optimizer checkpoints small — RNG state is two
// integers, not the 607-word register.
type CountingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

// NewCountingSource seeds a fresh counting source.
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// RestoreSource rebuilds the state a counting source had after draws
// advances from seed.
func RestoreSource(seed int64, draws uint64) *CountingSource {
	s := NewCountingSource(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
	return s
}

// Seed reports the seed the source was created from.
func (s *CountingSource) SeedValue() int64 { return s.seed }

// Draws reports how many times the source has advanced.
func (s *CountingSource) Draws() uint64 { return s.draws }

// Int63 implements rand.Source.
func (s *CountingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source.
func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed, s.draws = seed, 0
}
