package core

// Pooled scratch for the candidate-generation helpers. The operator draw
// logic (splitRandom, quotientNeighbors, crossoverPartition, RandomPartition,
// mutate*) used to allocate transient maps and slices on every draw; the
// per-goroutine opScratch replaces them with epoch-stamped graph.Marks sets
// and reusable slices. Draw sequences are unchanged: the scratch only swaps
// the set/list representations, never the iteration or RNG order.

import (
	"sync"

	"cocco/internal/graph"
)

type opScratch struct {
	nodes  *graph.Marks // node-space set (split region / crossover decided)
	inSub  *graph.Marks // node-space set (subgraph membership)
	labels *graph.Marks // label-space set (neighbor/target dedup)

	members  []int   // AppendMembers buffer
	frontier []int   // region growth frontier
	listA    []int   // split part A / crossover undecided
	listB    []int   // split part B / crossover overlap
	parts    [][]int // TrySplit argument buffer
	targets  []int   // modify-node candidate targets / quotient neighbors
	assign   []int   // RandomPartition / crossover assignment buffer
	counts   []int32 // per-label member counts (multiNodeSubgraphs)
}

var opScratchPool = sync.Pool{New: func() any {
	return &opScratch{
		nodes:  graph.NewMarks(0),
		inSub:  graph.NewMarks(0),
		labels: graph.NewMarks(0),
	}
}}

// getOpScratch returns a scratch sized for graph g (n nodes, labels < lab).
func getOpScratch(n, lab int) *opScratch {
	sc := opScratchPool.Get().(*opScratch)
	sc.nodes.Grow(n)
	sc.inSub.Grow(n)
	sc.labels.Grow(lab)
	return sc
}

func putOpScratch(sc *opScratch) { opScratchPool.Put(sc) }
