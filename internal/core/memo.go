package core

// The genome memo. Tournament selection plus elitism re-submit identical
// candidates constantly (the elite clone every generation, un-mutated parent
// clones ~1-in-6 offspring with the default rates), and each one used to pay
// a full repair + evaluation. The memo identifies a candidate by hashing its
// partition assignment and memory configuration directly — no key bytes are
// ever materialized — and verifies hash matches by exact assignment/config
// comparison, so lookups are allocation-free and collisions are impossible
// by construction. A hit replays the committed result of the first
// occurrence, sharing its (fully evaluated, afterwards read-only) partition.
//
// The memo is exact, not approximate: an entry is stored only when a fresh
// evaluation of the same (partition, mem) pair is provably bit-identical to
// the stored one — the evaluation is deterministic unless the in-situ split
// repair actually fired (the only RNG consumer in scoring), so a genome is
// memoized iff repair left its partition untouched and feasible (or repair
// is disabled entirely). Searches with the memo on are therefore
// bit-identical to searches with it off (TestGenomeMemoEquivalence), and
// Options.DisableGenomeMemo exists only for ablation/benchmarks.
//
// Concurrency: lookups, duplicate linking, and replays all happen in the
// optimizer's serial phases (cheap, since partition hashes are cached by the
// operator pipeline), and the shard maps are only mutated in the ordered
// commit loop — so memo decisions are pure functions of candidate-generation
// order, identical for every Workers count.

import (
	"sort"

	"cocco/internal/partition"
)

const (
	memoShardBits = 6
	memoShards    = 1 << memoShardBits
	// memoShardCap bounds each shard; a shard exceeding it is reset (commit
	// order is deterministic, so eviction is too). ~32k genomes total keeps
	// the memo a few MB even on the paper's 400k-sample budgets.
	memoShardCap = 512
)

// genomeMemo is the sharded candidate→result table, keyed by assignment hash
// with exact verification against the stored genome. Hit accounting lives in
// Stats.MemoHits.
type genomeMemo struct {
	shards [memoShards]map[uint64][]*Genome
}

func newGenomeMemo() *genomeMemo { return &genomeMemo{} }

// memoHash folds the candidate's partition content hash and memory
// configuration into the memo discriminator. The partition half is cached on
// the partition itself (precomputed by the operator pipeline, inherited by
// clones — so un-mutated duplicates hash in O(1)); matches are verified
// exactly, so the hash only needs to discriminate, never to identify.
// Allocation-free and a pure function of the candidate; safe from the
// parallel phase (each candidate owns its partition).
func memoHash(c candidate) uint64 {
	const prime = 1099511628211
	h := c.p.AssignHash()
	h = (h ^ uint64(c.mem.Kind)) * prime
	h = (h ^ uint64(c.mem.GlobalBytes)) * prime
	h = (h ^ uint64(c.mem.WeightBytes)) * prime
	return h
}

// sameCandidate reports whether the candidate matches the stored genome's
// pre-repair identity exactly (entries only exist for genomes whose partition
// the scoring left untouched, so g.P is the candidate partition of the first
// occurrence).
func sameCandidate(c candidate, g *Genome) bool {
	if c.mem != g.Mem {
		return false
	}
	return samePartition(c.p, g.P)
}

func samePartition(a, b *partition.Partition) bool {
	if a.NumSubgraphs() != b.NumSubgraphs() {
		return false
	}
	n := a.Graph().Len()
	for id := 0; id < n; id++ {
		if a.Of(id) != b.Of(id) {
			return false
		}
	}
	return true
}

// get returns the committed genome stored for the candidate, or nil.
func (m *genomeMemo) get(h uint64, c candidate) *Genome {
	for _, g := range m.shards[h>>(64-memoShardBits)][h] {
		if sameCandidate(c, g) {
			return g
		}
	}
	return nil
}

// put stores a committed genome for the candidate, resetting the shard at
// the cap. Serial (commit loop) only.
func (m *genomeMemo) put(h uint64, c candidate, g *Genome) {
	s := h >> (64 - memoShardBits)
	if m.shards[s] == nil || len(m.shards[s]) >= memoShardCap {
		m.shards[s] = make(map[uint64][]*Genome, 64)
	}
	list := m.shards[s][h]
	for i, old := range list {
		if sameCandidate(c, old) {
			list[i] = g
			return
		}
	}
	m.shards[s][h] = append(list, g)
}

// export flattens the memo into a canonical order — ascending hash, then
// insertion order within a hash's verification list — so checkpoints of the
// same memo content are byte-identical regardless of map iteration order.
// Restoring the list with restore reproduces the exact shard occupancy,
// including how close each shard is to its eviction cap.
func (m *genomeMemo) export() []*Genome {
	type entry struct {
		h   uint64
		idx int
		g   *Genome
	}
	var entries []entry
	for s := range m.shards {
		for h, list := range m.shards[s] {
			for i, g := range list {
				entries = append(entries, entry{h, i, g})
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].h != entries[j].h {
			return entries[i].h < entries[j].h
		}
		return entries[i].idx < entries[j].idx
	})
	out := make([]*Genome, len(entries))
	for i, e := range entries {
		out[i] = e.g
	}
	return out
}

// restore re-inserts exported entries. Entries arrive in export order
// (hash-ascending, so shard-contiguous) and every stored genome's partition
// is its own candidate partition, so re-hashing reproduces the original
// shard placement; since no shard ever exports more distinct hashes than
// the eviction cap, re-insertion never trips an eviction either.
func (m *genomeMemo) restore(entries []*Genome) {
	for i := range m.shards {
		m.shards[i] = nil
	}
	for _, g := range entries {
		c := candidate{p: g.P, mem: g.Mem}
		m.put(memoHash(c), c, g)
	}
}

// memoizable reports whether g's scored result is a pure function of the
// candidate (so a later duplicate may replay it bit-identically): always when
// the in-situ split repair is disabled, otherwise only when repair left the
// candidate partition untouched and feasible — an infeasible or repaired
// genome's outcome depends on the per-sample repair RNG.
func (o *Optimizer) memoizable(g *Genome, c candidate) bool {
	if o.opt.DisableInSituSplit {
		return true
	}
	return g.P == c.p && g.Res.Feasible()
}

// memoHit materializes a stored genome for re-commit. The stored partition is
// shared, not cloned: it is fully evaluated (all cost handles filled) and the
// GA never mutates a committed genome's partition — offspring clone it before
// mutating, exactly as population genomes are reused by tournament selection.
func memoHit(g *Genome) *Genome {
	return &Genome{P: g.P, Mem: g.Mem, Cost: g.Cost, Res: g.Res}
}
