package core

import (
	"testing"

	"cocco/internal/eval"
	"cocco/internal/hw"
)

// runMemoTraced executes one search with the given memo setting and captures
// everything an observer can see.
func runMemoTraced(t *testing.T, disableMemo bool, ms MemSearch, obj eval.Objective, mem hw.MemConfig) (float64, []float64, []TracePoint, *Stats) {
	t.Helper()
	ev := testEval(t, "googlenet")
	var trace []TracePoint
	best, stats, err := Run(ev, Options{
		Seed: 31, Workers: 4, Population: 30, MaxSamples: 1200,
		Objective:         obj,
		Mem:               ms,
		DisableGenomeMemo: disableMemo,
		Trace:             func(tp TracePoint) { trace = append(trace, tp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return best.Cost, stats.BestHistory, trace, stats
}

// TestGenomeMemoEquivalence pins the memo's exactness contract: the memo only
// replays results that a fresh evaluation would reproduce bit-identically, so
// a search with the memo on must equal the same search with it off in every
// observable — best cost, per-generation history, and the full trace stream —
// while actually serving samples from the memo.
func TestGenomeMemoEquivalence(t *testing.T) {
	cases := []struct {
		name string
		ms   MemSearch
		obj  eval.Objective
		mem  hw.MemConfig
	}{
		// A roomy fixed config: most candidates are feasible, so the memo
		// both fills and hits aggressively.
		{"fixed-mem", MemSearch{Fixed: fixedMem()}, eval.Objective{Metric: eval.MetricEMA}, fixedMem()},
		// A tight fixed config: the in-situ repair fires constantly, so most
		// results are NOT memoizable and the skip logic is what's exercised.
		{"tight-mem", MemSearch{Fixed: hw.MemConfig{Kind: hw.SeparateBuffer,
			GlobalBytes: 96 * hw.KiB, WeightBytes: 128 * hw.KiB}},
			eval.Objective{Metric: eval.MetricEMA}, hw.MemConfig{}},
		// Memory DSE: the memo key must separate identical partitions paired
		// with different capacities.
		{"mem-dse", MemSearch{Search: true, Kind: hw.SeparateBuffer,
			Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()},
			eval.Objective{Metric: eval.MetricEnergy, Alpha: 0.002}, hw.MemConfig{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cOn, hOn, tOn, sOn := runMemoTraced(t, false, tc.ms, tc.obj, tc.mem)
			cOff, hOff, tOff, sOff := runMemoTraced(t, true, tc.ms, tc.obj, tc.mem)
			if cOn != cOff {
				t.Errorf("best cost differs: memo-on %g vs memo-off %g", cOn, cOff)
			}
			if len(hOn) != len(hOff) {
				t.Fatalf("BestHistory length differs: %d vs %d", len(hOn), len(hOff))
			}
			for i := range hOn {
				if hOn[i] != hOff[i] {
					t.Fatalf("BestHistory[%d] differs: %g vs %g", i, hOn[i], hOff[i])
				}
			}
			if len(tOn) != len(tOff) {
				t.Fatalf("trace length differs: %d vs %d", len(tOn), len(tOff))
			}
			for i := range tOn {
				if tOn[i] != tOff[i] {
					t.Fatalf("trace[%d] differs: %+v vs %+v", i, tOn[i], tOff[i])
				}
			}
			if sOff.MemoHits != 0 {
				t.Errorf("memo-off run reports %d memo hits", sOff.MemoHits)
			}
			if tc.name == "fixed-mem" && sOn.MemoHits == 0 {
				t.Error("memo-on run served no samples from the memo; the test lost its teeth")
			}
			t.Logf("memo hits: %d / %d samples", sOn.MemoHits, sOn.Samples)
		})
	}
}

// TestGenomeMemoWorkersDeterminism re-pins the PR-1 determinism contract with
// the memo explicitly in play: worker count must not change which samples hit
// the memo (decisions are serial) nor any observable result.
func TestGenomeMemoWorkersDeterminism(t *testing.T) {
	run := func(workers int) (float64, int, []TracePoint) {
		ev := testEval(t, "resnet50")
		var trace []TracePoint
		best, stats, err := Run(ev, Options{
			Seed: 13, Workers: workers, Population: 24, MaxSamples: 800,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       MemSearch{Fixed: fixedMem()},
			Trace:     func(tp TracePoint) { trace = append(trace, tp) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return best.Cost, stats.MemoHits, trace
	}
	c1, m1, t1 := run(1)
	c8, m8, t8 := run(8)
	if c1 != c8 {
		t.Errorf("best cost differs: %g vs %g", c1, c8)
	}
	if m1 != m8 {
		t.Errorf("memo hits differ across worker counts: %d vs %d", m1, m8)
	}
	if len(t1) != len(t8) {
		t.Fatalf("trace length differs: %d vs %d", len(t1), len(t8))
	}
	for i := range t1 {
		if t1[i] != t8[i] {
			t.Fatalf("trace[%d] differs: %+v vs %+v", i, t1[i], t8[i])
		}
	}
}
