package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/partition"
	"cocco/internal/tiling"
)

func testEval(t testing.TB, model string) *eval.Evaluator {
	t.Helper()
	return eval.MustNew(models.MustBuild(model), hw.DefaultPlatform(), tiling.DefaultConfig())
}

func fixedMem() hw.MemConfig {
	return hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
}

func TestRandomPartitionValidityProperty(t *testing.T) {
	for _, model := range []string{"vgg16", "googlenet", "randwire-a"} {
		g := models.MustBuild(model)
		f := func(seed int64, pNewByte uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			pNew := float64(pNewByte) / 255
			p := RandomPartition(g, rng, pNew)
			return p.Validate() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", model, err)
		}
	}
}

func TestRandomPartitionGranularity(t *testing.T) {
	g := models.MustBuild("resnet50")
	rng := rand.New(rand.NewSource(1))
	// pNew=1 → all singletons; pNew→0 → strongly fused.
	all := RandomPartition(g, rng, 1.0)
	if all.NumSubgraphs() != len(g.ComputeNodes()) {
		t.Errorf("pNew=1 gave %d subgraphs, want %d", all.NumSubgraphs(), len(g.ComputeNodes()))
	}
	fused := RandomPartition(g, rng, 0.01)
	if fused.NumSubgraphs() >= all.NumSubgraphs()/2 {
		t.Errorf("pNew=0.01 gave %d subgraphs; expected strong fusion", fused.NumSubgraphs())
	}
}

func TestCrossoverProducesValidChildren(t *testing.T) {
	g := models.MustBuild("googlenet")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		dad := RandomPartition(g, rng, 0.4)
		mom := RandomPartition(g, rng, 0.2)
		child := crossoverPartition(g, rng, dad, mom)
		if err := child.Validate(); err != nil {
			t.Fatalf("iteration %d: invalid child: %v", i, err)
		}
	}
}

func TestCrossoverMemAveragesAndClamps(t *testing.T) {
	ms := MemSearch{Search: true, Kind: hw.SeparateBuffer,
		Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()}
	a := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 128 * hw.KiB, WeightBytes: 144 * hw.KiB}
	b := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 256 * hw.KiB, WeightBytes: 288 * hw.KiB}
	c := crossoverMem(ms, a, b)
	if c.GlobalBytes != 192*hw.KiB || c.WeightBytes != 216*hw.KiB {
		t.Errorf("average = %v", c)
	}
	if !ms.Global.Contains(c.GlobalBytes) || !ms.Weight.Contains(c.WeightBytes) {
		t.Error("average not on the candidate grid")
	}
}

func TestMutationsPreserveValidity(t *testing.T) {
	g := models.MustBuild("randwire-a")
	rng := rand.New(rand.NewSource(3))
	p := RandomPartition(g, rng, 0.3)
	for i := 0; i < 200; i++ {
		p = ApplyRandomMutation(g, rng, p)
		if err := p.Validate(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestMutateDSEStaysOnGrid(t *testing.T) {
	ms := MemSearch{Search: true, Kind: hw.SharedBuffer, Global: hw.PaperSharedRange()}
	rng := rand.New(rand.NewSource(5))
	m := hw.MemConfig{Kind: hw.SharedBuffer, GlobalBytes: 1024 * hw.KiB}
	for i := 0; i < 100; i++ {
		m = MutateMemConfig(rng, ms, 2, m)
		if !ms.Global.Contains(m.GlobalBytes) {
			t.Fatalf("off-grid capacity %d", m.GlobalBytes)
		}
	}
}

func TestRunImprovesOverSingletons(t *testing.T) {
	ev := testEval(t, "googlenet")
	mem := fixedMem()
	base := ev.Partition(partition.Singletons(ev.Graph()), mem)

	best, stats, err := Run(ev, Options{
		Seed: 1, Population: 40, MaxSamples: 3000,
		Objective: eval.Objective{Metric: eval.MetricEMA},
		Mem:       MemSearch{Fixed: mem},
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Res.EMABytes >= base.EMABytes {
		t.Errorf("GA (%d) did not beat singletons (%d)", best.Res.EMABytes, base.EMABytes)
	}
	if stats.Samples != 3000 {
		t.Errorf("samples = %d", stats.Samples)
	}
	if err := best.P.Validate(); err != nil {
		t.Errorf("best partition invalid: %v", err)
	}
	// Best history is monotone non-increasing.
	for i := 1; i < len(stats.BestHistory); i++ {
		if stats.BestHistory[i] > stats.BestHistory[i-1] {
			t.Errorf("best history not monotone at %d", i)
		}
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	run := func() float64 {
		ev := testEval(t, "resnet50")
		best, _, err := Run(ev, Options{
			Seed: 9, Population: 30, MaxSamples: 1500,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       MemSearch{Fixed: fixedMem()},
		})
		if err != nil {
			t.Fatal(err)
		}
		return best.Cost
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different results: %g vs %g", a, b)
	}
}

func TestInSituSplitRepairsTinyBuffers(t *testing.T) {
	ev := testEval(t, "resnet50")
	// A buffer too small for any multi-layer subgraph: only singletons fit,
	// so the repair must drive everything feasible.
	tiny := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 4 * hw.KiB, WeightBytes: 8 * hw.KiB}
	rng := rand.New(rand.NewSource(2))
	p := RandomPartition(ev.Graph(), rng, 0.05) // heavily fused start
	q, res := RepairInSitu(ev, rng, p, tiny)
	if !res.Feasible() {
		t.Fatalf("repair left %d infeasible subgraphs", len(res.Infeasible))
	}
	if err := q.Validate(); err != nil {
		t.Errorf("repaired partition invalid: %v", err)
	}
	if q.NumSubgraphs() <= p.NumSubgraphs() {
		t.Error("repair did not split anything")
	}
}

func TestRunWithDSEFindsOnGridConfig(t *testing.T) {
	ev := testEval(t, "googlenet")
	ms := MemSearch{Search: true, Kind: hw.SeparateBuffer,
		Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()}
	best, _, err := Run(ev, Options{
		Seed: 4, Population: 40, MaxSamples: 3000,
		Objective: eval.Objective{Metric: eval.MetricEnergy, Alpha: 0.002},
		Mem:       ms,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ms.Global.Contains(best.Mem.GlobalBytes) || !ms.Weight.Contains(best.Mem.WeightBytes) {
		t.Errorf("chosen config off-grid: %v", best.Mem)
	}
	// Formula 2 identity.
	want := float64(best.Mem.TotalBytes()) + 0.002*best.Res.EnergyPJ
	if diff := best.Cost - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("cost %g != formula 2 %g", best.Cost, want)
	}
}

func TestTraceReceivesEverySample(t *testing.T) {
	ev := testEval(t, "vgg16")
	count := 0
	lastSample := 0
	_, stats, err := Run(ev, Options{
		Seed: 1, Population: 20, MaxSamples: 500,
		Objective: eval.Objective{Metric: eval.MetricEMA},
		Mem:       MemSearch{Fixed: fixedMem()},
		Trace: func(tp TracePoint) {
			count++
			if tp.Sample != lastSample+1 {
				t.Fatalf("sample jump: %d after %d", tp.Sample, lastSample)
			}
			lastSample = tp.Sample
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != stats.Samples {
		t.Errorf("trace points %d != samples %d", count, stats.Samples)
	}
}

func TestOptionsValidation(t *testing.T) {
	ev := testEval(t, "vgg16")
	if _, err := NewOptimizer(ev, Options{Mem: MemSearch{Search: true}}); err == nil {
		t.Error("empty search range accepted")
	}
	if _, err := NewOptimizer(ev, Options{Mem: MemSearch{Fixed: hw.MemConfig{}}}); err == nil {
		t.Error("invalid fixed config accepted")
	}
	if _, err := NewOptimizer(ev, Options{
		Mem: MemSearch{Search: true, Kind: hw.SeparateBuffer, Global: hw.PaperGlobalRange()},
	}); err == nil {
		t.Error("missing weight range accepted")
	}
}

func TestInitSeedingUsed(t *testing.T) {
	ev := testEval(t, "vgg16")
	seedP := partition.Whole(ev.Graph())
	var sawWholeCost bool
	wholeRes := ev.Partition(seedP, fixedMem())
	_, _, err := Run(ev, Options{
		Seed: 1, Population: 10, MaxSamples: 50,
		Objective: eval.Objective{Metric: eval.MetricEMA},
		Mem:       MemSearch{Fixed: fixedMem()},
		Init:      []*partition.Partition{seedP},
		Trace: func(tp TracePoint) {
			if tp.Sample == 1 && tp.Metric <= float64(wholeRes.EMABytes)*1.5 {
				sawWholeCost = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawWholeCost {
		t.Error("seeded partition not evaluated first")
	}
}

func TestGenomeClone(t *testing.T) {
	g := models.MustBuild("vgg16")
	p := partition.Singletons(g)
	gen := &Genome{P: p, Mem: fixedMem(), Cost: 5}
	c := gen.Clone()
	if c.P == gen.P {
		t.Error("partition not deep-copied")
	}
	if c.Cost != 5 || c.Mem != gen.Mem {
		t.Error("fields not copied")
	}
}

func TestRandomMemUniformWithinRange(t *testing.T) {
	ms := MemSearch{Search: true, Kind: hw.SeparateBuffer,
		Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()}
	rng := rand.New(rand.NewSource(11))
	seen := map[int64]bool{}
	for i := 0; i < 300; i++ {
		m := RandomMemConfig(rng, ms)
		if !ms.Global.Contains(m.GlobalBytes) || !ms.Weight.Contains(m.WeightBytes) {
			t.Fatalf("off-grid draw %v", m)
		}
		seen[m.GlobalBytes] = true
	}
	if len(seen) < 15 {
		t.Errorf("poor spread: only %d distinct capacities", len(seen))
	}
}

func TestQuotientNeighborsSymmetric(t *testing.T) {
	g := models.MustBuild("googlenet")
	rng := rand.New(rand.NewSource(13))
	p := RandomPartition(g, rng, 0.5)
	sc := getOpScratch(g.Len(), p.NumSubgraphs()+1)
	defer putOpScratch(sc)
	sc2 := getOpScratch(g.Len(), p.NumSubgraphs()+1)
	defer putOpScratch(sc2)
	for s := 0; s < p.NumSubgraphs(); s++ {
		for _, nb := range append([]int(nil), quotientNeighbors(g, p, s, sc)...) {
			back := quotientNeighbors(g, p, nb, sc2)
			found := false
			for _, x := range back {
				if x == s {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %d->%d", s, nb)
			}
		}
	}
}
