package core

import (
	"fmt"
	"math/rand"

	"cocco/internal/eval"
	"cocco/internal/graph"
	"cocco/internal/hw"
	"cocco/internal/partition"
)

// RandomPartition draws a valid random partition (§4.4.1's random
// initialization): layers are visited in topological order and each either
// starts a new subgraph (probability pNew) or joins the subgraph of one of
// its latest-scheduled producers — a choice that always preserves precedence
// and connectivity.
func RandomPartition(g *graph.Graph, rng *rand.Rand, pNew float64) *partition.Partition {
	sc := getOpScratch(g.Len(), 1)
	defer putOpScratch(sc)
	assign := sc.assign[:0]
	for i := 0; i < g.Len(); i++ {
		assign = append(assign, partition.Unassigned)
	}
	sc.assign = assign
	next := 0
	for _, v := range g.ComputeIDs() {
		// Producers already assigned (inputs stay Unassigned).
		maxP := -1
		for _, u := range g.PredIDs(v) {
			if assign[u] > maxP {
				maxP = assign[u]
			}
		}
		if maxP < 0 || rng.Float64() < pNew {
			assign[v] = next
			next++
			continue
		}
		// Join the producers' subgraph with the maximal id: this keeps the
		// quotient edges pointing forward (acyclic) and attaches v to a
		// member, preserving connectivity. The historical code drew uniformly
		// over the deduplicated producer subgraphs equal to maxP — always the
		// singleton {maxP} — so the draw is kept (Intn(1) consumes one RNG
		// value) to leave every seeded search trajectory unchanged.
		rng.Intn(1)
		assign[v] = maxP
	}
	p, err := partition.From(g, assign)
	if err != nil {
		// By construction this cannot happen; fall back to singletons to
		// keep the optimizer running rather than crash mid-search.
		return partition.Singletons(g)
	}
	return p
}

// MutationOp identifies one of the three customized partition mutations
// (Figure 9c–e).
type MutationOp int

const (
	// OpModifyNode moves a random node to a neighbor's or a fresh subgraph.
	OpModifyNode MutationOp = iota
	// OpSplitSubgraph splits a random multi-node subgraph in two.
	OpSplitSubgraph
	// OpMergeSubgraphs merges a random subgraph with a quotient neighbor.
	OpMergeSubgraphs
)

// ApplyMutationOp applies one specific partition mutation. Exported so the
// search-path benchmarks (and any caller wanting a fixed operator mix) can
// drive the same operators ApplyRandomMutation samples from. Unknown ops
// panic rather than silently running some mutation.
func ApplyMutationOp(g *graph.Graph, rng *rand.Rand, p *partition.Partition, op MutationOp) *partition.Partition {
	switch op {
	case OpModifyNode:
		return mutateModifyNode(g, rng, p)
	case OpSplitSubgraph:
		return mutateSplit(g, rng, p)
	case OpMergeSubgraphs:
		return mutateMerge(g, rng, p)
	default:
		panic(fmt.Sprintf("core: unknown MutationOp %d", op))
	}
}

// ApplyRandomMutation applies one uniformly chosen partition mutation
// (modify-node, split-subgraph, or merge-subgraph). Exported so the
// simulated-annealing baseline can use Cocco's operators, as the paper does
// ("SA is an alternative optimization method for our framework with
// compatible operators").
func ApplyRandomMutation(g *graph.Graph, rng *rand.Rand, p *partition.Partition) *partition.Partition {
	switch rng.Intn(3) {
	case 0:
		return mutateModifyNode(g, rng, p)
	case 1:
		return mutateSplit(g, rng, p)
	default:
		return mutateMerge(g, rng, p)
	}
}

// MutateMemConfig applies the mutation-DSE operator: resample the capacities
// around the current values with a normal distribution of sigmaSteps grid
// steps.
func MutateMemConfig(rng *rand.Rand, ms MemSearch, sigmaSteps float64, m hw.MemConfig) hw.MemConfig {
	return mutateDSE(rng, ms, sigmaSteps, m)
}

// RandomMemConfig draws a uniform configuration from the search ranges.
func RandomMemConfig(rng *rand.Rand, ms MemSearch) hw.MemConfig {
	return randomMem(rng, ms)
}

// RepairInSitu applies the in-situ split repair of §4.4.4 outside the GA:
// infeasible subgraphs are split until everything fits or no split applies.
// Returns the repaired partition and its evaluation. Re-evaluations after
// each split go through Evaluator.PartitionDelta — the split carries every
// untouched subgraph's cost handle, so a repair iteration only re-derives
// the two halves it created.
func RepairInSitu(ev *eval.Evaluator, rng *rand.Rand, p *partition.Partition, mem hw.MemConfig) (*partition.Partition, *eval.Result) {
	return repairInSitu(ev, rng, p, mem, false)
}

// memberCount counts the members of subgraph s without materializing them.
func memberCount(p *partition.Partition, s int) int {
	n := 0
	for _, id := range p.Graph().ComputeIDs() {
		if p.Of(id) == s {
			n++
		}
	}
	return n
}

// repairInSitu is RepairInSitu with a switch for the full-recompute
// evaluation path (the delta-vs-full ablation); both paths are bit-identical.
func repairInSitu(ev *eval.Evaluator, rng *rand.Rand, p *partition.Partition, mem hw.MemConfig, fullEval bool) (*partition.Partition, *eval.Result) {
	evaluate := ev.PartitionDelta
	if fullEval {
		evaluate = ev.Partition
	}
	res := evaluate(p, mem)
	for iter := 0; iter < 64 && !res.Feasible(); iter++ {
		split := false
		for _, s := range res.Infeasible {
			if memberCount(p, s) < 2 {
				continue
			}
			if q, err := splitRandom(ev.Graph(), rng, p, s); err == nil && q != p {
				p = q
				split = true
				break
			}
		}
		if !split {
			break
		}
		res = evaluate(p, mem)
	}
	return p, res
}

// crossoverPartition implements the paper's customized crossover
// (§4.4.2, Figure 9b): layers are assigned in topological order; each
// undecided layer picks one parent genome at random and reproduces that
// parent's subgraph containing it. If the reproduced subgraph overlaps
// already-decided layers, we either split out a new subgraph excluding them
// (Child-1) or merge into one of the decided layers' subgraphs (Child-2),
// chosen at random. Falls back to a clone of dad if the blended assignment
// is unschedulable.
func crossoverPartition(g *graph.Graph, rng *rand.Rand, dad, mom *partition.Partition) *partition.Partition {
	sc := getOpScratch(g.Len(), 1)
	defer putOpScratch(sc)
	assign := sc.assign[:0]
	for i := 0; i < g.Len(); i++ {
		assign = append(assign, partition.Unassigned)
	}
	sc.assign = assign
	decided := sc.nodes
	decided.Reset()
	next := 0

	for _, v := range g.ComputeIDs() {
		if decided.Has(v) {
			continue
		}
		src := dad
		if rng.Intn(2) == 1 {
			src = mom
		}
		members := src.AppendMembers(sc.members[:0], src.Of(v))
		sc.members = members
		undecided, overlap := sc.listA[:0], sc.listB[:0]
		for _, m := range members {
			if decided.Has(m) {
				overlap = append(overlap, m)
			} else {
				undecided = append(undecided, m)
			}
		}
		sc.listA, sc.listB = undecided, overlap
		var label int
		if len(overlap) > 0 && rng.Intn(2) == 1 {
			// Merge into the subgraph of a random decided member.
			label = assign[overlap[rng.Intn(len(overlap))]]
		} else {
			label = next
			next++
		}
		for _, m := range undecided {
			assign[m] = label
			decided.Set(m)
		}
	}
	p, err := partition.From(g, assign)
	if err != nil {
		return dad.Clone()
	}
	return p
}

// CrossoverPartition exposes the customized crossover for callers outside the
// GA loop (benchmarks, alternative optimizers pairing Cocco's operators).
func CrossoverPartition(g *graph.Graph, rng *rand.Rand, dad, mom *partition.Partition) *partition.Partition {
	return crossoverPartition(g, rng, dad, mom)
}

// crossoverMem averages the parents' capacities and rounds to the nearest
// candidate (§4.4.2: "each hardware configuration in the offspring is the
// average of its parents and then rounds to the nearest candidate value").
func crossoverMem(ms MemSearch, a, b hw.MemConfig) hw.MemConfig {
	if !ms.Search {
		return ms.Fixed
	}
	out := hw.MemConfig{Kind: ms.Kind}
	out.GlobalBytes = ms.Global.Clamp((a.GlobalBytes + b.GlobalBytes) / 2)
	if ms.Kind == hw.SeparateBuffer {
		out.WeightBytes = ms.Weight.Clamp((a.WeightBytes + b.WeightBytes) / 2)
	}
	return out
}

// mutateModifyNode moves a random node to the subgraph of one of its graph
// neighbors or to a fresh subgraph (Figure 9c). Returns the input partition
// unchanged if no valid move is found within a few attempts.
func mutateModifyNode(g *graph.Graph, rng *rand.Rand, p *partition.Partition) *partition.Partition {
	sc := getOpScratch(g.Len(), p.NumSubgraphs()+1)
	defer putOpScratch(sc)
	nodes := g.ComputeIDs()
	for attempt := 0; attempt < 4; attempt++ {
		u := nodes[rng.Intn(len(nodes))]
		// Candidate targets: subgraphs of u's neighbors, plus a new one.
		seen := sc.labels
		seen.Reset()
		seen.Set(p.Of(u))
		targets := sc.targets[:0]
		addTarget := func(n int) {
			s := p.Of(n)
			if s != partition.Unassigned && !seen.Has(s) {
				seen.Set(s)
				targets = append(targets, s)
			}
		}
		for _, n := range g.PredIDs(u) {
			addTarget(int(n))
		}
		for _, n := range g.SuccIDs(u) {
			addTarget(int(n))
		}
		targets = append(targets, p.NumSubgraphs()) // fresh subgraph
		sc.targets = targets
		t := targets[rng.Intn(len(targets))]
		if q, err := p.TryModifyNode(u, t); err == nil {
			return q
		}
	}
	return p
}

// mutateSplit splits a random multi-node subgraph into two parts along a
// random connected region (Figure 9d).
func mutateSplit(g *graph.Graph, rng *rand.Rand, p *partition.Partition) *partition.Partition {
	sc := getOpScratch(g.Len(), p.NumSubgraphs()+1)
	cands := multiNodeSubgraphs(p, sc)
	if len(cands) == 0 {
		putOpScratch(sc)
		return p
	}
	s := cands[rng.Intn(len(cands))]
	putOpScratch(sc)
	if q, err := splitRandom(g, rng, p, s); err == nil {
		return q
	}
	return p
}

// mutateMerge merges a random subgraph with a random quotient neighbor
// (Figure 9e); retries a few times since merges across a third subgraph's
// path are unschedulable.
func mutateMerge(g *graph.Graph, rng *rand.Rand, p *partition.Partition) *partition.Partition {
	if p.NumSubgraphs() < 2 {
		return p
	}
	sc := getOpScratch(g.Len(), p.NumSubgraphs()+1)
	defer putOpScratch(sc)
	for attempt := 0; attempt < 4; attempt++ {
		a := rng.Intn(p.NumSubgraphs())
		bs := quotientNeighbors(g, p, a, sc)
		if len(bs) == 0 {
			continue
		}
		b := bs[rng.Intn(len(bs))]
		if q, err := p.TryMerge(a, b); err == nil {
			return q
		}
	}
	return p
}

// mutateDSE resamples the memory configuration around the current value
// with a normal distribution (§4.4.3 mutation-DSE).
func mutateDSE(rng *rand.Rand, ms MemSearch, sigmaSteps float64, m hw.MemConfig) hw.MemConfig {
	if !ms.Search {
		return m
	}
	jitter := func(r hw.MemRange, v int64) int64 {
		nv := v + int64(rng.NormFloat64()*sigmaSteps*float64(r.Step))
		return r.Clamp(nv)
	}
	out := hw.MemConfig{Kind: ms.Kind, GlobalBytes: jitter(ms.Global, m.GlobalBytes)}
	if ms.Kind == hw.SeparateBuffer {
		out.WeightBytes = jitter(ms.Weight, m.WeightBytes)
	}
	return out
}

// splitRandom splits subgraph s of p into a random connected region and the
// remainder (the remainder's components are separated by the repair step).
func splitRandom(g *graph.Graph, rng *rand.Rand, p *partition.Partition, s int) (*partition.Partition, error) {
	sc := getOpScratch(g.Len(), 1)
	defer putOpScratch(sc)
	members := p.AppendMembers(sc.members[:0], s)
	sc.members = members
	if len(members) < 2 {
		return p, nil
	}
	inSub := sc.inSub
	inSub.Reset()
	for _, id := range members {
		inSub.Set(id)
	}
	// Grow a connected region of random target size from a random seed.
	target := 1 + rng.Intn(len(members)-1)
	seed := members[rng.Intn(len(members))]
	region := sc.nodes
	region.Reset()
	region.Set(seed)
	regionLen := 1
	frontier := append(sc.frontier[:0], seed)
	for regionLen < target && len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		u := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		// Preds then succs, matching the historical combined-slice order so
		// seeded region growth is unchanged.
		for _, p := range g.PredIDs(u) {
			v := int(p)
			if inSub.Has(v) && !region.Has(v) {
				region.Set(v)
				regionLen++
				frontier = append(frontier, v)
				if regionLen >= target {
					break
				}
			}
		}
		for _, s := range g.SuccIDs(u) {
			v := int(s)
			if regionLen >= target {
				break
			}
			if inSub.Has(v) && !region.Has(v) {
				region.Set(v)
				regionLen++
				frontier = append(frontier, v)
			}
		}
	}
	sc.frontier = frontier
	partA, partB := sc.listA[:0], sc.listB[:0]
	for _, id := range members {
		if region.Has(id) {
			partA = append(partA, id)
		} else {
			partB = append(partB, id)
		}
	}
	sc.listA, sc.listB = partA, partB
	if len(partA) == 0 || len(partB) == 0 {
		return p, nil
	}
	sc.parts = append(sc.parts[:0], partA, partB)
	return p.TrySplit(s, sc.parts)
}

// multiNodeSubgraphs lists subgraph ids with at least two members, ascending,
// into sc.targets.
func multiNodeSubgraphs(p *partition.Partition, sc *opScratch) []int {
	counts := sc.counts
	if cap(counts) < p.NumSubgraphs() {
		counts = make([]int32, p.NumSubgraphs())
	}
	counts = counts[:p.NumSubgraphs()]
	for i := range counts {
		counts[i] = 0
	}
	for _, id := range p.Graph().ComputeIDs() {
		counts[p.Of(id)]++
	}
	sc.counts = counts
	out := sc.targets[:0]
	for s, c := range counts {
		if c >= 2 {
			out = append(out, s)
		}
	}
	sc.targets = out
	return out
}

// quotientNeighbors lists subgraphs connected to s by at least one graph
// edge, in ascending order, into sc.targets.
func quotientNeighbors(g *graph.Graph, p *partition.Partition, s int, sc *opScratch) []int {
	seen := sc.labels
	seen.Reset()
	members := p.AppendMembers(sc.members[:0], s)
	sc.members = members
	mark := func(v int) {
		t := p.Of(v)
		if t != partition.Unassigned && t != s {
			seen.Set(t)
		}
	}
	for _, u := range members {
		for _, v := range g.PredIDs(u) {
			mark(int(v))
		}
		for _, v := range g.SuccIDs(u) {
			mark(int(v))
		}
	}
	out := sc.targets[:0]
	for t := 0; t < p.NumSubgraphs(); t++ {
		if seen.Has(t) {
			out = append(out, t)
		}
	}
	sc.targets = out
	return out
}
