package core

import (
	"math/rand"
	"testing"

	"cocco/internal/eval"
)

// TestChildSeedStreamIndependence pins the seed-derivation contract the
// orchestrator relies on: the per-consumer streams (GA samples, island
// masters, migration, scouts) never collide over overlapping index ranges,
// so no two consumers of one run seed can end up replaying each other's
// randomness.
func TestChildSeedStreamIndependence(t *testing.T) {
	streams := []uint64{StreamSamples, StreamIslands, StreamMigration, StreamScouts}
	const indices = 4096
	for _, seed := range []int64{42, 7, -123456789} {
		seen := make(map[int64][2]uint64, len(streams)*indices)
		for _, s := range streams {
			for i := 0; i < indices; i++ {
				v := ChildSeedStream(seed, s, i)
				if prev, dup := seen[v]; dup {
					t.Fatalf("seed %d: stream %d index %d collides with stream %d index %d (value %d)",
						seed, s, i, prev[0], prev[1], v)
				}
				seen[v] = [2]uint64{s, uint64(i)}
			}
		}
	}
}

// TestChildSeedStreamBackcompat pins that the untagged stream is the
// historical ChildSeed — golden corpora and SA chain seeds depend on it.
func TestChildSeedStreamBackcompat(t *testing.T) {
	for _, seed := range []int64{0, 42, -1} {
		for i := 0; i < 64; i++ {
			if ChildSeed(seed, i) != ChildSeedStream(seed, StreamSamples, i) {
				t.Fatalf("ChildSeed(%d,%d) != ChildSeedStream(StreamSamples)", seed, i)
			}
		}
	}
}

// TestCountingSourceRestore pins the RNG checkpoint contract: a generator
// restored from (seed, draws) continues bit-identically to the original,
// whatever mix of Rand methods produced the draws.
func TestCountingSourceRestore(t *testing.T) {
	src := NewCountingSource(99)
	rng := rand.New(src)
	// A mixed workload touching every draw shape the search uses.
	for i := 0; i < 500; i++ {
		switch i % 5 {
		case 0:
			rng.Intn(17)
		case 1:
			rng.Float64()
		case 2:
			rng.NormFloat64()
		case 3:
			rng.Int63()
		default:
			rng.Uint64()
		}
	}
	restored := rand.New(RestoreSource(99, src.Draws()))
	for i := 0; i < 200; i++ {
		if a, b := rng.Int63(), restored.Int63(); a != b {
			t.Fatalf("draw %d: %d != %d", i, a, b)
		}
		if a, b := rng.Float64(), restored.Float64(); a != b {
			t.Fatalf("draw %d: %v != %v", i, a, b)
		}
	}
}

// TestCountingSourceTransparent pins that wrapping does not perturb the
// stream: a counted source draws exactly what rand.NewSource would.
func TestCountingSourceTransparent(t *testing.T) {
	a := rand.New(NewCountingSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

// TestOptimizerStateRoundTrip runs half a search, exports the state,
// rebuilds a second optimizer from it, and checks both finish identically
// — the in-process version of the orchestrator's checkpoint contract.
func TestOptimizerStateRoundTrip(t *testing.T) {
	ev := testEval(t, "resnet50")
	opt := Options{
		Seed: 3, Workers: 2, Population: 16, MaxSamples: 400,
		Objective: eval.Objective{Metric: eval.MetricEMA},
		Mem:       MemSearch{Fixed: fixedMem()},
	}
	a, err := NewOptimizer(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		a.Step()
	}
	b, err := NewOptimizerFromState(testEval(t, "resnet50"), opt, a.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	for a.Step() {
	}
	for b.Step() {
	}
	bestA, statsA, errA := a.Finish()
	bestB, statsB, errB := b.Finish()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("finish errors differ: %v vs %v", errA, errB)
	}
	if errA != nil {
		return
	}
	if bestA.Cost != bestB.Cost {
		t.Errorf("best cost %v != %v", bestA.Cost, bestB.Cost)
	}
	for id := 0; id < ev.Graph().Len(); id++ {
		if bestA.P.Of(id) != bestB.P.Of(id) {
			t.Fatalf("best assignments differ at node %d", id)
		}
	}
	if statsA.Samples != statsB.Samples || statsA.Generations != statsB.Generations ||
		statsA.FeasibleSamples != statsB.FeasibleSamples || statsA.MemoHits != statsB.MemoHits {
		t.Errorf("stats differ: %+v vs %+v", statsA, statsB)
	}
}
