package baselines

import (
	"math"

	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/partition"
)

// DP implements the Irregular-NN scheduler (§4.2.3): layers are arranged by
// depth (topological order) and a sequential dynamic program chooses cut
// points, so every subgraph consists of layers contiguous in that order —
// the constrained search space the paper criticizes. Ranges that are
// disconnected, unschedulable, or over capacity are skipped (singletons are
// always available, so the DP always completes).
//
// Returns the best partition found and the number of candidate-subgraph
// evaluations spent.
func DP(ev *eval.Evaluator, mem hw.MemConfig, metric eval.Metric) (*partition.Partition, int) {
	g := ev.Graph()
	order := g.ComputeNodes() // fixed topological (depth) order
	n := len(order)
	samples := 0

	const maxRange = 64 // ranges beyond any plausible buffer are pruned

	// cost[i] = best cost of scheduling order[0:i].
	cost := make([]float64, n+1)
	cut := make([]int, n+1) // cut[i] = j such that order[j:i] is the last subgraph
	for i := 1; i <= n; i++ {
		cost[i] = math.Inf(1)
		// Grow the final subgraph backwards from i; stop when its weights
		// alone exceed the capacity (weights grow monotonically with the
		// range, activations do not, so only weights are safe to prune on).
		wgtCap := mem.WeightBytes
		if mem.Kind == hw.SharedBuffer {
			wgtCap = mem.GlobalBytes
		}
		var wgt int64
		for j := i - 1; j >= 0 && i-j <= maxRange; j-- {
			wgt += g.Node(order[j]).WeightBytes()
			if i-j > 1 && wgt > wgtCap {
				break
			}
			members := order[j:i]
			set := make(map[int]bool, len(members))
			for _, id := range members {
				set[id] = true
			}
			if len(members) > 1 && !g.IsConnected(set) {
				continue
			}
			c := ev.Subgraph(members)
			samples++
			if !ev.Fits(c, mem) {
				continue
			}
			if v := cost[j] + ev.SubgraphMetric(c, mem, metric); v < cost[i] {
				cost[i] = v
				cut[i] = j
			}
		}
	}

	// Reconstruct.
	assign := make([]int, g.Len())
	for i := range assign {
		assign[i] = partition.Unassigned
	}
	var cuts []int
	for i := n; i > 0; i = cut[i] {
		cuts = append(cuts, i)
	}
	sub := 0
	start := 0
	for k := len(cuts) - 1; k >= 0; k-- {
		for _, id := range order[start:cuts[k]] {
			assign[id] = sub
		}
		sub++
		start = cuts[k]
	}
	p, err := partition.From(g, assign)
	if err != nil {
		// Contiguous topological ranges always schedule; this is a safety
		// net, not an expected path.
		return partition.Singletons(g), samples
	}
	return p, samples
}
