package baselines

import (
	"errors"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/partition"
	"cocco/internal/tiling"
)

func testEval(t testing.TB, model string) *eval.Evaluator {
	t.Helper()
	return eval.MustNew(models.MustBuild(model), hw.DefaultPlatform(), tiling.DefaultConfig())
}

func paperMem() hw.MemConfig {
	return hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 1024 * hw.KiB, WeightBytes: 1152 * hw.KiB}
}

func metricOf(ev *eval.Evaluator, p *partition.Partition, mem hw.MemConfig, m eval.Metric) float64 {
	return ev.Partition(p, mem).MetricValue(m)
}

func TestGreedyImprovesAndStaysValid(t *testing.T) {
	for _, model := range []string{"vgg16", "googlenet"} {
		ev := testEval(t, model)
		mem := paperMem()
		p, samples := Greedy(ev, mem, eval.MetricEMA)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid result: %v", model, err)
		}
		if samples <= 0 {
			t.Errorf("%s: no samples recorded", model)
		}
		base := metricOf(ev, partition.Singletons(ev.Graph()), mem, eval.MetricEMA)
		got := metricOf(ev, p, mem, eval.MetricEMA)
		if got >= base {
			t.Errorf("%s: greedy %g did not improve on singletons %g", model, got, base)
		}
		// Every subgraph must fit the buffers.
		if res := ev.Partition(p, mem); !res.Feasible() {
			t.Errorf("%s: greedy produced infeasible subgraphs", model)
		}
	}
}

func TestDPValidAndAtLeastGreedyOnChains(t *testing.T) {
	// On a plain chain the DP's contiguity restriction is no restriction at
	// all, so it must match the exact enumeration.
	ev := testEval(t, "vgg16")
	mem := paperMem()
	dpP, _ := DP(ev, mem, eval.MetricEMA)
	if err := dpP.Validate(); err != nil {
		t.Fatal(err)
	}
	enP, _, err := Enumerate(ev, mem, eval.MetricEMA, DefaultEnumOptions())
	if err != nil {
		t.Fatal(err)
	}
	dpCost := metricOf(ev, dpP, mem, eval.MetricEMA)
	enCost := metricOf(ev, enP, mem, eval.MetricEMA)
	if dpCost != enCost {
		t.Errorf("on a plain chain DP (%g) must equal enumeration (%g)", dpCost, enCost)
	}
}

func TestEnumerationIsOptimal(t *testing.T) {
	// The downset DP is exact, so no other method may beat it.
	for _, model := range []string{"vgg16", "resnet50", "googlenet"} {
		ev := testEval(t, model)
		mem := paperMem()
		enP, samples, err := Enumerate(ev, mem, eval.MetricEMA, DefaultEnumOptions())
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if samples <= 0 {
			t.Errorf("%s: no candidate evaluations", model)
		}
		enCost := metricOf(ev, enP, mem, eval.MetricEMA)

		gP, _ := Greedy(ev, mem, eval.MetricEMA)
		dP, _ := DP(ev, mem, eval.MetricEMA)
		if g := metricOf(ev, gP, mem, eval.MetricEMA); g < enCost {
			t.Errorf("%s: greedy %g beat 'exact' enumeration %g", model, g, enCost)
		}
		if d := metricOf(ev, dP, mem, eval.MetricEMA); d < enCost {
			t.Errorf("%s: DP %g beat 'exact' enumeration %g", model, d, enCost)
		}
		coccoBest, _, err := core.Run(ev, core.Options{
			Seed: 3, Population: 60, MaxSamples: 8000,
			Objective: eval.Objective{Metric: eval.MetricEMA},
			Mem:       core.MemSearch{Fixed: mem},
		})
		if err != nil {
			t.Fatal(err)
		}
		if float64(coccoBest.Res.EMABytes) < enCost {
			t.Errorf("%s: Cocco %d beat 'exact' enumeration %g", model, coccoBest.Res.EMABytes, enCost)
		}
	}
}

func TestEnumerationBudgetOnIrregular(t *testing.T) {
	// Randomly wired graphs exhaust the downset budget, as in the paper.
	ev := testEval(t, "randwire-a")
	_, _, err := Enumerate(ev, paperMem(), eval.MetricEMA, DefaultEnumOptions())
	if !errors.Is(err, ErrBudget) {
		t.Errorf("expected ErrBudget, got %v", err)
	}
}

func TestEnumerationRespectsFeasibility(t *testing.T) {
	ev := testEval(t, "resnet50")
	mem := paperMem()
	p, _, err := Enumerate(ev, mem, eval.MetricEMA, DefaultEnumOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := ev.Partition(p, mem); !res.Feasible() {
		t.Error("enumeration returned infeasible subgraphs")
	}
}

func TestSAFindsFeasibleAndDeterministic(t *testing.T) {
	run := func() float64 {
		ev := testEval(t, "googlenet")
		best, err := SA(ev, SAOptions{
			Seed: 5, MaxSamples: 2000,
			Objective: eval.Objective{Metric: eval.MetricEnergy, Alpha: 0.002},
			Mem: core.MemSearch{Search: true, Kind: hw.SeparateBuffer,
				Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !best.Res.Feasible() {
			t.Fatal("SA best infeasible")
		}
		return best.Cost
	}
	if a, b := run(), run(); a != b {
		t.Errorf("SA not deterministic: %g vs %g", a, b)
	}
}

func TestSARestartsDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (float64, []core.TracePoint) {
		ev := testEval(t, "googlenet")
		var trace []core.TracePoint
		best, err := SA(ev, SAOptions{
			Seed: 5, MaxSamples: 2000, Restarts: 4, Workers: workers,
			Objective: eval.Objective{Metric: eval.MetricEnergy, Alpha: 0.002},
			Mem: core.MemSearch{Search: true, Kind: hw.SeparateBuffer,
				Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange()},
			Trace: func(tp core.TracePoint) { trace = append(trace, tp) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return best.Cost, trace
	}
	c1, tr1 := run(1)
	c4, tr4 := run(4)
	if c1 != c4 {
		t.Errorf("best cost differs: Workers=1 %g vs Workers=4 %g", c1, c4)
	}
	if len(tr1) != 2000 || len(tr4) != 2000 {
		t.Fatalf("trace lengths = %d, %d; want 2000 (budget split across restarts)", len(tr1), len(tr4))
	}
	for i := range tr1 {
		if tr1[i] != tr4[i] {
			t.Fatalf("trace[%d] differs: %+v vs %+v", i, tr1[i], tr4[i])
		}
	}
	if tr1[0].Sample != 1 || tr1[1999].Sample != 2000 {
		t.Errorf("trace not rebased globally: first %d, last %d", tr1[0].Sample, tr1[1999].Sample)
	}
}

func TestSAImprovesOverFirstSample(t *testing.T) {
	ev := testEval(t, "resnet50")
	var first, count = 0.0, 0
	best, err := SA(ev, SAOptions{
		Seed: 1, MaxSamples: 3000,
		Objective: eval.Objective{Metric: eval.MetricEMA},
		Mem:       core.MemSearch{Search: false, Fixed: paperMem()},
		Trace: func(tp core.TracePoint) {
			count++
			if count == 1 {
				first = tp.Cost
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3000 {
		t.Errorf("trace count = %d", count)
	}
	if best.Cost > first {
		t.Errorf("SA ended worse (%g) than it started (%g)", best.Cost, first)
	}
}

func TestTwoStepBothMethods(t *testing.T) {
	for _, method := range []SampleMethod{RandomSearch, GridSearch} {
		ev := testEval(t, "googlenet")
		best, err := TwoStep(ev, TwoStepOptions{
			Seed: 2, Method: method, Candidates: 4, SamplesPerCandidate: 500,
			Kind: hw.SeparateBuffer, Global: hw.PaperGlobalRange(), Weight: hw.PaperWeightRange(),
			Objective: eval.Objective{Metric: eval.MetricEnergy, Alpha: 0.002},
		})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if !hw.PaperGlobalRange().Contains(best.Mem.GlobalBytes) {
			t.Errorf("%v: capacity off-grid: %v", method, best.Mem)
		}
		if best.Cost <= 0 {
			t.Errorf("%v: bad cost %g", method, best.Cost)
		}
	}
}

func TestTwoStepSharedKind(t *testing.T) {
	ev := testEval(t, "googlenet")
	best, err := TwoStep(ev, TwoStepOptions{
		Seed: 2, Method: GridSearch, Candidates: 4, SamplesPerCandidate: 400,
		Kind: hw.SharedBuffer, Global: hw.PaperSharedRange(),
		Objective: eval.Objective{Metric: eval.MetricEnergy, Alpha: 0.002},
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Mem.Kind != hw.SharedBuffer || best.Mem.WeightBytes != 0 {
		t.Errorf("wrong kind: %v", best.Mem)
	}
}

func TestSampleMethodString(t *testing.T) {
	if RandomSearch.String() != "RS" || GridSearch.String() != "GS" {
		t.Error("method strings")
	}
}

func TestGreedyRespectsTinyBuffers(t *testing.T) {
	ev := testEval(t, "vgg16")
	tiny := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 2 * hw.KiB, WeightBytes: 2 * hw.KiB}
	p, _ := Greedy(ev, tiny, eval.MetricEMA)
	// Nothing fits together: the result must stay all-singletons.
	if p.NumSubgraphs() != len(ev.Graph().ComputeNodes()) {
		t.Errorf("greedy merged with impossible buffers: %d subgraphs", p.NumSubgraphs())
	}
}
