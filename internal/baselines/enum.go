package baselines

import (
	"errors"
	"math"
	"math/bits"
	"sort"

	"cocco/internal/eval"
	"cocco/internal/graph"
	"cocco/internal/hw"
	"cocco/internal/partition"
)

// ErrBudget is returned when the enumeration-based search exceeds its state
// budget — the paper's "cannot complete within a reasonable search time" for
// the large irregular models.
var ErrBudget = errors.New("baselines: enumeration budget exceeded")

// EnumOptions bounds the exact search.
type EnumOptions struct {
	// MaxDownsets caps the number of downsets (schedulable prefixes) of the
	// DAG. Narrow graphs (plain/residual/inception) have few; randomly
	// wired graphs explode and abort with ErrBudget.
	MaxDownsets int
	// MaxPairs caps the number of downset pairs examined as transitions.
	MaxPairs int
}

// DefaultEnumOptions matches the evaluation setup.
func DefaultEnumOptions() EnumOptions {
	return EnumOptions{MaxDownsets: 30_000, MaxPairs: 30_000_000}
}

// Enumerate implements the enumeration-based optimizer (§4.2.1, after
// Fused-CNN and Jangda et al.'s state-compression dynamic programming) as an
// exact dynamic program over the downset lattice of the DAG:
//
// Any valid partition is exactly a chain ∅ = D₀ ⊂ D₁ ⊂ … ⊂ Dₖ = V of
// downsets (schedulable prefixes) whose successive differences are the
// subgraphs. The DP therefore enumerates all downsets once and relaxes over
// every pair (D ⊂ D') whose difference is a connected, buffer-feasible
// subgraph. The number of downsets grows with the DAG's width, so the plain,
// residual, and inception networks complete quickly while randomly wired
// graphs exhaust the budget — matching the paper's observation.
//
// Returns the optimal partition under the metric, the number of
// candidate-subgraph evaluations, or ErrBudget.
func Enumerate(ev *eval.Evaluator, mem hw.MemConfig, metric eval.Metric, opt EnumOptions) (*partition.Partition, int, error) {
	g := ev.Graph()
	nodes := g.ComputeNodes()
	n := len(nodes)
	idx := make(map[int]int, n)
	for i, id := range nodes {
		idx[id] = i
	}
	words := (n + 63) / 64

	// Compute-only predecessor/successor bit indices.
	preds := make([][]int, n)
	succs := make([][]int, n)
	for i, id := range nodes {
		for _, p := range g.Pred(id) {
			if g.Node(p).Kind != graph.OpInput {
				preds[i] = append(preds[i], idx[p])
			}
		}
		for _, s := range g.Succ(id) {
			succs[i] = append(succs[i], idx[s])
		}
	}

	// Enumerate all downsets by BFS over "add one ready node".
	type dset struct {
		bits []uint64
		pop  int
	}
	has := func(b []uint64, i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
	key := func(b []uint64) string { return string(bitsKey(b)) }

	start := make([]uint64, words)
	all := []dset{{bits: start}}
	index := map[string]int{key(start): 0}
	for qi := 0; qi < len(all); qi++ {
		d := all[qi]
		for i := 0; i < n; i++ {
			if has(d.bits, i) {
				continue
			}
			ready := true
			for _, p := range preds[i] {
				if !has(d.bits, p) {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			nb := make([]uint64, words)
			copy(nb, d.bits)
			nb[i/64] |= 1 << (i % 64)
			k := key(nb)
			if _, ok := index[k]; ok {
				continue
			}
			if len(all) >= opt.MaxDownsets {
				return nil, 0, ErrBudget
			}
			index[k] = len(all)
			all = append(all, dset{bits: nb, pop: d.pop + 1})
		}
	}

	// Sort by popcount descending for a bottom-up DP (cost of the full set
	// is 0; relax towards the empty set).
	order := make([]int, len(all))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return all[order[a]].pop > all[order[b]].pop })

	nodeWeights := make([]int64, n)
	for i, id := range nodes {
		nodeWeights[i] = g.Node(id).WeightBytes()
	}
	wgtCap := mem.WeightBytes
	if mem.Kind == hw.SharedBuffer {
		wgtCap = mem.GlobalBytes
	}

	cost := make([]float64, len(all))
	choice := make([]int, len(all)) // next downset index on the optimal path
	for i := range cost {
		cost[i] = math.Inf(1)
		choice[i] = -1
	}
	fullIdx := -1
	for i, d := range all {
		if d.pop == n {
			fullIdx = i
		}
	}
	if fullIdx < 0 {
		return nil, 0, errors.New("baselines: full downset missing (graph bug)")
	}
	cost[fullIdx] = 0

	samples := 0
	pairs := 0
	diff := make([]uint64, words)
	// Relax: for each smaller downset D, look at all supersets D'.
	for _, di := range order { // descending popcount: supersets first
		d := all[di]
		if d.pop == n {
			continue
		}
		best := math.Inf(1)
		bestTo := -1
		for _, ei := range order {
			e := all[ei]
			if e.pop <= d.pop {
				break // order is descending; no more strict supersets
			}
			pairs++
			if pairs > opt.MaxPairs {
				return nil, 0, ErrBudget
			}
			if math.IsInf(cost[ei], 1) {
				continue
			}
			// D must be a subset of E.
			sub := true
			for w := 0; w < words; w++ {
				if d.bits[w]&^e.bits[w] != 0 {
					sub = false
					break
				}
				diff[w] = e.bits[w] &^ d.bits[w]
			}
			if !sub {
				continue
			}
			// Quick weight prune for multi-node differences.
			size := 0
			var wgt int64
			for w := 0; w < words; w++ {
				size += bits.OnesCount64(diff[w])
			}
			members := make([]int, 0, size)
			for w := 0; w < words; w++ {
				m := diff[w]
				for m != 0 {
					i := w*64 + bits.TrailingZeros64(m)
					members = append(members, nodes[i])
					wgt += nodeWeights[i]
					m &= m - 1
				}
			}
			if size > 1 && wgt > wgtCap {
				continue
			}
			set := make(map[int]bool, size)
			for _, id := range members {
				set[id] = true
			}
			if size > 1 && !g.IsConnected(set) {
				continue
			}
			c := ev.Subgraph(members)
			samples++
			if !ev.Fits(c, mem) {
				continue
			}
			if v := ev.SubgraphMetric(c, mem, metric) + cost[ei]; v < best {
				best = v
				bestTo = ei
			}
		}
		cost[di] = best
		choice[di] = bestTo
	}

	emptyIdx := index[key(start)]
	if math.IsInf(cost[emptyIdx], 1) {
		return nil, samples, errors.New("baselines: no feasible partition (unexpected)")
	}

	// Reconstruct the subgraph chain.
	assign := make([]int, g.Len())
	for i := range assign {
		assign[i] = partition.Unassigned
	}
	cur := emptyIdx
	sub := 0
	for cur != fullIdx {
		next := choice[cur]
		if next < 0 {
			return nil, samples, errors.New("baselines: broken DP path")
		}
		for w := 0; w < words; w++ {
			m := all[next].bits[w] &^ all[cur].bits[w]
			for m != 0 {
				i := w*64 + bits.TrailingZeros64(m)
				assign[nodes[i]] = sub
				m &= m - 1
			}
		}
		sub++
		cur = next
	}
	p, err := partition.From(g, assign)
	if err != nil {
		return nil, samples, err
	}
	return p, samples, nil
}

func bitsKey(b []uint64) []byte {
	out := make([]byte, len(b)*8)
	for i, w := range b {
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(w >> (8 * j))
		}
	}
	return out
}
