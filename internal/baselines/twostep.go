package baselines

import (
	"fmt"
	"math/rand"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
)

// SampleMethod selects how the two-step scheme picks capacity candidates.
type SampleMethod int

const (
	// RandomSearch samples capacities uniformly at random (RS+GA).
	RandomSearch SampleMethod = iota
	// GridSearch enumerates a coarse grid deterministically from large to
	// small capacities (GS+GA), as in §5.3.2.
	GridSearch
)

func (m SampleMethod) String() string {
	if m == GridSearch {
		return "GS"
	}
	return "RS"
}

// TwoStepOptions configures the decoupled capacity-then-partition scheme.
type TwoStepOptions struct {
	Seed int64
	// Workers is the evaluation parallelism handed to each per-candidate
	// GA (0 = runtime.NumCPU()); it never changes results.
	Workers int
	// Method selects RS or GS capacity sampling.
	Method SampleMethod
	// Candidates is how many capacity configurations to try.
	Candidates int
	// SamplesPerCandidate is the partition-GA budget per capacity
	// (the paper evaluates 5,000 samples per candidate).
	SamplesPerCandidate int
	// Kind, Global, Weight define the capacity space.
	Kind           hw.BufferKind
	Global, Weight hw.MemRange
	// Objective must have Alpha > 0 (Formula 2) so capacities compete.
	Objective eval.Objective
	// Trace receives every underlying GA sample with a global sample index.
	Trace func(core.TracePoint)
}

func (o TwoStepOptions) withDefaults() TwoStepOptions {
	if o.Candidates <= 0 {
		o.Candidates = 10
	}
	if o.SamplesPerCandidate <= 0 {
		o.SamplesPerCandidate = 5_000
	}
	return o
}

// TwoStep runs the two-step scheme: sample capacity candidates, run a
// partition-only GA under each, and keep the best candidate under the
// co-exploration cost. Returns the best genome found.
func TwoStep(ev *eval.Evaluator, opt TwoStepOptions) (*core.Genome, error) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	cands := opt.capacityCandidates(rng)
	if len(cands) == 0 {
		return nil, fmt.Errorf("baselines: no capacity candidates")
	}

	var best *core.Genome
	sampleBase := 0
	for ci, mem := range cands {
		gaOpt := core.Options{
			Seed:       opt.Seed + int64(ci) + 1,
			Workers:    opt.Workers,
			MaxSamples: opt.SamplesPerCandidate,
			Objective:  opt.Objective,
			Mem:        core.MemSearch{Search: false, Fixed: mem},
		}
		if opt.Trace != nil {
			base := sampleBase
			gaOpt.Trace = func(tp core.TracePoint) {
				tp.Sample += base
				// Report the two-step cost (Formula 2 with this candidate's
				// capacity) so curves are comparable with co-optimization.
				if tp.Feasible && opt.Objective.Alpha > 0 {
					tp.Cost = float64(mem.TotalBytes()) + opt.Objective.Alpha*tp.Metric
				}
				opt.Trace(tp)
			}
		}
		g, _, err := core.Run(ev, gaOpt)
		sampleBase += opt.SamplesPerCandidate
		if err != nil {
			continue // this capacity admitted no feasible partition
		}
		cost := opt.Objective.Alpha * g.Res.MetricValue(opt.Objective.Metric)
		cost += float64(mem.TotalBytes())
		g.Cost = cost
		if best == nil || cost < best.Cost {
			best = g
		}
	}
	if best == nil {
		return nil, fmt.Errorf("baselines: two-step found no feasible solution")
	}
	return best, nil
}

// capacityCandidates draws the candidate list per the sampling method.
func (o TwoStepOptions) capacityCandidates(rng *rand.Rand) []hw.MemConfig {
	var out []hw.MemConfig
	switch o.Method {
	case GridSearch:
		// Coarse deterministic grid, large → small.
		g := o.Global.Candidates()
		if o.Kind == hw.SharedBuffer {
			for i := 0; i < o.Candidates && i < len(g); i++ {
				idx := len(g) - 1 - i*maxInt(len(g)/o.Candidates, 1)
				if idx < 0 {
					break
				}
				out = append(out, hw.MemConfig{Kind: hw.SharedBuffer, GlobalBytes: g[idx]})
			}
			return out
		}
		w := o.Weight.Candidates()
		// Walk both dimensions together from large to small.
		n := o.Candidates
		for i := 0; i < n; i++ {
			gi := len(g) - 1 - i*maxInt(len(g)/n, 1)
			wi := len(w) - 1 - i*maxInt(len(w)/n, 1)
			if gi < 0 || wi < 0 {
				break
			}
			out = append(out, hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: g[gi], WeightBytes: w[wi]})
		}
	default: // RandomSearch
		for i := 0; i < o.Candidates; i++ {
			ms := core.MemSearch{Search: true, Kind: o.Kind, Global: o.Global, Weight: o.Weight}
			out = append(out, core.RandomMemConfig(rng, ms))
		}
	}
	return out
}
