// Package baselines implements the four comparison optimizers of §4.2 —
// the Halide-style greedy merger, the Irregular-NN depth-order dynamic
// program, the exact enumeration-based search, and simulated annealing —
// plus the two-step (RS+GA / GS+GA) design-space-exploration schemes of
// §5.3.
package baselines

import (
	"cocco/internal/eval"
	"cocco/internal/graph"
	"cocco/internal/hw"
	"cocco/internal/partition"
)

// Greedy implements Halide's function-grouping heuristic (§4.2.2): start
// from singleton subgraphs and iteratively merge the adjacent pair with the
// greatest positive benefit until no merge helps. Merges that exceed the
// fixed buffer capacity or are unschedulable are skipped. Returns the final
// partition and the number of candidate evaluations ("samples") spent.
// Member lists and neighbor sets go through reusable scratch buffers
// (AppendMembers + Marks) — the O(S²) merge scan used to allocate a fresh
// member slice and set per candidate pair.
func Greedy(ev *eval.Evaluator, mem hw.MemConfig, metric eval.Metric) (*partition.Partition, int) {
	p := partition.Singletons(ev.Graph())
	samples := 0

	subCost := func(members []int) float64 {
		samples++
		return ev.SubgraphMetric(ev.Subgraph(members), mem, metric)
	}

	nbrSeen := graph.NewMarks(p.NumSubgraphs() + 1)
	var membersA, membersB, mergedMembers, neighbors []int
	for {
		type move struct {
			a, b    int
			benefit float64
			merged  *partition.Partition
		}
		var best *move
		tried := map[[2]int]bool{}
		for a := 0; a < p.NumSubgraphs(); a++ {
			neighbors = quotientNeighbors(ev, p, a, nbrSeen, neighbors[:0])
			for _, b := range neighbors {
				key := [2]int{minInt(a, b), maxInt(a, b)}
				if tried[key] {
					continue
				}
				tried[key] = true
				merged, err := p.TryMerge(key[0], key[1])
				if err != nil {
					continue
				}
				membersA = p.AppendMembers(membersA[:0], key[0])
				membersB = p.AppendMembers(membersB[:0], key[1])
				// Identify the merged subgraph: the one containing a's
				// first member after renumbering.
				ms := merged.Of(membersA[0])
				mergedMembers = merged.AppendMembers(mergedMembers[:0], ms)
				mc := ev.Subgraph(mergedMembers)
				if !ev.Fits(mc, mem) {
					continue
				}
				benefit := subCost(membersA) + subCost(membersB) - subCost(mergedMembers)
				if benefit > 0 && (best == nil || benefit > best.benefit) {
					best = &move{a: key[0], b: key[1], benefit: benefit, merged: merged}
				}
			}
		}
		if best == nil {
			return p, samples
		}
		p = best.merged
	}
}

// quotientNeighbors appends the subgraphs adjacent to s in the quotient graph
// to out, in first-contact order, using the caller's Marks for deduplication.
func quotientNeighbors(ev *eval.Evaluator, p *partition.Partition, s int, seen *graph.Marks, out []int) []int {
	g := ev.Graph()
	seen.Grow(p.NumSubgraphs())
	seen.Reset()
	for _, u := range g.ComputeIDs() {
		if p.Of(u) != s {
			continue
		}
		for _, v := range g.PredIDs(u) {
			t := p.Of(int(v))
			if t != partition.Unassigned && t != s && !seen.Has(t) {
				seen.Set(t)
				out = append(out, t)
			}
		}
		for _, v := range g.SuccIDs(u) {
			t := p.Of(int(v))
			if t != partition.Unassigned && t != s && !seen.Has(t) {
				seen.Set(t)
				out = append(out, t)
			}
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
