// Package baselines implements the four comparison optimizers of §4.2 —
// the Halide-style greedy merger, the Irregular-NN depth-order dynamic
// program, the exact enumeration-based search, and simulated annealing —
// plus the two-step (RS+GA / GS+GA) design-space-exploration schemes of
// §5.3.
package baselines

import (
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/partition"
)

// Greedy implements Halide's function-grouping heuristic (§4.2.2): start
// from singleton subgraphs and iteratively merge the adjacent pair with the
// greatest positive benefit until no merge helps. Merges that exceed the
// fixed buffer capacity or are unschedulable are skipped. Returns the final
// partition and the number of candidate evaluations ("samples") spent.
func Greedy(ev *eval.Evaluator, mem hw.MemConfig, metric eval.Metric) (*partition.Partition, int) {
	p := partition.Singletons(ev.Graph())
	samples := 0

	subCost := func(members []int) float64 {
		samples++
		return ev.SubgraphMetric(ev.Subgraph(members), mem, metric)
	}

	for {
		type move struct {
			a, b    int
			benefit float64
			merged  *partition.Partition
		}
		var best *move
		tried := map[[2]int]bool{}
		for a := 0; a < p.NumSubgraphs(); a++ {
			for _, b := range quotientNeighbors(ev, p, a) {
				key := [2]int{minInt(a, b), maxInt(a, b)}
				if tried[key] {
					continue
				}
				tried[key] = true
				merged, err := p.TryMerge(key[0], key[1])
				if err != nil {
					continue
				}
				// Identify the merged subgraph: the one containing a's
				// first member after renumbering.
				ms := merged.Of(p.Members(key[0])[0])
				mergedMembers := merged.Members(ms)
				mc := ev.Subgraph(mergedMembers)
				if !ev.Fits(mc, mem) {
					continue
				}
				benefit := subCost(p.Members(key[0])) + subCost(p.Members(key[1])) - subCost(mergedMembers)
				if benefit > 0 && (best == nil || benefit > best.benefit) {
					best = &move{a: key[0], b: key[1], benefit: benefit, merged: merged}
				}
			}
		}
		if best == nil {
			return p, samples
		}
		p = best.merged
	}
}

// quotientNeighbors lists subgraphs adjacent to s in the quotient graph.
func quotientNeighbors(ev *eval.Evaluator, p *partition.Partition, s int) []int {
	g := ev.Graph()
	seen := map[int]bool{}
	var out []int
	for _, u := range p.Members(s) {
		for _, v := range append(append([]int(nil), g.Pred(u)...), g.Succ(u)...) {
			t := p.Of(v)
			if t != partition.Unassigned && t != s && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
