package baselines

import (
	"math"
	"math/rand"
	"runtime"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/graph"
)

// SAOptions configures the simulated-annealing co-optimizer (§4.2.4), which
// uses Cocco's mutation operators as its neighborhood moves.
type SAOptions struct {
	Seed       int64
	MaxSamples int
	// Restarts is the number of independent annealing chains (default 1).
	// The sample budget is split evenly across chains and the best chain
	// wins, with ties broken toward the lowest chain index.
	Restarts int
	// Workers is the number of chains annealed concurrently (default
	// runtime.NumCPU()); with the default single restart the search is
	// inherently serial and Workers has no effect. Each chain's RNG is
	// derived from (Seed, chain index) and trace points are replayed in
	// chain order once every chain has finished, so results are
	// bit-identical for every worker count.
	Workers int
	// InitialTemp and FinalTemp bound the geometric cooling schedule; the
	// temperature is expressed as a fraction of the current cost so the
	// schedule is scale-free across metrics.
	InitialTemp, FinalTemp float64
	Objective              eval.Objective
	Mem                    core.MemSearch
	Trace                  func(core.TracePoint)
}

// DefaultSAInitialTemp and DefaultSAFinalTemp bound the default geometric
// cooling schedule, as fractions of the current cost. Exported so the
// orchestrator's SA scout anneals with the same schedule as this baseline.
const (
	DefaultSAInitialTemp = 0.10
	DefaultSAFinalTemp   = 0.0005
)

func (o SAOptions) withDefaults() SAOptions {
	if o.MaxSamples <= 0 {
		o.MaxSamples = 50_000
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.InitialTemp == 0 {
		o.InitialTemp = DefaultSAInitialTemp
	}
	if o.FinalTemp == 0 {
		o.FinalTemp = DefaultSAFinalTemp
	}
	return o
}

// chainSeed derives chain i's RNG seed. Chain 0 keeps the run seed so a
// single-restart SA reproduces the historical single-chain trajectory;
// later chains get uncorrelated streams via core.ChildSeed.
func chainSeed(seed int64, chain int) int64 {
	if chain == 0 {
		return seed
	}
	return core.ChildSeed(seed, chain)
}

// SA runs simulated annealing and returns the best genome found across all
// restart chains.
func SA(ev *eval.Evaluator, opt SAOptions) (*core.Genome, error) {
	opt = opt.withDefaults()

	// Split the budget evenly; earlier chains absorb the remainder.
	budgets := make([]int, 0, opt.Restarts)
	per, rem := opt.MaxSamples/opt.Restarts, opt.MaxSamples%opt.Restarts
	for i := 0; i < opt.Restarts; i++ {
		b := per
		if i < rem {
			b++
		}
		if b > 0 {
			budgets = append(budgets, b)
		}
	}

	// Single chain (the default): stream trace points directly to the
	// caller as the search runs, exactly as the serial SA always did.
	if len(budgets) == 1 {
		best := saChain(ev, opt, chainSeed(opt.Seed, 0), budgets[0], opt.Trace)
		if math.IsInf(best.Cost, 1) {
			return best, errInfeasibleSA
		}
		return best, nil
	}

	// The restart loop: chains are independent, so they run on a worker
	// pool. Trace points are buffered per chain and replayed in chain order
	// below, keeping the observable stream deterministic.
	bests := make([]*core.Genome, len(budgets))
	traces := make([][]core.TracePoint, len(budgets))
	core.ParallelFor(len(budgets), opt.Workers, func(i int) {
		var sink func(core.TracePoint)
		if opt.Trace != nil {
			sink = func(tp core.TracePoint) { traces[i] = append(traces[i], tp) }
		}
		bests[i] = saChain(ev, opt, chainSeed(opt.Seed, i), budgets[i], sink)
	})

	var best *core.Genome
	sampleBase := 0
	for i, b := range bests {
		if opt.Trace != nil {
			for _, tp := range traces[i] {
				tp.Sample += sampleBase
				opt.Trace(tp)
			}
		}
		sampleBase += budgets[i]
		if best == nil || b.Cost < best.Cost {
			best = b
		}
	}
	if best == nil || math.IsInf(best.Cost, 1) {
		return best, errInfeasibleSA
	}
	return best, nil
}

// saChain anneals one chain for the given sample budget, reporting every
// evaluation to sink (if non-nil) with chain-local 1-based sample indices;
// SA rebases them globally for multi-restart runs.
func saChain(ev *eval.Evaluator, opt SAOptions, seed int64, budget int, sink func(core.TracePoint)) *core.Genome {
	rng := rand.New(rand.NewSource(seed))

	cost := func(g *core.Genome) float64 {
		if !g.Res.Feasible() {
			return math.Inf(1)
		}
		c := g.Res.MetricValue(opt.Objective.Metric)
		if opt.Objective.Alpha > 0 {
			return float64(g.Mem.TotalBytes()) + opt.Objective.Alpha*c
		}
		return c
	}

	evaluate := func(gnm *core.Genome, sample int) {
		gnm.P, gnm.Res = core.RepairInSitu(ev, rng, gnm.P, gnm.Mem)
		gnm.Cost = cost(gnm)
		if sink != nil {
			sink(core.TracePoint{
				Sample:   sample,
				Cost:     gnm.Cost,
				Metric:   gnm.Res.MetricValue(opt.Objective.Metric),
				Mem:      gnm.Mem,
				Feasible: gnm.Res.Feasible(),
			})
		}
	}

	cur := &core.Genome{
		P:   core.RandomPartition(ev.Graph(), rng, 0.35),
		Mem: core.RandomMemConfig(rng, opt.Mem),
	}
	evaluate(cur, 1)
	best := cur.Clone()

	cooling := math.Pow(opt.FinalTemp/opt.InitialTemp, 1/float64(maxInt(budget-1, 1)))
	temp := opt.InitialTemp
	for s := 2; s <= budget; s++ {
		cur = AnnealStep(ev.Graph(), rng, opt.Mem, cur, temp,
			func(g *core.Genome) { evaluate(g, s) })
		if cur.Cost < best.Cost {
			best = cur.Clone()
		}
		temp *= cooling
	}
	return best
}

// AnnealStep advances one simulated-annealing chain by one sample: it draws
// one random move from cur (a partition mutation, or mutation-DSE when the
// hardware is searchable), evaluates the candidate through the provided
// closure, and returns the accepted state — the candidate on improvement or
// by the Metropolis rule on the relative cost delta at temp, cur otherwise.
// Infeasible candidates are never accepted, whichever sentinel the caller's
// cost function uses (math.Inf here, core.InfeasibleCost in the
// orchestrator's scout — the finite sentinel family is itself ≥
// core.InfeasibleCost). Shared by saChain and the island orchestrator's SA
// scout so the two cannot drift apart.
func AnnealStep(g *graph.Graph, rng *rand.Rand, ms core.MemSearch, cur *core.Genome, temp float64, evaluate func(*core.Genome)) *core.Genome {
	cand := cur.Clone()
	moves := 3
	if ms.Search {
		moves = 4
	}
	if rng.Intn(moves) == 3 {
		cand.Mem = core.MutateMemConfig(rng, ms, 2, cand.Mem)
	} else {
		cand.P = core.ApplyRandomMutation(g, rng, cand.P)
	}
	evaluate(cand)

	switch {
	case cand.Cost >= core.InfeasibleCost:
		// never accept infeasible
	case cand.Cost <= cur.Cost:
		return cand
	default:
		rel := (cand.Cost - cur.Cost) / cur.Cost
		if rng.Float64() < math.Exp(-rel/temp) {
			return cand
		}
	}
	return cur
}

var errInfeasibleSA = errSA("baselines: SA found no feasible solution")

type errSA string

func (e errSA) Error() string { return string(e) }
