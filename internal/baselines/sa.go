package baselines

import (
	"math"
	"math/rand"

	"cocco/internal/core"
	"cocco/internal/eval"
)

// SAOptions configures the simulated-annealing co-optimizer (§4.2.4), which
// uses Cocco's mutation operators as its neighborhood moves.
type SAOptions struct {
	Seed       int64
	MaxSamples int
	// InitialTemp and FinalTemp bound the geometric cooling schedule; the
	// temperature is expressed as a fraction of the current cost so the
	// schedule is scale-free across metrics.
	InitialTemp, FinalTemp float64
	Objective              eval.Objective
	Mem                    core.MemSearch
	Trace                  func(core.TracePoint)
}

func (o SAOptions) withDefaults() SAOptions {
	if o.MaxSamples <= 0 {
		o.MaxSamples = 50_000
	}
	if o.InitialTemp == 0 {
		o.InitialTemp = 0.10
	}
	if o.FinalTemp == 0 {
		o.FinalTemp = 0.0005
	}
	return o
}

// SA runs simulated annealing and returns the best genome found.
func SA(ev *eval.Evaluator, opt SAOptions) (*core.Genome, error) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	cost := func(g *core.Genome) float64 {
		if !g.Res.Feasible() {
			return math.Inf(1)
		}
		c := g.Res.MetricValue(opt.Objective.Metric)
		if opt.Objective.Alpha > 0 {
			return float64(g.Mem.TotalBytes()) + opt.Objective.Alpha*c
		}
		return c
	}

	evaluate := func(gnm *core.Genome, sample int) {
		gnm.P, gnm.Res = core.RepairInSitu(ev, rng, gnm.P, gnm.Mem)
		gnm.Cost = cost(gnm)
		if opt.Trace != nil {
			opt.Trace(core.TracePoint{
				Sample:   sample,
				Cost:     gnm.Cost,
				Metric:   gnm.Res.MetricValue(opt.Objective.Metric),
				Mem:      gnm.Mem,
				Feasible: gnm.Res.Feasible(),
			})
		}
	}

	cur := &core.Genome{
		P:   core.RandomPartition(ev.Graph(), rng, 0.35),
		Mem: core.RandomMemConfig(rng, opt.Mem),
	}
	evaluate(cur, 1)
	best := cur.Clone()

	cooling := math.Pow(opt.FinalTemp/opt.InitialTemp, 1/float64(maxInt(opt.MaxSamples-1, 1)))
	temp := opt.InitialTemp
	for s := 2; s <= opt.MaxSamples; s++ {
		cand := cur.Clone()
		// One random move: a partition mutation, or mutation-DSE when the
		// hardware is searchable.
		moves := 3
		if opt.Mem.Search {
			moves = 4
		}
		if rng.Intn(moves) == 3 {
			cand.Mem = core.MutateMemConfig(rng, opt.Mem, 2, cand.Mem)
		} else {
			cand.P = core.ApplyRandomMutation(ev.Graph(), rng, cand.P)
		}
		evaluate(cand, s)

		accept := false
		switch {
		case math.IsInf(cand.Cost, 1):
			// never accept infeasible
		case cand.Cost <= cur.Cost:
			accept = true
		default:
			rel := (cand.Cost - cur.Cost) / cur.Cost
			accept = rng.Float64() < math.Exp(-rel/temp)
		}
		if accept {
			cur = cand
			if cur.Cost < best.Cost {
				best = cur.Clone()
			}
		}
		temp *= cooling
	}
	if math.IsInf(best.Cost, 1) {
		return best, errInfeasibleSA
	}
	return best, nil
}

var errInfeasibleSA = errSA("baselines: SA found no feasible solution")

type errSA string

func (e errSA) Error() string { return string(e) }
