// Package tiling implements the paper's subgraph execution scheme (§3.1):
// the consumption-centric three-stage flow that derives, for every node of a
// subgraph, the memory update offset Δ, the buffer allocation size x, and the
// number of memory updates per subgraph-level elementary operation
// (upd_num), plus the execution sequence.
//
// The derivation is the paper's 1D formulation applied independently to the
// height and width dimensions (the paper notes the 2D case is analogous).
// All algebra is exact (integer LCM/GCD over int64); clamping to finite
// tensor extents happens only when footprints are computed.
//
// The package also implements the production-centric scheme of Figure 4(a)
// as a baseline, used by the ablation benchmarks to quantify how much buffer
// the consumption-centric flow saves.
package tiling

import (
	"fmt"
	"sort"

	"cocco/internal/graph"
)

// Config controls stage-1: the tile size assigned to the subgraph's output
// nodes by the single-layer mapper. The paper picks small output tiles so a
// larger subgraph fits ("the tile size tends to be smaller").
type Config struct {
	// BaseTileH and BaseTileW are the stage-1 output-node tile sizes
	// (Δ = x for output nodes). Must be ≥ 1.
	BaseTileH, BaseTileW int
}

// DefaultConfig matches the paper's worked example granularity.
func DefaultConfig() Config { return Config{BaseTileH: 2, BaseTileW: 2} }

// String renders the config in the "HxW" form ParseConfig accepts.
func (c Config) String() string { return fmt.Sprintf("%dx%d", c.BaseTileH, c.BaseTileW) }

// ParseConfig parses a "HxW" base-tile spec (e.g. "2x2", "4x2") into a
// Config. It is the CLI form of the tiling configuration: cmd/cocco and
// cmd/dse thread a -tiling flag through it.
func ParseConfig(s string) (Config, error) {
	var c Config
	if _, err := fmt.Sscanf(s, "%dx%d", &c.BaseTileH, &c.BaseTileW); err != nil {
		return c, fmt.Errorf("tiling: config %q: want HxW (e.g. 2x2)", s)
	}
	if err := c.validate(); err != nil {
		return c, err
	}
	return c, nil
}

func (c Config) validate() error {
	if c.BaseTileH < 1 || c.BaseTileW < 1 {
		return fmt.Errorf("tiling: base tile must be >= 1, got %dx%d", c.BaseTileH, c.BaseTileW)
	}
	return nil
}

// NodeScheme is the derived execution behavior of one node within a
// subgraph elementary operation.
type NodeScheme struct {
	// ID is the graph node id.
	ID int
	// External marks producers that live outside the subgraph (the paper's
	// negative-numbered nodes): their data is loaded from DRAM into the
	// buffer rather than computed locally.
	External bool
	// Output marks nodes whose results leave the subgraph (model outputs or
	// inputs of later subgraphs); they are written back to DRAM.
	Output bool

	// DeltaH/DeltaW are the per-dimension update offsets (Δ): the number of
	// new rows/columns materialized per memory update of this node.
	DeltaH, DeltaW int64
	// TileH/TileW are the per-dimension allocation sizes (x): how many
	// rows/columns of this node's data must be resident.
	TileH, TileW int64
	// UpdH/UpdW are the per-dimension update counts per elementary
	// operation (upd_num), in the minimal co-prime solution.
	UpdH, UpdW int64
}

// Scheme is the full execution scheme of one subgraph.
type Scheme struct {
	// Nodes maps node id → derived scheme, covering subgraph members and
	// their external producers.
	Nodes map[int]*NodeScheme
	// Order is the execution sequence of member nodes (topological).
	Order []int
}

// Derive runs the three-stage flow for the subgraph consisting of `members`
// (compute-node ids of g). Produces schemes for all members plus every
// external producer feeding the subgraph.
//
// Stage-1 assigns cfg's base tile to output nodes; stage-2 walks members in
// reverse topological order computing Δ via LCM alignment and x via the
// max-consumption rule; stage-3 solves the co-prime upd_num system.
//
// Derive builds a fresh Deriver per call; callers on a hot path should hold
// (or pool) a Deriver and reuse its scratch buffers instead.
func Derive(g *graph.Graph, members []int, cfg Config) (*Scheme, error) {
	d, err := NewDeriver(g, cfg)
	if err != nil {
		return nil, err
	}
	return d.Derive(members)
}

type ratVal struct{ num, den int64 }

func reduceRat(num, den int64) ratVal {
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd64(abs64(num), den)
	if g == 0 {
		return ratVal{0, 1}
	}
	return ratVal{num / g, den / g}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd64(a, b) * b
}

// clamp returns min(v, max(1, limit)).
func clamp(v, limit int64) int64 {
	if limit < 1 {
		limit = 1
	}
	if v > limit {
		return limit
	}
	return v
}

// FootprintBytes returns the on-chip activation bytes required by node id
// under this scheme: the MAIN region (tile, clamped to the tensor extent)
// plus the SIDE region reserving the (x−Δ) horizontally overlapping rows for
// the remaining width, per Figure 7. Output-only nodes need no SIDE region.
func (s *Scheme) FootprintBytes(g *graph.Graph, id int) int64 {
	ns := s.Nodes[id]
	n := g.Node(id)
	h := clamp(ns.TileH, int64(n.OutH))
	w := clamp(ns.TileW, int64(n.OutW))
	main := h * w * int64(n.OutC)
	var side int64
	// SIDE is only needed when the node's data is consumed inside the
	// subgraph across sliding tiles (externals and intermediates), and only
	// when the tile does not already span the full width.
	consumedInside := ns.External || !ns.Output || hasInternalConsumer(g, s, id)
	if consumedInside && w < int64(n.OutW) {
		overlapRows := ns.TileH - ns.DeltaH
		if overlapRows < 0 {
			overlapRows = 0
		}
		overlapRows = clamp(overlapRows, int64(n.OutH))
		side = overlapRows * (int64(n.OutW) - w) * int64(n.OutC)
	}
	return main + side
}

func hasInternalConsumer(g *graph.Graph, s *Scheme, id int) bool {
	for _, c := range g.Succ(id) {
		if ns, ok := s.Nodes[c]; ok && !ns.External {
			return true
		}
	}
	return false
}

// TotalFootprintBytes sums FootprintBytes over every node in the scheme
// (members and external producers): the global-buffer requirement of the
// subgraph's activations.
func (s *Scheme) TotalFootprintBytes(g *graph.Graph) int64 {
	var t int64
	ids := make([]int, 0, len(s.Nodes))
	for id := range s.Nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t += s.FootprintBytes(g, id)
	}
	return t
}

// TotalMainBytes sums only the MAIN-region (resident tile) bytes over every
// node of the scheme, excluding SIDE reservations. This is the quantity
// comparable with ProductionFootprintBytes: the sliding-overlap SIDE
// reservation is orthogonal to the production-vs-consumption contrast of
// Figure 4, which is about tile over-allocation.
func (s *Scheme) TotalMainBytes(g *graph.Graph) int64 {
	var t int64
	for id, ns := range s.Nodes {
		n := g.Node(id)
		h := clamp(ns.TileH, int64(n.OutH))
		w := clamp(ns.TileW, int64(n.OutW))
		t += h * w * int64(n.OutC)
	}
	return t
}

// ProductionFootprintBytes computes the resident-tile buffer requirement of
// the production-centric scheme of Figure 4(a) for the same subgraph and the
// same per-step output (the consumption scheme's base output tiles).
//
// Without the Δ/LCM sliding alignment there is no retained reuse across
// steps, so each step needs the full nested backward window at every input
// (e.g. the 5×5 input of the paper's example), and every node then eagerly
// produces — and must buffer — everything that window allows (Node(1)'s 5×5
// instead of the 3×3 actually consumed). Compare with Scheme.TotalMainBytes.
func ProductionFootprintBytes(g *graph.Graph, members []int, cons *Scheme) int64 {
	member := make(map[int]bool, len(members))
	for _, id := range members {
		member[id] = true
	}
	ids := make([]int, 0, len(cons.Nodes))
	for id := range cons.Nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Backward pass: nested windows. need[id] = rows/cols of id's output
	// required to produce one base output tile everywhere downstream.
	type dims struct{ h, w int64 }
	need := map[int]dims{}
	for i := len(ids) - 1; i >= 0; i-- {
		id := ids[i]
		ns := cons.Nodes[id]
		var d dims
		hasInternal := false
		for _, c := range g.Succ(id) {
			cns, ok := cons.Nodes[c]
			if !ok || cns.External {
				continue
			}
			hasInternal = true
			nc := g.Node(c)
			cd := need[c]
			h := int64(nc.KernelH) + (cd.h-1)*int64(nc.StrideH)
			w := int64(nc.KernelW) + (cd.w-1)*int64(nc.StrideW)
			if h > d.h {
				d.h = h
			}
			if w > d.w {
				d.w = w
			}
		}
		if !hasInternal {
			// Output nodes produce the same base tile as the consumption
			// scheme (equal per-step work). ns.DeltaH equals the base for
			// nodes without internal consumers.
			d = dims{ns.DeltaH, ns.DeltaW}
		}
		need[id] = d
	}

	// Forward pass: eager production from the nested input windows.
	tiles := map[int]dims{}
	var total int64
	for _, id := range ids {
		ns := cons.Nodes[id]
		n := g.Node(id)
		var d dims
		if ns.External {
			d = need[id]
		} else {
			d = dims{1 << 62, 1 << 62}
			for _, p := range g.Pred(id) {
				pt, ok := tiles[p]
				if !ok {
					continue
				}
				h := (pt.h-int64(n.KernelH))/int64(n.StrideH) + 1
				w := (pt.w-int64(n.KernelW))/int64(n.StrideW) + 1
				if h < d.h {
					d.h = h
				}
				if w < d.w {
					d.w = w
				}
			}
		}
		if d.h < 1 {
			d.h = 1
		}
		if d.w < 1 {
			d.w = 1
		}
		d.h = clamp(d.h, int64(n.OutH))
		d.w = clamp(d.w, int64(n.OutW))
		tiles[id] = d
		total += d.h * d.w * int64(n.OutC)
	}
	return total
}
