package tiling

import (
	"math/rand"
	"testing"

	"cocco/internal/graph"
	"cocco/internal/testutil"
)

// TestDeriveInvariantsOnRandomGraphs checks, on random DAGs and random
// connected subgraphs, the algebraic invariants the rest of the system
// relies on:
//
//   - Δ, x, upd are positive everywhere;
//   - the rate law upd(v)·Δ(v)·s(v) == upd(u)·Δ(u) holds on every internal
//     edge (stage-3's defining equation);
//   - the co-prime property: the upd values of one subgraph have GCD 1;
//   - the residency bound x(p) ≥ F_v + (Δ_v−1)·s_v on every internal edge.
func TestDeriveInvariantsOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := testutil.RandomGraph(seed, 25)
		rng := rand.New(rand.NewSource(seed + 1000))
		for trial := 0; trial < 10; trial++ {
			members := testutil.RandomConnectedSubgraph(rng, g, 10)
			s, err := Derive(g, members, DefaultConfig())
			if err != nil {
				t.Fatalf("seed %d trial %d: %v", seed, trial, err)
			}
			inSet := map[int]bool{}
			for _, id := range members {
				inSet[id] = true
			}
			var updGCD int64
			for id, ns := range s.Nodes {
				if ns.DeltaH <= 0 || ns.TileH <= 0 || ns.UpdH <= 0 ||
					ns.DeltaW <= 0 || ns.TileW <= 0 || ns.UpdW <= 0 {
					t.Fatalf("seed %d: node %d non-positive scheme %+v", seed, id, ns)
				}
				// Note: x < Δ is legal when a consumer's stride exceeds its
				// kernel (some producer rows are never read), so no x ≥ Δ
				// assertion here.
				updGCD = gcd64(updGCD, ns.UpdH)
			}
			if updGCD != 1 {
				t.Errorf("seed %d trial %d: upd values share factor %d (not co-prime)", seed, trial, updGCD)
			}
			for _, v := range members {
				nv := g.Node(v)
				vs := s.Nodes[v]
				for _, u := range g.Pred(v) {
					us, ok := s.Nodes[u]
					if !ok {
						continue
					}
					if vs.UpdH*vs.DeltaH*int64(nv.StrideH) != us.UpdH*us.DeltaH {
						t.Fatalf("seed %d: edge %d->%d violates the H rate law", seed, u, v)
					}
					if vs.UpdW*vs.DeltaW*int64(nv.StrideW) != us.UpdW*us.DeltaW {
						t.Fatalf("seed %d: edge %d->%d violates the W rate law", seed, u, v)
					}
					window := int64(nv.KernelH) + (vs.DeltaH-1)*int64(nv.StrideH)
					if us.TileH < window {
						t.Fatalf("seed %d: edge %d->%d: x=%d below batch window %d",
							seed, u, v, us.TileH, window)
					}
				}
			}
		}
	}
}

// TestFootprintMonotoneUnderGrowth validates the property the exact
// enumeration's pruning rests on (see internal/baselines): adding a member
// to a subgraph never decreases the total activation footprint.
func TestFootprintMonotoneUnderGrowth(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := testutil.RandomGraph(seed, 25)
		rng := rand.New(rand.NewSource(seed + 500))
		for trial := 0; trial < 8; trial++ {
			members := testutil.RandomConnectedSubgraph(rng, g, 8)
			s, err := Derive(g, members, DefaultConfig())
			if err != nil {
				continue
			}
			base := s.TotalFootprintBytes(g)
			inSet := map[int]bool{}
			for _, id := range members {
				inSet[id] = true
			}
			// Try every adjacent extension.
			for _, id := range members {
				for _, nb := range append(append([]int(nil), g.Pred(id)...), g.Succ(id)...) {
					if inSet[nb] || g.Node(nb).Kind == graph.OpInput {
						continue
					}
					grown, err := Derive(g, append(append([]int(nil), members...), nb), DefaultConfig())
					if err != nil {
						continue
					}
					if got := grown.TotalFootprintBytes(g); got < base {
						t.Fatalf("seed %d: footprint shrank %d -> %d when adding node %d to %v",
							seed, base, got, nb, members)
					}
				}
			}
		}
	}
}

// TestDeriveDeterministic: identical inputs yield identical schemes.
func TestDeriveDeterministic(t *testing.T) {
	g := testutil.RandomGraph(3, 30)
	rng := rand.New(rand.NewSource(42))
	members := testutil.RandomConnectedSubgraph(rng, g, 12)
	a, err := Derive(g, members, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Derive(g, members, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for id, na := range a.Nodes {
		nb := b.Nodes[id]
		if *na != *nb {
			t.Fatalf("node %d differs across runs: %+v vs %+v", id, na, nb)
		}
	}
}
