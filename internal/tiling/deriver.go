package tiling

import (
	"fmt"

	"cocco/internal/graph"
)

// Deriver runs the three-stage derivation of Derive with reusable dense
// scratch buffers instead of per-call maps: membership tests are
// epoch-stamped array probes, per-node schemes live in a slice indexed by
// node id, and the upd_num solver's adjacency and rational tables are flat
// arrays rebuilt in place. After warm-up a Deriver derives schemes without
// allocating, which is what makes the evaluator's cold path cheap.
//
// A Deriver is bound to one graph and one config and is NOT safe for
// concurrent use; pool one per goroutine (the evaluator keeps a sync.Pool).
// Results are byte-identical to Derive: both run the same algebra over the
// same traversal orders.
type Deriver struct {
	g   *graph.Graph
	cfg Config

	member *graph.Marks // subgraph membership
	inUniv *graph.Marks // universe membership (members + external producers)
	ids    []int        // sorted universe ids
	ns     []NodeScheme // node id → scheme; valid only where inUniv

	// solveUpd scratch: prod rationals per node, flat adjacency, BFS queue,
	// and the upd rationals of the final scaling step.
	prodSet          *graph.Marks
	prodNum, prodDen []int64
	deg, cursor      []int32
	adjOff           []int32
	adj              []int32
	queue            []int
	updNum, updDen   []int64
}

// NewDeriver returns a Deriver for g with the given config.
func NewDeriver(g *graph.Graph, cfg Config) (*Deriver, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.Len()
	return &Deriver{
		g:       g,
		cfg:     cfg,
		member:  graph.NewMarks(n),
		inUniv:  graph.NewMarks(n),
		ids:     make([]int, 0, n),
		ns:      make([]NodeScheme, n),
		prodSet: graph.NewMarks(n),
		prodNum: make([]int64, n),
		prodDen: make([]int64, n),
		deg:     make([]int32, n),
		cursor:  make([]int32, n),
		adjOff:  make([]int32, n),
		queue:   make([]int, 0, n),
		updNum:  make([]int64, n),
		updDen:  make([]int64, n),
	}, nil
}

// Clone returns a fresh Deriver for the same graph and config, with its own
// scratch buffers. The config was validated when the receiver was built, so
// cloning never fails — this is how a shared, already-validated template
// (eval.GraphContext keeps one per graph) fans out into per-goroutine
// scratch without re-running NewDeriver's validation per pool entry.
func (d *Deriver) Clone() *Deriver {
	n := d.g.Len()
	return &Deriver{
		g:       d.g,
		cfg:     d.cfg,
		member:  graph.NewMarks(n),
		inUniv:  graph.NewMarks(n),
		ids:     make([]int, 0, n),
		ns:      make([]NodeScheme, n),
		prodSet: graph.NewMarks(n),
		prodNum: make([]int64, n),
		prodDen: make([]int64, n),
		deg:     make([]int32, n),
		cursor:  make([]int32, n),
		adjOff:  make([]int32, n),
		queue:   make([]int, 0, n),
		updNum:  make([]int64, n),
		updDen:  make([]int64, n),
	}
}

// derive runs the full three-stage flow into the scratch buffers. On return
// d.ids holds the sorted universe and d.ns[id] the scheme of every universe
// node. The buffers stay valid until the next derive call.
func (d *Deriver) derive(members []int) error {
	if len(members) == 0 {
		return fmt.Errorf("tiling: empty subgraph")
	}
	g := d.g
	d.member.Reset()
	d.inUniv.Reset()
	d.ids = d.ids[:0]
	for _, id := range members {
		d.member.Set(id)
	}
	// Universe: members plus their external producers.
	for _, id := range members {
		if !d.inUniv.Has(id) {
			d.inUniv.Set(id)
			d.ids = append(d.ids, id)
		}
		for _, p := range g.PredIDs(id) {
			if !d.inUniv.Has(int(p)) {
				d.inUniv.Set(int(p))
				d.ids = append(d.ids, int(p))
			}
		}
	}
	sortInts(d.ids)

	for _, id := range d.ids {
		isMember := d.member.Has(id)
		ns := NodeScheme{ID: id, External: !isMember}
		// A member is an output if its results leave the subgraph: some
		// consumer is external, or it has no consumers (a model output).
		if isMember {
			succ := g.SuccIDs(id)
			if len(succ) == 0 {
				ns.Output = true
			}
			for _, c := range succ {
				if !d.member.Has(int(c)) {
					ns.Output = true
					break
				}
			}
		}
		d.ns[id] = ns
	}

	if err := d.deriveDim(dimH); err != nil {
		return err
	}
	if err := d.deriveDim(dimW); err != nil {
		return err
	}
	if err := d.solveUpd(dimH); err != nil {
		return err
	}
	return d.solveUpd(dimW)
}

// dim selects the height or width instance of the per-dimension passes.
type dim bool

const (
	dimH dim = true
	dimW dim = false
)

func (d dim) base(cfg Config) int64 {
	if d == dimH {
		return int64(cfg.BaseTileH)
	}
	return int64(cfg.BaseTileW)
}

func (d dim) f(n *graph.Node) int64 {
	if d == dimH {
		return int64(n.KernelH)
	}
	return int64(n.KernelW)
}

func (d dim) s(n *graph.Node) int64 {
	if d == dimH {
		return int64(n.StrideH)
	}
	return int64(n.StrideW)
}

func (d dim) delta(ns *NodeScheme) int64 {
	if d == dimH {
		return ns.DeltaH
	}
	return ns.DeltaW
}

func (d dim) setDelta(ns *NodeScheme, v int64) {
	if d == dimH {
		ns.DeltaH = v
	} else {
		ns.DeltaW = v
	}
}

func (d dim) setTile(ns *NodeScheme, v int64) {
	if d == dimH {
		ns.TileH = v
	} else {
		ns.TileW = v
	}
}

func (d dim) setUpd(ns *NodeScheme, v int64) {
	if d == dimH {
		ns.UpdH = v
	} else {
		ns.UpdW = v
	}
}

// deriveDim is stage 1 + 2 for one dimension: reverse-topological walk over
// the universe assigning Δ (base tile or LCM alignment) and x (base tile or
// max consumption).
func (d *Deriver) deriveDim(dm dim) error {
	g := d.g
	base := dm.base(d.cfg)
	for i := len(d.ids) - 1; i >= 0; i-- {
		u := d.ids[i]
		ns := &d.ns[u]
		// Stage-1: a node without internal consumers is driven by the
		// single-layer mapper: Δ = x = base tile.
		hasCons := false
		for _, c := range g.SuccIDs(u) {
			if d.member.Has(int(c)) {
				hasCons = true
				break
			}
		}
		if !hasCons {
			dm.setDelta(ns, base)
			dm.setTile(ns, base)
			continue
		}
		// Stage-2: Δ(u) = lcm over children v of Δ(v)·s(v);
		// x(u) = max over children of f_v(Δ(u)/s(v)).
		var delta int64 = 1
		for _, c := range g.SuccIDs(u) {
			v := int(c)
			if !d.member.Has(v) {
				continue
			}
			sv := dm.s(g.Node(v))
			step := dm.delta(&d.ns[v]) * sv
			if step <= 0 {
				return fmt.Errorf("tiling: node %d: non-positive step", v)
			}
			delta = lcm64(delta, step)
			if delta <= 0 {
				return fmt.Errorf("tiling: LCM overflow at node %d", u)
			}
		}
		var tile int64
		for _, c := range g.SuccIDs(u) {
			v := int(c)
			if !d.member.Has(v) {
				continue
			}
			nv := g.Node(v)
			sv := dm.s(nv)
			fv := dm.f(nv)
			consumed := delta / sv // consumer offset per producer update
			chi := fv + (consumed-1)*sv
			if chi > tile {
				tile = chi
			}
		}
		dm.setDelta(ns, delta)
		dm.setTile(ns, tile)
	}
	return nil
}

// solveUpd is stage 3 for one dimension: rational propagation of
// prod(n) = upd(n)·Δ(n) over the undirected edge relation, then scaling to
// the minimal positive integer (co-prime) solution. Mirrors the algorithm of
// the original map-based solver exactly, including traversal order.
func (d *Deriver) solveUpd(dm dim) error {
	g := d.g

	// Flat adjacency over universe edges, in the exact append order of the
	// map-based builder: ids ascending, each member v linking v↔u per pred u.
	for _, id := range d.ids {
		d.deg[id] = 0
	}
	for _, v := range d.ids {
		if !d.member.Has(v) {
			continue
		}
		for _, p := range g.PredIDs(v) {
			u := int(p)
			if !d.inUniv.Has(u) {
				continue
			}
			d.deg[u]++
			d.deg[v]++
		}
	}
	var total int32
	for _, id := range d.ids {
		d.adjOff[id] = total
		d.cursor[id] = total
		total += d.deg[id]
	}
	if cap(d.adj) < int(total) {
		d.adj = make([]int32, total)
	}
	d.adj = d.adj[:total]
	for _, v := range d.ids {
		if !d.member.Has(v) {
			continue
		}
		for _, p := range g.PredIDs(v) {
			u := int(p)
			if !d.inUniv.Has(u) {
				continue
			}
			d.adj[d.cursor[u]] = int32(v)
			d.cursor[u]++
			d.adj[d.cursor[v]] = p
			d.cursor[v]++
		}
	}
	adjOf := func(id int) []int32 { return d.adj[d.adjOff[id] : d.adjOff[id]+d.deg[id]] }

	// BFS propagation of the prod rationals, component by component.
	d.prodSet.Reset()
	for _, start := range d.ids {
		if d.prodSet.Has(start) {
			continue
		}
		d.prodSet.Set(start)
		d.prodNum[start] = dm.delta(&d.ns[start])
		d.prodDen[start] = 1
		d.queue = append(d.queue[:0], start)
		for qi := 0; qi < len(d.queue); qi++ {
			n := d.queue[qi]
			pnNum, pnDen := d.prodNum[n], d.prodDen[n]
			for _, mm := range adjOf(n) {
				m := int(mm)
				// Determine edge direction to apply prod(u) = prod(v)·s(v).
				var pm ratVal
				if isPredCSR(g, m, n) { // m -> n (m producer)
					pm = reduceRat(pnNum*dm.s(g.Node(n)), pnDen)
				} else { // n -> m (m consumer): prod(m) = prod(n)/s(m)
					pm = reduceRat(pnNum, pnDen*dm.s(g.Node(m)))
				}
				if d.prodSet.Has(m) {
					if d.prodNum[m]*pm.den != pm.num*d.prodDen[m] {
						return fmt.Errorf("tiling: inconsistent update rates at node %d (%d/%d vs %d/%d)",
							m, d.prodNum[m], d.prodDen[m], pm.num, pm.den)
					}
					continue
				}
				d.prodSet.Set(m)
				d.prodNum[m] = pm.num
				d.prodDen[m] = pm.den
				d.queue = append(d.queue, m)
			}
		}
	}

	// upd(n) = prod(n)/Δ(n) as a rational; scale all by LCM of denominators,
	// then divide by the overall GCD for the unique co-prime solution.
	var denLCM int64 = 1
	for _, id := range d.ids {
		r := reduceRat(d.prodNum[id], d.prodDen[id]*dm.delta(&d.ns[id]))
		d.updNum[id] = r.num
		d.updDen[id] = r.den
		denLCM = lcm64(denLCM, r.den)
		if denLCM <= 0 {
			return fmt.Errorf("tiling: upd_num denominator overflow")
		}
	}
	var all int64
	for _, id := range d.ids {
		v := d.updNum[id] * (denLCM / d.updDen[id])
		d.updNum[id] = v // reuse as the scaled integer value
		all = gcd64(all, v)
	}
	if all == 0 {
		all = 1
	}
	for _, id := range d.ids {
		dm.setUpd(&d.ns[id], d.updNum[id]/all)
	}
	return nil
}

// isPredCSR reports whether u is a producer of v, via the CSR view.
func isPredCSR(g *graph.Graph, u, v int) bool {
	for _, p := range g.PredIDs(v) {
		if int(p) == u {
			return true
		}
	}
	return false
}

// Derive runs the flow and materializes a standalone *Scheme (the same
// result Derive returns). The returned scheme does not alias the scratch.
func (d *Deriver) Derive(members []int) (*Scheme, error) {
	if err := d.derive(members); err != nil {
		return nil, err
	}
	s := &Scheme{Nodes: make(map[int]*NodeScheme, len(d.ids))}
	for _, id := range d.ids {
		ns := d.ns[id]
		s.Nodes[id] = &ns
		if d.member.Has(id) {
			s.Order = append(s.Order, id)
		}
	}
	return s, nil
}

// TotalFootprint derives the subgraph's scheme into the scratch buffers and
// returns the summed activation footprint (Scheme.TotalFootprintBytes)
// without materializing a Scheme — the evaluator's allocation-free cold path.
func (d *Deriver) TotalFootprint(members []int) (int64, error) {
	if err := d.derive(members); err != nil {
		return 0, err
	}
	g := d.g
	var t int64
	for _, id := range d.ids {
		ns := &d.ns[id]
		n := g.Node(id)
		h := clamp(ns.TileH, int64(n.OutH))
		w := clamp(ns.TileW, int64(n.OutW))
		t += h * w * int64(n.OutC)
		// SIDE region, as in Scheme.FootprintBytes: only for data consumed
		// inside the subgraph across sliding tiles, and only when the tile
		// does not already span the full width.
		consumedInside := ns.External || !ns.Output
		if !consumedInside {
			for _, c := range g.SuccIDs(id) {
				if d.inUniv.Has(int(c)) && d.member.Has(int(c)) {
					consumedInside = true
					break
				}
			}
		}
		if consumedInside && w < int64(n.OutW) {
			overlapRows := ns.TileH - ns.DeltaH
			if overlapRows < 0 {
				overlapRows = 0
			}
			overlapRows = clamp(overlapRows, int64(n.OutH))
			t += overlapRows * (int64(n.OutW) - w) * int64(n.OutC)
		}
	}
	return t, nil
}

// sortInts is an insertion sort for the universe id slices, which are small
// (members + their producers) and nearly sorted already — members arrive
// ascending and each external producer is appended near its consumers — so
// insertion sort beats the general-purpose sort.Ints on this input shape.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
