package tiling

import (
	"testing"

	"cocco/internal/graph"
)

// paperExample builds the exact subgraph of Figure 5: two external inputs
// Node(-2) and Node(-1); Node(0) = 3×3/2 conv of Node(-2); Node(1) = 3×3/1
// conv of Node(-2) and Node(-1); Node(2) = 1×1/1 conv of Node(-1).
// Returned ids: [A(-2), B(-1), n0, n1, n2].
func paperExample(t *testing.T) (*graph.Graph, []int) {
	t.Helper()
	b := graph.NewBuilder("fig5")
	a := b.Input("A", 8, 64, 64)
	bb := b.Input("B", 8, 64, 64)
	n0 := b.Custom("n0", graph.OpConv, 3, 2, 8, 8, 31, 31, a)
	n1 := b.Custom("n1", graph.OpConv, 3, 1, 16, 8, 62, 62, a, bb)
	n2 := b.Custom("n2", graph.OpConv, 1, 1, 8, 8, 64, 64, bb)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g, []int{a, bb, n0, n1, n2}
}

func TestDerivePaperExample(t *testing.T) {
	g, ids := paperExample(t)
	a, bb, n0, n1, n2 := ids[0], ids[1], ids[2], ids[3], ids[4]
	s, err := Derive(g, []int{n0, n1, n2}, Config{BaseTileH: 2, BaseTileW: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]struct{ delta, tile, upd int64 }{
		a:  {4, 6, 1},
		bb: {2, 4, 2},
		n0: {2, 2, 1},
		n1: {2, 2, 2},
		n2: {2, 2, 2},
	}
	for id, w := range want {
		ns := s.Nodes[id]
		if ns == nil {
			t.Fatalf("node %d missing from scheme", id)
		}
		if ns.DeltaH != w.delta || ns.TileH != w.tile || ns.UpdH != w.upd {
			t.Errorf("node %d: got Δ=%d x=%d upd=%d, want Δ=%d x=%d upd=%d",
				id, ns.DeltaH, ns.TileH, ns.UpdH, w.delta, w.tile, w.upd)
		}
		// The derivation is dimension-symmetric; W must match H here.
		if ns.DeltaW != w.delta || ns.TileW != w.tile || ns.UpdW != w.upd {
			t.Errorf("node %d: W dimension diverged: Δ=%d x=%d upd=%d", id, ns.DeltaW, ns.TileW, ns.UpdW)
		}
	}
	// External/output classification.
	if !s.Nodes[a].External || !s.Nodes[bb].External {
		t.Error("inputs not marked external")
	}
	for _, id := range []int{n0, n1, n2} {
		if s.Nodes[id].External {
			t.Errorf("member %d marked external", id)
		}
		if !s.Nodes[id].Output {
			t.Errorf("member %d should be an output (no internal consumer)", id)
		}
	}
}

func TestDeriveChain(t *testing.T) {
	// A plain chain in -> c1(3/1) -> c2(3/2) -> c3(3/1).
	b := graph.NewBuilder("chain")
	in := b.Input("in", 8, 64, 64)
	c1 := b.Conv("c1", in, 8, 3, 1)
	c2 := b.Conv("c2", c1, 8, 3, 2)
	c3 := b.Conv("c3", c2, 8, 3, 1)
	g := b.MustFinalize()

	s, err := Derive(g, []int{c1, c2, c3}, Config{BaseTileH: 2, BaseTileW: 2})
	if err != nil {
		t.Fatal(err)
	}
	// c3 is the only output: Δ=x=2. c2: Δ = Δ(c3)·s(c3)=2, x = f_c3(2)=4.
	// c1: Δ = Δ(c2)·s(c2)=4, x = f_c2(4/2=2)=3+1·2=5.
	// in: Δ = Δ(c1)·1=4, x = f_c1(4)=3+3=6.
	checks := []struct {
		id          int
		delta, tile int64
	}{{c3, 2, 2}, {c2, 2, 4}, {c1, 4, 5}, {in, 4, 6}}
	for _, c := range checks {
		ns := s.Nodes[c.id]
		if ns.DeltaH != c.delta || ns.TileH != c.tile {
			t.Errorf("node %d: got Δ=%d x=%d, want Δ=%d x=%d", c.id, ns.DeltaH, ns.TileH, c.delta, c.tile)
		}
	}
	// Rate invariant: upd(v)·Δ(v)·s(v) == upd(u)·Δ(u) on every edge.
	for _, e := range [][2]int{{in, c1}, {c1, c2}, {c2, c3}} {
		u, v := s.Nodes[e[0]], s.Nodes[e[1]]
		nv := g.Node(e[1])
		if v.UpdH*v.DeltaH*int64(nv.StrideH) != u.UpdH*u.DeltaH {
			t.Errorf("edge %d->%d: rate mismatch", e[0], e[1])
		}
	}
}

func TestDeriveSingleNode(t *testing.T) {
	b := graph.NewBuilder("single")
	in := b.Input("in", 3, 32, 32)
	c1 := b.Conv("c1", in, 16, 3, 1)
	g := b.MustFinalize()
	s, err := Derive(g, []int{c1}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Nodes[c1]; got.DeltaH != 2 || got.TileH != 2 || got.UpdH < 1 {
		t.Errorf("single-node scheme wrong: %+v", got)
	}
	if got := s.Nodes[in]; got.TileH != 4 { // f(2) = 3 + 1 = 4
		t.Errorf("input tile = %d, want 4", got.TileH)
	}
	if len(s.Order) != 1 || s.Order[0] != c1 {
		t.Errorf("order = %v", s.Order)
	}
}

func TestDeriveErrors(t *testing.T) {
	g, ids := paperExample(t)
	if _, err := Derive(g, nil, DefaultConfig()); err == nil {
		t.Error("empty subgraph should fail")
	}
	if _, err := Derive(g, []int{ids[2]}, Config{BaseTileH: 0, BaseTileW: 2}); err == nil {
		t.Error("zero base tile should fail")
	}
}

func TestFootprintBytes(t *testing.T) {
	g, ids := paperExample(t)
	n0, n1, n2 := ids[2], ids[3], ids[4]
	s, err := Derive(g, []int{n0, n1, n2}, Config{BaseTileH: 2, BaseTileW: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pure output node: MAIN only, tile 2×2, C=8 -> 32 bytes.
	if got := s.FootprintBytes(g, n0); got != 32 {
		t.Errorf("n0 footprint = %d, want 32", got)
	}
	// External A: MAIN 6×6×8 = 288, SIDE (x−Δ)=2 rows × (64−6)=58 cols × 8
	// channels = 928; total 1216.
	if got := s.FootprintBytes(g, ids[0]); got != 288+928 {
		t.Errorf("A footprint = %d, want %d", got, 288+928)
	}
	total := s.TotalFootprintBytes(g)
	var sum int64
	for id := range s.Nodes {
		sum += s.FootprintBytes(g, id)
	}
	if total != sum {
		t.Errorf("TotalFootprintBytes %d != sum %d", total, sum)
	}
}

func TestProductionVsConsumptionFootprint(t *testing.T) {
	// The production-centric scheme must never need less buffer than the
	// consumption-centric one on branchy subgraphs (Figure 4's point).
	b := graph.NewBuilder("fig4")
	in := b.Input("in", 8, 64, 64)
	n0 := b.Conv("n0", in, 8, 5, 2) // 5×5/2 branch
	n1 := b.Conv("n1", in, 8, 1, 1) // 1×1/1 branch
	n2 := b.Conv("n2", n1, 8, 3, 2) // 3×3/2
	n3 := b.Eltwise("n3", n0, n2)   // add
	g := b.MustFinalize()

	members := []int{n0, n1, n2, n3}
	s, err := Derive(g, members, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cons := s.TotalMainBytes(g)
	prod := ProductionFootprintBytes(g, members, s)
	if prod < cons {
		t.Errorf("production-centric footprint %d < consumption-centric %d", prod, cons)
	}
	// On this branchy subgraph the production-centric scheme strictly
	// over-allocates (Node(1) caches a full 7×7 tile instead of 5×5, etc.).
	if prod == cons {
		t.Errorf("expected strict over-allocation, both %d", prod)
	}
}

func TestGCDLCM(t *testing.T) {
	if gcd64(12, 18) != 6 {
		t.Error("gcd")
	}
	if lcm64(4, 6) != 12 {
		t.Error("lcm")
	}
	if lcm64(0, 5) != 0 {
		t.Error("lcm zero")
	}
	if r := reduceRat(6, -4); r.num != -3 || r.den != 2 {
		t.Errorf("reduceRat(6,-4) = %v", r)
	}
}

func TestParseConfig(t *testing.T) {
	c, err := ParseConfig("4x2")
	if err != nil || c.BaseTileH != 4 || c.BaseTileW != 2 {
		t.Fatalf("ParseConfig(4x2) = %+v, %v", c, err)
	}
	if c.String() != "4x2" {
		t.Errorf("String() = %q", c.String())
	}
	if rt, err := ParseConfig(DefaultConfig().String()); err != nil || rt != DefaultConfig() {
		t.Errorf("round-trip failed: %+v, %v", rt, err)
	}
	for _, bad := range []string{"", "x", "2", "0x2", "2x0", "-1x2", "ax2"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
}
