package tiling

import (
	"math/rand"
	"testing"

	"cocco/internal/graph"
	"cocco/internal/models"
)

// randomSubgraphs draws connected member sets of varying size the way the
// search does: grow a region from a random compute node through graph edges.
func randomSubgraphs(g *graph.Graph, rng *rand.Rand, count int) [][]int {
	nodes := g.ComputeIDs()
	var out [][]int
	for len(out) < count {
		target := 1 + rng.Intn(8)
		seed := nodes[rng.Intn(len(nodes))]
		region := map[int]bool{seed: true}
		frontier := []int{seed}
		for len(region) < target && len(frontier) > 0 {
			u := frontier[rng.Intn(len(frontier))]
			for _, v := range g.Succ(u) {
				if g.Node(v).Kind != graph.OpInput && !region[v] {
					region[v] = true
					frontier = append(frontier, v)
				}
			}
			frontier = frontier[1:]
		}
		members := make([]int, 0, len(region))
		for id := range region {
			members = append(members, id)
		}
		sortInts(members)
		out = append(out, members)
	}
	return out
}

// TestDeriverMatchesDerive pins the scratch-buffer Deriver against the
// allocating Derive API over the model zoo: identical schemes node by node
// (Derive itself wraps a fresh Deriver, so this additionally checks that
// scratch reuse across subgraphs leaks no state from one derivation into the
// next) and identical footprints through the no-materialization path.
func TestDeriverMatchesDerive(t *testing.T) {
	cfg := DefaultConfig()
	for _, model := range models.Names() {
		g := models.MustBuild(model)
		d, err := NewDeriver(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(len(model))))
		for _, members := range randomSubgraphs(g, rng, 24) {
			want, wantErr := Derive(g, members, cfg)
			got, gotErr := d.Derive(members)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s %v: error mismatch: %v vs %v", model, members, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if len(got.Nodes) != len(want.Nodes) {
				t.Fatalf("%s %v: %d nodes vs %d", model, members, len(got.Nodes), len(want.Nodes))
			}
			for id, w := range want.Nodes {
				gn, ok := got.Nodes[id]
				if !ok || *gn != *w {
					t.Fatalf("%s %v node %d: %+v vs %+v", model, members, id, gn, w)
				}
			}
			if len(got.Order) != len(want.Order) {
				t.Fatalf("%s %v: order %v vs %v", model, members, got.Order, want.Order)
			}
			for i := range want.Order {
				if got.Order[i] != want.Order[i] {
					t.Fatalf("%s %v: order %v vs %v", model, members, got.Order, want.Order)
				}
			}
			fp, err := d.TotalFootprint(members)
			if err != nil {
				t.Fatal(err)
			}
			if wantFP := want.TotalFootprintBytes(g); fp != wantFP {
				t.Fatalf("%s %v: TotalFootprint %d != %d", model, members, fp, wantFP)
			}
		}
	}
}

// TestDeriverAllocFree pins the scratch-buffer contract: once warm, a
// Deriver's TotalFootprint path performs zero allocations per derivation.
func TestDeriverAllocFree(t *testing.T) {
	g := models.MustBuild("googlenet")
	d, err := NewDeriver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	subs := randomSubgraphs(g, rand.New(rand.NewSource(7)), 16)
	for _, m := range subs { // warm the scratch (adj growth, queue caps)
		if _, err := d.TotalFootprint(m); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := d.TotalFootprint(subs[i%len(subs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("warm Deriver.TotalFootprint allocates %.1f per derivation, want 0", allocs)
	}
}

// TestDeriverErrors mirrors the Derive error contract through the scratch
// API, then checks the Deriver stays usable after a failed derivation.
func TestDeriverErrors(t *testing.T) {
	g := models.MustBuild("resnet50")
	if _, err := NewDeriver(g, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	d, err := NewDeriver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.TotalFootprint(nil); err == nil {
		t.Error("empty subgraph accepted")
	}
	members := []int{g.ComputeIDs()[0]}
	want, _ := Derive(g, members, DefaultConfig())
	got, err := d.Derive(members)
	if err != nil {
		t.Fatal(err)
	}
	if want.TotalFootprintBytes(g) != got.TotalFootprintBytes(g) {
		t.Error("deriver unusable after error")
	}
}

// TestDeriverClone pins that a cloned Deriver shares no scratch with its
// template: both derive the same schemes, and interleaved use of template
// and clone (including concurrent use) leaks no state between them.
func TestDeriverClone(t *testing.T) {
	g := models.MustBuild("resnet50")
	tmpl, err := NewDeriver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clone := tmpl.Clone()
	subs := randomSubgraphs(g, rand.New(rand.NewSource(19)), 12)
	for i, m := range subs {
		want, wantErr := tmpl.TotalFootprint(m)
		got, gotErr := clone.TotalFootprint(subs[len(subs)-1-i]) // interleave different inputs
		_ = got
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("clone error behavior diverges: %v vs %v", wantErr, gotErr)
		}
		again, _ := clone.TotalFootprint(m)
		if want != again {
			t.Fatalf("subgraph %v: clone footprint %d != template %d", m, again, want)
		}
	}
}
