package tiling_test

import (
	"fmt"

	"cocco/internal/graph"
	"cocco/internal/tiling"
)

// ExampleDerive reproduces the paper's Figure 5 worked example: the
// consumption-centric flow on a two-input subgraph with mixed strides.
func ExampleDerive() {
	b := graph.NewBuilder("fig5")
	a := b.Input("A", 8, 64, 64)
	bb := b.Input("B", 8, 64, 64)
	n0 := b.Custom("n0", graph.OpConv, 3, 2, 8, 8, 31, 31, a)
	n1 := b.Custom("n1", graph.OpConv, 3, 1, 16, 8, 62, 62, a, bb)
	n2 := b.Custom("n2", graph.OpConv, 1, 1, 8, 8, 64, 64, bb)
	g := b.MustFinalize()

	s, err := tiling.Derive(g, []int{n0, n1, n2}, tiling.Config{BaseTileH: 2, BaseTileW: 2})
	if err != nil {
		panic(err)
	}
	for _, id := range []int{a, bb, n0, n1, n2} {
		ns := s.Nodes[id]
		fmt.Printf("%s: Δ=%d x=%d upd=%d\n", g.Node(id).Name, ns.DeltaH, ns.TileH, ns.UpdH)
	}
	// Output:
	// A: Δ=4 x=6 upd=1
	// B: Δ=2 x=4 upd=2
	// n0: Δ=2 x=2 upd=1
	// n1: Δ=2 x=2 upd=2
	// n2: Δ=2 x=2 upd=2
}
