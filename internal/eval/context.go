package eval

import (
	"sync"

	"cocco/internal/graph"
	"cocco/internal/hw"
	"cocco/internal/mapper"
	"cocco/internal/tiling"
)

// GraphContext is the immutable, platform-independent half of an Evaluator:
// everything New derives from the graph (and the tiling config) alone —
// per-node weight/output-byte/MAC tables, the GLB window-replication
// factors, the CSR adjacency views the graph already caches, and one
// validated tiling Deriver template. It is computed once per graph and
// shared read-only by any number of Evaluators, which is what makes batched
// multi-config DSE cheap: sweeping N hardware configs over one model pays
// the graph-derived cold path once instead of N times.
//
// The context also owns the shared subgraph-cost caches, one per core
// geometry (hw.Core) — the only part of a platform subgraph costing depends
// on. Evaluators fanned out of one context with the same geometry share one
// cache read/write, so in a DSE sweep only the first config per geometry
// pays cold costing and every sibling gets warm hits.
//
// Immutability contract: after NewGraphContext returns, no field of the
// context is ever written again, except the per-Core compute-cycles memo
// and cost-cache registry, which are guarded by the context mutex and only
// ever gain entries (a stored cycle table is itself immutable; a costCache
// has its own internal shard locks). A GraphContext is therefore safe for
// concurrent NewEvaluator calls and concurrent use by the evaluators it
// produced.
type GraphContext struct {
	g       *graph.Graph
	tcfg    tiling.Config
	tcfgErr error // invalid tiling config; every subgraph derivation fails

	// Per-node tables indexed by node id. Subgraph costing is a pure sum of
	// these over members (plus the platform's cycle table).
	weightBytes []int64
	outBytes    []int64
	macs        []int64
	rep         []int64

	// template is the Deriver validated at construction; evaluators clone it
	// into their per-goroutine scratch (nil when tcfgErr != nil).
	template *tiling.Deriver

	// cycles memoizes the mapper.NodeCycles table per core geometry — the
	// only per-platform table an Evaluator needs. A DSE sweep varies buffer
	// capacities, kinds, core counts, and batch sizes while the core itself
	// stays fixed, so config #2..#N hit this memo and evaluator construction
	// collapses to pool/cache setup. caches registers the shared subgraph-
	// cost cache per core geometry under the same keying: sibling evaluators
	// get the same *costCache and pay cold costing once per geometry.
	mu     sync.Mutex
	cycles map[hw.Core][]int64
	caches map[hw.Core]*costCache
}

// NewGraphContext computes the graph-derived evaluation tables for g under
// the given tiling config. An invalid tiling config is not a constructor
// error: it is recorded and surfaces as a per-subgraph derivation error,
// exactly as eval.New always behaved.
func NewGraphContext(g *graph.Graph, tcfg tiling.Config) *GraphContext {
	gc := &GraphContext{
		g: g, tcfg: tcfg,
		cycles: make(map[hw.Core][]int64),
		caches: make(map[hw.Core]*costCache),
	}
	der, derr := tiling.NewDeriver(g, tcfg)
	if derr != nil {
		gc.tcfgErr = derr
	} else {
		gc.template = der
	}
	n := g.Len()
	gc.weightBytes = make([]int64, n)
	gc.outBytes = make([]int64, n)
	gc.macs = make([]int64, n)
	gc.rep = make([]int64, n)
	for id := 0; id < n; id++ {
		nd := g.Node(id)
		gc.weightBytes[id] = nd.WeightBytes()
		gc.outBytes[id] = nd.OutBytes()
		gc.macs[id] = nd.MACs()
		gc.rep[id] = int64(ceilDiv(nd.KernelH, nd.StrideH)) * int64(ceilDiv(nd.KernelW, nd.StrideW))
	}
	return gc
}

// Graph returns the context's graph.
func (gc *GraphContext) Graph() *graph.Graph { return gc.g }

// TilingConfig returns the tiling config the context was built for.
func (gc *GraphContext) TilingConfig() tiling.Config { return gc.tcfg }

// cyclesFor returns the per-node compute-cycle table for the given core
// geometry, computing it on first use and serving the memoized table after.
// Returned tables are immutable and shared across evaluators.
func (gc *GraphContext) cyclesFor(core hw.Core) []int64 {
	gc.mu.Lock()
	if t, ok := gc.cycles[core]; ok {
		gc.mu.Unlock()
		return t
	}
	gc.mu.Unlock()

	// Compute outside the lock: NodeCycles is O(nodes × mappings) and two
	// concurrent first-touch callers computing the same (deterministic)
	// table is cheaper than serializing every evaluator construction.
	n := gc.g.Len()
	t := make([]int64, n)
	for id := 0; id < n; id++ {
		t[id] = mapper.NodeCycles(core, gc.g.Node(id))
	}

	gc.mu.Lock()
	if first, ok := gc.cycles[core]; ok {
		gc.mu.Unlock()
		return first
	}
	gc.cycles[core] = t
	gc.mu.Unlock()
	return t
}

// cacheFor returns the shared subgraph-cost cache for the given core
// geometry, registering an empty one on first use. Creation is keep-first
// under the context mutex, so every evaluator of one geometry — however
// concurrently constructed — holds the same *costCache forever.
func (gc *GraphContext) cacheFor(core hw.Core) *costCache {
	gc.mu.Lock()
	cc, ok := gc.caches[core]
	if !ok {
		cc = &costCache{}
		gc.caches[core] = cc
	}
	gc.mu.Unlock()
	return cc
}

// NewEvaluator returns a thin per-platform Evaluator over the shared
// context: it adds only the platform's compute-cycle table and cost cache
// (both memoized per core geometry on the context, the cache shared
// read/write with every same-geometry sibling) and a scratch pool. Results
// are bit-identical to a standalone eval.New evaluator for the same (graph,
// platform, tiling config) — the equivalence suite pins this across the
// model zoo. Sharing the cost cache cannot change results either: cache
// entries change only WHEN costs are computed, never what they are.
func (gc *GraphContext) NewEvaluator(p hw.Platform) (*Evaluator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{ctx: gc, platform: p, cycles: gc.cyclesFor(p.Core), cache: gc.cacheFor(p.Core)}
	n := gc.g.Len()
	e.scratch.New = func() any {
		sc := &evalScratch{
			inSet:   graph.NewMarks(n),
			seenExt: graph.NewMarks(n),
			members: make([]int, 0, n),
		}
		if gc.tcfgErr == nil {
			sc.der = gc.template.Clone()
		}
		return sc
	}
	return e, nil
}

// MustNewEvaluator is NewEvaluator that panics on error.
func (gc *GraphContext) MustNewEvaluator(p hw.Platform) *Evaluator {
	e, err := gc.NewEvaluator(p)
	if err != nil {
		panic(err)
	}
	return e
}
