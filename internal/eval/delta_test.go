package eval_test

// The cross-engine equivalence suite of the delta-evaluation layer: for
// every model in the zoo × both metrics × both buffer kinds, a randomized
// sequence of partition operators (TryModifyNode / TrySplit / TryMerge via
// core.ApplyRandomMutation, plus in-situ split repair) must make
// Evaluator.PartitionDelta agree bit-for-bit with a from-scratch
// Evaluator.Partition — cost sums, feasibility set, and footprints alike.
// PartitionDelta's only correctness risk is a stale or mis-carried cost
// handle, which the from-scratch path cannot share, so exact equality here
// pins the dirty-marking rules of the partition operators.

import (
	"math/rand"
	"reflect"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/partition"
	"cocco/internal/tiling"
)

// memFor returns a moderately tight memory configuration per buffer kind, so
// the sequences exercise both feasible and infeasible subgraphs.
func memFor(kind hw.BufferKind) hw.MemConfig {
	if kind == hw.SharedBuffer {
		return hw.MemConfig{Kind: hw.SharedBuffer, GlobalBytes: 1536 * hw.KiB}
	}
	return hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 512 * hw.KiB, WeightBytes: 576 * hw.KiB}
}

// requireEqualResults fails unless the two results are exactly equal —
// including bit-equality of the float64 aggregates, which both evaluation
// paths must accumulate in the same order.
func requireEqualResults(t *testing.T, step int, got, want *eval.Result) {
	t.Helper()
	if got.EMABytes != want.EMABytes ||
		got.EnergyPJ != want.EnergyPJ ||
		got.LatencyCycles != want.LatencyCycles ||
		got.AvgBWBytesPerSec != want.AvgBWBytesPerSec ||
		got.MaxActFootprint != want.MaxActFootprint ||
		got.MaxWgtFootprint != want.MaxWgtFootprint ||
		got.NumSubgraphs != want.NumSubgraphs ||
		!reflect.DeepEqual(got.Infeasible, want.Infeasible) {
		t.Fatalf("step %d: delta result diverges from full recompute\n delta: %+v\n  full: %+v", step, got, want)
	}
}

// TestDeltaEquivalenceZoo is the model-zoo equivalence matrix.
func TestDeltaEquivalenceZoo(t *testing.T) {
	const steps = 12
	for _, model := range models.Names() {
		g := models.MustBuild(model)
		ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
		for _, kind := range []hw.BufferKind{hw.SeparateBuffer, hw.SharedBuffer} {
			for _, metric := range []eval.Metric{eval.MetricEMA, eval.MetricEnergy} {
				name := model + "/" + kind.String() + "/" + metric.String()
				t.Run(name, func(t *testing.T) {
					mem := memFor(kind)
					rng := rand.New(rand.NewSource(int64(len(name))*1009 + 7))
					p := core.RandomPartition(g, rng, 0.3)
					for step := 0; step <= steps; step++ {
						if step > 0 {
							p = core.ApplyRandomMutation(g, rng, p)
						}
						got := ev.PartitionDelta(p, mem)
						want := ev.Partition(p, mem)
						requireEqualResults(t, step, got, want)
						if got.MetricValue(metric) != want.MetricValue(metric) {
							t.Fatalf("step %d: metric %v differs: %g vs %g",
								step, metric, got.MetricValue(metric), want.MetricValue(metric))
						}
					}
					// The in-situ split repair drives PartitionDelta through
					// split-heavy carry chains; its final state must agree
					// with a from-scratch evaluation too.
					q, res := core.RepairInSitu(ev, rng, p, mem)
					requireEqualResults(t, -1, res, ev.Partition(q, mem))
				})
			}
		}
	}
}

// TestDeltaFallbackFreshPartition checks the full-recompute fallback: a
// partition with no carried handles (fresh or deserialized) evaluates
// identically through both engines and fills its handles for later reuse.
func TestDeltaFallbackFreshPartition(t *testing.T) {
	g := models.MustBuild("googlenet")
	ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	mem := memFor(hw.SeparateBuffer)
	p := partition.Singletons(g)
	requireEqualResults(t, 0, ev.PartitionDelta(p, mem), ev.Partition(p, mem))
	reused := ev.DeltaStats()
	// A second delta evaluation of the same partition must come entirely
	// from carried handles.
	requireEqualResults(t, 1, ev.PartitionDelta(p, mem), ev.Partition(p, mem))
	if got := ev.DeltaStats() - reused; got != int64(p.NumSubgraphs()) {
		t.Errorf("second PartitionDelta reused %d handles, want %d", got, p.NumSubgraphs())
	}
}

// TestDeltaCrossEvaluator pins the handle-ownership rule: raw subgraph
// costs depend on the platform and tiling config, so a partition whose
// handles were filled by one evaluator (e.g. an Options.Init seed from a
// search on different hardware) must have them treated as dirty by another
// evaluator, not silently reused.
func TestDeltaCrossEvaluator(t *testing.T) {
	g := models.MustBuild("googlenet")
	mem := memFor(hw.SeparateBuffer)
	rng := rand.New(rand.NewSource(5))
	p := core.RandomPartition(g, rng, 0.3)

	evA := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	evA.PartitionDelta(p, mem) // fill handles owned by evA

	// A platform with half the PE array: compute cycles (and so latency)
	// differ, while member sets are identical.
	platB := hw.DefaultPlatform()
	platB.Core.PERows = 2
	evB := eval.MustNew(g, platB, tiling.DefaultConfig())
	got := evB.PartitionDelta(p, mem)
	requireEqualResults(t, 0, got, evB.Partition(p, mem))
	if ref := evA.Partition(p, mem); got.LatencyCycles == ref.LatencyCycles {
		t.Fatalf("platforms indistinguishable (latency %d); the test lost its teeth", ref.LatencyCycles)
	}
	// And going back to evA must re-own the handles evB overwrote.
	requireEqualResults(t, 1, evA.PartitionDelta(p, mem), evA.Partition(p, mem))
}

// TestDeltaAllocsFlat pins the interning fix: once a partition's handles are
// filled, PartitionDelta costs a small constant number of allocations (the
// Result and its scratch slices) — it no longer builds a member-key string
// per subgraph per lookup, so allocations do not scale with re-evaluations.
func TestDeltaAllocsFlat(t *testing.T) {
	g := models.MustBuild("resnet50")
	ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	mem := memFor(hw.SeparateBuffer)
	p := partition.Singletons(g)
	ev.PartitionDelta(p, mem) // fill handles
	allocs := testing.AllocsPerRun(100, func() { ev.PartitionDelta(p, mem) })
	if allocs > 8 {
		t.Errorf("clean PartitionDelta allocates %.1f per eval, want <= 8", allocs)
	}
	// The full path rebuilds a key (plus a sorted member copy) per subgraph,
	// so it must allocate more than the handle path on the same partition —
	// the gap is what BenchmarkDeltaEval quantifies.
	full := testing.AllocsPerRun(100, func() { ev.Partition(p, mem) })
	if full <= allocs {
		t.Errorf("full Partition allocates %.1f, delta %.1f; expected the delta path to allocate less", full, allocs)
	}
}

// TestDeltaPrefetchEquivalence runs the matrix's separate-buffer sequence
// with the §5.1.2 weight-prefetch feasibility check enabled, which adds the
// cross-subgraph double-buffering pass to the aggregation.
func TestDeltaPrefetchEquivalence(t *testing.T) {
	g := models.MustBuild("resnet50")
	ev := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	ev.EnablePrefetchCheck()
	mem := memFor(hw.SeparateBuffer)
	rng := rand.New(rand.NewSource(99))
	p := core.RandomPartition(g, rng, 0.3)
	for step := 0; step <= 16; step++ {
		if step > 0 {
			p = core.ApplyRandomMutation(g, rng, p)
		}
		requireEqualResults(t, step, ev.PartitionDelta(p, mem), ev.Partition(p, mem))
	}
}
