package eval

import (
	"fmt"
	"sync"
	"testing"

	"cocco/internal/graph"
	"cocco/internal/models"
)

// windows enumerates the contiguous compute-node windows of a chain-shaped
// model: every [i, j) slice of the topological compute order. On a pure
// chain (vgg16) each window is a connected subgraph, and all windows are
// pairwise distinct member sets — a supply of cold keys for alloc pins and
// race stress.
func windows(g *graph.Graph) [][]int {
	ids := g.ComputeIDs()
	var out [][]int
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j <= len(ids); j++ {
			out = append(out, append([]int(nil), ids[i:j]...))
		}
	}
	return out
}

// TestColdPathAllocs pins the tentpole contract: a steady-state cold
// evaluation (distinct member set, full computeSubgraph + tiling derivation
// + cache insert) performs at most a small constant number of allocations
// once the scratch pools are warm. The budget covers the SubgraphCost, its
// owned member slice, the interned key string, and amortized cache growth.
func TestColdPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector disables sync.Pool reuse; alloc pins are meaningless")
	}
	g := models.MustBuild("vgg16")
	ev := testEvaluator(t, g)
	subs := windows(g)
	if len(subs) < 110 {
		t.Fatalf("only %d windows; need more distinct cold subgraphs", len(subs))
	}
	// Warm the scratch pools (deriver adj buffers, marks) on a few windows
	// computed by a second evaluator so ev's cache stays cold for them... the
	// pool is per-evaluator, so warm ev itself on the last few windows.
	for _, m := range subs[len(subs)-8:] {
		ev.Subgraph(m)
	}
	subs = subs[:len(subs)-8]
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		c := ev.Subgraph(subs[i%len(subs)])
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		i++
	})
	if allocs > 8 {
		t.Errorf("cold path allocates %.1f per subgraph, want <= 8", allocs)
	}

	// And the warm path (same member sets, now cached) must be allocation
	// free: the sort + key build happen entirely in pooled scratch.
	i = 0
	warm := testing.AllocsPerRun(100, func() {
		ev.Subgraph(subs[i%len(subs)])
		i++
	})
	if warm != 0 {
		t.Errorf("warm Subgraph allocates %.1f, want 0", warm)
	}
}

// TestColdMissRaceKeepsFirst pins the duplicate-compute race fix: goroutines
// missing concurrently on the same cold key may each compute the cost, but
// the insert re-checks under the write lock and keeps the first inserted
// *SubgraphCost — every caller must observe the SAME pointer, because delta
// handles cache these pointers and entry identity must be stable.
func TestColdMissRaceKeepsFirst(t *testing.T) {
	g := models.MustBuild("vgg16")
	subs := windows(g)
	const goroutines = 16
	for round := 0; round < 20; round++ {
		ev := testEvaluator(t, g) // fresh cache: every key cold
		got := make([][]*SubgraphCost, goroutines)
		var start, wg sync.WaitGroup
		start.Add(1)
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				start.Wait()
				res := make([]*SubgraphCost, len(subs))
				for i, m := range subs {
					res[i] = ev.Subgraph(m)
				}
				got[w] = res
			}(w)
		}
		start.Done()
		wg.Wait()
		for w := 1; w < goroutines; w++ {
			for i := range subs {
				if got[w][i] != got[0][i] {
					t.Fatalf("round %d: goroutine %d got a different *SubgraphCost for window %d", round, w, i)
				}
			}
		}
		if entries := ev.CacheEntries(); entries != int64(len(subs)) {
			t.Fatalf("round %d: %d cache entries, want %d (duplicate insert?)", round, entries, len(subs))
		}
	}
}

// TestColdStressDisjoint hammers one evaluator from 16 goroutines with
// DISJOINT cold member sets — no shared keys, so every goroutine drives the
// full cold path (scratch pool, deriver, open-addressed insert incl. table
// growth and arena reallocation) concurrently. Run under -race in CI; the
// assertions here check pointer stability across growth.
func TestColdStressDisjoint(t *testing.T) {
	g := models.MustBuild("resnet152")
	ev := testEvaluator(t, g)
	ids := g.ComputeIDs()
	const goroutines = 16
	// Partition the singleton + pair key space among goroutines.
	perG := make([][][]int, goroutines)
	for i := 0; i < len(ids); i++ {
		w := i % goroutines
		perG[w] = append(perG[w], []int{ids[i]})
		if i+1 < len(ids) {
			perG[w] = append(perG[w], []int{ids[i], ids[i+1]})
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			first := make([]*SubgraphCost, len(perG[w]))
			for round := 0; round < 8; round++ {
				for i, m := range perG[w] {
					c := ev.Subgraph(m)
					if round == 0 {
						first[i] = c
						continue
					}
					if c != first[i] {
						errs[w] = fmt.Errorf("goroutine %d: pointer for set %v changed across rounds", w, m)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	want := int64(len(ids) + len(ids) - 1)
	if entries := ev.CacheEntries(); entries != want {
		t.Fatalf("%d cache entries, want %d", entries, want)
	}
}
