package eval

import (
	"sync"
	"testing"

	"cocco/internal/graph"
	"cocco/internal/hw"
	"cocco/internal/partition"
	"cocco/internal/tiling"
)

// toy builds in -> c1 -> c2 -> c3 with known sizes.
func toy(t *testing.T) (*graph.Graph, []int) {
	t.Helper()
	b := graph.NewBuilder("toy")
	in := b.Input("in", 8, 32, 32)
	c1 := b.Conv("c1", in, 16, 3, 1)
	c2 := b.Conv("c2", c1, 16, 3, 1)
	c3 := b.Conv("c3", c2, 16, 3, 2)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g, []int{in, c1, c2, c3}
}

func testEvaluator(t *testing.T, g *graph.Graph) *Evaluator {
	t.Helper()
	ev, err := New(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestSubgraphRawCosts(t *testing.T) {
	g, ids := toy(t)
	ev := testEvaluator(t, g)
	c1, c2 := ids[1], ids[2]

	c := ev.Subgraph([]int{c1, c2})
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	n1, n2 := g.Node(c1), g.Node(c2)
	if c.WeightBytes != n1.WeightBytes()+n2.WeightBytes() {
		t.Errorf("weights = %d", c.WeightBytes)
	}
	// Input: the full `in` tensor; output: c2 (consumed by c3 outside).
	if c.InBytes != g.Node(ids[0]).OutBytes() {
		t.Errorf("in = %d", c.InBytes)
	}
	if c.OutBytes != n2.OutBytes() {
		t.Errorf("out = %d (c1 is internal, c2 crosses)", c.OutBytes)
	}
	if c.EMABytes() != c.WeightBytes+c.InBytes+c.OutBytes {
		t.Error("EMABytes identity")
	}
	if c.MACs != n1.MACs()+n2.MACs() {
		t.Errorf("MACs = %d", c.MACs)
	}
	if c.ActFootprint <= 0 || c.GLBAccessBytes <= 0 {
		t.Error("non-positive footprint/traffic")
	}
}

func TestSubgraphMemoization(t *testing.T) {
	g, ids := toy(t)
	ev := testEvaluator(t, g)
	a := ev.Subgraph([]int{ids[1], ids[2]})
	b := ev.Subgraph([]int{ids[2], ids[1]}) // order must not matter
	if a != b {
		t.Error("memoization missed identical member set")
	}
	hits, calls := ev.CacheStats()
	if calls != 2 || hits != 1 {
		t.Errorf("cache stats = %d/%d", hits, calls)
	}
}

func TestFusionReducesEMA(t *testing.T) {
	g, _ := toy(t)
	ev := testEvaluator(t, g)
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: hw.MiB, WeightBytes: hw.MiB}

	singles := ev.Partition(partition.Singletons(g), mem)
	whole := ev.Partition(partition.Whole(g), mem)
	if whole.EMABytes >= singles.EMABytes {
		t.Errorf("fusion did not reduce EMA: %d vs %d", whole.EMABytes, singles.EMABytes)
	}
	// Lower bound: weights + model input + model output (paper Figure 1).
	min := g.TotalWeightBytes() + g.Node(0).OutBytes() + g.Node(3).OutBytes()
	if whole.EMABytes != min {
		t.Errorf("whole-graph EMA = %d, want the lower bound %d", whole.EMABytes, min)
	}
}

func TestFitsRules(t *testing.T) {
	g, ids := toy(t)
	ev := testEvaluator(t, g)
	c := ev.Subgraph([]int{ids[1], ids[2]})

	big := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: hw.MiB, WeightBytes: hw.MiB}
	if !ev.Fits(c, big) {
		t.Error("should fit a 1MB buffer")
	}
	tiny := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 128, WeightBytes: 128}
	if ev.Fits(c, tiny) {
		t.Error("multi-node subgraph should not fit 128 bytes")
	}
	// Singletons always fit (layer-level tiling fallback).
	s := ev.Subgraph([]int{ids[1]})
	if !ev.Fits(s, tiny) {
		t.Error("singleton must always fit")
	}
	// Shared-buffer accounting: act+wgt within the single capacity.
	shared := hw.MemConfig{Kind: hw.SharedBuffer, GlobalBytes: c.ActFootprint + c.WeightBytes}
	if !ev.Fits(c, shared) {
		t.Error("should exactly fit shared capacity")
	}
	shared.GlobalBytes--
	if ev.Fits(c, shared) {
		t.Error("should not fit one byte less")
	}
}

func TestPartitionResultConsistency(t *testing.T) {
	g, _ := toy(t)
	ev := testEvaluator(t, g)
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: hw.MiB, WeightBytes: hw.MiB}
	p := partition.Singletons(g)
	res := ev.Partition(p, mem)

	if !res.Feasible() {
		t.Fatalf("singletons infeasible: %v", res.Infeasible)
	}
	if res.NumSubgraphs != 3 {
		t.Errorf("NumSubgraphs = %d", res.NumSubgraphs)
	}
	// Sum of contributions equals the result.
	var ema int64
	var energy float64
	var lat int64
	for _, members := range p.Subgraphs() {
		ctr := ev.Contribution(ev.Subgraph(members), mem)
		ema += ctr.EMABytes
		energy += ctr.EnergyPJ
		lat += ctr.LatencyCycles
	}
	if ema != res.EMABytes || lat != res.LatencyCycles {
		t.Error("contributions do not sum to the partition result")
	}
	if diff := energy - res.EnergyPJ; diff > 1e-6 || diff < -1e-6 {
		t.Error("energy does not sum")
	}
	if res.AvgBWBytesPerSec <= 0 {
		t.Error("bandwidth not computed")
	}
	if res.MetricValue(MetricEMA) != float64(res.EMABytes) {
		t.Error("MetricValue EMA")
	}
	if res.MetricValue(MetricEnergy) != res.EnergyPJ {
		t.Error("MetricValue energy")
	}
}

func TestCostFormulas(t *testing.T) {
	g, _ := toy(t)
	ev := testEvaluator(t, g)
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: hw.MiB, WeightBytes: hw.MiB}
	p := partition.Whole(g)

	// Formula 1: metric only.
	c1, res := ev.Cost(p, mem, Objective{Metric: MetricEMA})
	if c1 != float64(res.EMABytes) {
		t.Errorf("formula 1 cost = %g", c1)
	}
	// Formula 2: BUF_SIZE + α·metric.
	c2, res2 := ev.Cost(p, mem, Objective{Metric: MetricEnergy, Alpha: 0.002})
	want := float64(mem.TotalBytes()) + 0.002*res2.EnergyPJ
	if c2 != want {
		t.Errorf("formula 2 cost = %g, want %g", c2, want)
	}
}

func TestBatchScaling(t *testing.T) {
	g, _ := toy(t)
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: hw.MiB, WeightBytes: hw.MiB}
	p1 := hw.DefaultPlatform()
	p8 := hw.DefaultPlatform()
	p8.Batch = 8

	e1 := MustNew(g, p1, tiling.DefaultConfig())
	e8 := MustNew(g, p8, tiling.DefaultConfig())
	w := partition.Whole(g)
	r1 := e1.Partition(w, mem)
	r8 := e8.Partition(w, mem)

	// Weights amortized: EMA grows sub-linearly with batch.
	if r8.EMABytes >= 8*r1.EMABytes {
		t.Errorf("batch EMA not sub-linear: %d vs 8×%d", r8.EMABytes, r1.EMABytes)
	}
	if r8.EMABytes <= r1.EMABytes {
		t.Error("batch EMA should grow")
	}
	// Latency grows at most linearly (compute-bound subgraphs are exactly
	// linear in batch; rounding may add a cycle per subgraph).
	if r8.LatencyCycles <= r1.LatencyCycles || r8.LatencyCycles > 8*r1.LatencyCycles+int64(r1.NumSubgraphs) {
		t.Errorf("batch latency = %d vs single %d", r8.LatencyCycles, r1.LatencyCycles)
	}
}

func TestBatchSubLinearLatencyWhenWeightBound(t *testing.T) {
	// A weight-heavy layer is DRAM-bound: its weights load once per batch,
	// so batch-8 latency must be strictly sub-linear (< 8×).
	b := graph.NewBuilder("fcnet")
	in := b.Input("in", 256, 4, 4)
	fc1 := b.FC("fc1", in, 4096)
	b.FC("fc2", fc1, 4096)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: hw.MiB, WeightBytes: 64 * hw.MiB}
	p1 := hw.DefaultPlatform()
	p8 := hw.DefaultPlatform()
	p8.Batch = 8
	w := partition.Whole(g)
	r1 := MustNew(g, p1, tiling.DefaultConfig()).Partition(w, mem)
	r8 := MustNew(g, p8, tiling.DefaultConfig()).Partition(w, mem)
	if r8.LatencyCycles >= 4*r1.LatencyCycles {
		t.Errorf("weight-bound batch-8 latency %d not sub-linear vs %d", r8.LatencyCycles, r1.LatencyCycles)
	}
}

func TestMultiCoreScaling(t *testing.T) {
	g, _ := toy(t)
	mem := hw.MemConfig{Kind: hw.SharedBuffer, GlobalBytes: hw.MiB}
	p1 := hw.DefaultPlatform()
	p4 := hw.DefaultPlatform()
	p4.Cores = 4

	e1 := MustNew(g, p1, tiling.DefaultConfig())
	e4 := MustNew(g, p4, tiling.DefaultConfig())
	w := partition.Whole(g)
	r1 := e1.Partition(w, mem)
	r4 := e4.Partition(w, mem)

	// More cores: lower latency, higher energy (crossbar rotation), smaller
	// per-core weight footprint — the Table 3 trends.
	if r4.LatencyCycles >= r1.LatencyCycles {
		t.Errorf("4-core latency %d not below 1-core %d", r4.LatencyCycles, r1.LatencyCycles)
	}
	if r4.EnergyPJ <= r1.EnergyPJ {
		t.Errorf("4-core energy %g not above 1-core %g", r4.EnergyPJ, r1.EnergyPJ)
	}
	if r4.MaxWgtFootprint >= r1.MaxWgtFootprint {
		t.Errorf("per-core weights %d not below single-core %d", r4.MaxWgtFootprint, r1.MaxWgtFootprint)
	}
}

func TestPrefetchCheck(t *testing.T) {
	// Two adjacent two-layer subgraphs whose weights fit individually but
	// not together must be flagged only under the prefetch check.
	b := graph.NewBuilder("pf")
	in := b.Input("in", 64, 8, 8)
	c1 := b.Conv("c1", in, 64, 3, 1)
	c2 := b.Conv("c2", c1, 64, 3, 1)
	c3 := b.Conv("c3", c2, 64, 3, 1)
	c4 := b.Conv("c4", c3, 64, 3, 1)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.Len())
	assign[in] = partition.Unassigned
	assign[c1], assign[c2] = 0, 0
	assign[c3], assign[c4] = 1, 1
	p, err := partition.From(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	// Each subgraph: 2 convs × 36864B = 73728B of weights.
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: hw.MiB, WeightBytes: 100_000}

	plain := MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	if res := plain.Partition(p, mem); !res.Feasible() {
		t.Fatalf("single-buffered evaluation infeasible: %v", res.Infeasible)
	}
	pf := MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	pf.EnablePrefetchCheck()
	res := pf.Partition(p, mem)
	if res.Feasible() {
		t.Error("prefetch check missed the over-capacity pair")
	}
	// A big enough weight buffer clears it.
	mem.WeightBytes = 200_000
	if res := pf.Partition(p, mem); !res.Feasible() {
		t.Errorf("prefetch check false positive: %v", res.Infeasible)
	}
}

func TestNewValidates(t *testing.T) {
	g, _ := toy(t)
	bad := hw.DefaultPlatform()
	bad.Cores = 0
	if _, err := New(g, bad, tiling.DefaultConfig()); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestConcurrentSubgraphEvaluation(t *testing.T) {
	g, ids := toy(t)
	ev := testEvaluator(t, g)
	var wg sync.WaitGroup
	results := make([]*SubgraphCost, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = ev.Subgraph([]int{ids[1], ids[2]})
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i].EMABytes() != results[0].EMABytes() {
			t.Fatal("concurrent evaluations disagree")
		}
	}
}

func TestMetricString(t *testing.T) {
	if MetricEMA.String() != "EMA" || MetricEnergy.String() != "energy" {
		t.Error("metric strings")
	}
}
