// Package eval is the evaluation environment of the paper (§4.4.4, §5.1.2):
// a modified Timeloop/MAESTRO-style analytic simulator that, given a graph
// partition and a memory configuration, reports external memory access
// (EMA), energy, latency, and bandwidth requirements, and checks buffer
// feasibility through the consumption-centric tiling footprints.
//
// Per-subgraph raw costs depend only on the subgraph's member set, so they
// are memoized aggressively — the genetic search re-evaluates overlapping
// subgraphs constantly and the cache is what makes 10^5-sample searches
// cheap.
package eval

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cocco/internal/graph"
	"cocco/internal/hw"
	"cocco/internal/partition"
	"cocco/internal/tiling"
)

// Metric selects the mapping-cost metric M of the paper's cost functions.
type Metric int

const (
	// MetricEMA optimizes external memory access bytes (Formula 1 with
	// M = EMA; used in §5.2).
	MetricEMA Metric = iota
	// MetricEnergy optimizes energy in pJ (used in §5.3).
	MetricEnergy
)

func (m Metric) String() string {
	if m == MetricEnergy {
		return "energy"
	}
	return "EMA"
}

// Objective is the optimization objective. With Alpha == 0 it is the
// partition-only Formula 1; with Alpha > 0 it is the co-exploration
// Formula 2: BUF_SIZE + α·ΣCost_M (buffer size in bytes, energy in pJ).
type Objective struct {
	Metric Metric
	Alpha  float64
}

// SubgraphCost holds the partition-independent raw costs of one subgraph.
type SubgraphCost struct {
	// Members are the subgraph's node ids (ascending).
	Members []int

	// WeightBytes is the total weight footprint (and weight EMA per pass).
	WeightBytes int64
	// InBytes is the activation bytes loaded from DRAM (external producers'
	// tensors, each loaded exactly once thanks to full on-chip reuse).
	InBytes int64
	// OutBytes is the activation bytes written back to DRAM (tensors
	// consumed by later subgraphs or model outputs).
	OutBytes int64
	// ActFootprint is the on-chip activation requirement from the
	// consumption-centric scheme (MAIN+SIDE over all nodes).
	ActFootprint int64
	// MACs is the subgraph's multiply-accumulate count.
	MACs int64
	// ComputeCycles is the single-core, batch-1 compute time under each
	// layer's best PE-array mapping (internal/mapper).
	ComputeCycles int64
	// GLBAccessBytes approximates global-buffer traffic: every produced or
	// loaded byte written once, plus reads per consumer edge scaled by the
	// consumer's window-overlap factor.
	GLBAccessBytes int64

	// Err is non-nil if the tiling derivation failed; such a subgraph is
	// never feasible.
	Err error
}

// EMABytes is the subgraph's external traffic for one sample.
func (c *SubgraphCost) EMABytes() int64 { return c.WeightBytes + c.InBytes + c.OutBytes }

// shardBits/cacheShards fix the number of independently locked cost-cache
// segments. The parallel GA hits the cache from every worker on every sample,
// so a single mutex serializes the whole search; 64 shards keep contention
// negligible at any realistic core count for a few KiB of fixed overhead.
// The shard is chosen by the TOP bits of the key hash; the open-addressed
// probe inside a shard uses the low bits, so the two never correlate.
const (
	shardBits   = 6
	cacheShards = 1 << shardBits
)

// cacheEntry is one memoized subgraph cost. The key bytes live in the
// shard's append-only arena (off/klen), so an entry is 24 bytes + pointer
// with no per-entry string header, and the stored 64-bit hash lets probes
// skip full key comparisons on non-matches.
type cacheEntry struct {
	hash uint64
	off  uint32
	klen uint32
	c    *SubgraphCost
}

// cacheShard is one independently locked segment of the cost cache: an
// open-addressed slot table (linear probing, power-of-two sized, 0 = empty,
// else 1+index into entries) over an append-only entry array and key arena.
// Entries are never deleted or moved, so *SubgraphCost pointers handed out
// stay stable forever — the invariant delta handles rely on.
type cacheShard struct {
	mu      sync.Mutex
	slots   []int32
	entries []cacheEntry
	arena   []byte
}

// lookup returns the cost stored under (h, key), or nil. Caller holds mu.
func (s *cacheShard) lookup(h uint64, key string) *SubgraphCost {
	if len(s.slots) == 0 {
		return nil
	}
	mask := uint64(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		ei := s.slots[i]
		if ei == 0 {
			return nil
		}
		e := &s.entries[ei-1]
		// string([]byte) == string compiles to an allocation-free compare.
		if e.hash == h && e.klen == uint32(len(key)) &&
			string(s.arena[e.off:e.off+e.klen]) == key {
			return e.c
		}
	}
}

// lookupBytes is lookup for a key held in a scratch byte buffer, so warm
// Subgraph calls never materialize a key string. Kept as a hand-expanded
// twin of lookup (methods cannot take the ~string|~[]byte type parameter
// that would merge them); any probe-loop change must land in both.
func (s *cacheShard) lookupBytes(h uint64, key []byte) *SubgraphCost {
	if len(s.slots) == 0 {
		return nil
	}
	mask := uint64(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		ei := s.slots[i]
		if ei == 0 {
			return nil
		}
		e := &s.entries[ei-1]
		if e.hash == h && e.klen == uint32(len(key)) &&
			bytes.Equal(s.arena[e.off:e.off+e.klen], key) {
			return e.c
		}
	}
}

// guardArena panics if appending klen key bytes to a shard arena already
// holding arenaLen bytes would push the new entry's offset+length past the
// uint32 range cacheEntry stores. Without the guard the uint32 conversions
// in insert/insertBytes silently truncate once a shard's arena crosses
// 4 GiB, corrupting every later entry's key window.
func guardArena(arenaLen, klen int) {
	if int64(arenaLen)+int64(klen) > math.MaxUint32 {
		panic(fmt.Sprintf("eval: cost-cache shard arena would grow to %d bytes, past the 4 GiB uint32 offset range", int64(arenaLen)+int64(klen)))
	}
}

// guardEntries panics if a shard holding n entries cannot accept another:
// slots store the 1-based entry index as an int32, so n+1 must stay within
// int32 range or place silently aliases an earlier entry.
func guardEntries(n int) {
	if int64(n)+1 > math.MaxInt32 {
		panic(fmt.Sprintf("eval: cost-cache shard entry count %d would overflow the int32 slot index", n+1))
	}
}

// insert stores c under (h, key), which must not be present. Caller holds mu.
func (s *cacheShard) insert(h uint64, key string, c *SubgraphCost) {
	guardArena(len(s.arena), len(key))
	off := len(s.arena)
	s.arena = append(s.arena, key...)
	s.place(h, uint32(off), uint32(len(key)), c)
}

// insertBytes is insert for a key held in a scratch buffer — the bytes go
// straight into the arena, so the cold path never materializes a key string.
func (s *cacheShard) insertBytes(h uint64, key []byte, c *SubgraphCost) {
	guardArena(len(s.arena), len(key))
	off := len(s.arena)
	s.arena = append(s.arena, key...)
	s.place(h, uint32(off), uint32(len(key)), c)
}

// place records the entry whose key bytes were just appended to the arena at
// off, growing the slot table at load factor 3/4. Caller holds mu.
func (s *cacheShard) place(h uint64, off, klen uint32, c *SubgraphCost) {
	guardEntries(len(s.entries))
	if len(s.slots) == 0 {
		s.slots = make([]int32, 64)
	}
	if (len(s.entries)+1)*4 > len(s.slots)*3 {
		grown := make([]int32, len(s.slots)*2)
		mask := uint64(len(grown) - 1)
		for ei := range s.entries {
			for i := s.entries[ei].hash & mask; ; i = (i + 1) & mask {
				if grown[i] == 0 {
					grown[i] = int32(ei + 1)
					break
				}
			}
		}
		s.slots = grown
	}
	s.entries = append(s.entries, cacheEntry{hash: h, off: off, klen: klen, c: c})
	mask := uint64(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		if s.slots[i] == 0 {
			s.slots[i] = int32(len(s.entries))
			return
		}
	}
}

// costCache is one shared subgraph-cost cache: cacheShards independently
// locked segments, each an open-addressed table over an append-only entry
// array and key arena. It is owned by the GraphContext and keyed by core
// geometry (hw.Core), because a subgraph's raw cost depends on the platform
// ONLY through the per-core compute-cycle table — memory capacities, buffer
// kind, core count, and batch all enter later, in Contribution. Every
// evaluator fanned out of one context with the same core geometry therefore
// shares one costCache read/write: in a DSE sweep only the first config per
// geometry pays cold costing and every sibling gets warm hits. The
// keep-first cold-miss contract (the first inserted *SubgraphCost wins,
// losers discard their duplicate) holds across sibling evaluators exactly
// as it holds across goroutines of one evaluator, so the pointer identity
// delta handles rely on is cache-wide, never per-evaluator.
type costCache struct {
	shards [cacheShards]cacheShard
}

// entries returns the number of distinct subgraphs the cache holds. It is
// fully deterministic under concurrency: the set of cached subgraphs depends
// only on which member sets were ever evaluated, not on which goroutine or
// sibling evaluator won a cold-miss race.
func (cc *costCache) entries() int64 {
	var n int64
	for i := range cc.shards {
		s := &cc.shards[i]
		s.mu.Lock()
		n += int64(len(s.entries))
		s.mu.Unlock()
	}
	return n
}

// Evaluator evaluates partitions of one graph on one platform.
// It is safe for concurrent use: the subgraph-cost cache is sharded N ways
// by key hash so concurrent lookups only contend within a shard.
//
// An Evaluator is a thin per-(platform, tiling-config) layer over a shared,
// immutable GraphContext: the context owns every graph-derived table, the
// Deriver template, and the per-core-geometry cost caches, while the
// evaluator adds only its platform, hit/call counters, and scratch pools.
// New builds a private context; GraphContext.NewEvaluator shares one across
// many evaluators (the batched-DSE fast path), and evaluators with the same
// core geometry share one cost cache through it.
type Evaluator struct {
	ctx      *GraphContext
	platform hw.Platform
	prefetch bool

	// cycles is the per-node mapper.NodeCycles table for platform.Core —
	// the only per-platform table subgraph costing needs (memoized on the
	// context per core geometry, shared read-only).
	cycles []int64

	// cache is the context's shared cost cache for platform.Core. Sibling
	// evaluators of the same geometry hold the same pointer; evaluators of
	// different geometries never do, so costs cannot cross geometries.
	cache *costCache

	// scratch pools per-goroutine evalScratch state (membership marks, the
	// tiling Deriver, and the member-key decode buffer), making the whole
	// cold path allocation-free apart from the SubgraphCost it produces.
	scratch sync.Pool

	// partPool pools partitionEval's prefetch-pass scratch (per-subgraph
	// weight shares and flags), keeping warm partition evaluations
	// allocation-free beyond the Result they return.
	partPool sync.Pool

	hits       atomic.Int64
	calls      atomic.Int64
	deltaReuse atomic.Int64
}

// evalScratch is the reusable per-goroutine state of one cold evaluation.
type evalScratch struct {
	inSet   *graph.Marks    // subgraph membership
	seenExt *graph.Marks    // external producers already charged
	der     *tiling.Deriver // nil when the tiling config is invalid
	members []int           // sorted-members / member-key decode buffer
	keyBuf  []byte          // member-key build buffer
}

// EnablePrefetchCheck makes feasibility account for the weight prefetch of
// §5.1.2 ("prefetch weights of the next subgraph during the current
// computing"): consecutive multi-layer subgraphs must fit both weight sets
// in the weight buffer simultaneously. Off by default (single-buffered
// weights), matching the evaluation's main configuration; the ablation
// benchmarks quantify the difference. Call before the first evaluation.
func (e *Evaluator) EnablePrefetchCheck() { e.prefetch = true }

// New returns an Evaluator for g on the given platform, precomputing the
// per-node cost tables (weights, output bytes, MACs, best-mapping compute
// cycles, GLB replication factors) the subgraph costing sums over.
//
// New builds a private GraphContext per call. Callers evaluating one graph
// under many platform or memory configurations should build the context
// once with NewGraphContext and fan evaluators out of it — the results are
// bit-identical and the graph-derived cold path is paid once.
func New(g *graph.Graph, p hw.Platform, tcfg tiling.Config) (*Evaluator, error) {
	return NewGraphContext(g, tcfg).NewEvaluator(p)
}

// MustNew is New that panics on error.
func MustNew(g *graph.Graph, p hw.Platform, tcfg tiling.Config) *Evaluator {
	e, err := New(g, p, tcfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Graph returns the evaluated graph.
func (e *Evaluator) Graph() *graph.Graph { return e.ctx.g }

// Context returns the shared graph context the evaluator was built over.
func (e *Evaluator) Context() *GraphContext { return e.ctx }

// Platform returns the platform.
func (e *Evaluator) Platform() hw.Platform { return e.platform }

// CacheStats reports THIS evaluator's memoization effectiveness (hits, total
// lookups) — the counters are per-evaluator even though the cache itself is
// shared per core geometry, so a DSE sweep can attribute warm hits to the
// config that made them. Lookups are deterministic for a fixed-seed search,
// but with concurrent callers (or sibling evaluators priming shared keys)
// hits may vary by a few counts across runs; use CacheEntries for a
// scheduling-independent measure.
func (e *Evaluator) CacheStats() (hits, calls int64) {
	return e.hits.Load(), e.calls.Load()
}

// DeltaStats reports how many subgraph costs PartitionDelta served straight
// from carried handles — lookups that never touched the cost cache (and so
// are invisible to CacheStats).
func (e *Evaluator) DeltaStats() (reused int64) { return e.deltaReuse.Load() }

// CacheEntries reports the number of distinct subgraphs in the SHARED cost
// cache this evaluator uses — sibling evaluators of the same core geometry
// report the same number, including entries a sibling computed. Unlike the
// per-evaluator hit counter it is fully deterministic under concurrency:
// the set of evaluated subgraphs depends only on the search trajectory, not
// on which goroutine won a cold-miss race (losers discard their duplicate,
// so an entry is inserted exactly once per distinct key).
func (e *Evaluator) CacheEntries() int64 { return e.cache.entries() }

// hashKey is 64-bit FNV-1a over the canonical member key — computed once per
// lookup; the top bits pick the shard and the full hash drives the
// open-addressed probe, so neither the shard choice nor the table walks the
// key again (only a final confirming compare on a hash match does). Generic
// over ~string | ~[]byte so the interned-key and scratch-buffer paths share
// one body (unlike lookup/lookupBytes, which stay hand-expanded twins:
// methods cannot take this type parameter).
func hashKey[K ~string | ~[]byte](key K) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// Subgraph computes (or returns the memoized) raw cost of the subgraph with
// the given member ids. Members need not be sorted. The sort and key build
// happen in pooled scratch, so a warm call performs no allocations.
func (e *Evaluator) Subgraph(members []int) *SubgraphCost {
	sc := e.scratch.Get().(*evalScratch)
	sc.members = append(sc.members[:0], members...)
	sort.Ints(sc.members)
	sc.keyBuf = partition.AppendMemberKey(sc.keyBuf[:0], sc.members)

	h := hashKey(sc.keyBuf)
	s := &e.cache.shards[h>>(64-shardBits)]
	e.calls.Add(1)
	s.mu.Lock()
	if c := s.lookupBytes(h, sc.keyBuf); c != nil {
		s.mu.Unlock()
		e.scratch.Put(sc)
		e.hits.Add(1)
		return c
	}
	s.mu.Unlock()

	c := e.computeSubgraph(sc, sc.members)

	s.mu.Lock()
	if first := s.lookupBytes(h, sc.keyBuf); first != nil {
		s.mu.Unlock()
		e.scratch.Put(sc)
		return first
	}
	s.insertBytes(h, sc.keyBuf, c)
	s.mu.Unlock()
	e.scratch.Put(sc)
	return c
}

// subgraphByKey looks the cost up by its canonical member key, computing and
// inserting it on a miss. Two goroutines (or two sibling evaluators sharing
// the cache) missing on the same cold key may both compute it; the insert
// re-checks under the write lock and keeps the FIRST inserted *SubgraphCost,
// discarding the duplicate, so the pointer identity that delta handles (and
// entry stability) rely on holds even under a cold-miss race.
func (e *Evaluator) subgraphByKey(key string) *SubgraphCost {
	h := hashKey(key)
	s := &e.cache.shards[h>>(64-shardBits)]

	e.calls.Add(1)
	s.mu.Lock()
	if c := s.lookup(h, key); c != nil {
		s.mu.Unlock()
		e.hits.Add(1)
		return c
	}
	s.mu.Unlock()

	sc := e.scratch.Get().(*evalScratch)
	sc.members = partition.AppendKeyMembers(sc.members[:0], key)
	c := e.computeSubgraph(sc, sc.members)
	e.scratch.Put(sc)

	s.mu.Lock()
	if first := s.lookup(h, key); first != nil {
		s.mu.Unlock()
		return first
	}
	s.insert(h, key, c)
	s.mu.Unlock()
	return c
}

// computeSubgraph prices one subgraph as table arithmetic over the member
// ids: every node-level quantity was precomputed in New, membership tests
// are epoch-stamped probes, and the tiling footprint comes from the pooled
// scratch Deriver — the only allocations are the returned SubgraphCost and
// its owned member slice. members is borrowed (scratch); it is copied.
func (e *Evaluator) computeSubgraph(sc *evalScratch, members []int) *SubgraphCost {
	c := &SubgraphCost{Members: append([]int(nil), members...)}

	gc := e.ctx
	if gc.tcfgErr != nil {
		c.Err = fmt.Errorf("eval: subgraph %v: %w", c.Members, gc.tcfgErr)
		return c
	}
	fp, err := sc.der.TotalFootprint(c.Members)
	if err != nil {
		c.Err = fmt.Errorf("eval: subgraph %v: %w", c.Members, err)
		return c
	}
	c.ActFootprint = fp

	sc.inSet.Reset()
	for _, id := range c.Members {
		sc.inSet.Set(id)
	}
	sc.seenExt.Reset()
	for _, id := range c.Members {
		c.WeightBytes += gc.weightBytes[id]
		c.MACs += gc.macs[id]
		c.ComputeCycles += e.cycles[id]

		// Inputs: external producers, each counted once.
		for _, p := range gc.g.PredIDs(id) {
			pi := int(p)
			if !sc.inSet.Has(pi) && !sc.seenExt.Has(pi) {
				sc.seenExt.Set(pi)
				c.InBytes += gc.outBytes[pi]
			}
		}
		// Outputs: consumed outside the subgraph or a model output.
		succ := gc.g.SuccIDs(id)
		out := len(succ) == 0
		for _, s := range succ {
			if !sc.inSet.Has(int(s)) {
				out = true
				break
			}
		}
		if out {
			c.OutBytes += gc.outBytes[id]
		}
	}

	// Global-buffer traffic: every byte produced in (or loaded into) the
	// buffer is written once; every consumer reads its producer's tensor
	// with the window-overlap replication factor ceil(F/s) per dimension.
	c.GLBAccessBytes = c.InBytes
	for _, id := range c.Members {
		c.GLBAccessBytes += gc.outBytes[id] // write of produced tile stream
		rep := gc.rep[id]
		for _, p := range gc.g.PredIDs(id) {
			c.GLBAccessBytes += gc.outBytes[int(p)] * rep
		}
	}
	return c
}

// Fits reports whether the subgraph fits the memory configuration:
// activations in the global buffer and weights in the weight buffer for the
// separate design, or their sum in the shared capacity.
//
// Single-layer subgraphs always fit: a lone layer falls back to classic
// layer-level output-tiled execution (§2.2.1), which handles tensors and
// weights of any size by streaming — with the same EMA as our model already
// charges (weights, inputs, and outputs each move once).
func (e *Evaluator) Fits(c *SubgraphCost, mem hw.MemConfig) bool {
	if c.Err != nil {
		return false
	}
	if len(c.Members) == 1 {
		return true
	}
	if mem.Kind == hw.SharedBuffer {
		return c.ActFootprint+c.WeightBytes <= mem.GlobalBytes
	}
	return c.ActFootprint <= mem.GlobalBytes && c.WeightBytes <= mem.WeightBytes
}

// Result is the full evaluation of a partition under a memory configuration.
type Result struct {
	// EMABytes is total external traffic (weights once per subgraph,
	// activations scaled by batch).
	EMABytes int64
	// EnergyPJ is total energy: DRAM + buffers + MACs + crossbar.
	EnergyPJ float64
	// LatencyCycles is the end-to-end latency in core cycles.
	LatencyCycles int64
	// AvgBWBytesPerSec is EMABytes divided by the latency in seconds.
	AvgBWBytesPerSec float64
	// MaxActFootprint and MaxWgtFootprint are the largest per-subgraph
	// buffer requirements (per core).
	MaxActFootprint int64
	MaxWgtFootprint int64
	// Infeasible lists subgraph ids that do not fit the memory config.
	Infeasible []int
	// NumSubgraphs echoes the partition size.
	NumSubgraphs int
}

// Feasible reports whether every subgraph fits.
func (r *Result) Feasible() bool { return len(r.Infeasible) == 0 }

// LatencySeconds converts the cycle count at the platform frequency.
func (e *Evaluator) LatencySeconds(cycles int64) float64 {
	return float64(cycles) / float64(e.platform.Core.FreqHz)
}

// Contribution is one subgraph's share of the partition-level result under
// a given memory configuration, with multi-core and batch semantics applied.
type Contribution struct {
	EMABytes      int64
	EnergyPJ      float64
	LatencyCycles int64
	WgtPerCore    int64
	Fits          bool
}

// Contribution computes the subgraph's cost share under mem. Multi-core and
// batch semantics follow §5.4.2–5.4.3: the subgraph's weights are sharded
// across cores and rotated over the crossbar; batch samples reuse the
// resident weights and are spread over cores.
func (e *Evaluator) Contribution(c *SubgraphCost, mem hw.MemConfig) Contribution {
	cores := int64(e.platform.Cores)
	batch := int64(e.platform.Batch)
	en := e.platform.Energy
	core := e.platform.Core

	glbCap := mem.GlobalBytes
	wgtCap := mem.WeightBytes
	if mem.Kind == hw.SharedBuffer {
		wgtCap = mem.GlobalBytes
	}

	var out Contribution
	out.WgtPerCore = ceilDiv64(c.WeightBytes, cores)
	out.Fits = c.Err == nil
	if out.Fits && len(c.Members) > 1 {
		if mem.Kind == hw.SharedBuffer {
			out.Fits = c.ActFootprint+out.WgtPerCore <= mem.GlobalBytes
		} else {
			out.Fits = c.ActFootprint <= mem.GlobalBytes && out.WgtPerCore <= mem.WeightBytes
		}
	}

	actBytes := (c.InBytes + c.OutBytes) * batch
	out.EMABytes = c.WeightBytes + actBytes

	// Energy: DRAM for all external traffic; crossbar for weight rotation
	// (each weight byte traverses cores-1 hops to visit every core); buffer
	// accesses; MACs.
	out.EnergyPJ = en.DRAMBytes(out.EMABytes)
	if cores > 1 {
		out.EnergyPJ += en.Crossbar(c.WeightBytes * (cores - 1))
	}
	out.EnergyPJ += en.SRAMBytes(c.GLBAccessBytes*batch, glbCap)
	out.EnergyPJ += en.SRAMBytes(c.WeightBytes, wgtCap)
	out.EnergyPJ += en.MACs(c.MACs * batch)

	// Latency: compute spread over cores vs DRAM traffic over the
	// per-core 16 GB/s channels (each core loads its own shard/samples).
	// Compute cycles come from each layer's best PE-array mapping
	// (internal/mapper), derated further by the platform's residual
	// utilization factor for mapping losses the spatial model cannot see.
	compute := float64(c.ComputeCycles*batch) / core.Utilization
	computeCy := ceilDiv64(int64(compute), cores)
	dram := core.DRAMCycles(ceilDiv64(out.EMABytes, cores))
	out.LatencyCycles = maxI64(computeCy, dram)
	return out
}

// SubgraphMetric returns the subgraph's contribution to the given metric
// under mem, as summed by Partition. Greedy/DP/enumeration baselines use
// this to score candidate subgraphs locally (the metrics decompose as sums
// over subgraphs).
func (e *Evaluator) SubgraphMetric(c *SubgraphCost, mem hw.MemConfig, m Metric) float64 {
	ctr := e.Contribution(c, mem)
	if m == MetricEnergy {
		return ctr.EnergyPJ
	}
	return float64(ctr.EMABytes)
}

// Partition evaluates the whole partition under mem by summing per-subgraph
// contributions.
func (e *Evaluator) Partition(p *partition.Partition, mem hw.MemConfig) *Result {
	subs := p.Subgraphs()
	return e.partitionEval(len(subs), mem, func(si int) *SubgraphCost {
		return e.Subgraph(subs[si])
	})
}

// PartitionDelta evaluates the partition like Partition but through the
// per-subgraph cost handles carried on the partition itself: subgraphs whose
// handle survived the producing operator (TryModifyNode/TrySplit/TryMerge
// carry handles for every untouched subgraph) cost one pointer load, and only
// the dirty ones re-enter the cost cache — via the subgraph's interned member
// key, so even those skip the per-lookup copy/sort/string build. Partitions
// with no carried state (fresh, crossover-built, or deserialized) fall back
// to a full recompute that fills every handle.
//
// The result is bit-identical to Partition: both paths feed the same
// contributions through partitionEval in the same subgraph order, and a
// handle is only ever carried when the member set is provably unchanged.
// Handle fills mutate p's caches, so the caller must own p (single writer).
func (e *Evaluator) PartitionDelta(p *partition.Partition, mem hw.MemConfig) *Result {
	return e.partitionEval(p.NumSubgraphs(), mem, func(si int) *SubgraphCost {
		if h, ok := p.CostHandle(si).(costHandle); ok && h.cache == e.cache {
			e.deltaReuse.Add(1)
			return h.c
		}
		c := e.subgraphByKey(p.SubgraphKey(si))
		p.SetCostHandle(si, costHandle{cache: e.cache, c: c})
		return c
	})
}

// costHandle is the opaque per-subgraph cache entry PartitionDelta stores on
// partitions. It records the owning SHARED cost cache, not the evaluator:
// raw subgraph costs depend only on (graph, tiling config, core geometry),
// so a handle filled by one evaluator stays valid for every sibling sharing
// its cache — a partition migrating between same-geometry DSE configs keeps
// its handles warm. A handle from a different cache (another graph, tiling
// config, or core geometry — e.g. an Options.Init seed from a search on
// different hardware) must not be reused: it is treated as dirty and
// recomputed here, so costs never cross geometries.
type costHandle struct {
	cache *costCache
	c     *SubgraphCost
}

// partScratch is the pooled scratch of partitionEval's prefetch pass: the
// per-subgraph weight shares and flags the cross-subgraph double-buffering
// check re-reads after the main accumulation loop. Every field is fully
// overwritten for each subgraph, so no clearing is needed between calls.
type partScratch struct {
	wgts   []int64
	single []bool
	bad    []bool
}

// grow sizes the scratch slices to n subgraphs, reusing capacity.
func (ps *partScratch) grow(n int) {
	if cap(ps.wgts) < n {
		ps.wgts = make([]int64, n)
		ps.single = make([]bool, n)
		ps.bad = make([]bool, n)
	}
	ps.wgts = ps.wgts[:n]
	ps.single = ps.single[:n]
	ps.bad = ps.bad[:n]
}

// partitionEval is the shared aggregation core of Partition and
// PartitionDelta: costOf supplies subgraph si's raw cost, and the aggregates
// (sums, maxes, infeasibility, prefetch pass) are accumulated in ascending
// subgraph order so every caller produces bit-identical results, float
// summation included.
//
// With prefetch off the aggregates accumulate straight into the Result, so a
// warm delta evaluation allocates nothing but the Result itself (plus its
// Infeasible slice when subgraphs do not fit). The prefetch pass re-reads
// every subgraph's weight share and singleton flag after the main loop, so
// that path borrows pooled scratch instead of allocating per call.
func (e *Evaluator) partitionEval(nsub int, mem hw.MemConfig, costOf func(si int) *SubgraphCost) *Result {
	res := &Result{NumSubgraphs: nsub}
	var ps *partScratch
	if e.prefetch {
		ps, _ = e.partPool.Get().(*partScratch)
		if ps == nil {
			ps = &partScratch{}
		}
		ps.grow(nsub)
	}
	for si := 0; si < nsub; si++ {
		c := costOf(si)
		ctr := e.Contribution(c, mem)
		if ps != nil {
			ps.wgts[si] = ctr.WgtPerCore
			ps.single[si] = len(c.Members) <= 1
			ps.bad[si] = !ctr.Fits
		} else if !ctr.Fits {
			res.Infeasible = append(res.Infeasible, si)
		}
		if c.ActFootprint > res.MaxActFootprint {
			res.MaxActFootprint = c.ActFootprint
		}
		if ctr.WgtPerCore > res.MaxWgtFootprint {
			res.MaxWgtFootprint = ctr.WgtPerCore
		}
		res.EMABytes += ctr.EMABytes
		res.EnergyPJ += ctr.EnergyPJ
		res.LatencyCycles += ctr.LatencyCycles
	}
	if ps != nil {
		// Double-buffered weights: subgraph i and its prefetched successor
		// i+1 are resident together. Singletons stream (layer-level tiling
		// fallback) and are exempt, as in Fits.
		wgtCap := mem.WeightBytes
		if mem.Kind == hw.SharedBuffer {
			wgtCap = mem.GlobalBytes
		}
		for si := 0; si+1 < nsub; si++ {
			if ps.single[si] || ps.single[si+1] {
				continue
			}
			if ps.wgts[si]+ps.wgts[si+1] > wgtCap {
				ps.bad[si] = true
			}
		}
		for si := 0; si < nsub; si++ {
			if ps.bad[si] {
				res.Infeasible = append(res.Infeasible, si)
			}
		}
		e.partPool.Put(ps)
	}
	if res.LatencyCycles > 0 {
		res.AvgBWBytesPerSec = float64(res.EMABytes) / e.LatencySeconds(res.LatencyCycles)
	}
	return res
}

// MetricValue extracts the objective metric from a result.
func (r *Result) MetricValue(m Metric) float64 {
	if m == MetricEnergy {
		return r.EnergyPJ
	}
	return float64(r.EMABytes)
}

// Cost evaluates the paper's cost functions for the partition and memory
// configuration. Infeasible partitions return +Inf-like sentinel via ok =
// false; callers (the GA) repair rather than rank such genomes.
func (e *Evaluator) Cost(p *partition.Partition, mem hw.MemConfig, obj Objective) (cost float64, res *Result) {
	res = e.Partition(p, mem)
	cost = obj.Alpha * res.MetricValue(obj.Metric)
	if obj.Alpha == 0 {
		cost = res.MetricValue(obj.Metric)
	} else {
		cost += float64(mem.TotalBytes())
	}
	return cost, res
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func ceilDiv64(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
