package eval

import (
	"testing"

	"cocco/internal/hw"
	"cocco/internal/models"
)

// TestPartitionEvalAllocs pins the aggregation core's allocation budget in
// isolation (costOf serves precomputed costs, so nothing below the
// aggregates can allocate): with prefetch off the only allocation is the
// Result itself, and with prefetch on the pooled scratch keeps the
// steady-state identical — the per-call infeasible/costs/wgts slices the
// old implementation paid on every evaluation are gone.
func TestPartitionEvalAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector disables sync.Pool reuse; alloc pins are meaningless")
	}
	g := models.MustBuild("vgg16")
	ev := testEvaluator(t, g)
	ids := g.ComputeIDs()
	costs := make([]*SubgraphCost, len(ids))
	for i, id := range ids {
		costs[i] = ev.Subgraph([]int{id})
		if costs[i].Err != nil {
			t.Fatal(costs[i].Err)
		}
	}
	// Generous capacities: every subgraph fits, so no Infeasible appends.
	mem := hw.MemConfig{Kind: hw.SeparateBuffer, GlobalBytes: 64 * hw.MiB, WeightBytes: 64 * hw.MiB}
	costOf := func(si int) *SubgraphCost { return costs[si] }

	if allocs := testing.AllocsPerRun(100, func() {
		ev.partitionEval(len(costs), mem, costOf)
	}); allocs != 1 {
		t.Errorf("partitionEval (prefetch off) allocates %.1f per call, want 1 (the Result)", allocs)
	}

	ev.EnablePrefetchCheck()
	ev.partitionEval(len(costs), mem, costOf) // warm the scratch pool
	if allocs := testing.AllocsPerRun(100, func() {
		ev.partitionEval(len(costs), mem, costOf)
	}); allocs != 1 {
		t.Errorf("partitionEval (prefetch on, warm pool) allocates %.1f per call, want 1 (the Result)", allocs)
	}
}
