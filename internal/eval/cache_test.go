package eval

import (
	"strconv"
	"sync"
	"testing"

	"cocco/internal/partition"
)

func TestMemberKeyDistinct(t *testing.T) {
	// Ids that collided under the old 3-byte packing (differ only above
	// bit 23) must map to distinct keys now.
	a := partition.MemberKey([]int{1 << 24})
	b := partition.MemberKey([]int{0})
	if a == b {
		t.Error("keys collide across the 2^24 boundary")
	}
	if partition.MemberKey([]int{1, 2}) == partition.MemberKey([]int{1, 3}) {
		t.Error("distinct member sets share a key")
	}
}

func TestMemberKeyGuard(t *testing.T) {
	mustPanic := func(name string, ids []int) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: memberKey did not panic", name)
			}
		}()
		partition.MemberKey(ids)
	}
	mustPanic("negative id", []int{-1})
	if strconv.IntSize == 64 {
		// Non-constant shift so the expression compiles on 32-bit platforms
		// where the guard skips this case.
		one := 1
		mustPanic("id over 2^32", []int{one << 32})
	}
}

func TestCacheShardingConcurrent(t *testing.T) {
	g, ids := toy(t)
	ev := testEvaluator(t, g)
	subs := [][]int{
		{ids[1]}, {ids[2]}, {ids[3]},
		{ids[1], ids[2]}, {ids[2], ids[3]}, {ids[1], ids[2], ids[3]},
	}
	const goroutines = 8
	const rounds = 50
	results := make([][]*SubgraphCost, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, s := range subs {
					results[w] = append(results[w], ev.Subgraph(s))
				}
			}
		}(w)
	}
	wg.Wait()
	// Every goroutine must observe identical cost values for each subgraph.
	for w := 1; w < goroutines; w++ {
		for i := range results[0] {
			if results[w][i].EMABytes() != results[0][i].EMABytes() {
				t.Fatalf("goroutine %d saw a different cost for lookup %d", w, i)
			}
		}
	}
	hits, calls := ev.CacheStats()
	if want := int64(goroutines * rounds * len(subs)); calls != want {
		t.Errorf("calls = %d, want %d", calls, want)
	}
	// At most one cold compute per (goroutine, subgraph) pair can race past
	// the lookup; everything else must hit.
	if minHits := int64(goroutines*rounds*len(subs) - goroutines*len(subs)); hits < minHits {
		t.Errorf("hits = %d, want >= %d", hits, minHits)
	}
}
