package eval_test

// Shared-context equivalence suite: evaluators built from one shared
// eval.GraphContext must be bit-identical to standalone eval.New evaluators
// for the same (graph, platform, tiling config) — across the model zoo,
// several platforms, both buffer kinds, and under concurrent construction
// and evaluation. This is the contract the batched multi-config DSE driver
// (internal/dse) rests on: it fans hundreds of evaluators out of one
// context and must get exactly the numbers a from-scratch sweep would.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cocco/internal/core"
	"cocco/internal/eval"
	"cocco/internal/hw"
	"cocco/internal/models"
	"cocco/internal/partition"
	"cocco/internal/tiling"
)

// sweepPlatforms are the platform variants the equivalence matrix covers:
// the DSE sweep axes that share a core geometry (cores, batch) plus one
// variant with a different core, which must miss the context's cycle-table
// memo and still agree.
func sweepPlatforms() []hw.Platform {
	def := hw.DefaultPlatform()
	quad := hw.DefaultPlatform()
	quad.Cores = 4
	batched := hw.DefaultPlatform()
	batched.Cores = 2
	batched.Batch = 8
	smallCore := hw.DefaultPlatform()
	smallCore.Core.PERows = 2
	smallCore.Core.MACRows = 4
	return []hw.Platform{def, quad, batched, smallCore}
}

// seededPartitions returns a deterministic set of random partitions plus a
// few mutated descendants, shared by every evaluator under test.
func seededPartitions(t *testing.T, model string, n int) []*partition.Partition {
	t.Helper()
	g := models.MustBuild(model)
	rng := rand.New(rand.NewSource(int64(len(model))*2027 + 13))
	out := make([]*partition.Partition, 0, n)
	p := core.RandomPartition(g, rng, 0.3)
	out = append(out, p)
	for len(out) < n {
		p = core.ApplyRandomMutation(g, rng, p)
		out = append(out, p)
	}
	return out
}

// TestSharedContextEquivalenceZoo pins exact Result equality between fresh
// eval.New evaluators and evaluators sharing one GraphContext, over the
// model zoo × platform variants × both buffer kinds.
func TestSharedContextEquivalenceZoo(t *testing.T) {
	for _, model := range models.Names() {
		t.Run(model, func(t *testing.T) {
			g := models.MustBuild(model)
			gc := eval.NewGraphContext(g, tiling.DefaultConfig())
			parts := seededPartitions(t, model, 4)
			for pi, platform := range sweepPlatforms() {
				fresh, err := eval.New(g, platform, tiling.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				// Two shared-context evaluators per platform: the second
				// exercises construction against a warm cycle-table memo.
				for n := 0; n < 2; n++ {
					shared, err := gc.NewEvaluator(platform)
					if err != nil {
						t.Fatal(err)
					}
					for _, kind := range []hw.BufferKind{hw.SeparateBuffer, hw.SharedBuffer} {
						mem := memFor(kind)
						for step, p := range parts {
							want := fresh.Partition(p, mem)
							got := shared.Partition(p, mem)
							requireEqualResults(t, step, got, want)
							// The delta engine must agree through carried
							// handles too; clone so handle state stays
							// evaluator-local.
							gotDelta := shared.PartitionDelta(p.Clone(), mem)
							requireEqualResults(t, step, gotDelta, want)
						}
					}
				}
				_ = pi
			}
		})
	}
}

// TestSharedContextSubgraphIdentity checks the per-subgraph layer directly:
// raw SubgraphCost fields from a shared-context evaluator match a standalone
// evaluator field-for-field. A standalone evaluator owns a private context,
// so across that boundary pointer identity is NOT expected — values are.
// WITHIN one context the cost cache is shared per core geometry, so two
// sibling evaluators must return the very same *SubgraphCost pointer, while
// a different-geometry evaluator must not share entries.
func TestSharedContextSubgraphIdentity(t *testing.T) {
	g := models.MustBuild("googlenet")
	gc := eval.NewGraphContext(g, tiling.DefaultConfig())
	platform := hw.DefaultPlatform()
	fresh := eval.MustNew(g, platform, tiling.DefaultConfig())
	shared := gc.MustNewEvaluator(platform)
	sibling := platform
	sibling.Cores = 4
	sibling.Batch = 8
	sharedSib := gc.MustNewEvaluator(sibling)
	otherGeom := platform
	otherGeom.Core.PERows = 2
	sharedOther := gc.MustNewEvaluator(otherGeom)
	for _, p := range seededPartitions(t, "googlenet", 2) {
		for _, members := range p.Subgraphs() {
			a := fresh.Subgraph(members)
			b := shared.Subgraph(members)
			if a.WeightBytes != b.WeightBytes || a.InBytes != b.InBytes ||
				a.OutBytes != b.OutBytes || a.ActFootprint != b.ActFootprint ||
				a.MACs != b.MACs || a.ComputeCycles != b.ComputeCycles ||
				a.GLBAccessBytes != b.GLBAccessBytes || (a.Err == nil) != (b.Err == nil) {
				t.Fatalf("subgraph %v: shared-context cost diverges\n fresh: %+v\nshared: %+v", members, a, b)
			}
			if s := sharedSib.Subgraph(members); s != b {
				t.Fatalf("subgraph %v: same-geometry sibling returned a distinct *SubgraphCost", members)
			}
			if o := sharedOther.Subgraph(members); o == b {
				t.Fatalf("subgraph %v: different-geometry evaluator shared a cache entry", members)
			}
		}
	}
	// The sibling resolved everything from the shared cache: pure hits.
	hits, calls := sharedSib.CacheStats()
	if hits != calls || calls == 0 {
		t.Fatalf("sibling evaluator: %d hits of %d calls, want all hits", hits, calls)
	}
}

// TestSharedCacheCrossConfigEquivalenceZoo is the zoo-wide shared-vs-fresh
// pin for the geometry-keyed shared cache: sibling evaluators (same core
// geometry, different cores/batch) are evaluated INTERLEAVED, so almost
// every subgraph one config costs is served warm to the others from entries
// it never computed itself, and every Result must still equal a fresh
// standalone evaluator's bit for bit — including the delta engine reusing
// handles a sibling filled.
func TestSharedCacheCrossConfigEquivalenceZoo(t *testing.T) {
	siblings := func() []hw.Platform {
		a := hw.DefaultPlatform()
		b := hw.DefaultPlatform()
		b.Cores = 4
		c := hw.DefaultPlatform()
		c.Cores = 2
		c.Batch = 8
		return []hw.Platform{a, b, c}
	}()
	for _, model := range models.Names() {
		t.Run(model, func(t *testing.T) {
			g := models.MustBuild(model)
			gc := eval.NewGraphContext(g, tiling.DefaultConfig())
			parts := seededPartitions(t, model, 4)
			var fresh, shared []*eval.Evaluator
			for _, platform := range siblings {
				fresh = append(fresh, eval.MustNew(g, platform, tiling.DefaultConfig()))
				shared = append(shared, gc.MustNewEvaluator(platform))
			}
			mem := memFor(hw.SeparateBuffer)
			for step, p := range parts {
				// Interleave: config i sees partition step after configs
				// 0..i-1 already costed its subgraphs into the shared cache.
				for i := range siblings {
					want := fresh[i].Partition(p, mem)
					got := shared[i].Partition(p, mem)
					requireEqualResults(t, step*len(siblings)+i, got, want)
					gotDelta := shared[i].PartitionDelta(p.Clone(), mem)
					requireEqualResults(t, step*len(siblings)+i, gotDelta, want)
				}
			}
			// Configs after the first ran warm: sibling hit rates prove the
			// cache was actually shared rather than silently private.
			if hits, calls := shared[len(shared)-1].CacheStats(); hits != calls || calls == 0 {
				t.Fatalf("last sibling: %d hits of %d calls, want all warm hits", hits, calls)
			}
		})
	}
}

// TestSharedCacheDeltaHandlesAcrossSiblings pins the costHandle re-keying:
// a partition whose handles were filled by one evaluator keeps them warm
// when a same-geometry sibling evaluates it (same shared cache), while a
// different-geometry evaluator treats them as dirty and recomputes — costs
// never cross geometries through a migrating partition.
func TestSharedCacheDeltaHandlesAcrossSiblings(t *testing.T) {
	g := models.MustBuild("googlenet")
	gc := eval.NewGraphContext(g, tiling.DefaultConfig())
	base := hw.DefaultPlatform()
	sibling := base
	sibling.Cores = 4
	otherGeom := base
	otherGeom.Core.PERows = 2
	mem := memFor(hw.SeparateBuffer)

	e1 := gc.MustNewEvaluator(base)
	e2 := gc.MustNewEvaluator(sibling)
	e3 := gc.MustNewEvaluator(otherGeom)
	for step, p := range seededPartitions(t, "googlenet", 3) {
		e1.PartitionDelta(p, mem) // fills p's handles against the shared cache
		want2 := eval.MustNew(g, sibling, tiling.DefaultConfig()).Partition(p, mem)
		requireEqualResults(t, step, e2.PartitionDelta(p, mem), want2)
		// The sibling resolved the partition purely through carried handles
		// and shared entries: no cold calls of its own.
		if hits, calls := e2.CacheStats(); hits != calls {
			t.Fatalf("sibling evaluator went cold: %d hits of %d calls", hits, calls)
		}
		want3 := eval.MustNew(g, otherGeom, tiling.DefaultConfig()).Partition(p, mem)
		requireEqualResults(t, step, e3.PartitionDelta(p, mem), want3)
	}
}

// TestSharedCacheConcurrentSiblings is the race-gated cross-evaluator
// sharing stress (run under -race in CI): sibling evaluators hammer one
// shared cost cache from many goroutines over overlapping subgraphs, with
// cold misses, warm hits, and keep-first insert races all in flight. Every
// returned pointer for one key must be identical across evaluators, and
// every value must match a serially computed standalone reference.
func TestSharedCacheConcurrentSiblings(t *testing.T) {
	const workers = 8
	g := models.MustBuild("googlenet")
	gc := eval.NewGraphContext(g, tiling.DefaultConfig())
	var subs [][]int
	for _, p := range seededPartitions(t, "googlenet", 3) {
		subs = append(subs, p.Subgraphs()...)
	}
	ref := eval.MustNew(g, hw.DefaultPlatform(), tiling.DefaultConfig())
	want := make([]*eval.SubgraphCost, len(subs))
	for i, m := range subs {
		want[i] = ref.Subgraph(m)
	}

	got := make([][]*eval.SubgraphCost, workers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		platform := hw.DefaultPlatform()
		platform.Cores = 1 + w%3 // siblings: geometry identical, cores vary
		ev := gc.MustNewEvaluator(platform)
		got[w] = make([]*eval.SubgraphCost, len(subs))
		wg.Add(1)
		go func(w int, ev *eval.Evaluator) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			<-start
			for _, i := range rng.Perm(len(subs)) {
				got[w][i] = ev.Subgraph(subs[i])
			}
		}(w, ev)
	}
	close(start)
	wg.Wait()

	for i := range subs {
		first := got[0][i]
		if first.ComputeCycles != want[i].ComputeCycles || first.EMABytes() != want[i].EMABytes() {
			t.Fatalf("subgraph %d: concurrent shared cost diverges from reference", i)
		}
		for w := 1; w < workers; w++ {
			if got[w][i] != first {
				t.Fatalf("subgraph %d: evaluators %d and 0 hold distinct *SubgraphCost — keep-first broken", i, w)
			}
		}
	}
	if n, wantN := gc.MustNewEvaluator(hw.DefaultPlatform()).CacheEntries(), int64(len(dedupKeys(subs))); n != wantN {
		t.Fatalf("shared cache holds %d entries, want %d", n, wantN)
	}
}

// dedupKeys collapses duplicate member sets (seeded partitions share many
// subgraphs) to the distinct cache keys they occupy.
func dedupKeys(subs [][]int) map[string]bool {
	seen := make(map[string]bool)
	for _, m := range subs {
		seen[fmt.Sprint(m)] = true
	}
	return seen
}

// TestSharedContextInvalidTiling pins that an invalid tiling config behaves
// identically through both construction paths: not a constructor error, but
// a per-subgraph derivation failure.
func TestSharedContextInvalidTiling(t *testing.T) {
	g := models.MustBuild("resnet50")
	bad := tiling.Config{BaseTileH: 0, BaseTileW: 2}
	gc := eval.NewGraphContext(g, bad)
	shared, err := gc.NewEvaluator(hw.DefaultPlatform())
	if err != nil {
		t.Fatalf("invalid tiling config must not fail construction: %v", err)
	}
	fresh := eval.MustNew(g, hw.DefaultPlatform(), bad)
	members := g.ComputeIDs()[:2]
	cs, cf := shared.Subgraph(members), fresh.Subgraph(members)
	if cs.Err == nil || cf.Err == nil {
		t.Fatal("invalid tiling config must surface as a subgraph error")
	}
	if cs.Err.Error() != cf.Err.Error() {
		t.Fatalf("error text diverges: %q vs %q", cs.Err, cf.Err)
	}
}

// TestSharedContextConcurrentSweep is the concurrent-sweep stress test (run
// under -race in CI): many goroutines simultaneously build evaluators from
// one shared context — hitting the cycle-table memo from all sides — and
// evaluate a common partition set under per-goroutine platforms and memory
// configs. Every goroutine's results must match the standalone evaluator
// for its configuration.
func TestSharedContextConcurrentSweep(t *testing.T) {
	const sweepers = 8
	g := models.MustBuild("googlenet")
	gc := eval.NewGraphContext(g, tiling.DefaultConfig())
	parts := seededPartitions(t, "googlenet", 3)
	platforms := sweepPlatforms()

	// Reference results from standalone evaluators, computed serially.
	type cfg struct {
		platform hw.Platform
		mem      hw.MemConfig
	}
	cfgs := make([]cfg, sweepers)
	want := make([][]*eval.Result, sweepers)
	for i := range cfgs {
		platform := platforms[i%len(platforms)]
		mem := memFor(hw.SeparateBuffer)
		if i%2 == 1 {
			mem = memFor(hw.SharedBuffer)
		}
		mem.GlobalBytes += int64(i/2) * 64 * hw.KiB // distinct capacities across the sweep
		cfgs[i] = cfg{platform, mem}
		fresh := eval.MustNew(g, platform, tiling.DefaultConfig())
		for _, p := range parts {
			want[i] = append(want[i], fresh.Partition(p, mem))
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, sweepers)
	for i := 0; i < sweepers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shared, err := gc.NewEvaluator(cfgs[i].platform)
			if err != nil {
				errs <- err
				return
			}
			for rep := 0; rep < 2; rep++ { // second pass hits the warm cache
				for pi, p := range parts {
					got := shared.Partition(p, cfgs[i].mem)
					w := want[i][pi]
					if got.EMABytes != w.EMABytes || got.EnergyPJ != w.EnergyPJ ||
						got.LatencyCycles != w.LatencyCycles ||
						got.MaxActFootprint != w.MaxActFootprint ||
						got.MaxWgtFootprint != w.MaxWgtFootprint {
						errs <- fmt.Errorf("sweeper %d partition %d: concurrent shared-context result diverges", i, pi)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
