package eval

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"cocco/internal/hw"
	"cocco/internal/partition"
	"cocco/internal/tiling"
)

// TestCacheSnapshotRoundTrip exports a populated cache and loads it into a
// fresh evaluator: every entry must come back with identical numeric fields
// and identical member decoding, and warm lookups against the loaded cache
// must be pure hits.
func TestCacheSnapshotRoundTrip(t *testing.T) {
	g, ids := toy(t)
	src := testEvaluator(t, g)
	subs := [][]int{
		{ids[1]}, {ids[2]}, {ids[3]},
		{ids[1], ids[2]}, {ids[2], ids[3]}, {ids[1], ids[2], ids[3]},
	}
	want := make([]*SubgraphCost, len(subs))
	for i, s := range subs {
		want[i] = src.Subgraph(s)
	}

	snap, err := src.ExportCache()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != len(subs) {
		t.Fatalf("snapshot has %d entries, want %d", len(snap.Entries), len(subs))
	}

	dst := testEvaluator(t, g)
	added, err := dst.LoadCache(snap)
	if err != nil {
		t.Fatal(err)
	}
	if added != len(subs) {
		t.Fatalf("loaded %d entries, want %d", added, len(subs))
	}
	hits0, _ := dst.CacheStats()
	for i, s := range subs {
		got := dst.Subgraph(s)
		w := want[i]
		if got.WeightBytes != w.WeightBytes || got.InBytes != w.InBytes ||
			got.OutBytes != w.OutBytes || got.ActFootprint != w.ActFootprint ||
			got.MACs != w.MACs || got.ComputeCycles != w.ComputeCycles ||
			got.GLBAccessBytes != w.GLBAccessBytes {
			t.Errorf("subgraph %v: loaded cost differs: %+v vs %+v", s, got, w)
		}
		if len(got.Members) != len(w.Members) {
			t.Errorf("subgraph %v: members %v vs %v", s, got.Members, w.Members)
		}
	}
	hits, calls := dst.CacheStats()
	if hits-hits0 != int64(len(subs)) {
		t.Errorf("post-load lookups: %d hits of %d calls, want all hits", hits-hits0, calls)
	}
}

// TestLoadCacheKeepFirst pins pointer stability across loads: an entry the
// evaluator already computed keeps its *SubgraphCost when a snapshot holding
// the same key is loaded, so delta handles taken before the load stay valid.
func TestLoadCacheKeepFirst(t *testing.T) {
	g, ids := toy(t)
	src := testEvaluator(t, g)
	sub := []int{ids[1], ids[2]}
	src.Subgraph(sub)
	snap, err := src.ExportCache()
	if err != nil {
		t.Fatal(err)
	}

	dst := testEvaluator(t, g)
	before := dst.Subgraph(sub)
	added, err := dst.LoadCache(snap)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Errorf("load added %d entries over an existing key, want 0", added)
	}
	if after := dst.Subgraph(sub); after != before {
		t.Error("keep-first load replaced an existing *SubgraphCost")
	}
	// Loading twice is idempotent.
	if added, _ := dst.LoadCache(snap); added != 0 {
		t.Errorf("second load added %d entries, want 0", added)
	}
}

// TestLoadCacheForeignFingerprint: snapshots from a different core
// geometry or tiling config are rejected loudly, while sibling platforms —
// same geometry, different memory capacities / buffer kind / core count /
// batch — load the same snapshot successfully: the fingerprint pins exactly
// what subgraph costing depends on, nothing more.
func TestLoadCacheForeignFingerprint(t *testing.T) {
	g, ids := toy(t)
	src := testEvaluator(t, g)
	src.Subgraph([]int{ids[1]})
	snap, err := src.ExportCache()
	if err != nil {
		t.Fatal(err)
	}

	// Sibling configs of a DSE sweep accept the snapshot.
	sibling := hw.DefaultPlatform()
	sibling.Cores = 4
	sibling.Batch = 8
	evS, err := New(g, sibling, tiling.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evS.LoadCache(snap); err != nil {
		t.Errorf("same-geometry sibling platform: %v, want successful load", err)
	}

	// A different core geometry is a different fingerprint.
	otherGeom := hw.DefaultPlatform()
	otherGeom.Core.PERows = 2
	evP, err := New(g, otherGeom, tiling.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evP.LoadCache(snap); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("foreign core geometry: err = %v, want fingerprint mismatch", err)
	}

	evT, err := New(g, hw.DefaultPlatform(), tiling.Config{BaseTileH: 4, BaseTileW: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evT.LoadCache(snap); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("foreign tiling: err = %v, want fingerprint mismatch", err)
	}
}

// TestExportCacheSkipsErrEntries: subgraphs whose tiling derivation failed
// are cached in memory (so the error is computed once) but never exported —
// a warm evaluator recomputes the identical error on demand.
func TestExportCacheSkipsErrEntries(t *testing.T) {
	g, ids := toy(t)
	ev, err := New(g, hw.DefaultPlatform(), tiling.Config{BaseTileH: 0, BaseTileW: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c := ev.Subgraph([]int{ids[1], ids[2]}); c.Err == nil {
		t.Fatal("invalid tiling config produced an error-free cost")
	}
	if n := ev.CacheEntries(); n != 1 {
		t.Fatalf("cache holds %d entries, want 1", n)
	}
	snap, err := ev.ExportCache()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != 0 {
		t.Errorf("snapshot exported %d error entries, want 0", len(snap.Entries))
	}
}

// TestLoadCacheRejectsMalformedRecords: records with key windows outside
// the arena, non-id-aligned lengths, unsorted members, or out-of-range ids
// reject the load with an error, never a panic or a silent bad insert.
func TestLoadCacheRejectsMalformedRecords(t *testing.T) {
	g, ids := toy(t)
	ev := testEvaluator(t, g)
	fp := ev.CacheFingerprint()
	key := partition.AppendMemberKey(nil, []int{ids[1], ids[2]})

	cases := []struct {
		name string
		snap *CacheSnapshot
	}{
		{"window past arena", &CacheSnapshot{Fingerprint: fp, Arena: key,
			Entries: []CacheRecord{{Off: 4, KeyLen: uint32(len(key))}}}},
		{"zero-length key", &CacheSnapshot{Fingerprint: fp, Arena: key,
			Entries: []CacheRecord{{Off: 0, KeyLen: 0}}}},
		{"unaligned key", &CacheSnapshot{Fingerprint: fp, Arena: key,
			Entries: []CacheRecord{{Off: 0, KeyLen: 6}}}},
		{"descending members", &CacheSnapshot{Fingerprint: fp,
			Arena:   partition.AppendMemberKey(nil, []int{ids[2], ids[1]}),
			Entries: []CacheRecord{{Off: 0, KeyLen: 8}}}},
		{"id outside graph", &CacheSnapshot{Fingerprint: fp,
			Arena:   partition.AppendMemberKey(nil, []int{g.Len() + 5}),
			Entries: []CacheRecord{{Off: 0, KeyLen: 4}}}},
	}
	for _, tc := range cases {
		if _, err := ev.LoadCache(tc.snap); err == nil {
			t.Errorf("%s: load accepted a malformed record", tc.name)
		}
	}
	if n := ev.CacheEntries(); n != 0 {
		t.Errorf("malformed loads left %d entries behind", n)
	}
}

// TestCacheOverflowGuards exercises the arena/entry-count guards that keep
// the uint32 offsets and int32 slot indices from silently wrapping.
func TestCacheOverflowGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	// In range: no panic.
	guardArena(0, 16)
	guardArena(math.MaxUint32-8, 8)
	guardEntries(0)
	guardEntries(math.MaxInt32 - 1)
	// Over: panic with a clear message.
	mustPanic("arena 4GiB", func() { guardArena(math.MaxUint32, 1) })
	mustPanic("arena far over", func() { guardArena(math.MaxUint32, math.MaxInt32) })
	mustPanic("entry index wrap", func() { guardEntries(math.MaxInt32) })
}

// TestLoadCacheConcurrentWithSearch loads a snapshot while worker
// goroutines hammer the same cache — the race-gated half of the keep-first
// contract: loads are ordinary inserts, so racing them against lookups and
// cold misses must stay value-consistent (and clean under -race).
func TestLoadCacheConcurrentWithSearch(t *testing.T) {
	g, ids := toy(t)
	src := testEvaluator(t, g)
	subs := [][]int{
		{ids[1]}, {ids[2]}, {ids[3]},
		{ids[1], ids[2]}, {ids[2], ids[3]}, {ids[1], ids[2], ids[3]},
	}
	for _, s := range subs {
		src.Subgraph(s)
	}
	snap, err := src.ExportCache()
	if err != nil {
		t.Fatal(err)
	}

	dst := testEvaluator(t, g)
	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			<-start
			for r := 0; r < 200; r++ {
				dst.Subgraph(subs[rng.Intn(len(subs))])
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if _, err := dst.LoadCache(snap); err != nil {
			t.Error(err)
		}
	}()
	close(start)
	wg.Wait()

	// Every key resolves to the same values the source computed.
	for _, s := range subs {
		if got, want := dst.Subgraph(s), src.Subgraph(s); got.EMABytes() != want.EMABytes() ||
			got.ComputeCycles != want.ComputeCycles {
			t.Errorf("subgraph %v: post-race cost differs", s)
		}
	}
	if n, want := dst.CacheEntries(), int64(len(subs)); n != want {
		t.Errorf("cache holds %d entries, want %d", n, want)
	}
}
