package eval

import (
	"fmt"
	"math"

	"cocco/internal/partition"
)

// Cost-cache snapshot/load: the open-addressed shards already keep their
// state in exactly the flat layout that serializes as byte slices — an
// append-only entry array plus a key arena, with the slot table rebuildable
// from the entries — so exporting the cache is a per-shard copy and loading
// one is a sequence of ordinary keep-first inserts. A loaded entry is
// indistinguishable from one the evaluator computed itself: *SubgraphCost
// pointers stay stable forever, delta handles keep working, and a search
// started from a snapshot is bit-identical to the same search run cold
// (entries change only WHEN costs are computed, never what they are).
//
// Snapshots are keyed by CacheFingerprint — (key-format version, graph
// name, tiling config, core geometry) — so a load against the wrong model
// or configuration fails loudly instead of silently serving foreign costs.
// The fingerprint deliberately excludes everything subgraph costing does
// not depend on (memory capacities, buffer kind, core count, batch): one
// snapshot warm-starts every sibling config of a DSE capacity sweep.
// Pre-geometry snapshots, whose fingerprints pinned the full platform, are
// rejected one layer down by the serialize codec's wire-format version
// before any fingerprint comparison happens.

// cacheKeyFormat versions the canonical member-key encoding the cache is
// keyed by (partition.MemberKey: 4-byte big-endian ids, ascending). Any
// change to that encoding must bump this, invalidating every snapshot
// written under the old format.
const cacheKeyFormat = 1

// CacheRecord is one subgraph cost in a CacheSnapshot: the key window into
// the snapshot arena plus every numeric field of the SubgraphCost. Members
// are not stored — they are exactly the decoded key bytes.
type CacheRecord struct {
	Off    uint32
	KeyLen uint32

	WeightBytes    int64
	InBytes        int64
	OutBytes       int64
	ActFootprint   int64
	MACs           int64
	ComputeCycles  int64
	GLBAccessBytes int64
}

// CacheSnapshot is the flat, serializable export of an evaluator's cost
// cache: one contiguous key arena and one record per cached subgraph.
// Entries whose tiling derivation failed (Err != nil) are not exported —
// recomputing them on demand reproduces the identical error, so omitting
// them cannot change results.
type CacheSnapshot struct {
	// Fingerprint identifies the (graph, tiling, core geometry, key format)
	// the costs are valid for; LoadCache refuses anything else.
	Fingerprint string
	Entries     []CacheRecord
	Arena       []byte
}

// CacheFingerprint identifies the configuration the shared cost cache's
// entries are valid for. Two evaluators share a fingerprint exactly when
// they were built for the same graph name, tiling config, and core geometry
// (hw.Core) — the only inputs subgraph costing depends on — under the same
// key-format version. Sibling DSE configs differing in memory capacities,
// buffer kind, core count, or batch share both the in-memory cache and its
// snapshots; a different core geometry is a different fingerprint.
func (e *Evaluator) CacheFingerprint() string {
	return fmt.Sprintf("keyfmt=%d graph=%q tiling=%s core=%+v",
		cacheKeyFormat, e.ctx.g.Name, e.ctx.tcfg, e.platform.Core)
}

// ExportCache snapshots every error-free cached subgraph cost in the SHARED
// cost cache — including entries computed by sibling evaluators of the same
// core geometry, so one export captures a whole DSE geometry group's warm
// state. It locks one shard at a time, so it is safe to call while other
// goroutines use the cache; entries inserted after their shard was visited
// are simply not in the snapshot (each entry is immutable once inserted, so
// every exported record is complete and correct).
func (e *Evaluator) ExportCache() (*CacheSnapshot, error) {
	snap := &CacheSnapshot{Fingerprint: e.CacheFingerprint()}
	for i := range e.cache.shards {
		s := &e.cache.shards[i]
		s.mu.Lock()
		for j := range s.entries {
			en := &s.entries[j]
			if en.c.Err != nil {
				continue
			}
			off := len(snap.Arena)
			if int64(off)+int64(en.klen) > math.MaxUint32 {
				s.mu.Unlock()
				return nil, fmt.Errorf("eval: cache snapshot arena exceeds the 4 GiB uint32 offset range")
			}
			snap.Arena = append(snap.Arena, s.arena[en.off:en.off+en.klen]...)
			c := en.c
			snap.Entries = append(snap.Entries, CacheRecord{
				Off:            uint32(off),
				KeyLen:         en.klen,
				WeightBytes:    c.WeightBytes,
				InBytes:        c.InBytes,
				OutBytes:       c.OutBytes,
				ActFootprint:   c.ActFootprint,
				MACs:           c.MACs,
				ComputeCycles:  c.ComputeCycles,
				GLBAccessBytes: c.GLBAccessBytes,
			})
		}
		s.mu.Unlock()
	}
	return snap, nil
}

// LoadCache inserts every snapshot record the SHARED cache does not already
// hold, returning the number added — sibling evaluators of the same core
// geometry see the loaded entries immediately. Loads are keep-first: a key
// already present keeps its existing *SubgraphCost (pointer stability for
// delta handles), and concurrent Subgraph callers racing a load behave
// exactly as they do racing each other. Because of that idempotence, loading
// the same snapshot once per sibling config is harmless — later loads add 0.
// The snapshot must carry this evaluator's fingerprint;
// records with malformed keys (out-of-range or unsorted member ids) reject
// the whole load — a fingerprint-matched snapshot can only contain them if
// the file was corrupted in a way that defeated the codec's checksum.
func (e *Evaluator) LoadCache(snap *CacheSnapshot) (added int, err error) {
	if want := e.CacheFingerprint(); snap.Fingerprint != want {
		return 0, fmt.Errorf("eval: cache snapshot fingerprint mismatch:\n  have %s\n  want %s", snap.Fingerprint, want)
	}
	n := e.ctx.g.Len()
	for i := range snap.Entries {
		r := &snap.Entries[i]
		end := int64(r.Off) + int64(r.KeyLen)
		if r.KeyLen == 0 || r.KeyLen%4 != 0 || end > int64(len(snap.Arena)) {
			return added, fmt.Errorf("eval: cache snapshot entry %d: key window [%d:%d) invalid for %d-byte arena", i, r.Off, end, len(snap.Arena))
		}
		key := snap.Arena[r.Off:end]
		members := partition.AppendKeyMembers(make([]int, 0, r.KeyLen/4), string(key))
		for j, id := range members {
			if id >= n || (j > 0 && id <= members[j-1]) {
				return added, fmt.Errorf("eval: cache snapshot entry %d: member ids %v not ascending within graph of %d nodes", i, members, n)
			}
		}
		c := &SubgraphCost{
			Members:        members,
			WeightBytes:    r.WeightBytes,
			InBytes:        r.InBytes,
			OutBytes:       r.OutBytes,
			ActFootprint:   r.ActFootprint,
			MACs:           r.MACs,
			ComputeCycles:  r.ComputeCycles,
			GLBAccessBytes: r.GLBAccessBytes,
		}
		h := hashKey(key)
		s := &e.cache.shards[h>>(64-shardBits)]
		s.mu.Lock()
		if s.lookupBytes(h, key) == nil {
			s.insertBytes(h, key, c)
			added++
		}
		s.mu.Unlock()
	}
	return added, nil
}
