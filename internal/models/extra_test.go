package models

import (
	"testing"

	"cocco/internal/graph"
)

func TestMobileNetV2Structure(t *testing.T) {
	g := MustBuild("mobilenetv2")
	// ≈ 3.5 M parameters.
	if w := g.TotalWeightBytes(); w < 3_000_000 || w > 4_200_000 {
		t.Errorf("mobilenetv2 weights = %d", w)
	}
	// Inverted residuals: depth-wise layers present, residual adds present.
	dw, adds := 0, 0
	for _, n := range g.Nodes() {
		switch n.Kind {
		case graph.OpDWConv:
			dw++
		case graph.OpEltwise:
			adds++
		}
	}
	if dw != 17 {
		t.Errorf("depthwise layers = %d, want 17", dw)
	}
	if adds != 10 {
		t.Errorf("residual adds = %d, want 10", adds)
	}
	// Final spatial size 7×7 before pooling.
	head := -1
	for _, n := range g.Nodes() {
		if n.Name == "head_conv" {
			head = n.ID
		}
	}
	if head < 0 || g.Node(head).OutH != 7 {
		t.Errorf("head spatial = %d, want 7", g.Node(head).OutH)
	}
}

func TestDenseNet121Structure(t *testing.T) {
	g := MustBuild("densenet121")
	// 6+12+24+16 = 58 dense layers, each with a concat input except the
	// first of each block.
	convs3 := 0
	maxFanIn := 0
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpConv && n.KernelH == 3 {
			convs3++
		}
		if n.Kind == graph.OpConcat && len(g.Pred(n.ID)) > maxFanIn {
			maxFanIn = len(g.Pred(n.ID))
		}
	}
	if convs3 != 58 {
		t.Errorf("3x3 dense layers = %d, want 58", convs3)
	}
	// The last concat of block 3 gathers 24 features + the block input.
	if maxFanIn != 25 {
		t.Errorf("max concat fan-in = %d, want 25", maxFanIn)
	}
	// ≈ 8 M parameters.
	if w := g.TotalWeightBytes(); w < 6_500_000 || w > 9_500_000 {
		t.Errorf("densenet121 weights = %d", w)
	}
}

func TestUNetSkipConnections(t *testing.T) {
	g := MustBuild("unet")
	// Four decoder concats joining encoder features across the bottleneck.
	concats := 0
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpConcat {
			concats++
			if len(g.Pred(n.ID)) != 2 {
				t.Errorf("%s fan-in = %d", n.Name, len(g.Pred(n.ID)))
			}
		}
	}
	if concats != 4 {
		t.Errorf("skip concats = %d, want 4", concats)
	}
	// Encoder feature enc1 must have a consumer far away (the long skip).
	var e1 int
	for _, n := range g.Nodes() {
		if n.Name == "enc1_conv2" {
			e1 = n.ID
		}
	}
	maxDist := 0
	for _, c := range g.Succ(e1) {
		if d := c - e1; d > maxDist {
			maxDist = d
		}
	}
	if maxDist < 20 {
		t.Errorf("longest skip spans only %d nodes", maxDist)
	}
	// Output is a full-resolution 2-channel map.
	out := g.Outputs()
	if len(out) != 1 {
		t.Fatalf("outputs = %v", out)
	}
	on := g.Node(out[0])
	if on.OutH != 256 || on.OutC != 2 {
		t.Errorf("output shape %dx%dx%d", on.OutH, on.OutW, on.OutC)
	}
}

func TestExtraModelsRegistered(t *testing.T) {
	names := Names()
	want := map[string]bool{"mobilenetv2": true, "densenet121": true, "unet": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing registrations: %v", want)
	}
}
