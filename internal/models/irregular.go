package models

import (
	"fmt"
	"math/rand"

	"cocco/internal/graph"
)

// NasNet builds a NASNet-A-like cell network: a stem convolution followed by
// three groups of four normal cells separated by reduction cells, then the
// classifier. The cell wiring follows the NASNet-A pattern of five
// two-input combine blocks drawing from the two previous cell outputs, with
// the unconsumed blocks concatenated — producing the irregular multi-branch
// structure the paper evaluates. (Exact NASNet-A would require the released
// architecture checkpoint; this deterministic reconstruction preserves the
// graph-shape class — see DESIGN.md substitutions.)
func NasNet() *graph.Graph {
	b := graph.NewBuilder("nasnet")
	x := b.Input("input", 3, 224, 224)
	stem := b.Conv("stem", x, 32, 3, 2)

	sep := func(name string, from, outC, k, stride int) int {
		d := b.DWConv(name+"_dw", from, k, stride)
		return b.Conv(name+"_pw", d, outC, 1, 1)
	}

	// cell combines the two previous outputs (prev = h, prevPrev = p) into a
	// new output with `f` filters, using stride 2 for reduction cells.
	cell := func(name string, h, p int, f, stride int) int {
		// Fit both inputs to f channels and a common spatial size: p may be
		// one reduction behind h, so derive its fit stride from the actual
		// shapes.
		_, hH, _, _ := b.OutShape(h)
		_, pH, _, _ := b.OutShape(p)
		target := (hH + stride - 1) / stride
		pStride := pH / target
		if pStride < 1 {
			pStride = 1
		}
		h1 := b.Conv(name+"_fit_h", h, f, 1, stride)
		p1 := b.Conv(name+"_fit_p", p, f, 1, pStride)
		// Five combine blocks (NASNet-A normal-cell mix of separable convs,
		// poolings and identities).
		b1 := b.Eltwise(name+"_b1", sep(name+"_b1s5", p1, f, 5, 1), sep(name+"_b1s3", h1, f, 3, 1))
		b2 := b.Eltwise(name+"_b2", sep(name+"_b2s5", p1, f, 5, 1), sep(name+"_b2s3", p1, f, 3, 1))
		b3 := b.Eltwise(name+"_b3", b.Pool(name+"_b3p", h1, 3, 1), p1)
		b4 := b.Eltwise(name+"_b4", b.Pool(name+"_b4pa", p1, 3, 1), b.Pool(name+"_b4pb", p1, 3, 1))
		b5 := b.Eltwise(name+"_b5", sep(name+"_b5s3", b1, f, 3, 1), h1)
		return b.Concat(name+"_concat", b2, b3, b4, b5)
	}

	f := 64
	prevPrev, prev := stem, stem
	cellIdx := 0
	for group := 0; group < 3; group++ {
		for i := 0; i < 4; i++ {
			cellIdx++
			out := cell(fmt.Sprintf("n%d", cellIdx), prev, prevPrev, f, 1)
			prevPrev, prev = prev, out
		}
		if group < 2 {
			cellIdx++
			f *= 2
			out := cell(fmt.Sprintf("r%d", cellIdx), prev, prevPrev, f, 2)
			prevPrev, prev = prev, out
		}
	}
	gp := b.GlobalPool("avgpool", prev)
	b.FC("fc", gp, 1000)
	return b.MustFinalize()
}

// RandWireA builds the "small regime" randomly-wired network: a stem and two
// Watts–Strogatz stages of 32 nodes (K=4, P=0.75), per Xie et al. Seeded so
// the topology is identical on every run.
func RandWireA() *graph.Graph {
	return randWire("randwire-a", 7, []wsStage{
		{nodes: 32, channels: 64},
		{nodes: 32, channels: 128},
	})
}

// RandWireB builds the "regular regime" variant with three stages.
func RandWireB() *graph.Graph {
	return randWire("randwire-b", 11, []wsStage{
		{nodes: 32, channels: 64},
		{nodes: 32, channels: 128},
		{nodes: 32, channels: 256},
	})
}

type wsStage struct {
	nodes    int
	channels int
}

// randWire constructs the randomly-wired model: each stage is a DAG obtained
// by orienting a Watts–Strogatz small-world graph from lower to higher node
// index. Stage-internal nodes aggregate their inputs (element-wise) and
// apply a 3×3 convolution; nodes with no in-edges read the stage input and
// nodes with no out-edges feed the stage output join.
func randWire(name string, seed int64, stages []wsStage) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(name)
	x := b.Input("input", 3, 224, 224)
	x = b.Conv("stem", x, 32, 3, 2)

	for si, st := range stages {
		prefix := fmt.Sprintf("s%d", si+1)
		// Stage entry: stride-2 conv to st.channels.
		entry := b.Conv(prefix+"_entry", x, st.channels, 3, 2)
		edges := wattsStrogatz(rng, st.nodes, 4, 0.75)

		nodeOut := make([]int, st.nodes)
		for v := 0; v < st.nodes; v++ {
			var ins []int
			for _, e := range edges {
				if e[1] == v {
					ins = append(ins, nodeOut[e[0]])
				}
			}
			src := entry
			switch len(ins) {
			case 0:
				// reads the stage input directly
			case 1:
				src = ins[0]
			default:
				src = b.Eltwise(fmt.Sprintf("%s_n%d_agg", prefix, v), ins...)
			}
			nodeOut[v] = b.Conv(fmt.Sprintf("%s_n%d_conv", prefix, v), src, st.channels, 3, 1)
		}
		// Stage output: join all sinks.
		var sinks []int
		hasOut := make([]bool, st.nodes)
		for _, e := range edges {
			hasOut[e[0]] = true
		}
		for v := 0; v < st.nodes; v++ {
			if !hasOut[v] {
				sinks = append(sinks, nodeOut[v])
			}
		}
		if len(sinks) == 1 {
			x = sinks[0]
		} else {
			x = b.Eltwise(prefix+"_join", sinks...)
		}
	}
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.MustFinalize()
}

// wattsStrogatz generates the WS(n, k, p) small-world graph and orients
// every edge from the lower to the higher node index, yielding a DAG.
// Returned edges are [from, to] pairs with from < to, deduplicated.
func wattsStrogatz(rng *rand.Rand, n, k int, p float64) [][2]int {
	type edge = [2]int
	set := map[edge]bool{}
	add := func(a, c int) {
		if a == c {
			return
		}
		if a > c {
			a, c = c, a
		}
		set[edge{a, c}] = true
	}
	// Ring lattice: each node connects to k/2 neighbors on each side.
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			add(v, (v+j)%n)
		}
	}
	// Rewire each lattice edge with probability p.
	var lattice []edge
	for e := range set {
		lattice = append(lattice, e)
	}
	// Deterministic iteration order for reproducibility.
	sortEdges(lattice)
	for _, e := range lattice {
		if rng.Float64() < p {
			delete(set, e)
			for {
				t := rng.Intn(n)
				if t != e[0] {
					a, c := e[0], t
					if a > c {
						a, c = c, a
					}
					if !set[edge{a, c}] {
						set[edge{a, c}] = true
						break
					}
				}
			}
		}
	}
	out := make([]edge, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

func sortEdges(es [][2]int) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && (es[j][0] < es[j-1][0] || (es[j][0] == es[j-1][0] && es[j][1] < es[j-1][1])); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}
