package models

import (
	"fmt"

	"cocco/internal/graph"
)

// The models in this file go beyond the paper's evaluation set: they cover
// graph-shape classes the optional/extension discussion points at
// (lightweight inverted residuals, dense connectivity, and encoder–decoder
// skips) and are available to every tool and benchmark through the registry.

func init() {
	registry["mobilenetv2"] = MobileNetV2
	registry["densenet121"] = DenseNet121
	registry["unet"] = UNet
}

// MobileNetV2 builds Sandler et al.'s inverted-residual network: a stem,
// seven bottleneck stages (expansion 1×1 → depth-wise 3×3 → projection 1×1,
// with residual adds on stride-1 blocks of equal width), and the 1280-wide
// head.
func MobileNetV2() *graph.Graph {
	b := graph.NewBuilder("mobilenetv2")
	x := b.Input("input", 3, 224, 224)
	x = b.Conv("stem", x, 32, 3, 2)

	type stage struct{ t, c, n, s int } // expansion, channels, repeats, stride
	stages := []stage{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	inC := 32
	for si, st := range stages {
		for i := 0; i < st.n; i++ {
			stride := 1
			if i == 0 {
				stride = st.s
			}
			p := fmt.Sprintf("b%d_%d", si+1, i+1)
			identity := x
			y := x
			if st.t != 1 {
				y = b.Conv(p+"_expand", y, inC*st.t, 1, 1)
			}
			y = b.DWConv(p+"_dw", y, 3, stride)
			y = b.Conv(p+"_project", y, st.c, 1, 1)
			if stride == 1 && inC == st.c {
				y = b.Eltwise(p+"_add", y, identity)
			}
			x = y
			inC = st.c
		}
	}
	x = b.Conv("head_conv", x, 1280, 1, 1)
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.MustFinalize()
}

// DenseNet121 builds Huang et al.'s densely connected network: four dense
// blocks of [6, 12, 24, 16] layers with growth rate 32, where every layer's
// input is the concatenation of all earlier features in the block, joined by
// 1×1+pool transition layers.
func DenseNet121() *graph.Graph {
	b := graph.NewBuilder("densenet121")
	x := b.Input("input", 3, 224, 224)
	x = b.Conv("stem_conv", x, 64, 7, 2)
	x = b.Pool("stem_pool", x, 3, 2)

	const growth = 32
	blocks := []int{6, 12, 24, 16}
	channels := 64
	for bi, layers := range blocks {
		features := []int{x}
		for li := 0; li < layers; li++ {
			p := fmt.Sprintf("d%d_l%d", bi+1, li+1)
			in := features[0]
			if len(features) > 1 {
				in = b.Concat(p+"_cat", features...)
			}
			// Bottleneck: 1×1 to 4·growth, then 3×3 to growth.
			y := b.Conv(p+"_1x1", in, 4*growth, 1, 1)
			y = b.Conv(p+"_3x3", y, growth, 3, 1)
			features = append(features, y)
			channels += growth
		}
		x = b.Concat(fmt.Sprintf("d%d_out", bi+1), features...)
		if bi < len(blocks)-1 {
			// Transition: halve channels and spatial size.
			channels /= 2
			x = b.Conv(fmt.Sprintf("t%d_conv", bi+1), x, channels, 1, 1)
			x = b.Pool(fmt.Sprintf("t%d_pool", bi+1), x, 2, 2)
		}
	}
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.MustFinalize()
}

// UNet builds Ronneberger et al.'s encoder–decoder segmentation network on a
// 256×256 input: four down-sampling stages, a bottleneck, and four
// up-sampling stages whose inputs concatenate the symmetric encoder features
// (long skip connections — the graph-shape class where greedy fusion
// struggles most).
func UNet() *graph.Graph {
	b := graph.NewBuilder("unet")
	x := b.Input("input", 3, 256, 256)

	double := func(p string, from, c int) int {
		y := b.Conv(p+"_conv1", from, c, 3, 1)
		return b.Conv(p+"_conv2", y, c, 3, 1)
	}

	// Encoder.
	e1 := double("enc1", x, 64)
	p1 := b.Pool("pool1", e1, 2, 2)
	e2 := double("enc2", p1, 128)
	p2 := b.Pool("pool2", e2, 2, 2)
	e3 := double("enc3", p2, 256)
	p3 := b.Pool("pool3", e3, 2, 2)
	e4 := double("enc4", p3, 512)
	p4 := b.Pool("pool4", e4, 2, 2)

	mid := double("bottleneck", p4, 1024)

	// Decoder. Up-sampling is modeled as a 1×1 convolution producing the
	// doubled spatial map (a transposed convolution's cost twin), built with
	// Custom since the builder's Conv derives shrinking shapes only.
	up := func(p string, from, c, outH, outW int) int {
		_, _, _, ok := b.OutShape(from)
		if !ok {
			return -1
		}
		cIn, _, _, _ := b.OutShape(from)
		return b.Custom(p+"_up", graph.OpConv, 1, 1, cIn, c, outH, outW, from)
	}

	d4 := up("dec4", mid, 512, 32, 32)
	d4 = b.Concat("dec4_cat", d4, e4)
	d4 = double("dec4", d4, 512)
	d3 := up("dec3", d4, 256, 64, 64)
	d3 = b.Concat("dec3_cat", d3, e3)
	d3 = double("dec3", d3, 256)
	d2 := up("dec2", d3, 128, 128, 128)
	d2 = b.Concat("dec2_cat", d2, e2)
	d2 = double("dec2", d2, 128)
	d1 := up("dec1", d2, 64, 256, 256)
	d1 = b.Concat("dec1_cat", d1, e1)
	d1 = double("dec1", d1, 64)

	b.Conv("head", d1, 2, 1, 1)
	return b.MustFinalize()
}
