package models

import (
	"fmt"

	"cocco/internal/graph"
)

// attentionCfg parameterizes a Transformer-family stack.
type attentionCfg struct {
	name    string
	layers  int
	seqLen  int
	dModel  int
	dFF     int
	decoder bool // decoder-only (GPT) stacks skip nothing here but keep the flag for clarity
}

// Transformer builds the base encoder of Vaswani et al.: 6 layers,
// d_model=512, d_ff=2048, over a 512-token sequence. Every projection is a
// matmul lowered to a 1×1 convolution along the sequence dimension; the
// attention score and context products are two-input matmuls.
func Transformer() *graph.Graph {
	return attentionStack(attentionCfg{
		name: "transformer", layers: 6, seqLen: 512, dModel: 512, dFF: 2048,
	})
}

// GPT builds the GPT-1 decoder stack: 12 layers, d_model=768, d_ff=3072,
// over a 512-token sequence.
func GPT() *graph.Graph {
	return attentionStack(attentionCfg{
		name: "gpt", layers: 12, seqLen: 512, dModel: 768, dFF: 3072, decoder: true,
	})
}

func attentionStack(cfg attentionCfg) *graph.Graph {
	b := graph.NewBuilder(cfg.name)
	// The sequence is modeled as a seqLen×1 spatial map with dModel channels.
	x := b.Input("tokens", cfg.dModel, cfg.seqLen, 1)
	for l := 1; l <= cfg.layers; l++ {
		p := fmt.Sprintf("l%d", l)
		// Multi-head attention: Q/K/V projections, scores = Q·Kᵀ
		// (seqLen×seqLen activation), context = scores·V, output projection,
		// then the residual join.
		q := b.Matmul(p+"_q", x, cfg.dModel)
		k := b.Matmul(p+"_k", x, cfg.dModel)
		v := b.Matmul(p+"_v", x, cfg.dModel)
		scores := b.MatmulJoin(p+"_scores", q, k, cfg.seqLen)
		ctx := b.MatmulJoin(p+"_ctx", scores, v, cfg.dModel)
		proj := b.Matmul(p+"_proj", ctx, cfg.dModel)
		x = b.Eltwise(p+"_attn_add", proj, x)
		// Feed-forward block with its residual join.
		ff := b.Matmul(p+"_ff1", x, cfg.dFF)
		ff = b.Matmul(p+"_ff2", ff, cfg.dModel)
		x = b.Eltwise(p+"_ff_add", ff, x)
	}
	b.Matmul(cfg.name+"_head", x, cfg.dModel)
	return b.MustFinalize()
}
