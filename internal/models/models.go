// Package models is the reproduction's "NN-parser" stand-in: it constructs
// the computation graphs of every network evaluated in the paper (§5.1.1) —
// plain (VGG16), multi-branch (ResNet50/152, GoogleNet, Transformer, GPT),
// and irregular (RandWire-A/B, NasNet).
//
// Following the paper, FC layers are lowered to 1×1 convolutions, and
// pooling / element-wise layers are analyzed as weight-less depth-wise
// convolutions. RandWire graphs are generated with a seeded Watts–Strogatz
// process so every run sees the same topology.
package models

import (
	"fmt"
	"sort"

	"cocco/internal/graph"
)

// BuildFunc constructs a model graph.
type BuildFunc func() *graph.Graph

var registry = map[string]BuildFunc{
	"vgg16":       VGG16,
	"resnet50":    ResNet50,
	"resnet152":   ResNet152,
	"googlenet":   GoogleNet,
	"transformer": Transformer,
	"gpt":         GPT,
	"nasnet":      NasNet,
	"randwire-a":  RandWireA,
	"randwire-b":  RandWireB,
}

// Names returns the registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named model or returns an error listing valid names.
func Build(name string) (*graph.Graph, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustBuild is Build that panics on unknown names; for tests and examples.
func MustBuild(name string) *graph.Graph {
	g, err := Build(name)
	if err != nil {
		panic(err)
	}
	return g
}

// PaperModels returns the eight evaluation models in the paper's Figure 11
// order.
func PaperModels() []string {
	return []string{"vgg16", "resnet50", "resnet152", "googlenet",
		"transformer", "gpt", "randwire-a", "randwire-b"}
}

// CoExplorationModels returns the four models used in Tables 1–3 and
// Figures 13–14. The paper uses RandWire-A as "RandWire" there.
func CoExplorationModels() []string {
	return []string{"resnet50", "googlenet", "randwire-a", "nasnet"}
}
