package models

import (
	"fmt"

	"cocco/internal/graph"
)

// VGG16 builds the 16-layer plain network of Simonyan & Zisserman with a
// 3×224×224 input: thirteen 3×3 convolutions in five pooled stages followed
// by three FC layers (lowered to 1×1 convolutions).
func VGG16() *graph.Graph {
	b := graph.NewBuilder("vgg16")
	x := b.Input("input", 3, 224, 224)
	stage := func(prefix string, convs int, c int) {
		for i := 1; i <= convs; i++ {
			x = b.Conv(fmt.Sprintf("%s_conv%d", prefix, i), x, c, 3, 1)
		}
		x = b.Pool(prefix+"_pool", x, 2, 2)
	}
	stage("s1", 2, 64)
	stage("s2", 2, 128)
	stage("s3", 3, 256)
	stage("s4", 3, 512)
	stage("s5", 3, 512)
	x = b.FC("fc6", x, 4096)
	x = b.FC("fc7", x, 4096)
	b.FC("fc8", x, 1000)
	return b.MustFinalize()
}

// ResNet50 builds the 50-layer residual network (bottleneck blocks
// [3,4,6,3]).
func ResNet50() *graph.Graph { return resnet("resnet50", []int{3, 4, 6, 3}) }

// ResNet152 builds the 152-layer residual network (bottleneck blocks
// [3,8,36,3]).
func ResNet152() *graph.Graph { return resnet("resnet152", []int{3, 8, 36, 3}) }

func resnet(name string, blocks []int) *graph.Graph {
	b := graph.NewBuilder(name)
	x := b.Input("input", 3, 224, 224)
	x = b.Conv("stem_conv", x, 64, 7, 2)
	x = b.Pool("stem_pool", x, 3, 2)

	mid := []int{64, 128, 256, 512}
	for stage, n := range blocks {
		m := mid[stage]
		out := m * 4
		for blk := 0; blk < n; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("s%d_b%d", stage+1, blk+1)
			identity := x
			y := b.Conv(prefix+"_conv1", x, m, 1, 1)
			y = b.Conv(prefix+"_conv2", y, m, 3, stride)
			y = b.Conv(prefix+"_conv3", y, out, 1, 1)
			if blk == 0 {
				// Projection shortcut matches channels (and stride).
				identity = b.Conv(prefix+"_down", x, out, 1, stride)
			}
			x = b.Eltwise(prefix+"_add", y, identity)
		}
	}
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.MustFinalize()
}

// inceptionCfg holds one GoogleNet inception module's branch widths:
// 1×1; 3×3 reduce → 3×3; 5×5 reduce → 5×5; pool-proj.
type inceptionCfg struct {
	name                        string
	c1, c3r, c3, c5r, c5, cPool int
}

// GoogleNet builds GoogLeNet (Inception v1): stem, nine inception modules
// in three pooled groups, global pool, and the classifier.
func GoogleNet() *graph.Graph {
	b := graph.NewBuilder("googlenet")
	x := b.Input("input", 3, 224, 224)
	x = b.Conv("stem_conv1", x, 64, 7, 2)
	x = b.Pool("stem_pool1", x, 3, 2)
	x = b.Conv("stem_conv2a", x, 64, 1, 1)
	x = b.Conv("stem_conv2b", x, 192, 3, 1)
	x = b.Pool("stem_pool2", x, 3, 2)

	inception := func(cfg inceptionCfg, from int) int {
		b1 := b.Conv(cfg.name+"_1x1", from, cfg.c1, 1, 1)
		b2 := b.Conv(cfg.name+"_3x3r", from, cfg.c3r, 1, 1)
		b2 = b.Conv(cfg.name+"_3x3", b2, cfg.c3, 3, 1)
		b3 := b.Conv(cfg.name+"_5x5r", from, cfg.c5r, 1, 1)
		b3 = b.Conv(cfg.name+"_5x5", b3, cfg.c5, 5, 1)
		b4 := b.Pool(cfg.name+"_pool", from, 3, 1)
		b4 = b.Conv(cfg.name+"_poolproj", b4, cfg.cPool, 1, 1)
		return b.Concat(cfg.name+"_concat", b1, b2, b3, b4)
	}

	x = inception(inceptionCfg{"inc3a", 64, 96, 128, 16, 32, 32}, x)
	x = inception(inceptionCfg{"inc3b", 128, 128, 192, 32, 96, 64}, x)
	x = b.Pool("pool3", x, 3, 2)
	x = inception(inceptionCfg{"inc4a", 192, 96, 208, 16, 48, 64}, x)
	x = inception(inceptionCfg{"inc4b", 160, 112, 224, 24, 64, 64}, x)
	x = inception(inceptionCfg{"inc4c", 128, 128, 256, 24, 64, 64}, x)
	x = inception(inceptionCfg{"inc4d", 112, 144, 288, 32, 64, 64}, x)
	x = inception(inceptionCfg{"inc4e", 256, 160, 320, 32, 128, 128}, x)
	x = b.Pool("pool4", x, 3, 2)
	x = inception(inceptionCfg{"inc5a", 256, 160, 320, 32, 128, 128}, x)
	x = inception(inceptionCfg{"inc5b", 384, 192, 384, 48, 128, 128}, x)
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.MustFinalize()
}
