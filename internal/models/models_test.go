package models

import (
	"testing"

	"cocco/internal/graph"
)

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("registered models = %v", names)
	}
	for _, n := range names {
		g, err := Build(n)
		if err != nil {
			t.Fatalf("Build(%s): %v", n, err)
		}
		if g.Name != n {
			t.Errorf("graph name %q != model name %q", g.Name, n)
		}
	}
	if _, err := Build("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on unknown model")
		}
	}()
	MustBuild("nope")
}

func TestPaperModelLists(t *testing.T) {
	if got := PaperModels(); len(got) != 8 {
		t.Errorf("paper models = %v", got)
	}
	if got := CoExplorationModels(); len(got) != 4 {
		t.Errorf("co-exploration models = %v", got)
	}
	for _, n := range append(PaperModels(), CoExplorationModels()...) {
		if _, err := Build(n); err != nil {
			t.Errorf("listed model %s not buildable: %v", n, err)
		}
	}
}

// TestStructuralInvariants checks, for every model: a single OpInput source
// feeding everything, weakly connected compute set, topological edges, and
// positive work.
func TestStructuralInvariants(t *testing.T) {
	for _, name := range Names() {
		g := MustBuild(name)
		t.Run(name, func(t *testing.T) {
			if len(g.Inputs()) != 1 {
				t.Errorf("inputs = %v", g.Inputs())
			}
			if len(g.Outputs()) == 0 {
				t.Error("no outputs")
			}
			set := map[int]bool{}
			for _, id := range g.ComputeNodes() {
				set[id] = true
			}
			if !g.IsConnected(set) {
				t.Error("compute nodes not weakly connected")
			}
			for _, u := range g.Topo() {
				for _, v := range g.Succ(u) {
					if u >= v {
						t.Fatalf("edge %d->%d not forward", u, v)
					}
				}
			}
			if g.TotalMACs() <= 0 || g.TotalWeightBytes() <= 0 {
				t.Error("no work or no weights")
			}
		})
	}
}

func TestVGG16Shape(t *testing.T) {
	g := MustBuild("vgg16")
	// 13 convs + 5 pools + 3 FC = 21 compute nodes.
	if got := len(g.ComputeNodes()); got != 21 {
		t.Errorf("vgg16 compute nodes = %d, want 21", got)
	}
	// VGG16 weights ≈ 138 M parameters at 1 byte each.
	w := g.TotalWeightBytes()
	if w < 130_000_000 || w > 145_000_000 {
		t.Errorf("vgg16 weights = %d bytes", w)
	}
	// Plain structure: every compute node has exactly one producer.
	for _, id := range g.ComputeNodes() {
		if len(g.Pred(id)) != 1 {
			t.Errorf("node %d has %d producers in a plain network", id, len(g.Pred(id)))
		}
	}
}

func TestResNetShapes(t *testing.T) {
	r50 := MustBuild("resnet50")
	w := r50.TotalWeightBytes()
	// ResNet50 ≈ 25.5 M parameters.
	if w < 23_000_000 || w > 28_000_000 {
		t.Errorf("resnet50 weights = %d", w)
	}
	// Residual adds exist: some eltwise nodes with 2 producers.
	adds := 0
	for _, n := range r50.Nodes() {
		if n.Kind == graph.OpEltwise && len(r50.Pred(n.ID)) == 2 {
			adds++
		}
	}
	if adds != 16 {
		t.Errorf("resnet50 residual adds = %d, want 16", adds)
	}
	r152 := MustBuild("resnet152")
	if r152.Len() <= r50.Len() {
		t.Error("resnet152 should be deeper than resnet50")
	}
	if r152.TotalWeightBytes() < 55_000_000 {
		t.Errorf("resnet152 weights = %d", r152.TotalWeightBytes())
	}
}

func TestGoogleNetBranching(t *testing.T) {
	g := MustBuild("googlenet")
	// Nine inception concats with 4 producers each.
	concats := 0
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpConcat {
			if len(g.Pred(n.ID)) != 4 {
				t.Errorf("concat %s has %d branches", n.Name, len(g.Pred(n.ID)))
			}
			concats++
		}
	}
	if concats != 9 {
		t.Errorf("inception modules = %d, want 9", concats)
	}
	// GoogleNet ≈ 7 M parameters.
	if w := g.TotalWeightBytes(); w < 5_500_000 || w > 8_000_000 {
		t.Errorf("googlenet weights = %d", w)
	}
}

func TestAttentionStacks(t *testing.T) {
	tr := MustBuild("transformer")
	gpt := MustBuild("gpt")
	// 6 vs 12 layers: GPT must be roughly twice the nodes.
	if gpt.Len() < tr.Len() {
		t.Error("gpt should be deeper than transformer")
	}
	// Attention joins: two per layer (scores, context).
	joins := 0
	for _, n := range tr.Nodes() {
		if n.Kind == graph.OpMatmul && len(tr.Pred(n.ID)) == 2 {
			joins++
		}
	}
	if joins != 12 {
		t.Errorf("transformer attention joins = %d, want 12", joins)
	}
	// GPT-1 ≈ 110 M parameters.
	if w := gpt.TotalWeightBytes(); w < 95_000_000 || w > 120_000_000 {
		t.Errorf("gpt weights = %d", w)
	}
}

func TestRandWireDeterministicAndIrregular(t *testing.T) {
	a1 := MustBuild("randwire-a")
	a2 := MustBuild("randwire-a")
	if a1.Len() != a2.Len() || a1.Edges() != a2.Edges() {
		t.Error("randwire-a not deterministic")
	}
	for i := 0; i < a1.Len(); i++ {
		if a1.Node(i).Name != a2.Node(i).Name {
			t.Fatalf("node %d differs across builds", i)
		}
	}
	b := MustBuild("randwire-b")
	if b.Len() <= a1.Len() {
		t.Error("randwire-b should be larger than randwire-a")
	}
	// Irregularity: more edges than a chain would have.
	if a1.Edges() <= a1.Len() {
		t.Errorf("randwire-a looks like a chain: %d edges for %d nodes", a1.Edges(), a1.Len())
	}
}

func TestNasNetCells(t *testing.T) {
	g := MustBuild("nasnet")
	if g.Len() < 200 {
		t.Errorf("nasnet nodes = %d, expected a large cell graph", g.Len())
	}
	// Concats (cell outputs): 14 cells.
	concats := 0
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpConcat {
			concats++
		}
	}
	if concats != 14 {
		t.Errorf("nasnet cells = %d, want 14", concats)
	}
}
