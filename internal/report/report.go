// Package report renders the experiment results as fixed-width text tables
// and CSV series, mirroring the rows and series the paper's tables and
// figures present.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Rows returns the accumulated rows (for tests).
func (t *Table) Rows() [][]string { return t.rows }

// CSV renders the table as comma-separated lines (header first), quoting
// cells that contain commas or quotes.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points, rendered as CSV — the
// figure-style output (convergence curves, distributions).
type Series struct {
	Name   string
	X, Y   []float64
	XLabel string
	YLabel string
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// CSV renders "x,y" lines with a header.
func (s *Series) CSV() string {
	var b strings.Builder
	xl, yl := s.XLabel, s.YLabel
	if xl == "" {
		xl = "x"
	}
	if yl == "" {
		yl = "y"
	}
	fmt.Fprintf(&b, "# series: %s\n%s,%s\n", s.Name, xl, yl)
	for i := range s.X {
		fmt.Fprintf(&b, "%g,%g\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// Bytes formats a byte count as KB/MB with short precision.
func Bytes(v int64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}

// MJ formats picojoules as millijoules.
func MJ(pj float64) string { return fmt.Sprintf("%.2fmJ", pj/1e9) }

// MS formats seconds as milliseconds.
func MS(sec float64) string { return fmt.Sprintf("%.2fms", sec*1e3) }

// GBps formats bytes/second as GB/s.
func GBps(v float64) string { return fmt.Sprintf("%.2fGB/s", v/1e9) }
