package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta-long-name", 2.5)
	out := tb.String()
	if !strings.Contains(out, "=== Demo ===") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows start the value column at the same
	// offset.
	hdr := lines[1]
	row := lines[4]
	if strings.Index(hdr, "value") != strings.Index(row, "2.5") {
		t.Errorf("columns misaligned:\n%s", out)
	}
	if len(tb.Rows()) != 2 {
		t.Error("Rows()")
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "===") {
		t.Error("unexpected title banner")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{Name: "conv", XLabel: "samples", YLabel: "cost"}
	s.Add(1, 10)
	s.Add(2, 9.5)
	out := s.CSV()
	want := "# series: conv\nsamples,cost\n1,10\n2,9.5\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
	empty := Series{Name: "e"}
	if !strings.Contains(empty.CSV(), "x,y") {
		t.Error("default axis labels missing")
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct{ got, want string }{
		{Bytes(512), "512B"},
		{Bytes(2048), "2KB"},
		{Bytes(3 << 20), "3.00MB"},
		{MJ(2.5e9), "2.50mJ"},
		{MS(0.0042), "4.20ms"},
		{GBps(16e9), "16.00GB/s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}
